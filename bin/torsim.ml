(* torsim: command-line front end for the CircuitStart simulator.

   Subcommands:
     trace     single-circuit cwnd trace (Figure 1, upper panels)
     cdf       N concurrent circuits, TTLB distribution (Figure 1, bottom)
     optimal   analytic optimal-window model for a path
     adaptive  bandwidth-step reaction experiment (paper section 3)
     sweep     gamma / distance parameter sweeps
     faults    loss / outage / relay-crash robustness comparison
     recover   session-level rebuild-and-resume around a crash
     overload  flash crowd against budgeted relays (admission + OOM)
     network   consensus-scale round-level workload (pooled circuits)
     check     randomized differential invariant checking *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsers *)

let strategy_label = function
  | Circuitstart.Controller.Circuit_start -> "circuitstart"
  | Circuitstart.Controller.Slow_start -> "slowstart"
  | Circuitstart.Controller.Predictive -> "predictive"
  | Circuitstart.Controller.Fixed n -> Printf.sprintf "fixed:%d" n

let strategy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "circuitstart" | "cs" -> Ok Circuitstart.Controller.Circuit_start
    | "slowstart" | "ss" -> Ok Circuitstart.Controller.Slow_start
    | "predictive" | "pr" -> Ok Circuitstart.Controller.Predictive
    | s -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "fixed" -> (
            match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
            | Some n when n > 0 -> Ok (Circuitstart.Controller.Fixed n)
            | _ -> Error (`Msg "fixed:<n> needs a positive integer"))
        | _ ->
            Error
              (`Msg
                 (Printf.sprintf
                    "unknown strategy %S (expected circuitstart, slowstart, \
                     predictive or fixed:N)"
                    s)))
  in
  let print fmt s = Format.pp_print_string fmt (strategy_label s) in
  Arg.conv (parse, print)

let strategy_arg =
  let doc = "Startup strategy: circuitstart, slowstart, predictive or fixed:N." in
  Arg.(
    value
    & opt strategy_conv Circuitstart.Controller.Circuit_start
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

(* Paired experiments print all three startup strategies by default;
   [--strategy X] restricts the table to one. *)
let strategy_opt_arg =
  let doc =
    "Restrict the comparison to one startup strategy (circuitstart, \
     slowstart, predictive or fixed:N); default: all three."
  in
  Arg.(
    value
    & opt (some strategy_conv) None
    & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let gamma_arg =
  let doc = "Vegas ramp-up exit threshold gamma, in cells (paper: 4)." in
  Arg.(value & opt float 4. & info [ "gamma" ] ~docv:"GAMMA" ~doc)

let seed_arg =
  let doc = "Random seed (identical seeds give identical runs)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for independent simulation replicates (default: detected \
     cores, or \\$(b,TORSIM_JOBS)).  Output is byte-identical for every value."
  in
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt positive_int (Engine.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc ~env:(Cmd.Env.info "TORSIM_JOBS"))

let shards_arg =
  let doc =
    "Shards for within-run parallelism: 0 = the classic single-domain \
     engine, N >= 1 = partition the run across N domains (results are \
     identical for every positive N), $(b,auto) = one shard per worker \
     (honors \\$(b,CIRCUITSTART_JOBS))."
  in
  let shard_count =
    let parse s =
      match s with
      | "auto" -> Ok (Engine.Pool.default_jobs ())
      | _ -> (
          match int_of_string_opt s with
          | Some n when n >= 0 -> Ok n
          | _ -> Error (`Msg "expected a non-negative integer or 'auto'"))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt shard_count 0 & info [ "shards" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Write the raw series as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let bytes_arg default =
  let doc = "Transfer size in KiB." in
  Arg.(value & opt int default & info [ "kib" ] ~docv:"KIB" ~doc)

let params_with_gamma gamma =
  Circuitstart.Params.with_gamma Circuitstart.Params.default gamma

let kb = Analysis.Series.kb_of_cells ~cell_size:Backtap.Wire.cell_size

(* ------------------------------------------------------------------ *)
(* trace *)

let run_trace strategy distance bottleneck_mbit kib gamma stats csv =
  let config =
    { Workload.Trace_experiment.default_config with
      Workload.Trace_experiment.strategy;
      bottleneck_distance = distance;
      bottleneck_rate = Engine.Units.Rate.mbit bottleneck_mbit;
      transfer_bytes = Engine.Units.kib kib;
      params = params_with_gamma gamma;
    }
  in
  match Workload.Trace_experiment.validate_config config with
  | Error msg -> `Error (false, msg)
  | Ok config ->
      let t0 = Unix.gettimeofday () in
      let r = Workload.Trace_experiment.run config in
      let wall = Unix.gettimeofday () -. t0 in
      let series =
        Array.map (fun (t, v) -> (Analysis.Series.ms_of_time t, kb v)) r.source_cwnd
      in
      let x_max = Float.max 600. (Analysis.Series.y_max (Array.map (fun (x, _) -> (0., x)) series)) in
      let dashed =
        Analysis.Series.constant ~x_max ~step:25. (kb (float_of_int r.optimal_source_cells))
      in
      print_string
        (Analysis.Ascii_plot.render ~x_label:"time [ms]" ~y_label:"source cwnd [KB]"
           [
             { Analysis.Ascii_plot.label = "source cwnd"; glyph = '*'; points = series };
             { Analysis.Ascii_plot.label = "optimal (model)"; glyph = '-'; points = dashed };
           ]);
      Printf.printf
        "optimal=%d cells  propagated=%d  peak=%.0f  settled=%.0f  exit=%s  ttlb=%s  retx=%d\n"
        r.optimal_source_cells r.propagated_cells r.peak_cells r.settled_cells
        (match r.exit_cells with Some c -> string_of_int c | None -> "-")
        (match r.time_to_last_byte with
        | Some t -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f t)
        | None -> "incomplete")
        r.retransmissions;
      if stats then
        Printf.printf "engine: %d events in %.3fs wall (%.2fM events/s)\n"
          r.wall_events wall
          (float_of_int r.wall_events /. Float.max 1e-9 wall /. 1e6);
      (match csv with
      | Some path ->
          Analysis.Csv_out.write_file ~path
            (Analysis.Csv_out.series_csv [ ("source_cwnd_kb", series) ]);
          Printf.printf "wrote %s\n" path
      | None -> ());
      `Ok ()

let trace_cmd =
  let distance =
    Arg.(
      value & opt int 1
      & info [ "distance" ] ~docv:"HOPS" ~doc:"Bottleneck distance from the source, in hops (1-3).")
  in
  let bneck =
    Arg.(
      value & opt int 3
      & info [ "bottleneck-mbit" ] ~docv:"MBIT" ~doc:"Bottleneck relay access rate, Mbit/s.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the scheduler's cost after the run: simulator events \
             executed, wall-clock seconds, events/sec.")
  in
  let doc = "Single-circuit congestion-window trace (Figure 1, upper panels)." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      ret
        (const run_trace $ strategy_arg $ distance $ bneck $ bytes_arg 1024
       $ gamma_arg $ stats $ csv_arg))

(* ------------------------------------------------------------------ *)
(* cdf *)

let transport_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "circuitstart" | "cs" ->
        Ok (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start)
    | "slowstart" | "ss" ->
        Ok (Workload.Star_experiment.Backtap Circuitstart.Controller.Slow_start)
    | "predictive" | "pr" ->
        Ok (Workload.Star_experiment.Backtap Circuitstart.Controller.Predictive)
    | "sendme" -> Ok Workload.Star_experiment.Legacy_sendme
    | s -> Error (`Msg (Printf.sprintf "unknown transport %S" s))
  in
  let print fmt = function
    | Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start ->
        Format.pp_print_string fmt "circuitstart"
    | Workload.Star_experiment.Backtap Circuitstart.Controller.Slow_start ->
        Format.pp_print_string fmt "slowstart"
    | Workload.Star_experiment.Backtap Circuitstart.Controller.Predictive ->
        Format.pp_print_string fmt "predictive"
    | Workload.Star_experiment.Backtap (Circuitstart.Controller.Fixed n) ->
        Format.fprintf fmt "fixed:%d" n
    | Workload.Star_experiment.Legacy_sendme -> Format.pp_print_string fmt "sendme"
  in
  Arg.conv (parse, print)

let run_cdf transport circuits relays kib seed csv =
  let config =
    { Workload.Star_experiment.default_config with
      Workload.Star_experiment.transport;
      circuit_count = circuits;
      relay_count = relays;
      transfer_bytes = Engine.Units.kib kib;
      seed;
    }
  in
  match Workload.Star_experiment.validate_config config with
  | Error msg -> `Error (false, msg)
  | Ok config ->
      let r = Workload.Star_experiment.run config in
      if Array.length r.ttlb_seconds = 0 then
        `Error (false, "no transfer completed within the horizon")
      else begin
        let cdf = Analysis.Cdf.of_samples r.ttlb_seconds in
        print_string
          (Analysis.Ascii_plot.render ~x_label:"time to last byte [s]"
             ~y_label:"cumulative distribution"
             [
               { Analysis.Ascii_plot.label = "TTLB CDF"; glyph = '*';
                 points = Array.of_list (Analysis.Cdf.points cdf) };
             ]);
        Printf.printf
          "completed %d/%d   median=%.2fs  p10=%.2fs  p90=%.2fs  max queue=%s  events=%d\n"
          r.completed r.total
          (Analysis.Cdf.quantile cdf 0.5)
          (Analysis.Cdf.quantile cdf 0.1)
          (Analysis.Cdf.quantile cdf 0.9)
          (Format.asprintf "%a" Engine.Units.pp_bytes r.max_link_queue_bytes)
          r.wall_events;
        (match csv with
        | Some path ->
            Analysis.Csv_out.write_file ~path (Analysis.Csv_out.cdf_csv [ ("ttlb", cdf) ]);
            Printf.printf "wrote %s\n" path
        | None -> ());
        `Ok ()
      end

let cdf_cmd =
  let transport =
    Arg.(
      value
      & opt transport_conv
          (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start)
      & info [ "transport" ] ~docv:"T" ~doc:"circuitstart, slowstart or sendme.")
  in
  let circuits =
    Arg.(value & opt int 50 & info [ "circuits" ] ~docv:"N" ~doc:"Concurrent circuits.")
  in
  let relays =
    Arg.(value & opt int 30 & info [ "relays" ] ~docv:"N" ~doc:"Relays in the network.")
  in
  let doc = "Concurrent circuits over a random star; TTLB distribution (Figure 1, bottom)." in
  Cmd.v (Cmd.info "cdf" ~doc)
    Term.(
      ret (const run_cdf $ transport $ circuits $ relays $ bytes_arg 500 $ seed_arg $ csv_arg))

(* ------------------------------------------------------------------ *)
(* optimal *)

let run_optimal rates delays =
  let specs =
    try
      let rates = List.map float_of_string (String.split_on_char ',' rates) in
      let delays =
        match delays with
        | "" -> List.map (fun _ -> 10.) rates
        | d -> List.map float_of_string (String.split_on_char ',' d)
      in
      if List.length rates <> List.length delays then
        failwith "rates and delays must have the same length";
      List.map2
        (fun mbit d ->
          { Optmodel.Path_model.rate = Engine.Units.Rate.mbit_f mbit;
            access_delay = Engine.Time.of_ms_f d })
        rates delays
    with Failure msg -> (
      prerr_endline msg;
      exit 2)
  in
  match Optmodel.Path_model.of_specs specs with
  | exception Invalid_argument msg -> `Error (false, msg)
  | path ->
      Printf.printf "bottleneck: %s at position %d\n"
        (Format.asprintf "%a" Engine.Units.Rate.pp (Optmodel.Optimal_window.bottleneck_rate path))
        (Optmodel.Optimal_window.bottleneck_position path);
      for hop = 0 to Optmodel.Path_model.hop_count path - 1 do
        Printf.printf "hop %d: feedback RTT %s  W* = %d cells (%.1f KB)\n" hop
          (Engine.Time.to_string (Optmodel.Optimal_window.hop_feedback_rtt path hop))
          (Optmodel.Optimal_window.hop_window_cells path hop)
          (kb (float_of_int (Optmodel.Optimal_window.hop_window_cells path hop)))
      done;
      Printf.printf "source W* = %d cells; backpropagated estimate = %d cells\n"
        (Optmodel.Optimal_window.source_window_cells path)
        (Optmodel.Optimal_window.propagated_estimate_cells path);
      `Ok ()

let optimal_cmd =
  let rates =
    Arg.(
      required
      & opt (some string) None
      & info [ "rates" ] ~docv:"MBITS"
          ~doc:"Comma-separated access rates along the path (client first), Mbit/s.")
  in
  let delays =
    Arg.(
      value & opt string ""
      & info [ "delays" ] ~docv:"MS"
          ~doc:"Comma-separated one-way access delays, ms (default 10 each).")
  in
  let doc = "Analytic optimal congestion window for a path (the dashed line)." in
  Cmd.v (Cmd.info "optimal" ~doc) Term.(ret (const run_optimal $ rates $ delays))

(* ------------------------------------------------------------------ *)
(* adaptive *)

let run_adaptive adaptive step_mbit =
  let config =
    { Workload.Adaptive_experiment.default_config with
      Workload.Adaptive_experiment.adaptive;
      stepped_rate = Engine.Units.Rate.mbit step_mbit;
    }
  in
  match Workload.Adaptive_experiment.validate_config config with
  | Error msg -> `Error (false, msg)
  | Ok config ->
      let r = Workload.Adaptive_experiment.run config in
      Printf.printf
        "optimal %d -> %d cells; window at step %.0f; reaction %s; final %.0f\n"
        r.optimal_before_cells r.optimal_after_cells r.cwnd_at_step
        (match r.reaction_time with
        | Some t -> Printf.sprintf "%.0fms" (Engine.Time.to_ms_f t)
        | None -> "never")
        r.final_cwnd;
      `Ok ()

let adaptive_cmd =
  let adaptive =
    Arg.(value & flag & info [ "adaptive" ] ~doc:"Enable the adaptive re-probe extension.")
  in
  let step =
    Arg.(
      value & opt int 12
      & info [ "step-mbit" ] ~docv:"MBIT" ~doc:"Bottleneck rate after the step, Mbit/s.")
  in
  let doc = "Mid-transfer bandwidth step: how fast does the window follow? (paper section 3)." in
  Cmd.v (Cmd.info "adaptive" ~doc) Term.(ret (const run_adaptive $ adaptive $ step))

(* ------------------------------------------------------------------ *)
(* cross *)

let run_cross load kib =
  let config =
    { Workload.Contention_experiment.default_config with
      Workload.Contention_experiment.cbr_load = load;
      transfer_bytes = Engine.Units.kib kib;
    }
  in
  match Workload.Contention_experiment.validate_config config with
  | Error msg -> `Error (false, msg)
  | Ok config ->
      let r = Workload.Contention_experiment.run config in
      Printf.printf
        "unloaded W*=%d cells; fair target %.0f; settled %.0f; goodput share %s; ttlb %s
"
        r.optimal_cells r.expected_cells r.settled_cells
        (match r.goodput_share with
        | Some s -> Printf.sprintf "%.0f%%" (s *. 100.)
        | None -> "-")
        (match r.time_to_last_byte with
        | Some t -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f t)
        | None -> "incomplete");
      `Ok ()

let cross_cmd =
  let load =
    Arg.(
      value & opt float 0.5
      & info [ "load" ] ~docv:"FRACTION"
          ~doc:"CBR background load as a fraction of the bottleneck rate, in [0, 0.9].")
  in
  let doc = "Share the bottleneck with unresponsive background traffic." in
  Cmd.v (Cmd.info "cross" ~doc) Term.(ret (const run_cross $ load $ bytes_arg 2048))

(* ------------------------------------------------------------------ *)
(* sweep *)

let run_sweep param values strategy jobs =
  let values =
    try List.map float_of_string (String.split_on_char ',' values)
    with Failure _ ->
      prerr_endline "values must be a comma-separated list of numbers";
      exit 2
  in
  (* Each sweep point is an independent simulation: build the whole
     config list up front and fan it out over the domain pool, then
     render in order. *)
  let tasks =
    match param with
    | "gamma" ->
        List.map
          (fun g ->
            ( Printf.sprintf "%.0f" g,
              { Workload.Trace_experiment.default_config with
                Workload.Trace_experiment.strategy;
                bottleneck_distance = 2;
                params = params_with_gamma g;
              } ))
          values
    | "distance" ->
        List.map
          (fun d ->
            ( Printf.sprintf "%.0f" d,
              { Workload.Trace_experiment.default_config with
                Workload.Trace_experiment.strategy;
                relay_count = 4;
                bottleneck_distance = int_of_float d;
              } ))
          values
    | p ->
        prerr_endline (Printf.sprintf "unknown sweep parameter %S (gamma|distance)" p);
        exit 2
  in
  let results = Workload.Trace_experiment.run_many ~jobs (List.map snd tasks) in
  let t =
    Analysis.Table.create ~columns:[ param; "peak"; "exit"; "settled"; "optimal"; "ttlb" ]
  in
  List.iter2
    (fun (label, _) (r : Workload.Trace_experiment.result) ->
      Analysis.Table.add_row t
        [
          label;
          Printf.sprintf "%.0f" r.peak_cells;
          (match r.exit_cells with Some c -> string_of_int c | None -> "-");
          Printf.sprintf "%.0f" r.settled_cells;
          string_of_int r.optimal_source_cells;
          (match r.time_to_last_byte with
          | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
          | None -> "-");
        ])
    tasks results;
  print_string (Analysis.Table.render t);
  `Ok ()

let sweep_cmd =
  let param =
    Arg.(
      value & opt string "gamma"
      & info [ "param" ] ~docv:"P" ~doc:"Parameter to sweep: gamma or distance.")
  in
  let values =
    Arg.(
      value & opt string "1,2,4,8,16"
      & info [ "values" ] ~docv:"LIST" ~doc:"Comma-separated values.")
  in
  let doc = "Parameter sweeps over the single-circuit trace experiment." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(ret (const run_sweep $ param $ values $ strategy_arg $ jobs_arg))

(* ------------------------------------------------------------------ *)
(* faults *)

let run_faults loss burst outage crash distance kib strat seed jobs verbose =
  let loss_model =
    match (loss, burst) with
    | Some _, Some _ -> Error "use either --loss or --burst-loss, not both"
    | Some p, None -> Ok (Some (Netsim.Faults.Bernoulli p))
    | None, Some p ->
        (* Fixed transition probabilities give a mean bad episode of 5
           cells; --burst-loss sets how lossy those episodes are. *)
        Ok
          (Some
             (Netsim.Faults.Gilbert_elliott
                { p_good_to_bad = 0.01; p_bad_to_good = 0.2; loss_good = 0.;
                  loss_bad = p }))
    | None, None -> Ok None
  in
  match loss_model with
  | Error msg -> `Error (false, msg)
  | Ok loss -> (
      let config =
        { Workload.Fault_experiment.default_config with
          Workload.Fault_experiment.bottleneck_distance = distance;
          transfer_bytes = Engine.Units.kib kib;
          loss;
          outage =
            Option.map
              (fun (a, b) -> (Engine.Time.of_sec_f a, Engine.Time.of_sec_f b))
              outage;
          crash_at = Option.map Engine.Time.of_sec_f crash;
        }
      in
      match Workload.Fault_experiment.validate_config config with
      | Error msg -> `Error (false, msg)
      | Ok config ->
          let rows =
            match strat with
            | None ->
                let c =
                  Workload.Fault_experiment.compare_strategies ~jobs ~seed config
                in
                [ ("circuitstart", c.Workload.Fault_experiment.circuit_start);
                  ("slowstart", c.slow_start); ("predictive", c.predictive) ]
            | Some s -> (
                match
                  Workload.Fault_experiment.run_many ~jobs
                    [ (seed, { config with Workload.Fault_experiment.strategy = s }) ]
                with
                | [ r ] -> [ (strategy_label s, r) ]
                | _ -> assert false)
          in
          let t =
            Analysis.Table.create
              ~columns:
                [ "strategy"; "outcome"; "ttlb"; "goodput"; "retx"; "drops";
                  "queue hwm"; "failed after" ]
          in
          let row label (r : Workload.Fault_experiment.result) =
            Analysis.Table.add_row t
              [
                label;
                Workload.Fault_experiment.outcome_to_string r.outcome;
                (match r.time_to_last_byte with
                | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
                | None -> "-");
                Printf.sprintf "%.2f Mbit/s" (r.goodput_bps /. 1e6);
                string_of_int r.retransmissions;
                Format.asprintf "%a" Netsim.Link.pp_drop_counts r.drops;
                Format.asprintf "%a" Engine.Units.pp_bytes
                  r.queue_high_watermark_bytes;
                (match r.failed_after with
                | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
                | None -> "-");
              ]
          in
          List.iter (fun (label, r) -> row label r) rows;
          print_string (Analysis.Table.render t);
          (if verbose then
             match rows with
             | (_, (r : Workload.Fault_experiment.result)) :: _ ->
                 List.iter
                   (fun e -> Format.printf "%a@." Engine.Trace.pp_event e)
                   r.events
             | [] -> ());
          `Ok ())

let faults_cmd =
  let loss =
    Arg.(
      value
      & opt (some float) None
      & info [ "loss" ] ~docv:"P"
          ~doc:"Bernoulli loss probability on the bottleneck link, in [0, 1].")
  in
  let burst =
    Arg.(
      value
      & opt (some float) None
      & info [ "burst-loss" ] ~docv:"P"
          ~doc:
            "Gilbert-Elliott bursty loss: bad-state loss probability (episodes \
             average 5 cells).  Mutually exclusive with --loss.")
  in
  let outage =
    Arg.(
      value
      & opt (some (pair ~sep:':' float float)) None
      & info [ "outage" ] ~docv:"T1:T2"
          ~doc:"Take the bottleneck link down from T1 to T2 seconds after transfer start.")
  in
  let crash =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash-at" ] ~docv:"T"
          ~doc:"Crash the bottleneck relay T seconds after transfer start.")
  in
  let distance =
    Arg.(
      value & opt int 2
      & info [ "distance" ] ~docv:"HOPS"
          ~doc:"Bottleneck (and fault-target) distance from the client, in hops (1-3).")
  in
  let verbose =
    Arg.(value & flag & info [ "events" ] ~doc:"Print the fault/recovery/abort event log.")
  in
  let doc = "CircuitStart vs slow start under loss, outages and relay crashes." in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      ret
        (const run_faults $ loss $ burst $ outage $ crash $ distance $ bytes_arg 512
       $ strategy_opt_arg $ seed_arg $ jobs_arg $ verbose))

(* ------------------------------------------------------------------ *)
(* recover *)

let run_recover crash position selection max_rebuilds kib strat seed jobs verbose =
  match Tor_model.Directory.selection_of_string selection with
  | None ->
      `Error
        (false, Printf.sprintf "unknown selection policy %S (bandwidth|uniform)" selection)
  | Some selection -> (
      let config =
        { Workload.Recovery_experiment.default_config with
          Workload.Recovery_experiment.transfer_bytes = Engine.Units.kib kib;
          crash_at = Option.map Engine.Time.of_sec_f crash;
          crash_position = position;
          selection;
          max_rebuilds;
        }
      in
      match Workload.Recovery_experiment.validate_config config with
      | Error msg -> `Error (false, msg)
      | Ok config ->
          let comparison =
            match strat with
            | None ->
                Some
                  (Workload.Recovery_experiment.compare_strategies ~jobs ~seed
                     config)
            | Some _ -> None
          in
          let rows =
            match (comparison, strat) with
            | Some c, _ ->
                [ ("circuitstart", c.Workload.Recovery_experiment.circuit_start);
                  ("slowstart", c.slow_start); ("predictive", c.predictive) ]
            | None, Some s -> (
                match
                  Workload.Recovery_experiment.run_many ~jobs
                    [ (seed,
                       { config with Workload.Recovery_experiment.strategy = s })
                    ]
                with
                | [ r ] -> [ (strategy_label s, r) ]
                | _ -> assert false)
            | None, None -> assert false
          in
          let t =
            Analysis.Table.create
              ~columns:
                [ "strategy"; "outcome"; "ttlb"; "rebuilds"; "recovery";
                  "delivered"; "dup"; "retx"; "drops"; "queue hwm"; "goodput" ]
          in
          let row label (r : Workload.Recovery_experiment.result) =
            Analysis.Table.add_row t
              [
                label;
                Workload.Recovery_experiment.outcome_to_string r.outcome;
                (match r.time_to_last_byte with
                | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
                | None -> "-");
                string_of_int r.rebuilds;
                (match r.time_to_recover with
                | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
                | None -> "-");
                string_of_int r.delivered_bytes;
                string_of_int r.duplicates;
                string_of_int r.retransmissions;
                Format.asprintf "%a" Netsim.Link.pp_drop_counts r.drops;
                Format.asprintf "%a" Engine.Units.pp_bytes
                  r.queue_high_watermark_bytes;
                Printf.sprintf "%.2f Mbit/s" (r.goodput_bps /. 1e6);
              ]
          in
          List.iter (fun (label, r) -> row label r) rows;
          print_string (Analysis.Table.render t);
          (match comparison with
          | Some c -> (
              match
                ( c.circuit_start.Workload.Recovery_experiment.goodput_bps,
                  c.slow_start.Workload.Recovery_experiment.goodput_bps )
              with
              | cs, ss when cs > 0. && ss > 0. ->
                  Printf.printf "goodput gap (circuitstart / slowstart): %.2fx\n"
                    (cs /. ss)
              | _ -> ())
          | None -> ());
          (if verbose then
             match rows with
             | (_, (r : Workload.Recovery_experiment.result)) :: _ ->
                 List.iter
                   (fun e -> Format.printf "%a@." Engine.Trace.pp_event e)
                   r.events
             | [] -> ());
          `Ok ())

let recover_cmd =
  let crash =
    Arg.(
      value
      & opt (some float) None
      & info [ "crash-at" ] ~docv:"T"
          ~doc:
            "Crash the relay at --crash-position of the first circuit T seconds \
             after transfer start.")
  in
  let position =
    Arg.(
      value & opt int 2
      & info [ "crash-position" ] ~docv:"HOP"
          ~doc:"Path position of the crash victim, 1-based (1 = guard).")
  in
  let selection =
    Arg.(
      value & opt string "bandwidth"
      & info [ "selection" ] ~docv:"POLICY"
          ~doc:"Path selection policy for rebuilds: bandwidth or uniform.")
  in
  let max_rebuilds =
    Arg.(
      value & opt int 3
      & info [ "max-rebuilds" ] ~docv:"N"
          ~doc:"Rebuild attempt budget before the session gives up (0 = none).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "events" ] ~doc:"Print the fault/rebuild/resume event log.")
  in
  let doc = "Session-level recovery: rebuild and resume around a relay crash." in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(
      ret
        (const run_recover $ crash $ position $ selection $ max_rebuilds
       $ bytes_arg 512 $ strategy_opt_arg $ seed_arg $ jobs_arg $ verbose))

(* ------------------------------------------------------------------ *)
(* overload *)

(* Friendly numeric-flag validation (first failure wins).  A negative
   budget must be a one-line usage error with a nonzero exit, not a
   silent "unlimited": the  <= 0 -> None  translation below would
   otherwise swallow the typo. *)
let flag_errors checks =
  List.find_map (fun (ok, flag, want, got) ->
      if ok then None
      else Some (Printf.sprintf "%s must be %s (got %d)" flag want got))
    checks

let run_overload sessions kib relays budget_kib max_circuits arrival_ms strat
    seed jobs verbose =
  match
    flag_errors
      [
        (sessions > 0, "--sessions", "positive", sessions);
        (kib > 0, "--kib", "positive", kib);
        (relays > 0, "--relays", "positive", relays);
        (budget_kib >= 0, "--budget-kib", ">= 0 (0 = unlimited)", budget_kib);
        (max_circuits >= 0, "--max-circuits", ">= 0 (0 = unlimited)",
         max_circuits);
        (arrival_ms > 0, "--arrival-ms", "positive", arrival_ms);
      ]
  with
  | Some msg -> `Error (false, msg)
  | None ->
  let config =
    { Workload.Overload_experiment.default_config with
      Workload.Overload_experiment.sessions;
      transfer_bytes = Engine.Units.kib kib;
      relay_count = relays;
      max_queued_bytes =
        (if budget_kib <= 0 then None else Some (Engine.Units.kib budget_kib));
      max_circuits = (if max_circuits <= 0 then None else Some max_circuits);
      mean_interarrival = Engine.Time.ms arrival_ms;
    }
  in
  match Workload.Overload_experiment.validate_config config with
  | Error msg -> `Error (false, msg)
  | Ok config ->
      let rows =
        match strat with
        | None ->
            let c =
              Workload.Overload_experiment.compare_strategies ~jobs ~seed config
            in
            [ ("circuitstart", c.Workload.Overload_experiment.circuit_start);
              ("slowstart", c.slow_start); ("predictive", c.predictive) ]
        | Some s -> (
            match
              Workload.Overload_experiment.run_many ~jobs
                [ (seed, { config with Workload.Overload_experiment.strategy = s }) ]
            with
            | [ r ] -> [ (strategy_label s, r) ]
            | _ -> assert false)
      in
      let t =
        Analysis.Table.create
          ~columns:
            [ "strategy"; "done"; "exhaust"; "timeout"; "refused"; "rate";
              "oom"; "rebuilds"; "mean ttlb"; "goodput"; "relay hwm" ]
      in
      let row label (r : Workload.Overload_experiment.result) =
        Analysis.Table.add_row t
          [
            label;
            Printf.sprintf "%d/%d" r.completed r.sessions;
            string_of_int r.exhausted;
            string_of_int r.timed_out;
            string_of_int r.refusals;
            Printf.sprintf "%.0f%%" (r.refusal_rate *. 100.);
            string_of_int r.oom_kills;
            string_of_int r.rebuilds;
            (match r.mean_ttlb with
            | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
            | None -> "-");
            Printf.sprintf "%.2f Mbit/s" (r.goodput_bps /. 1e6);
            Format.asprintf "%a" Engine.Units.pp_bytes r.relay_byte_hwm;
          ]
      in
      List.iter (fun (label, r) -> row label r) rows;
      print_string (Analysis.Table.render t);
      (if verbose then
         match rows with
         | (_, (r : Workload.Overload_experiment.result)) :: _ ->
             List.iter
               (fun e -> Format.printf "%a@." Engine.Trace.pp_event e)
               r.events
         | [] -> ());
      `Ok ()

let overload_cmd =
  let sessions =
    Arg.(
      value & opt int 12
      & info [ "sessions" ] ~docv:"N"
          ~doc:"Size of the flash crowd (one client per session).")
  in
  let relays =
    Arg.(
      value & opt int 4
      & info [ "relays" ] ~docv:"N"
          ~doc:"Relays in the network (must exceed the 3-hop path length).")
  in
  let budget_kib =
    Arg.(
      value & opt int 48
      & info [ "budget-kib" ] ~docv:"KIB"
          ~doc:"Per-relay queued-cell-byte budget, KiB (0 = unlimited).")
  in
  let max_circuits =
    Arg.(
      value & opt int 6
      & info [ "max-circuits" ] ~docv:"N"
          ~doc:"Per-relay circuit-count budget (0 = unlimited).")
  in
  let arrival_ms =
    Arg.(
      value & opt int 150
      & info [ "arrival-ms" ] ~docv:"MS"
          ~doc:"Mean exponential inter-arrival gap of the crowd, ms.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "events" ] ~doc:"Print the refusal/oom-kill/overload event log.")
  in
  let doc =
    "Flash crowd against budgeted relays: admission refusals, OOM circuit \
     kills, and what the startup strategy costs under contention."
  in
  Cmd.v (Cmd.info "overload" ~doc)
    Term.(
      ret
        (const run_overload $ sessions $ bytes_arg 64 $ relays $ budget_kib
       $ max_circuits $ arrival_ms $ strategy_opt_arg $ seed_arg $ jobs_arg
       $ verbose))

(* ------------------------------------------------------------------ *)
(* network *)

(* "-" rather than an exception (or a "nans" cell) when a strategy
   completed nothing — an all-refused or churned-out run is a valid
   result, not a crash. *)
let network_q sk p =
  match Engine.Stats.Sketch.quantile_opt sk p with
  | Some x -> Printf.sprintf "%.3fs" x
  | None -> "-"

let network_gap ~better ~worse =
  match (Analysis.Cdf.of_sketch_opt better, Analysis.Cdf.of_sketch_opt worse) with
  | Some better, Some worse ->
      Printf.printf "largest horizontal gap (CircuitStart earlier by): %.3fs\n"
        (Analysis.Cdf.horizontal_gap ~better ~worse)
  | _ ->
      print_string
        "largest horizontal gap: n/a (a strategy completed no circuits)\n"

let network_flag_errors ~relays ~circuits ~lifetimes ~duration_s ~think_ms
    ~budget_kib ~max_circuits =
  flag_errors
    [
      (relays > 0, "--relays", "positive", relays);
      (circuits > 0, "--circuits", "positive", circuits);
      (lifetimes >= 0, "--lifetimes", ">= 0 (0 = 10x the slot count)",
       lifetimes);
      (duration_s >= 0, "--duration", ">= 0 (0 = until the lifetime goal)",
       duration_s);
      (think_ms > 0, "--think-ms", "positive", think_ms);
      (budget_kib >= 0, "--budget-kib", ">= 0 (0 = unlimited)", budget_kib);
      (max_circuits >= 0, "--max-circuits", ">= 0 (0 = unlimited)", max_circuits);
    ]

let run_network relays circuits lifetimes duration_s think_ms budget_kib
    max_circuits shards strat seed jobs profile =
  match
    network_flag_errors ~relays ~circuits ~lifetimes ~duration_s ~think_ms
      ~budget_kib ~max_circuits
  with
  | Some msg -> `Error (false, msg)
  | None ->
  let config =
    { Workload.Network_experiment.default_config with
      Workload.Network_experiment.relays;
      slots = circuits;
      target_lifetimes = lifetimes;
      duration =
        (if duration_s <= 0 then Engine.Time.zero else Engine.Time.s duration_s);
      mean_think = Engine.Time.ms think_ms;
      budget =
        {
          Tor_model.Switchboard.max_circuits =
            (if max_circuits <= 0 then None else Some max_circuits);
          max_queued_bytes =
            (if budget_kib <= 0 then None
             else Some (Engine.Units.kib budget_kib));
        };
      shards;
    }
  in
  match Workload.Network_experiment.validate_config config with
  | Error msg -> `Error (false, msg)
  | Ok config ->
      if profile then begin
        (* [run_instrumented] sums the minor-GC deltas of every
           participating domain, so the per-event figure stays honest
           for sharded runs. *)
        let t0 = Unix.gettimeofday () in
        let r, minor_words =
          Workload.Network_experiment.run_instrumented ~seed config
        in
        let seconds = Unix.gettimeofday () -. t0 in
        Format.printf "%a@." Workload.Network_experiment.pp_result r;
        Printf.printf
          "profile: %.1fs wall, %d events, %.0f events/sec, %.2f minor \
           words/event, peak heap %d words\n"
          seconds r.wall_events
          (if seconds > 0. then float_of_int r.wall_events /. seconds else 0.)
          (if r.wall_events > 0 then
             minor_words /. float_of_int r.wall_events
           else 0.)
          (Gc.stat ()).Gc.top_heap_words;
        `Ok ()
      end
      else begin
        let comparison =
          match strat with
          | None ->
              Some
                (Workload.Network_experiment.compare_strategies ~jobs ~seed
                   config)
          | Some _ -> None
        in
        let rows =
          match (comparison, strat) with
          | Some c, _ ->
              [ ("circuitstart", c.Workload.Network_experiment.circuit_start);
                ("slowstart", c.slow_start); ("predictive", c.predictive) ]
          | None, Some s -> (
              match
                Workload.Network_experiment.run_many ~jobs
                  [ (seed,
                     { config with Workload.Network_experiment.strategy = s }) ]
              with
              | [ r ] -> [ (strategy_label s, r) ]
              | _ -> assert false)
          | None, None -> assert false
        in
        let t =
          Analysis.Table.create
            ~columns:
              [ "strategy"; "done"; "arrivals"; "refused"; "abandoned";
                "p50 ttlb"; "p90 ttlb"; "p99 ttlb"; "peak live" ]
        in
        let row label (r : Workload.Network_experiment.result) =
          Analysis.Table.add_row t
            [
              label;
              string_of_int r.completed;
              string_of_int r.arrivals;
              string_of_int r.refused_arrivals;
              string_of_int r.abandoned;
              network_q r.ttlb_all 0.5;
              network_q r.ttlb_all 0.9;
              network_q r.ttlb_all 0.99;
              string_of_int r.peak_active;
            ]
        in
        List.iter (fun (label, r) -> row label r) rows;
        print_string (Analysis.Table.render t);
        (match comparison with
        | Some c ->
            network_gap ~better:c.circuit_start.ttlb_all
              ~worse:c.slow_start.ttlb_all
        | None -> ());
        `Ok ()
      end

let network_cmd =
  let relays =
    Arg.(
      value & opt int 200
      & info [ "relays" ] ~docv:"N"
          ~doc:"Relay population size (heavy-tailed bandwidths; at least 4).")
  in
  let circuits =
    Arg.(
      value & opt int 2_000
      & info [ "circuits" ] ~docv:"N"
          ~doc:
            "Concurrent session slots — the circuit-pool size and the \
             concurrency ceiling.")
  in
  let lifetimes =
    Arg.(
      value & opt int 0
      & info [ "lifetimes" ] ~docv:"N"
          ~doc:
            "Stop after completing $(docv) circuit lifetimes (0 = 10x the \
             slot count).")
  in
  let duration =
    Arg.(
      value & opt int 0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Simulated-time horizon (0 = run until the lifetime goal).")
  in
  let think_ms =
    Arg.(
      value & opt int 200
      & info [ "think-ms" ] ~docv:"MS"
          ~doc:"Mean exponential think time between a slot's circuits, ms.")
  in
  let budget_kib =
    Arg.(
      value & opt int 0
      & info [ "budget-kib" ] ~docv:"KIB"
          ~doc:"Per-relay queued-cell-byte admission budget, KiB (0 = none).")
  in
  let max_circuits =
    Arg.(
      value & opt int 0
      & info [ "max-circuits" ] ~docv:"N"
          ~doc:"Per-relay circuit-count admission budget (0 = none).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Run one sequential CircuitStart pass and print events/sec, \
             minor words/event and peak heap words instead of the paired \
             CS-vs-SS table.")
  in
  let doc =
    "Consensus-scale network workload: a pooled round-level circuit \
     population over a heavy-tailed relay consensus, paired CircuitStart vs \
     slow start."
  in
  Cmd.v (Cmd.info "network" ~doc)
    Term.(
      ret
        (const run_network $ relays $ circuits $ lifetimes $ duration
       $ think_ms $ budget_kib $ max_circuits $ shards_arg $ strategy_opt_arg
       $ seed_arg $ jobs_arg $ profile))

(* ------------------------------------------------------------------ *)
(* churn-scale *)

let run_churn_scale relays circuits lifetimes duration_s think_ms budget_kib
    max_circuits leave_rate join_rate crash_fraction grace_ms epoch_ms spares
    shards strat seed jobs =
  match
    network_flag_errors ~relays ~circuits ~lifetimes ~duration_s ~think_ms
      ~budget_kib ~max_circuits
  with
  | Some msg -> `Error (false, msg)
  | None -> (
      match
        flag_errors
          [
            (grace_ms >= 0, "--grace-ms", ">= 0", grace_ms);
            (epoch_ms > 0, "--epoch-ms", "positive", epoch_ms);
            (spares >= 0, "--spares", ">= 0", spares);
          ]
      with
      | Some msg -> `Error (false, msg)
      | None ->
          if not (Float.is_finite leave_rate) || leave_rate < 0. then
            `Error (false, "--leave-rate must be a finite hazard >= 0")
          else if not (Float.is_finite join_rate) || join_rate < 0. then
            `Error (false, "--join-rate must be a finite hazard >= 0")
          else if
            (not (Float.is_finite crash_fraction))
            || crash_fraction < 0.
            || crash_fraction > 1.
          then `Error (false, "--crash-fraction must be in [0, 1]")
          else
            let config =
              { Workload.Network_experiment.default_config with
                Workload.Network_experiment.relays;
                slots = circuits;
                target_lifetimes = lifetimes;
                duration =
                  (if duration_s <= 0 then Engine.Time.zero
                   else Engine.Time.s duration_s);
                mean_think = Engine.Time.ms think_ms;
                budget =
                  {
                    Tor_model.Switchboard.max_circuits =
                      (if max_circuits <= 0 then None else Some max_circuits);
                    max_queued_bytes =
                      (if budget_kib <= 0 then None
                       else Some (Engine.Units.kib budget_kib));
                  };
                leave_hazard = leave_rate;
                join_hazard = join_rate;
                crash_fraction;
                drain_grace = Engine.Time.ms grace_ms;
                epoch_period = Engine.Time.ms epoch_ms;
                spare_relays = spares;
                shards;
              }
            in
            match Workload.Network_experiment.validate_config config with
            | Error msg -> `Error (false, msg)
            | Ok config ->
                let comparison =
                  match strat with
                  | None ->
                      Some
                        (Workload.Network_experiment.compare_strategies ~jobs
                           ~seed config)
                  | Some _ -> None
                in
                let rows =
                  match (comparison, strat) with
                  | Some c, _ ->
                      [ ("circuitstart",
                         c.Workload.Network_experiment.circuit_start);
                        ("slowstart", c.slow_start);
                        ("predictive", c.predictive) ]
                  | None, Some s -> (
                      match
                        Workload.Network_experiment.run_many ~jobs
                          [ (seed,
                             { config with
                               Workload.Network_experiment.strategy = s }) ]
                      with
                      | [ r ] -> [ (strategy_label s, r) ]
                      | _ -> assert false)
                  | None, None -> assert false
                in
                let t =
                  Analysis.Table.create
                    ~columns:
                      [ "strategy"; "done"; "arrivals"; "refused"; "kills";
                        "resumed"; "gone"; "drain-ref"; "p50 ttlb"; "p90 ttlb";
                        "p99 ttlb" ]
                in
                let row label (r : Workload.Network_experiment.result) =
                  Analysis.Table.add_row t
                    [
                      label;
                      string_of_int r.completed;
                      string_of_int r.arrivals;
                      string_of_int r.refused_arrivals;
                      string_of_int r.churn_kills;
                      string_of_int r.resumed;
                      string_of_int r.gone_draws;
                      string_of_int r.draining_refusals;
                      network_q r.ttlb_all 0.5;
                      network_q r.ttlb_all 0.9;
                      network_q r.ttlb_all 0.99;
                    ]
                in
                List.iter (fun (label, r) -> row label r) rows;
                print_string (Analysis.Table.render t);
                (* The schedule is seeded per strategy run, but each run
                   ends at its own goal time, so the counts can differ —
                   print each. *)
                let schedule label (r : Workload.Network_experiment.result) =
                  Printf.printf
                    "churn (%s): %d departs (%d crashes, %d drains done), %d \
                     restarts, %d epochs\n"
                    label r.churn_departs r.churn_crashes
                    r.churn_drains_completed r.churn_restarts r.churn_epochs
                in
                List.iter (fun (label, r) -> schedule label r) rows;
                (match comparison with
                | Some c ->
                    network_gap ~better:c.circuit_start.ttlb_all
                      ~worse:c.slow_start.ttlb_all
                | None -> ());
                `Ok ())

let churn_scale_cmd =
  let relays =
    Arg.(
      value & opt int 200
      & info [ "relays" ] ~docv:"N"
          ~doc:"Initial relay population size (at least 4, with an exit).")
  in
  let circuits =
    Arg.(
      value & opt int 2_000
      & info [ "circuits" ] ~docv:"N" ~doc:"Concurrent session slots.")
  in
  let lifetimes =
    Arg.(
      value & opt int 0
      & info [ "lifetimes" ] ~docv:"N"
          ~doc:
            "Stop after completing $(docv) circuit lifetimes (0 = 10x the \
             slot count).")
  in
  let duration =
    Arg.(
      value & opt int 0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Simulated-time horizon (0 = run until the lifetime goal).")
  in
  let think_ms =
    Arg.(
      value & opt int 200
      & info [ "think-ms" ] ~docv:"MS"
          ~doc:"Mean exponential think time between a slot's circuits, ms.")
  in
  let budget_kib =
    Arg.(
      value & opt int 0
      & info [ "budget-kib" ] ~docv:"KIB"
          ~doc:"Per-relay queued-cell-byte admission budget, KiB (0 = none).")
  in
  let max_circuits =
    Arg.(
      value & opt int 0
      & info [ "max-circuits" ] ~docv:"N"
          ~doc:"Per-relay circuit-count admission budget (0 = none).")
  in
  let leave_rate =
    Arg.(
      value & opt float 0.02
      & info [ "leave-rate" ] ~docv:"HAZARD"
          ~doc:"Per-relay per-second hazard of an up relay departing.")
  in
  let join_rate =
    Arg.(
      value & opt float 0.1
      & info [ "join-rate" ] ~docv:"HAZARD"
          ~doc:"Per-relay per-second hazard of a down relay (re)joining.")
  in
  let crash_fraction =
    Arg.(
      value & opt float 0.5
      & info [ "crash-fraction" ] ~docv:"F"
          ~doc:
            "Fraction of departures that crash (circuits die immediately) \
             rather than drain gracefully, in [0, 1].")
  in
  let grace_ms =
    Arg.(
      value & opt int 2_000
      & info [ "grace-ms" ] ~docv:"MS"
          ~doc:
            "Drain grace: how long a departing relay keeps forwarding \
             before its surviving circuits are killed.")
  in
  let epoch_ms =
    Arg.(
      value & opt int 5_000
      & info [ "epoch-ms" ] ~docv:"MS"
          ~doc:
            "Directory epoch period: clients draw paths from the population \
             as of the last boundary, so draws race departures by up to one \
             period.")
  in
  let spares =
    Arg.(
      value & opt int 0
      & info [ "spares" ] ~docv:"N"
          ~doc:
            "Extra relays that start down (and invisible) and join under \
             --join-rate.")
  in
  let doc =
    "Consensus-scale workload under relay churn: the network experiment's \
     pooled population with a seeded join/leave/crash/drain schedule and \
     directory epochs, paired CircuitStart vs slow start."
  in
  Cmd.v (Cmd.info "churn-scale" ~doc)
    Term.(
      ret
        (const run_churn_scale $ relays $ circuits $ lifetimes $ duration
       $ think_ms $ budget_kib $ max_circuits $ leave_rate $ join_rate
       $ crash_fraction $ grace_ms $ epoch_ms $ spares $ shards_arg
       $ strategy_opt_arg $ seed_arg $ jobs_arg))

(* ------------------------------------------------------------------ *)

let run_check runs seed oracles kind strategy replay out =
  if runs < 1 then `Error (false, "--runs must be positive")
  else
    let only =
      match kind with
      | None -> Ok None
      | Some k -> (
          match Check.Scenario.kind_of_string k with
          | Some parsed -> Ok (Some parsed)
          | None ->
              Error
                (Printf.sprintf
                   "--kind: unknown scenario kind %S (want faults, recovery, \
                    overload, network or churn)"
                   k))
    in
    let strat =
      match strategy with
      | None -> Ok None
      | Some s -> (
          match Check.Scenario.strategy_of_string s with
          | Some parsed -> Ok (Some parsed)
          | None ->
              Error
                (Printf.sprintf
                   "--strategy: unknown strategy %S (want circuitstart, \
                    slowstart or predictive)"
                   s))
    in
    match (only, strat) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok only, Ok strat -> (
        match Check.Oracle.selection_of_string oracles with
        | Error msg -> `Error (false, msg)
        | Ok selection -> (
            let ppf = Format.std_formatter in
            match replay with
            | Some line -> (
                match Check.Harness.replay ~selection line ppf with
                | Error msg -> `Error (false, msg)
                | Ok true -> `Ok ()
                | Ok false -> `Error (false, "replayed scenario fails"))
            | None ->
                let report =
                  Check.Harness.run ~selection ?only ?strat ?out ~runs ~seed ppf
                in
                if report.Check.Harness.failures = [] then `Ok ()
                else `Error (false, "invariant checks failed")))

let check_cmd =
  let runs =
    Arg.(
      value & opt int 50
      & info [ "runs" ] ~docv:"N" ~doc:"Number of random scenarios to check.")
  in
  let oracles =
    Arg.(
      value & opt string "all"
      & info [ "oracle" ] ~docv:"SET"
          ~doc:
            "Which invariant oracles to run: $(b,all) or a comma-separated \
             subset of clock, link, hop, incarnation, cwnd, delivery, budget, \
             teardown.")
  in
  let kind =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Pin every sampled scenario to one kind: $(b,faults), \
             $(b,recovery), $(b,overload), $(b,network) or $(b,churn) \
             (default: the mixed population).")
  in
  let strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Pin every sampled scenario's startup strategy: \
             $(b,circuitstart), $(b,slowstart) or $(b,predictive) \
             (default: the mixed population).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"LINE"
          ~doc:
            "Re-check one scenario from a reproducer line instead of sampling \
             (as printed by a failing run).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write shrunk reproducer lines for failing scenarios to $(docv).")
  in
  let doc =
    "Randomized differential checking: run invariant oracles over random \
     fault/recovery/overload scenarios, verify same-seed and jobs-1-vs-4 \
     determinism, and shrink any failure to a replayable line."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      ret
        (const run_check $ runs $ seed_arg $ oracles $ kind $ strategy $ replay
       $ out))

let () =
  (* Fail fast on a malformed CIRCUITSTART_JOBS: [Pool.default_jobs]
     itself stays total (it silently falls back), so the CLI is where a
     typo gets its one-line error instead of a quietly wrong core
     count. *)
  (match Engine.Pool.env_jobs () with
  | Ok _ -> ()
  | Error msg ->
      prerr_endline ("torsim: " ^ msg);
      exit 2);
  let doc = "CircuitStart: a slow start for multi-hop anonymity systems (simulator)" in
  let info = Cmd.info "torsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ trace_cmd; cdf_cmd; optimal_cmd; adaptive_cmd; sweep_cmd; cross_cmd;
            faults_cmd; recover_cmd; overload_cmd; network_cmd;
            churn_scale_cmd; check_cmd ]))

set datafile separator ','
set title "CircuitStart source cwnd, bottleneck 1 hop(s) away"
set xlabel "time [ms]"
set ylabel "source cwnd [KB]"
set key bottom right
set grid
plot '< grep "^cwnd_kb," fig1a_cwnd.csv' using 2:3 with steps lw 2 title "cwnd_kb", \
     '< grep "^optimal_kb," fig1a_cwnd.csv' using 2:3 with steps lw 2 title "optimal_kb"

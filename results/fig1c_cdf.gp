set datafile separator ','
set title "Time to last byte, 50 concurrent circuits"
set xlabel "time to last byte [s]"
set ylabel "cumulative distribution"
set key bottom right
set grid
set yrange [0:1]
plot '< grep "^with_circuitstart," fig1c_cdf.csv' using 2:3 with steps lw 2 title "with_circuitstart", \
     '< grep "^without_circuitstart," fig1c_cdf.csv' using 2:3 with steps lw 2 title "without_circuitstart"

(* Quickstart: build a tiny Tor-like overlay by hand, establish a
   circuit through the control plane, run one CircuitStart transfer
   over it and inspect what happened.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A simulation and a star around a hub: three relays plus a
     client and a server, each hanging off the hub by its own access
     link.  The builder wires links; finalize computes routes and
     installs the per-node machinery (switchboard, control automaton,
     BackTap dispatch). *)
  let sim = Engine.Sim.create () in
  let b = Workload.Tor_net.builder sim () in
  List.iter
    (fun (name, mbit) ->
      Workload.Tor_net.add_relay b
        { Workload.Relay_gen.nickname = name;
          bandwidth = Engine.Units.Rate.mbit mbit;
          latency = Engine.Time.ms 10;
          flags =
            [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
              Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ] })
    [ ("guard", 50); ("middle", 4); ("exit", 50) ];
  let client =
    Workload.Tor_net.add_endpoint b ~name:"client" ~rate:(Engine.Units.Rate.mbit 100)
      ~delay:(Engine.Time.ms 10)
  in
  let server =
    Workload.Tor_net.add_endpoint b ~name:"server" ~rate:(Engine.Units.Rate.mbit 100)
      ~delay:(Engine.Time.ms 10)
  in
  let net = Workload.Tor_net.finalize b in

  (* 2. A circuit over the three relays, in order. *)
  let relays = Tor_model.Directory.relays (Workload.Tor_net.directory net) in
  let circuit =
    Tor_model.Circuit.make
      ~id:(Tor_model.Circuit_id.next (Workload.Tor_net.circuit_ids net))
      ~client ~relays ~server
  in
  Format.printf "circuit: %a@." Tor_model.Circuit.pp circuit;

  (* 3. What does the analytic model say the source's optimal window
     is?  (This is the dashed line in the paper's Figure 1.) *)
  let path = Workload.Tor_net.path_model net circuit in
  Printf.printf "analytic optimum at the source: %d cells\n"
    (Optmodel.Optimal_window.source_window_cells path);

  (* 4. Establish the circuit through CREATE/EXTEND, then run a 512 KiB
     transfer under CircuitStart. *)
  Tor_model.Circuit_builder.build
    (Workload.Tor_net.switchboard net client)
    circuit
    ~on_done:(fun outcome ->
      match outcome with
      | Tor_model.Circuit_builder.Failed msg -> failwith msg
      | Tor_model.Circuit_builder.Refused _ | Tor_model.Circuit_builder.Gone _ ->
          failwith "refused"
      | Tor_model.Circuit_builder.Established { at } ->
          Printf.printf "circuit established after %s\n" (Engine.Time.to_string at);
          let transfer =
            Backtap.Transfer.deploy
              ~node_of:(Workload.Tor_net.backtap_node net)
              ~circuit ~bytes:(Engine.Units.kib 512)
              ~strategy:Circuitstart.Controller.Circuit_start
              ~on_complete:(fun finished ->
                Printf.printf "transfer complete at %s\n" (Engine.Time.to_string finished);
                Engine.Sim.stop sim)
              ()
          in
          Backtap.Transfer.start transfer;
          (* Peek at the source's controller when the run ends. *)
          at_exit (fun () ->
              match Backtap.Transfer.sender_at transfer 0 with
              | Some sender ->
                  let c = Backtap.Hop_sender.controller sender in
                  Printf.printf "source window settled at %d cells (%s)\n"
                    (Circuitstart.Controller.cwnd c)
                    (Format.asprintf "%a" Circuitstart.Controller.pp_phase
                       (Circuitstart.Controller.phase c));
                  (match Backtap.Transfer.time_to_last_byte transfer with
                  | Some t ->
                      Printf.printf "time to last byte: %s\n" (Engine.Time.to_string t)
                  | None -> ())
              | None -> ()))
    ();

  (* 5. Run the simulation. *)
  Engine.Sim.run sim ~until:(Engine.Time.s 30);
  Printf.printf "simulated %d events\n" (Engine.Sim.events_executed sim)

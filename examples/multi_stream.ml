(* Stream multiplexing: Tor carries many application streams over one
   circuit.  Here a bulk download and two small fetches share a single
   CircuitStart circuit; the round-robin cell scheduler keeps the small
   streams from starving behind the bulk one.

   Run with:  dune exec examples/multi_stream.exe *)

let () =
  let sim = Engine.Sim.create () in
  let b = Workload.Tor_net.builder sim () in
  List.iter
    (fun (name, mbit) ->
      Workload.Tor_net.add_relay b
        { Workload.Relay_gen.nickname = name;
          bandwidth = Engine.Units.Rate.mbit mbit;
          latency = Engine.Time.ms 10;
          flags =
            [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
              Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ] })
    [ ("guard", 50); ("middle", 5); ("exit", 50) ];
  let client =
    Workload.Tor_net.add_endpoint b ~name:"client" ~rate:(Engine.Units.Rate.mbit 100)
      ~delay:(Engine.Time.ms 10)
  in
  let server =
    Workload.Tor_net.add_endpoint b ~name:"server" ~rate:(Engine.Units.Rate.mbit 100)
      ~delay:(Engine.Time.ms 10)
  in
  let net = Workload.Tor_net.finalize b in
  let circuit =
    Tor_model.Circuit.make
      ~id:(Tor_model.Circuit_id.next (Workload.Tor_net.circuit_ids net))
      ~client
      ~relays:(Tor_model.Directory.relays (Workload.Tor_net.directory net))
      ~server
  in
  let streams = [ (1, Engine.Units.mib 1); (2, Engine.Units.kib 64); (3, Engine.Units.kib 64) ] in
  Tor_model.Circuit_builder.build
    (Workload.Tor_net.switchboard net client)
    circuit
    ~on_done:(fun outcome ->
      match outcome with
      | Tor_model.Circuit_builder.Failed msg -> failwith msg
      | Tor_model.Circuit_builder.Refused _ | Tor_model.Circuit_builder.Gone _ ->
          failwith "refused"
      | Tor_model.Circuit_builder.Established _ ->
          let d =
            Backtap.Transfer.deploy_streams
              ~node_of:(Workload.Tor_net.backtap_node net)
              ~circuit ~streams ~strategy:Circuitstart.Controller.Circuit_start
              ~on_complete:(fun _ -> Engine.Sim.stop sim)
              ()
          in
          Backtap.Transfer.start d;
          at_exit (fun () ->
              let started = Option.get (Backtap.Transfer.first_sent_at d) in
              List.iter
                (fun (id, bytes) ->
                  match Backtap.Transfer.stream_completed_at d id with
                  | Some at ->
                      Printf.printf "stream %d (%s): done after %.3fs\n" id
                        (Format.asprintf "%a" Engine.Units.pp_bytes bytes)
                        (Engine.Time.to_sec_f (Engine.Time.diff at started))
                  | None -> Printf.printf "stream %d: incomplete\n" id)
                streams))
    ();
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  print_endline
    "the 64 KiB fetches return early while the 1 MiB download continues -\n\
     round-robin scheduling keeps short streams interactive."

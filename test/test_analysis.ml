(* Tests for the analysis toolkit: CDFs, series, plots, tables, CSV. *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Cdf *)

let test_cdf_basics () =
  let cdf = Analysis.Cdf.of_samples [| 1.; 2.; 2.; 4. |] in
  Alcotest.(check int) "count" 4 (Analysis.Cdf.count cdf);
  Alcotest.(check (float 1e-9)) "below 0" 0. (Analysis.Cdf.fraction_below cdf 0.);
  Alcotest.(check (float 1e-9)) "below 1" 0.25 (Analysis.Cdf.fraction_below cdf 1.);
  Alcotest.(check (float 1e-9)) "below 2" 0.75 (Analysis.Cdf.fraction_below cdf 2.);
  Alcotest.(check (float 1e-9)) "below 100" 1. (Analysis.Cdf.fraction_below cdf 100.);
  Alcotest.(check (float 1e-9)) "min" 1. (Analysis.Cdf.min_value cdf);
  Alcotest.(check (float 1e-9)) "max" 4. (Analysis.Cdf.max_value cdf);
  Alcotest.(check (float 1e-9)) "mean" 2.25 (Analysis.Cdf.mean cdf)

let test_cdf_quantiles () =
  let cdf = Analysis.Cdf.of_samples [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check (float 1e-9)) "q0.25" 10. (Analysis.Cdf.quantile cdf 0.25);
  Alcotest.(check (float 1e-9)) "q0.5" 20. (Analysis.Cdf.quantile cdf 0.5);
  Alcotest.(check (float 1e-9)) "q1" 40. (Analysis.Cdf.quantile cdf 1.);
  Alcotest.check_raises "bad q" (Invalid_argument "Cdf.quantile: q must be in [0, 1]")
    (fun () -> ignore (Analysis.Cdf.quantile cdf 1.5))

let test_sketch_empty_guards () =
  let empty = Engine.Stats.Sketch.create ~lo:0. ~hi:10. () in
  (* The partial API still raises... *)
  Alcotest.check_raises "quantile raises on empty"
    (Invalid_argument "Sketch.quantile: empty sketch") (fun () ->
      ignore (Engine.Stats.Sketch.quantile empty 0.5));
  (* ...and the total variants answer None, so report code can print
     "-" for a run that completed nothing instead of dying. *)
  Alcotest.(check bool) "quantile_opt None on empty" true
    (Engine.Stats.Sketch.quantile_opt empty 0.5 = None);
  Alcotest.(check bool) "of_sketch_opt None on empty" true
    (Analysis.Cdf.of_sketch_opt empty = None);
  Engine.Stats.Sketch.add empty 3.;
  (match Engine.Stats.Sketch.quantile_opt empty 0.5 with
  | Some q ->
      Alcotest.(check (float 1e-9)) "quantile_opt = quantile once non-empty"
        (Engine.Stats.Sketch.quantile empty 0.5)
        q
  | None -> Alcotest.fail "quantile_opt None on a non-empty sketch");
  match Analysis.Cdf.of_sketch_opt empty with
  | Some cdf ->
      (* One sample: the curve is clamped to the exact observed
         extremes, so it collapses onto the sample. *)
      Alcotest.(check (float 1e-9)) "of_sketch_opt min" 3.
        (Analysis.Cdf.min_value cdf);
      Alcotest.(check (float 1e-9)) "of_sketch_opt max" 3.
        (Analysis.Cdf.max_value cdf)
  | None -> Alcotest.fail "of_sketch_opt None on a non-empty sketch"

let test_cdf_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Cdf.of_samples: empty") (fun () ->
      ignore (Analysis.Cdf.of_samples [||]));
  Alcotest.check_raises "nan" (Invalid_argument "Cdf.of_samples: non-finite") (fun () ->
      ignore (Analysis.Cdf.of_samples [| Float.nan |]))

let test_cdf_gap_and_dominance () =
  let fast = Analysis.Cdf.of_samples (Array.init 100 (fun i -> float_of_int i)) in
  let slow = Analysis.Cdf.of_samples (Array.init 100 (fun i -> float_of_int i +. 0.5)) in
  Alcotest.(check (float 1e-6)) "gap 0.5" 0.5 (Analysis.Cdf.horizontal_gap ~better:fast ~worse:slow);
  Alcotest.(check bool) "dominates" true (Analysis.Cdf.dominates ~better:fast ~worse:slow);
  Alcotest.(check bool) "reverse does not" false (Analysis.Cdf.dominates ~better:slow ~worse:fast);
  Alcotest.(check bool) "reverse gap negative" true
    (Analysis.Cdf.horizontal_gap ~better:slow ~worse:fast < 0.)

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"quantile is monotone in q"
    QCheck2.Gen.(list_size (int_range 2 100) (float_range 0. 1000.))
    (fun xs ->
      let cdf = Analysis.Cdf.of_samples (Array.of_list xs) in
      let qs = [ 0.1; 0.3; 0.5; 0.7; 0.9 ] in
      let vals = List.map (Analysis.Cdf.quantile cdf) qs in
      let rec mono = function
        | a :: (b :: _ as r) -> a <= b && mono r
        | _ -> true
      in
      mono vals)

let prop_fraction_below_quantile =
  QCheck2.Test.make ~name:"fraction_below (quantile q) >= q"
    QCheck2.Gen.(
      pair (list_size (int_range 1 50) (float_range 0. 100.)) (float_range 0.01 1.))
    (fun (xs, q) ->
      let cdf = Analysis.Cdf.of_samples (Array.of_list xs) in
      Analysis.Cdf.fraction_below cdf (Analysis.Cdf.quantile cdf q) >= q -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_conversions () =
  let ts = Engine.Timeseries.create () in
  Engine.Timeseries.record ts (Engine.Time.ms 100) 10.;
  Engine.Timeseries.record ts (Engine.Time.ms 200) 20.;
  let s =
    Analysis.Series.of_timeseries ts ~x_of:Analysis.Series.ms_of_time
      ~y_of:(Analysis.Series.kb_of_cells ~cell_size:512)
  in
  Alcotest.(check int) "points" 2 (Array.length s);
  Alcotest.(check (float 1e-9)) "x in ms" 100. (fst s.(0));
  Alcotest.(check (float 1e-9)) "y in kB" 5.12 (snd s.(0));
  Alcotest.(check (float 1e-9)) "y max" 10.24 (Analysis.Series.y_max s);
  Alcotest.(check (option (float 1e-9))) "last y" (Some 10.24) (Analysis.Series.last_y s)

let test_series_constant () =
  let s = Analysis.Series.constant ~x_max:100. ~step:25. 7. in
  Alcotest.(check int) "five points" 5 (Array.length s);
  Array.iter (fun (_, y) -> Alcotest.(check (float 1e-9)) "flat" 7. y) s;
  Alcotest.check_raises "bad step" (Invalid_argument "Series.constant: step must be positive")
    (fun () -> ignore (Analysis.Series.constant ~x_max:1. ~step:0. 1.))

let test_series_map_y () =
  let s = [| (0., 1.); (1., 2.) |] in
  let doubled = Analysis.Series.map_y (fun y -> y *. 2.) s in
  Alcotest.(check (float 1e-9)) "mapped" 4. (snd doubled.(1))

(* ------------------------------------------------------------------ *)
(* Ascii plot *)

let test_ascii_plot_renders () =
  let spec =
    { Analysis.Ascii_plot.label = "demo"; glyph = '*';
      points = Array.init 20 (fun i -> (float_of_int i, float_of_int (i * i))) }
  in
  let out = Analysis.Ascii_plot.render ~width:40 ~height:10 ~x_label:"t" ~y_label:"v" [ spec ] in
  Alcotest.(check bool) "contains glyph" true (String.contains out '*');
  Alcotest.(check bool) "contains legend" true (contains out "demo")

let test_ascii_plot_empty () =
  Alcotest.(check string) "note" "(no data to plot)\n" (Analysis.Ascii_plot.render [])

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Analysis.Table.create ~columns:[ "name"; "value" ] in
  Analysis.Table.add_row t [ "alpha"; "1.000" ];
  Analysis.Table.add_row t [ "b"; "22.500" ];
  Alcotest.(check int) "rows" 2 (Analysis.Table.row_count t);
  let out = Analysis.Table.render t in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + 2 rows + trailing" 5 (List.length lines);
  Alcotest.(check bool) "first is header" true
    (String.length (List.nth lines 0) > 0 && String.sub (List.nth lines 0) 0 4 = "name")

let test_table_errors () =
  let t = Analysis.Table.create ~columns:[ "a" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Analysis.Table.add_row t [ "x"; "y" ]);
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (Analysis.Table.create ~columns:[]))

let test_table_cells () =
  Alcotest.(check string) "float" "1.500" (Analysis.Table.cell_f 1.5);
  Alcotest.(check string) "time" "0.250s" (Analysis.Table.cell_time (Engine.Time.ms 250))

(* ------------------------------------------------------------------ *)
(* CSV *)

let test_series_csv () =
  let csv = Analysis.Csv_out.series_csv [ ("s1", [| (1., 2.) |]) ] in
  Alcotest.(check string) "format" "series,x,y\ns1,1.000000,2.000000\n" csv

let test_cdf_csv () =
  let cdf = Analysis.Cdf.of_samples [| 1.; 2. |] in
  let csv = Analysis.Csv_out.cdf_csv [ ("c", cdf) ] in
  Alcotest.(check string) "format"
    "series,value,fraction\nc,1.000000,0.500000\nc,2.000000,1.000000\n" csv

let test_write_file () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "circuitstart_test/x/y.csv" in
  Analysis.Csv_out.write_file ~path "hello\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "hello" line

(* ------------------------------------------------------------------ *)
(* Gnuplot *)

let test_gnuplot_series_script () =
  let gp =
    Analysis.Gnuplot.series_script ~csv_file:"x.csv" ~title:"t" ~x_label:"x" ~y_label:"y"
      ~series:[ "a"; "b" ]
  in
  Alcotest.(check bool) "mentions csv" true (contains gp "x.csv");
  Alcotest.(check bool) "plots both series" true
    (contains gp "'a'" || contains gp "\"a\"");
  Alcotest.(check bool) "one plot statement" true (contains gp "plot ")

let test_gnuplot_cdf_script () =
  let gp = Analysis.Gnuplot.cdf_script ~csv_file:"c.csv" ~title:"t" ~x_label:"x" ~series:[ "s" ] in
  Alcotest.(check bool) "yrange clamped" true (contains gp "set yrange [0:1]")

(* ------------------------------------------------------------------ *)
(* Fairness *)

let test_jain_known () =
  Alcotest.(check (float 1e-9)) "perfectly even" 1.
    (Analysis.Fairness.jain_index [| 5.; 5.; 5.; 5. |]);
  Alcotest.(check (float 1e-9)) "one hog" 0.25
    (Analysis.Fairness.jain_index [| 1.; 0.; 0.; 0. |]);
  Alcotest.(check (float 1e-9)) "half-half" 0.5
    (Analysis.Fairness.jain_index [| 1.; 1.; 0.; 0. |])

let test_jain_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Fairness.jain_index: empty")
    (fun () -> ignore (Analysis.Fairness.jain_index [||]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Fairness.jain_index: all-zero allocation") (fun () ->
      ignore (Analysis.Fairness.jain_index [| 0.; 0. |]));
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Analysis.Fairness.jain_index [| 1.; -1. |]);
       false
     with Invalid_argument _ -> true)

let test_throughputs () =
  let tp = Analysis.Fairness.throughputs_bytes_per_sec ~bytes_each:1000 [| 2.; 4. |] in
  Alcotest.(check (array (float 1e-9))) "bytes/s" [| 500.; 250. |] tp

let test_min_max_ratio () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Analysis.Fairness.min_max_ratio [| 2.; 4. |])

let prop_jain_bounds =
  QCheck2.Test.make ~name:"Jain index lies in [1/n, 1]"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range 0.01 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let j = Analysis.Fairness.jain_index arr in
      let n = float_of_int (Array.length arr) in
      j >= (1. /. n) -. 1e-9 && j <= 1. +. 1e-9)

(* ------------------------------------------------------------------ *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_quantile_monotone; prop_fraction_below_quantile; prop_jain_bounds ]

let () =
  Alcotest.run "analysis"
    [
      ( "cdf",
        [
          Alcotest.test_case "basics" `Quick test_cdf_basics;
          Alcotest.test_case "quantiles" `Quick test_cdf_quantiles;
          Alcotest.test_case "errors" `Quick test_cdf_errors;
          Alcotest.test_case "empty sketch guards" `Quick
            test_sketch_empty_guards;
          Alcotest.test_case "gap and dominance" `Quick test_cdf_gap_and_dominance;
        ] );
      ( "series",
        [
          Alcotest.test_case "conversions" `Quick test_series_conversions;
          Alcotest.test_case "constant" `Quick test_series_constant;
          Alcotest.test_case "map_y" `Quick test_series_map_y;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "renders" `Quick test_ascii_plot_renders;
          Alcotest.test_case "empty" `Quick test_ascii_plot_empty;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "errors" `Quick test_table_errors;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "gnuplot",
        [
          Alcotest.test_case "series script" `Quick test_gnuplot_series_script;
          Alcotest.test_case "cdf script" `Quick test_gnuplot_cdf_script;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "jain known values" `Quick test_jain_known;
          Alcotest.test_case "jain errors" `Quick test_jain_errors;
          Alcotest.test_case "throughputs" `Quick test_throughputs;
          Alcotest.test_case "min/max ratio" `Quick test_min_max_ratio;
        ] );
      ( "csv",
        [
          Alcotest.test_case "series csv" `Quick test_series_csv;
          Alcotest.test_case "cdf csv" `Quick test_cdf_csv;
          Alcotest.test_case "write file" `Quick test_write_file;
        ] );
      ("properties", qtests);
    ]

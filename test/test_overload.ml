(* Tests for relay overload protection: admission control refuses
   CREATEs at budget, the OOM responder sheds the heaviest circuit,
   refused relays are never excluded (busy is not crashed), and the
   flash-crowd experiment is byte-identical across --jobs values. *)

let relay_flags =
  [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
    Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ]

let small_config =
  { Workload.Overload_experiment.default_config with
    sessions = 6;
    transfer_bytes = Engine.Units.kib 32;
    horizon = Engine.Time.s 60;
  }

let kinds_of events =
  List.sort_uniq compare (List.map (fun e -> e.Engine.Trace.kind) events)

(* Without budgets the crowd is just contention: nothing is refused,
   nothing is killed, everyone finishes. *)
let test_unbudgeted_crowd_completes () =
  let r =
    Workload.Overload_experiment.run ~seed:5
      { small_config with max_circuits = None; max_queued_bytes = None }
  in
  Alcotest.(check int) "all sessions complete" r.sessions r.completed;
  Alcotest.(check int) "no refusals" 0 r.refusals;
  Alcotest.(check int) "no refused builds" 0 r.refused_builds;
  Alcotest.(check int) "no oom kills" 0 r.oom_kills;
  Alcotest.(check int) "no overload transitions" 0 r.overload_enters;
  Alcotest.(check int) "every byte delivered"
    (r.sessions * Engine.Units.kib 32)
    r.delivered_bytes

(* The default (tight) budgets must make both protection mechanisms
   fire — and the crowd must degrade, not collapse. *)
let test_tight_budgets_refuse_and_kill () =
  let r =
    Workload.Overload_experiment.run ~seed:42
      Workload.Overload_experiment.default_config
  in
  Alcotest.(check bool)
    (Printf.sprintf "admission control refused builds (%d)" r.refusals)
    true (r.refusals > 0);
  Alcotest.(check bool)
    (Printf.sprintf "clients saw refusals (%d)" r.refused_builds)
    true (r.refused_builds > 0);
  Alcotest.(check bool)
    (Printf.sprintf "oom responder killed circuits (%d)" r.oom_kills)
    true (r.oom_kills > 0);
  Alcotest.(check bool) "refusal rate in (0, 1)" true
    (r.refusal_rate > 0. && r.refusal_rate < 1.);
  Alcotest.(check bool)
    (Printf.sprintf "some sessions still complete (%d/%d)" r.completed
       r.sessions)
    true (r.completed > 0);
  Alcotest.(check bool) "completed sessions delivered their bytes" true
    (r.delivered_bytes >= r.completed * Engine.Units.kib 64);
  (* The synchronous OOM responder bounds occupancy by the budget plus
     at most one in-flight charge. *)
  (match
     Workload.Overload_experiment.default_config.max_queued_bytes
   with
  | Some cap ->
      Alcotest.(check bool)
        (Printf.sprintf "relay hwm %d within cap %d + one cell" r.relay_byte_hwm
           cap)
        true
        (r.relay_byte_hwm <= cap + Backtap.Wire.cell_size)
  | None -> Alcotest.fail "default config must set max_queued_bytes");
  let kinds = kinds_of r.events in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        ("event log has a " ^ Engine.Trace.kind_to_string k ^ " event")
        true (List.mem k kinds))
    [ Engine.Trace.Refused; Engine.Trace.Oom_kill; Engine.Trace.Overload_enter;
      Engine.Trace.Overload_exit ]

(* The regression behind the whole design: a refusal must NOT put the
   busy relay on the exclusion list.  Three relays, three hops — there
   is exactly one possible path, so if the session excluded a refusing
   relay it could never build again (no-path exhaustion).  All relays
   start at circuit budget 0 (always refuse); at t = 1 s the load
   "drains" (budgets lifted) and the session must complete through the
   very relays that refused it. *)
let test_busy_then_idle_relay_is_reused () =
  let sim = Engine.Sim.create () in
  let b = Workload.Tor_net.builder sim () in
  List.iter (Workload.Tor_net.add_relay b)
    (List.init 3 (fun i ->
         { Workload.Relay_gen.nickname = Printf.sprintf "r%d" i;
           bandwidth = Engine.Units.Rate.mbit 10;
           latency = Engine.Time.ms 5;
           flags = relay_flags }));
  let client =
    Workload.Tor_net.add_endpoint b ~name:"client"
      ~rate:(Engine.Units.Rate.mbit 100) ~delay:(Engine.Time.ms 5)
  in
  let server =
    Workload.Tor_net.add_endpoint b ~name:"server"
      ~rate:(Engine.Units.Rate.mbit 100) ~delay:(Engine.Time.ms 5)
  in
  let net = Workload.Tor_net.finalize b in
  let ctls =
    List.map
      (fun (r : Tor_model.Relay_info.t) ->
        Workload.Tor_net.relay_ctl net r.node)
      (Tor_model.Directory.relays (Workload.Tor_net.directory net))
  in
  let set_budget budget =
    List.iter (fun ctl -> Tor_model.Relay_ctl.set_budget ctl budget) ctls
  in
  set_budget
    { Tor_model.Switchboard.max_circuits = Some 0; max_queued_bytes = None };
  let bytes = Engine.Units.kib 8 in
  let deploy ~circuit ~offset ~on_complete ~on_fail =
    let d =
      Backtap.Transfer.deploy
        ~node_of:(Workload.Tor_net.backtap_node net)
        ~circuit ~bytes ~strategy:Circuitstart.Controller.Circuit_start
        ~params:Circuitstart.Params.default ~offset ~on_complete
        ~on_fail:(fun at -> on_fail ~failed_hop:None at)
        ()
    in
    {
      Tor_model.Session.start = (fun () -> Backtap.Transfer.start d);
      delivered = (fun () -> Backtap.Transfer.delivered_bytes d);
      teardown =
        (fun () ->
          List.iter Backtap.Hop_sender.abort (Backtap.Transfer.senders d);
          Backtap.Transfer.teardown d);
    }
  in
  let session =
    Tor_model.Session.create
      ~sb:(Workload.Tor_net.switchboard net client)
      ~directory:(Workload.Tor_net.directory net)
      ~ids:(Workload.Tor_net.circuit_ids net)
      ~server ~rng:(Engine.Rng.create 11) ~hops:3 ~deploy ~max_rebuilds:10
      ~on_outcome:(fun _ -> Engine.Sim.stop sim)
      ()
  in
  ignore
    (Engine.Sim.schedule_at sim Engine.Time.zero (fun () ->
         Tor_model.Session.start session)
      : Engine.Sim.handle);
  ignore
    (Engine.Sim.schedule_at sim (Engine.Time.s 1) (fun () ->
         set_budget Tor_model.Switchboard.no_budget)
      : Engine.Sim.handle);
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check bool)
    (Printf.sprintf "build was refused while busy (%d)"
       (Tor_model.Session.refused_builds session))
    true
    (Tor_model.Session.refused_builds session >= 1);
  Alcotest.(check bool) "no relay was excluded" true
    (Tor_model.Session.excluded session = []);
  (match Tor_model.Session.outcome session with
  | Some (Tor_model.Session.Completed _) -> ()
  | Some (Tor_model.Session.Exhausted { reason; _ }) ->
      Alcotest.fail
        ("session exhausted (" ^ Tor_model.Session.reason_to_string reason
       ^ "): a refused relay was not reusable after its load drained")
  | None -> Alcotest.fail "session never terminated");
  Alcotest.(check int) "every byte delivered through the once-busy relays"
    bytes
    (Tor_model.Session.delivered_bytes session)

(* Experiment-level variant: a circuit-count budget alone causes
   refusals, yet the crowd drains to completion because refused relays
   stay selectable.  A session may still burn through its rebuild
   budget while the relays are hot — what must NEVER happen is a
   no-path exhaustion, the signature of a refusal poisoning the
   exclusion list (4 relays, 3 hops: excluding two ends all paths). *)
let test_refusals_drain_to_completion () =
  let r =
    Workload.Overload_experiment.run ~seed:3
      { small_config with
        max_circuits = Some 2;
        max_queued_bytes = None;
        max_rebuilds = 20;
        mean_interarrival = Engine.Time.ms 400;
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "refusals occurred (%d)" r.refusals)
    true (r.refusals > 0);
  List.iter
    (fun (e : Engine.Trace.event) ->
      if e.kind = Engine.Trace.Exhausted then
        Alcotest.(check bool)
          ("exhaustion is never no-path: " ^ e.detail)
          false
          (String.length e.detail >= 7 && String.sub e.detail 0 7 = "no-path"))
    r.events;
  Alcotest.(check bool)
    (Printf.sprintf "most sessions complete (%d/%d)" r.completed r.sessions)
    true (r.completed >= r.sessions - 1);
  Alcotest.(check int) "none stuck at the horizon" 0 r.timed_out

let test_compare_strategies_paired () =
  let c =
    Workload.Overload_experiment.compare_strategies ~seed:7 small_config
  in
  List.iter
    (fun (label, (r : Workload.Overload_experiment.result)) ->
      Alcotest.(check int) (label ^ " crowd size") small_config.sessions
        r.sessions;
      Alcotest.(check int) (label ^ " accounted")
        r.sessions
        (r.completed + r.exhausted + r.timed_out))
    [ ("circuitstart", c.circuit_start); ("slowstart", c.slow_start) ]

let test_deterministic_across_jobs () =
  let tasks =
    [
      (7, small_config);
      (8, { small_config with strategy = Circuitstart.Controller.Slow_start });
      (9, { small_config with max_queued_bytes = Some (Engine.Units.kib 24) });
    ]
  in
  (* Structural equality covers every field, including the full trace
     event list — ordering must not depend on the pool. *)
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Overload_experiment.run_many ~jobs tasks)

let () =
  Alcotest.run "overload"
    [
      ( "protection",
        [
          Alcotest.test_case "unbudgeted crowd completes" `Quick
            test_unbudgeted_crowd_completes;
          Alcotest.test_case "tight budgets refuse and kill" `Quick
            test_tight_budgets_refuse_and_kill;
          Alcotest.test_case "busy-then-idle relay is reused" `Quick
            test_busy_then_idle_relay_is_reused;
          Alcotest.test_case "refusals drain to completion" `Quick
            test_refusals_drain_to_completion;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "compare_strategies paired" `Quick
            test_compare_strategies_paired;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_deterministic_across_jobs;
        ] );
    ]

(* Tests for the consensus-scale network workload and its supporting
   machinery: the streaming histogram sketch, the pooled circuit state,
   the CS-vs-SS shape at small scale, the Network check-harness kind,
   and the perf-trajectory gate behind bench/trajectory.exe. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Stats.Sketch *)

let test_sketch_basics () =
  let sk = Engine.Stats.Sketch.create ~bins:10 ~lo:0. ~hi:10. () in
  Alcotest.(check int) "empty count" 0 (Engine.Stats.Sketch.count sk);
  List.iter (Engine.Stats.Sketch.add sk) [ 1.5; 2.5; 2.6; 9.9 ];
  Alcotest.(check int) "count" 4 (Engine.Stats.Sketch.count sk);
  Alcotest.(check (float 1e-9)) "min exact" 1.5 (Engine.Stats.Sketch.min sk);
  Alcotest.(check (float 1e-9)) "max exact" 9.9 (Engine.Stats.Sketch.max sk);
  Alcotest.(check (float 1e-9)) "mean exact" 4.125 (Engine.Stats.Sketch.mean sk);
  (* Out-of-range samples land in side bins but keep exact extremes. *)
  Engine.Stats.Sketch.add sk (-3.);
  Engine.Stats.Sketch.add sk 25.;
  Alcotest.(check (float 1e-9)) "min below range" (-3.)
    (Engine.Stats.Sketch.min sk);
  Alcotest.(check (float 1e-9)) "max above range" 25.
    (Engine.Stats.Sketch.max sk);
  Alcotest.(check (float 1e-9)) "q0 is min" (-3.)
    (Engine.Stats.Sketch.quantile sk 0.);
  Alcotest.(check (float 1e-9)) "q1 is max" 25.
    (Engine.Stats.Sketch.quantile sk 1.)

let test_sketch_rejects () =
  Alcotest.check_raises "lo >= hi"
    (Invalid_argument "Sketch.create: need finite lo < hi") (fun () ->
      ignore (Engine.Stats.Sketch.create ~lo:1. ~hi:1. ()));
  let sk = Engine.Stats.Sketch.create ~lo:0. ~hi:1. () in
  Alcotest.(check bool) "nan add raises" true
    (match Engine.Stats.Sketch.add sk Float.nan with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "empty quantile raises" true
    (match Engine.Stats.Sketch.quantile sk 0.5 with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true)

(* Exact quantile under the same convention as Sketch.quantile:
   smallest sample whose fraction-below reaches q. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) i))

let gen_samples =
  QCheck2.Gen.(list_size (int_range 1 300) (float_bound_exclusive 100.))

let prop_sketch_quantile_within_bin =
  QCheck2.Test.make ~name:"Sketch.quantile within one bin of exact"
    ~count:100
    QCheck2.Gen.(pair gen_samples (int_range 0 100))
    (fun (xs, qi) ->
      let bins = 64 in
      let width = 100. /. float_of_int bins in
      let sk = Engine.Stats.Sketch.create ~bins ~lo:0. ~hi:100. () in
      List.iter (Engine.Stats.Sketch.add sk) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let q = float_of_int qi /. 100. in
      let est = Engine.Stats.Sketch.quantile sk q in
      Float.abs (est -. exact_quantile sorted q) <= width +. 1e-9)

(* Associativity is checked on the observable distribution — counters,
   extremes, cdf — not on raw structural equality: the exact running
   [sum] is a float, and float addition re-associated across merges can
   differ in the last ulp. *)
let prop_sketch_merge_associative =
  QCheck2.Test.make ~name:"Sketch.merge associative, order-independent"
    ~count:100
    QCheck2.Gen.(triple gen_samples gen_samples gen_samples)
    (fun (a, b, c) ->
      let mk xs =
        let sk = Engine.Stats.Sketch.create ~bins:32 ~lo:0. ~hi:100. () in
        List.iter (Engine.Stats.Sketch.add sk) xs;
        sk
      in
      let sa = mk a and sb = mk b and sc = mk c in
      let m = Engine.Stats.Sketch.merge in
      let same x y =
        Engine.Stats.Sketch.count x = Engine.Stats.Sketch.count y
        && compare (Engine.Stats.Sketch.min x) (Engine.Stats.Sketch.min y) = 0
        && compare (Engine.Stats.Sketch.max x) (Engine.Stats.Sketch.max y) = 0
        && compare
             (Engine.Stats.Sketch.cdf_points x)
             (Engine.Stats.Sketch.cdf_points y)
           = 0
        && Float.abs (Engine.Stats.Sketch.mean x -. Engine.Stats.Sketch.mean y)
           <= 1e-9 *. (1. +. Float.abs (Engine.Stats.Sketch.mean x))
      in
      same (m (m sa sb) sc) (m sa (m sb sc))
      && same (m (m sa sb) sc) (mk (a @ b @ c)))

(* ------------------------------------------------------------------ *)
(* Network experiment: pooled state and determinism *)

let small_config =
  {
    Workload.Network_experiment.default_config with
    Workload.Network_experiment.relays = 20;
    slots = 60;
    target_lifetimes = 600;
    mean_think = Engine.Time.ms 40;
    elephant_fraction = 0.1;
    elephant_cells = 128;
    mice_cells = 16;
    sketch_bins = 512;
    sketch_max = Engine.Time.s 60;
  }

let test_pool_recycles_no_orphans () =
  let r = Workload.Network_experiment.run ~seed:11 small_config in
  Alcotest.(check int) "hits the lifetime goal"
    (Workload.Network_experiment.lifetimes_goal small_config)
    r.Workload.Network_experiment.completed;
  Alcotest.(check bool) "records were recycled" true
    (r.Workload.Network_experiment.pool_recycles > 0);
  Alcotest.(check int) "no orphaned circuit registrations" 0
    r.Workload.Network_experiment.orphaned_circuits;
  Alcotest.(check int) "no orphaned queued cells" 0
    r.Workload.Network_experiment.orphaned_cells;
  Alcotest.(check bool) "peak never exceeds the slot population" true
    (r.Workload.Network_experiment.peak_active <= small_config.slots)

let test_network_jobs_deterministic () =
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Network_experiment.run_many ~jobs
        [
          (3, small_config);
          (7, { small_config with diurnal_amplitude = 0.5 });
        ])

let test_validate_config_rejects () =
  let bad msg c =
    match Workload.Network_experiment.validate_config c with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted invalid config: " ^ msg)
  in
  bad "too few relays" { small_config with relays = 3 };
  bad "no slots" { small_config with slots = 0 };
  bad "zero think" { small_config with mean_think = Engine.Time.zero };
  bad "diurnal amplitude > 0.95" { small_config with diurnal_amplitude = 1.2 };
  bad "elephant fraction > 1" { small_config with elephant_fraction = 1.5 };
  bad "cwnd cap below initial" { small_config with cwnd_cap = 0 }

(* Small-scale shape check against the paper's Figure 1c: on a paired
   seed, CircuitStart's early compensation beats slow start at the
   median, and the streaming sketch agrees with the exact retained
   samples to within one bin width.  The config keeps the BDP a few
   cells wide (64-cell mice over a 100-relay population) — at tiny
   scale the window clamps to 1 and both strategies degenerate to the
   same trajectory. *)
let shape_config =
  {
    Workload.Network_experiment.default_config with
    Workload.Network_experiment.relays = 100;
    slots = 400;
    target_lifetimes = 2_000;
    mean_think = Engine.Time.ms 100;
    elephant_fraction = 0.1;
    elephant_cells = 512;
    mice_cells = 64;
    sketch_bins = 512;
    sketch_max = Engine.Time.s 60;
  }

let test_small_scale_shape_and_sketch_agreement () =
  let config = { shape_config with retain_exact = true } in
  let cmp = Workload.Network_experiment.compare_strategies ~seed:11 config in
  let cs = cmp.Workload.Network_experiment.circuit_start in
  let ss = cmp.Workload.Network_experiment.slow_start in
  let p50 (r : Workload.Network_experiment.result) =
    Engine.Stats.Sketch.quantile r.ttlb_all 0.5
  in
  Alcotest.(check bool) "CS median TTLB <= SS median TTLB" true
    (p50 cs <= p50 ss +. 1e-9);
  let width =
    Engine.Time.to_sec_f config.sketch_max /. float_of_int config.sketch_bins
  in
  let exact = Array.copy cs.Workload.Network_experiment.ttlb_exact in
  Array.sort compare exact;
  Alcotest.(check int) "exact samples retained"
    cs.Workload.Network_experiment.completed (Array.length exact);
  List.iter
    (fun q ->
      let est = Engine.Stats.Sketch.quantile cs.ttlb_all q in
      Alcotest.(check bool)
        (Printf.sprintf "sketch q%.2f within one bin of exact" q)
        true
        (Float.abs (est -. exact_quantile exact q) <= width +. 1e-9))
    [ 0.25; 0.5; 0.9; 0.99 ]

(* ------------------------------------------------------------------ *)
(* The Network check kind catches a reintroduced pool-recycling bug *)

let selection = Check.Oracle.all
let check sc = Check.Harness.check_scenario ~selection sc

(* A Network scenario small enough to shrink quickly but busy enough
   that circuits complete (and therefore release pool records). *)
let pool_prone =
  {
    Check.Scenario.kind = Check.Scenario.Network;
    seed = 5;
    relays = 8;
    position = 1;
    bytes = 8 * 1024;
    loss_ppm = 0;
    burst = false;
    outage_ms = None;
    crash_ms = None;
    queue_cells = 0;
    strategy = Check.Scenario.Cs;
    bottleneck_kbps = 1000;
    fast_kbps = 2000;
    endpoint_kbps = 100_000;
    max_rebuilds = 3;
    sessions = 8;
    oload_circuits = 0;
    oload_kib = 0;
    arrival_ms = 20;
    lifet = 40;
    leave_pm = 0;
    join_pm = 0;
    crashpct = 0;
    grace_ms = 0;
    epoch_ms = 0;
    spares = 0;
  }

let find_failing_network () =
  if Result.is_error (check pool_prone) then Some pool_prone
  else
    let rec go index =
      if index >= 40 then None
      else
        let sc = Check.Scenario.generate ~seed:42 ~index () in
        if
          sc.Check.Scenario.kind = Check.Scenario.Network
          && Result.is_error (check sc)
        then Some sc
        else go (index + 1)
    in
    go 0

let test_disabled_pool_release_is_caught () =
  Workload.Network_experiment.unsafe_disable_pool_release := true;
  let line =
    Fun.protect
      ~finally:(fun () ->
        Workload.Network_experiment.unsafe_disable_pool_release := false)
      (fun () ->
        match find_failing_network () with
        | None ->
            Alcotest.fail
              "no scenario tripped the oracles with pool release off"
        | Some sc ->
            (match check sc with
            | Ok _ -> Alcotest.fail "scenario stopped failing on re-run"
            | Error reason ->
                Alcotest.(check bool)
                  (Printf.sprintf "pool oracle named in: %s" reason)
                  true
                  (contains ~needle:"pool" reason));
            (* The failure shrinks to a line that still fails on replay. *)
            let shrunk = Check.Harness.shrink ~selection sc in
            let line = Check.Scenario.to_string shrunk in
            let buf = Buffer.create 256 in
            let ppf = Format.formatter_of_buffer buf in
            (match Check.Harness.replay ~selection line ppf with
            | Ok false -> ()
            | Ok true -> Alcotest.fail "shrunk reproducer passed on replay"
            | Error e -> Alcotest.fail e);
            line)
  in
  (* Release restored: the very same reproducer line is law-abiding. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  match Check.Harness.replay ~selection line ppf with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "reproducer still fails with release restored"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Perf_gate: the scanner, the floors file, the ratchet *)

let sample_report =
  "{\n\
  \  \"pr\": 7,\n\
  \  \"events_per_sec\": 1.25e6,\n\
  \  \"minor_words_per_event\": 5.2,\n\
  \  \"scale\": { \"sim_events\": 50482943 },\n\
  \  \"paired\": { \"cs\": { \"sim_events\": 100 }, \"ss\": { \"sim_events\": 200 } }\n\
   }\n"

let test_find_number () =
  Alcotest.(check (option (float 1e-3)))
    "first occurrence wins" (Some 1.25e6)
    (Analysis.Perf_gate.find_number ~key:"events_per_sec" sample_report);
  Alcotest.(check (option (float 1e-9)))
    "negative/decimal parse" (Some 5.2)
    (Analysis.Perf_gate.find_number ~key:"minor_words_per_event" sample_report);
  Alcotest.(check (option (float 1e-9)))
    "absent key" None
    (Analysis.Perf_gate.find_number ~key:"nonexistent" sample_report);
  Alcotest.(check (list (float 1e-9)))
    "all occurrences in order"
    [ 50482943.; 100.; 200. ]
    (Analysis.Perf_gate.find_numbers ~key:"sim_events" sample_report)

let test_parse_floors () =
  let text =
    "# blessed on the reference machine\n\n\
     BENCH_pr7.json events_per_sec min 1.0e6\n\
     BENCH_pr7.json minor_words_per_event max 10\n"
  in
  (match Analysis.Perf_gate.parse_floors text with
  | Ok [ a; b ] ->
      Alcotest.(check string) "file" "BENCH_pr7.json" a.Analysis.Perf_gate.file;
      Alcotest.(check bool) "min dir" true
        (a.Analysis.Perf_gate.direction = Analysis.Perf_gate.Min);
      Alcotest.(check bool) "max dir" true
        (b.Analysis.Perf_gate.direction = Analysis.Perf_gate.Max);
      Alcotest.(check (float 1e-3)) "bound" 1.0e6 a.Analysis.Perf_gate.bound
  | Ok _ -> Alcotest.fail "wrong floor count"
  | Error e -> Alcotest.fail e);
  (match Analysis.Perf_gate.parse_floors "BENCH.json k sideways 3" with
  | Error e ->
      Alcotest.(check bool) "bad direction names line" true
        (contains ~needle:"line 1" e)
  | Ok _ -> Alcotest.fail "accepted bad direction");
  match Analysis.Perf_gate.parse_floors "too few fields" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted short line"

let gate_floors =
  [
    {
      Analysis.Perf_gate.file = "BENCH_pr7.json";
      key = "events_per_sec";
      direction = Analysis.Perf_gate.Min;
      bound = 1.0e6;
    };
    {
      Analysis.Perf_gate.file = "BENCH_pr7.json";
      key = "minor_words_per_event";
      direction = Analysis.Perf_gate.Max;
      bound = 5.0;
    };
  ]

let read_sample name = if name = "BENCH_pr7.json" then Some sample_report else None

let test_check_floors () =
  (* tolerance 0: the Max floor (5.0 against a measured 5.2) trips. *)
  (match Analysis.Perf_gate.check ~tolerance:0. ~read:read_sample gate_floors with
  | [ min_o; max_o ] ->
      Alcotest.(check bool) "min floor holds" true min_o.Analysis.Perf_gate.ok;
      Alcotest.(check bool) "max floor trips at 0 tolerance" false
        max_o.Analysis.Perf_gate.ok
  | _ -> Alcotest.fail "wrong outcome count");
  (* tolerance loosens: 5.0 * 1.1 = 5.5 covers the 5.2. *)
  (match Analysis.Perf_gate.check ~tolerance:0.1 ~read:read_sample gate_floors with
  | outcomes ->
      Alcotest.(check bool) "all hold at 10% tolerance" true
        (List.for_all (fun o -> o.Analysis.Perf_gate.ok) outcomes));
  (* A missing report fails its floors rather than skipping them. *)
  (match Analysis.Perf_gate.check ~tolerance:0.5 ~read:(fun _ -> None) gate_floors with
  | outcomes ->
      Alcotest.(check bool) "missing file fails" true
        (List.for_all (fun o -> not o.Analysis.Perf_gate.ok) outcomes));
  (* An injected regression fails even at a generous tolerance. *)
  let slow =
    "{ \"events_per_sec\": 4.0e5, \"minor_words_per_event\": 5.2 }"
  in
  match
    Analysis.Perf_gate.check ~tolerance:0.25
      ~read:(fun _ -> Some slow)
      gate_floors
  with
  | min_o :: _ ->
      Alcotest.(check bool) "regression caught" false min_o.Analysis.Perf_gate.ok
  | [] -> Alcotest.fail "no outcomes"

let test_trajectory () =
  let r1 = "{ \"events_per_sec\": 2.0e5, \"total_sim_events\": 1000, \"sim_events\": 999 }" in
  let r2 = sample_report in
  match Analysis.Perf_gate.trajectory [ ("BENCH_pr6.json", r1); ("BENCH_pr7.json", r2) ] with
  | [ a; b ] ->
      Alcotest.(check (float 1e-9)) "total_sim_events preferred" 1000.
        a.Analysis.Perf_gate.sim_events;
      Alcotest.(check (float 1e-9)) "per-target counts summed" 50483243.
        b.Analysis.Perf_gate.sim_events;
      Alcotest.(check (float 1e-9)) "cumulative running sum" 50484243.
        b.Analysis.Perf_gate.cumulative_events;
      Alcotest.(check (option (float 1e-3))) "throughput carried" (Some 1.25e6)
        b.Analysis.Perf_gate.events_per_sec
  | _ -> Alcotest.fail "wrong row count"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "network"
    [
      ( "sketch",
        [
          Alcotest.test_case "basics and side bins" `Quick test_sketch_basics;
          Alcotest.test_case "rejects bad inputs" `Quick test_sketch_rejects;
          QCheck_alcotest.to_alcotest prop_sketch_quantile_within_bin;
          QCheck_alcotest.to_alcotest prop_sketch_merge_associative;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "pool recycles with zero orphans" `Quick
            test_pool_recycles_no_orphans;
          Alcotest.test_case "jobs 1/2/4 byte-identical" `Slow
            test_network_jobs_deterministic;
          Alcotest.test_case "invalid configs rejected" `Quick
            test_validate_config_rejects;
          Alcotest.test_case "small-scale shape and sketch agreement" `Slow
            test_small_scale_shape_and_sketch_agreement;
        ] );
      ( "check",
        [
          Alcotest.test_case "reintroduced pool bug is caught" `Slow
            test_disabled_pool_release_is_caught;
        ] );
      ( "perf-gate",
        [
          Alcotest.test_case "number scanner" `Quick test_find_number;
          Alcotest.test_case "floors file parsing" `Quick test_parse_floors;
          Alcotest.test_case "floors, tolerance, regression" `Quick
            test_check_floors;
          Alcotest.test_case "trajectory rows" `Quick test_trajectory;
        ] );
    ]

(* Tests for the consensus-scale network workload and its supporting
   machinery: the streaming histogram sketch, the pooled circuit state,
   the CS-vs-SS shape at small scale, the Network check-harness kind,
   and the perf-trajectory gate behind bench/trajectory.exe. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Stats.Sketch *)

let test_sketch_basics () =
  let sk = Engine.Stats.Sketch.create ~bins:10 ~lo:0. ~hi:10. () in
  Alcotest.(check int) "empty count" 0 (Engine.Stats.Sketch.count sk);
  List.iter (Engine.Stats.Sketch.add sk) [ 1.5; 2.5; 2.6; 9.9 ];
  Alcotest.(check int) "count" 4 (Engine.Stats.Sketch.count sk);
  Alcotest.(check (float 1e-9)) "min exact" 1.5 (Engine.Stats.Sketch.min sk);
  Alcotest.(check (float 1e-9)) "max exact" 9.9 (Engine.Stats.Sketch.max sk);
  Alcotest.(check (float 1e-9)) "mean exact" 4.125 (Engine.Stats.Sketch.mean sk);
  (* Out-of-range samples land in side bins but keep exact extremes. *)
  Engine.Stats.Sketch.add sk (-3.);
  Engine.Stats.Sketch.add sk 25.;
  Alcotest.(check (float 1e-9)) "min below range" (-3.)
    (Engine.Stats.Sketch.min sk);
  Alcotest.(check (float 1e-9)) "max above range" 25.
    (Engine.Stats.Sketch.max sk);
  Alcotest.(check (float 1e-9)) "q0 is min" (-3.)
    (Engine.Stats.Sketch.quantile sk 0.);
  Alcotest.(check (float 1e-9)) "q1 is max" 25.
    (Engine.Stats.Sketch.quantile sk 1.)

let test_sketch_rejects () =
  Alcotest.check_raises "lo >= hi"
    (Invalid_argument "Sketch.create: need finite lo < hi") (fun () ->
      ignore (Engine.Stats.Sketch.create ~lo:1. ~hi:1. ()));
  let sk = Engine.Stats.Sketch.create ~lo:0. ~hi:1. () in
  Alcotest.(check bool) "nan add raises" true
    (match Engine.Stats.Sketch.add sk Float.nan with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "empty quantile raises" true
    (match Engine.Stats.Sketch.quantile sk 0.5 with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true)

(* Exact quantile under the same convention as Sketch.quantile:
   smallest sample whose fraction-below reaches q. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) i))

let gen_samples =
  QCheck2.Gen.(list_size (int_range 1 300) (float_bound_exclusive 100.))

let prop_sketch_quantile_within_bin =
  QCheck2.Test.make ~name:"Sketch.quantile within one bin of exact"
    ~count:100
    QCheck2.Gen.(pair gen_samples (int_range 0 100))
    (fun (xs, qi) ->
      let bins = 64 in
      let width = 100. /. float_of_int bins in
      let sk = Engine.Stats.Sketch.create ~bins ~lo:0. ~hi:100. () in
      List.iter (Engine.Stats.Sketch.add sk) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let q = float_of_int qi /. 100. in
      let est = Engine.Stats.Sketch.quantile sk q in
      Float.abs (est -. exact_quantile sorted q) <= width +. 1e-9)

(* Associativity is checked on the observable distribution — counters,
   extremes, cdf — not on raw structural equality: the exact running
   [sum] is a float, and float addition re-associated across merges can
   differ in the last ulp. *)
let prop_sketch_merge_associative =
  QCheck2.Test.make ~name:"Sketch.merge associative, order-independent"
    ~count:100
    QCheck2.Gen.(triple gen_samples gen_samples gen_samples)
    (fun (a, b, c) ->
      let mk xs =
        let sk = Engine.Stats.Sketch.create ~bins:32 ~lo:0. ~hi:100. () in
        List.iter (Engine.Stats.Sketch.add sk) xs;
        sk
      in
      let sa = mk a and sb = mk b and sc = mk c in
      let m = Engine.Stats.Sketch.merge in
      let same x y =
        Engine.Stats.Sketch.count x = Engine.Stats.Sketch.count y
        && compare (Engine.Stats.Sketch.min x) (Engine.Stats.Sketch.min y) = 0
        && compare (Engine.Stats.Sketch.max x) (Engine.Stats.Sketch.max y) = 0
        && compare
             (Engine.Stats.Sketch.cdf_points x)
             (Engine.Stats.Sketch.cdf_points y)
           = 0
        && Float.abs (Engine.Stats.Sketch.mean x -. Engine.Stats.Sketch.mean y)
           <= 1e-9 *. (1. +. Float.abs (Engine.Stats.Sketch.mean x))
      in
      same (m (m sa sb) sc) (m sa (m sb sc))
      && same (m (m sa sb) sc) (mk (a @ b @ c)))

(* ------------------------------------------------------------------ *)
(* Network experiment: pooled state and determinism *)

let small_config =
  {
    Workload.Network_experiment.default_config with
    Workload.Network_experiment.relays = 20;
    slots = 60;
    target_lifetimes = 600;
    mean_think = Engine.Time.ms 40;
    elephant_fraction = 0.1;
    elephant_cells = 128;
    mice_cells = 16;
    sketch_bins = 512;
    sketch_max = Engine.Time.s 60;
  }

let test_pool_recycles_no_orphans () =
  let r = Workload.Network_experiment.run ~seed:11 small_config in
  Alcotest.(check int) "hits the lifetime goal"
    (Workload.Network_experiment.lifetimes_goal small_config)
    r.Workload.Network_experiment.completed;
  Alcotest.(check bool) "records were recycled" true
    (r.Workload.Network_experiment.pool_recycles > 0);
  Alcotest.(check int) "no orphaned circuit registrations" 0
    r.Workload.Network_experiment.orphaned_circuits;
  Alcotest.(check int) "no orphaned queued cells" 0
    r.Workload.Network_experiment.orphaned_cells;
  Alcotest.(check bool) "peak never exceeds the slot population" true
    (r.Workload.Network_experiment.peak_active <= small_config.slots)

let test_network_jobs_deterministic () =
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Network_experiment.run_many ~jobs
        [
          (3, small_config);
          (7, { small_config with diurnal_amplitude = 0.5 });
        ])

(* The predictive controller replans every round from per-round RTT
   extremes; if any of that state leaked across tasks or shards the
   planner would be the first place determinism broke.  Pin it the same
   way as the reactive strategies: jobs 1/2/4 byte-identical, and every
   positive shard count structurally identical. *)
let predictive_config =
  {
    small_config with
    Workload.Network_experiment.strategy = Circuitstart.Controller.Predictive;
  }

let test_predictive_jobs_deterministic () =
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Network_experiment.run_many ~jobs
        [
          (3, predictive_config);
          (7, { predictive_config with diurnal_amplitude = 0.5 });
        ])

let test_predictive_sharded_identical () =
  let run shards =
    Workload.Network_experiment.run ~seed:11
      { predictive_config with Workload.Network_experiment.shards }
  in
  let r1 = run 1 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "predictive shards=%d identical to shards=1" k)
        true
        (compare r1 (run k) = 0))
    [ 2; 4 ];
  (* The classic engine must also complete the predictive workload. *)
  let r0 = run 0 in
  Alcotest.(check int) "classic engine hits the lifetime goal"
    (Workload.Network_experiment.lifetimes_goal predictive_config)
    r0.Workload.Network_experiment.completed

let test_validate_config_rejects () =
  let bad msg c =
    match Workload.Network_experiment.validate_config c with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted invalid config: " ^ msg)
  in
  bad "too few relays" { small_config with relays = 3 };
  bad "no slots" { small_config with slots = 0 };
  bad "zero think" { small_config with mean_think = Engine.Time.zero };
  bad "diurnal amplitude > 0.95" { small_config with diurnal_amplitude = 1.2 };
  bad "elephant fraction > 1" { small_config with elephant_fraction = 1.5 };
  bad "cwnd cap below initial" { small_config with cwnd_cap = 0 }

(* Small-scale shape check against the paper's Figure 1c: on a paired
   seed, CircuitStart's early compensation beats slow start at the
   median, and the streaming sketch agrees with the exact retained
   samples to within one bin width.  The config keeps the BDP a few
   cells wide (64-cell mice over a 100-relay population) — at tiny
   scale the window clamps to 1 and both strategies degenerate to the
   same trajectory. *)
let shape_config =
  {
    Workload.Network_experiment.default_config with
    Workload.Network_experiment.relays = 100;
    slots = 400;
    target_lifetimes = 2_000;
    mean_think = Engine.Time.ms 100;
    elephant_fraction = 0.1;
    elephant_cells = 512;
    mice_cells = 64;
    sketch_bins = 512;
    sketch_max = Engine.Time.s 60;
  }

let test_small_scale_shape_and_sketch_agreement () =
  let config = { shape_config with retain_exact = true } in
  let cmp = Workload.Network_experiment.compare_strategies ~seed:11 config in
  let cs = cmp.Workload.Network_experiment.circuit_start in
  let ss = cmp.Workload.Network_experiment.slow_start in
  let p50 (r : Workload.Network_experiment.result) =
    Engine.Stats.Sketch.quantile r.ttlb_all 0.5
  in
  Alcotest.(check bool) "CS median TTLB <= SS median TTLB" true
    (p50 cs <= p50 ss +. 1e-9);
  let width =
    Engine.Time.to_sec_f config.sketch_max /. float_of_int config.sketch_bins
  in
  let exact = Array.copy cs.Workload.Network_experiment.ttlb_exact in
  Array.sort compare exact;
  Alcotest.(check int) "exact samples retained"
    cs.Workload.Network_experiment.completed (Array.length exact);
  List.iter
    (fun q ->
      let est = Engine.Stats.Sketch.quantile cs.ttlb_all q in
      Alcotest.(check bool)
        (Printf.sprintf "sketch q%.2f within one bin of exact" q)
        true
        (Float.abs (est -. exact_quantile exact q) <= width +. 1e-9))
    [ 0.25; 0.5; 0.9; 0.99 ]

(* ------------------------------------------------------------------ *)
(* Shard: deterministic partitions and the sharded engine *)

let prop_relay_shard_true_partition =
  QCheck2.Test.make
    ~name:"relay_shard: every relay in exactly one shard, stable under seed"
    QCheck2.Gen.(
      triple (int_range 0 100_000) (int_range 1 8) (int_range 0 10_000))
    (fun (seed, shards, r) ->
      let s = Workload.Shard.relay_shard ~seed ~shards r in
      (* In range, and a pure function of (seed, shards, r). *)
      s >= 0 && s < shards && s = Workload.Shard.relay_shard ~seed ~shards r)

let prop_slot_ranges_tile =
  QCheck2.Test.make
    ~name:"slot_range: shards tile [0, slots) exactly; owner_of_slot inverts"
    QCheck2.Gen.(pair (int_range 1 400) (int_range 1 10))
    (fun (slots, shards) ->
      let n = Workload.Shard.count ~slots ~shards in
      let ok = ref (n >= 1 && n <= Stdlib.min slots shards) in
      let next = ref 0 in
      for k = 0 to n - 1 do
        let lo, hi = Workload.Shard.slot_range ~slots ~shards k in
        if lo <> !next || hi < lo then ok := false;
        next := hi;
        for i = lo to hi - 1 do
          if Workload.Shard.owner_of_slot ~slots ~shards i <> k then ok := false
        done
      done;
      !ok && !next = slots)

let test_sharded_results_identical () =
  (* The tentpole guarantee: every positive shard count computes the
     same result — not statistically close, structurally identical. *)
  let run shards =
    Workload.Network_experiment.run ~seed:11
      { small_config with Workload.Network_experiment.shards }
  in
  let r1 = run 1 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "shards=%d identical to shards=1" k)
        true
        (compare r1 (run k) = 0))
    [ 2; 3; 4 ];
  Alcotest.(check bool) "shards > slots clamps to the slot count" true
    (compare r1 (run 1_000) = 0)

let test_sharded_with_churn_identical () =
  (* Churn and epoch boundaries fire single-threaded at barriers; the
     sharded engine must agree with itself across shard counts when
     relays leave, crash, drain, and rejoin mid-run. *)
  let churned =
    {
      small_config with
      Workload.Network_experiment.leave_hazard = 0.02;
      join_hazard = 0.2;
      crash_fraction = 0.5;
      drain_grace = Engine.Time.ms 200;
      epoch_period = Engine.Time.s 2;
      spare_relays = 4;
    }
  in
  let run shards =
    Workload.Network_experiment.run ~seed:7
      { churned with Workload.Network_experiment.shards }
  in
  let r1 = run 1 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "churned shards=%d identical to shards=1" k)
        true
        (compare r1 (run k) = 0))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* The Network check kind catches a reintroduced pool-recycling bug *)

let selection = Check.Oracle.all
let check sc = Check.Harness.check_scenario ~selection sc

(* A Network scenario small enough to shrink quickly but busy enough
   that circuits complete (and therefore release pool records). *)
let pool_prone =
  {
    Check.Scenario.kind = Check.Scenario.Network;
    seed = 5;
    relays = 8;
    position = 1;
    bytes = 8 * 1024;
    loss_ppm = 0;
    burst = false;
    outage_ms = None;
    crash_ms = None;
    queue_cells = 0;
    strategy = Check.Scenario.Cs;
    bottleneck_kbps = 1000;
    fast_kbps = 2000;
    endpoint_kbps = 100_000;
    max_rebuilds = 3;
    sessions = 8;
    oload_circuits = 0;
    oload_kib = 0;
    arrival_ms = 20;
    lifet = 40;
    leave_pm = 0;
    join_pm = 0;
    crashpct = 0;
    grace_ms = 0;
    epoch_ms = 0;
    spares = 0;
    shards = 0;
  }

let find_failing_network () =
  if Result.is_error (check pool_prone) then Some pool_prone
  else
    let rec go index =
      if index >= 40 then None
      else
        let sc = Check.Scenario.generate ~seed:42 ~index () in
        if
          sc.Check.Scenario.kind = Check.Scenario.Network
          && Result.is_error (check sc)
        then Some sc
        else go (index + 1)
    in
    go 0

let test_disabled_pool_release_is_caught () =
  Workload.Network_experiment.unsafe_disable_pool_release := true;
  let line =
    Fun.protect
      ~finally:(fun () ->
        Workload.Network_experiment.unsafe_disable_pool_release := false)
      (fun () ->
        match find_failing_network () with
        | None ->
            Alcotest.fail
              "no scenario tripped the oracles with pool release off"
        | Some sc ->
            (match check sc with
            | Ok _ -> Alcotest.fail "scenario stopped failing on re-run"
            | Error reason ->
                Alcotest.(check bool)
                  (Printf.sprintf "pool oracle named in: %s" reason)
                  true
                  (contains ~needle:"pool" reason));
            (* The failure shrinks to a line that still fails on replay. *)
            let shrunk = Check.Harness.shrink ~selection sc in
            let line = Check.Scenario.to_string shrunk in
            let buf = Buffer.create 256 in
            let ppf = Format.formatter_of_buffer buf in
            (match Check.Harness.replay ~selection line ppf with
            | Ok false -> ()
            | Ok true -> Alcotest.fail "shrunk reproducer passed on replay"
            | Error e -> Alcotest.fail e);
            line)
  in
  (* Release restored: the very same reproducer line is law-abiding. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  match Check.Harness.replay ~selection line ppf with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "reproducer still fails with release restored"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* The shard differential catches an unordered exchange *)

(* A sharded scenario busy enough that occupancy changes mid-window:
   with the exchange applied in place instead of deferred to the
   barrier, path draws observe half-updated counters and the result
   becomes shard-count-dependent — exactly what the harness's
   shards=1-vs-4 differential exists to catch. *)
let find_failing_sharded () =
  let direct =
    List.filter_map
      (fun (seed, sessions) ->
        let sc =
          { pool_prone with Check.Scenario.seed; sessions; shards = 2 }
        in
        if Result.is_error (check sc) then Some sc else None)
      [ (5, 8); (11, 12); (3, 16) ]
  in
  match direct with
  | sc :: _ -> Some sc
  | [] ->
      let rec go index =
        if index >= 60 then None
        else
          let sc = Check.Scenario.generate ~seed:99 ~index () in
          let sc =
            match sc.Check.Scenario.kind with
            | (Check.Scenario.Network | Check.Scenario.Churn)
              when sc.Check.Scenario.shards = 0 ->
                { sc with Check.Scenario.shards = 2 }
            | _ -> sc
          in
          match sc.Check.Scenario.kind with
          | (Check.Scenario.Network | Check.Scenario.Churn)
            when Result.is_error (check sc) ->
              Some sc
          | _ -> go (index + 1)
      in
      go 0

let test_unordered_exchange_is_caught () =
  Workload.Network_experiment.unsafe_unordered_exchange := true;
  let line =
    Fun.protect
      ~finally:(fun () ->
        Workload.Network_experiment.unsafe_unordered_exchange := false)
      (fun () ->
        match find_failing_sharded () with
        | None ->
            Alcotest.fail
              "no scenario tripped the shard differential with the exchange \
               unordered"
        | Some sc ->
            (match check sc with
            | Ok _ -> Alcotest.fail "scenario stopped failing on re-run"
            | Error reason ->
                (* The planted bug is a data race (in-place cross-domain
                   writes), so either differential may trip first: the
                   shards=1-vs-4 digest comparison, or — when the racy
                   runs happen to diverge between themselves — the
                   same-seed repeat.  Both are the harness catching the
                   unordered exchange. *)
                Alcotest.(check bool)
                  (Printf.sprintf "a differential named in: %s" reason)
                  true
                  (contains ~needle:"shard" reason
                  || contains ~needle:"nondeterminism" reason));
            (* The failure shrinks to a replayable one-line reproducer
               that still fails. *)
            let shrunk = Check.Harness.shrink ~selection sc in
            Alcotest.(check bool) "shrunk scenario stays sharded" true
              (shrunk.Check.Scenario.shards > 0);
            let line = Check.Scenario.to_string shrunk in
            let buf = Buffer.create 256 in
            let ppf = Format.formatter_of_buffer buf in
            (match Check.Harness.replay ~selection line ppf with
            | Ok false -> ()
            | Ok true -> Alcotest.fail "shrunk reproducer passed on replay"
            | Error e -> Alcotest.fail e);
            line)
  in
  (* Ordered exchange restored: the same reproducer line passes. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  match Check.Harness.replay ~selection line ppf with
  | Ok true -> ()
  | Ok false ->
      Alcotest.fail "reproducer still fails with the ordered exchange restored"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* torsim CLI: sharded runs are byte-identical across shards x jobs *)

let torsim_exe =
  match
    List.find_opt Sys.file_exists
      [ "../bin/torsim.exe"; "_build/default/bin/torsim.exe" ]
  with
  | Some p -> p
  | None -> Alcotest.fail "torsim.exe not built"

let torsim_out ?(env = "") args =
  let out = Filename.temp_file "torsim" ".out" in
  let rc =
    Sys.command (Printf.sprintf "%s %s %s > %s 2>&1" env torsim_exe args out)
  in
  let ic = open_in_bin out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (rc, text)

let test_cli_sharded_byte_identical () =
  let base =
    "network --relays 10 --circuits 24 --lifetimes 120 --think-ms 20 --seed 3"
  in
  let rc, reference = torsim_out (base ^ " --shards 1 --jobs 1") in
  Alcotest.(check int) "reference run exits 0" 0 rc;
  Alcotest.(check bool) "reference run prints a table" true
    (String.length reference > 0);
  List.iter
    (fun (shards, jobs) ->
      let rc, out =
        torsim_out (Printf.sprintf "%s --shards %d --jobs %d" base shards jobs)
      in
      Alcotest.(check int)
        (Printf.sprintf "--shards %d --jobs %d exits 0" shards jobs)
        0 rc;
      Alcotest.(check string)
        (Printf.sprintf "--shards %d --jobs %d byte-identical" shards jobs)
        reference out)
    [ (1, 2); (1, 4); (2, 1); (2, 2); (2, 4); (4, 1); (4, 2); (4, 4) ];
  (* shards=0 selects the classic engine: it must still run cleanly,
     but its output is the pre-shard engine's (pinned by the golden
     tests), deliberately not compared against the sharded runs. *)
  let rc, _ = torsim_out (base ^ " --shards 0") in
  Alcotest.(check int) "--shards 0 (classic) exits 0" 0 rc

let test_cli_rejects_bad_jobs_env () =
  let rc, text =
    torsim_out ~env:"CIRCUITSTART_JOBS=lots"
      "network --relays 10 --circuits 8 --lifetimes 20 --think-ms 20"
  in
  Alcotest.(check int) "bad CIRCUITSTART_JOBS exits 2" 2 rc;
  Alcotest.(check bool) "friendly one-line error" true
    (contains ~needle:"CIRCUITSTART_JOBS must be a positive integer" text)

let test_cli_rejects_bad_strategy () =
  (* Every near-miss spelling of --strategy dies with a nonzero exit and
     a one-line error naming the accepted spellings, on every paired
     command that takes the flag. *)
  List.iter
    (fun cmd ->
      List.iter
        (fun bogus ->
          let rc, text =
            torsim_out (Printf.sprintf "%s --strategy %s" cmd bogus)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s --strategy %s exits nonzero" cmd bogus)
            true (rc <> 0);
          Alcotest.(check bool)
            (Printf.sprintf "%s --strategy %s names the problem" cmd bogus)
            true
            (contains ~needle:"unknown strategy" text
            && contains ~needle:"circuitstart" text))
        [ "predicitve"; "vegas"; "pred" ])
    [
      "faults --kib 4";
      "recover --kib 4";
      "network --relays 10 --circuits 8 --lifetimes 20 --think-ms 20";
    ];
  (* The check command parses the strategy itself (it needs the
     scenario-codec spellings), so its error path is separate. *)
  let rc, text = torsim_out "check --runs 1 --strategy predicitve" in
  Alcotest.(check bool) "check --strategy predicitve exits nonzero" true
    (rc <> 0);
  Alcotest.(check bool) "check --strategy error names the problem" true
    (contains ~needle:"unknown strategy" text);
  (* And the accepted spellings do parse: a 1-run pinned check is fast. *)
  let rc, _ = torsim_out "check --runs 1 --seed 5 --strategy predictive" in
  Alcotest.(check int) "check --strategy predictive runs" 0 rc

(* ------------------------------------------------------------------ *)
(* Perf_gate: the scanner, the floors file, the ratchet *)

let sample_report =
  "{\n\
  \  \"pr\": 7,\n\
  \  \"events_per_sec\": 1.25e6,\n\
  \  \"minor_words_per_event\": 5.2,\n\
  \  \"scale\": { \"sim_events\": 50482943 },\n\
  \  \"paired\": { \"cs\": { \"sim_events\": 100 }, \"ss\": { \"sim_events\": 200 } }\n\
   }\n"

let test_find_number () =
  Alcotest.(check (option (float 1e-3)))
    "first occurrence wins" (Some 1.25e6)
    (Analysis.Perf_gate.find_number ~key:"events_per_sec" sample_report);
  Alcotest.(check (option (float 1e-9)))
    "negative/decimal parse" (Some 5.2)
    (Analysis.Perf_gate.find_number ~key:"minor_words_per_event" sample_report);
  Alcotest.(check (option (float 1e-9)))
    "absent key" None
    (Analysis.Perf_gate.find_number ~key:"nonexistent" sample_report);
  Alcotest.(check (list (float 1e-9)))
    "all occurrences in order"
    [ 50482943.; 100.; 200. ]
    (Analysis.Perf_gate.find_numbers ~key:"sim_events" sample_report)

let test_parse_floors () =
  let text =
    "# blessed on the reference machine\n\n\
     BENCH_pr7.json events_per_sec min 1.0e6\n\
     BENCH_pr7.json minor_words_per_event max 10\n"
  in
  (match Analysis.Perf_gate.parse_floors text with
  | Ok [ a; b ] ->
      Alcotest.(check string) "file" "BENCH_pr7.json" a.Analysis.Perf_gate.file;
      Alcotest.(check bool) "min dir" true
        (a.Analysis.Perf_gate.direction = Analysis.Perf_gate.Min);
      Alcotest.(check bool) "max dir" true
        (b.Analysis.Perf_gate.direction = Analysis.Perf_gate.Max);
      Alcotest.(check (float 1e-3)) "bound" 1.0e6 a.Analysis.Perf_gate.bound
  | Ok _ -> Alcotest.fail "wrong floor count"
  | Error e -> Alcotest.fail e);
  (match Analysis.Perf_gate.parse_floors "BENCH.json k sideways 3" with
  | Error e ->
      Alcotest.(check bool) "bad direction names line" true
        (contains ~needle:"line 1" e)
  | Ok _ -> Alcotest.fail "accepted bad direction");
  match Analysis.Perf_gate.parse_floors "too few fields" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted short line"

let gate_floors =
  [
    {
      Analysis.Perf_gate.file = "BENCH_pr7.json";
      key = "events_per_sec";
      direction = Analysis.Perf_gate.Min;
      bound = 1.0e6;
      min_cores = None;
    };
    {
      Analysis.Perf_gate.file = "BENCH_pr7.json";
      key = "minor_words_per_event";
      direction = Analysis.Perf_gate.Max;
      bound = 5.0;
      min_cores = None;
    };
  ]

let read_sample name = if name = "BENCH_pr7.json" then Some sample_report else None

let test_check_floors () =
  (* tolerance 0: the Max floor (5.0 against a measured 5.2) trips. *)
  (match Analysis.Perf_gate.check ~tolerance:0. ~read:read_sample gate_floors with
  | [ min_o; max_o ] ->
      Alcotest.(check bool) "min floor holds" true min_o.Analysis.Perf_gate.ok;
      Alcotest.(check bool) "max floor trips at 0 tolerance" false
        max_o.Analysis.Perf_gate.ok
  | _ -> Alcotest.fail "wrong outcome count");
  (* tolerance loosens: 5.0 * 1.1 = 5.5 covers the 5.2. *)
  (match Analysis.Perf_gate.check ~tolerance:0.1 ~read:read_sample gate_floors with
  | outcomes ->
      Alcotest.(check bool) "all hold at 10% tolerance" true
        (List.for_all (fun o -> o.Analysis.Perf_gate.ok) outcomes));
  (* A missing report fails its floors rather than skipping them. *)
  (match Analysis.Perf_gate.check ~tolerance:0.5 ~read:(fun _ -> None) gate_floors with
  | outcomes ->
      Alcotest.(check bool) "missing file fails" true
        (List.for_all (fun o -> not o.Analysis.Perf_gate.ok) outcomes));
  (* An injected regression fails even at a generous tolerance. *)
  let slow =
    "{ \"events_per_sec\": 4.0e5, \"minor_words_per_event\": 5.2 }"
  in
  match
    Analysis.Perf_gate.check ~tolerance:0.25
      ~read:(fun _ -> Some slow)
      gate_floors
  with
  | min_o :: _ ->
      Alcotest.(check bool) "regression caught" false min_o.Analysis.Perf_gate.ok
  | [] -> Alcotest.fail "no outcomes"

let test_min_cores_floors () =
  (* Parsing: the optional fifth token. *)
  (match
     Analysis.Perf_gate.parse_floors
       "BENCH_pr9.json speedup_4 min 1.6 min-cores=4"
   with
  | Ok [ f ] ->
      Alcotest.(check (option int)) "min-cores parsed" (Some 4)
        f.Analysis.Perf_gate.min_cores
  | Ok _ -> Alcotest.fail "wrong floor count"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Analysis.Perf_gate.parse_floors bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad fifth token: " ^ bad))
    [
      "B.json k min 1 min-cores=0";
      "B.json k min 1 min-cores=-2";
      "B.json k min 1 min-cores=four";
      "B.json k min 1 cores=4";
    ];
  (* The skip: enforced only when the report's own host_cores is
     large enough. *)
  let floor =
    {
      Analysis.Perf_gate.file = "B.json";
      key = "speedup_4";
      direction = Analysis.Perf_gate.Min;
      bound = 1.6;
      min_cores = Some 4;
    }
  in
  let outcome report =
    List.hd (Analysis.Perf_gate.check ~tolerance:0. ~read:(fun _ -> report) [ floor ])
  in
  let o = outcome (Some "{ \"host_cores\": 1, \"speedup_4\": 0.9 }") in
  Alcotest.(check (pair bool bool)) "small host: skipped, passing" (true, true)
    (o.Analysis.Perf_gate.ok, o.Analysis.Perf_gate.skipped);
  let o = outcome (Some "{ \"speedup_4\": 0.9 }") in
  Alcotest.(check (pair bool bool)) "host_cores absent: skipped" (true, true)
    (o.Analysis.Perf_gate.ok, o.Analysis.Perf_gate.skipped);
  let o = outcome (Some "{ \"host_cores\": 8, \"speedup_4\": 1.7 }") in
  Alcotest.(check (pair bool bool)) "big host, good value: enforced ok"
    (true, false)
    (o.Analysis.Perf_gate.ok, o.Analysis.Perf_gate.skipped);
  let o = outcome (Some "{ \"host_cores\": 8, \"speedup_4\": 0.9 }") in
  Alcotest.(check (pair bool bool)) "big host, bad value: fails" (false, false)
    (o.Analysis.Perf_gate.ok, o.Analysis.Perf_gate.skipped);
  let o = outcome None in
  Alcotest.(check (pair bool bool)) "unreadable report still fails"
    (false, false)
    (o.Analysis.Perf_gate.ok, o.Analysis.Perf_gate.skipped)

let test_trajectory () =
  let r1 = "{ \"events_per_sec\": 2.0e5, \"total_sim_events\": 1000, \"sim_events\": 999 }" in
  let r2 = sample_report in
  match Analysis.Perf_gate.trajectory [ ("BENCH_pr6.json", r1); ("BENCH_pr7.json", r2) ] with
  | [ a; b ] ->
      Alcotest.(check (float 1e-9)) "total_sim_events preferred" 1000.
        a.Analysis.Perf_gate.sim_events;
      Alcotest.(check (float 1e-9)) "per-target counts summed" 50483243.
        b.Analysis.Perf_gate.sim_events;
      Alcotest.(check (float 1e-9)) "cumulative running sum" 50484243.
        b.Analysis.Perf_gate.cumulative_events;
      Alcotest.(check (option (float 1e-3))) "throughput carried" (Some 1.25e6)
        b.Analysis.Perf_gate.events_per_sec;
      Alcotest.(check (option (float 1e-9))) "no speedup keys -> None" None
        b.Analysis.Perf_gate.speedup_4
  | _ -> Alcotest.fail "wrong row count"

let test_trajectory_speedup_row () =
  let r =
    "{ \"events_per_sec\": 1.0e6, \"speedup_2\": 0.84, \"speedup_4\": 1.9, \
     \"sim_events\": 10 }"
  in
  match Analysis.Perf_gate.trajectory [ ("BENCH_pr9.json", r) ] with
  | [ row ] ->
      Alcotest.(check (option (float 1e-9))) "speedup_2" (Some 0.84)
        row.Analysis.Perf_gate.speedup_2;
      Alcotest.(check (option (float 1e-9))) "speedup_4" (Some 1.9)
        row.Analysis.Perf_gate.speedup_4
  | _ -> Alcotest.fail "wrong row count"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "network"
    [
      ( "sketch",
        [
          Alcotest.test_case "basics and side bins" `Quick test_sketch_basics;
          Alcotest.test_case "rejects bad inputs" `Quick test_sketch_rejects;
          QCheck_alcotest.to_alcotest prop_sketch_quantile_within_bin;
          QCheck_alcotest.to_alcotest prop_sketch_merge_associative;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "pool recycles with zero orphans" `Quick
            test_pool_recycles_no_orphans;
          Alcotest.test_case "jobs 1/2/4 byte-identical" `Slow
            test_network_jobs_deterministic;
          Alcotest.test_case "predictive jobs 1/2/4 byte-identical" `Slow
            test_predictive_jobs_deterministic;
          Alcotest.test_case "invalid configs rejected" `Quick
            test_validate_config_rejects;
          Alcotest.test_case "small-scale shape and sketch agreement" `Slow
            test_small_scale_shape_and_sketch_agreement;
        ] );
      ( "shard",
        [
          QCheck_alcotest.to_alcotest prop_relay_shard_true_partition;
          QCheck_alcotest.to_alcotest prop_slot_ranges_tile;
          Alcotest.test_case "shards 1-4 identical" `Slow
            test_sharded_results_identical;
          Alcotest.test_case "shards identical under churn" `Slow
            test_sharded_with_churn_identical;
          Alcotest.test_case "predictive shards identical" `Slow
            test_predictive_sharded_identical;
        ] );
      ( "check",
        [
          Alcotest.test_case "reintroduced pool bug is caught" `Slow
            test_disabled_pool_release_is_caught;
          Alcotest.test_case "unordered exchange is caught" `Slow
            test_unordered_exchange_is_caught;
        ] );
      ( "cli",
        [
          Alcotest.test_case "sharded runs byte-identical" `Slow
            test_cli_sharded_byte_identical;
          Alcotest.test_case "bad CIRCUITSTART_JOBS rejected" `Quick
            test_cli_rejects_bad_jobs_env;
          Alcotest.test_case "bad --strategy rejected" `Slow
            test_cli_rejects_bad_strategy;
        ] );
      ( "perf-gate",
        [
          Alcotest.test_case "number scanner" `Quick test_find_number;
          Alcotest.test_case "floors file parsing" `Quick test_parse_floors;
          Alcotest.test_case "floors, tolerance, regression" `Quick
            test_check_floors;
          Alcotest.test_case "min-cores floors" `Quick test_min_cores_floors;
          Alcotest.test_case "trajectory rows" `Quick test_trajectory;
          Alcotest.test_case "trajectory speedup row" `Quick
            test_trajectory_speedup_row;
        ] );
    ]

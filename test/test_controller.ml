(* Unit and property tests for the CircuitStart controller (the paper's
   core algorithm), driven by synthetic feedback sequences. *)

module C = Circuitstart.Controller
module P = Circuitstart.Params

(* A synthetic feedback driver: deliver [n] feedbacks spaced [gap]
   apart, each reporting [rtt], starting at [from_] (exclusive).
   Returns the instant of the last feedback. *)
let feed ?(window_limited = true) ctrl ~from_ ~gap ~rtt n =
  let now = ref from_ in
  for _ = 1 to n do
    now := Engine.Time.add !now gap;
    C.on_feedback ctrl ~now:!now ~rtt ~window_limited ()
  done;
  !now

let base = Engine.Time.ms 40

(* Feed whole rounds at a steady clean RTT: each round is [cwnd]
   feedbacks spaced so that one round spans ~one RTT. *)
let clean_round ctrl ~from_ =
  let w = C.cwnd ctrl in
  let gap = Engine.Time.div_int base w in
  feed ctrl ~from_ ~gap ~rtt:base w

(* ------------------------------------------------------------------ *)
(* Construction *)

let test_create_validation () =
  Alcotest.(check bool) "bad params rejected" true
    (try
       ignore (C.create ~params:{ P.default with P.gamma = -1. } C.Circuit_start);
       false
     with Invalid_argument _ -> true);
  Alcotest.check_raises "bad fixed window"
    (Invalid_argument "Controller.create: Fixed window must be positive") (fun () ->
      ignore (C.create (C.Fixed 0)))

let test_initial_state () =
  let ctrl = C.create C.Circuit_start in
  Alcotest.(check int) "initial cwnd" 2 (C.cwnd ctrl);
  Alcotest.(check bool) "ramp-up" true (C.phase ctrl = C.Ramp_up);
  Alcotest.(check bool) "no base rtt" true (C.base_rtt ctrl = None);
  Alcotest.(check int) "allowance = initial" 2 (C.send_allowance ctrl)

let test_fixed_strategy () =
  let ctrl = C.create (C.Fixed 17) in
  Alcotest.(check int) "fixed cwnd" 17 (C.cwnd ctrl);
  Alcotest.(check bool) "avoidance from the start" true (C.phase ctrl = C.Avoidance);
  let _ = feed ctrl ~from_:Engine.Time.zero ~gap:(Engine.Time.ms 1) ~rtt:base 200 in
  Alcotest.(check int) "never changes" 17 (C.cwnd ctrl)

let test_rtt_validation () =
  let ctrl = C.create C.Circuit_start in
  Alcotest.check_raises "zero rtt"
    (Invalid_argument "Controller.on_feedback: rtt must be positive") (fun () ->
      C.on_feedback ctrl ~now:(Engine.Time.ms 1) ~rtt:Engine.Time.zero ())

(* ------------------------------------------------------------------ *)
(* Ramp-up: discrete doubling.

   The trajectory itself is property-checked against a tiny reference
   model (see the "reference model" properties below), which subsumes
   the old fixed 2 -> 4 -> 8 -> 16 point example. *)

let test_no_growth_when_not_limited () =
  let ctrl = C.create C.Circuit_start in
  let t = feed ~window_limited:false ctrl ~from_:Engine.Time.zero ~gap:(Engine.Time.ms 20) ~rtt:base 2 in
  Alcotest.(check int) "no doubling without pressure" 2 (C.cwnd ctrl);
  (* A limited round still doubles afterwards. *)
  let _ = feed ctrl ~from_:t ~gap:(Engine.Time.ms 20) ~rtt:base 2 in
  Alcotest.(check int) "doubles once limited" 4 (C.cwnd ctrl)

let test_allowance_interpolates () =
  let ctrl = C.create C.Circuit_start in
  let t = clean_round ctrl ~from_:Engine.Time.zero in
  (* cwnd just doubled to 4; allowance restarts from the old window. *)
  Alcotest.(check int) "cwnd" 4 (C.cwnd ctrl);
  Alcotest.(check int) "allowance = old window" 2 (C.send_allowance ctrl);
  let t = feed ctrl ~from_:t ~gap:(Engine.Time.ms 1) ~rtt:base 1 in
  Alcotest.(check int) "allowance grows by 2 per feedback" 4 (C.send_allowance ctrl);
  let _ = feed ctrl ~from_:t ~gap:(Engine.Time.ms 1) ~rtt:base 1 in
  Alcotest.(check int) "capped at cwnd" 4 (C.send_allowance ctrl)

(* Drive a controller into a saturated regime: rtt inflates in
   proportion to the window beyond [bdp] cells, and the feedback pace
   is capped at [bdp] per base RTT. *)
let saturated_feedback ctrl ~from_ ~bdp n =
  let now = ref from_ in
  for _ = 1 to n do
    let w = C.cwnd ctrl in
    let queue = Stdlib.max 0 (w - bdp) in
    let rtt =
      Engine.Time.add base (Engine.Time.mul_int (Engine.Time.div_int base bdp) queue)
    in
    let pace = Engine.Time.div_int base (Stdlib.min w bdp) in
    now := Engine.Time.add !now pace;
    C.on_feedback ctrl ~now:!now ~rtt ()
  done;
  !now

let test_exit_and_compensation () =
  let ctrl = C.create C.Circuit_start in
  let bdp = 20 in
  let _ = saturated_feedback ctrl ~from_:Engine.Time.zero ~bdp 600 in
  Alcotest.(check bool) "left ramp-up" true (C.phase ctrl = C.Avoidance);
  Alcotest.(check int) "exactly one exit" 1 (C.ramp_up_exits ctrl);
  (match C.exit_cwnd ctrl with
  | Some e ->
      Alcotest.(check bool)
        (Printf.sprintf "exit %d within [bdp/2, 2*bdp] of %d" e bdp)
        true
        (e >= bdp / 2 && e <= 2 * bdp)
  | None -> Alcotest.fail "exit_cwnd not recorded");
  (* After recalibration + avoidance, the window sits near the BDP. *)
  let w = C.cwnd ctrl in
  Alcotest.(check bool)
    (Printf.sprintf "settled %d near bdp %d" w bdp)
    true
    (w >= bdp - 4 && w <= bdp + 6)

let test_slow_start_baseline_halves () =
  let ctrl = C.create C.Slow_start in
  let bdp = 20 in
  let _ = saturated_feedback ctrl ~from_:Engine.Time.zero ~bdp 200 in
  Alcotest.(check bool) "left ramp-up" true (C.phase ctrl = C.Avoidance);
  match C.exit_cwnd ctrl with
  | Some e ->
      (* Halving from wherever the naive per-sample test fired. *)
      Alcotest.(check bool) (Printf.sprintf "halved exit %d below bdp+2" e) true
        (e <= bdp + 2)
  | None -> Alcotest.fail "exit_cwnd not recorded"

let test_latest_diff_reporting () =
  let ctrl = C.create C.Circuit_start in
  let t = feed ctrl ~from_:Engine.Time.zero ~gap:(Engine.Time.ms 1) ~rtt:base 1 in
  Alcotest.(check (option (float 0.01))) "diff 0 at base rtt" (Some 0.)
    (C.latest_diff ctrl);
  let _ =
    feed ctrl ~from_:t ~gap:(Engine.Time.ms 1) ~rtt:(Engine.Time.scale base 2.) 1
  in
  (match C.latest_diff ctrl with
  | Some d -> Alcotest.(check bool) "diff = cwnd at 2x rtt" true (Float.abs (d -. 2.) < 0.1)
  | None -> Alcotest.fail "no diff");
  Alcotest.(check (option Alcotest.(float 1.))) "base rtt tracked"
    (Some (Engine.Time.to_ms_f base))
    (Option.map Engine.Time.to_ms_f (C.base_rtt ctrl))

(* ------------------------------------------------------------------ *)
(* Avoidance *)

(* Bring a controller into avoidance at a known window. *)
let into_avoidance ?(params = P.default) () =
  let ctrl = C.create ~params C.Circuit_start in
  let t = saturated_feedback ctrl ~from_:Engine.Time.zero ~bdp:20 600 in
  Alcotest.(check bool) "setup: in avoidance" true (C.phase ctrl = C.Avoidance);
  (ctrl, t)

let test_avoidance_shrinks_on_queue () =
  let ctrl, t = into_avoidance () in
  let w0 = C.cwnd ctrl in
  (* Sustained rtt inflation beyond beta shrinks one cell per round. *)
  let inflated = Engine.Time.scale base 1.8 in
  let _ = feed ctrl ~from_:t ~gap:(Engine.Time.ms 2) ~rtt:inflated (3 * w0) in
  Alcotest.(check bool)
    (Printf.sprintf "shrank from %d to %d" w0 (C.cwnd ctrl))
    true
    (C.cwnd ctrl < w0)

let test_avoidance_grows_when_calm () =
  let ctrl, t = into_avoidance () in
  let w0 = C.cwnd ctrl in
  let _ = feed ctrl ~from_:t ~gap:(Engine.Time.ms 2) ~rtt:base (3 * w0) in
  Alcotest.(check bool)
    (Printf.sprintf "grew from %d to %d" w0 (C.cwnd ctrl))
    true
    (C.cwnd ctrl > w0)

let test_avoidance_no_growth_unlimited () =
  let ctrl, t = into_avoidance () in
  (* Let any post-exit recalibration settle first, then hold. *)
  let t = feed ctrl ~from_:t ~gap:(Engine.Time.ms 2) ~rtt:base (3 * C.cwnd ctrl) in
  let w0 = C.cwnd ctrl in
  let _ =
    feed ~window_limited:false ctrl ~from_:t ~gap:(Engine.Time.ms 2) ~rtt:base (3 * w0)
  in
  (* One residual round may still have the limited flag from the tail
     of the previous feed; beyond that, no growth. *)
  Alcotest.(check bool)
    (Printf.sprintf "at most one residual growth (%d -> %d)" w0 (C.cwnd ctrl))
    true
    (C.cwnd ctrl <= w0 + 1)

let test_min_cwnd_floor () =
  let ctrl, t = into_avoidance () in
  (* Massive sustained inflation cannot push below the floor. *)
  let awful = Engine.Time.scale base 10. in
  let _ = feed ctrl ~from_:t ~gap:(Engine.Time.ms 2) ~rtt:awful 2000 in
  Alcotest.(check bool) "floor respected" true (C.cwnd ctrl >= P.default.P.min_cwnd)

(* ------------------------------------------------------------------ *)
(* Adaptive re-probe (paper future work) *)

let test_adaptive_reprobes () =
  let params = { P.default with P.adaptive = true; re_probe_after = 2 } in
  let ctrl = C.create ~params C.Circuit_start in
  let t = saturated_feedback ctrl ~from_:Engine.Time.zero ~bdp:20 600 in
  (* Plenty of calm, window-limited rounds: must re-enter ramp-up at
     least once beyond the first exit. *)
  let _ = feed ctrl ~from_:t ~gap:(Engine.Time.ms 1) ~rtt:base 1000 in
  Alcotest.(check bool) "re-probed" true
    (C.phase ctrl = C.Ramp_up || C.ramp_up_exits ctrl > 1)

let test_non_adaptive_stays () =
  let ctrl, t = into_avoidance () in
  let _ = feed ctrl ~from_:t ~gap:(Engine.Time.ms 1) ~rtt:base (20 * C.cwnd ctrl) in
  Alcotest.(check int) "single exit, no re-probe" 1 (C.ramp_up_exits ctrl)

let test_fixed_allowance_equals_cwnd () =
  let ctrl = C.create (C.Fixed 9) in
  Alcotest.(check int) "allowance = cwnd for Fixed" 9 (C.send_allowance ctrl)

let test_gamma_boundary_not_exceeded () =
  (* diff exactly at gamma must not trip the queue signal: the test is
     strict inequality. *)
  let params = { P.default with P.gamma = 1000. } in
  let ctrl = C.create ~params C.Circuit_start in
  let _ = saturated_feedback ctrl ~from_:Engine.Time.zero ~bdp:10 300 in
  (* With an absurd gamma the queue path can never fire; only the rate
     stall can end the ramp. *)
  Alcotest.(check bool) "still sane" true (C.cwnd ctrl >= 2)

(* ------------------------------------------------------------------ *)
(* Params *)

let test_params_validation () =
  let bad f = match P.validate f with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "min_cwnd 0" true (bad { P.default with P.min_cwnd = 0 });
  Alcotest.(check bool) "initial < min" true
    (bad { P.default with P.initial_cwnd = 1; min_cwnd = 2 });
  Alcotest.(check bool) "max < initial" true (bad { P.default with P.max_cwnd = 1 });
  Alcotest.(check bool) "beta < alpha" true
    (bad { P.default with P.alpha = 5.; beta = 4. });
  Alcotest.(check bool) "gamma 0" true (bad { P.default with P.gamma = 0. });
  Alcotest.(check bool) "default ok" true
    (match P.validate P.default with Ok _ -> true | Error _ -> false);
  Alcotest.(check (float 1e-9)) "with_gamma" 7.5 (P.with_gamma P.default 7.5).P.gamma

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_feedback_script =
  (* A list of (gap_us in [100, 50_000], rtt_ms in [1, 400], limited). *)
  QCheck2.Gen.(
    list_size (int_range 1 400)
      (triple (int_range 100 50_000) (int_range 1 400) bool))

let apply_script strategy script =
  let ctrl = C.create strategy in
  let now = ref Engine.Time.zero in
  List.iter
    (fun (gap_us, rtt_ms, window_limited) ->
      now := Engine.Time.add !now (Engine.Time.us gap_us);
      C.on_feedback ctrl ~now:!now ~rtt:(Engine.Time.ms rtt_ms) ~window_limited ())
    script;
  ctrl

let prop_cwnd_bounded strategy name =
  QCheck2.Test.make ~name gen_feedback_script (fun script ->
      let ctrl = apply_script strategy script in
      C.cwnd ctrl >= P.default.P.min_cwnd && C.cwnd ctrl <= P.default.P.max_cwnd)

let prop_allowance_bounded =
  QCheck2.Test.make ~name:"send allowance never exceeds cwnd" gen_feedback_script
    (fun script ->
      let ctrl = C.create C.Circuit_start in
      let now = ref Engine.Time.zero in
      List.for_all
        (fun (gap_us, rtt_ms, window_limited) ->
          now := Engine.Time.add !now (Engine.Time.us gap_us);
          C.on_feedback ctrl ~now:!now ~rtt:(Engine.Time.ms rtt_ms) ~window_limited ();
          C.send_allowance ctrl <= C.cwnd ctrl && C.send_allowance ctrl >= 1)
        script)

let prop_base_rtt_is_min =
  QCheck2.Test.make ~name:"base rtt is the minimum sample" gen_feedback_script
    (fun script ->
      let ctrl = apply_script C.Circuit_start script in
      match (C.base_rtt ctrl, script) with
      | None, [] -> true
      | Some b, _ :: _ ->
          let min_rtt = List.fold_left (fun acc (_, r, _) -> Stdlib.min acc r) max_int
              (List.map (fun (g, r, l) -> (g, r, l)) script)
          in
          Engine.Time.equal b (Engine.Time.ms min_rtt)
      | _ -> false)

(* --- reference models --------------------------------------------- *)

(* The specified clean-path (queue-free) ramp trajectories, in a few
   lines each: CircuitStart doubles once per completed window-limited
   round, slow start adds one cell per feedback, both clamped to
   [max_cwnd].  Driving the real controller with clean synthetic rounds
   must reproduce these exactly. *)

let ref_circuitstart_cwnd ~rounds =
  let rec go w k =
    if k = 0 then w
    else go (Stdlib.min P.default.P.max_cwnd (2 * w)) (k - 1)
  in
  go P.default.P.initial_cwnd rounds

let ref_slow_start_cwnd ~feedbacks =
  Stdlib.min P.default.P.max_cwnd (P.default.P.initial_cwnd + feedbacks)

let prop_circuitstart_ramp_matches_reference =
  QCheck2.Test.make
    ~name:"clean ramp-up trajectory matches the doubling reference"
    QCheck2.Gen.(pair (int_range 1 8) (int_range 5 200))
    (fun (rounds, base_ms) ->
      let rtt = Engine.Time.ms base_ms in
      let ctrl = C.create C.Circuit_start in
      let t = ref Engine.Time.zero in
      let ok = ref true in
      for k = 1 to rounds do
        let w = C.cwnd ctrl in
        t := feed ctrl ~from_:!t ~gap:(Engine.Time.div_int rtt w) ~rtt w;
        ok := !ok && C.cwnd ctrl = ref_circuitstart_cwnd ~rounds:k
      done;
      !ok && C.phase ctrl = C.Ramp_up && C.rounds_completed ctrl = rounds)

let prop_slow_start_ramp_matches_reference =
  QCheck2.Test.make
    ~name:"clean slow-start trajectory matches the +1-per-feedback reference"
    QCheck2.Gen.(pair (int_range 1 300) (int_range 5 200))
    (fun (feedbacks, base_ms) ->
      let ctrl = C.create C.Slow_start in
      let _ =
        feed ctrl ~from_:Engine.Time.zero ~gap:(Engine.Time.ms 1)
          ~rtt:(Engine.Time.ms base_ms) feedbacks
      in
      C.cwnd ctrl = ref_slow_start_cwnd ~feedbacks
      && C.send_allowance ctrl = C.cwnd ctrl)

let prop_exit_compensation_tracks_bdp =
  QCheck2.Test.make
    ~name:"overshoot exit lands within a factor of two of the BDP"
    QCheck2.Gen.(int_range 5 40)
    (fun bdp ->
      let ctrl = C.create C.Circuit_start in
      let _ = saturated_feedback ctrl ~from_:Engine.Time.zero ~bdp 600 in
      C.phase ctrl = C.Avoidance
      && C.ramp_up_exits ctrl = 1
      &&
      match C.exit_cwnd ctrl with
      | Some e -> e >= bdp / 2 && e <= 2 * bdp + 2
      | None -> false)

(* --- predictive reference model ----------------------------------- *)

(* An executable restatement of the predictive planner's spec
   (controller.mli): from window [w], the candidate moves are
   {halve, -1, hold, +1, double} clamped to [min_cwnd, max_cwnd]; the
   chosen move minimizes cost_queue·over² + cost_under·under² against
   the target, ties breaking toward the smaller window; the plan is the
   [horizon]-step greedy unrolling.  Formulated as a list fold rather
   than the implementation's imperative loop, and checked against
   [C.predictive_plan] trajectory-for-trajectory. *)
let ref_predictive_plan ~(params : P.t) ~cwnd ~target =
  let clamp v = Stdlib.min params.P.max_cwnd (Stdlib.max params.P.min_cwnd v) in
  let cost c =
    let over = float_of_int (Stdlib.max 0 (c - target)) in
    let under = float_of_int (Stdlib.max 0 (target - c)) in
    (params.P.cost_queue *. over *. over)
    +. (params.P.cost_under *. under *. under)
  in
  let step w =
    List.fold_left
      (fun best v ->
        let c = clamp v in
        if cost c < cost best then c else best)
      (clamp (w / 2))
      [ w - 1; w; w + 1; 2 * w ]
  in
  List.init (Stdlib.max 1 params.P.horizon) Fun.id
  |> List.fold_left (fun (w, acc) _ -> let w' = step w in (w', w' :: acc)) (cwnd, [])
  |> fun (_, rev) -> Array.of_list (List.rev rev)

let gen_planner_case =
  QCheck2.Gen.(
    let* horizon = int_range 1 12 in
    let* cq = int_range 1 16 in
    let* cu = int_range 1 16 in
    let* cwnd = int_range 1 1_000 in
    let* target = int_range 1 1_000 in
    return (horizon, float_of_int cq /. 4., float_of_int cu /. 4., cwnd, target))

let prop_predictive_plan_matches_reference =
  QCheck2.Test.make
    ~name:"predictive planner matches the executable spec step-for-step"
    gen_planner_case
    (fun (horizon, cost_queue, cost_under, cwnd, target) ->
      let params = { P.default with P.horizon; cost_queue; cost_under } in
      C.predictive_plan ~params ~cwnd ~target
      = ref_predictive_plan ~params ~cwnd ~target)

(* Saturated feedback with per-sample jitter: like [saturated_feedback]
   but every other sample carries +200 us, so each round has RTT
   variance and the predictive link model stays identifiable. *)
let noisy_saturated_feedback ctrl ~from_ ~bdp n =
  let now = ref from_ in
  for i = 1 to n do
    let w = C.cwnd ctrl in
    let queue = Stdlib.max 0 (w - bdp) in
    let rtt =
      Engine.Time.add base
        (Engine.Time.mul_int (Engine.Time.div_int base bdp) queue)
    in
    let rtt =
      if i land 1 = 0 then Engine.Time.add rtt (Engine.Time.us 200) else rtt
    in
    let pace = Engine.Time.div_int base (Stdlib.min w bdp) in
    now := Engine.Time.add !now pace;
    C.on_feedback ctrl ~now:!now ~rtt ()
  done;
  !now

let prop_predictive_commits_plan_head =
  QCheck2.Test.make
    ~name:"predictive commits exactly the plan's first step until fallback"
    QCheck2.Gen.(int_range 5 40)
    (fun bdp ->
      let ctrl = C.create C.Predictive in
      let law_ok = ref true in
      let seen_gen = ref (C.plan_generation ctrl) in
      C.set_on_change ctrl (fun ~now:_ v ->
          if not (C.fallen_back ctrl) then begin
            let p = C.planned_trajectory ctrl in
            let g = C.plan_generation ctrl in
            if g <= !seen_gen then law_ok := false
            else begin
              seen_gen := g;
              if Array.length p = 0 || v <> p.(0) then law_ok := false
            end
          end);
      let _ = noisy_saturated_feedback ctrl ~from_:Engine.Time.zero ~bdp 600 in
      !law_ok
      && C.phase ctrl = C.Avoidance
      && (not (C.fallen_back ctrl))
      && C.ramp_up_exits ctrl = 1
      && C.cwnd ctrl >= P.default.P.min_cwnd
      && C.cwnd ctrl <= P.default.P.max_cwnd
      &&
      (* The planner walks the window to the modelled BDP. *)
      let w = C.cwnd ctrl in
      w >= bdp / 2 && w <= 2 * bdp + 2)

let prop_predictive_zero_variance_falls_back =
  QCheck2.Test.make
    ~name:"zero-variance rounds trigger permanent fallback to Vegas +-1"
    QCheck2.Gen.(int_range 1 30)
    (fun rounds ->
      (* Constant-RTT clean rounds carry no queueing signal: the very
         first round end is unidentifiable, so the controller drops to
         Avoidance at the initial window and thereafter probes one cell
         per calm round like plain Vegas. *)
      let ctrl = C.create C.Predictive in
      let t = ref Engine.Time.zero in
      for _ = 1 to rounds do
        t := clean_round ctrl ~from_:!t
      done;
      C.fallen_back ctrl
      && C.phase ctrl = C.Avoidance
      && C.cwnd ctrl = P.default.P.initial_cwnd + (rounds - 1))

let test_predictive_horizon_one_degenerates () =
  let params = { P.default with P.horizon = 1 } in
  let ctrl = C.create ~params C.Predictive in
  Alcotest.(check bool) "avoidance from the start" true (C.phase ctrl = C.Avoidance);
  Alcotest.(check bool) "fallen back at create" true (C.fallen_back ctrl);
  let t = clean_round ctrl ~from_:Engine.Time.zero in
  let _ = clean_round ctrl ~from_:t in
  (* Plain Vegas avoidance: one cell per calm window-limited round. *)
  Alcotest.(check int) "+1 per clean round" (P.default.P.initial_cwnd + 2)
    (C.cwnd ctrl)

let test_predictive_params_validation () =
  let bad f = match P.validate f with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "horizon 0" true (bad { P.default with P.horizon = 0 });
  Alcotest.(check bool) "cost_queue 0" true
    (bad { P.default with P.cost_queue = 0. });
  Alcotest.(check bool) "cost_under nan" true
    (bad { P.default with P.cost_under = Float.nan });
  Alcotest.(check bool) "horizon 1 ok" true
    (match P.validate { P.default with P.horizon = 1 } with
    | Ok _ -> true
    | Error _ -> false)

let prop_exit_recorded_once =
  QCheck2.Test.make ~name:"exit_cwnd is stable after the first exit" gen_feedback_script
    (fun script ->
      let ctrl = C.create C.Circuit_start in
      let now = ref Engine.Time.zero in
      let first_exit = ref None in
      List.iter
        (fun (gap_us, rtt_ms, window_limited) ->
          now := Engine.Time.add !now (Engine.Time.us gap_us);
          C.on_feedback ctrl ~now:!now ~rtt:(Engine.Time.ms rtt_ms) ~window_limited ();
          match (!first_exit, C.exit_cwnd ctrl) with
          | None, (Some _ as e) -> first_exit := e
          | _ -> ())
        script;
      !first_exit = C.exit_cwnd ctrl)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cwnd_bounded C.Circuit_start "circuitstart cwnd stays in [min, max]";
      prop_cwnd_bounded C.Slow_start "slow start cwnd stays in [min, max]";
      prop_cwnd_bounded C.Predictive "predictive cwnd stays in [min, max]";
      prop_allowance_bounded;
      prop_predictive_plan_matches_reference;
      prop_predictive_commits_plan_head;
      prop_predictive_zero_variance_falls_back;
      prop_base_rtt_is_min;
      prop_exit_recorded_once;
      prop_circuitstart_ramp_matches_reference;
      prop_slow_start_ramp_matches_reference;
      prop_exit_compensation_tracks_bdp;
    ]

let () =
  Alcotest.run "controller"
    [
      ( "construction",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "fixed strategy" `Quick test_fixed_strategy;
          Alcotest.test_case "rtt validation" `Quick test_rtt_validation;
        ] );
      ( "ramp_up",
        [
          Alcotest.test_case "no growth when not limited" `Quick
            test_no_growth_when_not_limited;
          Alcotest.test_case "allowance interpolates" `Quick test_allowance_interpolates;
          Alcotest.test_case "exit and compensation" `Quick test_exit_and_compensation;
          Alcotest.test_case "slow start halves" `Quick test_slow_start_baseline_halves;
          Alcotest.test_case "diff reporting" `Quick test_latest_diff_reporting;
        ] );
      ( "avoidance",
        [
          Alcotest.test_case "shrinks on queue" `Quick test_avoidance_shrinks_on_queue;
          Alcotest.test_case "grows when calm" `Quick test_avoidance_grows_when_calm;
          Alcotest.test_case "no growth when app-limited" `Quick
            test_avoidance_no_growth_unlimited;
          Alcotest.test_case "min cwnd floor" `Quick test_min_cwnd_floor;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "re-probes when enabled" `Quick test_adaptive_reprobes;
          Alcotest.test_case "stays put when disabled" `Quick test_non_adaptive_stays;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "fixed allowance" `Quick test_fixed_allowance_equals_cwnd;
          Alcotest.test_case "gamma boundary" `Quick test_gamma_boundary_not_exceeded;
        ] );
      ( "predictive",
        [
          Alcotest.test_case "horizon one degenerates" `Quick
            test_predictive_horizon_one_degenerates;
          Alcotest.test_case "planner params validation" `Quick
            test_predictive_params_validation;
        ] );
      ("params", [ Alcotest.test_case "validation" `Quick test_params_validation ]);
      ("properties", qtests);
    ]

(* lib/check: the scenario codec, deterministic sampling, the oracles
   on clean runs, and the acceptance criterion for the whole layer —
   deliberately reintroducing the PR-4 stale wire-departure bug (by
   flipping [Backtap.Hop_sender.unsafe_disable_wire_floor]) must make
   the incarnation oracle fail, and the failure must shrink to a
   replayable one-line reproducer. *)

let selection = Check.Oracle.all
let check sc = Check.Harness.check_scenario ~selection sc

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Scenario codec and sampling *)

let prop_scenario_round_trip =
  QCheck2.Test.make ~name:"Scenario.of_string inverts to_string" ~count:150
    Check.Scenario.gen (fun sc ->
      match Check.Scenario.of_string (Check.Scenario.to_string sc) with
      | Ok sc' -> Check.Scenario.equal sc sc'
      | Error _ -> false)

let test_of_string_rejects_garbage () =
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" line)
        true
        (Result.is_error (Check.Scenario.of_string line)))
    [ ""; "k=x seed=1"; "seed=1 relays=3"; "k=f seed=zzz relays=3" ]

let test_generate_deterministic () =
  for index = 0 to 9 do
    Alcotest.(check bool) "same (seed, index), same scenario" true
      (Check.Scenario.equal
         (Check.Scenario.generate ~seed:42 ~index ())
         (Check.Scenario.generate ~seed:42 ~index ()))
  done;
  let sample seed =
    List.init 10 (fun index -> Check.Scenario.generate ~seed ~index ())
  in
  Alcotest.(check bool) "indices vary" true
    (List.length (List.sort_uniq compare (sample 42)) > 1);
  Alcotest.(check bool) "seeds vary" true (sample 42 <> sample 43)

let test_shrink_candidates_simplify () =
  let sc = Check.Scenario.generate ~seed:42 ~index:0 () in
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate differs from parent" true
        (not (Check.Scenario.equal c sc)))
    (Check.Scenario.shrink_candidates sc)

let test_selection_parsing () =
  (match Check.Oracle.selection_of_string "all" with
  | Ok sel -> Alcotest.(check string) "all" "all" (Check.Oracle.selection_to_string sel)
  | Error e -> Alcotest.fail e);
  (match Check.Oracle.selection_of_string "clock, cwnd" with
  | Ok sel ->
      Alcotest.(check string) "subset" "clock,cwnd"
        (Check.Oracle.selection_to_string sel)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown oracle rejected" true
    (Result.is_error (Check.Oracle.selection_of_string "clock,bogus"))

(* ------------------------------------------------------------------ *)
(* Clean runs under full oracles *)

let test_clean_scenarios_pass () =
  for index = 0 to 3 do
    let sc = Check.Scenario.generate ~seed:42 ~index () in
    match check sc with
    | Ok _ -> ()
    | Error reason ->
        Alcotest.fail
          (Printf.sprintf "scenario #%d (%s) failed: %s" index
             (Check.Scenario.to_string sc) reason)
  done

let test_harness_run_smoke () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let report = Check.Harness.run ~selection ~runs:5 ~seed:7 ppf in
  Format.pp_print_flush ppf ();
  Alcotest.(check int) "5 scenarios, no failures" 0
    (List.length report.Check.Harness.failures);
  Alcotest.(check bool) "summary line printed" true
    (contains ~needle:"5/5 scenarios passed" (Buffer.contents buf))

let test_replay_round_trip () =
  let sc = Check.Scenario.generate ~seed:42 ~index:1 () in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  (match Check.Harness.replay ~selection (Check.Scenario.to_string sc) ppf with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "clean scenario failed on replay"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "garbage line is a parse error" true
    (Result.is_error (Check.Harness.replay ~selection "not a scenario" ppf))

let test_replay_rejects_invalid_config () =
  (* Parses fine, but recovery needs relays > hops: the replay must
     answer with a friendly one-line error, not an exception (torsim
     maps the [Error] to a nonzero exit). *)
  let line =
    "k=r seed=1 relays=2 pos=1 bytes=8192 loss=0 burst=0 odown=-1 oup=-1 \
     crash=100 queue=0 strat=cs bn=1000 fast=2000 ep=1000 rebuilds=3"
  in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  match Check.Harness.replay ~selection line ppf with
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "friendly message in: %s" msg)
        true
        (contains ~needle:"invalid scenario" msg)
  | Ok _ -> Alcotest.fail "invalid config was not rejected"

let test_of_string_accepts_pre_overload_lines () =
  (* Reproducer lines written before the overload fields existed must
     keep parsing, with the inert defaults. *)
  let line =
    "k=f seed=1 relays=2 pos=1 bytes=16384 loss=0 burst=0 odown=-1 oup=-1 \
     crash=-1 queue=0 strat=cs bn=1000 fast=2000 ep=16 rebuilds=3"
  in
  match Check.Scenario.of_string line with
  | Ok sc ->
      Alcotest.(check int) "sessions default" 1 sc.Check.Scenario.sessions;
      Alcotest.(check int) "ocirc default" 0 sc.Check.Scenario.oload_circuits;
      Alcotest.(check int) "okib default" 0 sc.Check.Scenario.oload_kib
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Acceptance criterion: the reintroduced PR-4 bug is caught *)

(* A scenario built to manufacture stale wire departures: a crawling
   16 kbit/s client access link serializes one envelope in ~260 ms, so
   the second cell of the first round outlives the 500 ms initial RTO
   while still queued — the spurious retransmit, the recycle on its
   feedback and the reuse by the next cell reproduce exactly the PR-4
   shape.  (It must be the sender's own access link: a slow relay is
   starved by its equally slow downlink and never builds that queue.) *)
let stale_prone =
  {
    Check.Scenario.kind = Check.Scenario.Faults;
    seed = 1;
    relays = 2;
    position = 1;
    bytes = 16 * 1024;
    loss_ppm = 0;
    burst = false;
    outage_ms = None;
    crash_ms = None;
    queue_cells = 0;
    strategy = Check.Scenario.Cs;
    bottleneck_kbps = 1000;
    fast_kbps = 2000;
    endpoint_kbps = 16;
    max_rebuilds = 3;
    sessions = 1;
    oload_circuits = 0;
    oload_kib = 0;
    arrival_ms = 0;
    lifet = 0;
    leave_pm = 0;
    join_pm = 0;
    crashpct = 0;
    grace_ms = 0;
    epoch_ms = 0;
    spares = 0;
    shards = 0;
  }

(* With the guard disabled, find a scenario the oracles reject: the
   crafted one first, then the sampled population as a fallback. *)
let find_failing () =
  if Result.is_error (check stale_prone) then Some stale_prone
  else
    let rec go index =
      if index >= 40 then None
      else
        let sc = Check.Scenario.generate ~seed:42 ~index () in
        if Result.is_error (check sc) then Some sc else go (index + 1)
    in
    go 0

let test_reintroduced_stale_bug_is_caught () =
  Backtap.Hop_sender.unsafe_disable_wire_floor := true;
  let line =
    Fun.protect
      ~finally:(fun () -> Backtap.Hop_sender.unsafe_disable_wire_floor := false)
      (fun () ->
        match find_failing () with
        | None ->
            Alcotest.fail
              "no scenario tripped the oracles with the wire_floor guard off"
        | Some sc ->
            (match check sc with
            | Ok _ -> Alcotest.fail "scenario stopped failing on re-run"
            | Error reason ->
                Alcotest.(check bool)
                  (Printf.sprintf "incarnation oracle named in: %s" reason)
                  true
                  (contains ~needle:"incarnation" reason));
            (* The failure shrinks to a line that still fails on replay. *)
            let shrunk = Check.Harness.shrink ~selection sc in
            let line = Check.Scenario.to_string shrunk in
            let buf = Buffer.create 256 in
            let ppf = Format.formatter_of_buffer buf in
            (match Check.Harness.replay ~selection line ppf with
            | Ok false -> ()
            | Ok true -> Alcotest.fail "shrunk reproducer passed on replay"
            | Error e -> Alcotest.fail e);
            line)
  in
  (* Guard restored: the very same reproducer line is law-abiding. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  match Check.Harness.replay ~selection line ppf with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "reproducer still fails with the guard restored"
  | Error e -> Alcotest.fail e

(* Acceptance criterion for the overload layer, mirroring the PR-4
   test: disabling budget enforcement ([Switchboard.
   unsafe_disable_budget] keeps the accounting but stops refusing and
   OOM-killing) must make the budget oracle fail on a budgeted flash
   crowd, and the failure must shrink to a replayable reproducer. *)
let budget_prone =
  {
    Check.Scenario.kind = Check.Scenario.Overload;
    seed = 3;
    relays = 4;
    position = 1;
    bytes = 32 * 1024;
    loss_ppm = 0;
    burst = false;
    outage_ms = None;
    crash_ms = None;
    queue_cells = 0;
    strategy = Check.Scenario.Cs;
    bottleneck_kbps = 1000;
    fast_kbps = 2000;
    endpoint_kbps = 100_000;
    max_rebuilds = 3;
    sessions = 4;
    oload_circuits = 0;
    oload_kib = 8;  (* 8 KiB: a doubling window alone blows past it *)
    arrival_ms = 20;
    lifet = 0;
    leave_pm = 0;
    join_pm = 0;
    crashpct = 0;
    grace_ms = 0;
    epoch_ms = 0;
    spares = 0;
    shards = 0;
  }

let find_failing_budget () =
  if Result.is_error (check budget_prone) then Some budget_prone
  else
    let rec go index =
      if index >= 40 then None
      else
        let sc = Check.Scenario.generate ~seed:42 ~index () in
        if
          sc.Check.Scenario.kind = Check.Scenario.Overload
          && Result.is_error (check sc)
        then Some sc
        else go (index + 1)
    in
    go 0

let test_disabled_budget_is_caught () =
  Tor_model.Switchboard.unsafe_disable_budget := true;
  let line =
    Fun.protect
      ~finally:(fun () -> Tor_model.Switchboard.unsafe_disable_budget := false)
      (fun () ->
        match find_failing_budget () with
        | None ->
            Alcotest.fail
              "no scenario tripped the oracles with budget enforcement off"
        | Some sc ->
            (match check sc with
            | Ok _ -> Alcotest.fail "scenario stopped failing on re-run"
            | Error reason ->
                Alcotest.(check bool)
                  (Printf.sprintf "budget oracle named in: %s" reason)
                  true
                  (contains ~needle:"budget" reason));
            let shrunk = Check.Harness.shrink ~selection sc in
            let line = Check.Scenario.to_string shrunk in
            let buf = Buffer.create 256 in
            let ppf = Format.formatter_of_buffer buf in
            (match Check.Harness.replay ~selection line ppf with
            | Ok false -> ()
            | Ok true -> Alcotest.fail "shrunk reproducer passed on replay"
            | Error e -> Alcotest.fail e);
            line)
  in
  (* Enforcement restored: the very same reproducer is law-abiding. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  match Check.Harness.replay ~selection line ppf with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "reproducer still fails with enforcement restored"
  | Error e -> Alcotest.fail e

(* Acceptance criterion for the predictive controller, mirroring the
   PR-4 test: breaking the receding-horizon discipline (flipping
   [Circuitstart.Controller.unsafe_disable_plan_bounds] makes a commit
   take the plan's *last* step instead of its first) must make the
   cwnd-law oracle fail on a predictive scenario, and the failure must
   shrink to a replayable reproducer.  The flip is invisible while
   every plan is flat (a target one step away plans [t; t; ...]), so
   the crafted scenario needs a deep ramp overshoot: the exit then
   plans a multi-step descent toward W* and the flipped commit skips
   straight to the tail. *)
let plan_prone =
  { stale_prone with
    Check.Scenario.strategy = Check.Scenario.Pr;
    seed = 2;
    bytes = 64 * 1024;
    bottleneck_kbps = 500;
    fast_kbps = 10_000;
    endpoint_kbps = 100_000;
  }

let find_failing_plan () =
  if Result.is_error (check plan_prone) then Some plan_prone
  else
    let rec go index =
      if index >= 40 then None
      else
        let sc =
          Check.Scenario.generate ~strat:Check.Scenario.Pr ~seed:42 ~index ()
        in
        if Result.is_error (check sc) then Some sc else go (index + 1)
    in
    go 0

let test_disabled_plan_bounds_is_caught () =
  Circuitstart.Controller.unsafe_disable_plan_bounds := true;
  let line =
    Fun.protect
      ~finally:(fun () ->
        Circuitstart.Controller.unsafe_disable_plan_bounds := false)
      (fun () ->
        match find_failing_plan () with
        | None ->
            Alcotest.fail
              "no scenario tripped the oracles with plan bounds off"
        | Some sc ->
            (match check sc with
            | Ok _ -> Alcotest.fail "scenario stopped failing on re-run"
            | Error reason ->
                Alcotest.(check bool)
                  (Printf.sprintf "plan law named in: %s" reason)
                  true
                  (contains ~needle:"predictive" reason));
            (* The failure shrinks to a line that still fails on replay. *)
            let shrunk = Check.Harness.shrink ~selection sc in
            let line = Check.Scenario.to_string shrunk in
            let buf = Buffer.create 256 in
            let ppf = Format.formatter_of_buffer buf in
            (match Check.Harness.replay ~selection line ppf with
            | Ok false -> ()
            | Ok true -> Alcotest.fail "shrunk reproducer passed on replay"
            | Error e -> Alcotest.fail e);
            line)
  in
  (* Discipline restored: the very same reproducer is law-abiding. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  match Check.Harness.replay ~selection line ppf with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "reproducer still fails with the guard restored"
  | Error e -> Alcotest.fail e

(* The --strategy dimension of the codec: "strat=pr" lines round-trip
   (the round-trip property already samples Pr), the CLI spellings
   parse, and a pinned generation stream really is the unpinned stream
   with only the strategy overridden. *)
let test_strategy_dimension () =
  List.iter
    (fun (s, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S parses" s)
        true
        (Check.Scenario.strategy_of_string s = want))
    [
      ("cs", Some Check.Scenario.Cs);
      ("circuitstart", Some Check.Scenario.Cs);
      ("ss", Some Check.Scenario.Ss);
      ("slowstart", Some Check.Scenario.Ss);
      ("pr", Some Check.Scenario.Pr);
      ("predictive", Some Check.Scenario.Pr);
      ("bogus", None);
    ];
  for index = 0 to 9 do
    let free = Check.Scenario.generate ~seed:42 ~index () in
    let pinned =
      Check.Scenario.generate ~strat:Check.Scenario.Pr ~seed:42 ~index ()
    in
    Alcotest.(check bool) "pinned strategy" true
      (pinned.Check.Scenario.strategy = Check.Scenario.Pr);
    Alcotest.(check bool) "same world otherwise" true
      (Check.Scenario.equal pinned
         { free with Check.Scenario.strategy = Check.Scenario.Pr })
  done

(* The oracles in the harness agree with the per-jobs differential used
   by the pool tests: run one scenario's config through the shared
   jobs-determinism helper as well, tying the two harnesses together. *)
let test_scenario_config_jobs_deterministic () =
  let sc = Check.Scenario.generate ~seed:42 ~index:2 () in
  match sc.Check.Scenario.kind with
  | Check.Scenario.Faults ->
      Test_util.check_jobs_deterministic (fun jobs ->
          Workload.Fault_experiment.run_many ~jobs
            [ (sc.Check.Scenario.seed, Check.Scenario.fault_config sc) ])
  | Check.Scenario.Recovery ->
      Test_util.check_jobs_deterministic (fun jobs ->
          Workload.Recovery_experiment.run_many ~jobs
            [ (sc.Check.Scenario.seed, Check.Scenario.recovery_config sc) ])
  | Check.Scenario.Overload ->
      Test_util.check_jobs_deterministic (fun jobs ->
          Workload.Overload_experiment.run_many ~jobs
            [ (sc.Check.Scenario.seed, Check.Scenario.overload_config sc) ])
  | Check.Scenario.Network ->
      Test_util.check_jobs_deterministic (fun jobs ->
          Workload.Network_experiment.run_many ~jobs
            [ (sc.Check.Scenario.seed, Check.Scenario.network_config sc) ])
  | Check.Scenario.Churn ->
      Test_util.check_jobs_deterministic (fun jobs ->
          Workload.Network_experiment.run_many ~jobs
            [ (sc.Check.Scenario.seed, Check.Scenario.churn_config sc) ])

let () =
  Alcotest.run "check"
    [
      ( "scenario",
        [
          QCheck_alcotest.to_alcotest prop_scenario_round_trip;
          Alcotest.test_case "garbage rejected" `Quick test_of_string_rejects_garbage;
          Alcotest.test_case "generation deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "shrink candidates differ" `Quick
            test_shrink_candidates_simplify;
          Alcotest.test_case "oracle selection parsing" `Quick test_selection_parsing;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean scenarios pass" `Slow test_clean_scenarios_pass;
          Alcotest.test_case "run smoke" `Slow test_harness_run_smoke;
          Alcotest.test_case "replay round trip" `Slow test_replay_round_trip;
          Alcotest.test_case "replay rejects invalid config" `Quick
            test_replay_rejects_invalid_config;
          Alcotest.test_case "pre-overload lines parse" `Quick
            test_of_string_accepts_pre_overload_lines;
          Alcotest.test_case "strategy dimension" `Quick test_strategy_dimension;
          Alcotest.test_case "jobs-deterministic config" `Slow
            test_scenario_config_jobs_deterministic;
        ] );
      ( "bug_detection",
        [
          Alcotest.test_case "reintroduced wire_floor bug is caught" `Slow
            test_reintroduced_stale_bug_is_caught;
          Alcotest.test_case "disabled budget enforcement is caught" `Slow
            test_disabled_budget_is_caught;
          Alcotest.test_case "disabled plan bounds is caught" `Slow
            test_disabled_plan_bounds_is_caught;
        ] );
    ]

(* Engine.Pool: the domain pool behind every parallel sweep.

   Two families of tests: the pool mechanics themselves (order
   preservation, exception protocol, argument validation), and the
   tentpole guarantee that running a workload sweep on N domains is
   indistinguishable from running it sequentially — same results, in
   the same order, for the star, fault and contention experiments.
   Structural [compare] is used instead of [=] so NaN-valued fields
   (e.g. empty Online accumulators) compare equal to themselves. *)

let identical a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Pool mechanics *)

let test_map_order () =
  let tasks = Array.init 100 Fun.id in
  let expected = Array.map (fun i -> i * i) tasks in
  Alcotest.(check (array int)) "jobs=1" expected (Engine.Pool.map ~jobs:1 (fun i -> i * i) tasks);
  Alcotest.(check (array int)) "jobs=4" expected (Engine.Pool.map ~jobs:4 (fun i -> i * i) tasks);
  Alcotest.(check (array int)) "more jobs than tasks" [| 0; 1; 4 |]
    (Engine.Pool.map ~jobs:16 (fun i -> i * i) (Array.init 3 Fun.id));
  Alcotest.(check (array int)) "empty" [||] (Engine.Pool.map ~jobs:4 (fun i -> i * i) [||])

let test_map_list_order () =
  let tasks = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun i -> 2 * i) tasks)
    (Engine.Pool.map_list ~jobs:3 (fun i -> 2 * i) tasks)

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool.map: jobs must be positive")
    (fun () -> ignore (Engine.Pool.map ~jobs:0 Fun.id [| 1 |]))

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one worker" true (Engine.Pool.default_jobs () >= 1)

let test_exception_propagation () =
  (* Several tasks fail; the pool must re-raise the lowest-indexed
     failure no matter which domain hit which task first. *)
  let f i = if i mod 10 = 7 then failwith (Printf.sprintf "boom%d" i) else i in
  Alcotest.check_raises "lowest-indexed failure wins" (Failure "boom7") (fun () ->
      ignore (Engine.Pool.map ~jobs:4 f (Array.init 100 Fun.id)));
  Alcotest.check_raises "sequential path too" (Failure "boom7") (fun () ->
      ignore (Engine.Pool.map ~jobs:1 f (Array.init 100 Fun.id)))

let test_map_counted_sees_worker_allocation () =
  (* A naive [Gc.minor_words] delta around a parallel map only observes
     the calling domain; [map_counted] must charge the words a task
     allocates on a *spawned* domain too.  Each task below allocates
     ~30k minor words of boxed floats and list cells, and with four
     tasks on two domains at least one task runs on a worker — so a
     caller-only count would report well under the real total. *)
  let alloc _ =
    Sys.opaque_identity (List.init 10_000 (fun i -> float_of_int i))
  in
  let results, words = Engine.Pool.map_counted ~jobs:2 alloc (Array.init 4 Fun.id) in
  Alcotest.(check int) "all tasks ran" 4 (Array.length results);
  Alcotest.(check bool)
    (Printf.sprintf "worker-domain allocation counted (got %.0f words)" words)
    true
    (words > 4. *. 20_000.)

(* ------------------------------------------------------------------ *)
(* CIRCUITSTART_JOBS *)

(* [Unix.putenv] cannot unset, but [env_jobs] treats the empty string
   as unset, so restoring to "" round-trips correctly. *)
let with_env var value f =
  let old = Option.value (Sys.getenv_opt var) ~default:"" in
  Unix.putenv var value;
  Fun.protect ~finally:(fun () -> Unix.putenv var old) f

let env_jobs_result =
  Alcotest.(result (option int) string)

let check_env_jobs name value expected =
  with_env "CIRCUITSTART_JOBS" value (fun () ->
      Alcotest.check env_jobs_result name expected (Engine.Pool.env_jobs ()))

let test_env_jobs_parsing () =
  check_env_jobs "empty means unset" "" (Ok None);
  check_env_jobs "plain integer" "3" (Ok (Some 3));
  check_env_jobs "whitespace tolerated" " 5 " (Ok (Some 5));
  check_env_jobs "clamped to 128" "9999" (Ok (Some 128));
  check_env_jobs "zero rejected" "0"
    (Error "CIRCUITSTART_JOBS must be a positive integer (got 0)");
  check_env_jobs "negative rejected" "-2"
    (Error "CIRCUITSTART_JOBS must be a positive integer (got -2)");
  check_env_jobs "garbage rejected" "lots"
    (Error "CIRCUITSTART_JOBS must be a positive integer (got \"lots\")")

let test_env_jobs_feeds_default_jobs () =
  (* TORSIM_JOBS (the --jobs flag's backing variable) outranks
     CIRCUITSTART_JOBS, which outranks the detected core count; a
     malformed CIRCUITSTART_JOBS must not make [default_jobs] raise. *)
  with_env "TORSIM_JOBS" "" (fun () ->
      with_env "CIRCUITSTART_JOBS" "3" (fun () ->
          Alcotest.(check int) "env var honored" 3 (Engine.Pool.default_jobs ()));
      with_env "CIRCUITSTART_JOBS" "nope" (fun () ->
          Alcotest.(check bool) "malformed value ignored, stays total" true
            (Engine.Pool.default_jobs () >= 1)));
  with_env "TORSIM_JOBS" "7" (fun () ->
      with_env "CIRCUITSTART_JOBS" "3" (fun () ->
          Alcotest.(check int) "TORSIM_JOBS outranks" 7
            (Engine.Pool.default_jobs ())))

(* ------------------------------------------------------------------ *)
(* Team: the reusable rendezvous behind sharded runs *)

let test_team_run_and_reuse () =
  let team = Engine.Pool.Team.create ~shards:4 () in
  Alcotest.(check int) "shards" 4 (Engine.Pool.Team.shards team);
  let acc = Array.make 4 0 in
  (* Thousands of rendezvous against the same team — the shape of one
     sharded simulation's window loop. *)
  for _ = 1 to 2_000 do
    Engine.Pool.Team.run team (fun i -> acc.(i) <- acc.(i) + i + 1)
  done;
  Engine.Pool.Team.shutdown team;
  Alcotest.(check (array int)) "every shard ran every rendezvous"
    [| 2_000; 4_000; 6_000; 8_000 |] acc

let test_team_single_shard_in_caller () =
  let team = Engine.Pool.Team.create ~shards:1 () in
  let self = Domain.self () in
  let ok = ref false in
  Engine.Pool.Team.run team (fun i -> ok := i = 0 && Domain.self () = self);
  Engine.Pool.Team.shutdown team;
  Alcotest.(check bool) "shards=1 runs in the calling domain" true !ok

let test_team_invalid_shards () =
  Alcotest.check_raises "shards=0"
    (Invalid_argument "Pool.Team.create: shards must be positive") (fun () ->
      ignore (Engine.Pool.Team.create ~shards:0 ()))

let test_team_exception_protocol () =
  let team = Engine.Pool.Team.create ~shards:4 () in
  let ran = Array.make 4 false in
  Alcotest.check_raises "lowest shard's exception wins" (Failure "shard1")
    (fun () ->
      Engine.Pool.Team.run team (fun i ->
          ran.(i) <- true;
          if i = 1 then failwith "shard1";
          if i = 3 then failwith "shard3"));
  Alcotest.(check (array bool)) "every shard still checked in"
    [| true; true; true; true |] ran;
  (* A failed rendezvous must not poison the team. *)
  let acc = Array.make 4 (-1) in
  Engine.Pool.Team.run team (fun i -> acc.(i) <- i);
  Engine.Pool.Team.shutdown team;
  Alcotest.(check (array int)) "team usable after a failure" [| 0; 1; 2; 3 |] acc

let test_team_counts_worker_allocation () =
  (* Same honesty requirement as [map_counted]: words allocated by the
     parked worker domains must show up in [minor_words] (the caller's
     own share is deliberately excluded — shard 0 allocates nothing
     here). *)
  let team = Engine.Pool.Team.create ~shards:2 () in
  Engine.Pool.Team.run team (fun shard ->
      if shard > 0 then
        ignore (Sys.opaque_identity (List.init 10_000 (fun i -> float_of_int i))));
  let words = Engine.Pool.Team.minor_words team in
  Engine.Pool.Team.shutdown team;
  Alcotest.(check bool)
    (Printf.sprintf "worker allocation visible (got %.0f words)" words)
    true (words > 20_000.)

let test_team_shutdown () =
  let team = Engine.Pool.Team.create ~shards:2 () in
  Engine.Pool.Team.run team (fun _ -> ());
  Engine.Pool.Team.shutdown team;
  Engine.Pool.Team.shutdown team;
  (* idempotent *)
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.Team.run: team is shut down") (fun () ->
      Engine.Pool.Team.run team (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Parallel sweeps are byte-identical to sequential ones *)

let small_star seed =
  { Workload.Star_experiment.default_config with
    Workload.Star_experiment.circuit_count = 4;
    relay_count = 8;
    transfer_bytes = Engine.Units.kib 64;
    horizon = Engine.Time.s 30;
    seed;
  }

let test_star_sweep_deterministic () =
  let configs = List.map small_star [ 1; 2; 3 ] in
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Star_experiment.run_many ~jobs configs)

let test_fault_sweep_deterministic () =
  let small config =
    { config with Workload.Fault_experiment.transfer_bytes = Engine.Units.kib 64 }
  in
  let base = Workload.Fault_experiment.default_config in
  let tasks =
    [
      (1, small { base with loss = Some (Netsim.Faults.Bernoulli 0.01) });
      (2, small { base with crash_at = Some (Engine.Time.ms 300) });
      (3, small base);
      (4, small { base with strategy = Circuitstart.Controller.Slow_start });
    ]
  in
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Fault_experiment.run_many ~jobs tasks)

let test_contention_sweep_deterministic () =
  let configs =
    List.map
      (fun cbr_load ->
        { Workload.Contention_experiment.default_config with
          Workload.Contention_experiment.cbr_load;
          transfer_bytes = Engine.Units.kib 256;
        })
      [ 0.; 0.25; 0.5 ]
  in
  Test_util.check_jobs_deterministic ~jobs:[ 2; 3 ] (fun jobs ->
      Workload.Contention_experiment.run_many ~jobs configs)

let test_compare_strategies_uses_pool () =
  let config =
    { Workload.Fault_experiment.default_config with
      Workload.Fault_experiment.transfer_bytes = Engine.Units.kib 64;
      loss = Some (Netsim.Faults.Bernoulli 0.005);
    }
  in
  let seq = Workload.Fault_experiment.compare_strategies ~jobs:1 config in
  let par = Workload.Fault_experiment.compare_strategies ~jobs:2 config in
  Alcotest.(check bool) "paired comparison identical" true (identical seq par)

(* ------------------------------------------------------------------ *)

let prop_pool_matches_array_map =
  QCheck2.Test.make ~name:"Pool.map agrees with Array.map for pure functions"
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 0 64) small_int))
    (fun (jobs, xs) ->
      let tasks = Array.of_list xs in
      Engine.Pool.map ~jobs (fun x -> (x * 31) lxor 5) tasks
      = Array.map (fun x -> (x * 31) lxor 5) tasks)

let () =
  Alcotest.run "pool"
    [
      ( "mechanics",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
          Alcotest.test_case "invalid jobs rejected" `Quick test_invalid_jobs;
          Alcotest.test_case "default jobs positive" `Quick test_default_jobs_positive;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "map_counted sees worker allocation" `Quick
            test_map_counted_sees_worker_allocation;
        ] );
      ( "env",
        [
          Alcotest.test_case "CIRCUITSTART_JOBS parsing" `Quick
            test_env_jobs_parsing;
          Alcotest.test_case "CIRCUITSTART_JOBS feeds default_jobs" `Quick
            test_env_jobs_feeds_default_jobs;
        ] );
      ( "team",
        [
          Alcotest.test_case "run and reuse" `Quick test_team_run_and_reuse;
          Alcotest.test_case "single shard stays in caller" `Quick
            test_team_single_shard_in_caller;
          Alcotest.test_case "invalid shards rejected" `Quick
            test_team_invalid_shards;
          Alcotest.test_case "exception protocol" `Quick
            test_team_exception_protocol;
          Alcotest.test_case "worker allocation counted" `Quick
            test_team_counts_worker_allocation;
          Alcotest.test_case "shutdown" `Quick test_team_shutdown;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "star sweep" `Slow test_star_sweep_deterministic;
          Alcotest.test_case "fault sweep" `Slow test_fault_sweep_deterministic;
          Alcotest.test_case "contention sweep" `Slow test_contention_sweep_deterministic;
          Alcotest.test_case "fault strategy comparison" `Slow
            test_compare_strategies_uses_pool;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_pool_matches_array_map ] );
    ]

(* Engine.Pool: the domain pool behind every parallel sweep.

   Two families of tests: the pool mechanics themselves (order
   preservation, exception protocol, argument validation), and the
   tentpole guarantee that running a workload sweep on N domains is
   indistinguishable from running it sequentially — same results, in
   the same order, for the star, fault and contention experiments.
   Structural [compare] is used instead of [=] so NaN-valued fields
   (e.g. empty Online accumulators) compare equal to themselves. *)

let identical a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Pool mechanics *)

let test_map_order () =
  let tasks = Array.init 100 Fun.id in
  let expected = Array.map (fun i -> i * i) tasks in
  Alcotest.(check (array int)) "jobs=1" expected (Engine.Pool.map ~jobs:1 (fun i -> i * i) tasks);
  Alcotest.(check (array int)) "jobs=4" expected (Engine.Pool.map ~jobs:4 (fun i -> i * i) tasks);
  Alcotest.(check (array int)) "more jobs than tasks" [| 0; 1; 4 |]
    (Engine.Pool.map ~jobs:16 (fun i -> i * i) (Array.init 3 Fun.id));
  Alcotest.(check (array int)) "empty" [||] (Engine.Pool.map ~jobs:4 (fun i -> i * i) [||])

let test_map_list_order () =
  let tasks = List.init 50 Fun.id in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun i -> 2 * i) tasks)
    (Engine.Pool.map_list ~jobs:3 (fun i -> 2 * i) tasks)

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool.map: jobs must be positive")
    (fun () -> ignore (Engine.Pool.map ~jobs:0 Fun.id [| 1 |]))

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one worker" true (Engine.Pool.default_jobs () >= 1)

let test_exception_propagation () =
  (* Several tasks fail; the pool must re-raise the lowest-indexed
     failure no matter which domain hit which task first. *)
  let f i = if i mod 10 = 7 then failwith (Printf.sprintf "boom%d" i) else i in
  Alcotest.check_raises "lowest-indexed failure wins" (Failure "boom7") (fun () ->
      ignore (Engine.Pool.map ~jobs:4 f (Array.init 100 Fun.id)));
  Alcotest.check_raises "sequential path too" (Failure "boom7") (fun () ->
      ignore (Engine.Pool.map ~jobs:1 f (Array.init 100 Fun.id)))

(* ------------------------------------------------------------------ *)
(* Parallel sweeps are byte-identical to sequential ones *)

let small_star seed =
  { Workload.Star_experiment.default_config with
    Workload.Star_experiment.circuit_count = 4;
    relay_count = 8;
    transfer_bytes = Engine.Units.kib 64;
    horizon = Engine.Time.s 30;
    seed;
  }

let test_star_sweep_deterministic () =
  let configs = List.map small_star [ 1; 2; 3 ] in
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Star_experiment.run_many ~jobs configs)

let test_fault_sweep_deterministic () =
  let small config =
    { config with Workload.Fault_experiment.transfer_bytes = Engine.Units.kib 64 }
  in
  let base = Workload.Fault_experiment.default_config in
  let tasks =
    [
      (1, small { base with loss = Some (Netsim.Faults.Bernoulli 0.01) });
      (2, small { base with crash_at = Some (Engine.Time.ms 300) });
      (3, small base);
      (4, small { base with strategy = Circuitstart.Controller.Slow_start });
    ]
  in
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Fault_experiment.run_many ~jobs tasks)

let test_contention_sweep_deterministic () =
  let configs =
    List.map
      (fun cbr_load ->
        { Workload.Contention_experiment.default_config with
          Workload.Contention_experiment.cbr_load;
          transfer_bytes = Engine.Units.kib 256;
        })
      [ 0.; 0.25; 0.5 ]
  in
  Test_util.check_jobs_deterministic ~jobs:[ 2; 3 ] (fun jobs ->
      Workload.Contention_experiment.run_many ~jobs configs)

let test_compare_strategies_uses_pool () =
  let config =
    { Workload.Fault_experiment.default_config with
      Workload.Fault_experiment.transfer_bytes = Engine.Units.kib 64;
      loss = Some (Netsim.Faults.Bernoulli 0.005);
    }
  in
  let seq = Workload.Fault_experiment.compare_strategies ~jobs:1 config in
  let par = Workload.Fault_experiment.compare_strategies ~jobs:2 config in
  Alcotest.(check bool) "paired comparison identical" true (identical seq par)

(* ------------------------------------------------------------------ *)

let prop_pool_matches_array_map =
  QCheck2.Test.make ~name:"Pool.map agrees with Array.map for pure functions"
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 0 64) small_int))
    (fun (jobs, xs) ->
      let tasks = Array.of_list xs in
      Engine.Pool.map ~jobs (fun x -> (x * 31) lxor 5) tasks
      = Array.map (fun x -> (x * 31) lxor 5) tasks)

let () =
  Alcotest.run "pool"
    [
      ( "mechanics",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
          Alcotest.test_case "invalid jobs rejected" `Quick test_invalid_jobs;
          Alcotest.test_case "default jobs positive" `Quick test_default_jobs_positive;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "star sweep" `Slow test_star_sweep_deterministic;
          Alcotest.test_case "fault sweep" `Slow test_fault_sweep_deterministic;
          Alcotest.test_case "contention sweep" `Slow test_contention_sweep_deterministic;
          Alcotest.test_case "fault strategy comparison" `Slow
            test_compare_strategies_uses_pool;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_pool_matches_array_map ] );
    ]

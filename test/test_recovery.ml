(* Tests for the session/recovery layer: a relay crash mid-transfer is
   survived by rebuilding onto an alternate path and resuming at the
   delivered prefix; the rebuild budget is honoured; and results are
   byte-identical for a fixed seed across --jobs values. *)

let crash_config =
  { Workload.Recovery_experiment.default_config with
    transfer_bytes = Engine.Units.kib 64;
    crash_at = Some (Engine.Time.ms 200);
  }

let kinds_of events =
  List.sort_uniq compare (List.map (fun e -> e.Engine.Trace.kind) events)

let test_clean_run_never_rebuilds () =
  let r =
    Workload.Recovery_experiment.run ~seed:3
      { crash_config with crash_at = None }
  in
  Alcotest.(check string) "completed" "completed"
    (Workload.Recovery_experiment.outcome_to_string r.outcome);
  Alcotest.(check int) "no rebuilds" 0 r.rebuilds;
  Alcotest.(check int) "one generation" 1 r.generations;
  Alcotest.(check int) "all bytes" (Engine.Units.kib 64) r.delivered_bytes;
  Alcotest.(check bool) "no recovery time" true (r.time_to_recover = None);
  Alcotest.(check bool) "nothing excluded" true (r.excluded = [])

let test_session_recovers_after_crash () =
  let r = Workload.Recovery_experiment.run ~seed:7 crash_config in
  Alcotest.(check string) "completed despite crash" "completed"
    (Workload.Recovery_experiment.outcome_to_string r.outcome);
  Alcotest.(check bool)
    (Printf.sprintf "rebuilt at least once (%d)" r.rebuilds)
    true (r.rebuilds >= 1);
  Alcotest.(check int) "every byte delivered" (Engine.Units.kib 64)
    r.delivered_bytes;
  Alcotest.(check int) "no cell delivered twice" 0 r.duplicates;
  Alcotest.(check bool) "time-to-recover measured" true
    (r.time_to_recover <> None);
  Alcotest.(check int) "one recovery per rebuild that resumed" r.rebuilds
    (List.length r.recovery_times);
  Alcotest.(check bool) "suspects excluded" true (r.excluded <> []);
  (* The event log tells the whole story: the crash, the rebuild
     decisions, and the resume with its recovery latency. *)
  let kinds = kinds_of r.events in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        ("event log has a " ^ Engine.Trace.kind_to_string k ^ " event")
        true (List.mem k kinds))
    [ Engine.Trace.Fault; Engine.Trace.Rebuild; Engine.Trace.Resume ]

let test_resume_event_carries_offset () =
  let r = Workload.Recovery_experiment.run ~seed:7 crash_config in
  match
    List.find_opt (fun e -> e.Engine.Trace.kind = Engine.Trace.Resume) r.events
  with
  | None -> Alcotest.fail "no resume event"
  | Some e ->
      Alcotest.(check bool)
        ("resume detail has offset and latency: " ^ e.Engine.Trace.detail)
        true
        (Scanf.sscanf_opt e.Engine.Trace.detail "offset=%d recovered_in=%fs"
           (fun off lat -> off >= 0 && off mod 498 = 0 && lat > 0.)
        = Some true)

let test_exhausts_with_zero_budget () =
  let r =
    Workload.Recovery_experiment.run ~seed:7
      { crash_config with max_rebuilds = 0 }
  in
  Alcotest.(check string) "exhausted" "exhausted:rebuild-budget"
    (Workload.Recovery_experiment.outcome_to_string r.outcome);
  Alcotest.(check int) "no rebuild attempted" 0 r.rebuilds;
  Alcotest.(check bool) "partial delivery only" true
    (r.delivered_bytes < Engine.Units.kib 64);
  (* Terminal in bounded simulated time, not parked until the horizon. *)
  Alcotest.(check bool) "not timed out" true
    (r.outcome <> Workload.Recovery_experiment.Timed_out);
  let kinds = kinds_of r.events in
  Alcotest.(check bool) "exhausted event recorded" true
    (List.mem Engine.Trace.Exhausted kinds)

let test_uniform_selection_recovers () =
  let r =
    Workload.Recovery_experiment.run ~seed:9
      { crash_config with selection = Tor_model.Directory.Uniform }
  in
  Alcotest.(check string) "completed" "completed"
    (Workload.Recovery_experiment.outcome_to_string r.outcome);
  Alcotest.(check int) "all bytes" (Engine.Units.kib 64) r.delivered_bytes

let test_guard_crash_recovers () =
  let r =
    Workload.Recovery_experiment.run ~seed:11
      { crash_config with crash_position = 1 }
  in
  Alcotest.(check string) "completed" "completed"
    (Workload.Recovery_experiment.outcome_to_string r.outcome);
  Alcotest.(check int) "no duplicates" 0 r.duplicates

let test_deterministic_across_jobs () =
  let tasks =
    [ (7, crash_config); (8, crash_config);
      (9, { crash_config with selection = Tor_model.Directory.Uniform }) ]
  in
  (* Structural equality covers every field, including the full trace
     event list — ordering must not depend on the pool. *)
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Recovery_experiment.run_many ~jobs tasks)

let test_compare_strategies_paired () =
  let c = Workload.Recovery_experiment.compare_strategies ~seed:7 crash_config in
  (* Both face the same crash schedule; both must finish the transfer. *)
  List.iter
    (fun (label, (r : Workload.Recovery_experiment.result)) ->
      Alcotest.(check string) (label ^ " completed") "completed"
        (Workload.Recovery_experiment.outcome_to_string r.outcome);
      Alcotest.(check int) (label ^ " all bytes") (Engine.Units.kib 64)
        r.delivered_bytes;
      Alcotest.(check int) (label ^ " no duplicates") 0 r.duplicates)
    [ ("circuitstart", c.circuit_start); ("slowstart", c.slow_start) ];
  (* The crash hits the same relay at the same instant in both runs. *)
  let crash_event r =
    List.find_opt
      (fun e -> e.Engine.Trace.kind = Engine.Trace.Fault)
      r.Workload.Recovery_experiment.events
  in
  match (crash_event c.circuit_start, crash_event c.slow_start) with
  | Some a, Some b ->
      Alcotest.(check string) "same victim" a.Engine.Trace.subject
        b.Engine.Trace.subject;
      Alcotest.(check bool) "same instant" true
        (a.Engine.Trace.time = b.Engine.Trace.time)
  | _ -> Alcotest.fail "crash event missing"

let test_config_validation () =
  let bad mutate msg =
    match
      Workload.Recovery_experiment.validate_config
        (mutate Workload.Recovery_experiment.default_config)
    with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("validated: " ^ msg)
  in
  bad (fun c -> { c with relay_count = 3 }) "relay_count = hops";
  bad (fun c -> { c with crash_position = 0 }) "crash_position 0";
  bad (fun c -> { c with crash_position = 4 }) "crash_position > hops";
  bad (fun c -> { c with max_rebuilds = -1 }) "negative budget";
  bad (fun c -> { c with transfer_bytes = 0 }) "empty transfer"

let () =
  Alcotest.run "recovery"
    [
      ( "session",
        [
          Alcotest.test_case "clean run never rebuilds" `Quick
            test_clean_run_never_rebuilds;
          Alcotest.test_case "recovers after crash" `Quick
            test_session_recovers_after_crash;
          Alcotest.test_case "resume event carries offset" `Quick
            test_resume_event_carries_offset;
          Alcotest.test_case "exhausts with zero budget" `Quick
            test_exhausts_with_zero_budget;
          Alcotest.test_case "uniform selection recovers" `Quick
            test_uniform_selection_recovers;
          Alcotest.test_case "guard crash recovers" `Quick
            test_guard_crash_recovers;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "deterministic across jobs" `Slow
            test_deterministic_across_jobs;
          Alcotest.test_case "paired comparison" `Slow
            test_compare_strategies_paired;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]

(* Helpers shared across the test executables: the jobs-determinism
   check (one copy instead of three), the golden-fixture renderers, and
   the fixed experiment configurations behind the committed golden
   traces.  Every test executable in this directory links the same
   module set, so these are available everywhere without ceremony. *)

(* [check_jobs_deterministic run_many] asserts that a parallel sweep is
   byte-identical to the sequential one: [run_many jobs] for each entry
   of [jobs] must equal [run_many 1].  Structural [compare] instead of
   [=] so NaN-valued fields (e.g. empty Online accumulators) compare
   equal to themselves. *)
let check_jobs_deterministic ?(jobs = [ 2; 4 ]) run_many =
  let reference = run_many 1 in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d byte-identical to jobs=1" j)
        true
        (compare (run_many j) reference = 0))
    jobs

(* ------------------------------------------------------------------ *)
(* Golden-fixture rendering *)

(* Serialize an event list through a fresh registry so the CSV is the
   exact bytes [Engine.Trace.events_to_csv] emits for these events. *)
let events_csv events =
  let t = Engine.Trace.create () in
  List.iter
    (fun (e : Engine.Trace.event) ->
      Engine.Trace.record_event t e.kind ~subject:e.subject ~detail:e.detail
        e.time)
    events;
  let buf = Buffer.create 1024 in
  Engine.Trace.events_to_csv t buf;
  Buffer.contents buf

(* Render a cwnd trace as CSV.  Times at nanosecond precision so the
   fixture pins the exact schedule, not a rounded shadow of it. *)
let cwnd_csv samples =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time_s,cwnd_cells\n";
  Array.iter
    (fun (time, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%.9f,%g\n" (Engine.Time.to_sec_f time) v))
    samples;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The runs behind the committed golden traces.  Small enough to run in
   well under a second each, disturbed enough that the event logs are
   non-trivial.  Changing any of these invalidates the fixtures:
   regenerate with
     CIRCUITSTART_UPDATE_GOLDEN=test/golden dune exec test/test_golden.exe
   and commit the diff deliberately. *)

let golden_seed = 42

let golden_fault_config =
  {
    Workload.Fault_experiment.default_config with
    Workload.Fault_experiment.transfer_bytes = Engine.Units.kib 32;
    loss = Some (Netsim.Faults.Bernoulli 0.01);
    outage = (Some (Engine.Time.ms 200, Engine.Time.ms 450));
  }

let golden_recovery_config =
  {
    Workload.Recovery_experiment.default_config with
    Workload.Recovery_experiment.transfer_bytes = Engine.Units.kib 32;
    crash_at = Some (Engine.Time.ms 200);
  }

let golden_trace_config =
  {
    Workload.Trace_experiment.default_config with
    Workload.Trace_experiment.transfer_bytes = Engine.Units.kib 128;
    horizon = Engine.Time.s 5;
  }

(* The same seeded world under the other two startup strategies: the
   three trace fixtures differ only in the controller, so a diff in one
   of them localizes a behaviour change to that strategy. *)
let golden_trace_config_slowstart =
  { golden_trace_config with
    Workload.Trace_experiment.strategy = Circuitstart.Controller.Slow_start;
  }

let golden_trace_config_predictive =
  { golden_trace_config with
    Workload.Trace_experiment.strategy = Circuitstart.Controller.Predictive;
  }

(* Unit and property tests for the network substrate. *)

let time = Alcotest.testable Engine.Time.pp Engine.Time.equal

let mk_packet ids ~src ~dst ~size =
  Netsim.Packet.make ids ~src:(Netsim.Node_id.of_int src)
    ~dst:(Netsim.Node_id.of_int dst) ~size ~now:Engine.Time.zero
    (Netsim.Payload.Raw "x")

(* ------------------------------------------------------------------ *)
(* Node ids and packets *)

let test_node_id () =
  let a = Netsim.Node_id.of_int 3 in
  Alcotest.(check int) "roundtrip" 3 (Netsim.Node_id.to_int a);
  Alcotest.(check bool) "equal" true (Netsim.Node_id.equal a (Netsim.Node_id.of_int 3));
  Alcotest.check_raises "negative" (Invalid_argument "Node_id.of_int: negative id")
    (fun () -> ignore (Netsim.Node_id.of_int (-1)))

let test_packet_ids_dense () =
  let ids = Netsim.Packet.fresh_id_state () in
  let p1 = mk_packet ids ~src:0 ~dst:1 ~size:10 in
  let p2 = mk_packet ids ~src:0 ~dst:1 ~size:10 in
  Alcotest.(check int) "first id" 0 p1.Netsim.Packet.id;
  Alcotest.(check int) "second id" 1 p2.Netsim.Packet.id;
  Alcotest.check_raises "size" (Invalid_argument "Packet.make: size must be positive")
    (fun () -> ignore (mk_packet ids ~src:0 ~dst:1 ~size:0))

let test_payload_printer () =
  Alcotest.(check string) "raw" "raw[2]"
    (Format.asprintf "%a" Netsim.Payload.pp (Netsim.Payload.Raw "ab"))

(* ------------------------------------------------------------------ *)
(* Nqueue *)

let test_nqueue_fifo () =
  let ids = Netsim.Packet.fresh_id_state () in
  let q = Netsim.Nqueue.create Netsim.Nqueue.unbounded in
  let ps = List.init 5 (fun _ -> mk_packet ids ~src:0 ~dst:1 ~size:10) in
  List.iter (fun p -> ignore (Netsim.Nqueue.enqueue q p)) ps;
  let out = List.init 5 (fun _ -> (Option.get (Netsim.Nqueue.dequeue q)).Netsim.Packet.id) in
  Alcotest.(check (list int)) "fifo order" [ 0; 1; 2; 3; 4 ] out;
  Alcotest.(check bool) "empty after drain" true (Netsim.Nqueue.is_empty q)

let test_nqueue_packet_capacity () =
  let ids = Netsim.Packet.fresh_id_state () in
  let q = Netsim.Nqueue.create (Netsim.Nqueue.packets 2) in
  Alcotest.(check bool) "1 fits" true (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  Alcotest.(check bool) "2 fits" true (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  Alcotest.(check bool) "3 dropped" false (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  Alcotest.(check int) "drops" 1 (Netsim.Nqueue.drops q);
  Alcotest.(check int) "dropped bytes" 10 (Netsim.Nqueue.dropped_bytes q);
  ignore (Netsim.Nqueue.dequeue q);
  Alcotest.(check bool) "fits after dequeue" true
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10))

let test_nqueue_byte_capacity () =
  let ids = Netsim.Packet.fresh_id_state () in
  let q = Netsim.Nqueue.create (Netsim.Nqueue.bytes 25) in
  Alcotest.(check bool) "10B fits" true (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  Alcotest.(check bool) "10B fits" true (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  Alcotest.(check bool) "10B dropped (would exceed)" false
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  Alcotest.(check bool) "5B fits exactly" true
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:5));
  Alcotest.(check int) "byte length" 25 (Netsim.Nqueue.byte_length q);
  Alcotest.(check int) "hwm" 25 (Netsim.Nqueue.high_watermark_bytes q)

(* A packet larger than max_bytes can never fit, even into an empty
   queue: it must be tail-dropped (and counted), not wedge the queue. *)
let test_nqueue_oversized_packet () =
  let ids = Netsim.Packet.fresh_id_state () in
  let q = Netsim.Nqueue.create (Netsim.Nqueue.bytes 10) in
  Alcotest.(check bool) "oversized dropped on empty queue" false
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:11));
  Alcotest.(check bool) "still empty" true (Netsim.Nqueue.is_empty q);
  Alcotest.(check int) "drop counted" 1 (Netsim.Nqueue.drops q);
  Alcotest.(check int) "dropped bytes counted" 11 (Netsim.Nqueue.dropped_bytes q);
  Alcotest.(check int) "hwm untouched" 0 (Netsim.Nqueue.high_watermark_bytes q);
  Alcotest.(check bool) "a fitting packet still goes through" true
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10))

(* Packet and byte limits in force together: drops / dropped_bytes must
   attribute each rejection correctly whichever limit it tripped. *)
let test_nqueue_mixed_limits () =
  let ids = Netsim.Packet.fresh_id_state () in
  let q =
    Netsim.Nqueue.create
      { Netsim.Nqueue.max_packets = Some 3; max_bytes = Some 25 }
  in
  Alcotest.(check bool) "10B fits" true
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  Alcotest.(check bool) "10B fits" true
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  (* Byte limit trips first: 2 packets < 3, but 20 + 10 > 25. *)
  Alcotest.(check bool) "byte limit trips" false
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:10));
  Alcotest.(check bool) "small packet still fits" true
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:2));
  (* Now the packet limit trips: 3 packets queued, bytes would fit. *)
  Alcotest.(check bool) "packet limit trips" false
    (Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size:1));
  Alcotest.(check int) "both drops counted" 2 (Netsim.Nqueue.drops q);
  Alcotest.(check int) "dropped bytes sum both causes" 11
    (Netsim.Nqueue.dropped_bytes q);
  Alcotest.(check int) "survivors untouched" 3 (Netsim.Nqueue.length q);
  Alcotest.(check int) "byte length" 22 (Netsim.Nqueue.byte_length q)

let prop_nqueue_conservation =
  QCheck2.Test.make ~name:"queue conserves packets (enqueued = dequeued + remaining + drops)"
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 1 100))
    (fun sizes ->
      let ids = Netsim.Packet.fresh_id_state () in
      let q = Netsim.Nqueue.create (Netsim.Nqueue.packets 10) in
      let accepted = ref 0 in
      List.iter
        (fun size ->
          if Netsim.Nqueue.enqueue q (mk_packet ids ~src:0 ~dst:1 ~size) then incr accepted)
        sizes;
      let drained = ref 0 in
      let rec drain () =
        match Netsim.Nqueue.dequeue q with
        | Some _ -> incr drained; drain ()
        | None -> ()
      in
      drain ();
      !accepted = !drained
      && !accepted + Netsim.Nqueue.drops q = List.length sizes
      && Netsim.Nqueue.enqueued_total q = !accepted)

(* ------------------------------------------------------------------ *)
(* Link *)

let mk_link ?queue ?(rate = Engine.Units.Rate.mbit 8) ?(delay = Engine.Time.ms 10) sim =
  Netsim.Link.create sim ~src:(Netsim.Node_id.of_int 0) ~dst:(Netsim.Node_id.of_int 1)
    ~rate ~delay ?queue ()

let test_link_delivery_latency () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  let arrived = ref None in
  Netsim.Link.set_receiver link (fun _ -> arrived := Some (Engine.Sim.now sim));
  (* 1000 bytes at 8 Mbit/s = 1 ms serialization + 10 ms propagation. *)
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000);
  Engine.Sim.run sim;
  Alcotest.(check (option time)) "latency = tx + prop" (Some (Engine.Time.ms 11)) !arrived;
  Alcotest.(check int) "delivered" 1 (Netsim.Link.packets_delivered link);
  Alcotest.(check int) "bytes" 1000 (Netsim.Link.bytes_delivered link)

let test_link_serialization_spacing () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  let arrivals = ref [] in
  Netsim.Link.set_receiver link (fun p ->
      arrivals := (p.Netsim.Packet.id, Engine.Sim.now sim) :: !arrivals);
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000);
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000);
  Engine.Sim.run sim;
  match List.rev !arrivals with
  | [ (0, t0); (1, t1) ] ->
      Alcotest.check time "first at 11ms" (Engine.Time.ms 11) t0;
      Alcotest.check time "second one serialization later" (Engine.Time.ms 12) t1
  | _ -> Alcotest.fail "expected two arrivals in order"

let test_link_busy_and_queue () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  Netsim.Link.set_receiver link (fun _ -> ());
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000);
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000);
  Alcotest.(check bool) "busy" true (Netsim.Link.busy link);
  Alcotest.(check int) "queued" 1 (Netsim.Link.queue_length link);
  Engine.Sim.run sim;
  Alcotest.(check bool) "idle after" false (Netsim.Link.busy link);
  Alcotest.(check int) "queue empty" 0 (Netsim.Link.queue_length link)

let test_link_drop () =
  let sim = Engine.Sim.create () in
  let link = mk_link ~queue:(Netsim.Nqueue.packets 1) sim in
  let ids = Netsim.Packet.fresh_id_state () in
  let delivered = ref 0 in
  Netsim.Link.set_receiver link (fun _ -> incr delivered);
  for _ = 1 to 4 do
    Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000)
  done;
  Engine.Sim.run sim;
  (* One on the wire + one queued; two dropped. *)
  Alcotest.(check int) "delivered" 2 !delivered;
  Alcotest.(check int) "drops" 2 (Netsim.Link.queue_drops link)

let test_link_blackhole () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:100);
  Engine.Sim.run sim;
  Alcotest.(check int) "blackholed" 1 (Netsim.Link.packets_blackholed link)

let test_link_on_transmit () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  Netsim.Link.set_receiver link (fun _ -> ());
  let tx = ref [] in
  let send () =
    let p = mk_packet ids ~src:0 ~dst:1 ~size:1000 in
    Netsim.Link.send link
      ~on_transmit:(fun id -> tx := (id, Engine.Sim.now sim) :: !tx)
      p;
    p.Netsim.Packet.id
  in
  let id0 = send () in
  let id1 = send () in
  Engine.Sim.run sim;
  (* First serializes immediately; second when the first's tx ends
     (1 ms); each firing carries its own packet's id. *)
  Alcotest.(check (list (pair int time)))
    "transmit ids and instants"
    [ (id0, Engine.Time.zero); (id1, Engine.Time.ms 1) ]
    (List.rev !tx)

let test_link_on_transmit_not_fired_on_drop () =
  let sim = Engine.Sim.create () in
  let link = mk_link ~queue:(Netsim.Nqueue.packets 1) sim in
  let ids = Netsim.Packet.fresh_id_state () in
  Netsim.Link.set_receiver link (fun _ -> ());
  let fired = ref 0 in
  for _ = 1 to 4 do
    Netsim.Link.send link ~on_transmit:(fun _ -> incr fired)
      (mk_packet ids ~src:0 ~dst:1 ~size:1000)
  done;
  Engine.Sim.run sim;
  Alcotest.(check int) "fires only for transmitted" 2 !fired

let test_link_set_rate () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  let arrivals = ref [] in
  Netsim.Link.set_receiver link (fun _ -> arrivals := Engine.Sim.now sim :: !arrivals);
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000);
  Engine.Sim.run sim;
  Netsim.Link.set_rate link (Engine.Units.Rate.mbit 16);
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000);
  Engine.Sim.run sim;
  match List.rev !arrivals with
  | [ t0; t1 ] ->
      Alcotest.check time "old rate" (Engine.Time.ms 11) t0;
      (* Second sent at 11 ms: 0.5 ms serialization at the doubled rate. *)
      Alcotest.check time "new rate" (Engine.Time.of_ms_f 21.5) t1
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_utilization () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  Netsim.Link.set_receiver link (fun _ -> ());
  Netsim.Link.send link (mk_packet ids ~src:0 ~dst:1 ~size:1000);
  Engine.Sim.run sim;
  (* 1 ms busy out of 10 ms horizon. *)
  Alcotest.(check (float 1e-9)) "10%" 0.1
    (Netsim.Link.utilization link (Engine.Time.ms 10))

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_build () =
  let sim = Engine.Sim.create () in
  let topo = Netsim.Topology.create sim in
  let a = Netsim.Topology.add_node topo ~name:"a" in
  let b = Netsim.Topology.add_node topo ~name:"b" in
  Netsim.Topology.connect topo a b ~rate:(Engine.Units.Rate.mbit 1)
    ~delay:(Engine.Time.ms 1) ();
  Alcotest.(check int) "node count" 2 (Netsim.Topology.node_count topo);
  Alcotest.(check string) "name" "a" (Netsim.Topology.name topo a);
  Alcotest.(check bool) "a->b link" true (Netsim.Topology.link topo a b <> None);
  Alcotest.(check bool) "b->a link" true (Netsim.Topology.link topo b a <> None);
  Alcotest.(check (list int)) "neighbors" [ Netsim.Node_id.to_int b ]
    (List.map Netsim.Node_id.to_int (Netsim.Topology.neighbors topo a));
  Alcotest.(check int) "links" 2 (List.length (Netsim.Topology.links topo))

let test_topology_errors () =
  let sim = Engine.Sim.create () in
  let topo = Netsim.Topology.create sim in
  let a = Netsim.Topology.add_node topo ~name:"a" in
  let b = Netsim.Topology.add_node topo ~name:"b" in
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.connect: self-loop")
    (fun () ->
      Netsim.Topology.connect topo a a ~rate:(Engine.Units.Rate.mbit 1)
        ~delay:Engine.Time.zero ());
  Netsim.Topology.connect topo a b ~rate:(Engine.Units.Rate.mbit 1)
    ~delay:Engine.Time.zero ();
  Alcotest.(check bool) "double connect raises" true
    (try
       Netsim.Topology.connect topo a b ~rate:(Engine.Units.Rate.mbit 1)
         ~delay:Engine.Time.zero ();
       false
     with Invalid_argument _ -> true)

let test_topology_line () =
  let sim = Engine.Sim.create () in
  let topo, ids =
    Netsim.Topology.line sim ~names:[ "a"; "b"; "c" ] ~rate:(Engine.Units.Rate.mbit 1)
      ~delay:(Engine.Time.ms 1) ()
  in
  Alcotest.(check int) "three nodes" 3 (Netsim.Topology.node_count topo);
  match ids with
  | [ a; b; c ] ->
      Alcotest.(check bool) "a-b" true (Netsim.Topology.link topo a b <> None);
      Alcotest.(check bool) "b-c" true (Netsim.Topology.link topo b c <> None);
      Alcotest.(check bool) "no a-c" true (Netsim.Topology.link topo a c = None)
  | _ -> Alcotest.fail "expected three ids"

let test_topology_star () =
  let sim = Engine.Sim.create () in
  let topo, hub, leaves =
    Netsim.Topology.star sim ~hub:"hub"
      ~leaves:
        [ ("l0", Engine.Units.Rate.mbit 1, Engine.Time.ms 1);
          ("l1", Engine.Units.Rate.mbit 2, Engine.Time.ms 2) ]
      ()
  in
  Alcotest.(check int) "nodes" 3 (Netsim.Topology.node_count topo);
  List.iter
    (fun leaf ->
      Alcotest.(check bool) "leaf-hub" true (Netsim.Topology.link topo leaf hub <> None))
    leaves;
  match leaves with
  | [ l0; l1 ] ->
      Alcotest.(check bool) "no leaf-leaf" true (Netsim.Topology.link topo l0 l1 = None)
  | _ -> Alcotest.fail "expected two leaves"

let test_topology_dumbbell () =
  let sim = Engine.Sim.create () in
  let fast = Engine.Units.Rate.mbit 10 and d = Engine.Time.ms 2 in
  let topo, (ls, rs) =
    Netsim.Topology.dumbbell sim
      ~left:[ ("a", fast, d); ("b", fast, d) ]
      ~right:[ ("x", fast, d) ]
      ~bottleneck_rate:(Engine.Units.Rate.mbit 1)
      ~bottleneck_delay:(Engine.Time.ms 20) ()
  in
  Alcotest.(check int) "2 routers + 3 leaves" 5 (Netsim.Topology.node_count topo);
  let net = Netsim.Network.create topo in
  (match (ls, rs) with
  | [ a; _ ], [ x ] ->
      Alcotest.(check (option int)) "a to x crosses 3 links" (Some 3)
        (Netsim.Network.hop_count net a x);
      Alcotest.(check (option time)) "path delay" (Some (Engine.Time.ms 24))
        (Netsim.Network.path_delay net a x)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "empty side rejected" true
    (try
       ignore
         (Netsim.Topology.dumbbell sim ~left:[] ~right:[ ("x", fast, d) ]
            ~bottleneck_rate:fast ~bottleneck_delay:d ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Network *)

let star_net () =
  let sim = Engine.Sim.create () in
  let topo, hub, leaves =
    Netsim.Topology.star sim ~hub:"hub"
      ~leaves:
        (List.init 3 (fun i ->
             (Printf.sprintf "l%d" i, Engine.Units.Rate.mbit 8, Engine.Time.ms 5)))
      ()
  in
  (sim, topo, Netsim.Network.create topo, hub, leaves)

let test_network_routing () =
  let _, _, net, hub, leaves = star_net () in
  match leaves with
  | [ l0; l1; _ ] ->
      Alcotest.(check (option int)) "two hops leaf to leaf" (Some 2)
        (Netsim.Network.hop_count net l0 l1);
      Alcotest.(check (option (list int)))
        "path through hub"
        (Some [ Netsim.Node_id.to_int l0; Netsim.Node_id.to_int hub; Netsim.Node_id.to_int l1 ])
        (Option.map (List.map Netsim.Node_id.to_int) (Netsim.Network.path net l0 l1));
      Alcotest.(check (option time)) "path delay" (Some (Engine.Time.ms 10))
        (Netsim.Network.path_delay net l0 l1)
  | _ -> Alcotest.fail "expected three leaves"

let test_network_delivery () =
  let sim, _, net, _, leaves = star_net () in
  match leaves with
  | [ l0; l1; _ ] ->
      let got = ref None in
      Netsim.Network.set_local_handler net l1 (fun p ->
          got := Some (p.Netsim.Packet.id, Engine.Sim.now sim));
      let p =
        Netsim.Network.make_packet net ~src:l0 ~dst:l1 ~size:1000 (Netsim.Payload.Raw "y")
      in
      Netsim.Network.send net p;
      Engine.Sim.run sim;
      (* 1 ms tx + 5 ms + forward (1 ms tx + 5 ms) = 12 ms. *)
      Alcotest.(check (option (pair int time)))
        "delivered via hub" (Some (0, Engine.Time.ms 12)) !got
  | _ -> Alcotest.fail "expected three leaves"

let test_network_undeliverable () =
  let sim, _, net, _, leaves = star_net () in
  match leaves with
  | [ l0; l1; _ ] ->
      let p =
        Netsim.Network.make_packet net ~src:l0 ~dst:l1 ~size:100 (Netsim.Payload.Raw "z")
      in
      Netsim.Network.send net p;
      Engine.Sim.run sim;
      Alcotest.(check int) "counted" 1 (Netsim.Network.undeliverable net)
  | _ -> Alcotest.fail "expected three leaves"

let test_network_loopback () =
  let sim, _, net, _, leaves = star_net () in
  match leaves with
  | l0 :: _ ->
      let got = ref false in
      Netsim.Network.set_local_handler net l0 (fun _ -> got := true);
      let p =
        Netsim.Network.make_packet net ~src:l0 ~dst:l0 ~size:100 (Netsim.Payload.Raw "w")
      in
      Netsim.Network.send net p;
      Engine.Sim.run sim;
      Alcotest.(check bool) "loopback delivered" true !got
  | _ -> Alcotest.fail "expected leaves"

let test_network_no_route () =
  (* Two disconnected nodes. *)
  let sim = Engine.Sim.create () in
  let topo = Netsim.Topology.create sim in
  let a = Netsim.Topology.add_node topo ~name:"a" in
  let b = Netsim.Topology.add_node topo ~name:"b" in
  let net = Netsim.Network.create topo in
  Alcotest.(check (option int)) "no hop count" None (Netsim.Network.hop_count net a b);
  let p = Netsim.Network.make_packet net ~src:a ~dst:b ~size:10 (Netsim.Payload.Raw "q") in
  Alcotest.(check bool) "send raises" true
    (try
       Netsim.Network.send net p;
       false
     with Failure _ -> true)

let test_network_on_transmit_first_link_only () =
  let sim, _, net, _, leaves = star_net () in
  match leaves with
  | [ l0; l1; _ ] ->
      Netsim.Network.set_local_handler net l1 (fun _ -> ());
      let fired = ref 0 in
      let p =
        Netsim.Network.make_packet net ~src:l0 ~dst:l1 ~size:1000 (Netsim.Payload.Raw "t")
      in
      Netsim.Network.send net ~on_transmit:(fun _ -> incr fired) p;
      Engine.Sim.run sim;
      Alcotest.(check int) "once" 1 !fired
  | _ -> Alcotest.fail "expected three leaves"

(* ------------------------------------------------------------------ *)
(* CBR source *)

let test_cbr_rate () =
  let sim, _, net, _, leaves = star_net () in
  match leaves with
  | [ l0; l1; _ ] ->
      let received = ref 0 in
      Netsim.Network.set_local_handler net l1 (fun _ -> incr received);
      (* 512 B at 1 Mbit/s: one packet per 4.096 ms -> ~244 in 1 s. *)
      let cbr =
        Netsim.Cbr_source.start net ~src:l0 ~dst:l1 ~rate:(Engine.Units.Rate.mbit 1) ()
      in
      Engine.Sim.run sim ~until:(Engine.Time.s 1);
      Alcotest.(check bool)
        (Printf.sprintf "~244 packets in 1s (got %d)" !received)
        true
        (!received >= 240 && !received <= 245);
      Alcotest.(check int) "bytes accounted" (Netsim.Cbr_source.packets_sent cbr * 512)
        (Netsim.Cbr_source.bytes_sent cbr)
  | _ -> Alcotest.fail "expected three leaves"

let test_cbr_stop_and_rate_change () =
  let sim, _, net, _, leaves = star_net () in
  match leaves with
  | [ l0; l1; _ ] ->
      Netsim.Network.set_local_handler net l1 (fun _ -> ());
      let cbr =
        Netsim.Cbr_source.start net ~src:l0 ~dst:l1 ~rate:(Engine.Units.Rate.mbit 1) ()
      in
      ignore
        (Engine.Sim.schedule_at sim (Engine.Time.ms 100) (fun () ->
             Netsim.Cbr_source.set_rate cbr (Engine.Units.Rate.mbit 4)));
      ignore
        (Engine.Sim.schedule_at sim (Engine.Time.ms 200) (fun () ->
             Netsim.Cbr_source.stop cbr));
      Engine.Sim.run sim ~until:(Engine.Time.s 1);
      (* ~24 packets in the first 100 ms, ~98 in the next (4x), none after. *)
      let sent = Netsim.Cbr_source.packets_sent cbr in
      Alcotest.(check bool)
        (Printf.sprintf "sent ~122 (got %d)" sent)
        true
        (sent >= 115 && sent <= 130);
      Netsim.Cbr_source.stop cbr
  | _ -> Alcotest.fail "expected three leaves"

(* ------------------------------------------------------------------ *)
(* Flow monitor *)

let test_flow_monitor () =
  let fm = Netsim.Flow_monitor.create () in
  Netsim.Flow_monitor.on_tx fm ~flow:1 ~bytes:100 ~now:(Engine.Time.ms 1);
  Netsim.Flow_monitor.on_tx fm ~flow:1 ~bytes:100 ~now:(Engine.Time.ms 2);
  Netsim.Flow_monitor.on_rx fm ~flow:1 ~bytes:100 ~now:(Engine.Time.ms 11);
  Netsim.Flow_monitor.on_rx fm ~flow:1 ~bytes:100 ~now:(Engine.Time.ms 12);
  Netsim.Flow_monitor.on_rx fm ~flow:2 ~bytes:7 ~now:(Engine.Time.ms 5);
  (match Netsim.Flow_monitor.stats fm ~flow:1 with
  | Some s ->
      Alcotest.(check int) "tx packets" 2 s.Netsim.Flow_monitor.tx_packets;
      Alcotest.(check int) "rx bytes" 200 s.Netsim.Flow_monitor.rx_bytes
  | None -> Alcotest.fail "missing flow");
  Alcotest.(check (option time)) "ttlb" (Some (Engine.Time.ms 11))
    (Netsim.Flow_monitor.time_to_last_byte fm ~flow:1);
  Alcotest.(check (option time)) "incomplete flow has no ttlb" None
    (Netsim.Flow_monitor.time_to_last_byte fm ~flow:2);
  Alcotest.(check (list int)) "flows" [ 1; 2 ] (Netsim.Flow_monitor.flows fm);
  Alcotest.(check int) "total rx" 207 (Netsim.Flow_monitor.total_rx_bytes fm)

(* ------------------------------------------------------------------ *)

let qtests = List.map QCheck_alcotest.to_alcotest [ prop_nqueue_conservation ]

let () =
  Alcotest.run "netsim"
    [
      ( "ids+packets",
        [
          Alcotest.test_case "node ids" `Quick test_node_id;
          Alcotest.test_case "packet ids dense" `Quick test_packet_ids_dense;
          Alcotest.test_case "payload printer" `Quick test_payload_printer;
        ] );
      ( "nqueue",
        [
          Alcotest.test_case "fifo" `Quick test_nqueue_fifo;
          Alcotest.test_case "packet capacity" `Quick test_nqueue_packet_capacity;
          Alcotest.test_case "byte capacity" `Quick test_nqueue_byte_capacity;
          Alcotest.test_case "oversized packet" `Quick test_nqueue_oversized_packet;
          Alcotest.test_case "mixed limits" `Quick test_nqueue_mixed_limits;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery latency" `Quick test_link_delivery_latency;
          Alcotest.test_case "serialization spacing" `Quick
            test_link_serialization_spacing;
          Alcotest.test_case "busy and queue" `Quick test_link_busy_and_queue;
          Alcotest.test_case "drop" `Quick test_link_drop;
          Alcotest.test_case "blackhole" `Quick test_link_blackhole;
          Alcotest.test_case "on_transmit timing" `Quick test_link_on_transmit;
          Alcotest.test_case "on_transmit not fired on drop" `Quick
            test_link_on_transmit_not_fired_on_drop;
          Alcotest.test_case "set_rate" `Quick test_link_set_rate;
          Alcotest.test_case "utilization" `Quick test_link_utilization;
        ] );
      ( "topology",
        [
          Alcotest.test_case "build" `Quick test_topology_build;
          Alcotest.test_case "errors" `Quick test_topology_errors;
          Alcotest.test_case "line" `Quick test_topology_line;
          Alcotest.test_case "star" `Quick test_topology_star;
          Alcotest.test_case "dumbbell" `Quick test_topology_dumbbell;
        ] );
      ( "network",
        [
          Alcotest.test_case "routing" `Quick test_network_routing;
          Alcotest.test_case "delivery" `Quick test_network_delivery;
          Alcotest.test_case "undeliverable" `Quick test_network_undeliverable;
          Alcotest.test_case "loopback" `Quick test_network_loopback;
          Alcotest.test_case "no route" `Quick test_network_no_route;
          Alcotest.test_case "on_transmit fires once" `Quick
            test_network_on_transmit_first_link_only;
        ] );
      ( "cbr",
        [
          Alcotest.test_case "paces at the nominal rate" `Quick test_cbr_rate;
          Alcotest.test_case "stop and rate change" `Quick test_cbr_stop_and_rate_change;
        ] );
      ("flow_monitor", [ Alcotest.test_case "accounting" `Quick test_flow_monitor ]);
      ("properties", qtests);
    ]

(* Unit and property tests for the discrete-event engine. *)

let time = Alcotest.testable Engine.Time.pp Engine.Time.equal

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_constructors () =
  Alcotest.check time "us" (Engine.Time.ns 1_000) (Engine.Time.us 1);
  Alcotest.check time "ms" (Engine.Time.us 1_000) (Engine.Time.ms 1);
  Alcotest.check time "s" (Engine.Time.ms 1_000) (Engine.Time.s 1);
  Alcotest.check time "of_sec_f" (Engine.Time.ms 1_500) (Engine.Time.of_sec_f 1.5);
  Alcotest.check time "of_ms_f" (Engine.Time.us 250) (Engine.Time.of_ms_f 0.25)

let test_time_arithmetic () =
  let a = Engine.Time.ms 5 and b = Engine.Time.ms 3 in
  Alcotest.check time "add" (Engine.Time.ms 8) (Engine.Time.add a b);
  Alcotest.check time "sub" (Engine.Time.ms 2) (Engine.Time.sub a b);
  Alcotest.check time "diff" (Engine.Time.ms 2) (Engine.Time.diff a b);
  Alcotest.check time "mul_int" (Engine.Time.ms 15) (Engine.Time.mul_int a 3);
  Alcotest.check time "div_int" (Engine.Time.ms 1) (Engine.Time.div_int b 3);
  Alcotest.check time "scale" (Engine.Time.ms 10) (Engine.Time.scale a 2.);
  Alcotest.(check (float 1e-9)) "ratio" (5. /. 3.) (Engine.Time.ratio a b);
  Alcotest.(check bool) "negative" true
    (Engine.Time.is_negative (Engine.Time.sub b a))

let test_time_saturation () =
  let huge = Engine.Time.max_value in
  Alcotest.check time "add saturates" huge (Engine.Time.add huge (Engine.Time.s 1))

let test_time_conversions () =
  Alcotest.(check (float 1e-12)) "to_sec_f" 0.002 (Engine.Time.to_sec_f (Engine.Time.ms 2));
  Alcotest.(check (float 1e-9)) "to_ms_f" 2. (Engine.Time.to_ms_f (Engine.Time.ms 2));
  Alcotest.(check (float 1e-6)) "to_us_f" 2000. (Engine.Time.to_us_f (Engine.Time.ms 2))

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Engine.Time.to_string (Engine.Time.ns 500));
  Alcotest.(check string) "us" "1.5us" (Engine.Time.to_string (Engine.Time.ns 1_500));
  Alcotest.(check string) "ms" "2.50ms" (Engine.Time.to_string (Engine.Time.us 2_500));
  Alcotest.(check string) "s" "3.000s" (Engine.Time.to_string (Engine.Time.s 3))

let test_time_invalid () =
  Alcotest.check_raises "non-finite" (Invalid_argument "Time: non-finite duration")
    (fun () -> ignore (Engine.Time.of_sec_f Float.nan));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Engine.Time.div_int (Engine.Time.s 1) 0))

let prop_time_order =
  QCheck2.Test.make ~name:"time order is total and consistent with ns"
    QCheck2.Gen.(pair (int_range (-1_000_000) 1_000_000) (int_range (-1_000_000) 1_000_000))
    (fun (a, b) ->
      let ta = Engine.Time.ns a and tb = Engine.Time.ns b in
      Engine.Time.(ta < tb) = (a < b)
      && Engine.Time.(ta <= tb) = (a <= b)
      && Engine.Time.equal (Engine.Time.min ta tb) (Engine.Time.ns (Stdlib.min a b)))

let prop_time_add_sub =
  QCheck2.Test.make ~name:"add then sub is identity"
    QCheck2.Gen.(pair (int_range (-1_000_000) 1_000_000) (int_range (-1_000_000) 1_000_000))
    (fun (a, b) ->
      let ta = Engine.Time.ns a and tb = Engine.Time.ns b in
      Engine.Time.equal (Engine.Time.sub (Engine.Time.add ta tb) tb) ta)

(* ------------------------------------------------------------------ *)
(* Units *)

let test_rate_constructors () =
  Alcotest.(check int) "kbit" 2_000 (Engine.Units.Rate.to_bps (Engine.Units.Rate.kbit 2));
  Alcotest.(check int) "mbit" 3_000_000
    (Engine.Units.Rate.to_bps (Engine.Units.Rate.mbit 3));
  Alcotest.(check int) "mbit_f" 1_500_000
    (Engine.Units.Rate.to_bps (Engine.Units.Rate.mbit_f 1.5));
  Alcotest.check_raises "zero rate" (Invalid_argument "Rate.bps: rate must be positive")
    (fun () -> ignore (Engine.Units.Rate.bps 0))

let test_transmission_time () =
  Alcotest.check time "exact"
    (Engine.Time.s 1)
    (Engine.Units.Rate.transmission_time (Engine.Units.Rate.kbit 8) 1000);
  Alcotest.check time "ceil"
    (Engine.Time.of_ns64 2_666_666_667L)
    (Engine.Units.Rate.transmission_time (Engine.Units.Rate.bps 3) 1);
  Alcotest.check time "zero bytes" Engine.Time.zero
    (Engine.Units.Rate.transmission_time (Engine.Units.Rate.mbit 1) 0)

let test_bdp () =
  Alcotest.(check int) "bdp" 100_000
    (Engine.Units.Rate.bdp_bytes (Engine.Units.Rate.mbit 8) (Engine.Time.ms 100))

let test_sizes () =
  Alcotest.(check int) "kib" 2048 (Engine.Units.kib 2);
  Alcotest.(check int) "mib" (1024 * 1024) (Engine.Units.mib 1)

let prop_transmission_additive =
  QCheck2.Test.make ~name:"transmission time roughly additive in size"
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 1 100_000))
    (fun (a, b) ->
      let r = Engine.Units.Rate.mbit 10 in
      let t_ab = Engine.Units.Rate.transmission_time r (a + b) in
      let t_sum =
        Engine.Time.add
          (Engine.Units.Rate.transmission_time r a)
          (Engine.Units.Rate.transmission_time r b)
      in
      Int64.abs (Int64.sub (Engine.Time.to_ns t_ab) (Engine.Time.to_ns t_sum)) <= 1L)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Engine.Rng.create 1 and b = Engine.Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Engine.Rng.bits64 a) (Engine.Rng.bits64 b)
  done

let test_rng_split_independence () =
  let root = Engine.Rng.create 2 in
  let child = Engine.Rng.split root in
  let x = Engine.Rng.bits64 child in
  let root2 = Engine.Rng.create 2 in
  let child2 = Engine.Rng.split root2 in
  Alcotest.(check int64) "split reproducible" x (Engine.Rng.bits64 child2)

let test_rng_copy () =
  let a = Engine.Rng.create 3 in
  ignore (Engine.Rng.bits64 a);
  let b = Engine.Rng.copy a in
  Alcotest.(check int64) "copies agree" (Engine.Rng.bits64 a) (Engine.Rng.bits64 b)

let test_rng_bounds () =
  let rng = Engine.Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Engine.Rng.int rng 7 in
    Alcotest.(check bool) "int in [0,7)" true (x >= 0 && x < 7);
    let y = Engine.Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "int_in [-3,3]" true (y >= -3 && y <= 3);
    let f = Engine.Rng.float rng 2.5 in
    Alcotest.(check bool) "float in [0,2.5)" true (f >= 0. && f < 2.5)
  done

let test_rng_moments () =
  let rng = Engine.Rng.create 5 in
  let n = 20_000 in
  let acc = Engine.Stats.Online.create () in
  for _ = 1 to n do
    Engine.Stats.Online.add acc (Engine.Rng.exponential rng ~mean:2.)
  done;
  Alcotest.(check bool) "exponential mean ~2" true
    (Float.abs (Engine.Stats.Online.mean acc -. 2.) < 0.1);
  let acc = Engine.Stats.Online.create () in
  for _ = 1 to n do
    Engine.Stats.Online.add acc (Engine.Rng.normal rng ~mu:5. ~sigma:1.)
  done;
  Alcotest.(check bool) "normal mean ~5" true
    (Float.abs (Engine.Stats.Online.mean acc -. 5.) < 0.05);
  Alcotest.(check bool) "normal sd ~1" true
    (Float.abs (Engine.Stats.Online.stddev acc -. 1.) < 0.05)

let test_rng_lognormal_median () =
  let rng = Engine.Rng.create 6 in
  let n = 20_001 in
  let xs =
    Array.init n (fun _ -> Engine.Rng.lognormal rng ~mu:(Float.log 10.) ~sigma:0.75)
  in
  let med = Engine.Stats.median xs in
  Alcotest.(check bool)
    (Printf.sprintf "lognormal median ~10 (got %.2f)" med)
    true
    (med > 9. && med < 11.)

let test_rng_shuffle_permutation () =
  let rng = Engine.Rng.create 7 in
  let arr = Array.init 50 (fun i -> i) in
  Engine.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick_weighted () =
  let rng = Engine.Rng.create 8 in
  let counts = [| 0; 0 |] in
  for _ = 1 to 10_000 do
    let i = Engine.Rng.pick_weighted rng [| (0, 1.); (1, 9.) |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "weighted ratio ~9x" true (counts.(1) > 7 * counts.(0));
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Rng.pick_weighted: zero total weight") (fun () ->
      ignore (Engine.Rng.pick_weighted rng [| ((), 0.) |]))

let test_rng_sample_without_replacement () =
  let rng = Engine.Rng.create 9 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Engine.Rng.sample_without_replacement rng 8 arr in
  Alcotest.(check int) "size" 8 (Array.length s);
  let distinct = List.sort_uniq Int.compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 8 (List.length distinct)

let prop_rng_int_unbiased =
  QCheck2.Test.make ~name:"Rng.int covers the whole range"
    QCheck2.Gen.(int_range 2 20)
    (fun bound ->
      let rng = Engine.Rng.create bound in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Engine.Rng.int rng bound) <- true
      done;
      Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Event queue *)

let test_queue_ordering () =
  let q = Engine.Event_queue.create () in
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 3) "c");
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 1) "a");
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 2) "b");
  let order = List.init 3 (fun _ -> snd (Option.get (Engine.Event_queue.pop q))) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_queue_stability () =
  let q = Engine.Event_queue.create () in
  for i = 0 to 9 do
    ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 1) i)
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Engine.Event_queue.pop q))) in
  Alcotest.(check (list int)) "fifo at equal times" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] order

let test_queue_cancel () =
  let q = Engine.Event_queue.create () in
  let h1 = Engine.Event_queue.add q ~time:(Engine.Time.ms 1) "a" in
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 2) "b");
  Engine.Event_queue.cancel q h1;
  Alcotest.(check int) "size after cancel" 1 (Engine.Event_queue.size q);
  Alcotest.(check bool) "is_cancelled" true (Engine.Event_queue.is_cancelled q h1);
  Alcotest.(check (option string))
    "pop skips cancelled" (Some "b")
    (Option.map snd (Engine.Event_queue.pop q));
  Engine.Event_queue.cancel q h1;
  Alcotest.(check int) "size stable" 0 (Engine.Event_queue.size q)

let test_queue_cancel_after_fire () =
  let q = Engine.Event_queue.create () in
  let h = Engine.Event_queue.add q ~time:Engine.Time.zero "x" in
  ignore (Engine.Event_queue.pop q);
  Engine.Event_queue.cancel q h;
  Alcotest.(check int) "size not negative" 0 (Engine.Event_queue.size q);
  Alcotest.(check bool) "fired is not cancelled" false
    (Engine.Event_queue.is_cancelled q h)

let test_queue_peek_clear () =
  let q = Engine.Event_queue.create () in
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 5) ());
  Alcotest.(check (option time)) "peek" (Some (Engine.Time.ms 5))
    (Engine.Event_queue.peek_time q);
  Engine.Event_queue.clear q;
  Alcotest.(check bool) "empty" true (Engine.Event_queue.is_empty q)

let test_queue_clear_resets () =
  let q = Engine.Event_queue.create () in
  let h = Engine.Event_queue.add q ~time:(Engine.Time.ms 1) "old" in
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 2) "older");
  Engine.Event_queue.clear q;
  Alcotest.(check int) "size" 0 (Engine.Event_queue.size q);
  Alcotest.(check bool) "empty" true (Engine.Event_queue.is_empty q);
  (* A handle minted before the clear must be inert: cancelling it
     cannot drive the live count negative or disturb new entries. *)
  Engine.Event_queue.cancel q h;
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 5) "a");
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 5) "b");
  Engine.Event_queue.cancel q h;
  Alcotest.(check int) "stale cancel is a no-op" 2 (Engine.Event_queue.size q);
  (* next_seq restarts, so equal-time FIFO order holds after a clear. *)
  Alcotest.(check (list string)) "fifo after clear" [ "a"; "b" ]
    (List.init 2 (fun _ -> snd (Option.get (Engine.Event_queue.pop q))))

let test_queue_slots_released () =
  (* Popped and cleared entries must not pin their payloads: the heap
     array overwrites vacated slots with a dummy, so the only remaining
     reference is the caller's. *)
  let q = Engine.Event_queue.create () in
  let w = Weak.create 4 in
  for i = 0 to 3 do
    let payload = ref i in
    Weak.set w i (Some payload);
    ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms i) payload)
  done;
  ignore (Engine.Event_queue.pop q);
  ignore (Engine.Event_queue.pop q);
  Engine.Event_queue.clear q;
  Gc.full_major ();
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "payload %d collected" i)
      true
      (Weak.get w i = None)
  done

let test_queue_pop_before () =
  let q = Engine.Event_queue.create () in
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 1) "a");
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 5) "b");
  let none = "NONE" in
  Alcotest.(check string) "due event pops" "a"
    (Engine.Event_queue.pop_before q ~limit:(Engine.Time.ms 2) ~none);
  Alcotest.check time "popped_time stamped" (Engine.Time.ms 1)
    (Engine.Event_queue.popped_time q);
  (* Nothing due by the limit: the very sentinel comes back and the
     queue is untouched. *)
  Alcotest.(check bool) "sentinel returned physically" true
    (Engine.Event_queue.pop_before q ~limit:(Engine.Time.ms 2) ~none == none);
  Alcotest.(check int) "queue untouched" 1 (Engine.Event_queue.size q);
  Alcotest.(check string) "limit is inclusive" "b"
    (Engine.Event_queue.pop_before q ~limit:(Engine.Time.ms 5) ~none);
  Alcotest.check time "popped_time follows" (Engine.Time.ms 5)
    (Engine.Event_queue.popped_time q);
  Alcotest.(check bool) "empty queue returns sentinel" true
    (Engine.Event_queue.pop_before q ~limit:Engine.Time.max_value ~none == none)

let test_queue_pop_before_skips_cancelled () =
  let q = Engine.Event_queue.create () in
  let h = Engine.Event_queue.add q ~time:(Engine.Time.ms 1) "dead" in
  ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms 2) "live");
  Engine.Event_queue.cancel q h;
  let none = "NONE" in
  Alcotest.(check string) "sweep discards cancelled head" "live"
    (Engine.Event_queue.pop_before q ~limit:(Engine.Time.ms 3) ~none);
  Alcotest.(check bool) "then empty" true (Engine.Event_queue.is_empty q)

let test_queue_seq_overflow_guarded () =
  let q = Engine.Event_queue.create () in
  ignore (Engine.Event_queue.add q ~time:Engine.Time.zero ());
  Engine.Event_queue.Private.set_next_seq q max_int;
  Alcotest.check_raises "add at the sequence ceiling"
    (Failure "Event_queue.add: insertion sequence exhausted (clear to reset)")
    (fun () -> ignore (Engine.Event_queue.add q ~time:Engine.Time.zero ()));
  (* [clear] resets the counter, so the queue is usable again. *)
  Engine.Event_queue.clear q;
  Alcotest.(check int) "clear resets next_seq" 0
    (Engine.Event_queue.Private.next_seq q);
  ignore (Engine.Event_queue.add q ~time:Engine.Time.zero ());
  Alcotest.(check int) "adds work after reset" 1 (Engine.Event_queue.size q)

let test_queue_live_bookkeeping () =
  (* [size] must track the live population exactly through interleaved
     cancels (including double cancels and cancels of fired events) and
     pops that sweep over cancelled entries. *)
  let q = Engine.Event_queue.create () in
  let hs = Array.init 20 (fun i -> Engine.Event_queue.add q ~time:(Engine.Time.ms i) i) in
  Array.iteri (fun i h -> if i mod 2 = 0 then Engine.Event_queue.cancel q h) hs;
  Alcotest.(check int) "size after cancelling evens" 10 (Engine.Event_queue.size q);
  Engine.Event_queue.cancel q hs.(0);
  Alcotest.(check int) "double cancel is a no-op" 10 (Engine.Event_queue.size q);
  let popped =
    List.init 5 (fun _ -> snd (Option.get (Engine.Event_queue.pop q)))
  in
  Alcotest.(check (list int)) "odd payloads surface in order" [ 1; 3; 5; 7; 9 ] popped;
  Alcotest.(check int) "size tracks pops" 5 (Engine.Event_queue.size q);
  Array.iter (fun h -> Engine.Event_queue.cancel q h) hs;
  Alcotest.(check int) "cancelling everything (incl. fired) empties" 0
    (Engine.Event_queue.size q);
  Alcotest.(check bool) "pop on all-cancelled queue" true
    (Engine.Event_queue.pop q = None);
  Alcotest.(check bool) "is_empty agrees" true (Engine.Event_queue.is_empty q)

let test_queue_wheel_horizons () =
  (* Deadlines on both sides of the wheel window (~16.8ms): short ones
     live in wheel slots, long ones in the overflow heap and must
     migrate into the wheel as the cursor approaches.  Order must come
     out globally sorted regardless of where each entry started. *)
  let q = Engine.Event_queue.create () in
  let deadlines = [ 3_600_000; 1; 17; 40_000; 250; 16; 999; 100_000; 2; 0 ] in
  List.iter
    (fun ms -> ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms ms) ms))
    deadlines;
  let drained =
    List.init (List.length deadlines) (fun _ ->
        snd (Option.get (Engine.Event_queue.pop q)))
  in
  Alcotest.(check (list int)) "drains sorted across horizons"
    (List.sort Int.compare deadlines) drained;
  Alcotest.(check bool) "empty at the end" true (Engine.Event_queue.is_empty q)

let prop_queue_sorted_drain =
  QCheck2.Test.make ~name:"event queue drains in nondecreasing time order"
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 1_000))
    (fun times ->
      let q = Engine.Event_queue.create () in
      List.iter
        (fun ms -> ignore (Engine.Event_queue.add q ~time:(Engine.Time.ms ms) ms))
        times;
      let rec drain acc =
        match Engine.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      let drained = drain [] in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> Engine.Time.(a <= b) && nondecreasing rest
        | _ -> true
      in
      List.length drained = List.length times && nondecreasing drained)

let prop_queue_matches_model =
  (* Random add/cancel/pop programs checked op-for-op against a naive
     list model ordered by (time, insertion sequence).  Times span the
     wheel window, so programs exercise slot insertion, the overflow
     heap, migration, and the lazy-deletion sweep together. *)
  QCheck2.Test.make ~name:"wheel agrees with a sorted-list model"
    QCheck2.Gen.(list_size (int_range 1 300) (pair (int_range 0 2) (int_range 0 100)))
    (fun ops ->
      let q = Engine.Event_queue.create () in
      (* Model: (time_ms, id) kept in insertion order; a stable sort by
         time therefore yields (time, seq) order.  Handles are kept
         forever so cancels can hit popped/cancelled entries too. *)
      let model = ref [] in
      let handles = ref [||] in
      let next_id = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
              let id = !next_id in
              incr next_id;
              let h = Engine.Event_queue.add q ~time:(Engine.Time.ms x) id in
              handles := Array.append !handles [| (h, id) |];
              model := !model @ [ (x, id) ]
          | 1 ->
              if Array.length !handles > 0 then begin
                let h, id = !handles.(x mod Array.length !handles) in
                Engine.Event_queue.cancel q h;
                model := List.filter (fun (_, i) -> i <> id) !model
              end
          | _ -> (
              let got = Engine.Event_queue.pop q in
              match
                List.stable_sort (fun (ta, _) (tb, _) -> Int.compare ta tb) !model
              with
              | [] -> if got <> None then ok := false
              | (t, id) :: _ -> (
                  model := List.filter (fun (_, i) -> i <> id) !model;
                  match got with
                  | Some (tq, idq)
                    when Engine.Time.equal tq (Engine.Time.ms t) && idq = id ->
                      ()
                  | _ -> ok := false)))
        ops;
      !ok && Engine.Event_queue.size q = List.length !model)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_runs_in_order () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 2) (fun () -> log := 2 :: !log));
  ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 1) (fun () -> log := 1 :: !log));
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "order" [ 1; 2 ] (List.rev !log);
  Alcotest.check time "clock at last event" (Engine.Time.ms 2) (Engine.Sim.now sim);
  Alcotest.(check int) "events executed" 2 (Engine.Sim.events_executed sim)

let test_sim_schedule_past_rejected () =
  let sim = Engine.Sim.create () in
  let raised = ref false in
  ignore
    (Engine.Sim.schedule_at sim (Engine.Time.ms 5) (fun () ->
         try ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 1) (fun () -> ()))
         with Invalid_argument _ -> raised := true));
  Engine.Sim.run sim;
  Alcotest.(check bool) "past rejected" true !raised

let test_sim_until () =
  let sim = Engine.Sim.create () in
  let ran = ref 0 in
  ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 1) (fun () -> incr ran));
  ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 10) (fun () -> incr ran));
  Engine.Sim.run sim ~until:(Engine.Time.ms 5);
  Alcotest.(check int) "one ran" 1 !ran;
  Alcotest.check time "clock at horizon" (Engine.Time.ms 5) (Engine.Sim.now sim);
  Alcotest.(check int) "pending" 1 (Engine.Sim.pending_events sim)

let test_sim_until_inclusive () =
  let sim = Engine.Sim.create () in
  let ran = ref false in
  ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 5) (fun () -> ran := true));
  Engine.Sim.run sim ~until:(Engine.Time.ms 5);
  Alcotest.(check bool) "event at horizon runs" true !ran

let test_sim_stop () =
  let sim = Engine.Sim.create () in
  let ran = ref 0 in
  ignore
    (Engine.Sim.schedule_at sim (Engine.Time.ms 1) (fun () ->
         incr ran;
         Engine.Sim.stop sim));
  ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 2) (fun () -> incr ran));
  Engine.Sim.run sim;
  Alcotest.(check int) "stopped after first" 1 !ran

let test_sim_cancel () =
  let sim = Engine.Sim.create () in
  let ran = ref false in
  let h = Engine.Sim.schedule_at sim (Engine.Time.ms 1) (fun () -> ran := true) in
  Engine.Sim.cancel sim h;
  Engine.Sim.run sim;
  Alcotest.(check bool) "cancelled never runs" false !ran

let test_sim_schedule_now_ordering () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  ignore
    (Engine.Sim.schedule_at sim (Engine.Time.ms 1) (fun () ->
         log := "first" :: !log;
         ignore (Engine.Sim.schedule_now sim (fun () -> log := "now" :: !log))));
  ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 1) (fun () -> log := "second" :: !log));
  Engine.Sim.run sim;
  Alcotest.(check (list string)) "now runs after same-instant peers"
    [ "first"; "second"; "now" ] (List.rev !log)

let test_sim_every () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  Engine.Sim.every sim (Engine.Time.ms 10) (fun () -> incr count)
    ~stop:(fun () -> !count >= 3);
  Engine.Sim.run sim ~until:(Engine.Time.s 1);
  Alcotest.(check int) "fired until stop" 3 !count

let test_sim_every_stop_mid_period () =
  (* The stop flag flips between firings: the next due tick consumes
     its event, runs nothing, and disarms — no trailing tick remains
     pending afterwards. *)
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let halt = ref false in
  Engine.Sim.every sim (Engine.Time.ms 10) (fun () -> incr count)
    ~stop:(fun () -> !halt);
  ignore (Engine.Sim.schedule_at sim (Engine.Time.ms 25) (fun () -> halt := true));
  Engine.Sim.run sim ~until:(Engine.Time.ms 200);
  Alcotest.(check int) "two ticks before the stop" 2 !count;
  Alcotest.(check int) "tick disarmed, nothing pending" 0
    (Engine.Sim.pending_events sim);
  Alcotest.check time "clock still reaches the horizon" (Engine.Time.ms 200)
    (Engine.Sim.now sim)

let test_sim_until_empty_queue () =
  (* [run ~until] on a simulation with no events still advances the
     clock to the horizon. *)
  let sim = Engine.Sim.create () in
  Engine.Sim.run sim ~until:(Engine.Time.ms 50);
  Alcotest.check time "clock at horizon" (Engine.Time.ms 50) (Engine.Sim.now sim);
  Alcotest.(check int) "nothing executed" 0 (Engine.Sim.events_executed sim)

let test_timer_lifecycle () =
  let sim = Engine.Sim.create () in
  let fired = ref [] in
  let tm = Engine.Sim.Timer.create sim (fun () -> fired := Engine.Sim.now sim :: !fired) in
  Alcotest.(check bool) "fresh timer unarmed" false (Engine.Sim.Timer.is_armed tm);
  Engine.Sim.Timer.arm_at sim tm (Engine.Time.ms 5);
  Alcotest.(check bool) "armed" true (Engine.Sim.Timer.is_armed tm);
  (* Rearming replaces the pending occurrence: only the new deadline
     fires. *)
  Engine.Sim.Timer.arm_at sim tm (Engine.Time.ms 2);
  Engine.Sim.run sim;
  Alcotest.(check (list time)) "rearm replaced the deadline" [ Engine.Time.ms 2 ]
    (List.rev !fired);
  Alcotest.(check bool) "unarmed after firing" false (Engine.Sim.Timer.is_armed tm);
  (* Disarm really unschedules. *)
  Engine.Sim.Timer.arm_after sim tm (Engine.Time.ms 3);
  Engine.Sim.Timer.cancel sim tm;
  Alcotest.(check bool) "disarmed" false (Engine.Sim.Timer.is_armed tm);
  Alcotest.(check int) "eager disarm leaves nothing pending" 0
    (Engine.Sim.pending_events sim);
  Engine.Sim.run sim;
  (* Arm far beyond the wheel window (overflow heap), rearm short: the
     short deadline wins. *)
  Engine.Sim.Timer.arm_after sim tm (Engine.Time.s 60);
  Engine.Sim.Timer.arm_after sim tm (Engine.Time.ms 1);
  Engine.Sim.run sim;
  Alcotest.(check (list time)) "heap-to-wheel rearm"
    [ Engine.Time.ms 2; Engine.Time.ms 3 ] (List.rev !fired)

let test_timer_past_rejected () =
  let sim = Engine.Sim.create () in
  let tm = Engine.Sim.Timer.create sim (fun () -> ()) in
  let raised = ref false in
  ignore
    (Engine.Sim.schedule_at sim (Engine.Time.ms 5) (fun () ->
         (try Engine.Sim.Timer.arm_at sim tm (Engine.Time.ms 1)
          with Invalid_argument _ -> raised := true);
         try Engine.Sim.Timer.arm_after sim tm (Engine.Time.ns (-1))
         with Invalid_argument _ -> ()));
  Engine.Sim.run sim;
  Alcotest.(check bool) "past arm rejected" true !raised;
  Alcotest.(check bool) "failed arms left the timer unarmed" false
    (Engine.Sim.Timer.is_armed tm)

let test_timer_rearm_seq_ordering () =
  (* Rearming takes a fresh insertion sequence number, exactly as
     cancel-then-add would: a one-shot scheduled for the same instant
     BEFORE the rearm runs first; the rearmed timer runs after it. *)
  let sim = Engine.Sim.create () in
  let log = ref [] in
  let tm = ref None in
  let timer =
    Engine.Sim.Timer.create sim (fun () ->
        log := "timer" :: !log;
        if Engine.Time.equal (Engine.Sim.now sim) (Engine.Time.ms 1) then begin
          ignore
            (Engine.Sim.schedule_at sim (Engine.Time.ms 2) (fun () ->
                 log := "oneshot" :: !log));
          Engine.Sim.Timer.arm_at sim (Option.get !tm) (Engine.Time.ms 2)
        end)
  in
  tm := Some timer;
  Engine.Sim.Timer.arm_at sim timer (Engine.Time.ms 1);
  Engine.Sim.run sim;
  Alcotest.(check (list string)) "rearm sequences after the earlier one-shot"
    [ "timer"; "oneshot"; "timer" ] (List.rev !log)

let test_sim_max_events () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  Engine.Sim.every sim (Engine.Time.ms 1) (fun () -> incr count) ~stop:(fun () -> false);
  Engine.Sim.run ~max_events:5 sim;
  Alcotest.(check bool) "bounded" true (!count <= 5)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_online_known () =
  let acc = Engine.Stats.Online.create () in
  List.iter (Engine.Stats.Online.add acc) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Engine.Stats.Online.count acc);
  Alcotest.(check (float 1e-9)) "mean" 5. (Engine.Stats.Online.mean acc);
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Engine.Stats.Online.variance acc);
  Alcotest.(check (float 1e-9)) "min" 2. (Engine.Stats.Online.min acc);
  Alcotest.(check (float 1e-9)) "max" 9. (Engine.Stats.Online.max acc);
  Alcotest.(check (float 1e-9)) "sum" 40. (Engine.Stats.Online.sum acc)

let test_online_merge () =
  let a = Engine.Stats.Online.create () and b = Engine.Stats.Online.create () in
  let all = Engine.Stats.Online.create () in
  List.iter
    (fun x ->
      Engine.Stats.Online.add all x;
      if x < 5. then Engine.Stats.Online.add a x else Engine.Stats.Online.add b x)
    [ 1.; 2.; 3.; 6.; 7.; 8.; 9. ];
  let merged = Engine.Stats.Online.merge a b in
  Alcotest.(check (float 1e-9)) "merged mean" (Engine.Stats.Online.mean all)
    (Engine.Stats.Online.mean merged);
  Alcotest.(check (float 1e-9)) "merged var" (Engine.Stats.Online.variance all)
    (Engine.Stats.Online.variance merged)

let test_percentiles () =
  let xs = [| 15.; 20.; 35.; 40.; 50. |] in
  Alcotest.(check (float 1e-9)) "median" 35. (Engine.Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 15. (Engine.Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Engine.Stats.percentile xs 100.);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 20. (Engine.Stats.percentile xs 25.)

let test_cdf_points () =
  let pts = Engine.Stats.cdf_points [| 3.; 1.; 3.; 2. |] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "steps"
    [ (1., 0.25); (2., 0.5); (3., 1.) ]
    pts

let test_histogram () =
  let h = Engine.Stats.Histogram.create ~bin_width:1. in
  List.iter (Engine.Stats.Histogram.add h) [ 0.1; 0.9; 1.5; 2.1; 2.2; 2.9 ];
  Alcotest.(check int) "count" 6 (Engine.Stats.Histogram.count h);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "bins"
    [ (0., 2); (1., 1); (2., 3) ]
    (Engine.Stats.Histogram.bins h);
  Alcotest.(check (option (pair (float 1e-9) int)))
    "mode" (Some (2., 3))
    (Engine.Stats.Histogram.mode_bin h)

let test_samples_basic () =
  let s = Engine.Stats.Samples.create () in
  Alcotest.(check bool) "empty" true (Engine.Stats.Samples.is_empty s);
  List.iter (Engine.Stats.Samples.add s) [ 30.; 10.; 50. ];
  Alcotest.(check int) "length" 3 (Engine.Stats.Samples.length s);
  Alcotest.(check (float 1e-9)) "median" 30. (Engine.Stats.Samples.median s);
  Alcotest.(check (float 1e-9)) "p0" 10. (Engine.Stats.Samples.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Engine.Stats.Samples.percentile s 100.);
  Alcotest.(check (float 1e-9)) "mean" 30. (Engine.Stats.Samples.mean s);
  Alcotest.(check (float 1e-9)) "min" 10. (Engine.Stats.Samples.min s);
  Alcotest.(check (float 1e-9)) "max" 50. (Engine.Stats.Samples.max s);
  Alcotest.(check (array (float 1e-9))) "sorted view" [| 10.; 30.; 50. |]
    (Engine.Stats.Samples.sorted s);
  Alcotest.(check (array (float 1e-9))) "to_array keeps insertion order"
    [| 30.; 10.; 50. |] (Engine.Stats.Samples.to_array s)

let test_samples_cache_invalidation () =
  (* Query (populating the sorted cache), then add: the next query must
     see the new sample, not the stale cache. *)
  let s = Engine.Stats.Samples.of_array [| 30.; 10.; 50. |] in
  Alcotest.(check (float 1e-9)) "median before" 30. (Engine.Stats.Samples.median s);
  Engine.Stats.Samples.add s 20.;
  Alcotest.(check (float 1e-9)) "median after add" 25. (Engine.Stats.Samples.median s);
  Engine.Stats.Samples.add_all s [| 5.; 60. |];
  Alcotest.(check (float 1e-9)) "p0 after add_all" 5.
    (Engine.Stats.Samples.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100 after add_all" 60.
    (Engine.Stats.Samples.percentile s 100.);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "cdf points see every sample"
    (Engine.Stats.cdf_points [| 30.; 10.; 50.; 20.; 5.; 60. |])
    (Engine.Stats.Samples.cdf_points s)

let prop_samples_match_array =
  QCheck2.Test.make ~name:"Samples.percentile matches array percentile"
    QCheck2.Gen.(
      pair (list_size (int_range 1 50) (float_range 0. 100.)) (int_range 0 100))
    (fun (xs, p) ->
      let s = Engine.Stats.Samples.of_array (Array.of_list xs) in
      Float.abs
        (Engine.Stats.Samples.percentile s (float_of_int p)
        -. Engine.Stats.percentile (Array.of_list xs) (float_of_int p))
      < 1e-9)

let prop_online_matches_direct =
  QCheck2.Test.make ~name:"Welford matches direct mean"
    QCheck2.Gen.(list_size (int_range 1 100) (float_range (-1000.) 1000.))
    (fun xs ->
      let acc = Engine.Stats.Online.create () in
      List.iter (Engine.Stats.Online.add acc) xs;
      let direct = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Engine.Stats.Online.mean acc -. direct) < 1e-6)

let prop_cdf_monotone =
  QCheck2.Test.make ~name:"cdf points are monotone and end at 1"
    QCheck2.Gen.(list_size (int_range 1 100) (float_range 0. 100.))
    (fun xs ->
      let pts = Engine.Stats.cdf_points (Array.of_list xs) in
      let fracs = List.map snd pts in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone fracs && Float.equal (List.nth fracs (List.length fracs - 1)) 1.)

(* ------------------------------------------------------------------ *)
(* Timeseries / Trace *)

let test_timeseries_basic () =
  let ts = Engine.Timeseries.create ~name:"t" () in
  Engine.Timeseries.record ts (Engine.Time.ms 1) 1.;
  Engine.Timeseries.record ts (Engine.Time.ms 3) 3.;
  Alcotest.(check int) "length" 2 (Engine.Timeseries.length ts);
  Alcotest.(check (option (float 1e-9))) "value_at before" None
    (Engine.Timeseries.value_at ts Engine.Time.zero);
  Alcotest.(check (option (float 1e-9))) "value_at step" (Some 1.)
    (Engine.Timeseries.value_at ts (Engine.Time.ms 2));
  Alcotest.(check (option (float 1e-9))) "value_at exact" (Some 3.)
    (Engine.Timeseries.value_at ts (Engine.Time.ms 3));
  Alcotest.(check (option (float 1e-9))) "max" (Some 3.)
    (Engine.Timeseries.max_value ts);
  Alcotest.(check (option time)) "time of max" (Some (Engine.Time.ms 3))
    (Engine.Timeseries.time_of_max ts)

let test_timeseries_backwards_rejected () =
  let ts = Engine.Timeseries.create () in
  Engine.Timeseries.record ts (Engine.Time.ms 2) 1.;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timeseries.record: time went backwards") (fun () ->
      Engine.Timeseries.record ts (Engine.Time.ms 1) 2.)

let test_timeseries_resample () =
  let ts = Engine.Timeseries.create () in
  Engine.Timeseries.record ts (Engine.Time.ms 5) 10.;
  Engine.Timeseries.record ts (Engine.Time.ms 15) 20.;
  let samples =
    Engine.Timeseries.resample ts ~step:(Engine.Time.ms 10) ~stop:(Engine.Time.ms 20)
  in
  Alcotest.(check int) "sample count" 3 (Array.length samples);
  Alcotest.(check (float 1e-9)) "before first repeats first" 10. (snd samples.(0));
  Alcotest.(check (float 1e-9)) "mid" 10. (snd samples.(1));
  Alcotest.(check (float 1e-9)) "after second" 20. (snd samples.(2))

let test_rng_pareto_scale () =
  let rng = Engine.Rng.create 10 in
  (* Pareto samples are never below the scale parameter. *)
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above scale" true
      (Engine.Rng.pareto rng ~shape:2. ~scale:3. >= 3.)
  done

let test_every_invalid_period () =
  let sim = Engine.Sim.create () in
  Alcotest.check_raises "zero period" (Invalid_argument "Sim.every: period must be positive")
    (fun () -> Engine.Sim.every sim Engine.Time.zero (fun () -> ()) ~stop:(fun () -> true))

let test_histogram_negative_bins () =
  let h = Engine.Stats.Histogram.create ~bin_width:1. in
  Engine.Stats.Histogram.add h (-0.5);
  Engine.Stats.Histogram.add h 0.5;
  Alcotest.(check (list (pair (float 1e-9) int)))
    "negative bin kept separate"
    [ (-1., 1); (0., 1) ]
    (Engine.Stats.Histogram.bins h)

let test_negative_time_pp () =
  Alcotest.(check string) "sign rendered" "-2.50ms"
    (Engine.Time.to_string (Engine.Time.sub Engine.Time.zero (Engine.Time.us 2_500)))

let test_trace_registry () =
  let tr = Engine.Trace.create () in
  Engine.Trace.record tr "a/x" (Engine.Time.ms 1) 1.;
  Engine.Trace.record tr "b/y" (Engine.Time.ms 2) 2.;
  Engine.Trace.record tr "a/x" (Engine.Time.ms 3) 3.;
  Alcotest.(check (list string)) "keys sorted" [ "a/x"; "b/y" ] (Engine.Trace.keys tr);
  Alcotest.(check int) "series length" 2
    (Engine.Timeseries.length (Engine.Trace.series tr "a/x"));
  Alcotest.(check bool) "find missing" true (Engine.Trace.find tr "zzz" = None);
  let buf = Buffer.create 64 in
  Engine.Trace.to_csv tr buf;
  let csv = Buffer.contents buf in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 0 && String.sub csv 0 19 = "series,time_s,value")

let test_trace_events () =
  let tr = Engine.Trace.create () in
  Alcotest.(check int) "empty" 0 (Engine.Trace.event_count tr);
  Engine.Trace.record_event tr Engine.Trace.Fault ~subject:"link/a" ~detail:"down"
    (Engine.Time.ms 10);
  Engine.Trace.record_event tr Engine.Trace.Recovery ~subject:"link/a" ~detail:"up"
    (Engine.Time.ms 30);
  Engine.Trace.record_event tr Engine.Trace.Abort ~subject:"xfer" (Engine.Time.ms 20);
  let evs = Engine.Trace.events tr in
  Alcotest.(check int) "count" 3 (Engine.Trace.event_count tr);
  Alcotest.(check (list string)) "insertion order preserved"
    [ "link/a"; "link/a"; "xfer" ]
    (List.map (fun e -> e.Engine.Trace.subject) evs);
  Alcotest.(check int) "filter by kind" 1
    (List.length (Engine.Trace.events_with tr Engine.Trace.Fault));
  Alcotest.(check string) "kind names" "fault,recovery,abort"
    (String.concat ","
       (List.map Engine.Trace.kind_to_string
          [ Engine.Trace.Fault; Engine.Trace.Recovery; Engine.Trace.Abort ]));
  let buf = Buffer.create 64 in
  Engine.Trace.events_to_csv tr buf;
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  Alcotest.(check int) "csv: header + one row per event" 4 (List.length lines);
  Alcotest.(check string) "csv header" "time_s,kind,subject,detail" (List.hd lines);
  Alcotest.(check string) "pp" "[10.00ms] fault link/a: down"
    (Format.asprintf "%a" Engine.Trace.pp_event (List.hd evs))

let test_trace_events_csv_roundtrip () =
  let tr = Engine.Trace.create () in
  let kinds =
    [ Engine.Trace.Fault; Engine.Trace.Recovery; Engine.Trace.Abort;
      Engine.Trace.Rebuild; Engine.Trace.Resume; Engine.Trace.Exhausted ]
  in
  List.iteri
    (fun i kind ->
      (* Details with commas must survive the round trip. *)
      Engine.Trace.record_event tr kind
        ~subject:(Printf.sprintf "s/%d" i)
        ~detail:(Printf.sprintf "detail %d, with, commas" i)
        (Engine.Time.ms (10 * (i + 1))))
    kinds;
  let buf = Buffer.create 256 in
  Engine.Trace.events_to_csv tr buf;
  let parsed = Engine.Trace.events_of_csv (Buffer.contents buf) in
  Alcotest.(check int) "all rows parsed" (List.length kinds) (List.length parsed);
  Alcotest.(check bool) "round trip is lossless" true
    (parsed = Engine.Trace.events tr);
  List.iter
    (fun kind ->
      let s = Engine.Trace.kind_to_string kind in
      Alcotest.(check bool) ("kind round trip: " ^ s) true
        (Engine.Trace.kind_of_string s = Some kind))
    kinds;
  Alcotest.(check bool) "unknown kind rejected" true
    (Engine.Trace.kind_of_string "bogus" = None);
  Alcotest.(check int) "garbage lines skipped" 0
    (List.length (Engine.Trace.events_of_csv "not,a,valid\nrow\n"))

(* ------------------------------------------------------------------ *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_time_order; prop_time_add_sub; prop_transmission_additive;
      prop_rng_int_unbiased; prop_queue_sorted_drain; prop_queue_matches_model;
      prop_online_matches_direct; prop_cdf_monotone; prop_samples_match_array ]

let () =
  Alcotest.run "engine"
    [
      ( "time",
        [
          Alcotest.test_case "constructors" `Quick test_time_constructors;
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "saturation" `Quick test_time_saturation;
          Alcotest.test_case "conversions" `Quick test_time_conversions;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
          Alcotest.test_case "negative pretty printing" `Quick test_negative_time_pp;
          Alcotest.test_case "invalid inputs" `Quick test_time_invalid;
        ] );
      ( "units",
        [
          Alcotest.test_case "rate constructors" `Quick test_rate_constructors;
          Alcotest.test_case "transmission time" `Quick test_transmission_time;
          Alcotest.test_case "bdp" `Quick test_bdp;
          Alcotest.test_case "sizes" `Quick test_sizes;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "moments" `Slow test_rng_moments;
          Alcotest.test_case "lognormal median" `Slow test_rng_lognormal_median;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "weighted pick" `Slow test_rng_pick_weighted;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "pareto scale bound" `Quick test_rng_pareto_scale;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "stability" `Quick test_queue_stability;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
          Alcotest.test_case "cancel after fire" `Quick test_queue_cancel_after_fire;
          Alcotest.test_case "peek and clear" `Quick test_queue_peek_clear;
          Alcotest.test_case "clear resets state" `Quick test_queue_clear_resets;
          Alcotest.test_case "slots released to the GC" `Quick
            test_queue_slots_released;
          Alcotest.test_case "pop_before" `Quick test_queue_pop_before;
          Alcotest.test_case "pop_before skips cancelled" `Quick
            test_queue_pop_before_skips_cancelled;
          Alcotest.test_case "sequence overflow guarded" `Quick
            test_queue_seq_overflow_guarded;
          Alcotest.test_case "live bookkeeping" `Quick test_queue_live_bookkeeping;
          Alcotest.test_case "wheel and heap horizons" `Quick
            test_queue_wheel_horizons;
        ] );
      ( "sim",
        [
          Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
          Alcotest.test_case "rejects past" `Quick test_sim_schedule_past_rejected;
          Alcotest.test_case "until" `Quick test_sim_until;
          Alcotest.test_case "until inclusive" `Quick test_sim_until_inclusive;
          Alcotest.test_case "stop" `Quick test_sim_stop;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "schedule_now ordering" `Quick
            test_sim_schedule_now_ordering;
          Alcotest.test_case "every" `Quick test_sim_every;
          Alcotest.test_case "every invalid period" `Quick test_every_invalid_period;
          Alcotest.test_case "every stop mid-period" `Quick
            test_sim_every_stop_mid_period;
          Alcotest.test_case "until on empty queue" `Quick test_sim_until_empty_queue;
          Alcotest.test_case "max events" `Quick test_sim_max_events;
          Alcotest.test_case "timer lifecycle" `Quick test_timer_lifecycle;
          Alcotest.test_case "timer rejects past" `Quick test_timer_past_rejected;
          Alcotest.test_case "timer rearm ordering" `Quick
            test_timer_rearm_seq_ordering;
        ] );
      ( "stats",
        [
          Alcotest.test_case "online known values" `Quick test_online_known;
          Alcotest.test_case "online merge" `Quick test_online_merge;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "cdf points" `Quick test_cdf_points;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram negative bins" `Quick
            test_histogram_negative_bins;
          Alcotest.test_case "samples basic" `Quick test_samples_basic;
          Alcotest.test_case "samples cache invalidation" `Quick
            test_samples_cache_invalidation;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "basic" `Quick test_timeseries_basic;
          Alcotest.test_case "rejects backwards" `Quick
            test_timeseries_backwards_rejected;
          Alcotest.test_case "resample" `Quick test_timeseries_resample;
          Alcotest.test_case "trace registry" `Quick test_trace_registry;
          Alcotest.test_case "trace events" `Quick test_trace_events;
          Alcotest.test_case "trace events csv round trip" `Quick
            test_trace_events_csv_roundtrip;
        ] );
      ("properties", qtests);
    ]

(* Tests for the fault-injection subsystem: the loss models'
   statistics, the link-level fault hooks and drop accounting, outage
   scheduling, and the end-to-end fault experiment (loss is survivable,
   a relay crash fails the circuit in bounded time, and every run is
   deterministic per seed). *)

let mk_link ?queue ?(rate = Engine.Units.Rate.mbit 8) ?(delay = Engine.Time.ms 10) sim =
  Netsim.Link.create sim ~src:(Netsim.Node_id.of_int 0) ~dst:(Netsim.Node_id.of_int 1)
    ~rate ~delay ?queue ()

let mk_packet ids ~size =
  Netsim.Packet.make ids ~src:(Netsim.Node_id.of_int 0) ~dst:(Netsim.Node_id.of_int 1)
    ~size ~now:Engine.Time.zero (Netsim.Payload.Raw "x")

(* ------------------------------------------------------------------ *)
(* Loss-model statistics *)

let empirical_rate model ~draws ~seed =
  let rng = Engine.Rng.create seed in
  let st = Netsim.Faults.loss_state model in
  let lost = ref 0 in
  for _ = 1 to draws do
    if Netsim.Faults.decide st rng then incr lost
  done;
  float_of_int !lost /. float_of_int draws

let test_bernoulli_rate () =
  let model = Netsim.Faults.Bernoulli 0.05 in
  Alcotest.(check (float 1e-9)) "expected rate" 0.05
    (Netsim.Faults.expected_loss_rate model);
  let r = empirical_rate model ~draws:20_000 ~seed:11 in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.4f within 0.01 of 0.05" r)
    true
    (Float.abs (r -. 0.05) < 0.01)

let ge =
  Netsim.Faults.Gilbert_elliott
    { p_good_to_bad = 0.05; p_bad_to_good = 0.25; loss_good = 0.; loss_bad = 0.8 }

let test_gilbert_elliott_rate () =
  (* Stationary: pi_bad = 0.05 / 0.30 = 1/6, so rate = 0.8 / 6. *)
  let expected = 0.8 /. 6. in
  Alcotest.(check (float 1e-9)) "stationary rate" expected
    (Netsim.Faults.expected_loss_rate ge);
  let r = empirical_rate ge ~draws:50_000 ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.4f within 0.02 of %.4f" r expected)
    true
    (Float.abs (r -. expected) < 0.02)

let test_gilbert_elliott_burstiness () =
  (* The point of the model: losses cluster.  The probability of a loss
     immediately after a loss must clearly exceed the unconditional
     rate (an i.i.d. channel would make them equal). *)
  let rng = Engine.Rng.create 3 in
  let st = Netsim.Faults.loss_state ge in
  let draws = 50_000 in
  let losses = ref 0 and after_loss = ref 0 and pairs = ref 0 in
  let prev = ref false in
  for _ = 1 to draws do
    let lost = Netsim.Faults.decide st rng in
    if lost then incr losses;
    if !prev then begin
      incr pairs;
      if lost then incr after_loss
    end;
    prev := lost
  done;
  let unconditional = float_of_int !losses /. float_of_int draws in
  let conditional = float_of_int !after_loss /. float_of_int !pairs in
  Alcotest.(check bool)
    (Printf.sprintf "P(loss|loss)=%.3f > 2 * P(loss)=%.3f" conditional unconditional)
    true
    (conditional > 2. *. unconditional)

let test_loss_validation () =
  (match Netsim.Faults.validate_loss (Netsim.Faults.Bernoulli 1.5) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Bernoulli 1.5 validated");
  (match
     Netsim.Faults.validate_loss
       (Netsim.Faults.Gilbert_elliott
          { p_good_to_bad = -0.1; p_bad_to_good = 0.5; loss_good = 0.; loss_bad = 1. })
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative transition validated");
  Alcotest.(check bool) "loss_state rejects invalid model" true
    (try
       ignore (Netsim.Faults.loss_state (Netsim.Faults.Bernoulli 2.) : Netsim.Faults.loss_state);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Link-level fault hooks *)

let test_link_loss_accounting () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  let delivered = ref 0 in
  Netsim.Link.set_receiver link (fun _ -> incr delivered);
  Netsim.Faults.attach_loss ~rng:(Engine.Rng.create 7) link (Netsim.Faults.Bernoulli 0.3);
  let n = 500 in
  for _ = 1 to n do
    Netsim.Link.send link (mk_packet ids ~size:500)
  done;
  Engine.Sim.run sim;
  let drops = Netsim.Link.drop_counts link in
  Alcotest.(check bool) "some packets lost" true (drops.Netsim.Link.fault_injected > 0);
  Alcotest.(check int) "delivered + lost = sent" n
    (!delivered + drops.Netsim.Link.fault_injected);
  Alcotest.(check int) "no queue drops" 0 drops.Netsim.Link.queue_full;
  Alcotest.(check int) "total" drops.Netsim.Link.fault_injected
    (Netsim.Link.total_drops drops);
  (* Detaching restores a clean wire. *)
  Netsim.Faults.detach_loss link;
  let before = !delivered in
  for _ = 1 to 100 do
    Netsim.Link.send link (mk_packet ids ~size:500)
  done;
  Engine.Sim.run sim;
  Alcotest.(check int) "all delivered after detach" (before + 100) !delivered

let test_link_outage_window () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let ids = Netsim.Packet.fresh_id_state () in
  let delivered = ref 0 in
  Netsim.Link.set_receiver link (fun _ -> incr delivered);
  let trace = Engine.Trace.create () in
  Netsim.Faults.schedule_outage ~trace sim link ~down_at:(Engine.Time.ms 100)
    ~up_at:(Engine.Time.ms 200);
  (* One packet in each regime: before, during, after the outage. *)
  List.iter
    (fun at ->
      ignore @@
      Engine.Sim.schedule_at sim (Engine.Time.ms at) (fun () ->
          Netsim.Link.send link (mk_packet ids ~size:500)))
    [ 10; 150; 250 ];
  Engine.Sim.run sim;
  Alcotest.(check int) "two delivered" 2 !delivered;
  Alcotest.(check int) "one outage drop" 1
    (Netsim.Link.drop_counts link).Netsim.Link.outage;
  Alcotest.(check bool) "link back up" true (Netsim.Link.is_up link);
  let kinds = List.map (fun e -> e.Engine.Trace.kind) (Engine.Trace.events trace) in
  Alcotest.(check bool) "fault then recovery traced" true
    (kinds = [ Engine.Trace.Fault; Engine.Trace.Recovery ])

let test_schedule_rates () =
  let sim = Engine.Sim.create () in
  let link = mk_link ~rate:(Engine.Units.Rate.mbit 8) sim in
  Netsim.Link.set_receiver link (fun _ -> ());
  Netsim.Faults.schedule_rates sim link
    [ (Engine.Time.ms 50, Engine.Units.Rate.mbit 2);
      (Engine.Time.ms 100, Engine.Units.Rate.mbit 6) ];
  let at_75 = ref None and at_150 = ref None in
  ignore @@
  Engine.Sim.schedule_at sim (Engine.Time.ms 75) (fun () ->
      at_75 := Some (Netsim.Link.rate link));
  ignore @@
  Engine.Sim.schedule_at sim (Engine.Time.ms 150) (fun () ->
      at_150 := Some (Netsim.Link.rate link));
  Engine.Sim.run sim;
  Alcotest.(check bool) "degraded at 75ms" true
    (!at_75 = Some (Engine.Units.Rate.mbit 2));
  Alcotest.(check bool) "recovered at 150ms" true
    (!at_150 = Some (Engine.Units.Rate.mbit 6))

(* ------------------------------------------------------------------ *)
(* The fault experiment *)

let quick_config =
  { Workload.Fault_experiment.default_config with
    Workload.Fault_experiment.transfer_bytes = Engine.Units.kib 128;
  }

let test_experiment_clean_completes () =
  let r = Workload.Fault_experiment.run quick_config in
  Alcotest.(check bool) "completed" true
    (r.Workload.Fault_experiment.outcome = Workload.Fault_experiment.Completed);
  Alcotest.(check int) "no retransmissions on a clean network" 0
    r.Workload.Fault_experiment.retransmissions;
  Alcotest.(check int) "no drops anywhere" 0
    (Netsim.Link.total_drops r.Workload.Fault_experiment.drops)

(* The headline robustness claim: 1% wire loss on the bottleneck slows
   the transfer down but never kills it — hop-by-hop retransmission
   repairs every hole. *)
let test_experiment_loss_survivable () =
  List.iter
    (fun seed ->
      let r =
        Workload.Fault_experiment.run ~seed
          { quick_config with loss = Some (Netsim.Faults.Bernoulli 0.01) }
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d completed" seed)
        true
        (r.Workload.Fault_experiment.outcome = Workload.Fault_experiment.Completed);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d retransmitted" seed)
        true
        (r.Workload.Fault_experiment.retransmissions > 0
        || r.Workload.Fault_experiment.drops.Netsim.Link.fault_injected = 0))
    [ 1; 2; 3; 4; 5 ]

let test_experiment_deterministic () =
  let cfg = { quick_config with loss = Some (Netsim.Faults.Bernoulli 0.02) } in
  let a = Workload.Fault_experiment.run ~seed:9 cfg in
  let b = Workload.Fault_experiment.run ~seed:9 cfg in
  Alcotest.(check bool) "same ttlb" true
    (a.Workload.Fault_experiment.time_to_last_byte
    = b.Workload.Fault_experiment.time_to_last_byte);
  Alcotest.(check int) "same retransmissions"
    a.Workload.Fault_experiment.retransmissions
    b.Workload.Fault_experiment.retransmissions;
  Alcotest.(check bool) "same drops" true
    (a.Workload.Fault_experiment.drops = b.Workload.Fault_experiment.drops);
  let c = Workload.Fault_experiment.run ~seed:10 cfg in
  Alcotest.(check bool) "different seed, different loss pattern" true
    (a.Workload.Fault_experiment.drops <> c.Workload.Fault_experiment.drops
    || a.Workload.Fault_experiment.time_to_last_byte
       <> c.Workload.Fault_experiment.time_to_last_byte)

(* A crashed relay must surface as a circuit failure within the
   retransmission budget's bound — the simulation terminates instead of
   retransmitting into the black hole forever. *)
let test_experiment_crash_fails_bounded () =
  let r =
    Workload.Fault_experiment.run
      { quick_config with crash_at = Some (Engine.Time.ms 200) }
  in
  Alcotest.(check bool) "failed" true
    (r.Workload.Fault_experiment.outcome = Workload.Fault_experiment.Failed_circuit);
  (match r.Workload.Fault_experiment.failed_after with
  | None -> Alcotest.fail "no failure instant"
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "failed after %.1fs, well before the 60s horizon"
           (Engine.Time.to_sec_f t))
        true
        Engine.Time.(t < Engine.Time.s 30));
  Alcotest.(check bool) "failed hop identified" true
    (r.Workload.Fault_experiment.failed_hop <> None);
  Alcotest.(check bool) "crashed relay black-holed traffic" true
    (r.Workload.Fault_experiment.blackholed_cells > 0);
  let kinds = List.map (fun e -> e.Engine.Trace.kind) r.Workload.Fault_experiment.events in
  Alcotest.(check bool) "crash and abort traced" true
    (List.mem Engine.Trace.Fault kinds && List.mem Engine.Trace.Abort kinds)

let test_experiment_outage_survivable () =
  let r =
    Workload.Fault_experiment.run
      { quick_config with
        outage = Some (Engine.Time.ms 100, Engine.Time.ms 400);
        horizon = Engine.Time.s 120;
      }
  in
  Alcotest.(check bool) "completed despite outage" true
    (r.Workload.Fault_experiment.outcome = Workload.Fault_experiment.Completed);
  Alcotest.(check bool) "outage dropped traffic" true
    (r.Workload.Fault_experiment.drops.Netsim.Link.outage > 0)

let test_experiment_paired_comparison () =
  let c =
    Workload.Fault_experiment.compare_strategies ~seed:4
      { quick_config with loss = Some (Netsim.Faults.Bernoulli 0.01) }
  in
  Alcotest.(check bool) "both completed" true
    (c.Workload.Fault_experiment.circuit_start.outcome
     = Workload.Fault_experiment.Completed
    && c.Workload.Fault_experiment.slow_start.outcome
       = Workload.Fault_experiment.Completed)

let test_experiment_validation () =
  Alcotest.(check bool) "bad loss rejected" true
    (match
       Workload.Fault_experiment.validate_config
         { quick_config with loss = Some (Netsim.Faults.Bernoulli 2.) }
     with
    | Error _ -> true
    | Ok _ -> false);
  Alcotest.(check bool) "inverted outage rejected" true
    (match
       Workload.Fault_experiment.validate_config
         { quick_config with outage = Some (Engine.Time.ms 500, Engine.Time.ms 100) }
     with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "loss models",
        [
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "gilbert-elliott rate" `Quick test_gilbert_elliott_rate;
          Alcotest.test_case "gilbert-elliott burstiness" `Quick
            test_gilbert_elliott_burstiness;
          Alcotest.test_case "validation" `Quick test_loss_validation;
        ] );
      ( "link hooks",
        [
          Alcotest.test_case "loss accounting" `Quick test_link_loss_accounting;
          Alcotest.test_case "outage window" `Quick test_link_outage_window;
          Alcotest.test_case "rate schedule" `Quick test_schedule_rates;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "clean baseline" `Quick test_experiment_clean_completes;
          Alcotest.test_case "1% loss survivable" `Quick test_experiment_loss_survivable;
          Alcotest.test_case "deterministic per seed" `Quick test_experiment_deterministic;
          Alcotest.test_case "crash fails bounded" `Quick
            test_experiment_crash_fails_bounded;
          Alcotest.test_case "outage survivable" `Quick test_experiment_outage_survivable;
          Alcotest.test_case "paired comparison" `Quick test_experiment_paired_comparison;
          Alcotest.test_case "config validation" `Quick test_experiment_validation;
        ] );
    ]

(* Tests for the BackTap hop transport: wire format, the windowed hop
   sender (with loss and retransmission), per-node dispatch, and the
   end-to-end circuit transfer. *)

let time = Alcotest.testable Engine.Time.pp Engine.Time.equal

(* ------------------------------------------------------------------ *)
(* Wire format *)

let test_wire_sizes () =
  Alcotest.(check int) "cell envelope" (Tor_model.Cell.size + 8) Backtap.Wire.cell_size;
  Alcotest.(check int) "feedback" 43 Backtap.Wire.feedback_size

let test_wire_printer () =
  Backtap.Wire.register_printer ();
  let c = Tor_model.Circuit_id.of_int 3 in
  let s =
    Format.asprintf "%a" Netsim.Payload.pp (Backtap.Wire.Bt_feedback { circuit = c; hop_seq = 7 })
  in
  Alcotest.(check string) "feedback printed" "fb c3 #7" s

(* ------------------------------------------------------------------ *)
(* Fixtures: a two/three leaf star with switchboards + backtap nodes *)

let mk_net ?(queue = Netsim.Nqueue.unbounded) ?(rate = Engine.Units.Rate.mbit 10) n =
  let sim = Engine.Sim.create () in
  let topo, _, leaves =
    Netsim.Topology.star sim ~hub:"hub"
      ~leaves:(List.init n (fun i -> (Printf.sprintf "l%d" i, rate, Engine.Time.ms 5)))
      ~queue ()
  in
  let net = Netsim.Network.create topo in
  let sbs = Array.of_list (List.map (Tor_model.Switchboard.install net) leaves) in
  let bts = Array.map Backtap.Node.install sbs in
  (sim, net, Array.of_list leaves, sbs, bts)

let circ = Tor_model.Circuit_id.of_int 0

let data_cell seq =
  Tor_model.Cell.data circ ~layers:0 ~stream_id:0 ~seq ~length:100 ~last:false

(* ------------------------------------------------------------------ *)
(* Node dispatch *)

let test_node_dispatch () =
  let sim, _, leaves, sbs, bts = mk_net 2 in
  let got_cells = ref [] and got_fb = ref [] in
  Backtap.Node.register_flow bts.(1) circ
    {
      Backtap.Node.on_cell = (fun ~from:_ ~hop_seq cell -> got_cells := (hop_seq, cell) :: !got_cells);
      on_feedback = (fun ~hop_seq -> got_fb := hop_seq :: !got_fb);
    };
  Tor_model.Switchboard.send_payload sbs.(0) ~dst:leaves.(1) ~size:Backtap.Wire.cell_size
    (Backtap.Wire.Bt_cell { hop_seq = 4; cell = data_cell 0 });
  Tor_model.Switchboard.send_payload sbs.(0) ~dst:leaves.(1) ~size:Backtap.Wire.feedback_size
    (Backtap.Wire.Bt_feedback { circuit = circ; hop_seq = 9 });
  Engine.Sim.run sim;
  Alcotest.(check (list int)) "cell hop_seq" [ 4 ] (List.map fst !got_cells);
  Alcotest.(check (list int)) "feedback hop_seq" [ 9 ] !got_fb;
  Alcotest.(check int) "no orphans" 0 (Backtap.Node.orphan_messages bts.(1))

let test_node_orphans () =
  let sim, _, leaves, sbs, bts = mk_net 2 in
  Tor_model.Switchboard.send_payload sbs.(0) ~dst:leaves.(1) ~size:Backtap.Wire.cell_size
    (Backtap.Wire.Bt_cell { hop_seq = 0; cell = data_cell 0 });
  Engine.Sim.run sim;
  Alcotest.(check int) "orphaned" 1 (Backtap.Node.orphan_messages bts.(1))

let test_node_double_register () =
  let _, _, _, _, bts = mk_net 2 in
  let flow =
    { Backtap.Node.on_cell = (fun ~from:_ ~hop_seq:_ _ -> ()); on_feedback = (fun ~hop_seq:_ -> ()) }
  in
  Backtap.Node.register_flow bts.(0) circ flow;
  Alcotest.(check bool) "double register raises" true
    (try
       Backtap.Node.register_flow bts.(0) circ flow;
       false
     with Invalid_argument _ -> true);
  Backtap.Node.unregister_flow bts.(0) circ;
  Backtap.Node.register_flow bts.(0) circ flow

(* ------------------------------------------------------------------ *)
(* Hop sender on a clean two-node path *)

(* Successor that forwards instantly: every incoming envelope is
   answered with feedback (like the server endpoint). *)
let echo_successor sbs bts ~at ~to_ =
  Backtap.Node.register_flow bts.(at) circ
    {
      Backtap.Node.on_cell =
        (fun ~from ~hop_seq _cell ->
          ignore from;
          Tor_model.Switchboard.send_payload sbs.(at) ~dst:to_
            ~size:Backtap.Wire.feedback_size
            (Backtap.Wire.Bt_feedback { circuit = circ; hop_seq }));
      on_feedback = (fun ~hop_seq:_ -> ());
    }

let test_hop_sender_window_gating () =
  let sim, _, leaves, sbs, bts = mk_net 2 in
  let controller = Circuitstart.Controller.create (Circuitstart.Controller.Fixed 2) in
  let sender =
    Backtap.Hop_sender.create ~sb:sbs.(0) ~circuit:circ ~succ:leaves.(1) ~controller ()
  in
  Backtap.Node.register_flow bts.(0) circ
    {
      Backtap.Node.on_cell = (fun ~from:_ ~hop_seq:_ _ -> ());
      on_feedback = (fun ~hop_seq -> Backtap.Hop_sender.on_feedback sender ~hop_seq);
    };
  echo_successor sbs bts ~at:1 ~to_:leaves.(0);
  for seq = 0 to 9 do
    Backtap.Hop_sender.submit sender (data_cell seq)
  done;
  Alcotest.(check int) "window limits inflight" 2 (Backtap.Hop_sender.inflight sender);
  Alcotest.(check int) "rest queued" 8 (Backtap.Hop_sender.queue_length sender);
  Engine.Sim.run sim;
  Alcotest.(check bool) "drained" true (Backtap.Hop_sender.idle sender);
  Alcotest.(check int) "all sent" 10 (Backtap.Hop_sender.cells_sent sender);
  Alcotest.(check int) "no retransmissions" 0 (Backtap.Hop_sender.retransmissions sender);
  Alcotest.(check bool) "srtt measured" true (Backtap.Hop_sender.srtt sender <> None)

let test_hop_sender_ack_at_wire () =
  let sim, _, leaves, sbs, bts = mk_net 2 in
  let controller = Circuitstart.Controller.create (Circuitstart.Controller.Fixed 4) in
  let sender =
    Backtap.Hop_sender.create ~sb:sbs.(0) ~circuit:circ ~succ:leaves.(1) ~controller ()
  in
  Backtap.Node.register_flow bts.(0) circ
    {
      Backtap.Node.on_cell = (fun ~from:_ ~hop_seq:_ _ -> ());
      on_feedback = (fun ~hop_seq -> Backtap.Hop_sender.on_feedback sender ~hop_seq);
    };
  echo_successor sbs bts ~at:1 ~to_:leaves.(0);
  let acks = ref [] in
  Backtap.Hop_sender.submit sender ~ack:(fun () -> acks := Engine.Sim.now sim :: !acks)
    (data_cell 0);
  Backtap.Hop_sender.submit sender ~ack:(fun () -> acks := Engine.Sim.now sim :: !acks)
    (data_cell 1);
  Engine.Sim.run sim;
  (match List.rev !acks with
  | [ t0; t1 ] ->
      Alcotest.check time "first ack at serialization start" Engine.Time.zero t0;
      (* 520 bytes at 10 Mbit/s = 416 us serialization. *)
      Alcotest.check time "second ack one serialization later" (Engine.Time.us 416) t1
  | _ -> Alcotest.fail "expected two acks");
  Alcotest.(check int) "acks fired once each" 2 (List.length !acks)

let test_hop_sender_retransmission () =
  (* A tiny hub-side queue forces drops; the RTO must recover them. *)
  let sim, _, leaves, sbs, bts = mk_net ~queue:(Netsim.Nqueue.packets 2) 2 in
  let controller = Circuitstart.Controller.create (Circuitstart.Controller.Fixed 20) in
  let sender =
    Backtap.Hop_sender.create ~sb:sbs.(0) ~circuit:circ ~succ:leaves.(1) ~controller
      ~rto_min:(Engine.Time.ms 50) ()
  in
  let received = Hashtbl.create 32 in
  Backtap.Node.register_flow bts.(0) circ
    {
      Backtap.Node.on_cell = (fun ~from:_ ~hop_seq:_ _ -> ());
      on_feedback = (fun ~hop_seq -> Backtap.Hop_sender.on_feedback sender ~hop_seq);
    };
  Backtap.Node.register_flow bts.(1) circ
    {
      Backtap.Node.on_cell =
        (fun ~from:_ ~hop_seq cell ->
          (match Tor_model.Cell.relay_cmd cell with
          | Some (Tor_model.Cell.Relay_data { seq; _ }) -> Hashtbl.replace received seq ()
          | _ -> ());
          Tor_model.Switchboard.send_payload sbs.(1) ~dst:leaves.(0)
            ~size:Backtap.Wire.feedback_size
            (Backtap.Wire.Bt_feedback { circuit = circ; hop_seq }));
      on_feedback = (fun ~hop_seq:_ -> ());
    };
  for seq = 0 to 19 do
    Backtap.Hop_sender.submit sender (data_cell seq)
  done;
  Engine.Sim.run sim ~until:(Engine.Time.s 30);
  Alcotest.(check int) "all 20 delivered despite drops" 20 (Hashtbl.length received);
  Alcotest.(check bool) "drops caused retransmissions" true
    (Backtap.Hop_sender.retransmissions sender > 0);
  Alcotest.(check bool) "sender drained" true (Backtap.Hop_sender.idle sender)

let test_hop_sender_spurious_feedback () =
  let sim, _, leaves, sbs, bts = mk_net 2 in
  let controller = Circuitstart.Controller.create (Circuitstart.Controller.Fixed 2) in
  let sender =
    Backtap.Hop_sender.create ~sb:sbs.(0) ~circuit:circ ~succ:leaves.(1) ~controller ()
  in
  Backtap.Node.register_flow bts.(0) circ
    {
      Backtap.Node.on_cell = (fun ~from:_ ~hop_seq:_ _ -> ());
      on_feedback = (fun ~hop_seq -> Backtap.Hop_sender.on_feedback sender ~hop_seq);
    };
  Backtap.Node.register_flow bts.(1) circ
    {
      Backtap.Node.on_cell =
        (fun ~from:_ ~hop_seq _ ->
          (* Acknowledge twice: the second must count as spurious. *)
          for _ = 1 to 2 do
            Tor_model.Switchboard.send_payload sbs.(1) ~dst:leaves.(0)
              ~size:Backtap.Wire.feedback_size
              (Backtap.Wire.Bt_feedback { circuit = circ; hop_seq })
          done);
      on_feedback = (fun ~hop_seq:_ -> ());
    };
  Backtap.Hop_sender.submit sender (data_cell 0);
  Engine.Sim.run sim;
  Alcotest.(check int) "one spurious" 1 (Backtap.Hop_sender.spurious_feedback sender)

(* A sender facing a successor that never answers must retransmit on an
   exponentially backed-off schedule and trip its budget at a
   computable instant — this is the failure-detection bound the whole
   fault subsystem leans on. *)
let test_hop_sender_backoff_and_trip () =
  let sim, _, leaves, sbs, bts = mk_net 2 in
  let controller = Circuitstart.Controller.create (Circuitstart.Controller.Fixed 2) in
  let sender =
    Backtap.Hop_sender.create ~sb:sbs.(0) ~circuit:circ ~succ:leaves.(1) ~controller
      ~rto_initial:(Engine.Time.ms 100) ~max_retries:3 ()
  in
  (* The successor swallows every cell: no feedback, ever. *)
  Backtap.Node.register_flow bts.(1) circ
    {
      Backtap.Node.on_cell = (fun ~from:_ ~hop_seq:_ _ -> ());
      on_feedback = (fun ~hop_seq:_ -> ());
    };
  let aborted_at = ref None in
  Backtap.Hop_sender.set_on_abort sender (fun () ->
      aborted_at := Some (Engine.Sim.now sim));
  Backtap.Hop_sender.submit sender (data_cell 0);
  Engine.Sim.run sim ~until:(Engine.Time.s 10);
  Alcotest.(check int) "budget spent exactly" 3
    (Backtap.Hop_sender.retransmissions sender);
  Alcotest.(check bool) "sender aborted" true (Backtap.Hop_sender.aborted sender);
  (* No RTT sample ever arrives, so every timer uses rto_initial with
     doubling backoff: retransmissions at ~100, 300, 700 ms and the
     trip at ~1500 ms after the first wire departure. *)
  (match !aborted_at with
  | None -> Alcotest.fail "on_abort never fired"
  | Some at ->
      Alcotest.(check bool)
        (Format.asprintf "tripped at %a, inside [1.5s, 1.6s]" Engine.Time.pp at)
        true
        Engine.Time.(at >= Engine.Time.ms 1500 && at <= Engine.Time.ms 1600));
  Alcotest.(check bool) "no srtt without any sample" true
    (Backtap.Hop_sender.srtt sender = None);
  (* Terminal: submissions are ignored, the abort fires only once. *)
  Backtap.Hop_sender.submit sender (data_cell 1);
  Engine.Sim.run sim;
  Alcotest.(check int) "aborted sender sends nothing" 1
    (Backtap.Hop_sender.cells_sent sender)

(* Karn's rule: feedback for a retransmitted cell must not feed the
   RTT estimator (the sample is ambiguous), while a cleanly delivered
   cell must. *)
let test_hop_sender_karn_rule () =
  let sim, _, leaves, sbs, bts = mk_net 2 in
  let controller = Circuitstart.Controller.create (Circuitstart.Controller.Fixed 2) in
  let sender =
    Backtap.Hop_sender.create ~sb:sbs.(0) ~circuit:circ ~succ:leaves.(1) ~controller
      ~rto_min:(Engine.Time.ms 50) ~rto_initial:(Engine.Time.ms 50) ()
  in
  Backtap.Node.register_flow bts.(0) circ
    {
      Backtap.Node.on_cell = (fun ~from:_ ~hop_seq:_ _ -> ());
      on_feedback = (fun ~hop_seq -> Backtap.Hop_sender.on_feedback sender ~hop_seq);
    };
  (* The successor acknowledges each sequence number exactly once, but
     only 200 ms after first receipt — far beyond the 50 ms RTO, so by
     then the cell has been retransmitted and the sample is ambiguous. *)
  let seen = Hashtbl.create 8 in
  Backtap.Node.register_flow bts.(1) circ
    {
      Backtap.Node.on_cell =
        (fun ~from:_ ~hop_seq _ ->
          if not (Hashtbl.mem seen hop_seq) then begin
            Hashtbl.add seen hop_seq ();
            ignore @@
            Engine.Sim.schedule_after sim (Engine.Time.ms 200) (fun () ->
                Tor_model.Switchboard.send_payload sbs.(1) ~dst:leaves.(0)
                  ~size:Backtap.Wire.feedback_size
                  (Backtap.Wire.Bt_feedback { circuit = circ; hop_seq }))
          end);
      on_feedback = (fun ~hop_seq:_ -> ());
    };
  Backtap.Hop_sender.submit sender (data_cell 0);
  Engine.Sim.run sim ~until:(Engine.Time.s 2);
  Alcotest.(check bool) "cell was retransmitted" true
    (Backtap.Hop_sender.retransmissions sender > 0);
  Alcotest.(check bool) "Karn: ambiguous sample discarded" true
    (Backtap.Hop_sender.srtt sender = None);
  Alcotest.(check bool) "window slot freed" true (Backtap.Hop_sender.idle sender)

(* Use-after-recycle regression: a queued attempt's wire-departure
   registration outlives the pending that sent it.  Force a spurious
   RTO while the first attempt is still stuck in the access-link queue,
   deliver feedback (recycling the pooled pending), and reuse the
   record for a new cell — when the leftover attempts of the old
   incarnation finally serialize, their firings must be no-ops.  Under
   the bug they invoked [transmit_done] on the reused record: the new
   cell's ack fired before its packet reached the wire, its
   first-transmit flag was consumed and its RTT clock corrupted. *)
let test_hop_sender_stale_transmit_after_recycle () =
  (* 8 kbit/s serializes one 520-byte envelope in exactly 520 ms, so
     queued attempts outlive a 200 ms RTO by a wide margin. *)
  let sim, _, leaves, sbs, _ = mk_net ~rate:(Engine.Units.Rate.kbit 8) 2 in
  let controller = Circuitstart.Controller.create (Circuitstart.Controller.Fixed 2) in
  let sender =
    Backtap.Hop_sender.create ~sb:sbs.(0) ~circuit:circ ~succ:leaves.(1) ~controller
      ~rto_initial:(Engine.Time.ms 200) ()
  in
  (* Cells A (hop_seq 0) and B (hop_seq 1): A serializes immediately,
     B waits in the access-link queue behind it. *)
  Backtap.Hop_sender.submit sender (data_cell 0);
  Backtap.Hop_sender.submit sender (data_cell 1);
  (* t=150ms: feedback for A — seeds srtt=150ms (rto becomes 450 ms).
     At t=200ms B's queued-drop watchdog fires a spurious retransmit:
     two attempts of B now sit in the queue. *)
  ignore @@
  Engine.Sim.schedule_after sim (Engine.Time.ms 150) (fun () ->
      Backtap.Hop_sender.on_feedback sender ~hop_seq:0);
  (* t=300ms: feedback for B recycles its pending while both attempts
     are still queued; cell C (hop_seq 2) immediately reuses it. *)
  let ack_times = ref [] in
  ignore @@
  Engine.Sim.schedule_after sim (Engine.Time.ms 300) (fun () ->
      Backtap.Hop_sender.on_feedback sender ~hop_seq:1;
      Backtap.Hop_sender.submit sender
        ~ack:(fun () -> ack_times := Engine.Sim.now sim :: !ack_times)
        (data_cell 2));
  ignore @@
  Engine.Sim.schedule_after sim (Engine.Time.ms 2200) (fun () ->
      Backtap.Hop_sender.on_feedback sender ~hop_seq:2);
  Engine.Sim.run sim;
  (* Access-link serializations: A [0,520], B#1 [520,1040] (stale),
     B#2 [1040,1560] (stale), C#1 [1560,2080].  C's ack must fire at
     C's own wire departure — not at 520 ms when stale B#1 leaves. *)
  (match !ack_times with
  | [ at ] -> Alcotest.check time "ack at C's own wire departure" (Engine.Time.ms 1560) at
  | l -> Alcotest.fail (Printf.sprintf "expected one ack, got %d" (List.length l)));
  Alcotest.(check int) "spurious retransmits only (B once, C once)" 2
    (Backtap.Hop_sender.retransmissions sender);
  Alcotest.(check int) "no feedback counted spurious" 0
    (Backtap.Hop_sender.spurious_feedback sender);
  Alcotest.(check bool) "sender drained" true (Backtap.Hop_sender.idle sender);
  Alcotest.(check bool) "sender alive" true (not (Backtap.Hop_sender.aborted sender))

(* ------------------------------------------------------------------ *)
(* End-to-end transfer over a full circuit *)

let mk_transfer ?(bytes = Engine.Units.kib 200) ?(strategy = Circuitstart.Controller.Circuit_start)
    ?trace () =
  let sim, _, leaves, _, bts = mk_net 5 in
  let relays =
    List.init 3 (fun i ->
        Tor_model.Relay_info.make
          ~nickname:(Printf.sprintf "r%d" i)
          ~node:leaves.(i + 1)
          ~bandwidth:(Engine.Units.Rate.mbit 10) ~latency:(Engine.Time.ms 5) ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:circ ~client:leaves.(0) ~relays ~server:leaves.(4)
  in
  let node_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then bts.(i) else find (i + 1) in
    find 0
  in
  let d =
    Backtap.Transfer.deploy ~node_of ~circuit ~bytes ~strategy ?trace ()
  in
  (sim, d)

let test_transfer_completes () =
  let sim, d = mk_transfer () in
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check bool) "complete" true (Backtap.Transfer.complete d);
  Alcotest.(check int) "all bytes" (Engine.Units.kib 200)
    (Tor_model.Stream.Sink.received_bytes (Backtap.Transfer.sink d));
  Alcotest.(check int) "exactly once" 0
    (Tor_model.Stream.Sink.duplicates (Backtap.Transfer.sink d));
  Alcotest.(check bool) "ttlb" true (Backtap.Transfer.time_to_last_byte d <> None)

let test_transfer_start_twice () =
  let sim, d = mk_transfer () in
  Backtap.Transfer.start d;
  Alcotest.check_raises "double start"
    (Invalid_argument "Backtap.Transfer.start: already started") (fun () ->
      Backtap.Transfer.start d);
  Engine.Sim.run sim ~until:(Engine.Time.s 60)

let test_transfer_senders_exposed () =
  let sim, d = mk_transfer () in
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check int) "one sender per hop" 4 (List.length (Backtap.Transfer.senders d));
  Alcotest.(check bool) "position 0 exists" true (Backtap.Transfer.sender_at d 0 <> None);
  Alcotest.(check bool) "position 4 is the server" true
    (Backtap.Transfer.sender_at d 4 = None);
  (* Window invariant at every hop after the run. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "inflight <= cwnd" true
        (Backtap.Hop_sender.inflight s <= Backtap.Hop_sender.cwnd s))
    (Backtap.Transfer.senders d)

let test_transfer_trace_recorded () =
  let trace = Engine.Trace.create () in
  let sim, d = mk_transfer ~trace:(trace, "x") () in
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  List.iter
    (fun pos ->
      let key = Printf.sprintf "x/cwnd/%d" pos in
      match Engine.Trace.find trace key with
      | Some ts -> Alcotest.(check bool) (key ^ " nonempty") true (Engine.Timeseries.length ts > 0)
      | None -> Alcotest.fail (key ^ " missing"))
    [ 0; 1; 2; 3 ]

let test_transfer_on_complete_fires_once () =
  let fired = ref 0 in
  let sim, _, leaves, _, bts = mk_net 5 in
  let relays =
    List.init 3 (fun i ->
        Tor_model.Relay_info.make ~nickname:(Printf.sprintf "r%d" i) ~node:leaves.(i + 1)
          ~bandwidth:(Engine.Units.Rate.mbit 10) ~latency:(Engine.Time.ms 5) ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:circ ~client:leaves.(0) ~relays ~server:leaves.(4)
  in
  let node_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then bts.(i) else find (i + 1) in
    find 0
  in
  let d =
    Backtap.Transfer.deploy ~node_of ~circuit ~bytes:(Engine.Units.kib 50)
      ~strategy:Circuitstart.Controller.Circuit_start
      ~on_complete:(fun _ -> incr fired)
      ()
  in
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check int) "once" 1 !fired

let test_transfer_resume_offset () =
  let bytes = Engine.Units.kib 200 in
  let offset = 100 * 498 in
  let sim, _, leaves, _, bts = mk_net 5 in
  let relays =
    List.init 3 (fun i ->
        Tor_model.Relay_info.make ~nickname:(Printf.sprintf "r%d" i) ~node:leaves.(i + 1)
          ~bandwidth:(Engine.Units.Rate.mbit 10) ~latency:(Engine.Time.ms 5) ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:circ ~client:leaves.(0) ~relays ~server:leaves.(4)
  in
  let node_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then bts.(i) else find (i + 1) in
    find 0
  in
  let d =
    Backtap.Transfer.deploy ~node_of ~circuit ~bytes
      ~strategy:Circuitstart.Controller.Circuit_start ~offset ()
  in
  Alcotest.(check int) "offset counted up front" offset
    (Backtap.Transfer.delivered_bytes d);
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check bool) "complete" true (Backtap.Transfer.complete d);
  Alcotest.(check int) "every byte accounted" bytes (Backtap.Transfer.delivered_bytes d);
  Alcotest.(check int) "no duplicates" 0
    (Tor_model.Stream.Sink.duplicates (Backtap.Transfer.sink d));
  (* Only the un-delivered suffix crossed the wire. *)
  let total_cells = (bytes + 497) / 498 in
  Alcotest.(check int) "only the suffix was sent" (total_cells - 100)
    (Tor_model.Stream.Sink.cells_received (Backtap.Transfer.sink d))

let test_transfer_offset_validation () =
  let sim, _, leaves, _, bts = mk_net 5 in
  let relays =
    List.init 3 (fun i ->
        Tor_model.Relay_info.make ~nickname:(Printf.sprintf "r%d" i) ~node:leaves.(i + 1)
          ~bandwidth:(Engine.Units.Rate.mbit 10) ~latency:(Engine.Time.ms 5) ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:circ ~client:leaves.(0) ~relays ~server:leaves.(4)
  in
  let node_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then bts.(i) else find (i + 1) in
    find 0
  in
  ignore sim;
  (match
     Backtap.Transfer.deploy ~node_of ~circuit ~bytes:(Engine.Units.kib 10)
       ~strategy:Circuitstart.Controller.Circuit_start ~offset:100 ()
   with
  | (_ : Backtap.Transfer.t) -> Alcotest.fail "misaligned offset accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) ("alignment rejected: " ^ msg) true
        (String.ends_with ~suffix:"start_byte must be cell-aligned" msg));
  Alcotest.check_raises "offset for unknown stream"
    (Invalid_argument "Backtap.Transfer.deploy_streams: offset for unknown stream")
    (fun () ->
      ignore
        (Backtap.Transfer.deploy_streams ~node_of ~circuit
           ~streams:[ (0, Engine.Units.kib 10) ]
           ~strategy:Circuitstart.Controller.Circuit_start
           ~offsets:[ (7, 498) ] ()))

(* Kill the middle relay mid-transfer: on_fail must fire exactly once,
   on_complete never, and the delivered prefix must be a safe (cell
   aligned) resume offset. *)
let test_transfer_callbacks_exclusive () =
  let bytes = Engine.Units.kib 200 in
  let sim, _, leaves, sbs, bts = mk_net 5 in
  let relays =
    List.init 3 (fun i ->
        Tor_model.Relay_info.make ~nickname:(Printf.sprintf "r%d" i) ~node:leaves.(i + 1)
          ~bandwidth:(Engine.Units.Rate.mbit 10) ~latency:(Engine.Time.ms 5) ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:circ ~client:leaves.(0) ~relays ~server:leaves.(4)
  in
  let node_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then bts.(i) else find (i + 1) in
    find 0
  in
  let completes = ref 0 and fails = ref 0 in
  let d =
    Backtap.Transfer.deploy ~node_of ~circuit ~bytes
      ~strategy:Circuitstart.Controller.Circuit_start
      ~rto_min:(Engine.Time.ms 100) ~rto_initial:(Engine.Time.ms 200) ~max_retries:3
      ~on_complete:(fun _ -> incr completes)
      ~on_fail:(fun _ -> incr fails)
      ()
  in
  ignore
    (Engine.Sim.schedule_after sim (Engine.Time.ms 100) (fun () ->
         Tor_model.Switchboard.set_down sbs.(2) true)
      : Engine.Sim.handle);
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check int) "on_fail fired once" 1 !fails;
  Alcotest.(check int) "on_complete never fired" 0 !completes;
  Alcotest.(check bool) "terminal state is Failed" true
    (Backtap.Transfer.state d = Backtap.Transfer.Failed);
  let delivered = Backtap.Transfer.delivered_bytes d in
  Alcotest.(check bool)
    (Printf.sprintf "partial delivery (%d of %d)" delivered bytes)
    true
    (delivered > 0 && delivered < bytes);
  Alcotest.(check int) "prefix is cell-aligned" 0 (delivered mod 498)

let test_transfer_cell_latency () =
  let sim, d = mk_transfer () in
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  let lat = Backtap.Transfer.cell_latency_stats d in
  let cells = Tor_model.Stream.Sink.cells_received (Backtap.Transfer.sink d) in
  Alcotest.(check int) "one sample per delivered cell" cells
    (Engine.Stats.Online.count lat);
  (* Minimum possible: 4 hops x (5+5) ms one-way = 40 ms propagation. *)
  Alcotest.(check bool) "min >= one-way propagation" true
    (Engine.Stats.Online.min lat >= 0.040);
  Alcotest.(check bool) "mean below a second" true (Engine.Stats.Online.mean lat < 1.)

let test_multi_stream_transfer () =
  let sim, _, leaves, _, bts = mk_net 5 in
  let relays =
    List.init 3 (fun i ->
        Tor_model.Relay_info.make ~nickname:(Printf.sprintf "r%d" i) ~node:leaves.(i + 1)
          ~bandwidth:(Engine.Units.Rate.mbit 10) ~latency:(Engine.Time.ms 5) ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:circ ~client:leaves.(0) ~relays ~server:leaves.(4)
  in
  let node_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then bts.(i) else find (i + 1) in
    find 0
  in
  let fired = ref 0 in
  let d =
    Backtap.Transfer.deploy_streams ~node_of ~circuit
      ~streams:[ (1, Engine.Units.kib 100); (2, Engine.Units.kib 100); (3, Engine.Units.kib 25) ]
      ~strategy:Circuitstart.Controller.Circuit_start
      ~on_complete:(fun _ -> incr fired)
      ()
  in
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check bool) "all streams complete" true (Backtap.Transfer.complete d);
  Alcotest.(check int) "completion fires once, at the end" 1 !fired;
  Alcotest.(check (list int)) "stream ids" [ 1; 2; 3 ] (Backtap.Transfer.stream_ids d);
  (* Per-stream byte accounting. *)
  List.iter
    (fun (id, kib) ->
      match Backtap.Transfer.stream_sink d id with
      | Some sink ->
          Alcotest.(check int)
            (Printf.sprintf "stream %d bytes" id)
            (Engine.Units.kib kib)
            (Tor_model.Stream.Sink.received_bytes sink)
      | None -> Alcotest.fail "missing stream sink")
    [ (1, 100); (2, 100); (3, 25) ];
  (* Fairness of the round-robin interleave: the small stream finishes
     first; the two equal streams finish within 20%% of each other. *)
  let at id = Option.get (Backtap.Transfer.stream_completed_at d id) in
  Alcotest.(check bool) "small stream first" true
    Engine.Time.(at 3 < at 1 && at 3 < at 2);
  let t1 = Engine.Time.to_sec_f (at 1) and t2 = Engine.Time.to_sec_f (at 2) in
  Alcotest.(check bool)
    (Printf.sprintf "equal streams finish together (%.3f vs %.3f)" t1 t2)
    true
    (Float.abs (t1 -. t2) /. Float.max t1 t2 < 0.2);
  (* completed_at = the later of the two big streams. *)
  Alcotest.(check bool) "completed_at is the max" true
    (match Backtap.Transfer.completed_at d with
    | Some c -> Engine.Time.equal c (Engine.Time.max (at 1) (at 2))
    | None -> false)

let test_multi_stream_validation () =
  let _, _, leaves, _, bts = mk_net 5 in
  let relays =
    List.init 3 (fun i ->
        Tor_model.Relay_info.make ~nickname:(Printf.sprintf "r%d" i) ~node:leaves.(i + 1)
          ~bandwidth:(Engine.Units.Rate.mbit 10) ~latency:(Engine.Time.ms 5) ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:circ ~client:leaves.(0) ~relays ~server:leaves.(4)
  in
  let node_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then bts.(i) else find (i + 1) in
    find 0
  in
  Alcotest.check_raises "empty streams"
    (Invalid_argument "Backtap.Transfer.deploy_streams: no streams") (fun () ->
      ignore
        (Backtap.Transfer.deploy_streams ~node_of ~circuit ~streams:[]
           ~strategy:Circuitstart.Controller.Circuit_start ()));
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Backtap.Transfer.deploy_streams: duplicate stream id") (fun () ->
      ignore
        (Backtap.Transfer.deploy_streams ~node_of ~circuit
           ~streams:[ (1, 100); (1, 100) ]
           ~strategy:Circuitstart.Controller.Circuit_start ()))

let test_transfer_teardown () =
  let sim, d = mk_transfer () in
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Backtap.Transfer.teardown d;
  Alcotest.(check bool) "was complete" true (Backtap.Transfer.complete d)

let test_transfer_with_loss () =
  (* Bounded queues across the star: drops occur, reliability recovers,
     the sink still gets every byte exactly once. *)
  let sim, _, leaves, _, bts = mk_net ~queue:(Netsim.Nqueue.packets 12) 5 in
  let relays =
    List.init 3 (fun i ->
        Tor_model.Relay_info.make ~nickname:(Printf.sprintf "r%d" i) ~node:leaves.(i + 1)
          ~bandwidth:(Engine.Units.Rate.mbit 10) ~latency:(Engine.Time.ms 5) ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:circ ~client:leaves.(0) ~relays ~server:leaves.(4)
  in
  let node_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then bts.(i) else find (i + 1) in
    find 0
  in
  let d =
    Backtap.Transfer.deploy ~node_of ~circuit ~bytes:(Engine.Units.kib 100)
      ~strategy:Circuitstart.Controller.Circuit_start ()
  in
  Backtap.Transfer.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 120);
  Alcotest.(check bool) "complete despite loss" true (Backtap.Transfer.complete d);
  Alcotest.(check int) "all bytes" (Engine.Units.kib 100)
    (Tor_model.Stream.Sink.received_bytes (Backtap.Transfer.sink d))

let () =
  Alcotest.run "backtap"
    [
      ( "wire",
        [
          Alcotest.test_case "sizes" `Quick test_wire_sizes;
          Alcotest.test_case "printer" `Quick test_wire_printer;
        ] );
      ( "node",
        [
          Alcotest.test_case "dispatch" `Quick test_node_dispatch;
          Alcotest.test_case "orphans" `Quick test_node_orphans;
          Alcotest.test_case "double register" `Quick test_node_double_register;
        ] );
      ( "hop_sender",
        [
          Alcotest.test_case "window gating" `Quick test_hop_sender_window_gating;
          Alcotest.test_case "ack at wire departure" `Quick test_hop_sender_ack_at_wire;
          Alcotest.test_case "retransmission" `Quick test_hop_sender_retransmission;
          Alcotest.test_case "spurious feedback" `Quick test_hop_sender_spurious_feedback;
          Alcotest.test_case "backoff and trip" `Quick test_hop_sender_backoff_and_trip;
          Alcotest.test_case "karn's rule" `Quick test_hop_sender_karn_rule;
          Alcotest.test_case "stale transmit after recycle" `Quick
            test_hop_sender_stale_transmit_after_recycle;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "completes" `Quick test_transfer_completes;
          Alcotest.test_case "double start" `Quick test_transfer_start_twice;
          Alcotest.test_case "senders exposed" `Quick test_transfer_senders_exposed;
          Alcotest.test_case "trace recorded" `Quick test_transfer_trace_recorded;
          Alcotest.test_case "on_complete once" `Quick test_transfer_on_complete_fires_once;
          Alcotest.test_case "resume offset" `Quick test_transfer_resume_offset;
          Alcotest.test_case "offset validation" `Quick test_transfer_offset_validation;
          Alcotest.test_case "fail and complete exclusive" `Quick
            test_transfer_callbacks_exclusive;
          Alcotest.test_case "cell latency" `Quick test_transfer_cell_latency;
          Alcotest.test_case "multi-stream" `Quick test_multi_stream_transfer;
          Alcotest.test_case "multi-stream validation" `Quick
            test_multi_stream_validation;
          Alcotest.test_case "teardown" `Quick test_transfer_teardown;
          Alcotest.test_case "completes with loss" `Quick test_transfer_with_loss;
        ] );
    ]

(* Golden-trace snapshots: one fault run, one recovery run and one cwnd
   trace, committed as CSV fixtures under [test/golden/].  The check is
   byte-identity — any drift in event ordering, timestamps or the CSV
   shape surfaces as a diff against a committed file, which is exactly
   the regression signal a deterministic simulator owes its users.

   To regenerate after a deliberate behaviour change:

     CIRCUITSTART_UPDATE_GOLDEN=test/golden dune exec test/test_golden.exe

   The variable names the source directory to rewrite; commit the
   resulting diff alongside the change that caused it. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let fault_run () =
  Workload.Fault_experiment.run ~seed:Test_util.golden_seed
    Test_util.golden_fault_config

let recovery_run () =
  Workload.Recovery_experiment.run ~seed:Test_util.golden_seed
    Test_util.golden_recovery_config

let trace_run config () =
  Workload.Trace_experiment.run ~seed:Test_util.golden_seed config

let trace_fixture config () =
  Test_util.cwnd_csv (trace_run config ()).Workload.Trace_experiment.source_cwnd

let fixtures =
  [
    ( "faults_events.csv",
      fun () ->
        Test_util.events_csv (fault_run ()).Workload.Fault_experiment.events );
    ( "recovery_events.csv",
      fun () ->
        Test_util.events_csv
          (recovery_run ()).Workload.Recovery_experiment.events );
    (* One cwnd trace per startup strategy over the same seeded world, so
       a behaviour change in one controller diffs exactly one fixture. *)
    ("trace_cwnd.csv", trace_fixture Test_util.golden_trace_config);
    ( "trace_cwnd_slowstart.csv",
      trace_fixture Test_util.golden_trace_config_slowstart );
    ( "trace_cwnd_predictive.csv",
      trace_fixture Test_util.golden_trace_config_predictive );
  ]

let update_dir = Sys.getenv_opt "CIRCUITSTART_UPDATE_GOLDEN"

let test_fixture (name, render) () =
  let got = render () in
  match update_dir with
  | Some dir ->
      let path = Filename.concat dir name in
      write_file path got;
      Printf.printf "updated %s (%d bytes)\n%!" path (String.length got)
  | None ->
      (* dune runs the test in its build directory; the (deps) clause of
         test/dune copies the fixtures next to the executable. *)
      let want = read_file (Filename.concat "golden" name) in
      Alcotest.(check string) (name ^ " is byte-identical") want got

(* The committed CSV must also parse back into the exact events it was
   rendered from — [events_of_csv] inverts [events_to_csv] at full
   nanosecond resolution, so replaying a fixture is lossless. *)
let test_events_round_trip run project () =
  let events = project (run ()) in
  Alcotest.(check bool) "events survive the CSV round trip" true
    (Engine.Trace.events_of_csv (Test_util.events_csv events) = events);
  Alcotest.(check bool) "the run actually logged events" true (events <> [])

let () =
  Alcotest.run "golden"
    [
      ( "fixtures",
        List.map
          (fun (name, render) ->
            Alcotest.test_case name `Slow (test_fixture (name, render)))
          fixtures );
      ( "round_trip",
        [
          Alcotest.test_case "fault events" `Slow
            (test_events_round_trip fault_run (fun r ->
                 r.Workload.Fault_experiment.events));
          Alcotest.test_case "recovery events" `Slow
            (test_events_round_trip recovery_run (fun r ->
                 r.Workload.Recovery_experiment.events));
        ] );
    ]

(* Tests for the churn subsystem: directory epochs and incarnations,
   session behaviour against busy / draining / departed relays, the
   packet-level churn driver, the round-level churn schedule in the
   network experiment, and the churn oracles in the check harness
   (including the guard-flip acceptance test). *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* A tiny packet-level world: [relays] all-position relays on a star,
   plus a client and a server endpoint. *)

let make_world ?(relays = 5) () =
  let sim = Engine.Sim.create () in
  let b = Workload.Tor_net.builder sim () in
  List.iter (Workload.Tor_net.add_relay b)
    (List.init relays (fun i ->
         {
           Workload.Relay_gen.nickname = Printf.sprintf "relay%d" i;
           bandwidth = Engine.Units.Rate.mbit 6;
           latency = Engine.Time.ms 10;
           flags =
             [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
               Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ];
         }));
  let endpoint name =
    Workload.Tor_net.add_endpoint b ~name ~rate:(Engine.Units.Rate.mbit 100)
      ~delay:(Engine.Time.ms 10)
  in
  let client = endpoint "client" in
  let server = endpoint "server" in
  let net = Workload.Tor_net.finalize b in
  (sim, net, client, server)

let relay_nodes net =
  List.map
    (fun (r : Tor_model.Relay_info.t) -> r.node)
    (Tor_model.Directory.relays (Workload.Tor_net.directory net))

(* ------------------------------------------------------------------ *)
(* Directory epochs and incarnations *)

let test_epoch_snapshot_lags_live_population () =
  let _sim, net, _, _ = make_world ~relays:4 () in
  let dir = Workload.Tor_net.directory net in
  let victim = List.hd (relay_nodes net) in
  Alcotest.(check int) "epoch starts at 0" 0 (Tor_model.Directory.epoch dir);
  Alcotest.(check int) "bootstrap view has all" 4
    (List.length (Tor_model.Directory.snapshot_relays dir));
  (* Before any epoch: live view doubles as snapshot, and a down relay
     is still listed — status never filters the selectable view. *)
  Tor_model.Directory.mark_down dir victim;
  Alcotest.(check int) "down relay still in pre-epoch view" 4
    (List.length (Tor_model.Directory.snapshot_relays dir));
  Tor_model.Directory.advance_epoch dir;
  Alcotest.(check int) "epoch advanced" 1 (Tor_model.Directory.epoch dir);
  Alcotest.(check int) "down relay dropped at the boundary" 3
    (List.length (Tor_model.Directory.snapshot_relays dir));
  (* Coming back up: invisible until the next boundary. *)
  Tor_model.Directory.mark_up dir victim;
  Alcotest.(check int) "restart invisible until next epoch" 3
    (List.length (Tor_model.Directory.snapshot_relays dir));
  Tor_model.Directory.advance_epoch dir;
  Alcotest.(check int) "restart visible after the boundary" 4
    (List.length (Tor_model.Directory.snapshot_relays dir))

let test_draining_stays_in_snapshot () =
  let _sim, net, _, _ = make_world ~relays:4 () in
  let dir = Workload.Tor_net.directory net in
  let victim = List.hd (relay_nodes net) in
  Tor_model.Directory.mark_draining dir victim;
  Tor_model.Directory.advance_epoch dir;
  (* A draining relay is still listed in the consensus. *)
  Alcotest.(check int) "draining relay still listed" 4
    (List.length (Tor_model.Directory.snapshot_relays dir));
  Tor_model.Directory.mark_down dir victim;
  Tor_model.Directory.advance_epoch dir;
  Alcotest.(check int) "gone after the drain completes" 3
    (List.length (Tor_model.Directory.snapshot_relays dir))

let test_join_waits_for_next_epoch () =
  let _sim, net, _, _ = make_world ~relays:4 () in
  let dir = Workload.Tor_net.directory net in
  Tor_model.Directory.advance_epoch dir;
  let existing = List.hd (relay_nodes net) in
  let joiner =
    Tor_model.Relay_info.make ~nickname:"joiner" ~node:existing
      ~bandwidth:(Engine.Units.Rate.mbit 6) ~latency:(Engine.Time.ms 10) ()
  in
  (* [join] is invisible until a consensus lists it; [add] (bootstrap)
     extends the standing snapshot immediately. *)
  Tor_model.Directory.join dir joiner;
  Alcotest.(check int) "join invisible pre-boundary" 4
    (List.length (Tor_model.Directory.snapshot_relays dir));
  Tor_model.Directory.advance_epoch dir;
  Alcotest.(check int) "join visible post-boundary" 5
    (List.length (Tor_model.Directory.snapshot_relays dir));
  Tor_model.Directory.add dir joiner;
  Alcotest.(check int) "add visible immediately" 6
    (List.length (Tor_model.Directory.snapshot_relays dir))

let test_incarnation_bumps_only_on_return_from_down () =
  let _sim, net, _, _ = make_world ~relays:4 () in
  let dir = Workload.Tor_net.directory net in
  let victim = List.hd (relay_nodes net) in
  Alcotest.(check int) "starts at 0" 0
    (Tor_model.Directory.incarnation dir victim);
  Tor_model.Directory.mark_up dir victim;
  Alcotest.(check int) "up -> up: no bump" 0
    (Tor_model.Directory.incarnation dir victim);
  Tor_model.Directory.mark_draining dir victim;
  Tor_model.Directory.mark_up dir victim;
  Alcotest.(check int) "draining -> up: no bump (never died)" 0
    (Tor_model.Directory.incarnation dir victim);
  Tor_model.Directory.mark_down dir victim;
  Tor_model.Directory.mark_up dir victim;
  Alcotest.(check int) "down -> up: bump" 1
    (Tor_model.Directory.incarnation dir victim);
  Tor_model.Directory.mark_down dir victim;
  Tor_model.Directory.mark_up dir victim;
  Alcotest.(check int) "each restart bumps" 2
    (Tor_model.Directory.incarnation dir victim)

(* ------------------------------------------------------------------ *)
(* Session vs busy / draining / departed relays *)

let deploy_of net ~bytes : Tor_model.Session.deploy =
 fun ~circuit ~offset ~on_complete ~on_fail ->
  let d =
    Backtap.Transfer.deploy
      ~node_of:(Workload.Tor_net.backtap_node net)
      ~circuit ~bytes ~strategy:Circuitstart.Controller.Circuit_start ~offset
      ~on_complete
      ~on_fail:(fun at -> on_fail ~failed_hop:None at)
      ()
  in
  {
    Tor_model.Session.start = (fun () -> Backtap.Transfer.start d);
    delivered = (fun () -> Backtap.Transfer.delivered_bytes d);
    teardown = (fun () -> Backtap.Transfer.teardown d);
  }

(* One session run against a world prepared by [prepare], which
   receives the net and the victim relay's node and control handle.
   Returns (session, victim). *)
let session_run ~seed ~prepare =
  let sim, net, client, server = make_world ~relays:5 () in
  let victim = List.hd (relay_nodes net) in
  prepare net victim (Workload.Tor_net.relay_ctl net victim);
  let session =
    Tor_model.Session.create
      ~sb:(Workload.Tor_net.switchboard net client)
      ~directory:(Workload.Tor_net.directory net)
      ~ids:(Workload.Tor_net.circuit_ids net)
      ~server ~rng:(Engine.Rng.create seed) ~hops:3
      ~deploy:(deploy_of net ~bytes:(Engine.Units.kib 16))
      ~max_rebuilds:8
      ~on_outcome:(fun _ -> Engine.Sim.stop sim)
      ()
  in
  Tor_model.Session.start session;
  Engine.Sim.run sim ~until:(Engine.Time.s 120);
  (session, victim)

let completed session =
  match Tor_model.Session.outcome session with
  | Some (Tor_model.Session.Completed _) -> true
  | _ -> false

(* Hunt the seed space for a run where [interesting] fires — the draw
   is deterministic per seed, so the hunt is too. *)
let hunt ~prepare ~interesting =
  let rec go seed =
    if seed > 50 then None
    else
      let session, victim = session_run ~seed ~prepare in
      if interesting session then Some (session, victim) else go (seed + 1)
  in
  go 1

let test_draining_refusal_excludes_nobody () =
  match
    hunt
      ~prepare:(fun _net _victim ctl -> Tor_model.Relay_ctl.begin_drain ctl)
      ~interesting:(fun s -> Tor_model.Session.drain_refused_builds s > 0)
  with
  | None -> Alcotest.fail "no seed routed a build through the draining relay"
  | Some (session, _) ->
      Alcotest.(check bool) "completed around the draining relay" true
        (completed session);
      (* Draining is not suspected-crashed: nothing is excluded, the
         relay stays selectable for its post-restart life. *)
      Alcotest.(check int) "nothing excluded" 0
        (List.length (Tor_model.Session.excluded session));
      Alcotest.(check int) "no busy refusals conflated" 0
        (Tor_model.Session.refused_builds session)

let test_busy_refusal_excludes_nobody () =
  match
    hunt
      ~prepare:(fun net victim _ctl ->
        Tor_model.Switchboard.set_budget
          (Workload.Tor_net.switchboard net victim)
          {
            Tor_model.Switchboard.max_circuits = Some 0;
            max_queued_bytes = None;
          })
      ~interesting:(fun s -> Tor_model.Session.refused_builds s > 0)
  with
  | None -> Alcotest.fail "no seed routed a build through the budgeted relay"
  | Some (session, _) ->
      Alcotest.(check bool) "completed around the busy relay" true
        (completed session);
      Alcotest.(check int) "nothing excluded" 0
        (List.length (Tor_model.Session.excluded session));
      Alcotest.(check int) "no drain refusals conflated" 0
        (Tor_model.Session.drain_refused_builds session)

(* One world where the victim has cleanly departed (drain begun and
   finished, directory live view knows) before the session starts: the
   pre-epoch snapshot still lists the relay, so builds race into a
   typed GONE.  Hunts the seed space until a run actually draws the
   departed relay; returns the run's world so callers can restart the
   victim afterwards. *)
let gone_run () =
  let rec go seed =
    if seed > 50 then
      Alcotest.fail "no seed routed a build through the departed relay"
    else begin
      let sim, net, client, server = make_world ~relays:5 () in
      let dir = Workload.Tor_net.directory net in
      let victim = List.hd (relay_nodes net) in
      let ctl = Workload.Tor_net.relay_ctl net victim in
      Tor_model.Relay_ctl.begin_drain ctl;
      Tor_model.Relay_ctl.finish_drain ctl;
      Tor_model.Directory.mark_down dir victim;
      let session =
        Tor_model.Session.create
          ~sb:(Workload.Tor_net.switchboard net client)
          ~directory:dir
          ~ids:(Workload.Tor_net.circuit_ids net)
          ~server ~rng:(Engine.Rng.create seed) ~hops:3
          ~deploy:(deploy_of net ~bytes:(Engine.Units.kib 16))
          ~max_rebuilds:8
          ~on_outcome:(fun _ -> Engine.Sim.stop sim)
          ()
      in
      Tor_model.Session.start session;
      Engine.Sim.run sim ~until:(Engine.Time.s 120);
      if Tor_model.Session.gone_builds session > 0 then
        (session, victim, ctl, dir)
      else go (seed + 1)
    end
  in
  go 1

let test_gone_excludes_until_restart () =
  let session, victim, _ctl, _dir = gone_run () in
  Alcotest.(check bool) "completed around the departed relay" true
    (completed session);
  (* GONE excludes — exactly the departed relay, nobody else. *)
  match Tor_model.Session.excluded session with
  | [ node ] ->
      Alcotest.(check bool) "exactly the departed relay excluded" true
        (Netsim.Node_id.equal node victim)
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected 1 exclusion, got %d" (List.length other))

let test_restart_forgives_exclusion () =
  let session, victim, ctl, dir = gone_run () in
  Alcotest.(check int) "departed relay excluded while down" 1
    (List.length (Tor_model.Session.excluded session));
  (* The relay restarts: switchboard state cleared, directory marks it
     up, incarnation bumps — and the grudge is forgiven. *)
  Tor_model.Relay_ctl.restart ctl;
  Tor_model.Directory.mark_up dir victim;
  Alcotest.(check int) "exclusion forgiven after restart" 0
    (List.length (Tor_model.Session.excluded session))

(* ------------------------------------------------------------------ *)
(* The packet-level churn driver *)

let driver_config =
  {
    Tor_model.Churn_driver.leave_rate = 0.3;
    join_rate = 0.4;
    crash_fraction = 0.5;
    drain_grace = Engine.Time.s 1;
    epoch_period = Engine.Time.s 2;
    tick = Engine.Time.ms 500;
    min_up = 3;
    horizon = Engine.Time.s 30;
  }

let drive ~seed config =
  let _sim, net, _, _ = make_world ~relays:8 () in
  let sim = Workload.Tor_net.sim net in
  let dir = Workload.Tor_net.directory net in
  let controlled =
    List.map
      (fun (r : Tor_model.Relay_info.t) ->
        (r, Workload.Tor_net.relay_ctl net r.node))
      (Tor_model.Directory.relays dir)
  in
  let driver =
    Tor_model.Churn_driver.create ~sim ~rng:(Engine.Rng.create seed)
      ~directory:dir ~relays:controlled ~config ()
  in
  Tor_model.Churn_driver.start driver;
  Engine.Sim.run sim;
  let up =
    List.length
      (List.filter
         (fun (r : Tor_model.Relay_info.t) ->
           Tor_model.Directory.status dir r.node = Tor_model.Directory.Up)
         (Tor_model.Directory.relays dir))
  in
  ( Tor_model.Churn_driver.departs driver,
    Tor_model.Churn_driver.crashes driver,
    Tor_model.Churn_driver.drains_completed driver,
    Tor_model.Churn_driver.restarts driver,
    Tor_model.Directory.epoch dir,
    up )

let test_driver_schedule_runs_and_is_deterministic () =
  let (departs, crashes, drains, restarts, epochs, up) as a =
    drive ~seed:5 driver_config
  in
  Alcotest.(check bool)
    (Printf.sprintf "departures happen (%d)" departs)
    true (departs > 0);
  Alcotest.(check bool) "crash/drain split" true (crashes + drains <= departs);
  Alcotest.(check bool)
    (Printf.sprintf "restarts happen (%d)" restarts)
    true (restarts > 0);
  Alcotest.(check bool)
    (Printf.sprintf "epochs advance (%d)" epochs)
    true (epochs >= 10);
  (* The min-up floor holds at the end (and, by construction, at every
     departure decision along the way). *)
  Alcotest.(check bool)
    (Printf.sprintf "min_up floor holds (%d up)" up)
    true (up >= driver_config.Tor_model.Churn_driver.min_up);
  let b = drive ~seed:5 driver_config in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  let c = drive ~seed:6 driver_config in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

let test_driver_validates_config () =
  let bad f =
    let _sim, net, _, _ = make_world ~relays:4 () in
    let sim = Workload.Tor_net.sim net in
    match
      Tor_model.Churn_driver.create ~sim ~rng:(Engine.Rng.create 1)
        ~directory:(Workload.Tor_net.directory net)
        ~relays:[] ~config:(f driver_config) ()
    with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative rate rejected" true
    (bad (fun c -> { c with Tor_model.Churn_driver.leave_rate = -0.1 }));
  Alcotest.(check bool) "crash fraction > 1 rejected" true
    (bad (fun c -> { c with Tor_model.Churn_driver.crash_fraction = 1.5 }));
  Alcotest.(check bool) "zero tick rejected" true
    (bad (fun c -> { c with Tor_model.Churn_driver.tick = Engine.Time.zero }))

(* ------------------------------------------------------------------ *)
(* Round-level churn in the network experiment *)

let churny_config =
  {
    Workload.Network_experiment.default_config with
    Workload.Network_experiment.relays = 30;
    slots = 120;
    target_lifetimes = 1_500;
    mean_think = Engine.Time.ms 50;
    leave_hazard = 0.05;
    join_hazard = 0.2;
    crash_fraction = 0.5;
    drain_grace = Engine.Time.ms 1_000;
    epoch_period = Engine.Time.ms 2_000;
    churn_tick = Engine.Time.ms 250;
    spare_relays = 3;
  }

let test_network_churn_counters_live () =
  let r = Workload.Network_experiment.run ~seed:11 churny_config in
  Alcotest.(check int) "goal met" 1_500 r.completed;
  Alcotest.(check bool)
    (Printf.sprintf "departures (%d)" r.churn_departs)
    true (r.churn_departs > 0);
  Alcotest.(check bool)
    (Printf.sprintf "epochs (%d)" r.churn_epochs)
    true (r.churn_epochs > 0);
  Alcotest.(check bool)
    (Printf.sprintf "kills (%d)" r.churn_kills)
    true (r.churn_kills > 0);
  Alcotest.(check bool)
    (Printf.sprintf "kills resumed (%d/%d)" r.resumed r.churn_kills)
    true (r.resumed > 0 && r.resumed <= r.churn_kills);
  (* The oracles' counters: a healthy run never extends through a
     departed relay and never leaves departure residue. *)
  Alcotest.(check int) "no rounds through down relays" 0 r.rounds_through_down;
  Alcotest.(check int) "no departure residue" 0 r.depart_residue;
  Alcotest.(check int) "no orphaned circuits" 0 r.orphaned_circuits;
  Alcotest.(check int) "no orphaned cells" 0 r.orphaned_cells

let test_network_zero_hazard_is_churn_free () =
  let r =
    Workload.Network_experiment.run ~seed:11
      { churny_config with leave_hazard = 0.; join_hazard = 0.; spare_relays = 0 }
  in
  Alcotest.(check int) "no departs" 0 r.churn_departs;
  Alcotest.(check int) "no epochs" 0 r.churn_epochs;
  Alcotest.(check int) "no kills" 0 r.churn_kills;
  Alcotest.(check int) "no gone draws" 0 r.gone_draws

let test_network_churn_deterministic_across_jobs () =
  Test_util.check_jobs_deterministic (fun jobs ->
      Workload.Network_experiment.run_many ~jobs
        [ (11, churny_config); (12, churny_config) ])

let test_network_churn_paired_strategies () =
  let c =
    Workload.Network_experiment.compare_strategies ~seed:11 churny_config
  in
  Alcotest.(check int) "cs goal met" 1_500 c.circuit_start.completed;
  Alcotest.(check int) "ss goal met" 1_500 c.slow_start.completed;
  (* The schedule is seeded identically per strategy run. *)
  Alcotest.(check bool) "both runs churned" true
    (c.circuit_start.churn_departs > 0 && c.slow_start.churn_departs > 0)

(* ------------------------------------------------------------------ *)
(* Churn scenarios in the check harness *)

let selection = Check.Oracle.all
let check sc = Check.Harness.check_scenario ~selection sc

let churn_prone =
  {
    Check.Scenario.kind = Check.Scenario.Churn;
    seed = 5;
    relays = 10;
    position = 1;
    bytes = 8 * 1024;
    loss_ppm = 0;
    burst = false;
    outage_ms = None;
    crash_ms = None;
    queue_cells = 0;
    strategy = Check.Scenario.Cs;
    bottleneck_kbps = 1000;
    fast_kbps = 2000;
    endpoint_kbps = 100_000;
    max_rebuilds = 3;
    sessions = 12;
    oload_circuits = 0;
    oload_kib = 0;
    arrival_ms = 20;
    lifet = 60;
    leave_pm = 300_000;
    join_pm = 400_000;
    crashpct = 50;
    grace_ms = 200;
    epoch_ms = 500;
    spares = 2;
    shards = 0;
  }

let test_churn_scenario_passes_clean () =
  match check churn_prone with
  | Ok _ -> ()
  | Error reason -> Alcotest.fail ("clean churn scenario failed: " ^ reason)

let test_churn_line_round_trips () =
  let line = Check.Scenario.to_string churn_prone in
  match Check.Scenario.of_string line with
  | Ok sc ->
      Alcotest.(check bool) "round trip" true
        (Check.Scenario.equal sc churn_prone)
  | Error e -> Alcotest.fail e

let test_old_lines_default_to_no_churn () =
  (* A pre-churn reproducer line: no lpm/jpm/crashpct/grace/epochms/
     spares keys.  It must parse with inert zeros. *)
  let line =
    "k=n seed=7 relays=8 pos=1 bytes=8192 loss=0 burst=0 odown=-1 oup=-1 \
     crash=-1 queue=0 strat=cs bn=1000 fast=2000 ep=100000 rebuilds=3 sess=6 \
     ocirc=0 okib=0 arr=20 lifet=30"
  in
  match Check.Scenario.of_string line with
  | Ok sc ->
      Alcotest.(check int) "leave_pm defaults 0" 0 sc.Check.Scenario.leave_pm;
      Alcotest.(check int) "spares default 0" 0 sc.Check.Scenario.spares
  | Error e -> Alcotest.fail e

let test_kind_of_string () =
  Alcotest.(check bool) "churn accepted" true
    (Check.Scenario.kind_of_string "churn" = Some Check.Scenario.Churn);
  Alcotest.(check bool) "code accepted" true
    (Check.Scenario.kind_of_string "c" = Some Check.Scenario.Churn);
  Alcotest.(check bool) "garbage rejected" true
    (Check.Scenario.kind_of_string "bogus" = None)

let test_only_kind_generates_that_kind () =
  for index = 0 to 19 do
    let sc =
      Check.Scenario.generate ~only:Check.Scenario.Churn ~seed:42 ~index ()
    in
    Alcotest.(check bool) "kind pinned" true
      (sc.Check.Scenario.kind = Check.Scenario.Churn);
    Alcotest.(check bool) "churn knobs live" true (sc.Check.Scenario.leave_pm > 0)
  done

let find_failing_churn () =
  if Result.is_error (check churn_prone) then Some churn_prone
  else
    let rec go index =
      if index >= 40 then None
      else
        let sc =
          Check.Scenario.generate ~only:Check.Scenario.Churn ~seed:42 ~index ()
        in
        if Result.is_error (check sc) then Some sc else go (index + 1)
    in
    go 0

(* The acceptance criterion: disabling the departure kill sweep
   ([unsafe_disable_churn_kill] keeps the schedule but stops tearing
   down the victims' circuits) must make the churn oracles fail, and
   the failure must shrink to a replayable one-line reproducer. *)
let test_disabled_churn_kill_is_caught () =
  Workload.Network_experiment.unsafe_disable_churn_kill := true;
  let line =
    Fun.protect
      ~finally:(fun () ->
        Workload.Network_experiment.unsafe_disable_churn_kill := false)
      (fun () ->
        match find_failing_churn () with
        | None ->
            Alcotest.fail "no scenario tripped the oracles with the kill \
                           sweep off"
        | Some sc ->
            (match check sc with
            | Ok _ -> Alcotest.fail "scenario stopped failing on re-run"
            | Error reason ->
                Alcotest.(check bool)
                  (Printf.sprintf "churn/drain oracle named in: %s" reason)
                  true
                  (contains ~needle:"churn" reason
                  || contains ~needle:"drain" reason
                  || contains ~needle:"departed" reason));
            (* The failure shrinks to a line that still fails on replay. *)
            let shrunk = Check.Harness.shrink ~selection sc in
            let line = Check.Scenario.to_string shrunk in
            let buf = Buffer.create 256 in
            let ppf = Format.formatter_of_buffer buf in
            (match Check.Harness.replay ~selection line ppf with
            | Ok false -> ()
            | Ok true -> Alcotest.fail "shrunk reproducer passed on replay"
            | Error e -> Alcotest.fail e);
            line)
  in
  (* Sweep restored: the very same reproducer line is law-abiding. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  match Check.Harness.replay ~selection line ppf with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "reproducer still fails with the sweep restored"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* torsim CLI: numeric-flag validation (exercised as a subprocess, so
   the friendly error + nonzero exit is what a user actually gets) *)

(* Under `dune runtest` the cwd is _build/default/test; under
   `dune exec test/test_churn.exe` it is the project root.  A missing
   binary must be a loud failure, not a vacuous nonzero exit. *)
let torsim_exe =
  match
    List.find_opt Sys.file_exists
      [ "../bin/torsim.exe"; "_build/default/bin/torsim.exe" ]
  with
  | Some p -> p
  | None -> Alcotest.fail "torsim.exe not built"

let torsim args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" torsim_exe args)

let test_cli_rejects_bad_numeric_flags () =
  List.iter
    (fun args ->
      Alcotest.(check bool)
        (Printf.sprintf "torsim %s exits nonzero" args)
        true
        (torsim args <> 0))
    [
      "network --relays 0";
      "network --relays=-1";
      "network --budget-kib=-3";
      "network --lifetimes=-5";
      "network --think-ms 0";
      "overload --kib 0";
      "overload --max-circuits=-2";
      "overload --arrival-ms 0";
      "churn-scale --crash-fraction 1.5";
      "churn-scale --epoch-ms 0";
      "churn-scale --grace-ms=-1";
      "churn-scale --leave-rate=-0.5";
      "check --kind bogus";
    ]

let test_cli_churn_scale_runs () =
  Alcotest.(check int) "tiny churn-scale run exits 0" 0
    (torsim
       "churn-scale --relays 10 --circuits 8 --lifetimes 20 --think-ms 20 \
        --seed 3")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "churn"
    [
      ( "directory",
        [
          Alcotest.test_case "epoch snapshot lags live" `Quick
            test_epoch_snapshot_lags_live_population;
          Alcotest.test_case "draining stays listed" `Quick
            test_draining_stays_in_snapshot;
          Alcotest.test_case "join waits for epoch" `Quick
            test_join_waits_for_next_epoch;
          Alcotest.test_case "incarnation bumps on restart" `Quick
            test_incarnation_bumps_only_on_return_from_down;
        ] );
      ( "session",
        [
          Alcotest.test_case "draining refusal excludes nobody" `Quick
            test_draining_refusal_excludes_nobody;
          Alcotest.test_case "busy refusal excludes nobody" `Quick
            test_busy_refusal_excludes_nobody;
          Alcotest.test_case "gone excludes the departed relay" `Quick
            test_gone_excludes_until_restart;
          Alcotest.test_case "restart forgives the exclusion" `Quick
            test_restart_forgives_exclusion;
        ] );
      ( "driver",
        [
          Alcotest.test_case "schedule runs deterministically" `Quick
            test_driver_schedule_runs_and_is_deterministic;
          Alcotest.test_case "config validated" `Quick
            test_driver_validates_config;
        ] );
      ( "network",
        [
          Alcotest.test_case "churn counters live" `Quick
            test_network_churn_counters_live;
          Alcotest.test_case "zero hazard is churn-free" `Quick
            test_network_zero_hazard_is_churn_free;
          Alcotest.test_case "jobs deterministic" `Quick
            test_network_churn_deterministic_across_jobs;
          Alcotest.test_case "paired strategies" `Quick
            test_network_churn_paired_strategies;
        ] );
      ( "check",
        [
          Alcotest.test_case "clean scenario passes" `Quick
            test_churn_scenario_passes_clean;
          Alcotest.test_case "line round-trips" `Quick
            test_churn_line_round_trips;
          Alcotest.test_case "old lines default churn-free" `Quick
            test_old_lines_default_to_no_churn;
          Alcotest.test_case "kind_of_string" `Quick test_kind_of_string;
          Alcotest.test_case "--kind pins generation" `Quick
            test_only_kind_generates_that_kind;
          Alcotest.test_case "disabled kill sweep is caught" `Quick
            test_disabled_churn_kill_is_caught;
        ] );
      ( "cli",
        [
          Alcotest.test_case "bad numeric flags rejected" `Quick
            test_cli_rejects_bad_numeric_flags;
          Alcotest.test_case "churn-scale smoke" `Quick
            test_cli_churn_scale_runs;
        ] );
    ]

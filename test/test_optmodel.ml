(* Tests for the analytic optimal-window model. *)

let time = Alcotest.testable Engine.Time.pp Engine.Time.equal

let spec mbit delay_ms =
  { Optmodel.Path_model.rate = Engine.Units.Rate.mbit mbit;
    access_delay = Engine.Time.ms delay_ms }

let homogeneous = [ spec 100 10; spec 3 10; spec 50 10; spec 50 10; spec 100 10 ]

let test_path_model_basics () =
  let p = Optmodel.Path_model.of_specs homogeneous in
  Alcotest.(check int) "nodes" 5 (Optmodel.Path_model.node_count p);
  Alcotest.(check int) "hops" 4 (Optmodel.Path_model.hop_count p);
  Alcotest.(check int) "rates" 5 (List.length (Optmodel.Path_model.rates p));
  Alcotest.check_raises "too short" (Invalid_argument "Path_model.of_specs: need at least two nodes")
    (fun () -> ignore (Optmodel.Path_model.of_specs [ spec 1 1 ]));
  Alcotest.check_raises "spec out of range" (Invalid_argument "Path_model.spec: out of range")
    (fun () -> ignore (Optmodel.Path_model.spec p 5))

let test_bottleneck () =
  let p = Optmodel.Path_model.of_specs homogeneous in
  Alcotest.(check int) "bottleneck rate" 3_000_000
    (Engine.Units.Rate.to_bps (Optmodel.Optimal_window.bottleneck_rate p));
  Alcotest.(check int) "bottleneck position" 1
    (Optmodel.Optimal_window.bottleneck_position p)

let test_hop_rtt_out_of_range () =
  let p = Optmodel.Path_model.of_specs [ spec 8 10; spec 8 10 ] in
  Alcotest.check time "hand-computed R_0"
    (Engine.Time.us 41_126)
    (Optmodel.Optimal_window.hop_feedback_rtt p 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Optimal_window.hop_feedback_rtt: hop out of range") (fun () ->
      ignore (Optmodel.Optimal_window.hop_feedback_rtt p 1))

let test_custom_sizes () =
  let p = Optmodel.Path_model.of_specs [ spec 8 10; spec 8 10 ] in
  let small = Optmodel.Optimal_window.hop_window_cells ~cell_size:100 ~feedback_size:10 p 0 in
  let big = Optmodel.Optimal_window.hop_window_cells ~cell_size:1000 ~feedback_size:10 p 0 in
  Alcotest.(check bool) "smaller cells, more of them" true (small > big)

let test_propagated_estimate () =
  (* Homogeneous delays: the propagated minimum equals W*_0 up to hop
     asymmetry in rates. *)
  let p = Optmodel.Path_model.of_specs homogeneous in
  let w0 = Optmodel.Optimal_window.source_window_cells p in
  let prop = Optmodel.Optimal_window.propagated_estimate_cells p in
  Alcotest.(check bool) "propagated <= source" true (prop <= w0);
  Alcotest.(check bool) "same ballpark" true (prop >= (w0 * 3) / 4);
  (* Heterogeneous delays: backprop can underestimate (the paper's
     caveat): make a middle hop's loop much shorter. *)
  let hetero = [ spec 100 30; spec 10 30; spec 50 1; spec 50 1; spec 100 30 ] in
  let p2 = Optmodel.Path_model.of_specs hetero in
  Alcotest.(check bool) "underestimates with uneven delays" true
    (Optmodel.Optimal_window.propagated_estimate_cells p2
    < Optmodel.Optimal_window.source_window_cells p2)

(* Reference formulas for a two-node path, computed independently in
   float arithmetic: the hop-0 feedback loop is both propagation delays
   twice, plus one 520 B cell and one 43 B feedback serialization at
   each node; the window is the loop's bandwidth-delay product at the
   bottleneck, in ceil'd cells.  These subsume the old single
   hand-computed example (8 Mbit, 10 ms -> 41.126 ms -> 80 cells). *)

let gen_two_node_path =
  QCheck2.Gen.(
    pair (pair (int_range 1 100) (int_range 1 100))
      (pair (int_range 0 50) (int_range 0 50)))

let reference_rtt_s (m0, m1) (d0, d1) =
  let ser bytes mbit = float_of_int (bytes * 8) /. (float_of_int mbit *. 1e6) in
  (2. *. float_of_int (d0 + d1) /. 1e3)
  +. ser 520 m0 +. ser 520 m1 +. ser 43 m0 +. ser 43 m1

let prop_hop_rtt_matches_closed_form =
  QCheck2.Test.make ~name:"hop_feedback_rtt matches the closed form"
    gen_two_node_path
    (fun ((m0, m1), (d0, d1)) ->
      let p = Optmodel.Path_model.of_specs [ spec m0 d0; spec m1 d1 ] in
      let got =
        Engine.Time.to_sec_f (Optmodel.Optimal_window.hop_feedback_rtt p 0)
      in
      Float.abs (got -. reference_rtt_s (m0, m1) (d0, d1)) < 1e-6)

let prop_window_cells_match_closed_form =
  QCheck2.Test.make ~name:"hop_window_cells matches ceil(BDP / cell)"
    gen_two_node_path
    (fun ((m0, m1), (d0, d1)) ->
      let p = Optmodel.Path_model.of_specs [ spec m0 d0; spec m1 d1 ] in
      let rate_bytes_per_s = float_of_int (Stdlib.min m0 m1) *. 1e6 /. 8. in
      let reference =
        int_of_float
          (Float.ceil (rate_bytes_per_s *. reference_rtt_s (m0, m1) (d0, d1) /. 520.))
      in
      let got = Optmodel.Optimal_window.hop_window_cells p 0 in
      (* One cell of slack: the implementation rounds in integer
         nanoseconds, the reference in float seconds, and the two can
         land on opposite sides of a ceil boundary. *)
      abs (got - reference) <= 1
      && Optmodel.Optimal_window.source_window_cells p = got
      && Optmodel.Optimal_window.source_window_bytes p = got * 520)

let prop_window_monotone_in_rate =
  QCheck2.Test.make ~name:"optimal window grows with bottleneck rate"
    QCheck2.Gen.(pair (int_range 1 40) (int_range 41 100))
    (fun (slow, fast) ->
      let p r = Optmodel.Path_model.of_specs [ spec 100 10; spec r 10; spec 100 10 ] in
      Optmodel.Optimal_window.source_window_cells (p slow)
      <= Optmodel.Optimal_window.source_window_cells (p fast))

let prop_window_monotone_in_delay =
  QCheck2.Test.make ~name:"optimal window grows with access delay"
    QCheck2.Gen.(pair (int_range 1 50) (int_range 51 150))
    (fun (short, long) ->
      let p d = Optmodel.Path_model.of_specs [ spec 10 d; spec 10 d ] in
      Optmodel.Optimal_window.source_window_cells (p short)
      <= Optmodel.Optimal_window.source_window_cells (p long))

let prop_window_at_least_one =
  QCheck2.Test.make ~name:"optimal window is at least one cell"
    QCheck2.Gen.(pair (int_range 1 100) (int_range 0 50))
    (fun (mbit, d) ->
      let p = Optmodel.Path_model.of_specs [ spec mbit d; spec mbit d ] in
      Optmodel.Optimal_window.source_window_cells p >= 1)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_hop_rtt_matches_closed_form; prop_window_cells_match_closed_form;
      prop_window_monotone_in_rate; prop_window_monotone_in_delay;
      prop_window_at_least_one ]

let () =
  Alcotest.run "optmodel"
    [
      ( "model",
        [
          Alcotest.test_case "path model basics" `Quick test_path_model_basics;
          Alcotest.test_case "bottleneck" `Quick test_bottleneck;
          Alcotest.test_case "hop rtt range check" `Quick test_hop_rtt_out_of_range;
          Alcotest.test_case "custom sizes" `Quick test_custom_sizes;
          Alcotest.test_case "propagated estimate" `Quick test_propagated_estimate;
        ] );
      ("properties", qtests);
    ]

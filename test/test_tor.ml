(* Unit tests for the Tor overlay model: cells, onion layering,
   directory, switchboard, control plane, streams and legacy SENDME. *)

let time = Alcotest.testable Engine.Time.pp Engine.Time.equal
let node = Alcotest.testable Netsim.Node_id.pp Netsim.Node_id.equal

(* ------------------------------------------------------------------ *)
(* Circuit ids and cells *)

let test_circuit_id () =
  let g = Tor_model.Circuit_id.generator () in
  Alcotest.(check int) "first" 0 (Tor_model.Circuit_id.to_int (Tor_model.Circuit_id.next g));
  Alcotest.(check int) "second" 1 (Tor_model.Circuit_id.to_int (Tor_model.Circuit_id.next g))

let test_cell_sizes () =
  Alcotest.(check int) "cell size" 512 Tor_model.Cell.size;
  Alcotest.(check int) "payload capacity" 498 Tor_model.Cell.payload_capacity

let test_cell_data_validation () =
  let c = Tor_model.Circuit_id.of_int 0 in
  Alcotest.check_raises "length too big" (Invalid_argument "Cell.data: length out of range")
    (fun () ->
      ignore (Tor_model.Cell.data c ~layers:1 ~stream_id:0 ~seq:0 ~length:499 ~last:false));
  Alcotest.check_raises "zero length" (Invalid_argument "Cell.data: length out of range")
    (fun () ->
      ignore (Tor_model.Cell.data c ~layers:1 ~stream_id:0 ~seq:0 ~length:0 ~last:false));
  Alcotest.check_raises "negative seq" (Invalid_argument "Cell.data: negative seq")
    (fun () ->
      ignore (Tor_model.Cell.data c ~layers:1 ~stream_id:0 ~seq:(-1) ~length:1 ~last:false))

let test_cell_predicates () =
  let c = Tor_model.Circuit_id.of_int 1 in
  let data = Tor_model.Cell.data c ~layers:2 ~stream_id:0 ~seq:0 ~length:10 ~last:false in
  Alcotest.(check bool) "relay" true (Tor_model.Cell.is_relay data);
  Alcotest.(check bool) "create not relay" false
    (Tor_model.Cell.is_relay (Tor_model.Cell.make c Tor_model.Cell.Create));
  Alcotest.(check bool) "relay_cmd" true (Tor_model.Cell.relay_cmd data <> None)

(* ------------------------------------------------------------------ *)
(* Onion layering *)

let test_crypto_wrap_peel () =
  let c = Tor_model.Circuit_id.of_int 0 in
  let cell =
    Tor_model.Crypto_sim.wrap ~hops:3
      (Tor_model.Cell.Relay_data { stream_id = 0; seq = 0; length = 5; last = false })
      c
  in
  Alcotest.(check (option int)) "3 layers" (Some 3) (Tor_model.Crypto_sim.layers cell);
  Alcotest.(check bool) "not exposed" true (Tor_model.Crypto_sim.exposed cell = None);
  let cell = Tor_model.Crypto_sim.peel cell in
  let cell = Tor_model.Crypto_sim.peel cell in
  let cell = Tor_model.Crypto_sim.peel cell in
  Alcotest.(check (option int)) "0 layers" (Some 0) (Tor_model.Crypto_sim.layers cell);
  Alcotest.(check bool) "exposed" true (Tor_model.Crypto_sim.exposed cell <> None);
  Alcotest.check_raises "over-peel" (Invalid_argument "Crypto_sim.peel: no layers left")
    (fun () -> ignore (Tor_model.Crypto_sim.peel cell))

let test_crypto_errors () =
  let c = Tor_model.Circuit_id.of_int 0 in
  Alcotest.check_raises "wrap 0 hops" (Invalid_argument "Crypto_sim.wrap: need at least one hop")
    (fun () ->
      ignore
        (Tor_model.Crypto_sim.wrap ~hops:0 (Tor_model.Cell.Relay_end { stream_id = 0 }) c));
  Alcotest.check_raises "peel control" (Invalid_argument "Crypto_sim.peel: not a RELAY cell")
    (fun () -> ignore (Tor_model.Crypto_sim.peel (Tor_model.Cell.make c Tor_model.Cell.Create)))

let prop_peel_inverse_of_wrap =
  QCheck2.Test.make ~name:"peeling exactly [hops] times exposes the command"
    QCheck2.Gen.(int_range 1 10)
    (fun hops ->
      let c = Tor_model.Circuit_id.of_int 9 in
      let cmd = Tor_model.Cell.Relay_sendme { stream_id = None } in
      let cell = ref (Tor_model.Crypto_sim.wrap ~hops cmd c) in
      for _ = 1 to hops do
        cell := Tor_model.Crypto_sim.peel !cell
      done;
      Tor_model.Crypto_sim.exposed !cell = Some cmd)

(* ------------------------------------------------------------------ *)
(* Relay info and directory *)

let mk_relay ?(flags = [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit ]) ~node ~mbit
    () =
  Tor_model.Relay_info.make
    ~nickname:(Printf.sprintf "r%d" node)
    ~node:(Netsim.Node_id.of_int node)
    ~bandwidth:(Engine.Units.Rate.mbit mbit)
    ~latency:(Engine.Time.ms 10) ~flags ()

let test_relay_flags () =
  let r = mk_relay ~node:0 ~mbit:1 () in
  Alcotest.(check bool) "guard" true (Tor_model.Relay_info.has_flag r Tor_model.Relay_info.Guard);
  Alcotest.(check bool) "fast" false (Tor_model.Relay_info.has_flag r Tor_model.Relay_info.Fast)

let test_directory_select_distinct () =
  let dir = Tor_model.Directory.create () in
  for i = 0 to 9 do
    Tor_model.Directory.add dir (mk_relay ~node:i ~mbit:(i + 1) ())
  done;
  let rng = Engine.Rng.create 11 in
  for _ = 1 to 100 do
    match Tor_model.Directory.select_path dir rng ~hops:3 () with
    | None -> Alcotest.fail "selection failed"
    | Some relays ->
        Alcotest.(check int) "three relays" 3 (List.length relays);
        let nodes =
          List.sort_uniq Netsim.Node_id.compare
            (List.map (fun (r : Tor_model.Relay_info.t) -> r.node) relays)
        in
        Alcotest.(check int) "distinct" 3 (List.length nodes)
  done

let test_directory_flags_honoured () =
  let dir = Tor_model.Directory.create () in
  (* Only node 0 is an exit; nodes 1-4 guard-only. *)
  Tor_model.Directory.add dir
    (mk_relay ~flags:[ Tor_model.Relay_info.Exit ] ~node:0 ~mbit:1 ());
  for i = 1 to 4 do
    Tor_model.Directory.add dir
      (mk_relay ~flags:[ Tor_model.Relay_info.Guard ] ~node:i ~mbit:1 ())
  done;
  let rng = Engine.Rng.create 12 in
  for _ = 1 to 50 do
    match Tor_model.Directory.select_path dir rng ~hops:3 () with
    | None -> Alcotest.fail "selection failed"
    | Some relays ->
        let exit = List.nth relays 2 in
        Alcotest.check node "exit is node 0" (Netsim.Node_id.of_int 0)
          exit.Tor_model.Relay_info.node;
        let guard = List.nth relays 0 in
        Alcotest.(check bool) "guard has Guard flag" true
          (Tor_model.Relay_info.has_flag guard Tor_model.Relay_info.Guard)
  done

let test_directory_bandwidth_bias () =
  let dir = Tor_model.Directory.create () in
  Tor_model.Directory.add dir (mk_relay ~node:0 ~mbit:90 ());
  Tor_model.Directory.add dir (mk_relay ~node:1 ~mbit:10 ());
  Tor_model.Directory.add dir (mk_relay ~node:2 ~mbit:10 ());
  let rng = Engine.Rng.create 13 in
  let fast_first = ref 0 in
  let n = 2000 in
  for _ = 1 to n do
    match Tor_model.Directory.select_path dir rng ~hops:1 () with
    | Some [ r ] when Netsim.Node_id.to_int r.Tor_model.Relay_info.node = 0 ->
        incr fast_first
    | _ -> ()
  done;
  (* Node 0 has ~82% of the weight. *)
  Alcotest.(check bool)
    (Printf.sprintf "fast relay chosen ~82%% (got %d/%d)" !fast_first n)
    true
    (!fast_first > (n * 7 / 10) && !fast_first < (n * 95 / 100))

let test_directory_find_by_node () =
  let dir = Tor_model.Directory.create () in
  Tor_model.Directory.add dir (mk_relay ~node:3 ~mbit:1 ());
  Alcotest.(check bool) "found" true
    (Tor_model.Directory.find_by_node dir (Netsim.Node_id.of_int 3) <> None);
  Alcotest.(check bool) "absent" true
    (Tor_model.Directory.find_by_node dir (Netsim.Node_id.of_int 9) = None)

let test_cell_printer () =
  Tor_model.Cell.register_printer ();
  let c = Tor_model.Circuit_id.of_int 5 in
  let cell = Tor_model.Cell.data c ~layers:2 ~stream_id:1 ~seq:7 ~length:10 ~last:true in
  Alcotest.(check string) "rendering" "c5 RELAY[2] DATA s1 #7 10B last"
    (Format.asprintf "%a" Tor_model.Cell.pp cell);
  Alcotest.(check string) "wire payload rendering" "c5 CREATE"
    (Format.asprintf "%a" Netsim.Payload.pp
       (Tor_model.Cell.Wire (Tor_model.Cell.make c Tor_model.Cell.Create)))

let test_directory_impossible () =
  let dir = Tor_model.Directory.create () in
  Tor_model.Directory.add dir (mk_relay ~flags:[ Tor_model.Relay_info.Guard ] ~node:0 ~mbit:1 ());
  let rng = Engine.Rng.create 14 in
  Alcotest.(check bool) "no exit -> None" true
    (Tor_model.Directory.select_path dir rng ~hops:2 () = None);
  Alcotest.(check bool) "not enough relays -> None" true
    (Tor_model.Directory.select_path dir rng ~hops:3 () = None)

let test_directory_exclude () =
  let dir = Tor_model.Directory.create () in
  for i = 0 to 5 do
    Tor_model.Directory.add dir (mk_relay ~node:i ~mbit:10 ())
  done;
  let rng = Engine.Rng.create 15 in
  let banned = [ Netsim.Node_id.of_int 0; Netsim.Node_id.of_int 1 ] in
  for _ = 1 to 100 do
    match Tor_model.Directory.select_path dir rng ~exclude:banned ~hops:3 () with
    | None -> Alcotest.fail "selection failed despite enough relays"
    | Some relays ->
        List.iter
          (fun (r : Tor_model.Relay_info.t) ->
            Alcotest.(check bool) "excluded relay never chosen" false
              (List.exists (Netsim.Node_id.equal r.node) banned))
          relays
  done;
  (* Excluding everything leaves no path. *)
  let all = List.init 6 Netsim.Node_id.of_int in
  Alcotest.(check bool) "all excluded -> None" true
    (Tor_model.Directory.select_path dir rng ~exclude:all ~hops:1 () = None)

let test_directory_uniform_selection () =
  let dir = Tor_model.Directory.create () in
  (* Node 0 owns ~98% of the bandwidth; uniform selection must ignore
     that and pick it like any other relay. *)
  Tor_model.Directory.add dir (mk_relay ~node:0 ~mbit:500 ());
  for i = 1 to 4 do
    Tor_model.Directory.add dir (mk_relay ~node:i ~mbit:2 ())
  done;
  let count selection seed =
    let rng = Engine.Rng.create seed in
    let hits = ref 0 in
    for _ = 1 to 1000 do
      match Tor_model.Directory.select_path dir rng ~selection ~hops:1 () with
      | Some [ r ] when Netsim.Node_id.to_int r.Tor_model.Relay_info.node = 0 ->
          incr hits
      | _ -> ()
    done;
    !hits
  in
  let weighted = count Tor_model.Directory.Bandwidth_weighted 16 in
  let uniform = count Tor_model.Directory.Uniform 16 in
  Alcotest.(check bool)
    (Printf.sprintf "weighted (%d) favours the fat relay, uniform (%d) does not"
       weighted uniform)
    true
    (weighted > 900 && uniform > 100 && uniform < 350)

let test_selection_strings () =
  List.iter
    (fun sel ->
      Alcotest.(check bool)
        ("selection string round trip: " ^ Tor_model.Directory.selection_to_string sel)
        true
        (Tor_model.Directory.selection_of_string
           (Tor_model.Directory.selection_to_string sel)
        = Some sel))
    [ Tor_model.Directory.Bandwidth_weighted; Tor_model.Directory.Uniform ];
  Alcotest.(check bool) "aliases accepted" true
    (Tor_model.Directory.selection_of_string "bw"
     = Some Tor_model.Directory.Bandwidth_weighted
    && Tor_model.Directory.selection_of_string "random"
       = Some Tor_model.Directory.Uniform);
  Alcotest.(check bool) "unknown rejected" true
    (Tor_model.Directory.selection_of_string "fastest" = None)

(* ------------------------------------------------------------------ *)
(* Circuit *)

let mk_circuit () =
  let relays = List.init 3 (fun i -> mk_relay ~node:(i + 1) ~mbit:5 ()) in
  Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0)
    ~client:(Netsim.Node_id.of_int 0) ~relays ~server:(Netsim.Node_id.of_int 4)

let test_circuit_structure () =
  let c = mk_circuit () in
  Alcotest.(check int) "hop count" 4 (Tor_model.Circuit.hop_count c);
  Alcotest.(check int) "layers" 3 (Tor_model.Circuit.layer_count c);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3; 4 ]
    (List.map Netsim.Node_id.to_int (Tor_model.Circuit.nodes c));
  Alcotest.(check (option int)) "position of middle" (Some 2)
    (Tor_model.Circuit.position c (Netsim.Node_id.of_int 2));
  Alcotest.(check (option node)) "successor" (Some (Netsim.Node_id.of_int 3))
    (Tor_model.Circuit.successor c (Netsim.Node_id.of_int 2));
  Alcotest.(check (option node)) "predecessor" (Some (Netsim.Node_id.of_int 1))
    (Tor_model.Circuit.predecessor c (Netsim.Node_id.of_int 2));
  Alcotest.(check (option node)) "server has no successor" None
    (Tor_model.Circuit.successor c (Netsim.Node_id.of_int 4))

let test_circuit_validation () =
  Alcotest.check_raises "empty relays" (Invalid_argument "Circuit.make: need at least one relay")
    (fun () ->
      ignore
        (Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0)
           ~client:(Netsim.Node_id.of_int 0) ~relays:[] ~server:(Netsim.Node_id.of_int 1)));
  Alcotest.check_raises "duplicate node" (Invalid_argument "Circuit.make: duplicate node in path")
    (fun () ->
      ignore
        (Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0)
           ~client:(Netsim.Node_id.of_int 0)
           ~relays:[ mk_relay ~node:0 ~mbit:1 () ]
           ~server:(Netsim.Node_id.of_int 2)))

(* ------------------------------------------------------------------ *)
(* A small overlay on a star for switchboard / control / sendme tests *)

let mk_overlay n_leaves =
  let sim = Engine.Sim.create () in
  let topo, _, leaves =
    Netsim.Topology.star sim ~hub:"hub"
      ~leaves:
        (List.init n_leaves (fun i ->
             (Printf.sprintf "l%d" i, Engine.Units.Rate.mbit 10, Engine.Time.ms 5)))
      ()
  in
  let net = Netsim.Network.create topo in
  let sbs = List.map (Tor_model.Switchboard.install net) leaves in
  (sim, net, Array.of_list leaves, Array.of_list sbs)

let test_switchboard_dispatch () =
  let sim, _, leaves, sbs = mk_overlay 2 in
  let c0 = Tor_model.Circuit_id.of_int 0 in
  let got = ref [] in
  Tor_model.Switchboard.register_circuit sbs.(1) c0 (fun ~from cell ->
      got := (from, cell) :: !got);
  Tor_model.Switchboard.send_cell sbs.(0) ~dst:leaves.(1)
    (Tor_model.Cell.make c0 Tor_model.Cell.Create);
  Engine.Sim.run sim;
  (match !got with
  | [ (from, cell) ] ->
      Alcotest.check node "from" leaves.(0) from;
      Alcotest.(check bool) "create" true (cell.Tor_model.Cell.command = Tor_model.Cell.Create)
  | _ -> Alcotest.fail "expected one cell");
  Alcotest.check_raises "double register"
    (Invalid_argument "Switchboard.register_circuit: c0 already registered at n2")
    (fun () -> Tor_model.Switchboard.register_circuit sbs.(1) c0 (fun ~from:_ _ -> ()))

let test_switchboard_orphans_and_control () =
  let sim, _, leaves, sbs = mk_overlay 2 in
  let c9 = Tor_model.Circuit_id.of_int 9 in
  Tor_model.Switchboard.send_cell sbs.(0) ~dst:leaves.(1)
    (Tor_model.Cell.make c9 Tor_model.Cell.Destroy);
  Engine.Sim.run sim;
  Alcotest.(check int) "orphan without control" 1
    (Tor_model.Switchboard.orphan_cells sbs.(1));
  let ctl = ref 0 in
  Tor_model.Switchboard.set_control_handler sbs.(1) (fun ~from:_ _ -> incr ctl);
  Tor_model.Switchboard.send_cell sbs.(0) ~dst:leaves.(1)
    (Tor_model.Cell.make c9 Tor_model.Cell.Destroy);
  Engine.Sim.run sim;
  Alcotest.(check int) "control handler got it" 1 !ctl

let test_switchboard_unregister () =
  let sim, _, leaves, sbs = mk_overlay 2 in
  let c0 = Tor_model.Circuit_id.of_int 0 in
  let got = ref 0 in
  Tor_model.Switchboard.register_circuit sbs.(1) c0 (fun ~from:_ _ -> incr got);
  Tor_model.Switchboard.unregister_circuit sbs.(1) c0;
  Tor_model.Switchboard.send_cell sbs.(0) ~dst:leaves.(1)
    (Tor_model.Cell.make c0 Tor_model.Cell.Create);
  Engine.Sim.run sim;
  Alcotest.(check int) "nothing delivered" 0 !got

(* ------------------------------------------------------------------ *)
(* Control plane: Relay_ctl + Circuit_builder *)

let test_circuit_establishment () =
  let sim, _, leaves, sbs = mk_overlay 5 in
  (* leaves: 0=client, 1..3=relays, 4=server; every non-client runs the
     control automaton. *)
  let ctls = Array.init 5 (fun i -> Tor_model.Relay_ctl.create sbs.(i)) in
  let relays = List.init 3 (fun i -> mk_relay ~node:(Netsim.Node_id.to_int leaves.(i + 1)) ~mbit:5 ()) in
  let circuit =
    Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0) ~client:leaves.(0) ~relays
      ~server:leaves.(4)
  in
  let outcome = ref None in
  Tor_model.Circuit_builder.build sbs.(0) circuit
    ~on_done:(fun o -> outcome := Some o)
    ();
  Engine.Sim.run sim;
  (match !outcome with
  | Some (Tor_model.Circuit_builder.Established { at }) ->
      (* CREATE + 3 EXTEND ladders, each a growing round trip. *)
      Alcotest.(check bool) "took multiple RTTs" true Engine.Time.(at > Engine.Time.ms 60)
  | Some (Tor_model.Circuit_builder.Failed msg) -> Alcotest.fail msg
  | Some (Tor_model.Circuit_builder.Refused _) -> Alcotest.fail "refused"
  | Some (Tor_model.Circuit_builder.Gone _) -> Alcotest.fail "gone"
  | None -> Alcotest.fail "never finished");
  (* Each relay knows its predecessor and successor. *)
  for i = 1 to 3 do
    match Tor_model.Relay_ctl.route ctls.(i) (Tor_model.Circuit_id.of_int 0) with
    | Some { Tor_model.Relay_ctl.prev; next } ->
        Alcotest.check node "prev" leaves.(i - 1) prev;
        Alcotest.(check (option node)) "next" (Some leaves.(i + 1)) next
    | None -> Alcotest.fail "relay missing route"
  done;
  (* The server end has no successor. *)
  match Tor_model.Relay_ctl.route ctls.(4) (Tor_model.Circuit_id.of_int 0) with
  | Some { Tor_model.Relay_ctl.next = None; _ } -> ()
  | _ -> Alcotest.fail "server should be the end"

let test_circuit_establishment_timeout () =
  let sim, _, leaves, sbs = mk_overlay 3 in
  (* No Relay_ctl anywhere: CREATE is never answered. *)
  let relays = [ mk_relay ~node:(Netsim.Node_id.to_int leaves.(1)) ~mbit:5 () ] in
  let circuit =
    Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0) ~client:leaves.(0) ~relays
      ~server:leaves.(2)
  in
  let outcome = ref None in
  Tor_model.Circuit_builder.build sbs.(0) circuit ~timeout:(Engine.Time.s 1)
    ~on_done:(fun o -> outcome := Some o)
    ();
  Engine.Sim.run sim ~until:(Engine.Time.s 5);
  match !outcome with
  | Some (Tor_model.Circuit_builder.Failed _) -> ()
  | _ -> Alcotest.fail "expected timeout failure"

let test_builder_timeout_destroys_prefix () =
  let sim, _, leaves, sbs = mk_overlay 5 in
  let ctls = Array.init 5 (fun i -> Tor_model.Relay_ctl.create sbs.(i)) in
  let relays = List.init 3 (fun i -> mk_relay ~node:(Netsim.Node_id.to_int leaves.(i + 1)) ~mbit:5 ()) in
  let circuit =
    Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0) ~client:leaves.(0) ~relays
      ~server:leaves.(4)
  in
  (* The middle relay is dead from the start: the ladder reaches the
     guard, then the EXTEND onwards is black-holed. *)
  Tor_model.Relay_ctl.crash ctls.(2);
  let outcome = ref None in
  Tor_model.Circuit_builder.build sbs.(0) circuit ~timeout:(Engine.Time.s 1)
    ~on_done:(fun o -> outcome := Some o)
    ();
  Engine.Sim.run sim ~until:(Engine.Time.s 5);
  (match !outcome with
  | Some (Tor_model.Circuit_builder.Failed _) -> ()
  | _ -> Alcotest.fail "expected timeout failure");
  (* The watchdog's DESTROY must have walked the half-built prefix, so
     the guard does not keep a routing entry for a circuit that will
     never carry a cell. *)
  Alcotest.(check (list int)) "guard forgot the half-built circuit" []
    (List.map Tor_model.Circuit_id.to_int (Tor_model.Relay_ctl.circuits ctls.(1)));
  Alcotest.(check int) "guard saw the DESTROY" 1
    (Tor_model.Relay_ctl.destroyed ctls.(1))

let test_destroy_propagates () =
  let sim, _, leaves, sbs = mk_overlay 5 in
  let ctls = Array.init 5 (fun i -> Tor_model.Relay_ctl.create sbs.(i)) in
  let relays = List.init 3 (fun i -> mk_relay ~node:(Netsim.Node_id.to_int leaves.(i + 1)) ~mbit:5 ()) in
  let circuit =
    Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0) ~client:leaves.(0) ~relays
      ~server:leaves.(4)
  in
  let done_ = ref false in
  Tor_model.Circuit_builder.build sbs.(0) circuit ~on_done:(fun _ -> done_ := true) ();
  Engine.Sim.run sim;
  Alcotest.(check bool) "established" true !done_;
  (* Client tears the circuit down: the guard propagates onwards. *)
  Tor_model.Switchboard.send_cell sbs.(0) ~dst:leaves.(1)
    (Tor_model.Cell.make (Tor_model.Circuit_id.of_int 0) Tor_model.Cell.Destroy);
  Engine.Sim.run sim;
  for i = 1 to 4 do
    Alcotest.(check (list int))
      (Printf.sprintf "relay %d forgot the circuit" i)
      []
      (List.map Tor_model.Circuit_id.to_int (Tor_model.Relay_ctl.circuits ctls.(i)))
  done

(* A down switchboard is a black hole: incoming cells vanish (counted)
   and outgoing sends are refused, with no notification to anyone —
   exactly what a crashed process looks like from the network. *)
let test_switchboard_down () =
  let sim, _, leaves, sbs = mk_overlay 2 in
  let c0 = Tor_model.Circuit_id.of_int 0 in
  let got = ref 0 in
  Tor_model.Switchboard.register_circuit sbs.(1) c0 (fun ~from:_ _ -> incr got);
  let send () =
    Tor_model.Switchboard.send_cell sbs.(0) ~dst:leaves.(1)
      (Tor_model.Cell.make c0 Tor_model.Cell.Create)
  in
  send ();
  Engine.Sim.run sim;
  Alcotest.(check int) "delivered while up" 1 !got;
  Tor_model.Switchboard.set_down sbs.(1) true;
  Alcotest.(check bool) "reports down" true (Tor_model.Switchboard.is_down sbs.(1));
  send ();
  send ();
  Engine.Sim.run sim;
  Alcotest.(check int) "nothing delivered while down" 1 !got;
  Alcotest.(check int) "black-holed" 2 (Tor_model.Switchboard.blackholed_cells sbs.(1));
  Tor_model.Switchboard.send_cell sbs.(1) ~dst:leaves.(0)
    (Tor_model.Cell.make c0 Tor_model.Cell.Created);
  Alcotest.(check int) "outgoing refused" 1 (Tor_model.Switchboard.refused_sends sbs.(1));
  Tor_model.Switchboard.set_down sbs.(1) false;
  send ();
  Engine.Sim.run sim;
  Alcotest.(check int) "delivered again after restart" 2 !got

let test_relay_crash_and_restart () =
  let sim, _, leaves, sbs = mk_overlay 5 in
  let ctls = Array.init 5 (fun i -> Tor_model.Relay_ctl.create sbs.(i)) in
  let relays = List.init 3 (fun i -> mk_relay ~node:(Netsim.Node_id.to_int leaves.(i + 1)) ~mbit:5 ()) in
  let circuit =
    Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0) ~client:leaves.(0) ~relays
      ~server:leaves.(4)
  in
  Tor_model.Circuit_builder.build sbs.(0) circuit ~on_done:(fun _ -> ()) ();
  Engine.Sim.run sim;
  Alcotest.(check bool) "middle relay routes the circuit" true
    (Tor_model.Relay_ctl.route ctls.(2) (Tor_model.Circuit_id.of_int 0) <> None);
  Tor_model.Relay_ctl.crash ctls.(2);
  Alcotest.(check bool) "routing state lost" true
    (Tor_model.Relay_ctl.circuits ctls.(2) = []);
  Alcotest.(check bool) "switchboard taken down" true
    (Tor_model.Switchboard.is_down sbs.(2));
  Alcotest.(check int) "crash counted" 1 (Tor_model.Relay_ctl.crashes ctls.(2));
  (* Silent death: no DESTROY reaches the neighbours, so they still
     believe the circuit exists. *)
  Engine.Sim.run sim;
  Alcotest.(check bool) "predecessor still routes it" true
    (Tor_model.Relay_ctl.route ctls.(1) (Tor_model.Circuit_id.of_int 0) <> None);
  Tor_model.Relay_ctl.restart ctls.(2);
  Alcotest.(check bool) "back up" true (not (Tor_model.Switchboard.is_down sbs.(2)));
  Alcotest.(check bool) "restart keeps the table empty" true
    (Tor_model.Relay_ctl.circuits ctls.(2) = [])

(* ------------------------------------------------------------------ *)
(* Streams *)

let test_source_slicing () =
  let src = Tor_model.Stream.Source.create ~stream_id:7 ~bytes:1000 () in
  let c = Tor_model.Circuit_id.of_int 0 in
  Alcotest.(check int) "cell count" 3 (Tor_model.Stream.Source.cell_count src);
  let c1 = Option.get (Tor_model.Stream.Source.next_cell src c ~layers:2) in
  let c2 = Option.get (Tor_model.Stream.Source.next_cell src c ~layers:2) in
  let c3 = Option.get (Tor_model.Stream.Source.next_cell src c ~layers:2) in
  Alcotest.(check bool) "drained" true (Tor_model.Stream.Source.next_cell src c ~layers:2 = None);
  let get_len cell =
    match Tor_model.Cell.relay_cmd cell with
    | Some (Tor_model.Cell.Relay_data { length; last; seq; _ }) -> (length, last, seq)
    | _ -> Alcotest.fail "not a data cell"
  in
  Alcotest.(check (triple int bool int)) "first" (498, false, 0) (get_len c1);
  Alcotest.(check (triple int bool int)) "second" (498, false, 1) (get_len c2);
  Alcotest.(check (triple int bool int)) "last" (4, true, 2) (get_len c3)

let prop_source_conserves_bytes =
  QCheck2.Test.make ~name:"source slices conserve total bytes"
    QCheck2.Gen.(int_range 1 100_000)
    (fun bytes ->
      let src = Tor_model.Stream.Source.create ~stream_id:0 ~bytes () in
      let c = Tor_model.Circuit_id.of_int 0 in
      let rec total acc =
        match Tor_model.Stream.Source.next_cell src c ~layers:1 with
        | None -> acc
        | Some cell -> (
            match Tor_model.Cell.relay_cmd cell with
            | Some (Tor_model.Cell.Relay_data { length; _ }) -> total (acc + length)
            | _ -> acc)
      in
      total 0 = bytes && Tor_model.Stream.Source.remaining src = 0)

let test_sink_dedup_and_completion () =
  let sink = Tor_model.Stream.Sink.create ~expected_bytes:996 () in
  let deliver seq length =
    Tor_model.Stream.Sink.deliver sink ~now:(Engine.Time.ms seq)
      (Tor_model.Cell.Relay_data { stream_id = 0; seq; length; last = false })
  in
  deliver 0 498;
  deliver 0 498;
  Alcotest.(check int) "dup counted" 1 (Tor_model.Stream.Sink.duplicates sink);
  Alcotest.(check bool) "not complete" false (Tor_model.Stream.Sink.complete sink);
  deliver 1 498;
  Alcotest.(check bool) "complete" true (Tor_model.Stream.Sink.complete sink);
  Alcotest.(check (option time)) "completion stamp" (Some (Engine.Time.ms 1))
    (Tor_model.Stream.Sink.completed_at sink);
  (* Late duplicates do not move the completion time. *)
  deliver 1 498;
  Alcotest.(check (option time)) "stamp stable" (Some (Engine.Time.ms 1))
    (Tor_model.Stream.Sink.completed_at sink)

let test_stream_resume_offset () =
  (* A resumed source skips the delivered prefix and keeps numbering
     where the previous generation's contiguous prefix ended. *)
  let src = Tor_model.Stream.Source.create ~start_byte:498 ~stream_id:0 ~bytes:1000 () in
  Alcotest.(check int) "remaining" 502 (Tor_model.Stream.Source.remaining src);
  let c = Tor_model.Circuit_id.of_int 0 in
  let seq_of cell =
    match Tor_model.Cell.relay_cmd cell with
    | Some (Tor_model.Cell.Relay_data { seq; length; last; _ }) -> (seq, length, last)
    | _ -> Alcotest.fail "not a data cell"
  in
  Alcotest.(check (triple int int bool)) "first resumed cell" (1, 498, false)
    (seq_of (Option.get (Tor_model.Stream.Source.next_cell src c ~layers:1)));
  Alcotest.(check (triple int int bool)) "final cell" (2, 4, true)
    (seq_of (Option.get (Tor_model.Stream.Source.next_cell src c ~layers:1)));
  Alcotest.(check bool) "drained" true
    (Tor_model.Stream.Source.next_cell src c ~layers:1 = None);
  (* The matching sink counts the prefix as delivered and tracks the
     contiguous prefix through holes. *)
  let sink = Tor_model.Stream.Sink.create ~start_byte:498 ~expected_bytes:1000 () in
  Alcotest.(check int) "prefix counted" 498 (Tor_model.Stream.Sink.delivered_bytes sink);
  let deliver seq length =
    Tor_model.Stream.Sink.deliver sink ~now:(Engine.Time.ms seq)
      (Tor_model.Cell.Relay_data { stream_id = 0; seq; length; last = false })
  in
  deliver 2 4;
  Alcotest.(check int) "hole blocks the prefix" 498
    (Tor_model.Stream.Sink.delivered_bytes sink);
  Alcotest.(check bool) "not complete" false (Tor_model.Stream.Sink.complete sink);
  deliver 1 498;
  Alcotest.(check int) "prefix closes over the hole" 1000
    (Tor_model.Stream.Sink.delivered_bytes sink);
  Alcotest.(check bool) "complete" true (Tor_model.Stream.Sink.complete sink)

let test_stream_offset_validation () =
  let misaligned () =
    ignore (Tor_model.Stream.Source.create ~start_byte:100 ~stream_id:0 ~bytes:1000 ())
  in
  Alcotest.check_raises "misaligned source offset"
    (Invalid_argument "Stream.Source.create: start_byte must be cell-aligned")
    misaligned;
  Alcotest.check_raises "sink offset out of range"
    (Invalid_argument "Stream.Sink.create: start_byte out of range") (fun () ->
      ignore (Tor_model.Stream.Sink.create ~start_byte:996 ~expected_bytes:996 ()))

(* ------------------------------------------------------------------ *)
(* Legacy SENDME transport *)

let sendme_setup ?(bytes = Engine.Units.kib 300) () =
  let sim, _, leaves, sbs = mk_overlay 5 in
  let relays =
    List.init 3 (fun i -> mk_relay ~node:(Netsim.Node_id.to_int leaves.(i + 1)) ~mbit:5 ())
  in
  let circuit =
    Tor_model.Circuit.make ~id:(Tor_model.Circuit_id.of_int 0) ~client:leaves.(0) ~relays
      ~server:leaves.(4)
  in
  let sb_of n =
    let rec find i = if Netsim.Node_id.equal leaves.(i) n then sbs.(i) else find (i + 1) in
    find 0
  in
  let d = Tor_model.Sendme.deploy ~sb_of ~circuit ~bytes () in
  (sim, d)

let test_sendme_completes () =
  let sim, d = sendme_setup () in
  Tor_model.Sendme.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 30);
  Alcotest.(check bool) "complete" true (Tor_model.Sendme.complete d);
  Alcotest.(check bool) "ttlb positive" true
    (match Tor_model.Sendme.time_to_last_byte d with
    | Some t -> Engine.Time.(t > Engine.Time.zero)
    | None -> false);
  Alcotest.(check int) "no duplicate delivery" 0
    (Tor_model.Stream.Sink.duplicates (Tor_model.Sendme.sink d))

let test_sendme_credits () =
  (* A transfer bigger than the initial windows requires SENDMEs. *)
  let sim, d = sendme_setup ~bytes:(498 * 700) () in
  Tor_model.Sendme.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check bool) "complete" true (Tor_model.Sendme.complete d);
  Alcotest.(check bool) "sendme credits flowed" true (Tor_model.Sendme.sendmes_received d > 0)

let test_sendme_window_gates () =
  (* With 700 cells to send and a 500-cell stream window, credit must be
     exhausted at some point before completion. *)
  let sim, d = sendme_setup ~bytes:(498 * 700) () in
  Tor_model.Sendme.start d;
  let min_credit = ref max_int in
  Engine.Sim.every sim (Engine.Time.ms 10)
    (fun () -> min_credit := Stdlib.min !min_credit (Tor_model.Sendme.client_credit d))
    ~stop:(fun () -> Tor_model.Sendme.complete d);
  Engine.Sim.run sim ~until:(Engine.Time.s 60);
  Alcotest.(check bool) "credit hit zero" true (!min_credit = 0)

let test_sendme_config_validation () =
  Alcotest.(check bool) "bad increment rejected" true
    (match
       Tor_model.Sendme.validate_config
         { Tor_model.Sendme.circuit_window = 10; stream_window = 10;
           circuit_increment = 20; stream_increment = 5 }
     with
    | Error _ -> true
    | Ok _ -> false)

let test_sendme_cell_latency () =
  let sim, d = sendme_setup () in
  Tor_model.Sendme.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 30);
  let lat = Tor_model.Sendme.cell_latency_stats d in
  Alcotest.(check int) "one sample per cell"
    (Tor_model.Stream.Sink.cells_received (Tor_model.Sendme.sink d))
    (Engine.Stats.Online.count lat);
  Alcotest.(check bool) "positive latencies" true (Engine.Stats.Online.min lat > 0.)

let test_sendme_teardown () =
  let sim, d = sendme_setup () in
  Tor_model.Sendme.start d;
  Engine.Sim.run sim ~until:(Engine.Time.s 30);
  Tor_model.Sendme.teardown d;
  (* After teardown a second deployment can claim the same circuit. *)
  Alcotest.(check bool) "complete before teardown" true (Tor_model.Sendme.complete d)

(* ------------------------------------------------------------------ *)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_peel_inverse_of_wrap; prop_source_conserves_bytes ]

let () =
  Alcotest.run "tor_model"
    [
      ( "cells",
        [
          Alcotest.test_case "circuit ids" `Quick test_circuit_id;
          Alcotest.test_case "sizes" `Quick test_cell_sizes;
          Alcotest.test_case "data validation" `Quick test_cell_data_validation;
          Alcotest.test_case "predicates" `Quick test_cell_predicates;
        ] );
      ( "crypto",
        [
          Alcotest.test_case "wrap and peel" `Quick test_crypto_wrap_peel;
          Alcotest.test_case "errors" `Quick test_crypto_errors;
        ] );
      ( "directory",
        [
          Alcotest.test_case "relay flags" `Quick test_relay_flags;
          Alcotest.test_case "distinct relays" `Slow test_directory_select_distinct;
          Alcotest.test_case "flags honoured" `Slow test_directory_flags_honoured;
          Alcotest.test_case "bandwidth bias" `Slow test_directory_bandwidth_bias;
          Alcotest.test_case "impossible constraints" `Quick test_directory_impossible;
          Alcotest.test_case "exclusion honoured" `Slow test_directory_exclude;
          Alcotest.test_case "uniform selection" `Slow test_directory_uniform_selection;
          Alcotest.test_case "selection strings" `Quick test_selection_strings;
          Alcotest.test_case "find by node" `Quick test_directory_find_by_node;
          Alcotest.test_case "cell printer" `Quick test_cell_printer;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "structure" `Quick test_circuit_structure;
          Alcotest.test_case "validation" `Quick test_circuit_validation;
        ] );
      ( "switchboard",
        [
          Alcotest.test_case "dispatch" `Quick test_switchboard_dispatch;
          Alcotest.test_case "orphans and control" `Quick
            test_switchboard_orphans_and_control;
          Alcotest.test_case "unregister" `Quick test_switchboard_unregister;
          Alcotest.test_case "down black-holes" `Quick test_switchboard_down;
        ] );
      ( "control_plane",
        [
          Alcotest.test_case "establishment" `Quick test_circuit_establishment;
          Alcotest.test_case "timeout cleans half-built prefix" `Quick
            test_builder_timeout_destroys_prefix;
          Alcotest.test_case "establishment timeout" `Quick
            test_circuit_establishment_timeout;
          Alcotest.test_case "destroy propagates" `Quick test_destroy_propagates;
          Alcotest.test_case "crash and restart" `Quick test_relay_crash_and_restart;
        ] );
      ( "streams",
        [
          Alcotest.test_case "source slicing" `Quick test_source_slicing;
          Alcotest.test_case "resume offset" `Quick test_stream_resume_offset;
          Alcotest.test_case "offset validation" `Quick test_stream_offset_validation;
          Alcotest.test_case "sink dedup and completion" `Quick
            test_sink_dedup_and_completion;
        ] );
      ( "sendme",
        [
          Alcotest.test_case "completes" `Quick test_sendme_completes;
          Alcotest.test_case "credits" `Quick test_sendme_credits;
          Alcotest.test_case "window gates" `Quick test_sendme_window_gates;
          Alcotest.test_case "config validation" `Quick test_sendme_config_validation;
          Alcotest.test_case "cell latency" `Quick test_sendme_cell_latency;
          Alcotest.test_case "teardown" `Quick test_sendme_teardown;
        ] );
      ("properties", qtests);
    ]

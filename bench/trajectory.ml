(* The perf-trajectory gate: print the cumulative events/sec and
   minor-words/event trajectory across every BENCH_*.json in a
   directory, then check the blessed floors and exit nonzero on any
   regression beyond the tolerance.

   Usage:
     bench/trajectory.exe [--dir D] [--floors F] [--tolerance T]

   Defaults: D = ., F = bench/perf_floors.txt, T = 0.25.  Running with
   no floors file is an error — the gate exists to be present.  See
   the floors file for the blessing procedure. *)

let dir = ref "."
let floors_path = ref "bench/perf_floors.txt"
let tolerance = ref 0.25

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s

let bench_reports () =
  Sys.readdir !dir |> Array.to_list
  |> List.filter (fun name ->
         String.length name > 6
         && String.sub name 0 6 = "BENCH_"
         && Filename.check_suffix name ".json")
  |> List.sort compare
  |> List.filter_map (fun name ->
         match read_file (Filename.concat !dir name) with
         | Some text -> Some (name, text)
         | None -> None)

let () =
  let rec parse = function
    | [] -> ()
    | "--dir" :: d :: rest ->
        dir := d;
        parse rest
    | "--floors" :: f :: rest ->
        floors_path := f;
        parse rest
    | "--tolerance" :: t :: rest -> (
        match float_of_string_opt t with
        | Some t when Float.is_finite t && t >= 0. ->
            tolerance := t;
            parse rest
        | _ ->
            prerr_endline "--tolerance needs a non-negative number";
            exit 2)
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s; usage: trajectory [--dir D] [--floors F] \
           [--tolerance T]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reports = bench_reports () in
  if reports = [] then begin
    Printf.eprintf "trajectory: no BENCH_*.json reports in %s\n" !dir;
    exit 1
  end;
  let rows = Analysis.Perf_gate.trajectory reports in
  (* Only reports from the sharded-engine era carry speedup keys; hide
     the column entirely when none do. *)
  let have_speedup =
    List.exists
      (fun (r : Analysis.Perf_gate.row) ->
        r.speedup_2 <> None || r.speedup_4 <> None)
      rows
  in
  let base_columns =
    [ "report"; "events/s"; "minor words/event"; "sim events"; "cumulative" ]
  in
  let t =
    Analysis.Table.create
      ~columns:
        (if have_speedup then base_columns @ [ "speedup x2/x4" ]
         else base_columns)
  in
  List.iter
    (fun (r : Analysis.Perf_gate.row) ->
      let speedup =
        let part = function
          | Some v -> Printf.sprintf "%.2f" v
          | None -> "-"
        in
        match (r.speedup_2, r.speedup_4) with
        | None, None -> "-"
        | s2, s4 -> Printf.sprintf "%s/%s" (part s2) (part s4)
      in
      Analysis.Table.add_row t
        ([
           r.report;
           (match r.events_per_sec with
           | Some v -> Printf.sprintf "%.0f" v
           | None -> "-");
           (match r.minor_words_per_event with
           | Some v -> Printf.sprintf "%.2f" v
           | None -> "-");
           Printf.sprintf "%.0f" r.sim_events;
           Printf.sprintf "%.0f" r.cumulative_events;
         ]
        @ if have_speedup then [ speedup ] else []))
    rows;
  print_string (Analysis.Table.render t);
  match read_file !floors_path with
  | None ->
      Printf.eprintf "trajectory: floors file %s is unreadable\n" !floors_path;
      exit 1
  | Some text -> (
      match Analysis.Perf_gate.parse_floors text with
      | Error msg ->
          Printf.eprintf "trajectory: %s\n" msg;
          exit 1
      | Ok [] ->
          Printf.eprintf "trajectory: %s gates nothing\n" !floors_path;
          exit 1
      | Ok floors ->
          let outcomes =
            Analysis.Perf_gate.check ~tolerance:!tolerance
              ~read:(fun file -> read_file (Filename.concat !dir file))
              floors
          in
          List.iter
            (fun o -> Format.printf "%a@." Analysis.Perf_gate.pp_outcome o)
            outcomes;
          let failed = List.filter (fun o -> not o.Analysis.Perf_gate.ok) outcomes in
          let skipped =
            List.filter (fun o -> o.Analysis.Perf_gate.skipped) outcomes
          in
          if failed = [] then
            Printf.printf "trajectory: %d floor%s hold%s (tolerance %.0f%%)\n"
              (List.length outcomes)
              (if List.length outcomes = 1 then "" else "s")
              (match skipped with
              | [] -> ""
              | s ->
                  Printf.sprintf ", %d skipped (host below min-cores)"
                    (List.length s))
              (!tolerance *. 100.)
          else begin
            Printf.printf "trajectory: %d/%d floors FAILED\n" (List.length failed)
              (List.length outcomes);
            exit 1
          end)

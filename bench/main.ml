(* Reproduction harness: one entry per figure panel and table of the
   paper's evaluation (DESIGN.md section 2), each printing the series or
   rows it regenerates and writing CSV next to the terminal rendering.

   Every independent simulation inside a target runs on the domain pool
   (Engine.Pool); rendering stays sequential and in a fixed order, so
   the terminal/CSV output is byte-identical for every --jobs value.
   The driver times each target, probes sequential-vs-parallel speedup
   on a batch of small star runs, and records both in BENCH_pr2.json.

   Usage:
     bench/main.exe                 run every figure and table
     bench/main.exe fig1a table-gamma ...
                                    run a subset
     bench/main.exe --jobs N        worker domains for simulation
                                    batches (default: detected cores)
     bench/main.exe --micro         additionally run Bechamel
                                    micro-benchmarks
     bench/main.exe --out DIR       CSV output directory (default
                                    results/)
     bench/main.exe --bench-json F  timing report path (default
                                    BENCH_pr2.json) *)

let out_dir = ref "results"
let jobs = ref (Engine.Pool.default_jobs ())
let bench_json = ref "BENCH_pr2.json"

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let write_csv name contents =
  let path = Filename.concat !out_dir name in
  Analysis.Csv_out.write_file ~path contents;
  Printf.printf "[csv] %s\n" path

(* Simulated events executed by the current target — each batch helper
   below adds its runs' counts, and the driver snapshots the sum per
   target for the events/sec column of the timing report. *)
let sim_events = ref 0
let note_events n = sim_events := !sim_events + n

let trace_many configs =
  let rs = Workload.Trace_experiment.run_many ~jobs:!jobs configs in
  List.iter
    (fun (r : Workload.Trace_experiment.result) -> note_events r.wall_events)
    rs;
  rs

let star_many configs =
  let rs = Workload.Star_experiment.run_many ~jobs:!jobs configs in
  List.iter
    (fun (r : Workload.Star_experiment.result) -> note_events r.wall_events)
    rs;
  rs

let fault_many tasks =
  let rs = Workload.Fault_experiment.run_many ~jobs:!jobs tasks in
  List.iter
    (fun (r : Workload.Fault_experiment.result) -> note_events r.wall_events)
    rs;
  rs

let adaptive_many configs =
  let rs = Workload.Adaptive_experiment.run_many ~jobs:!jobs configs in
  List.iter
    (fun (r : Workload.Adaptive_experiment.result) -> note_events r.wall_events)
    rs;
  rs

let contention_many configs =
  let rs = Workload.Contention_experiment.run_many ~jobs:!jobs configs in
  List.iter
    (fun (r : Workload.Contention_experiment.result) -> note_events r.wall_events)
    rs;
  rs

(* ------------------------------------------------------------------ *)
(* Figure 1, upper panels: source cwnd traces *)

let cell_wire_size = Backtap.Wire.cell_size

let trace_config ~strategy ~distance =
  { Workload.Trace_experiment.default_config with
    Workload.Trace_experiment.strategy;
    bottleneck_distance = distance;
  }

let kb = Analysis.Series.kb_of_cells ~cell_size:cell_wire_size

let fig1_panel ~name ~distance () =
  section
    (Printf.sprintf "Figure 1 (%s): source cwnd, distance to bottleneck: %d hop%s" name
       distance
       (if distance = 1 then "" else "s"));
  let r =
    Workload.Trace_experiment.run
      (trace_config ~strategy:Circuitstart.Controller.Circuit_start ~distance)
  in
  note_events r.wall_events;
  let x_max = 600. in
  (* Resample the change points into a step function so the staircase
     of doubling rounds is visible in the plot. *)
  let series =
    let points = r.source_cwnd in
    let n = 120 in
    Array.init (n + 1) (fun i ->
        let x = float_of_int i *. x_max /. float_of_int n in
        let v =
          Array.fold_left
            (fun acc (t, v) -> if Analysis.Series.ms_of_time t <= x then v else acc)
            (match points with [||] -> 0. | _ -> snd points.(0))
            points
        in
        (x, kb v))
  in
  let optimal = kb (float_of_int r.optimal_source_cells) in
  let dashed = Analysis.Series.constant ~x_max ~step:25. optimal in
  print_string
    (Analysis.Ascii_plot.render ~x_label:"time [ms]" ~y_label:"source cwnd [KB]"
       [
         { Analysis.Ascii_plot.label = "CircuitStart source cwnd"; glyph = '*';
           points = series };
         { Analysis.Ascii_plot.label = "optimal (model)"; glyph = '-'; points = dashed };
       ]);
  Printf.printf
    "optimal=%0.1fKB (%d cells)  peak=%0.1fKB  settled=%0.1fKB  exit->%s cells  ttlb=%s\n"
    optimal r.optimal_source_cells (kb r.peak_cells) (kb r.settled_cells)
    (match r.exit_cells with Some c -> string_of_int c | None -> "-")
    (match r.time_to_last_byte with
    | Some t -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f t)
    | None -> "incomplete");
  write_csv
    (Printf.sprintf "%s_cwnd.csv" name)
    (Analysis.Csv_out.series_csv [ ("cwnd_kb", series); ("optimal_kb", dashed) ]);
  write_csv
    (Printf.sprintf "%s_cwnd.gp" name)
    (Analysis.Gnuplot.series_script
       ~csv_file:(Printf.sprintf "%s_cwnd.csv" name)
       ~title:
         (Printf.sprintf "CircuitStart source cwnd, bottleneck %d hop(s) away" distance)
       ~x_label:"time [ms]" ~y_label:"source cwnd [KB]"
       ~series:[ "cwnd_kb"; "optimal_kb" ])

let fig1a () = fig1_panel ~name:"fig1a" ~distance:1 ()
let fig1b () = fig1_panel ~name:"fig1b" ~distance:3 ()

(* ------------------------------------------------------------------ *)
(* Figure 1, bottom panel: TTLB CDF with vs without CircuitStart *)

let star_config transport =
  { Workload.Star_experiment.default_config with Workload.Star_experiment.transport }

let fig1c () =
  section "Figure 1 (fig1c): CDF of time to last byte, 50 concurrent circuits";
  let cs, ss =
    match
      star_many
        [
          star_config
            (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start);
          star_config
            (Workload.Star_experiment.Backtap Circuitstart.Controller.Slow_start);
        ]
    with
    | [ cs; ss ] -> (cs, ss)
    | _ -> assert false
  in
  let cdf_cs = Analysis.Cdf.of_samples cs.ttlb_seconds in
  let cdf_ss = Analysis.Cdf.of_samples ss.ttlb_seconds in
  let to_series cdf = Array.of_list (Analysis.Cdf.points cdf) in
  print_string
    (Analysis.Ascii_plot.render ~x_label:"time to last byte [s]"
       ~y_label:"cumulative distribution"
       [
         { Analysis.Ascii_plot.label = "with CircuitStart"; glyph = '*';
           points = to_series cdf_cs };
         { Analysis.Ascii_plot.label = "without CircuitStart (slow start)"; glyph = 'o';
           points = to_series cdf_ss };
       ]);
  Printf.printf "completed: with=%d/%d without=%d/%d\n" cs.completed cs.total ss.completed
    ss.total;
  Printf.printf "median: with=%.2fs without=%.2fs   p90: with=%.2fs without=%.2fs\n"
    (Analysis.Cdf.quantile cdf_cs 0.5)
    (Analysis.Cdf.quantile cdf_ss 0.5)
    (Analysis.Cdf.quantile cdf_cs 0.9)
    (Analysis.Cdf.quantile cdf_ss 0.9);
  Printf.printf
    "largest horizontal gap (CircuitStart earlier by): %.3fs   (paper: up to ~0.5s)\n"
    (Analysis.Cdf.horizontal_gap ~better:cdf_cs ~worse:cdf_ss);
  write_csv "fig1c_cdf.csv"
    (Analysis.Csv_out.cdf_csv
       [ ("with_circuitstart", cdf_cs); ("without_circuitstart", cdf_ss) ]);
  write_csv "fig1c_cdf.gp"
    (Analysis.Gnuplot.cdf_script ~csv_file:"fig1c_cdf.csv"
       ~title:"Time to last byte, 50 concurrent circuits"
       ~x_label:"time to last byte [s]"
       ~series:[ "with_circuitstart"; "without_circuitstart" ])

(* ------------------------------------------------------------------ *)
(* T1: startup-scheme comparison (extra table) *)

let table_startup () =
  section "Table T1 (extra): transport comparison on the 50-circuit star";
  let t =
    Analysis.Table.create
      ~columns:
        [ "transport"; "done"; "median TTLB"; "p90 TTLB"; "cell lat (mean/max)";
          "max queue"; "Jain"; "retx" ]
  in
  let transports =
    [
      ("circuitstart", Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start);
      ("slowstart", Workload.Star_experiment.Backtap Circuitstart.Controller.Slow_start);
      ("sendme", Workload.Star_experiment.Legacy_sendme);
    ]
  in
  let results = star_many (List.map (fun (_, tr) -> star_config tr) transports) in
  List.iter2
    (fun (name, _) (r : Workload.Star_experiment.result) ->
      let cdf = Analysis.Cdf.of_samples r.ttlb_seconds in
      let retx =
        List.fold_left
          (fun acc (o : Workload.Star_experiment.circuit_outcome) ->
            acc + o.retransmissions)
          0 r.outcomes
      in
      let jain =
        Analysis.Fairness.jain_index
          (Analysis.Fairness.throughputs_bytes_per_sec
             ~bytes_each:Workload.Star_experiment.default_config.transfer_bytes
             r.ttlb_seconds)
      in
      Analysis.Table.add_row t
        [
          name;
          Printf.sprintf "%d/%d" r.completed r.total;
          Printf.sprintf "%.2fs" (Analysis.Cdf.quantile cdf 0.5);
          Printf.sprintf "%.2fs" (Analysis.Cdf.quantile cdf 0.9);
          Printf.sprintf "%.0f/%.0fms"
            (Engine.Stats.Online.mean r.cell_latency *. 1e3)
            (Engine.Stats.Online.max r.cell_latency *. 1e3);
          Format.asprintf "%a" Engine.Units.pp_bytes r.max_link_queue_bytes;
          Printf.sprintf "%.3f" jain;
          string_of_int retx;
        ])
    transports results;
  print_string (Analysis.Table.render t);
  print_string
    "(SENDME wins raw bulk TTLB by dumping its whole end-to-end window into\n\
     relay queues - the 'max queue' column is the bufferbloat the tailored\n\
     transports exist to avoid.)\n"

(* ------------------------------------------------------------------ *)
(* T2: gamma ablation *)

let table_gamma () =
  section "Table T2 (extra): gamma ablation (trace, distance 2)";
  let t =
    Analysis.Table.create
      ~columns:[ "gamma"; "peak cells"; "exit cells"; "settled"; "|err| vs opt"; "ttlb" ]
  in
  let gammas = [ 1.; 2.; 4.; 8.; 16. ] in
  let results =
    trace_many
      (List.map
         (fun gamma ->
           { (trace_config ~strategy:Circuitstart.Controller.Circuit_start ~distance:2) with
             Workload.Trace_experiment.params =
               Circuitstart.Params.with_gamma Circuitstart.Params.default gamma;
           })
         gammas)
  in
  List.iter2
    (fun gamma (r : Workload.Trace_experiment.result) ->
      Analysis.Table.add_row t
        [
          Printf.sprintf "%.0f" gamma;
          Printf.sprintf "%.0f" r.peak_cells;
          (match r.exit_cells with Some c -> string_of_int c | None -> "-");
          Printf.sprintf "%.0f" r.settled_cells;
          Printf.sprintf "%.0f" (Float.abs (r.settled_cells -. float_of_int r.optimal_source_cells));
          (match r.time_to_last_byte with
          | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
          | None -> "-");
        ])
    gammas results;
  print_string (Analysis.Table.render t)

(* ------------------------------------------------------------------ *)
(* T3: bottleneck-distance sweep *)

let table_distance () =
  section "Table T3 (extra): bottleneck distance sweep (4-relay circuit)";
  let t =
    Analysis.Table.create
      ~columns:
        [ "distance"; "scheme"; "peak"; "peak/opt"; "settled"; "|err|"; "ttlb" ]
  in
  let cases =
    List.concat_map
      (fun distance ->
        List.map
          (fun (name, strategy) -> (distance, name, strategy))
          [ ("circuitstart", Circuitstart.Controller.Circuit_start);
            ("slowstart", Circuitstart.Controller.Slow_start) ])
      [ 1; 2; 3; 4 ]
  in
  let results =
    trace_many
      (List.map
         (fun (distance, _, strategy) ->
           { (trace_config ~strategy ~distance) with
             Workload.Trace_experiment.relay_count = 4;
           })
         cases)
  in
  List.iter2
    (fun (distance, name, _) (r : Workload.Trace_experiment.result) ->
      let opt = float_of_int r.optimal_source_cells in
      Analysis.Table.add_row t
        [
          string_of_int distance;
          name;
          Printf.sprintf "%.0f" r.peak_cells;
          Printf.sprintf "%.1fx" (r.peak_cells /. opt);
          Printf.sprintf "%.0f" r.settled_cells;
          Printf.sprintf "%.0f" (Float.abs (r.settled_cells -. opt));
          (match r.time_to_last_byte with
          | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
          | None -> "-");
        ])
    cases results;
  print_string (Analysis.Table.render t)

(* ------------------------------------------------------------------ *)
(* T4: optimal-model accuracy *)

let table_optmodel () =
  section "Table T4 (extra): analytic optimum vs settled window";
  let t =
    Analysis.Table.create
      ~columns:[ "bottleneck"; "model W* (cells)"; "settled"; "settled/W*" ]
  in
  let mbits = [ 1; 2; 3; 5; 8; 12 ] in
  let results =
    trace_many
      (List.map
         (fun mbit ->
           { (trace_config ~strategy:Circuitstart.Controller.Circuit_start ~distance:2) with
             Workload.Trace_experiment.bottleneck_rate = Engine.Units.Rate.mbit mbit;
             (* Large enough that the window converges before the data
                runs out even at the fast end of the sweep. *)
             transfer_bytes = Engine.Units.mib 8;
             horizon = Engine.Time.s 20;
           })
         mbits)
  in
  let ratios =
    List.map2
      (fun mbit (r : Workload.Trace_experiment.result) ->
        let ratio = r.settled_cells /. float_of_int r.optimal_source_cells in
        Analysis.Table.add_row t
          [
            Printf.sprintf "%dMbit/s" mbit;
            string_of_int r.optimal_source_cells;
            Printf.sprintf "%.0f" r.settled_cells;
            Printf.sprintf "%.2f" ratio;
          ];
        ratio)
      mbits results
  in
  print_string (Analysis.Table.render t);
  Printf.printf "mean settled/W* ratio: %.2f (1.00 = perfect backpropagation)\n"
    (List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios))

(* ------------------------------------------------------------------ *)
(* T-comp: compensation-mode ablation *)

let table_compensation () =
  section "Table T-comp (extra): overshooting-compensation ablation (distance 3)";
  let t =
    Analysis.Table.create
      ~columns:[ "scheme"; "exit cells"; "settled"; "optimal"; "ttlb" ]
  in
  let cases =
    [
      ("rate-based (default)", Circuitstart.Controller.Circuit_start,
       Circuitstart.Params.Rate_based);
      ("acked-count (literal)", Circuitstart.Controller.Circuit_start,
       Circuitstart.Params.Acked_count);
      ("halving (slow start)", Circuitstart.Controller.Slow_start,
       Circuitstart.Params.Rate_based);
    ]
  in
  let results =
    trace_many
      (List.map
         (fun (_, strategy, compensation) ->
           { (trace_config ~strategy ~distance:3) with
             Workload.Trace_experiment.params =
               { Circuitstart.Params.default with Circuitstart.Params.compensation };
           })
         cases)
  in
  List.iter2
    (fun (name, _, _) (r : Workload.Trace_experiment.result) ->
      Analysis.Table.add_row t
        [
          name;
          (match r.exit_cells with Some c -> string_of_int c | None -> "-");
          Printf.sprintf "%.0f" r.settled_cells;
          string_of_int r.optimal_source_cells;
          (match r.time_to_last_byte with
          | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
          | None -> "-");
        ])
    cases results;
  print_string (Analysis.Table.render t)

(* ------------------------------------------------------------------ *)
(* T5: adaptive extension (paper section 3, future work) *)

let table_adaptive () =
  section "Table T5 (extra): reacting to a bandwidth step (3 -> 12 Mbit/s)";
  let t =
    Analysis.Table.create
      ~columns:
        [ "variant"; "opt before"; "opt after"; "cwnd@step"; "reaction"; "final cwnd" ]
  in
  let variants = [ true; false ] in
  let results =
    adaptive_many
      (List.map
         (fun adaptive -> { Workload.Adaptive_experiment.default_config with adaptive })
         variants)
  in
  List.iter2
    (fun adaptive (r : Workload.Adaptive_experiment.result) ->
      Analysis.Table.add_row t
        [
          (if adaptive then "adaptive re-probe" else "base algorithm");
          string_of_int r.optimal_before_cells;
          string_of_int r.optimal_after_cells;
          Printf.sprintf "%.0f" r.cwnd_at_step;
          (match r.reaction_time with
          | Some x -> Printf.sprintf "%.0fms" (Engine.Time.to_ms_f x)
          | None -> "never");
          Printf.sprintf "%.0f" r.final_cwnd;
        ])
    variants results;
  print_string (Analysis.Table.render t)

(* ------------------------------------------------------------------ *)
(* fig-backprop: every hop's window on one canvas — the paper's
   backpropagation claim, visualised. *)

let fig_backprop () =
  section "Figure (extra): backpropagation — all hop windows, bottleneck 3 hops away";
  let r =
    Workload.Trace_experiment.run
      (trace_config ~strategy:Circuitstart.Controller.Circuit_start ~distance:3)
  in
  note_events r.wall_events;
  let x_max = 800. in
  let resample points =
    Array.init 121 (fun i ->
        let x = float_of_int i *. x_max /. 120. in
        let v =
          Array.fold_left
            (fun acc (t, v) -> if Analysis.Series.ms_of_time t <= x then v else acc)
            2. points
        in
        (x, kb v))
  in
  let glyphs = [| '0'; '1'; '2'; '3' |] in
  let specs =
    List.mapi
      (fun i points ->
        { Analysis.Ascii_plot.label = Printf.sprintf "hop %d window" i;
          glyph = glyphs.(i mod 4); points = resample points })
      r.hop_cwnds
  in
  print_string
    (Analysis.Ascii_plot.render ~x_label:"time [ms]" ~y_label:"cwnd [KB]" specs);
  Printf.printf
    "every hop settles near the propagated minimum (%d cells) without any
     explicit signalling - the paper's backpropagation.
"
    r.propagated_cells;
  write_csv "fig_backprop.csv"
    (Analysis.Csv_out.series_csv
       (List.mapi (fun i p -> (Printf.sprintf "hop%d_kb" i, resample p)) r.hop_cwnds))

(* ------------------------------------------------------------------ *)
(* table-loss: bounded relay queues force drops; hop reliability must
   recover them without losing the figure's properties. *)

let table_loss () =
  section "Table T-loss (extra): bounded link queues (drops + retransmission)";
  let t =
    Analysis.Table.create
      ~columns:[ "queue cap"; "scheme"; "done"; "retx"; "settled"; "ttlb" ]
  in
  let cases =
    List.concat_map
      (fun (label, queue) ->
        List.map
          (fun (name, strategy) -> (label, queue, name, strategy))
          [ ("circuitstart", Circuitstart.Controller.Circuit_start);
            ("slowstart", Circuitstart.Controller.Slow_start) ])
      [
        ("unbounded", Netsim.Nqueue.unbounded);
        ("64 pkts", Netsim.Nqueue.packets 64);
        ("16 pkts", Netsim.Nqueue.packets 16);
        ("8 pkts", Netsim.Nqueue.packets 8);
      ]
  in
  let results =
    trace_many
      (List.map
         (fun (_, queue, _, strategy) ->
           { (trace_config ~strategy ~distance:2) with
             Workload.Trace_experiment.link_queue = queue;
           })
         cases)
  in
  List.iter2
    (fun (label, _, name, _) (r : Workload.Trace_experiment.result) ->
      Analysis.Table.add_row t
        [
          label;
          name;
          (if r.time_to_last_byte <> None then "yes" else "no");
          string_of_int r.retransmissions;
          Printf.sprintf "%.0f" r.settled_cells;
          (match r.time_to_last_byte with
          | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
          | None -> "-");
        ])
    cases results;
  print_string (Analysis.Table.render t)

(* ------------------------------------------------------------------ *)
(* table-seeds: is the F1c improvement robust to the random network? *)

let table_seeds () =
  section "Table T-seeds (extra): F1c improvement across random networks";
  let t =
    Analysis.Table.create
      ~columns:[ "seed"; "median with"; "median without"; "gap"; "dominates" ]
  in
  let seeds = [ 1; 2; 3 ] in
  let results =
    star_many
      (List.concat_map
         (fun seed ->
           List.map
             (fun strategy ->
               { (star_config (Workload.Star_experiment.Backtap strategy)) with
                 Workload.Star_experiment.seed;
               })
             [ Circuitstart.Controller.Circuit_start;
               Circuitstart.Controller.Slow_start ])
         seeds)
  in
  let rec pairs = function
    | cs :: ss :: rest -> (cs, ss) :: pairs rest
    | [] -> []
    | _ -> assert false
  in
  let gaps =
    List.map2
      (fun seed ((cs : Workload.Star_experiment.result), (ss : Workload.Star_experiment.result)) ->
        let cdf_cs = Analysis.Cdf.of_samples cs.ttlb_seconds in
        let cdf_ss = Analysis.Cdf.of_samples ss.ttlb_seconds in
        let gap = Analysis.Cdf.horizontal_gap ~better:cdf_cs ~worse:cdf_ss in
        Analysis.Table.add_row t
          [
            string_of_int seed;
            Printf.sprintf "%.2fs" (Analysis.Cdf.quantile cdf_cs 0.5);
            Printf.sprintf "%.2fs" (Analysis.Cdf.quantile cdf_ss 0.5);
            Printf.sprintf "%.2fs" gap;
            string_of_bool (Analysis.Cdf.dominates ~better:cdf_cs ~worse:cdf_ss);
          ];
        gap)
      seeds (pairs results)
  in
  print_string (Analysis.Table.render t);
  Printf.printf "mean gap %.2fs over %d paired networks (paper: 'up to 0.5s')
"
    (List.fold_left ( +. ) 0. gaps /. float_of_int (List.length gaps))
    (List.length gaps)

(* ------------------------------------------------------------------ *)
(* table-cross: unresponsive background load on the bottleneck *)

let table_cross () =
  section "Table T-cross (extra): CBR background load on the bottleneck relay";
  let t =
    Analysis.Table.create
      ~columns:
        [ "CBR load"; "W* (unloaded)"; "fair target"; "settled"; "goodput share";
          "ttlb" ]
  in
  let loads = [ 0.; 0.25; 0.5; 0.75 ] in
  let results =
    contention_many
      (List.map
         (fun load ->
           { Workload.Contention_experiment.default_config with cbr_load = load })
         loads)
  in
  List.iter2
    (fun load (r : Workload.Contention_experiment.result) ->
      Analysis.Table.add_row t
        [
          Printf.sprintf "%.0f%%" (load *. 100.);
          string_of_int r.optimal_cells;
          Printf.sprintf "%.0f" r.expected_cells;
          Printf.sprintf "%.0f" r.settled_cells;
          (match r.goodput_share with
          | Some s -> Printf.sprintf "%.0f%%" (s *. 100.)
          | None -> "-");
          (match r.time_to_last_byte with
          | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
          | None -> "-");
        ])
    loads results;
  print_string (Analysis.Table.render t);
  print_string
    "Delay-based control settles onto the residual capacity instead of
     fighting the unresponsive flow - 'behave much like background traffic'.
"

(* ------------------------------------------------------------------ *)
(* table-faults: wire loss on the bottleneck link — does the circuit
   survive, and what does recovery cost each startup scheme? *)

let fault_row t label (r : Workload.Fault_experiment.result) =
  Analysis.Table.add_row t
    [
      label;
      Workload.Fault_experiment.outcome_to_string r.outcome;
      (match r.time_to_last_byte with
      | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
      | None -> "-");
      Printf.sprintf "%.2f" (r.goodput_bps /. 1e6);
      string_of_int r.retransmissions;
      string_of_int r.drops.Netsim.Link.fault_injected;
      (match r.failed_after with
      | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
      | None -> "-");
    ]

let fault_columns =
  [ "fault"; "outcome"; "ttlb"; "goodput Mbit/s"; "retx"; "wire drops"; "failed after" ]

(* Both strategies of every labelled fault scenario, as one flat batch
   on the pool: the (seed, config) replicates are in [cs; ss] pairs per
   label, matching Fault_experiment.compare_strategies with its default
   seed. *)
let fault_comparison_rows t labelled_configs =
  let tasks =
    List.concat_map
      (fun (_, config) ->
        [
          (42, { config with
                 Workload.Fault_experiment.strategy =
                   Circuitstart.Controller.Circuit_start });
          (42, { config with
                 Workload.Fault_experiment.strategy =
                   Circuitstart.Controller.Slow_start });
        ])
      labelled_configs
  in
  let rec pairs = function
    | cs :: ss :: rest -> (cs, ss) :: pairs rest
    | [] -> []
    | _ -> assert false
  in
  List.iter2
    (fun (label, _) (cs, ss) ->
      fault_row t (label ^ " / circuitstart") cs;
      fault_row t (label ^ " / slowstart") ss)
    labelled_configs
    (pairs (fault_many tasks))

let table_faults () =
  section "Table T-faults (extra): wire loss on the bottleneck link (paired seeds)";
  let t = Analysis.Table.create ~columns:fault_columns in
  fault_comparison_rows t
    (List.map
       (fun (label, loss) ->
         (label, { Workload.Fault_experiment.default_config with loss }))
       [
         ("clean", None);
         ("0.1% iid", Some (Netsim.Faults.Bernoulli 0.001));
         ("1% iid", Some (Netsim.Faults.Bernoulli 0.01));
         ("5% iid", Some (Netsim.Faults.Bernoulli 0.05));
         ( "burst",
           Some
             (Netsim.Faults.Gilbert_elliott
                { p_good_to_bad = 0.01; p_bad_to_good = 0.2; loss_good = 0.;
                  loss_bad = 0.5 }) );
       ]);
  print_string (Analysis.Table.render t);
  print_string
    "Both schemes face the identical per-seed loss pattern; hop-by-hop\n\
     retransmission repairs it locally, so loss costs time, not the circuit.\n"

(* ------------------------------------------------------------------ *)
(* table-churn: kill the middle relay mid-transfer — the circuit must
   fail in bounded time, not hang. *)

let table_churn () =
  section "Table T-churn (extra): mid-transfer crash of the middle relay";
  let t = Analysis.Table.create ~columns:fault_columns in
  fault_comparison_rows t
    (List.map
       (fun (label, crash_at, outage) ->
         (label, { Workload.Fault_experiment.default_config with crash_at; outage }))
       [
         ("crash@0.3s", Some (Engine.Time.ms 300), None);
         ("outage 0.2-0.6s", None, Some (Engine.Time.ms 200, Engine.Time.ms 600));
       ]);
  print_string (Analysis.Table.render t);
  print_string
    "An outage is survivable (retransmission bridges it); a crash is not -\n\
     the sender facing the dead relay exhausts its budget and fails the\n\
     circuit instead of retransmitting forever.\n"

(* ------------------------------------------------------------------ *)
(* table-recovery: crash a relay mid-transfer and let the session
   rebuild and resume — paired CircuitStart vs slow start on identical
   crash schedules, for both path-selection policies. *)

let recovery_many tasks =
  let rs = Workload.Recovery_experiment.run_many ~jobs:!jobs tasks in
  List.iter
    (fun (r : Workload.Recovery_experiment.result) -> note_events r.wall_events)
    rs;
  rs

let table_recovery () =
  section "Table T-recovery (extra): session rebuild-and-resume after a relay crash";
  let t =
    Analysis.Table.create
      ~columns:
        [ "scenario"; "outcome"; "ttlb"; "rebuilds"; "recovery"; "delivered";
          "dup"; "retx"; "goodput" ]
  in
  let scenarios =
    [
      ( "crash middle@0.3s / bw",
        { Workload.Recovery_experiment.default_config with
          crash_at = Some (Engine.Time.ms 300) } );
      ( "crash guard@0.3s / bw",
        { Workload.Recovery_experiment.default_config with
          crash_at = Some (Engine.Time.ms 300);
          crash_position = 1 } );
      ( "crash middle@0.3s / uniform",
        { Workload.Recovery_experiment.default_config with
          crash_at = Some (Engine.Time.ms 300);
          selection = Tor_model.Directory.Uniform } );
      ( "no budget (exhausts)",
        { Workload.Recovery_experiment.default_config with
          crash_at = Some (Engine.Time.ms 300);
          max_rebuilds = 0 } );
    ]
  in
  let tasks =
    List.concat_map
      (fun (_, config) ->
        [
          (42, { config with
                 Workload.Recovery_experiment.strategy =
                   Circuitstart.Controller.Circuit_start });
          (42, { config with
                 Workload.Recovery_experiment.strategy =
                   Circuitstart.Controller.Slow_start });
        ])
      scenarios
  in
  let row label (r : Workload.Recovery_experiment.result) =
    Analysis.Table.add_row t
      [
        label;
        Workload.Recovery_experiment.outcome_to_string r.outcome;
        (match r.time_to_last_byte with
        | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
        | None -> "-");
        string_of_int r.rebuilds;
        (match r.time_to_recover with
        | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
        | None -> "-");
        string_of_int r.delivered_bytes;
        string_of_int r.duplicates;
        string_of_int r.retransmissions;
        Printf.sprintf "%.2f Mbit/s" (r.goodput_bps /. 1e6);
      ]
  in
  let rec pairs = function
    | cs :: ss :: rest -> (cs, ss) :: pairs rest
    | [] -> []
    | _ -> assert false
  in
  List.iter2
    (fun (label, _) (cs, ss) ->
      row (label ^ " / circuitstart") cs;
      row (label ^ " / slowstart") ss)
    scenarios
    (pairs (recovery_many tasks));
  print_string (Analysis.Table.render t);
  print_string
    "The session detects the dead relay, excludes it, rebuilds over an\n\
     alternate path and resumes at the delivered prefix - no byte crosses\n\
     the wire twice (dup = 0).  With max_rebuilds = 0 it exhausts instead.\n"

(* ------------------------------------------------------------------ *)
(* table-overload: flash crowd against budgeted relays — admission
   refusals, OOM circuit kills, and the cost of the startup strategy
   under contention.  Also writes BENCH_pr6.json with the headline
   overload metrics for both strategies. *)

let write_overload_json path ~(config : Workload.Overload_experiment.config)
    ~(cs : Workload.Overload_experiment.result)
    ~(ss : Workload.Overload_experiment.result)
    ~(pr : Workload.Overload_experiment.result) =
  let side (r : Workload.Overload_experiment.result) =
    Printf.sprintf
      "{\"completed\": %d, \"sessions\": %d, \"refusals\": %d, \
       \"refusal_rate\": %.4f, \"oom_kills\": %d, \"overload_enters\": %d, \
       \"rebuilds\": %d, \"mean_ttlb_s\": %s, \"max_ttlb_s\": %s, \
       \"goodput_bps\": %.1f, \"relay_byte_hwm\": %d, \"sim_events\": %d}"
      r.completed r.sessions r.refusals r.refusal_rate r.oom_kills
      r.overload_enters r.rebuilds
      (match r.mean_ttlb with
      | Some x -> Printf.sprintf "%.6f" (Engine.Time.to_sec_f x)
      | None -> "null")
      (match r.max_ttlb with
      | Some x -> Printf.sprintf "%.6f" (Engine.Time.to_sec_f x)
      | None -> "null")
      r.goodput_bps r.relay_byte_hwm r.wall_events
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"pr\": 6,\n  \"jobs\": %d,\n" !jobs);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"config\": {\"sessions\": %d, \"relays\": %d, \"transfer_bytes\": \
        %d, \"max_circuits\": %s, \"max_queued_bytes\": %s, \
        \"mean_interarrival_ms\": %.1f},\n"
       config.sessions config.relay_count config.transfer_bytes
       (match config.max_circuits with
       | Some n -> string_of_int n
       | None -> "null")
       (match config.max_queued_bytes with
       | Some n -> string_of_int n
       | None -> "null")
       (Engine.Time.to_ms_f config.mean_interarrival));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"circuitstart\": %s,\n  \"slowstart\": %s,\n  \"predictive\": %s\n"
       (side cs) (side ss) (side pr));
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[json] %s\n" path

let table_overload () =
  section "Table T-overload (extra): flash crowd against budgeted relays";
  let config = Workload.Overload_experiment.default_config in
  let c =
    Workload.Overload_experiment.compare_strategies ~jobs:!jobs ~seed:42 config
  in
  note_events c.circuit_start.wall_events;
  note_events c.slow_start.wall_events;
  note_events c.predictive.wall_events;
  let t =
    Analysis.Table.create
      ~columns:
        [ "strategy"; "done"; "refused"; "rate"; "oom"; "rebuilds";
          "mean ttlb"; "goodput"; "relay hwm" ]
  in
  let row label (r : Workload.Overload_experiment.result) =
    Analysis.Table.add_row t
      [
        label;
        Printf.sprintf "%d/%d" r.completed r.sessions;
        string_of_int r.refusals;
        Printf.sprintf "%.0f%%" (r.refusal_rate *. 100.);
        string_of_int r.oom_kills;
        string_of_int r.rebuilds;
        (match r.mean_ttlb with
        | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
        | None -> "-");
        Printf.sprintf "%.2f Mbit/s" (r.goodput_bps /. 1e6);
        Format.asprintf "%a" Engine.Units.pp_bytes r.relay_byte_hwm;
      ]
  in
  row "circuitstart" c.circuit_start;
  row "slowstart" c.slow_start;
  row "predictive" c.predictive;
  print_string (Analysis.Table.render t);
  print_string
    "Budgeted relays refuse CREATEs while overloaded (the session redraws\n\
     without excluding them) and destroy their heaviest circuit when the\n\
     byte budget overflows - the crowd degrades, it does not collapse.\n";
  write_overload_json "BENCH_pr6.json" ~config ~cs:c.circuit_start
    ~ss:c.slow_start ~pr:c.predictive

(* ------------------------------------------------------------------ *)
(* table-network: the consensus-scale round-level workload — paired
   CS-vs-SS at the default population, then one full-scale run whose
   throughput and allocation rate are the headline metrics of
   BENCH_pr7.json (which bench/trajectory.exe gates against the
   blessed floors in bench/perf_floors.txt). *)

let sketch_q sk p =
  if Engine.Stats.Sketch.count sk = 0 then nan
  else Engine.Stats.Sketch.quantile sk p

let write_network_json path
    ~(paired : Workload.Network_experiment.config)
    ~(cs : Workload.Network_experiment.result)
    ~(ss : Workload.Network_experiment.result)
    ~(pr : Workload.Network_experiment.result)
    ~(scale : Workload.Network_experiment.result) ~scale_seconds ~minor_words =
  let side (r : Workload.Network_experiment.result) =
    Printf.sprintf
      "{\"completed\": %d, \"arrivals\": %d, \"refused\": %d, \"abandoned\": \
       %d, \"ttlb_p50_s\": %.6f, \"ttlb_p90_s\": %.6f, \"ttlb_p99_s\": %.6f, \
       \"rounds\": %d, \"sim_events\": %d}"
      r.completed r.arrivals r.refused_arrivals r.abandoned
      (sketch_q r.ttlb_all 0.5) (sketch_q r.ttlb_all 0.9)
      (sketch_q r.ttlb_all 0.99) r.rounds r.wall_events
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"pr\": 7,\n  \"jobs\": %d,\n" !jobs);
  (* Headline metrics first and exactly once: the trajectory gate's
     key scanner takes the first occurrence. *)
  Buffer.add_string buf
    (Printf.sprintf "  \"events_per_sec\": %.1f,\n"
       (if scale_seconds > 0. then
          float_of_int scale.wall_events /. scale_seconds
        else 0.));
  Buffer.add_string buf
    (Printf.sprintf "  \"minor_words_per_event\": %.4f,\n"
       (if scale.wall_events > 0 then
          minor_words /. float_of_int scale.wall_events
        else 0.));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scale\": {\"relays\": %d, \"slots\": %d, \"completed\": %d, \
        \"peak_active\": %d, \"pool_recycles\": %d, \"seconds\": %.3f, \
        \"sim_events\": %d, \"ttlb_p50_s\": %.6f, \"ttlb_p90_s\": %.6f, \
        \"ttlb_p99_s\": %.6f},\n"
       scale.relays scale.slots scale.completed scale.peak_active
       scale.pool_recycles scale_seconds scale.wall_events
       (sketch_q scale.ttlb_all 0.5) (sketch_q scale.ttlb_all 0.9)
       (sketch_q scale.ttlb_all 0.99));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"paired\": {\"relays\": %d, \"slots\": %d, \"lifetimes\": %d,\n\
       \    \"circuitstart\": %s,\n    \"slowstart\": %s,\n\
       \    \"predictive\": %s}\n"
       paired.relays paired.slots
       (Workload.Network_experiment.lifetimes_goal paired)
       (side cs) (side ss) (side pr));
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[json] %s\n" path

(* PR 9: the sharded-engine speedup probe.  The same consensus-scale
   workload once on the classic engine (the sequential baseline) and
   once per shard count.  The sharded digests must agree byte-for-byte
   — the shard count chooses how the schedule executes, never what it
   computes — and the wall-clock ratios are the headline speedups of
   BENCH_pr9.json.  On hosts with fewer cores than shards the ratios
   record honest slowdowns; the speedup floors carry min-cores markers
   so the trajectory gate skips them there and enforces them on the
   multi-core reference runner. *)

let result_digest (r : Workload.Network_experiment.result) =
  Digest.to_hex (Digest.string (Marshal.to_string r []))

let write_shard_json path ~(config : Workload.Network_experiment.config)
    ~(s4 : Workload.Network_experiment.result) ~seq_s ~s1_s ~s2_s ~s4_s
    ~words4 ~digest =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"pr\": 9,\n  \"host_cores\": %d,\n"
       (Domain.recommended_domain_count ()));
  (* Headline metrics first and exactly once (the gate's key scanner
     takes the first occurrence): throughput and allocation rate of
     the 4-shard run, then the seq-over-sharded wall-clock ratios. *)
  Buffer.add_string buf
    (Printf.sprintf "  \"events_per_sec\": %.1f,\n"
       (if s4_s > 0. then float_of_int s4.wall_events /. s4_s else 0.));
  Buffer.add_string buf
    (Printf.sprintf "  \"minor_words_per_event\": %.4f,\n"
       (if s4.wall_events > 0 then words4 /. float_of_int s4.wall_events
        else 0.));
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_2\": %.4f,\n  \"speedup_4\": %.4f,\n"
       (if s2_s > 0. then seq_s /. s2_s else 0.)
       (if s4_s > 0. then seq_s /. s4_s else 0.));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"shard_probe\": {\"relays\": %d, \"slots\": %d, \"lifetimes\": %d, \
        \"seq_seconds\": %.3f, \"shard1_seconds\": %.3f, \"shard2_seconds\": \
        %.3f, \"shard4_seconds\": %.3f, \"sim_events\": %d, \"digest\": \
        \"%s\"}\n"
       config.relays config.slots
       (Workload.Network_experiment.lifetimes_goal config)
       seq_s s1_s s2_s s4_s s4.wall_events digest);
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[json] %s\n" path

let shard_probe () =
  section "Sharded-engine speedup probe (BENCH_pr9.json)";
  let config =
    { Workload.Network_experiment.default_config with
      relays = 2_000;
      slots = 100_000;
      target_lifetimes = 500_000;
      mean_think = Engine.Time.ms 200;
    }
  in
  let timed_run shards =
    let config = { config with Workload.Network_experiment.shards } in
    let t0 = Unix.gettimeofday () in
    let r, words =
      Workload.Network_experiment.run_instrumented ~seed:7 config
    in
    let seconds = Unix.gettimeofday () -. t0 in
    note_events r.wall_events;
    (r, seconds, words)
  in
  let seq, seq_s, _ = timed_run 0 in
  let s1, s1_s, _ = timed_run 1 in
  let s2, s2_s, _ = timed_run 2 in
  let s4, s4_s, words4 = timed_run 4 in
  let d1 = result_digest s1 in
  let d2 = result_digest s2 in
  let d4 = result_digest s4 in
  if d1 <> d2 || d1 <> d4 then
    failwith
      (Printf.sprintf
         "shard probe: sharded results diverge (shards=1 %s, shards=2 %s, \
          shards=4 %s)"
         d1 d2 d4);
  Printf.printf
    "seq: %.1fs (%d done)  shards=1: %.1fs  shards=2: %.1fs (%.2fx)  \
     shards=4: %.1fs (%.2fx)  digests agree (%d cores)\n"
    seq_s seq.completed s1_s s2_s
    (if s2_s > 0. then seq_s /. s2_s else 0.)
    s4_s
    (if s4_s > 0. then seq_s /. s4_s else 0.)
    (Domain.recommended_domain_count ());
  write_shard_json "BENCH_pr9.json" ~config ~s4 ~seq_s ~s1_s ~s2_s ~s4_s
    ~words4 ~digest:d1

let table_network () =
  section
    "Table T-network (extra): consensus-scale round-level workload (paired + \
     full scale)";
  let paired = Workload.Network_experiment.default_config in
  let c =
    Workload.Network_experiment.compare_strategies ~jobs:!jobs ~seed:42 paired
  in
  note_events c.circuit_start.wall_events;
  note_events c.slow_start.wall_events;
  note_events c.predictive.wall_events;
  let t =
    Analysis.Table.create
      ~columns:
        [ "strategy"; "done"; "arrivals"; "abandoned"; "p50 ttlb"; "p90 ttlb";
          "p99 ttlb"; "rounds"; "peak live" ]
  in
  let row label (r : Workload.Network_experiment.result) =
    Analysis.Table.add_row t
      [
        label;
        string_of_int r.completed;
        string_of_int r.arrivals;
        string_of_int r.abandoned;
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.5);
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.9);
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.99);
        string_of_int r.rounds;
        string_of_int r.peak_active;
      ]
  in
  row "circuitstart" c.circuit_start;
  row "slowstart" c.slow_start;
  row "predictive" c.predictive;
  print_string (Analysis.Table.render t);
  let gap =
    Analysis.Cdf.horizontal_gap
      ~better:(Analysis.Cdf.of_sketch c.circuit_start.ttlb_all)
      ~worse:(Analysis.Cdf.of_sketch c.slow_start.ttlb_all)
  in
  Printf.printf
    "largest horizontal gap (CircuitStart earlier by): %.3fs over %d paired \
     lifetimes\n"
    gap c.circuit_start.completed;
  (* The full-scale run: sequential on the main domain so the minor-GC
     counter is attributable to this run alone. *)
  let scale_config =
    { Workload.Network_experiment.default_config with
      relays = 2_000;
      slots = 100_000;
      target_lifetimes = 1_000_000;
      mean_think = Engine.Time.ms 200;
    }
  in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let scale = Workload.Network_experiment.run ~seed:7 scale_config in
  let scale_seconds = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. minor0 in
  note_events scale.wall_events;
  Format.printf "scale: %a@." Workload.Network_experiment.pp_result scale;
  Printf.printf
    "scale: %.1fs wall, %d events, %.0f events/sec, %.2f minor words/event\n"
    scale_seconds scale.wall_events
    (float_of_int scale.wall_events /. scale_seconds)
    (minor_words /. float_of_int scale.wall_events);
  write_network_json "BENCH_pr7.json" ~paired ~cs:c.circuit_start
    ~ss:c.slow_start ~pr:c.predictive ~scale ~scale_seconds ~minor_words;
  shard_probe ()

(* ------------------------------------------------------------------ *)
(* table-churn-scale: the same consensus-scale workload with the relay
   churn schedule switched on — paired CS-vs-SS under churn, then one
   full-scale churned run whose throughput and allocation rate are the
   headline metrics of BENCH_pr8.json (gated by bench/trajectory.exe
   against bench/perf_floors.txt, so the churn machinery can never
   silently eat the round-level hot path). *)

let write_churn_json path
    ~(paired : Workload.Network_experiment.config)
    ~(cs : Workload.Network_experiment.result)
    ~(ss : Workload.Network_experiment.result)
    ~(pr : Workload.Network_experiment.result)
    ~(scale : Workload.Network_experiment.result) ~scale_seconds ~minor_words =
  let side (r : Workload.Network_experiment.result) =
    Printf.sprintf
      "{\"completed\": %d, \"arrivals\": %d, \"refused\": %d, \"kills\": %d, \
       \"resumed\": %d, \"gone_draws\": %d, \"draining_refusals\": %d, \
       \"ttlb_p50_s\": %.6f, \"ttlb_p90_s\": %.6f, \"ttlb_p99_s\": %.6f, \
       \"sim_events\": %d}"
      r.completed r.arrivals r.refused_arrivals r.churn_kills r.resumed
      r.gone_draws r.draining_refusals
      (sketch_q r.ttlb_all 0.5) (sketch_q r.ttlb_all 0.9)
      (sketch_q r.ttlb_all 0.99) r.wall_events
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"pr\": 8,\n  \"jobs\": %d,\n" !jobs);
  (* Headline metrics first and exactly once: the trajectory gate's
     key scanner takes the first occurrence. *)
  Buffer.add_string buf
    (Printf.sprintf "  \"events_per_sec\": %.1f,\n"
       (if scale_seconds > 0. then
          float_of_int scale.wall_events /. scale_seconds
        else 0.));
  Buffer.add_string buf
    (Printf.sprintf "  \"minor_words_per_event\": %.4f,\n"
       (if scale.wall_events > 0 then
          minor_words /. float_of_int scale.wall_events
        else 0.));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scale\": {\"relays\": %d, \"slots\": %d, \"completed\": %d, \
        \"peak_active\": %d, \"departs\": %d, \"crashes\": %d, \"drains\": \
        %d, \"restarts\": %d, \"epochs\": %d, \"kills\": %d, \"resumed\": \
        %d, \"gone_draws\": %d, \"draining_refusals\": %d, \"seconds\": \
        %.3f, \"sim_events\": %d, \"ttlb_p50_s\": %.6f, \"ttlb_p90_s\": \
        %.6f, \"ttlb_p99_s\": %.6f},\n"
       scale.relays scale.slots scale.completed scale.peak_active
       scale.churn_departs scale.churn_crashes scale.churn_drains_completed
       scale.churn_restarts scale.churn_epochs scale.churn_kills scale.resumed
       scale.gone_draws scale.draining_refusals scale_seconds scale.wall_events
       (sketch_q scale.ttlb_all 0.5) (sketch_q scale.ttlb_all 0.9)
       (sketch_q scale.ttlb_all 0.99));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"paired\": {\"relays\": %d, \"slots\": %d, \"lifetimes\": %d,\n\
       \    \"circuitstart\": %s,\n    \"slowstart\": %s,\n\
       \    \"predictive\": %s}\n"
       paired.relays paired.slots
       (Workload.Network_experiment.lifetimes_goal paired)
       (side cs) (side ss) (side pr));
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[json] %s\n" path

(* The churn knobs shared by the paired and the scale run: a 2%/s
   departure hazard against a 10%/s rejoin hazard keeps ~83% of the
   population up in steady state, with half the departures crashing and
   half draining over a 2 s grace, under a 5 s consensus epoch. *)
let churn_knobs (c : Workload.Network_experiment.config) =
  { c with
    Workload.Network_experiment.leave_hazard = 0.02;
    join_hazard = 0.1;
    crash_fraction = 0.5;
    drain_grace = Engine.Time.s 2;
    epoch_period = Engine.Time.s 5;
    churn_tick = Engine.Time.s 1;
    spare_relays = c.relays / 10;
  }

let table_churn_scale () =
  section
    "Table T-churn-scale (extra): consensus-scale workload under relay churn \
     (paired + full scale)";
  let paired = churn_knobs Workload.Network_experiment.default_config in
  let c =
    Workload.Network_experiment.compare_strategies ~jobs:!jobs ~seed:42 paired
  in
  note_events c.circuit_start.wall_events;
  note_events c.slow_start.wall_events;
  note_events c.predictive.wall_events;
  let t =
    Analysis.Table.create
      ~columns:
        [ "strategy"; "done"; "arrivals"; "kills"; "resumed"; "gone";
          "drain-ref"; "p50 ttlb"; "p90 ttlb"; "p99 ttlb" ]
  in
  let row label (r : Workload.Network_experiment.result) =
    Analysis.Table.add_row t
      [
        label;
        string_of_int r.completed;
        string_of_int r.arrivals;
        string_of_int r.churn_kills;
        string_of_int r.resumed;
        string_of_int r.gone_draws;
        string_of_int r.draining_refusals;
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.5);
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.9);
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.99);
      ]
  in
  row "circuitstart" c.circuit_start;
  row "slowstart" c.slow_start;
  row "predictive" c.predictive;
  print_string (Analysis.Table.render t);
  let gap =
    Analysis.Cdf.horizontal_gap
      ~better:(Analysis.Cdf.of_sketch c.circuit_start.ttlb_all)
      ~worse:(Analysis.Cdf.of_sketch c.slow_start.ttlb_all)
  in
  Printf.printf
    "largest horizontal gap (CircuitStart earlier by): %.3fs over %d paired \
     lifetimes under churn\n"
    gap c.circuit_start.completed;
  Printf.printf
    "churn: %d departs (%d crashes, %d drains done), %d restarts, %d epochs, \
     %d kills -> %d resumed\n"
    c.circuit_start.churn_departs c.circuit_start.churn_crashes
    c.circuit_start.churn_drains_completed c.circuit_start.churn_restarts
    c.circuit_start.churn_epochs c.circuit_start.churn_kills
    c.circuit_start.resumed;
  (* The full-scale churned run: sequential on the main domain so the
     minor-GC counter is attributable to this run alone. *)
  let scale_config =
    churn_knobs
      { Workload.Network_experiment.default_config with
        relays = 2_000;
        slots = 100_000;
        target_lifetimes = 1_000_000;
        mean_think = Engine.Time.ms 200;
      }
  in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let scale = Workload.Network_experiment.run ~seed:7 scale_config in
  let scale_seconds = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. minor0 in
  note_events scale.wall_events;
  Format.printf "scale: %a@." Workload.Network_experiment.pp_result scale;
  Printf.printf
    "scale: %.1fs wall, %d events, %.0f events/sec, %.2f minor words/event\n"
    scale_seconds scale.wall_events
    (float_of_int scale.wall_events /. scale_seconds)
    (minor_words /. float_of_int scale.wall_events);
  write_churn_json "BENCH_pr8.json" ~paired ~cs:c.circuit_start
    ~ss:c.slow_start ~pr:c.predictive ~scale ~scale_seconds ~minor_words

(* ------------------------------------------------------------------ *)
(* table-predictive: the predictive receding-horizon controller under
   the consensus-scale workload — a three-strategy paired table, then
   one full-scale predictive run whose throughput and allocation rate
   are the headline metrics of BENCH_pr10.json (gated by
   bench/trajectory.exe against bench/perf_floors.txt, so planning
   stays off the per-feedback hot path: the planner runs once per
   round and its commit is allocation-free). *)

let write_predictive_json path
    ~(paired : Workload.Network_experiment.config)
    ~(cs : Workload.Network_experiment.result)
    ~(ss : Workload.Network_experiment.result)
    ~(pr : Workload.Network_experiment.result)
    ~(scale : Workload.Network_experiment.result) ~scale_seconds ~minor_words =
  let side (r : Workload.Network_experiment.result) =
    Printf.sprintf
      "{\"completed\": %d, \"arrivals\": %d, \"refused\": %d, \"abandoned\": \
       %d, \"ttlb_p50_s\": %.6f, \"ttlb_p90_s\": %.6f, \"ttlb_p99_s\": %.6f, \
       \"rounds\": %d, \"sim_events\": %d}"
      r.completed r.arrivals r.refused_arrivals r.abandoned
      (sketch_q r.ttlb_all 0.5) (sketch_q r.ttlb_all 0.9)
      (sketch_q r.ttlb_all 0.99) r.rounds r.wall_events
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"pr\": 10,\n  \"jobs\": %d,\n" !jobs);
  (* Headline metrics first and exactly once: the trajectory gate's
     key scanner takes the first occurrence. *)
  Buffer.add_string buf
    (Printf.sprintf "  \"events_per_sec\": %.1f,\n"
       (if scale_seconds > 0. then
          float_of_int scale.wall_events /. scale_seconds
        else 0.));
  Buffer.add_string buf
    (Printf.sprintf "  \"minor_words_per_event\": %.4f,\n"
       (if scale.wall_events > 0 then
          minor_words /. float_of_int scale.wall_events
        else 0.));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scale\": {\"strategy\": \"predictive\", \"relays\": %d, \
        \"slots\": %d, \"completed\": %d, \"peak_active\": %d, \
        \"pool_recycles\": %d, \"seconds\": %.3f, \"sim_events\": %d, \
        \"ttlb_p50_s\": %.6f, \"ttlb_p90_s\": %.6f, \"ttlb_p99_s\": %.6f},\n"
       scale.relays scale.slots scale.completed scale.peak_active
       scale.pool_recycles scale_seconds scale.wall_events
       (sketch_q scale.ttlb_all 0.5) (sketch_q scale.ttlb_all 0.9)
       (sketch_q scale.ttlb_all 0.99));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"paired\": {\"relays\": %d, \"slots\": %d, \"lifetimes\": %d,\n\
       \    \"circuitstart\": %s,\n    \"slowstart\": %s,\n\
       \    \"predictive\": %s}\n"
       paired.relays paired.slots
       (Workload.Network_experiment.lifetimes_goal paired)
       (side cs) (side ss) (side pr));
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[json] %s\n" path

let table_predictive () =
  section
    "Table T-predictive (extra): receding-horizon controller, three-strategy \
     paired + full scale";
  let paired = Workload.Network_experiment.default_config in
  let c =
    Workload.Network_experiment.compare_strategies ~jobs:!jobs ~seed:42 paired
  in
  note_events c.circuit_start.wall_events;
  note_events c.slow_start.wall_events;
  note_events c.predictive.wall_events;
  let t =
    Analysis.Table.create
      ~columns:
        [ "strategy"; "done"; "arrivals"; "abandoned"; "p50 ttlb"; "p90 ttlb";
          "p99 ttlb"; "rounds" ]
  in
  let row label (r : Workload.Network_experiment.result) =
    Analysis.Table.add_row t
      [
        label;
        string_of_int r.completed;
        string_of_int r.arrivals;
        string_of_int r.abandoned;
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.5);
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.9);
        Printf.sprintf "%.3fs" (sketch_q r.ttlb_all 0.99);
        string_of_int r.rounds;
      ]
  in
  row "circuitstart" c.circuit_start;
  row "slowstart" c.slow_start;
  row "predictive" c.predictive;
  print_string (Analysis.Table.render t);
  (* The full-scale predictive run: sequential on the main domain so
     the minor-GC counter is attributable to this run alone. *)
  let scale_config =
    { Workload.Network_experiment.default_config with
      strategy = Circuitstart.Controller.Predictive;
      relays = 2_000;
      slots = 100_000;
      target_lifetimes = 1_000_000;
      mean_think = Engine.Time.ms 200;
    }
  in
  let minor0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let scale = Workload.Network_experiment.run ~seed:7 scale_config in
  let scale_seconds = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. minor0 in
  note_events scale.wall_events;
  Format.printf "scale: %a@." Workload.Network_experiment.pp_result scale;
  Printf.printf
    "scale: %.1fs wall, %d events, %.0f events/sec, %.2f minor words/event\n"
    scale_seconds scale.wall_events
    (float_of_int scale.wall_events /. scale_seconds)
    (minor_words /. float_of_int scale.wall_events);
  write_predictive_json "BENCH_pr10.json" ~paired ~cs:c.circuit_start
    ~ss:c.slow_start ~pr:c.predictive ~scale ~scale_seconds ~minor_words

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment plus the
   engine hot paths, all grouped in one run. *)

let micro () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let quick_trace distance () =
    ignore
      (Workload.Trace_experiment.run
         { (trace_config ~strategy:Circuitstart.Controller.Circuit_start ~distance) with
           Workload.Trace_experiment.transfer_bytes = Engine.Units.kib 64;
           horizon = Engine.Time.s 3;
         })
  in
  let quick_star transport () =
    ignore
      (Workload.Star_experiment.run
         { (star_config transport) with
           Workload.Star_experiment.circuit_count = 4;
           relay_count = 8;
           transfer_bytes = Engine.Units.kib 64;
           horizon = Engine.Time.s 30;
         })
  in
  let event_queue_churn () =
    let q = Engine.Event_queue.create () in
    for i = 0 to 999 do
      ignore (Engine.Event_queue.add q ~time:(Engine.Time.us (i * 37 mod 1000)) i)
    done;
    let rec drain () = match Engine.Event_queue.pop q with Some _ -> drain () | None -> () in
    drain ()
  in
  let rng_churn () =
    let rng = Engine.Rng.create 1 in
    for _ = 1 to 1000 do
      ignore (Engine.Rng.int rng 1000)
    done
  in
  let controller_churn () =
    let c = Circuitstart.Controller.create Circuitstart.Controller.Circuit_start in
    let now = ref Engine.Time.zero in
    for _ = 1 to 1000 do
      now := Engine.Time.add !now (Engine.Time.us 500);
      Circuitstart.Controller.on_feedback c ~now:!now ~rtt:(Engine.Time.ms 40) ()
    done
  in
  let tests =
    Test.make_grouped ~name:"circuitstart"
      [
        Test.make ~name:"engine/event-queue-1k" (Staged.stage event_queue_churn);
        Test.make ~name:"engine/rng-1k" (Staged.stage rng_churn);
        Test.make ~name:"core/controller-1k-feedbacks" (Staged.stage controller_churn);
        Test.make ~name:"fig1a/trace-d1" (Staged.stage (quick_trace 1));
        Test.make ~name:"fig1b/trace-d3" (Staged.stage (quick_trace 3));
        Test.make ~name:"fig1c/star-circuitstart"
          (Staged.stage
             (quick_star
                (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start)));
        Test.make ~name:"t1/star-sendme"
          (Staged.stage (quick_star Workload.Star_experiment.Legacy_sendme));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances tests in
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = benchmark () in
  List.iter
    (fun result ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "%-32s %12.0f ns/run\n" name t
          | _ -> Printf.printf "%-32s (no estimate)\n" name)
        result)
    results

(* ------------------------------------------------------------------ *)
(* Timing, speedup probe and the BENCH json report *)

(* A batch of identical-shape small star runs (different seeds), timed
   once with one worker and once with the requested pool: the ratio is
   the end-to-end speedup the pool delivers on this machine.  On a
   single-core host the ratio is ~1 by construction. *)
let speedup_probe () =
  let tasks =
    List.init
      (2 * Stdlib.max 1 !jobs)
      (fun i ->
        { (star_config
             (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start))
          with
          Workload.Star_experiment.circuit_count = 4;
          relay_count = 8;
          transfer_bytes = Engine.Units.kib 64;
          horizon = Engine.Time.s 30;
          seed = i + 1;
        })
  in
  let time j =
    let t0 = Unix.gettimeofday () in
    ignore (Workload.Star_experiment.run_many ~jobs:j tasks
            : Workload.Star_experiment.result list);
    Unix.gettimeofday () -. t0
  in
  let seq_seconds = time 1 in
  let par_seconds = time !jobs in
  (List.length tasks, seq_seconds, par_seconds)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json path ~timed ~probe =
  let total_seconds = List.fold_left (fun acc (_, s, _) -> acc +. s) 0. timed in
  let total_events = List.fold_left (fun acc (_, _, e) -> acc + e) 0 timed in
  let probe_tasks, seq_s, par_s = probe in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"pr\": 2,\n  \"jobs\": %d,\n" !jobs);
  Buffer.add_string buf "  \"targets\": [\n";
  List.iteri
    (fun i (name, seconds, events) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": \"%s\", \"seconds\": %.6f, \"sim_events\": %d}%s\n"
           (json_escape name) seconds events
           (if i = List.length timed - 1 then "" else ",")))
    timed;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf (Printf.sprintf "  \"total_seconds\": %.6f,\n" total_seconds);
  Buffer.add_string buf (Printf.sprintf "  \"total_sim_events\": %d,\n" total_events);
  Buffer.add_string buf
    (Printf.sprintf "  \"events_per_sec\": %.1f,\n"
       (if total_seconds > 0. then float_of_int total_events /. total_seconds else 0.));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"speedup_probe\": {\"tasks\": %d, \"seq_seconds\": %.6f, \"par_seconds\": \
        %.6f, \"speedup\": %.3f}\n"
       probe_tasks seq_s par_s
       (if par_s > 0. then seq_s /. par_s else 1.));
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[json] %s\n" path

(* ------------------------------------------------------------------ *)

let all_targets =
  [
    ("fig1a", fig1a);
    ("fig1b", fig1b);
    ("fig1c", fig1c);
    ("table-startup", table_startup);
    ("table-gamma", table_gamma);
    ("table-distance", table_distance);
    ("table-optmodel", table_optmodel);
    ("table-compensation", table_compensation);
    ("table-adaptive", table_adaptive);
    ("fig-backprop", fig_backprop);
    ("table-loss", table_loss);
    ("table-cross", table_cross);
    ("table-seeds", table_seeds);
    ("table-faults", table_faults);
    ("table-churn", table_churn);
    ("table-recovery", table_recovery);
    ("table-overload", table_overload);
    ("table-network", table_network);
    ("table-churn-scale", table_churn_scale);
    ("table-predictive", table_predictive);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse args acc_names micro_flag =
    match args with
    | [] -> (List.rev acc_names, micro_flag)
    | "--micro" :: rest -> parse rest acc_names true
    | "--out" :: dir :: rest ->
        out_dir := dir;
        parse rest acc_names micro_flag
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            parse rest acc_names micro_flag
        | _ ->
            prerr_endline "--jobs needs a positive integer";
            exit 2)
    | "--bench-json" :: path :: rest ->
        bench_json := path;
        parse rest acc_names micro_flag
    | name :: rest -> parse rest (name :: acc_names) micro_flag
  in
  let names, micro_flag = parse args [] false in
  let targets =
    match names with
    | [] -> all_targets
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name all_targets with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown target %s; known: %s\n" name
                  (String.concat ", " (List.map fst all_targets));
                exit 2)
          names
  in
  let timed =
    List.map
      (fun (name, f) ->
        sim_events := 0;
        let t0 = Unix.gettimeofday () in
        f ();
        (name, Unix.gettimeofday () -. t0, !sim_events))
      targets
  in
  if micro_flag then micro ();
  section (Printf.sprintf "Wall-clock timing (%d worker domain%s)" !jobs
             (if !jobs = 1 then "" else "s"));
  let t =
    Analysis.Table.create ~columns:[ "target"; "seconds"; "sim events"; "events/s" ]
  in
  List.iter
    (fun (name, seconds, events) ->
      Analysis.Table.add_row t
        [
          name;
          Printf.sprintf "%.3f" seconds;
          string_of_int events;
          (if seconds > 0. then Printf.sprintf "%.0f" (float_of_int events /. seconds)
           else "-");
        ])
    timed;
  print_string (Analysis.Table.render t);
  let ((probe_tasks, seq_s, par_s) as probe) = speedup_probe () in
  Printf.printf
    "speedup probe: %d star runs  jobs=1: %.3fs  jobs=%d: %.3fs  speedup %.2fx\n"
    probe_tasks seq_s !jobs par_s
    (if par_s > 0. then seq_s /. par_s else 1.);
  write_bench_json !bench_json ~timed ~probe;
  Printf.printf "\nDone: %d target%s%s.\n" (List.length targets)
    (if List.length targets = 1 then "" else "s")
    (if micro_flag then " + micro benchmarks" else "")

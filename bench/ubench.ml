(* Scheduler microbenchmarks: timer-wheel engine vs the pre-PR binary
   heap, head to head on the event patterns that dominate real runs.

   Three synthetic loads, each implemented twice with an identical
   event sequence:

     timer-churn       pure arm/fire/rearm of per-connection timeout
                       clocks — the retransmission-watchdog pattern,
                       where almost every armed clock is rescheduled.
     cell-storm        star-topology cell forwarding: per cell a
                       tx-done clock, a propagation one-shot and a
                       feedback watchdog that is armed at send and
                       cancelled at delivery.
     retransmit-heavy  cell-storm under deterministic loss, so the
                       watchdogs actually fire, back off and drive
                       retransmissions.

   The baseline side is a frozen copy of the heap-only [Event_queue]
   and [Sim.run] this PR replaced (peek-then-pop loop, a fresh closure
   + entry + handle per scheduled occurrence, lazy cancellation).  The
   wheel side runs the live [Engine.Sim] with preallocated
   [Sim.Timer]s rearmed in place, as the real hot callers now do.

   Reported per (target, side): events/sec and GC minor words per
   executed event.  Written to BENCH_pr4.json, alongside the speedup
   ratios the acceptance bar cares about.

     bench/ubench.exe [--smoke] [--json F]

   --smoke shrinks every load for CI; --json overrides the report path
   (default BENCH_pr4.json). *)

module Time = Engine.Time

(* ------------------------------------------------------------------ *)
(* The pre-PR scheduler, frozen.  A verbatim copy (modulo module
   paths) of lib/engine/event_queue.ml and the Sim.run loop at the
   commit before the timer wheel landed — the honest baseline for the
   A/B, since the live engine can no longer be built heap-only. *)

module Baseline = struct
  module Eq = struct
    type 'a entry = {
      time : Time.t;
      seq : int;
      payload : 'a;
      mutable cancelled : bool;
      mutable fired : bool;
    }

    type handle = H : 'a entry -> handle

    type 'a t = {
      mutable heap : 'a entry array;
      mutable len : int;
      mutable next_seq : int;
      mutable live : int;
      dummy : 'a entry;
    }

    let make_dummy () : 'a entry =
      { time = Time.zero; seq = min_int; payload = Obj.magic (); cancelled = true;
        fired = true }

    let create ?(capacity = 256) () =
      let dummy = make_dummy () in
      { heap = Array.make capacity dummy; len = 0; next_seq = 0; live = 0; dummy }

    let entry_before a b =
      let c = Int64.compare (Time.to_ns a.time) (Time.to_ns b.time) in
      if c <> 0 then c < 0 else a.seq < b.seq

    let grow q =
      let cap = Array.length q.heap in
      if q.len = cap then begin
        let nheap = Array.make (cap * 2) q.dummy in
        Array.blit q.heap 0 nheap 0 q.len;
        q.heap <- nheap
      end

    let rec sift_up q i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if entry_before q.heap.(i) q.heap.(parent) then begin
          let tmp = q.heap.(i) in
          q.heap.(i) <- q.heap.(parent);
          q.heap.(parent) <- tmp;
          sift_up q parent
        end
      end

    let rec sift_down q i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < q.len && entry_before q.heap.(l) q.heap.(!smallest) then smallest := l;
      if r < q.len && entry_before q.heap.(r) q.heap.(!smallest) then smallest := r;
      if !smallest <> i then begin
        let tmp = q.heap.(i) in
        q.heap.(i) <- q.heap.(!smallest);
        q.heap.(!smallest) <- tmp;
        sift_down q !smallest
      end

    let add q ~time payload =
      let entry =
        { time; seq = q.next_seq; payload; cancelled = false; fired = false }
      in
      q.next_seq <- q.next_seq + 1;
      grow q;
      q.heap.(q.len) <- entry;
      q.len <- q.len + 1;
      q.live <- q.live + 1;
      sift_up q (q.len - 1);
      H entry

    let cancel q (H entry) =
      if not entry.cancelled && not entry.fired then begin
        entry.cancelled <- true;
        q.live <- q.live - 1
      end

    let remove_top q =
      let top = q.heap.(0) in
      q.len <- q.len - 1;
      if q.len > 0 then begin
        q.heap.(0) <- q.heap.(q.len);
        q.heap.(q.len) <- q.dummy;
        sift_down q 0
      end
      else q.heap.(0) <- q.dummy;
      top

    let rec pop q =
      if q.len = 0 then None
      else
        let top = remove_top q in
        if top.cancelled then pop q
        else begin
          q.live <- q.live - 1;
          top.fired <- true;
          Some (top.time, top.payload)
        end

    let rec peek_time q =
      if q.len = 0 then None
      else
        let top = q.heap.(0) in
        if top.cancelled then begin
          ignore (remove_top q);
          peek_time q
        end
        else Some top.time

    let is_empty q = q.live = 0
  end

  module Sim = struct
    type t = {
      queue : (unit -> unit) Eq.t;
      mutable clock : Time.t;
      mutable executed : int;
    }

    let create () = { queue = Eq.create (); clock = Time.zero; executed = 0 }

    let schedule_after t delay f =
      Eq.add t.queue ~time:(Time.add t.clock delay) f

    let cancel t h = Eq.cancel t.queue h

    (* The old peek-then-pop drain loop, with its double traversal of
       the heap top per event. *)
    let run ?until t =
      let rec loop () =
        match Eq.peek_time t.queue with
        | None -> ()
        | Some time -> (
            match until with
            | Some limit when Time.(time > limit) -> t.clock <- limit
            | _ -> (
                match Eq.pop t.queue with
                | None -> ()
                | Some (time, f) ->
                    t.clock <- time;
                    t.executed <- t.executed + 1;
                    f ();
                    loop ()))
      in
      loop ();
      match until with
      | Some limit when Time.(t.clock < limit) && Eq.is_empty t.queue ->
          t.clock <- limit
      | _ -> ()
  end
end

(* ------------------------------------------------------------------ *)
(* Workloads.  Each comes as a [baseline] and a [wheel] runner that
   execute the same logical event sequence; both return the number of
   events the scheduler executed so the two sides can be checked
   against each other. *)

(* timer-churn: [n] connections each run a timeout clock for [rounds]
   fires.  On every fire the clock rearms at a varying delay; every
   third round the fresh arm is immediately superseded (feedback beat
   the watchdog), which on the heap means cancel + reschedule and on
   the wheel an in-place rearm. *)

let churn_delay i r = Time.ns ((((i * 7919) + (r * 104_729)) mod 2_000_000) + 1_000)

let timer_churn_baseline ~n ~rounds () =
  let sim = Baseline.Sim.create () in
  let handles = Array.make n None in
  let round = Array.make n 0 in
  let rec fire i () =
    let r = round.(i) + 1 in
    round.(i) <- r;
    if r < rounds then begin
      let h = Baseline.Sim.schedule_after sim (churn_delay i r) (fire i) in
      if r mod 3 = 0 then begin
        (* Superseded: cancel the entry we just paid for and pay for
           another — the old hot callers' rearm idiom. *)
        Baseline.Sim.cancel sim h;
        handles.(i) <- Some (Baseline.Sim.schedule_after sim (churn_delay i r) (fire i))
      end
      else handles.(i) <- Some h
    end
  in
  for i = 0 to n - 1 do
    handles.(i) <- Some (Baseline.Sim.schedule_after sim (churn_delay i 0) (fire i))
  done;
  Baseline.Sim.run sim;
  sim.executed

let timer_churn_wheel ~n ~rounds () =
  let sim = Engine.Sim.create () in
  let timers = Array.make n None in
  let round = Array.make n 0 in
  let timer_of i = match timers.(i) with Some tm -> tm | None -> assert false in
  let fire i () =
    let r = round.(i) + 1 in
    round.(i) <- r;
    if r < rounds then begin
      let tm = timer_of i in
      Engine.Sim.Timer.arm_after sim tm (churn_delay i r);
      if r mod 3 = 0 then
        (* Superseded: the same clock just moves. *)
        Engine.Sim.Timer.arm_after sim tm (churn_delay i r)
    end
  in
  for i = 0 to n - 1 do
    let tm = Engine.Sim.Timer.create sim (fire i) in
    timers.(i) <- Some tm;
    Engine.Sim.Timer.arm_after sim tm (churn_delay i 0)
  done;
  Engine.Sim.run sim;
  Engine.Sim.events_executed sim

(* cell-storm: [links] spokes of a star each serialize [cells] cells
   back to back.  Per cell: a tx-done clock at the serialization time,
   a propagation one-shot at tx-done (inherently per-packet on both
   sides), and a feedback watchdog armed at send and cancelled when
   the delivery comes back.  2 executed events per cell. *)

let tx_time = Time.us 136 (* 512-byte cell at ~30 Mbit/s *)
let prop_delay = Time.ms 10
let watchdog_delay = Time.ms 300

let cell_storm_baseline ~links ~cells () =
  let sim = Baseline.Sim.create () in
  let sent = Array.make links 0 in
  let watchdog = Array.make links None in
  let rec send i () =
    sent.(i) <- sent.(i) + 1;
    (* Feedback watchdog for this cell. *)
    watchdog.(i) <- Some (Baseline.Sim.schedule_after sim watchdog_delay (fun () -> ()));
    ignore
      (Baseline.Sim.schedule_after sim tx_time (fun () ->
           (* tx done: propagation one-shot carries the cell. *)
           ignore
             (Baseline.Sim.schedule_after sim prop_delay (fun () ->
                  (* delivered: feedback cancels the watchdog. *)
                  (match watchdog.(i) with
                  | Some h -> Baseline.Sim.cancel sim h
                  | None -> ());
                  if sent.(i) < cells then send i ()))))
  in
  for i = 0 to links - 1 do
    send i ()
  done;
  Baseline.Sim.run sim;
  sim.executed

let cell_storm_wheel ~links ~cells () =
  let sim = Engine.Sim.create () in
  let sent = Array.make links 0 in
  let tx = Array.make links None in
  let wd = Array.make links None in
  let deliver = Array.make links (fun () -> ()) in
  let get a i = match a.(i) with Some tm -> tm | None -> assert false in
  let send i =
    sent.(i) <- sent.(i) + 1;
    Engine.Sim.Timer.arm_after sim (get wd i) watchdog_delay;
    Engine.Sim.Timer.arm_after sim (get tx i) tx_time
  in
  for i = 0 to links - 1 do
    wd.(i) <- Some (Engine.Sim.Timer.create sim (fun () -> ()));
    deliver.(i) <-
      (fun () ->
        Engine.Sim.Timer.cancel sim (get wd i);
        if sent.(i) < cells then send i);
    tx.(i) <-
      Some
        (Engine.Sim.Timer.create sim (fun () ->
             ignore (Engine.Sim.schedule_after sim prop_delay deliver.(i))))
  done;
  for i = 0 to links - 1 do
    send i
  done;
  Engine.Sim.run sim;
  Engine.Sim.events_executed sim

(* retransmit-heavy: cell-storm where every [loss_every]-th cell is
   lost in flight, so the watchdog fires for real, backs off and
   retransmits; the retry always succeeds.  Lost cell: tx-done +
   watchdog + retry tx-done + delivery = 4 events; clean cell: 2. *)

let loss_every = 5

let retransmit_baseline ~links ~cells () =
  let sim = Baseline.Sim.create () in
  let sent = Array.make links 0 in
  let watchdog = Array.make links None in
  let rec send i ~lose () =
    (if not lose then sent.(i) <- sent.(i) + 1);
    (* Lost: the watchdog retries directly — a fresh closure per
       attempt, like the old hop sender. *)
    let retransmit () = send i ~lose:false () in
    watchdog.(i) <- Some (Baseline.Sim.schedule_after sim watchdog_delay retransmit);
    ignore
      (Baseline.Sim.schedule_after sim tx_time (fun () ->
           if lose then () (* in-flight loss: no delivery, watchdog will fire *)
           else
             ignore
               (Baseline.Sim.schedule_after sim prop_delay (fun () ->
                    (match watchdog.(i) with
                    | Some h -> Baseline.Sim.cancel sim h
                    | None -> ());
                    if sent.(i) < cells then
                      send i ~lose:(sent.(i) mod loss_every = 0) ()))))
  in
  for i = 0 to links - 1 do
    send i ~lose:false ()
  done;
  Baseline.Sim.run sim;
  sim.executed

let retransmit_wheel ~links ~cells () =
  let sim = Engine.Sim.create () in
  let sent = Array.make links 0 in
  let losing = Array.make links false in
  let tx = Array.make links None in
  let wd = Array.make links None in
  let deliver = Array.make links (fun () -> ()) in
  let get a i = match a.(i) with Some tm -> tm | None -> assert false in
  let send i ~lose =
    (if not lose then sent.(i) <- sent.(i) + 1);
    losing.(i) <- lose;
    Engine.Sim.Timer.arm_after sim (get wd i) watchdog_delay;
    Engine.Sim.Timer.arm_after sim (get tx i) tx_time
  in
  for i = 0 to links - 1 do
    deliver.(i) <-
      (fun () ->
        Engine.Sim.Timer.cancel sim (get wd i);
        if sent.(i) < cells then send i ~lose:(sent.(i) mod loss_every = 0));
    wd.(i) <-
      (* The watchdog retries through the same pair of clocks: one
         in-place rearm, no allocation. *)
      Some (Engine.Sim.Timer.create sim (fun () -> send i ~lose:false));
    tx.(i) <-
      Some
        (Engine.Sim.Timer.create sim (fun () ->
             if not losing.(i) then
               ignore (Engine.Sim.schedule_after sim prop_delay deliver.(i))))
  done;
  for i = 0 to links - 1 do
    send i ~lose:false
  done;
  Engine.Sim.run sim;
  Engine.Sim.events_executed sim

(* ------------------------------------------------------------------ *)
(* Driver. *)

type measurement = {
  target : string;
  side : string; (* "heap-baseline" | "timer-wheel" *)
  events : int;
  seconds : float;
  minor_words_per_event : float;
}

let events_per_sec m =
  if m.seconds > 0. then float_of_int m.events /. m.seconds else 0.

let measure ~target ~side f =
  (* One untimed run to warm the code and size the heaps, then the
     timed run from a compacted heap so minor-word deltas are clean. *)
  ignore (f ());
  Gc.compact ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let events = f () in
  let seconds = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  {
    target;
    side;
    events;
    seconds;
    minor_words_per_event =
      (if events > 0 then words /. float_of_int events else 0.);
  }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path pairs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"pr\": 4,\n  \"targets\": [\n";
  let n = List.length pairs in
  List.iteri
    (fun i (base, wheel) ->
      let speedup =
        let b = events_per_sec base and w = events_per_sec wheel in
        if b > 0. then w /. b else 0.
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"events\": %d,\n\
           \     \"heap_baseline\": {\"seconds\": %.6f, \"events_per_sec\": %.1f, \
            \"minor_words_per_event\": %.2f},\n\
           \     \"timer_wheel\": {\"seconds\": %.6f, \"events_per_sec\": %.1f, \
            \"minor_words_per_event\": %.2f},\n\
           \     \"speedup\": %.3f}%s\n"
           (json_escape base.target) base.events base.seconds (events_per_sec base)
           base.minor_words_per_event wheel.seconds (events_per_sec wheel)
           wheel.minor_words_per_event speedup
           (if i = n - 1 then "" else ",")))
    pairs;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[json] %s\n" path

let () =
  let smoke = ref false in
  let json = ref "BENCH_pr4.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--json" :: path :: rest ->
        json := path;
        parse rest
    | arg :: _ ->
        Printf.eprintf "usage: ubench [--smoke] [--json F] (got %S)\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scale n = if !smoke then Stdlib.max 1 (n / 20) else n in
  let churn_n = scale 2_000 and churn_rounds = 500 in
  let storm_links = scale 200 and storm_cells = 2_000 in
  let retx_links = scale 200 and retx_cells = 1_500 in
  let targets =
    [
      ( "timer-churn",
        timer_churn_baseline ~n:churn_n ~rounds:churn_rounds,
        timer_churn_wheel ~n:churn_n ~rounds:churn_rounds );
      ( "cell-storm",
        cell_storm_baseline ~links:storm_links ~cells:storm_cells,
        cell_storm_wheel ~links:storm_links ~cells:storm_cells );
      ( "retransmit-heavy",
        retransmit_baseline ~links:retx_links ~cells:retx_cells,
        retransmit_wheel ~links:retx_links ~cells:retx_cells );
    ]
  in
  let pairs =
    List.map
      (fun (name, base_f, wheel_f) ->
        let base = measure ~target:name ~side:"heap-baseline" base_f in
        let wheel = measure ~target:name ~side:"timer-wheel" wheel_f in
        if base.events <> wheel.events then begin
          Printf.eprintf
            "ubench: %s executed %d events on the heap but %d on the wheel — the \
             two sides diverged\n"
            name base.events wheel.events;
          exit 1
        end;
        (base, wheel))
      targets
  in
  let t =
    Analysis.Table.create
      ~columns:
        [ "target"; "events"; "heap ev/s"; "wheel ev/s"; "speedup"; "heap w/ev";
          "wheel w/ev" ]
  in
  List.iter
    (fun (base, wheel) ->
      Analysis.Table.add_row t
        [
          base.target;
          string_of_int base.events;
          Printf.sprintf "%.0f" (events_per_sec base);
          Printf.sprintf "%.0f" (events_per_sec wheel);
          Printf.sprintf "%.2fx" (events_per_sec wheel /. events_per_sec base);
          Printf.sprintf "%.1f" base.minor_words_per_event;
          Printf.sprintf "%.1f" wheel.minor_words_per_event;
        ])
    pairs;
  print_string (Analysis.Table.render t);
  (* The one-line summary CI greps for. *)
  let tot_base_ev = List.fold_left (fun a (b, _) -> a + b.events) 0 pairs in
  let tot_base_s = List.fold_left (fun a (b, _) -> a +. b.seconds) 0. pairs in
  let tot_wheel_s = List.fold_left (fun a (_, w) -> a +. w.seconds) 0. pairs in
  let avg_w side =
    List.fold_left (fun a p -> a +. (side p).minor_words_per_event) 0. pairs
    /. float_of_int (List.length pairs)
  in
  Printf.printf
    "ubench summary: wheel %.0f events/s vs heap %.0f events/s (%.2fx), minor \
     words/event %.1f vs %.1f\n"
    (float_of_int tot_base_ev /. tot_wheel_s)
    (float_of_int tot_base_ev /. tot_base_s)
    (tot_base_s /. tot_wheel_s)
    (avg_w snd) (avg_w fst);
  write_json !json pairs

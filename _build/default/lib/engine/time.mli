(** Simulated time.

    Both instants and durations are represented as a number of
    nanoseconds held in an [int64].  At nanosecond resolution an [int64]
    covers roughly 292 years of simulated time, far beyond any experiment
    in this repository.  Instants are measured from the simulation epoch
    ([zero]); durations are plain differences of instants.  The two share
    one type on purpose: the arithmetic is the same and the simulator
    never needs wall-clock time. *)

type t
(** An instant or duration, in nanoseconds. *)

val zero : t
(** The simulation epoch (also the zero duration). *)

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. *)

val us : int -> t
(** [us n] is a duration of [n] microseconds. *)

val ms : int -> t
(** [ms n] is a duration of [n] milliseconds. *)

val s : int -> t
(** [s n] is a duration of [n] seconds. *)

val of_sec_f : float -> t
(** [of_sec_f x] is the duration of [x] seconds, rounded to the nearest
    nanosecond.  Raises [Invalid_argument] if [x] is not finite. *)

val of_ms_f : float -> t
(** [of_ms_f x] is the duration of [x] milliseconds, rounded to the
    nearest nanosecond.  Raises [Invalid_argument] if [x] is not
    finite. *)

val to_ns : t -> int64
(** [to_ns t] is the raw nanosecond count. *)

val of_ns64 : int64 -> t
(** [of_ns64 n] is the instant/duration of [n] nanoseconds. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in seconds. *)

val to_ms_f : t -> float
(** [to_ms_f t] is [t] expressed in milliseconds. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds. *)

val add : t -> t -> t
(** [add a b] is [a + b].  Saturates at [max_value] instead of wrapping. *)

val sub : t -> t -> t
(** [sub a b] is [a - b].  The result may be negative; see {!is_negative}. *)

val diff : t -> t -> t
(** [diff later earlier] is [sub later earlier]. *)

val mul_int : t -> int -> t
(** [mul_int t k] is [t] scaled by the integer factor [k]. *)

val div_int : t -> int -> t
(** [div_int t k] is [t / k] (integer division).  Raises
    [Division_by_zero] if [k = 0]. *)

val scale : t -> float -> t
(** [scale t x] is [t] scaled by the float factor [x], rounded to the
    nearest nanosecond. *)

val ratio : t -> t -> float
(** [ratio a b] is [a / b] as a float.  Raises [Division_by_zero] if
    [b] is {!zero}. *)

val compare : t -> t -> int
(** Total order on instants/durations. *)

val equal : t -> t -> bool

val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val is_negative : t -> bool
(** [is_negative t] is true iff [t] is a negative duration. *)

val max_value : t
(** The largest representable instant; used as "never". *)

val pp : Format.formatter -> t -> unit
(** [pp fmt t] prints [t] with an automatically chosen unit
    (e.g. ["1.5ms"], ["250us"], ["2.0s"]). *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)

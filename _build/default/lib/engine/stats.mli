(** Online and offline statistics.

    {!Online} accumulates count/mean/variance/min/max in O(1) memory
    (Welford's algorithm) — used for per-flow and per-queue counters
    that live for a whole simulation.  {!Histogram} buckets samples at a
    fixed width.  The array helpers compute percentiles and empirical
    CDFs for the evaluation figures. *)

module Online : sig
  type t
  (** A mutable accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit

  val count : t -> int
  val mean : t -> float
  (** Mean of the samples; [nan] if empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** Smallest sample; [nan] if empty. *)

  val max : t -> float
  (** Largest sample; [nan] if empty. *)

  val sum : t -> float
  val merge : t -> t -> t
  (** [merge a b] is a fresh accumulator equivalent to having seen both
      sample streams (Chan's parallel update). *)

  val pp : Format.formatter -> t -> unit
end

module Histogram : sig
  type t

  val create : bin_width:float -> t
  (** Bins are [\[k*w, (k+1)*w)].  Raises [Invalid_argument] if
      [bin_width <= 0.]. *)

  val add : t -> float -> unit
  (** Add a sample.  Negative samples go to negative bins. *)

  val count : t -> int
  val bins : t -> (float * int) list
  (** Non-empty bins as [(lower_edge, count)], sorted by edge. *)

  val mode_bin : t -> (float * int) option
  (** The fullest bin, ties broken towards the lower edge. *)
end

(** {1 Array statistics} *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation
    between closest ranks ([xs] need not be sorted; a sorted copy is
    made).  Raises [Invalid_argument] on an empty array or [p] outside
    the range. *)

val median : float array -> float
(** [median xs = percentile xs 50.]. *)

val cdf_points : float array -> (float * float) list
(** [cdf_points xs] is the empirical CDF as [(value, fraction <= value)]
    steps, sorted by value, one point per distinct sample.  Empty input
    gives []. *)

type t = {
  name : string;
  mutable times : Time.t array;
  mutable values : float array;
  mutable len : int;
}

let create ?(name = "") () = { name; times = [||]; values = [||]; len = 0 }
let name t = t.name

let grow t =
  let cap = Array.length t.times in
  if t.len = cap then begin
    let ncap = Stdlib.max 32 (cap * 2) in
    let ntimes = Array.make ncap Time.zero and nvalues = Array.make ncap 0. in
    Array.blit t.times 0 ntimes 0 t.len;
    Array.blit t.values 0 nvalues 0 t.len;
    t.times <- ntimes;
    t.values <- nvalues
  end

let record t time v =
  if t.len > 0 && Time.(time < t.times.(t.len - 1)) then
    invalid_arg "Timeseries.record: time went backwards";
  grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- v;
  t.len <- t.len + 1

let length t = t.len
let points t = Array.init t.len (fun i -> (t.times.(i), t.values.(i)))

(* Index of the latest point at or before [time], by binary search. *)
let index_at t time =
  if t.len = 0 || Time.(time < t.times.(0)) then None
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Time.(t.times.(mid) <= time) then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let value_at t time = Option.map (fun i -> t.values.(i)) (index_at t time)
let last t = if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

let resample t ~step ~stop =
  if Time.(step <= Time.zero) then invalid_arg "Timeseries.resample: step must be positive";
  if t.len = 0 then [||]
  else begin
    let samples = ref [] in
    let current = ref Time.zero in
    while Time.(!current <= stop) do
      let v = match value_at t !current with Some v -> v | None -> t.values.(0) in
      samples := (!current, v) :: !samples;
      current := Time.add !current step
    done;
    Array.of_list (List.rev !samples)
  end

let max_value t =
  if t.len = 0 then None
  else begin
    let best = ref t.values.(0) in
    for i = 1 to t.len - 1 do
      if t.values.(i) > !best then best := t.values.(i)
    done;
    Some !best
  end

let time_of_max t =
  match max_value t with
  | None -> None
  | Some m ->
      let rec find i = if Float.equal t.values.(i) m then t.times.(i) else find (i + 1) in
      Some (find 0)

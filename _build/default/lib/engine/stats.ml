module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; mn = nan; mx = nan; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = Float.sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
  let sum t = t.total

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
      let m2 =
        a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
      in
      {
        n;
        mean;
        m2;
        mn = Stdlib.min a.mn b.mn;
        mx = Stdlib.max a.mx b.mx;
        total = a.total +. b.total;
      }
    end

  let pp fmt t =
    if t.n = 0 then Format.fprintf fmt "(no samples)"
    else
      Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
        (stddev t) t.mn t.mx
end

module Histogram = struct
  type t = { width : float; counts : (int, int ref) Hashtbl.t; mutable total : int }

  let create ~bin_width =
    if not (Float.is_finite bin_width) || bin_width <= 0. then
      invalid_arg "Histogram.create: bin width must be positive";
    { width = bin_width; counts = Hashtbl.create 64; total = 0 }

  let bin_of t x = int_of_float (Float.floor (x /. t.width))

  let add t x =
    let b = bin_of t x in
    (match Hashtbl.find_opt t.counts b with
    | Some r -> incr r
    | None -> Hashtbl.add t.counts b (ref 1));
    t.total <- t.total + 1

  let count t = t.total

  let bins t =
    Hashtbl.fold (fun b r acc -> (float_of_int b *. t.width, !r) :: acc) t.counts []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

  let mode_bin t =
    List.fold_left
      (fun best (edge, c) ->
        match best with
        | Some (_, bc) when bc >= c -> best
        | _ -> Some (edge, c))
      None (bins t)
end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if not (Float.is_finite p) || p < 0. || p > 100. then
    invalid_arg "Stats.percentile: p must be in [0, 100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.

let cdf_points xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let nf = float_of_int n in
    (* One step per distinct value, at the fraction of samples <= it. *)
    let rec go i acc =
      if i < 0 then acc
      else if i < n - 1 && Float.equal sorted.(i) sorted.(i + 1) then go (i - 1) acc
      else go (i - 1) ((sorted.(i), float_of_int (i + 1) /. nf) :: acc)
    in
    go (n - 1) []
  end

(** Append-only (time, value) recordings.

    The cwnd traces of Figure 1 are step functions: the window holds its
    value until the next change.  A [Timeseries.t] records the change
    points in simulation order and can be queried as a step function or
    resampled onto a fixed grid for plotting. *)

type t

val create : ?name:string -> unit -> t
(** A fresh, empty series.  [name] defaults to [""]. *)

val name : t -> string

val record : t -> Time.t -> float -> unit
(** [record ts time v] appends a point.  Raises [Invalid_argument] if
    [time] is before the last recorded point — series are recorded in
    simulation order by construction. *)

val length : t -> int

val points : t -> (Time.t * float) array
(** All points, oldest first (fresh array). *)

val value_at : t -> Time.t -> float option
(** [value_at ts time] is the step-function value: the value of the
    latest point at or before [time]; [None] before the first point. *)

val last : t -> (Time.t * float) option

val resample : t -> step:Time.t -> stop:Time.t -> (Time.t * float) array
(** [resample ts ~step ~stop] samples the step function at
    [0, step, 2*step, ... <= stop].  Instants before the first recorded
    point repeat the first point's value (a window exists from t=0).
    Empty series resample to an empty array.  Raises [Invalid_argument]
    if [step] is not positive. *)

val max_value : t -> float option
(** Largest recorded value. *)

val time_of_max : t -> Time.t option
(** Instant of the first occurrence of the largest value. *)

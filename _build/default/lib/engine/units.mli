(** Data sizes and link rates.

    Sizes are byte counts in plain [int]s; rates are bits per second.
    The module exists so that every conversion between bytes, bits and
    time lives in exactly one place — unit mix-ups are the classic
    simulator bug. *)

(** {1 Data sizes} *)

val kib : int -> int
(** [kib n] is [n * 1024] bytes. *)

val mib : int -> int
(** [mib n] is [n * 1024 * 1024] bytes. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable size (["512B"], ["1.5KiB"], ["2.0MiB"]). *)

(** {1 Rates} *)

module Rate : sig
  type t
  (** A link rate in bits per second.  Always strictly positive. *)

  val bps : int -> t
  (** [bps n] is [n] bits per second.  Raises [Invalid_argument] if
      [n <= 0]. *)

  val kbit : int -> t
  (** [kbit n] is [n * 1000] bits per second. *)

  val mbit : int -> t
  (** [mbit n] is [n * 1_000_000] bits per second. *)

  val mbit_f : float -> t
  (** [mbit_f x] is [x] megabits per second, rounded to a whole bit/s
      (at least 1). *)

  val to_bps : t -> int
  (** [to_bps r] is the rate in bits per second. *)

  val to_bytes_per_sec : t -> float
  (** [to_bytes_per_sec r] is the rate in bytes per second. *)

  val transmission_time : t -> int -> Time.t
  (** [transmission_time r bytes] is the time it takes to serialize
      [bytes] bytes onto a link of rate [r], rounded up to a whole
      nanosecond so that back-to-back transmissions never overlap.
      Raises [Invalid_argument] on negative [bytes]. *)

  val bdp_bytes : t -> Time.t -> int
  (** [bdp_bytes r rtt] is the bandwidth-delay product [r * rtt] in
      bytes (rounded down) — the amount of data needed in flight to keep
      a link of rate [r] busy across a feedback loop of [rtt]. *)

  val min : t -> t -> t
  (** The smaller of two rates. *)

  val compare : t -> t -> int
  val equal : t -> t -> bool

  val scale : t -> float -> t
  (** [scale r x] is [r] multiplied by [x] (at least 1 bit/s).
      Raises [Invalid_argument] if [x] is not finite or [x <= 0.]. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable rate (["3.0Mbit/s"], ["512kbit/s"]). *)
end

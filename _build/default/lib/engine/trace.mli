(** Named probe registry.

    Model components publish time series under string keys
    (["circuit0/cwnd"], ["relay3/queue"]); experiment drivers collect
    them afterwards without threading series through every constructor.
    A registry belongs to one simulation run. *)

type t

val create : unit -> t

val series : t -> string -> Timeseries.t
(** [series t key] returns the series registered under [key], creating
    an empty one on first use. *)

val find : t -> string -> Timeseries.t option
(** [find t key] is the series under [key], if any was created. *)

val record : t -> string -> Time.t -> float -> unit
(** [record t key time v] appends to the series under [key]
    (creating it if needed). *)

val keys : t -> string list
(** All registered keys, sorted. *)

val to_csv : t -> Buffer.t -> unit
(** Append all series as CSV rows [series,time_s,value] (times in
    seconds), grouped by key in sorted order. *)

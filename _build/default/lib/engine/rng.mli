(** Deterministic, splittable pseudo-random numbers.

    The simulator must be reproducible: the same seed must yield the same
    relay network, the same circuits and the same event schedule, so that
    "with CircuitStart" and "without CircuitStart" runs are paired
    (identical workloads, differing only in the algorithm).  The global
    [Random] state cannot give that guarantee once components draw in
    data-dependent order, so every component receives its own generator,
    obtained with {!split}.

    The core generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14):
    64-bit state, 64-bit output, passes BigCrush, and supports cheap
    splitting by deriving a child seed from the parent stream. *)

type t
(** A mutable generator. *)

val create : int -> t
(** [create seed] is a fresh generator.  Different seeds give independent
    streams; the same seed always gives the same stream. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    parent's subsequent output.  Advances [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream.  Useful for paired experiments. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises
    [Invalid_argument] if [bound <= 0].  Unbiased (rejection
    sampling). *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).  Raises
    [Invalid_argument] if [lo > hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be
    positive and finite. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from Exp(1/mean).  [mean] must be
    positive. *)

val normal : t -> mu:float -> sigma:float -> float
(** [normal t ~mu ~sigma] draws from N(mu, sigma^2) via Box–Muller.
    [sigma] must be non-negative. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [lognormal t ~mu ~sigma] draws X with ln X ~ N(mu, sigma^2) — the
    canonical heavy-tailed model for relay bandwidths. *)

val pareto : t -> shape:float -> scale:float -> float
(** [pareto t ~shape ~scale] draws from a Pareto distribution with the
    given shape (alpha) and scale (minimum value).  Both must be
    positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly random element.  Raises
    [Invalid_argument] on an empty array. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** [pick_weighted t arr] picks an element with probability proportional
    to its weight.  Weights must be non-negative with a positive sum;
    raises [Invalid_argument] otherwise. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] is [k] distinct elements of
    [arr], uniformly.  Raises [Invalid_argument] if [k < 0] or
    [k > Array.length arr]. *)

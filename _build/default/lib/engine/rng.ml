type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output function (Stafford's Mix13 variant). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to stay unbiased. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    (* Reject values in the final, partial copy of [0, bound). *)
    if Int64.compare (Int64.sub r v) (Int64.sub (Int64.sub Int64.max_int bound64) 1L) > 0
    then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 uniform mantissa bits in [0, 1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1. /. 9007199254740992.)

let float t bound =
  if not (Float.is_finite bound) || bound <= 0. then
    invalid_arg "Rng.float: bound must be positive and finite";
  unit_float t *. bound

let float_in t lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) || lo >= hi then
    invalid_arg "Rng.float_in: empty or non-finite range";
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let exponential t ~mean =
  if not (Float.is_finite mean) || mean <= 0. then
    invalid_arg "Rng.exponential: mean must be positive";
  let u = 1. -. unit_float t in
  -.mean *. Float.log u

let normal t ~mu ~sigma =
  if not (Float.is_finite sigma) || sigma < 0. then
    invalid_arg "Rng.normal: sigma must be non-negative";
  let u1 = 1. -. unit_float t and u2 = unit_float t in
  let z = Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = Float.exp (normal t ~mu ~sigma)

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then
    invalid_arg "Rng.pareto: shape and scale must be positive";
  let u = 1. -. unit_float t in
  scale /. Float.pow u (1. /. shape)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_weighted t arr =
  let total =
    Array.fold_left
      (fun acc (_, w) ->
        if not (Float.is_finite w) || w < 0. then
          invalid_arg "Rng.pick_weighted: weights must be non-negative";
        acc +. w)
      0. arr
  in
  if total <= 0. then invalid_arg "Rng.pick_weighted: zero total weight";
  let x = float t total in
  let n = Array.length arr in
  let rec go i acc =
    if i = n - 1 then fst arr.(i)
    else
      let acc = acc +. snd arr.(i) in
      if x < acc then fst arr.(i) else go (i + 1) acc
  in
  go 0 0.

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first k slots need shuffling. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> arr.(idx.(i)))

type t = (string, Timeseries.t) Hashtbl.t

let create () : t = Hashtbl.create 32

let series t key =
  match Hashtbl.find_opt t key with
  | Some ts -> ts
  | None ->
      let ts = Timeseries.create ~name:key () in
      Hashtbl.add t key ts;
      ts

let find t key = Hashtbl.find_opt t key
let record t key time v = Timeseries.record (series t key) time v
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let to_csv t buf =
  Buffer.add_string buf "series,time_s,value\n";
  List.iter
    (fun key ->
      let ts = series t key in
      Array.iter
        (fun (time, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%.9f,%.6f\n" key (Time.to_sec_f time) v))
        (Timeseries.points ts))
    (keys t)

let kib n = n * 1024
let mib n = n * 1024 * 1024

let pp_bytes fmt n =
  if n < 1024 then Format.fprintf fmt "%dB" n
  else if n < 1024 * 1024 then Format.fprintf fmt "%.1fKiB" (float_of_int n /. 1024.)
  else Format.fprintf fmt "%.1fMiB" (float_of_int n /. (1024. *. 1024.))

module Rate = struct
  type t = int (* bits per second, > 0 *)

  let bps n =
    if n <= 0 then invalid_arg "Rate.bps: rate must be positive";
    n

  let kbit n = bps (n * 1_000)
  let mbit n = bps (n * 1_000_000)

  let mbit_f x =
    if not (Float.is_finite x) || x <= 0. then
      invalid_arg "Rate.mbit_f: rate must be positive and finite";
    Stdlib.max 1 (int_of_float (x *. 1e6))

  let to_bps r = r
  let to_bytes_per_sec r = float_of_int r /. 8.

  let transmission_time r bytes =
    if bytes < 0 then invalid_arg "Rate.transmission_time: negative size";
    (* ceil (bytes * 8 * 1e9 / r) nanoseconds, in int64 to avoid
       overflow for large transfers on slow links. *)
    let bits = Int64.mul (Int64.of_int bytes) 8L in
    let num = Int64.mul bits 1_000_000_000L in
    let r64 = Int64.of_int r in
    let q = Int64.div num r64 in
    let q = if Int64.equal (Int64.rem num r64) 0L then q else Int64.succ q in
    Time.of_ns64 q

  let bdp_bytes r rtt = int_of_float (to_bytes_per_sec r *. Time.to_sec_f rtt)
  let min a b = Stdlib.min a b
  let compare = Stdlib.compare
  let equal = Int.equal

  let scale r x =
    if not (Float.is_finite x) || x <= 0. then
      invalid_arg "Rate.scale: factor must be positive and finite";
    Stdlib.max 1 (int_of_float (float_of_int r *. x))

  let pp fmt r =
    if r < 1_000 then Format.fprintf fmt "%dbit/s" r
    else if r < 1_000_000 then Format.fprintf fmt "%.0fkbit/s" (float_of_int r /. 1e3)
    else Format.fprintf fmt "%.1fMbit/s" (float_of_int r /. 1e6)
end

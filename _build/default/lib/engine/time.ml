type t = int64

let zero = 0L
let max_value = Int64.max_int

let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let s n = Int64.mul (Int64.of_int n) 1_000_000_000L

let of_float_ns x =
  if not (Float.is_finite x) then invalid_arg "Time: non-finite duration";
  Int64.of_float (Float.round x)

let of_sec_f x = of_float_ns (x *. 1e9)
let of_ms_f x = of_float_ns (x *. 1e6)

let to_ns t = t
let of_ns64 n = n

let to_sec_f t = Int64.to_float t /. 1e9
let to_ms_f t = Int64.to_float t /. 1e6
let to_us_f t = Int64.to_float t /. 1e3

(* Saturating addition: an event scheduled "never + delta" must stay
   "never", not wrap around to the distant past. *)
let add a b =
  let r = Int64.add a b in
  if Int64.compare a 0L > 0 && Int64.compare b 0L > 0 && Int64.compare r 0L < 0
  then Int64.max_int
  else r

let sub = Int64.sub
let diff later earlier = sub later earlier
let mul_int t k = Int64.mul t (Int64.of_int k)

let div_int t k =
  if k = 0 then raise Division_by_zero;
  Int64.div t (Int64.of_int k)

let scale t x = of_float_ns (Int64.to_float t *. x)

let ratio a b =
  if Int64.equal b 0L then raise Division_by_zero;
  Int64.to_float a /. Int64.to_float b

let compare = Int64.compare
let equal = Int64.equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let is_negative t = Stdlib.( < ) (compare t zero) 0

let pp fmt t =
  let lt64 a b = Stdlib.( < ) (Int64.compare a b) 0 in
  let abs = Int64.abs t in
  let sign = if is_negative t then "-" else "" in
  if lt64 abs 1_000L then Format.fprintf fmt "%s%Ldns" sign abs
  else if lt64 abs 1_000_000L then
    Format.fprintf fmt "%s%.1fus" sign (Int64.to_float abs /. 1e3)
  else if lt64 abs 1_000_000_000L then
    Format.fprintf fmt "%s%.2fms" sign (Int64.to_float abs /. 1e6)
  else Format.fprintf fmt "%s%.3fs" sign (Int64.to_float abs /. 1e9)

let to_string t = Format.asprintf "%a" pp t

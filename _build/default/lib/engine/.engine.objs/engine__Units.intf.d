lib/engine/units.mli: Format Time

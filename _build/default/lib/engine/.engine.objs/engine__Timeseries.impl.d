lib/engine/timeseries.ml: Array Float List Option Stdlib Time

lib/engine/rng.mli:

lib/engine/units.ml: Float Format Int Int64 Stdlib Time

lib/engine/stats.ml: Array Float Format Hashtbl List Stdlib

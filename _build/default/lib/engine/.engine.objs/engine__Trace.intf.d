lib/engine/trace.mli: Buffer Time Timeseries

lib/engine/sim.ml: Event_queue Format Option Time

lib/engine/timeseries.mli: Time

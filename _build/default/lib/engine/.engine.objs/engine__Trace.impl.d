lib/engine/trace.ml: Array Buffer Hashtbl List Printf String Time Timeseries

(** Bounded drop-tail FIFO for link egress.

    Capacity can be limited in packets, bytes, or both; an arriving
    packet that does not fit is dropped (tail drop), exactly like ns-3's
    default [DropTailQueue].  The queue keeps occupancy and drop
    statistics that the evaluation reads back. *)

type t

type capacity = {
  max_packets : int option;  (** [None] = unlimited. *)
  max_bytes : int option;  (** [None] = unlimited. *)
}

val unbounded : capacity
val packets : int -> capacity
(** [packets n] limits to [n] packets; raises [Invalid_argument] if
    [n <= 0]. *)

val bytes : int -> capacity
(** [bytes n] limits to [n] bytes; raises [Invalid_argument] if
    [n <= 0]. *)

val create : capacity -> t

val enqueue : t -> Packet.t -> bool
(** [enqueue q p] appends [p]; [false] means the packet was dropped
    because either limit would be exceeded. *)

val dequeue : t -> Packet.t option
(** Remove and return the head packet. *)

val peek : t -> Packet.t option
val length : t -> int
(** Packets currently queued. *)

val byte_length : t -> int
(** Bytes currently queued. *)

val is_empty : t -> bool

(** {1 Statistics} *)

val drops : t -> int
(** Packets rejected so far. *)

val dropped_bytes : t -> int
val enqueued_total : t -> int
(** Packets accepted so far (including those since dequeued). *)

val high_watermark_bytes : t -> int
(** Largest byte occupancy ever observed. *)

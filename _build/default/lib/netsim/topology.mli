(** Node-and-link graphs.

    A topology owns its simulator handle, its nodes and its directed
    links (a duplex connection is two symmetric directed links).  It is
    the single source of packet ids for everything running on it, so a
    whole run has densely numbered, reproducible packets.

    Builders for the shapes used in the paper's evaluation (line and
    star) live here; the random relay networks are composed on top by
    the [workload] library. *)

type t

val create : Engine.Sim.t -> t
val sim : t -> Engine.Sim.t
val packet_ids : t -> Packet.id_state

val add_node : t -> name:string -> Node_id.t
(** Add a node; ids are dense in creation order.  Node names are for
    diagnostics only and need not be unique. *)

val node_count : t -> int
val nodes : t -> Node_id.t list
(** All node ids, in creation order. *)

val name : t -> Node_id.t -> string
(** Raises [Not_found] for an unknown id. *)

val connect :
  t ->
  Node_id.t ->
  Node_id.t ->
  rate:Engine.Units.Rate.t ->
  delay:Engine.Time.t ->
  ?queue:Nqueue.capacity ->
  unit ->
  unit
(** [connect t a b ~rate ~delay ()] creates the duplex pair of directed
    links [a->b] and [b->a], both with the given rate, one-way
    propagation delay and queue capacity.  Raises [Invalid_argument] if
    either node is unknown, if [a = b], or if the pair is already
    connected. *)

val connect_directed :
  t ->
  Node_id.t ->
  Node_id.t ->
  rate:Engine.Units.Rate.t ->
  delay:Engine.Time.t ->
  ?queue:Nqueue.capacity ->
  unit ->
  unit
(** One direction only; same error conditions as {!connect}. *)

val link : t -> Node_id.t -> Node_id.t -> Link.t option
(** The directed link [a->b], if connected. *)

val neighbors : t -> Node_id.t -> Node_id.t list
(** Nodes reachable over one outgoing link, in connection order. *)

val links : t -> Link.t list
(** All directed links. *)

(** {1 Builders} *)

val line :
  Engine.Sim.t ->
  names:string list ->
  rate:Engine.Units.Rate.t ->
  delay:Engine.Time.t ->
  ?queue:Nqueue.capacity ->
  unit ->
  t * Node_id.t list
(** A chain of nodes with uniform duplex links.  Raises
    [Invalid_argument] if fewer than two names are given. *)

val star :
  Engine.Sim.t ->
  hub:string ->
  leaves:(string * Engine.Units.Rate.t * Engine.Time.t) list ->
  ?queue:Nqueue.capacity ->
  unit ->
  t * Node_id.t * Node_id.t list
(** [star sim ~hub ~leaves ()] is the paper's topology: every leaf hangs
    off a central hub by a dedicated duplex access link whose rate *is*
    the leaf's bandwidth and whose one-way delay is the leaf's access
    latency.  Returns (topology, hub id, leaf ids in list order).
    Raises [Invalid_argument] on an empty leaf list. *)

val dumbbell :
  Engine.Sim.t ->
  left:(string * Engine.Units.Rate.t * Engine.Time.t) list ->
  right:(string * Engine.Units.Rate.t * Engine.Time.t) list ->
  bottleneck_rate:Engine.Units.Rate.t ->
  bottleneck_delay:Engine.Time.t ->
  ?queue:Nqueue.capacity ->
  unit ->
  t * (Node_id.t list * Node_id.t list)
(** The classic shared-bottleneck shape: left leaves hang off one
    router, right leaves off another, and the two routers are joined by
    a single bottleneck link every left↔right flow must cross.
    Returns (topology, (left leaf ids, right leaf ids)).  Raises
    [Invalid_argument] if either side is empty. *)

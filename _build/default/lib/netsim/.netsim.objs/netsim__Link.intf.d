lib/netsim/link.mli: Engine Format Node_id Nqueue Packet

lib/netsim/link.ml: Engine Float Format Hashtbl Node_id Nqueue Packet

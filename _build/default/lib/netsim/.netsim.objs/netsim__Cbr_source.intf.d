lib/netsim/cbr_source.mli: Engine Network Node_id

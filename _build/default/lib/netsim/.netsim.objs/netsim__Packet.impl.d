lib/netsim/packet.ml: Engine Format Node_id Payload

lib/netsim/cbr_source.ml: Engine Network Node_id Payload

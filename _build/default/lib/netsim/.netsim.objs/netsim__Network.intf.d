lib/netsim/network.mli: Engine Node_id Packet Payload Topology

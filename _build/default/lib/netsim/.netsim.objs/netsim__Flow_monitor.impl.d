lib/netsim/flow_monitor.ml: Engine Hashtbl Int List Option

lib/netsim/topology.mli: Engine Link Node_id Nqueue Packet

lib/netsim/flow_monitor.mli: Engine

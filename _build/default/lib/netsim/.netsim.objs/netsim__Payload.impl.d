lib/netsim/payload.ml: Format Printf String

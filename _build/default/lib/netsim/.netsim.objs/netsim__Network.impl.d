lib/netsim/network.ml: Array Engine Format Int Int64 Link List Node_id Option Packet Set Topology

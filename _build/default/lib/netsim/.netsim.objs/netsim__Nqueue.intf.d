lib/netsim/nqueue.mli: Packet

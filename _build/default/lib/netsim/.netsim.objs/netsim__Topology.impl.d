lib/netsim/topology.ml: Array Engine Format Hashtbl Link List Node_id Nqueue Packet Stdlib

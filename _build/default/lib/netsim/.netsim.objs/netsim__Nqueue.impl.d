lib/netsim/nqueue.ml: Packet Queue

lib/netsim/packet.mli: Engine Format Node_id Payload

(** Packet payloads.

    The substrate is payload-agnostic: upper layers (the Tor model, the
    BackTap transport) extend this variant with their own message types
    and match on them in their receive handlers.  The wire size lives in
    the {!Packet.t}, not here, so the substrate never needs to know how
    to measure a payload. *)

type t = ..
(** Extensible payload type. *)

type t += Raw of string  (** Uninterpreted bytes, for tests and probes. *)

val describe : (t -> string option) -> unit
(** Register a printer for an upper layer's constructors.  Printers are
    tried in registration order; the first to return [Some] wins. *)

val pp : Format.formatter -> t -> unit
(** Print via the registered printers; falls back to ["<payload>"]. *)

type t = {
  sim : Engine.Sim.t;
  ids : Packet.id_state;
  mutable node_names : string array;
  mutable count : int;
  (* Directed adjacency: links.(a) is the outgoing links of node a,
     keyed by destination, in insertion order. *)
  adjacency : (int, (int * Link.t) list ref) Hashtbl.t;
}

let create sim =
  { sim; ids = Packet.fresh_id_state (); node_names = [||]; count = 0;
    adjacency = Hashtbl.create 64 }

let sim t = t.sim
let packet_ids t = t.ids

let add_node t ~name =
  if t.count = Array.length t.node_names then begin
    let ncap = Stdlib.max 16 (t.count * 2) in
    let names = Array.make ncap "" in
    Array.blit t.node_names 0 names 0 t.count;
    t.node_names <- names
  end;
  t.node_names.(t.count) <- name;
  let id = Node_id.of_int t.count in
  t.count <- t.count + 1;
  id

let node_count t = t.count
let nodes t = List.init t.count Node_id.of_int

let check_node t id =
  if Node_id.to_int id >= t.count then
    invalid_arg (Format.asprintf "Topology: unknown node %a" Node_id.pp id)

let name t id =
  if Node_id.to_int id >= t.count then raise Not_found;
  t.node_names.(Node_id.to_int id)

let out_links t a =
  match Hashtbl.find_opt t.adjacency (Node_id.to_int a) with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.adjacency (Node_id.to_int a) r;
      r

let link t a b =
  match Hashtbl.find_opt t.adjacency (Node_id.to_int a) with
  | None -> None
  | Some r -> List.assoc_opt (Node_id.to_int b) !r

let connect_directed t a b ~rate ~delay ?(queue = Nqueue.unbounded) () =
  check_node t a;
  check_node t b;
  if Node_id.equal a b then invalid_arg "Topology.connect: self-loop";
  if link t a b <> None then
    invalid_arg
      (Format.asprintf "Topology.connect: %a->%a already connected" Node_id.pp a
         Node_id.pp b);
  let l = Link.create t.sim ~src:a ~dst:b ~rate ~delay ~queue () in
  let r = out_links t a in
  r := !r @ [ (Node_id.to_int b, l) ]

let connect t a b ~rate ~delay ?queue () =
  connect_directed t a b ~rate ~delay ?queue ();
  connect_directed t b a ~rate ~delay ?queue ()

let neighbors t a =
  match Hashtbl.find_opt t.adjacency (Node_id.to_int a) with
  | None -> []
  | Some r -> List.map (fun (b, _) -> Node_id.of_int b) !r

let links t =
  Hashtbl.fold (fun _ r acc -> List.rev_append (List.map snd !r) acc) t.adjacency []

let line sim ~names ~rate ~delay ?queue () =
  if List.length names < 2 then invalid_arg "Topology.line: need at least two nodes";
  let t = create sim in
  let ids = List.map (fun name -> add_node t ~name) names in
  let rec wire = function
    | a :: (b :: _ as rest) ->
        connect t a b ~rate ~delay ?queue ();
        wire rest
    | [ _ ] | [] -> ()
  in
  wire ids;
  (t, ids)

let dumbbell sim ~left ~right ~bottleneck_rate ~bottleneck_delay ?queue () =
  if left = [] || right = [] then invalid_arg "Topology.dumbbell: empty side";
  let t = create sim in
  let router_l = add_node t ~name:"routerL" in
  let router_r = add_node t ~name:"routerR" in
  connect t router_l router_r ~rate:bottleneck_rate ~delay:bottleneck_delay ?queue ();
  let attach router (name, rate, delay) =
    let id = add_node t ~name in
    connect t id router ~rate ~delay ?queue ();
    id
  in
  let left_ids = List.map (attach router_l) left in
  let right_ids = List.map (attach router_r) right in
  (t, (left_ids, right_ids))

let star sim ~hub ~leaves ?queue () =
  if leaves = [] then invalid_arg "Topology.star: no leaves";
  let t = create sim in
  let hub_id = add_node t ~name:hub in
  let leaf_ids =
    List.map
      (fun (name, rate, delay) ->
        let id = add_node t ~name in
        connect t id hub_id ~rate ~delay ?queue ();
        id)
      leaves
  in
  (t, hub_id, leaf_ids)

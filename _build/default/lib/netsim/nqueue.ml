type capacity = { max_packets : int option; max_bytes : int option }

let unbounded = { max_packets = None; max_bytes = None }

let packets n =
  if n <= 0 then invalid_arg "Nqueue.packets: capacity must be positive";
  { max_packets = Some n; max_bytes = None }

let bytes n =
  if n <= 0 then invalid_arg "Nqueue.bytes: capacity must be positive";
  { max_packets = None; max_bytes = Some n }

type t = {
  capacity : capacity;
  q : Packet.t Queue.t;
  mutable cur_bytes : int;
  mutable drops : int;
  mutable dropped_bytes : int;
  mutable enqueued : int;
  mutable hwm : int;
}

let create capacity =
  { capacity; q = Queue.create (); cur_bytes = 0; drops = 0; dropped_bytes = 0;
    enqueued = 0; hwm = 0 }

let fits t (p : Packet.t) =
  let ok_packets =
    match t.capacity.max_packets with
    | None -> true
    | Some m -> Queue.length t.q < m
  in
  let ok_bytes =
    match t.capacity.max_bytes with
    | None -> true
    | Some m -> t.cur_bytes + p.size <= m
  in
  ok_packets && ok_bytes

let enqueue t p =
  if fits t p then begin
    Queue.push p t.q;
    t.cur_bytes <- t.cur_bytes + p.Packet.size;
    t.enqueued <- t.enqueued + 1;
    if t.cur_bytes > t.hwm then t.hwm <- t.cur_bytes;
    true
  end
  else begin
    t.drops <- t.drops + 1;
    t.dropped_bytes <- t.dropped_bytes + p.Packet.size;
    false
  end

let dequeue t =
  match Queue.take_opt t.q with
  | None -> None
  | Some p ->
      t.cur_bytes <- t.cur_bytes - p.Packet.size;
      Some p

let peek t = Queue.peek_opt t.q
let length t = Queue.length t.q
let byte_length t = t.cur_bytes
let is_empty t = Queue.is_empty t.q
let drops t = t.drops
let dropped_bytes t = t.dropped_bytes
let enqueued_total t = t.enqueued
let high_watermark_bytes t = t.hwm

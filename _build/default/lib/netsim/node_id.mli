(** Node identifiers.

    Dense integers assigned by the topology in creation order; used as
    routing-table and adjacency keys throughout the substrate. *)

type t

val of_int : int -> t
(** [of_int i] for [i >= 0]; raises [Invalid_argument] otherwise. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

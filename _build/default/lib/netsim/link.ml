type t = {
  sim : Engine.Sim.t;
  src : Node_id.t;
  dst : Node_id.t;
  mutable rate : Engine.Units.Rate.t;
  delay : Engine.Time.t;
  queue : Nqueue.t;
  mutable receiver : (Packet.t -> unit) option;
  mutable busy : bool;
  mutable delivered : int;
  mutable delivered_bytes : int;
  mutable blackholed : int;
  mutable busy_time : Engine.Time.t;
  (* Packet id -> callback fired when serialization of that packet
     starts (the moment it is truly "on the wire"). *)
  on_transmit : (int, unit -> unit) Hashtbl.t;
}

let create sim ~src ~dst ~rate ~delay ?(queue = Nqueue.unbounded) () =
  if Engine.Time.is_negative delay then invalid_arg "Link.create: negative delay";
  {
    sim;
    src;
    dst;
    rate;
    delay;
    queue = Nqueue.create queue;
    receiver = None;
    busy = false;
    delivered = 0;
    delivered_bytes = 0;
    blackholed = 0;
    busy_time = Engine.Time.zero;
    on_transmit = Hashtbl.create 16;
  }

let src t = t.src
let dst t = t.dst
let rate t = t.rate
let delay t = t.delay
let set_receiver t f = t.receiver <- Some f

let deliver t (p : Packet.t) =
  match t.receiver with
  | None -> t.blackholed <- t.blackholed + 1
  | Some f ->
      t.delivered <- t.delivered + 1;
      t.delivered_bytes <- t.delivered_bytes + p.size;
      f p

(* Serialize [p]; when its last bit is on the wire, schedule the
   propagation-delayed delivery and start on the next queued packet. *)
let rec transmit t (p : Packet.t) =
  t.busy <- true;
  (match Hashtbl.find_opt t.on_transmit p.id with
  | Some f ->
      Hashtbl.remove t.on_transmit p.id;
      f ()
  | None -> ());
  let tx_time = Engine.Units.Rate.transmission_time t.rate p.size in
  t.busy_time <- Engine.Time.add t.busy_time tx_time;
  ignore
    (Engine.Sim.schedule_after t.sim tx_time (fun () ->
         ignore
           (Engine.Sim.schedule_after t.sim t.delay (fun () -> deliver t p));
         match Nqueue.dequeue t.queue with
         | Some next -> transmit t next
         | None -> t.busy <- false))

let send t ?on_transmit p =
  (match on_transmit with
  | Some f -> Hashtbl.replace t.on_transmit p.Packet.id f
  | None -> ());
  if t.busy then begin
    if not (Nqueue.enqueue t.queue p) then
      (* Dropped at the tail: the packet will never serialize. *)
      Hashtbl.remove t.on_transmit p.Packet.id
  end
  else transmit t p

let busy t = t.busy
let queue_length t = Nqueue.length t.queue
let queue_bytes t = Nqueue.byte_length t.queue
let queue_drops t = Nqueue.drops t.queue
let queue_high_watermark_bytes t = Nqueue.high_watermark_bytes t.queue
let packets_delivered t = t.delivered
let bytes_delivered t = t.delivered_bytes
let packets_blackholed t = t.blackholed

let set_rate t rate = t.rate <- rate

let utilization t horizon =
  if Engine.Time.(horizon <= Engine.Time.zero) then
    invalid_arg "Link.utilization: horizon must be positive";
  Float.min 1. (Engine.Time.ratio t.busy_time horizon)

let pp fmt t =
  Format.fprintf fmt "%a->%a %a %a q=%d" Node_id.pp t.src Node_id.pp t.dst
    Engine.Units.Rate.pp t.rate Engine.Time.pp t.delay (queue_length t)

type t = ..
type t += Raw of string

let printers : (t -> string option) list ref = ref []
let describe f = printers := !printers @ [ f ]

let pp fmt p =
  let builtin = function Raw s -> Some (Printf.sprintf "raw[%d]" (String.length s)) | _ -> None in
  let rec try_printers = function
    | [] -> "<payload>"
    | f :: rest -> ( match f p with Some s -> s | None -> try_printers rest)
  in
  Format.pp_print_string fmt (try_printers (builtin :: !printers))

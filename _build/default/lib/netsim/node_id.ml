type t = int

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative id";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt t = Format.fprintf fmt "n%d" t

module Map = Map.Make (Int)
module Set = Set.Make (Int)

(** Constant-bit-rate background traffic.

    An unresponsive packet source: fixed-size packets paced at a fixed
    rate from one node to another, regardless of congestion.  Used as
    cross traffic in the contention experiments — a delay-based
    transport sharing a link with CBR load should settle onto the
    *residual* capacity rather than fight for more. *)

type t

val start :
  Network.t ->
  src:Node_id.t ->
  dst:Node_id.t ->
  rate:Engine.Units.Rate.t ->
  ?packet_size:int ->
  unit ->
  t
(** Begin emitting immediately; the first packet leaves one inter-packet
    interval from now.  [packet_size] defaults to 512 bytes.  Raises
    [Invalid_argument] if [packet_size <= 0]. *)

val set_rate : t -> Engine.Units.Rate.t -> unit
(** Change the emission rate from the next packet onwards. *)

val stop : t -> unit
(** Cease emitting (idempotent). *)

val packets_sent : t -> int
val bytes_sent : t -> int

lib/workload/contention_experiment.mli: Circuitstart Engine

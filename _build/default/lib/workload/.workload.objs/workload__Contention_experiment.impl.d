lib/workload/contention_experiment.ml: Backtap Circuitstart Engine Float List Netsim Option Optmodel Printf Relay_gen Tor_model Tor_net

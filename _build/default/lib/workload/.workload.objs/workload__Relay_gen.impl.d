lib/workload/relay_gen.ml: Engine Float Int64 List Printf Stdlib Tor_model

lib/workload/star_experiment.mli: Circuitstart Engine Relay_gen

lib/workload/adaptive_experiment.ml: Array Backtap Circuitstart Engine List Netsim Optmodel Printf Relay_gen Tor_model Tor_net

lib/workload/adaptive_experiment.mli: Circuitstart Engine

lib/workload/relay_gen.mli: Engine Tor_model

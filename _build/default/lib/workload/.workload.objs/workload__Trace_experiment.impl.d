lib/workload/trace_experiment.ml: Array Backtap Circuitstart Engine Float List Netsim Optmodel Printf Relay_gen Tor_model Tor_net

lib/workload/star_experiment.ml: Array Backtap Circuitstart Engine Int64 List Netsim Option Optmodel Printf Relay_gen Stdlib Tor_model Tor_net

lib/workload/trace_experiment.mli: Circuitstart Engine Netsim

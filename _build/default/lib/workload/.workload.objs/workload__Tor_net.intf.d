lib/workload/tor_net.mli: Backtap Engine Netsim Optmodel Relay_gen Tor_model

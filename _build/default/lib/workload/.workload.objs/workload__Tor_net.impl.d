lib/workload/tor_net.ml: Backtap List Netsim Optmodel Relay_gen Tor_model

(** Assembled star overlays: topology + routing + per-node machinery.

    Two-phase construction, because routes are computed once over the
    finished graph: declare every participant on a {!builder}, then
    {!finalize}.  Finalization creates the {!Netsim.Network.t}, one
    {!Tor_model.Switchboard.t} per leaf, a {!Tor_model.Relay_ctl.t}
    on every leaf (so any node can take part in circuit
    establishment), a {!Backtap.Node.t} on every leaf, and a
    {!Tor_model.Directory.t} of the declared relays. *)

type builder
type t

val builder : Engine.Sim.t -> ?hub_name:string -> ?queue:Netsim.Nqueue.capacity -> unit -> builder
(** Start a star around a hub.  [queue] is the per-link queue capacity
    (default unbounded — congestion shows up as delay, which is what
    delay-based control observes). *)

val add_relay : builder -> Relay_gen.spec -> unit
(** Declare a relay leaf. *)

val add_endpoint :
  builder ->
  name:string ->
  rate:Engine.Units.Rate.t ->
  delay:Engine.Time.t ->
  Netsim.Node_id.t
(** Declare a client or server leaf; returns its node id (valid after
    finalization too). *)

val finalize : builder -> t
(** Build routes and install all per-node machinery.  The builder must
    not be reused afterwards (raises [Invalid_argument]). *)

(** {1 Access} *)

val sim : t -> Engine.Sim.t
val network : t -> Netsim.Network.t
val directory : t -> Tor_model.Directory.t
val hub : t -> Netsim.Node_id.t

val switchboard : t -> Netsim.Node_id.t -> Tor_model.Switchboard.t
(** Raises [Not_found] for the hub or unknown nodes. *)

val backtap_node : t -> Netsim.Node_id.t -> Backtap.Node.t
(** Raises [Not_found] likewise. *)

val relay_ctl : t -> Netsim.Node_id.t -> Tor_model.Relay_ctl.t
(** Raises [Not_found] likewise. *)

val access_spec : t -> Netsim.Node_id.t -> Optmodel.Path_model.node_spec
(** The declared rate/delay of a leaf.  Raises [Not_found] for the
    hub. *)

val path_model : t -> Tor_model.Circuit.t -> Optmodel.Path_model.t
(** Analytic path description of a circuit over this network. *)

val circuit_ids : t -> Tor_model.Circuit_id.gen
(** The network-wide circuit id generator. *)

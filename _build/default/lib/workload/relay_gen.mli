(** Synthetic relay populations.

    Substitution for the paper's "randomly generated network of Tor
    relays" (DESIGN.md): relay bandwidths are drawn log-normally —
    matching the heavy right tail of the public Tor consensus, where a
    small number of fast relays carries most traffic — and clamped to a
    plausible range; access latencies are uniform.  The distribution
    parameters are explicit so ablations can vary the bottleneck
    diversity. *)

type spec = {
  nickname : string;
  bandwidth : Engine.Units.Rate.t;
  latency : Engine.Time.t;
  flags : Tor_model.Relay_info.flag list;
}

type config = {
  bandwidth_median_mbit : float;  (** Median of the log-normal, Mbit/s. *)
  bandwidth_sigma : float;  (** Log-space sigma (tail heaviness). *)
  bandwidth_min_mbit : float;  (** Lower clamp. *)
  bandwidth_max_mbit : float;  (** Upper clamp. *)
  latency_min : Engine.Time.t;
  latency_max : Engine.Time.t;
  exit_fraction : float;  (** Fraction of relays flagged [Exit]. *)
}

val default_config : config
(** Median 10 Mbit/s, sigma 0.75, clamps 1–100 Mbit/s, latency
    5–15 ms, every third relay an exit ([exit_fraction = 0.34]). *)

val validate_config : config -> (config, string) result

val generate : Engine.Rng.t -> config -> n:int -> spec list
(** [generate rng config ~n] draws [n] relay specs.  All relays get
    [Guard]/[Fast]/[Stable]; [Exit] is assigned to about
    [exit_fraction * n] relays round-robin so path selection always
    finds exits.  Raises [Invalid_argument] on [n <= 0] or an invalid
    config. *)

type leaf = {
  node : Netsim.Node_id.t;
  spec : Optmodel.Path_model.node_spec;
  relay : Relay_gen.spec option;
}

type builder = {
  topo : Netsim.Topology.t;
  hub : Netsim.Node_id.t;
  queue : Netsim.Nqueue.capacity;
  mutable leaves : leaf list;
  mutable finalized : bool;
}

type t = {
  net : Netsim.Network.t;
  b_hub : Netsim.Node_id.t;
  dir : Tor_model.Directory.t;
  switchboards : Tor_model.Switchboard.t Netsim.Node_id.Map.t;
  backtaps : Backtap.Node.t Netsim.Node_id.Map.t;
  ctls : Tor_model.Relay_ctl.t Netsim.Node_id.Map.t;
  specs : Optmodel.Path_model.node_spec Netsim.Node_id.Map.t;
  ids : Tor_model.Circuit_id.gen;
}

let builder sim ?(hub_name = "hub") ?(queue = Netsim.Nqueue.unbounded) () =
  let topo = Netsim.Topology.create sim in
  let hub = Netsim.Topology.add_node topo ~name:hub_name in
  { topo; hub; queue; leaves = []; finalized = false }

let add_leaf b ~name ~rate ~delay relay =
  if b.finalized then invalid_arg "Tor_net: builder already finalized";
  let node = Netsim.Topology.add_node b.topo ~name in
  Netsim.Topology.connect b.topo node b.hub ~rate ~delay ~queue:b.queue ();
  b.leaves <-
    b.leaves @ [ { node; spec = { Optmodel.Path_model.rate; access_delay = delay }; relay } ];
  node

let add_relay b (spec : Relay_gen.spec) =
  ignore
    (add_leaf b ~name:spec.nickname ~rate:spec.bandwidth ~delay:spec.latency (Some spec)
      : Netsim.Node_id.t)

let add_endpoint b ~name ~rate ~delay = add_leaf b ~name ~rate ~delay None

let finalize b =
  if b.finalized then invalid_arg "Tor_net.finalize: builder already finalized";
  b.finalized <- true;
  Tor_model.Cell.register_printer ();
  Backtap.Wire.register_printer ();
  let net = Netsim.Network.create b.topo in
  let dir = Tor_model.Directory.create () in
  let add_maps (sbs, bts, ctls, specs) leaf =
    let sb = Tor_model.Switchboard.install net leaf.node in
    let bt = Backtap.Node.install sb in
    let ctl = Tor_model.Relay_ctl.create sb in
    (match leaf.relay with
    | Some (r : Relay_gen.spec) ->
        Tor_model.Directory.add dir
          (Tor_model.Relay_info.make ~nickname:r.nickname ~node:leaf.node
             ~bandwidth:r.bandwidth ~latency:r.latency ~flags:r.flags ())
    | None -> ());
    ( Netsim.Node_id.Map.add leaf.node sb sbs,
      Netsim.Node_id.Map.add leaf.node bt bts,
      Netsim.Node_id.Map.add leaf.node ctl ctls,
      Netsim.Node_id.Map.add leaf.node leaf.spec specs )
  in
  let switchboards, backtaps, ctls, specs =
    List.fold_left add_maps
      Netsim.Node_id.Map.(empty, empty, empty, empty)
      b.leaves
  in
  { net; b_hub = b.hub; dir; switchboards; backtaps; ctls; specs;
    ids = Tor_model.Circuit_id.generator () }

let sim t = Netsim.Network.sim t.net
let network t = t.net
let directory t = t.dir
let hub t = t.b_hub

let find map node =
  match Netsim.Node_id.Map.find_opt node map with
  | Some x -> x
  | None -> raise Not_found

let switchboard t node = find t.switchboards node
let backtap_node t node = find t.backtaps node
let relay_ctl t node = find t.ctls node
let access_spec t node = find t.specs node

let path_model t circuit =
  Optmodel.Path_model.of_specs
    (List.map (access_spec t) (Tor_model.Circuit.nodes circuit))

let circuit_ids t = t.ids

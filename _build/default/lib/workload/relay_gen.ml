type spec = {
  nickname : string;
  bandwidth : Engine.Units.Rate.t;
  latency : Engine.Time.t;
  flags : Tor_model.Relay_info.flag list;
}

type config = {
  bandwidth_median_mbit : float;
  bandwidth_sigma : float;
  bandwidth_min_mbit : float;
  bandwidth_max_mbit : float;
  latency_min : Engine.Time.t;
  latency_max : Engine.Time.t;
  exit_fraction : float;
}

let default_config =
  {
    bandwidth_median_mbit = 10.;
    bandwidth_sigma = 0.75;
    bandwidth_min_mbit = 1.;
    bandwidth_max_mbit = 100.;
    latency_min = Engine.Time.ms 5;
    latency_max = Engine.Time.ms 15;
    exit_fraction = 0.34;
  }

let validate_config c =
  if c.bandwidth_median_mbit <= 0. then Error "bandwidth_median_mbit must be positive"
  else if c.bandwidth_sigma < 0. then Error "bandwidth_sigma must be non-negative"
  else if c.bandwidth_min_mbit <= 0. then Error "bandwidth_min_mbit must be positive"
  else if c.bandwidth_max_mbit < c.bandwidth_min_mbit then
    Error "bandwidth_max_mbit below bandwidth_min_mbit"
  else if Engine.Time.(c.latency_max < c.latency_min) then
    Error "latency_max below latency_min"
  else if c.exit_fraction <= 0. || c.exit_fraction > 1. then
    Error "exit_fraction must be in (0, 1]"
  else Ok c

let generate rng config ~n =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Relay_gen.generate: " ^ msg)
  in
  if n <= 0 then invalid_arg "Relay_gen.generate: n must be positive";
  (* For a log-normal, exp(mu) is the median. *)
  let mu = Float.log config.bandwidth_median_mbit in
  let exit_every = Stdlib.max 1 (int_of_float (Float.round (1. /. config.exit_fraction))) in
  List.init n (fun i ->
      let mbit =
        Engine.Rng.lognormal rng ~mu ~sigma:config.bandwidth_sigma
        |> Float.max config.bandwidth_min_mbit
        |> Float.min config.bandwidth_max_mbit
      in
      let lat_lo = Engine.Time.to_ns config.latency_min in
      let lat_hi = Engine.Time.to_ns config.latency_max in
      let latency =
        if Int64.equal lat_lo lat_hi then config.latency_min
        else
          Engine.Time.of_ns64
            (Int64.add lat_lo
               (Int64.of_float
                  (Engine.Rng.float rng (Int64.to_float (Int64.sub lat_hi lat_lo)))))
      in
      let flags =
        let base =
          [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Fast;
            Tor_model.Relay_info.Stable ]
        in
        if i mod exit_every = 0 then Tor_model.Relay_info.Exit :: base else base
      in
      { nickname = Printf.sprintf "relay%02d" i;
        bandwidth = Engine.Units.Rate.mbit_f mbit; latency; flags })

lib/core/controller.ml: Array Engine Float Format Params Printf Queue Stdlib Sys

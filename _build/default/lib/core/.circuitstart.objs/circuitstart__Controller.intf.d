lib/core/controller.mli: Engine Format Params

type t = int

let of_int i =
  if i < 0 then invalid_arg "Circuit_id.of_int: negative id";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let pp fmt t = Format.fprintf fmt "c%d" t

module Map = Map.Make (Int)

type gen = int ref

let generator () = ref 0

let next g =
  let id = !g in
  incr g;
  id

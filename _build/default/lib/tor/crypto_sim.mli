(** Structural onion "cryptography".

    The paper's transport dynamics are independent of actual encryption,
    so real AES/ntor handshakes are substituted by a layer counter that
    preserves the *structure* of onion routing: the client wraps a relay
    cell in one layer per hop it must traverse; every relay peels
    exactly one layer; the cell's payload command becomes visible (i.e.
    deliverable) only at zero layers.  Mis-layered deliveries therefore
    fail loudly in tests instead of silently succeeding.

    Documented substitution (DESIGN.md): nstor also abstracts crypto
    cost away; at the simulated scale crypto CPU time is negligible
    compared to transmission and propagation delays. *)

val wrap : hops:int -> Cell.relay_command -> Circuit_id.t -> Cell.t
(** [wrap ~hops cmd circuit] is a RELAY cell wrapped in [hops] layers —
    what a client sends for a circuit whose payload must traverse
    [hops] forwarding nodes.  Raises [Invalid_argument] if
    [hops < 1]. *)

val peel : Cell.t -> Cell.t
(** [peel cell] removes one layer.  Raises [Invalid_argument] if
    [cell] is not a RELAY cell or has no layers left. *)

val exposed : Cell.t -> Cell.relay_command option
(** [exposed cell] is the relay command if all layers are off (the
    final hop may deliver it); [None] if still wrapped or not a RELAY
    cell. *)

val layers : Cell.t -> int option
(** Remaining layer count of a RELAY cell. *)

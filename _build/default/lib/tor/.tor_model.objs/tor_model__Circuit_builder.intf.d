lib/tor/circuit_builder.mli: Circuit Engine Switchboard

lib/tor/cell.mli: Circuit_id Format Netsim

lib/tor/circuit_id.mli: Format Map

lib/tor/circuit.ml: Circuit_id Format List Netsim Relay_info

lib/tor/circuit.mli: Circuit_id Format Netsim Relay_info

lib/tor/relay_ctl.ml: Cell Circuit_id Hashtbl List Netsim Option Switchboard

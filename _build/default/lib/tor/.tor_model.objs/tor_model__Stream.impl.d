lib/tor/stream.ml: Cell Engine Hashtbl Stdlib

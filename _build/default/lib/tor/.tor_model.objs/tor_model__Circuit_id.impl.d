lib/tor/circuit_id.ml: Format Int Map

lib/tor/switchboard.mli: Cell Circuit_id Netsim

lib/tor/circuit_builder.ml: Cell Circuit Engine List Netsim Relay_info Switchboard

lib/tor/switchboard.ml: Cell Circuit_id Format Hashtbl Netsim

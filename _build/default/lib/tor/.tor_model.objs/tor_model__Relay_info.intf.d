lib/tor/relay_info.mli: Engine Format Netsim

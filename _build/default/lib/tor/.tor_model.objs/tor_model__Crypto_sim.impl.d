lib/tor/crypto_sim.ml: Cell

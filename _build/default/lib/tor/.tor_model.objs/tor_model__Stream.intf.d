lib/tor/stream.mli: Cell Circuit_id Engine

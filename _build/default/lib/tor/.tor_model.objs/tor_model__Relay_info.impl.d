lib/tor/relay_info.ml: Engine Format List Netsim

lib/tor/directory.mli: Engine Netsim Relay_info

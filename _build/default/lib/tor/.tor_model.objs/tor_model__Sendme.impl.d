lib/tor/sendme.ml: Cell Circuit Crypto_sim Engine Hashtbl List Netsim Relay_info Stdlib Stream Switchboard

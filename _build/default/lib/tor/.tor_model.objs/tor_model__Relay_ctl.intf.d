lib/tor/relay_ctl.mli: Circuit_id Netsim Switchboard

lib/tor/cell.ml: Circuit_id Format Netsim

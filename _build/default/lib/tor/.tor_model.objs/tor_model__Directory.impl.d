lib/tor/directory.ml: Array Engine List Netsim Option Relay_info

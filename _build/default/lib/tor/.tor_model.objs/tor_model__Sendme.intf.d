lib/tor/sendme.mli: Circuit Engine Netsim Stream Switchboard

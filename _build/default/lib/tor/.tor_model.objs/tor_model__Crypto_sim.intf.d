lib/tor/crypto_sim.mli: Cell Circuit_id

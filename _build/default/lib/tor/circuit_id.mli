(** Circuit identifiers.

    One id names a circuit end to end (the real Tor renumbers per hop;
    the transport dynamics don't care, so we keep the simpler global
    id — the switchboard keys on it at every node). *)

type t

val of_int : int -> t
(** [of_int i] for [i >= 0]; raises [Invalid_argument] otherwise. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t

type gen
(** Sequential id generator. *)

val generator : unit -> gen
val next : gen -> t

(** Circuits: a client, an ordered relay path, and a destination.

    The node sequence [client; relay_1; ...; relay_k; server] is the
    data path; each adjacent pair is one *hop* of the hop-by-hop
    transport.  The server is modelled as the final hop's endpoint (in
    real Tor the exit's TCP connection to the destination), so window
    mechanics cover the exit→server leg too. *)

type t = private {
  id : Circuit_id.t;
  client : Netsim.Node_id.t;
  relays : Relay_info.t list;  (** In path order, guard first. *)
  server : Netsim.Node_id.t;
}

val make :
  id:Circuit_id.t ->
  client:Netsim.Node_id.t ->
  relays:Relay_info.t list ->
  server:Netsim.Node_id.t ->
  t
(** Raises [Invalid_argument] if [relays] is empty or the node sequence
    contains duplicates. *)

val nodes : t -> Netsim.Node_id.t list
(** [client :: relay nodes @ [server]]. *)

val hop_count : t -> int
(** Number of hops = [List.length (nodes t) - 1]. *)

val layer_count : t -> int
(** Onion layers a client data cell carries = number of peeling nodes
    = [List.length relays]. *)

val position : t -> Netsim.Node_id.t -> int option
(** Index of a node in {!nodes} (client = 0). *)

val successor : t -> Netsim.Node_id.t -> Netsim.Node_id.t option
(** Next node towards the server; [None] for the server or unknown
    nodes. *)

val predecessor : t -> Netsim.Node_id.t -> Netsim.Node_id.t option
(** Previous node towards the client. *)

val pp : Format.formatter -> t -> unit

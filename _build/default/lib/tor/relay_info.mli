(** Relay descriptors.

    What the directory knows about a relay: its nickname, the node it
    runs on, its advertised bandwidth (= its star access-link rate) and
    access latency, and its position flags.  Mirrors the fields of a
    Tor router descriptor that matter to path selection. *)

type flag = Guard | Exit | Fast | Stable

type t = {
  nickname : string;
  node : Netsim.Node_id.t;
  bandwidth : Engine.Units.Rate.t;
  latency : Engine.Time.t;  (** One-way access-link propagation delay. *)
  flags : flag list;
}

val make :
  nickname:string ->
  node:Netsim.Node_id.t ->
  bandwidth:Engine.Units.Rate.t ->
  latency:Engine.Time.t ->
  ?flags:flag list ->
  unit ->
  t
(** [flags] defaults to [[Guard; Exit; Fast; Stable]] (every position
    allowed), which is what the paper's random networks use. *)

val has_flag : t -> flag -> bool
val flag_equal : flag -> flag -> bool
val pp : Format.formatter -> t -> unit

(** Legacy Tor end-to-end flow control (the "vanilla Tor" baseline).

    Tor without a tailored transport has no per-hop congestion control:
    the client may have [circuit_window] cells in flight end-to-end
    (1000), plus a per-stream window (500); the far end returns a
    SENDME credit for every [circuit_increment] (100) delivered cells
    (and per [stream_increment] (50) for the stream window).  Relays
    forward cells as fast as their links drain — queueing is unbounded
    and invisible to the sender.  This is the scheme whose startup and
    queueing behaviour the tailored transports (BackTap, CircuitStart)
    improve on; the comparison appears in the extra table T1. *)

type config = {
  circuit_window : int;  (** Initial circuit-level credit, cells. *)
  stream_window : int;  (** Initial stream-level credit, cells. *)
  circuit_increment : int;  (** Cells per circuit-level SENDME. *)
  stream_increment : int;  (** Cells per stream-level SENDME. *)
}

val default_config : config
(** Tor's classic values: 1000 / 500 / 100 / 50. *)

val validate_config : config -> (config, string) result

type t

val deploy :
  sb_of:(Netsim.Node_id.t -> Switchboard.t) ->
  circuit:Circuit.t ->
  bytes:int ->
  ?config:config ->
  ?stream_id:int ->
  unit ->
  t
(** Install forwarding handlers for [circuit] on every node's
    switchboard and prepare a [bytes]-byte transfer.  Nothing is sent
    until {!start}.  [sb_of] must return the (single) switchboard of
    each node on the path.  Raises [Invalid_argument] on an invalid
    [config]. *)

val start : t -> unit
(** Begin transmitting.  Raises [Invalid_argument] if called twice. *)

val complete : t -> bool
val first_sent_at : t -> Engine.Time.t option
val completed_at : t -> Engine.Time.t option

val time_to_last_byte : t -> Engine.Time.t option
(** [completed_at - first_sent_at]. *)

val sink : t -> Stream.Sink.t

val cell_latency_stats : t -> Engine.Stats.Online.t
(** End-to-end per-cell latency: client send decision to server
    delivery (the client's own queueing counts — legacy Tor inflicts
    it). *)

val client_credit : t -> int
(** Remaining end-to-end credit (min of circuit and stream credit). *)

val sendmes_received : t -> int

val teardown : t -> unit
(** Unregister all of the circuit's handlers. *)

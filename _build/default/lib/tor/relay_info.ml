type flag = Guard | Exit | Fast | Stable

type t = {
  nickname : string;
  node : Netsim.Node_id.t;
  bandwidth : Engine.Units.Rate.t;
  latency : Engine.Time.t;
  flags : flag list;
}

let make ~nickname ~node ~bandwidth ~latency ?(flags = [ Guard; Exit; Fast; Stable ]) () =
  { nickname; node; bandwidth; latency; flags }

let flag_equal a b =
  match (a, b) with
  | Guard, Guard | Exit, Exit | Fast, Fast | Stable, Stable -> true
  | (Guard | Exit | Fast | Stable), _ -> false

let has_flag t f = List.exists (flag_equal f) t.flags

let pp fmt t =
  Format.fprintf fmt "%s@%a %a %a" t.nickname Netsim.Node_id.pp t.node
    Engine.Units.Rate.pp t.bandwidth Engine.Time.pp t.latency

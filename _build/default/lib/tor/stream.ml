module Source = struct
  type t = {
    stream_id : int;
    total : int;
    mutable sent : int;
    mutable next_seq : int;
  }

  let create ~stream_id ~bytes =
    if bytes <= 0 then invalid_arg "Stream.Source.create: bytes must be positive";
    { stream_id; total = bytes; sent = 0; next_seq = 0 }

  let stream_id t = t.stream_id
  let total_bytes t = t.total
  let remaining t = t.total - t.sent

  let cell_count t =
    (t.total + Cell.payload_capacity - 1) / Cell.payload_capacity

  let next_cell t circuit ~layers =
    let rem = remaining t in
    if rem = 0 then None
    else begin
      let length = Stdlib.min rem Cell.payload_capacity in
      let last = length = rem in
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      t.sent <- t.sent + length;
      Some
        (Cell.data circuit ~layers ~stream_id:t.stream_id ~seq ~length ~last)
    end
end

module Sink = struct
  type t = {
    expected : int;
    seen : (int, unit) Hashtbl.t;
    mutable received : int;
    mutable cells : int;
    mutable duplicates : int;
    mutable completed_at : Engine.Time.t option;
  }

  let create ~expected_bytes =
    if expected_bytes <= 0 then
      invalid_arg "Stream.Sink.create: expected_bytes must be positive";
    { expected = expected_bytes; seen = Hashtbl.create 64; received = 0; cells = 0;
      duplicates = 0; completed_at = None }

  let deliver t ~now = function
    | Cell.Relay_data { seq; length; _ } ->
        if Hashtbl.mem t.seen seq then t.duplicates <- t.duplicates + 1
        else begin
          Hashtbl.add t.seen seq ();
          t.received <- t.received + length;
          t.cells <- t.cells + 1;
          if t.received >= t.expected && t.completed_at = None then
            t.completed_at <- Some now
        end
    | Cell.Relay_sendme _ | Cell.Relay_end _ -> ()

  let received_bytes t = t.received
  let cells_received t = t.cells
  let duplicates t = t.duplicates
  let complete t = t.received >= t.expected
  let completed_at t = t.completed_at
end

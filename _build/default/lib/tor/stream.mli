(** Application streams: byte sources and sinks.

    A {!Source} slices a fixed transfer into RELAY_DATA cells (the
    paper's workload: "transferring a fixed amount of data"); a
    {!Sink} absorbs them at the far end and knows when the last byte
    arrived — the time-to-last-byte metric of Figure 1. *)

module Source : sig
  type t

  val create : stream_id:int -> bytes:int -> t
  (** A source with [bytes] to send.  Raises [Invalid_argument] if
      [bytes <= 0]. *)

  val stream_id : t -> int
  val total_bytes : t -> int
  val remaining : t -> int

  val cell_count : t -> int
  (** Total RELAY_DATA cells this transfer needs. *)

  val next_cell : t -> Circuit_id.t -> layers:int -> Cell.t option
  (** Produce the next data cell (consuming up to
      {!Cell.payload_capacity} bytes), wrapped in [layers] onion
      layers; [None] when the source is drained.  The final cell
      carries [last = true]. *)
end

module Sink : sig
  type t

  val create : expected_bytes:int -> t
  (** Raises [Invalid_argument] if [expected_bytes <= 0]. *)

  val deliver : t -> now:Engine.Time.t -> Cell.relay_command -> unit
  (** Account an exposed relay command.  Duplicate data cells (same
      seq) are counted once — retransmissions must not complete a
      transfer early.  Non-data commands are ignored. *)

  val received_bytes : t -> int
  val cells_received : t -> int
  val duplicates : t -> int
  val complete : t -> bool
  (** All expected bytes arrived. *)

  val completed_at : t -> Engine.Time.t option
  (** Instant the last missing byte arrived. *)
end

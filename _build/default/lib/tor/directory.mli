(** The directory: the set of known relays and path selection.

    Path selection follows Tor's essentials: positions are filled
    guard → exit → middle, each choice is weighted by relay bandwidth
    (faster relays carry proportionally more circuits), a relay appears
    at most once per path, and position flags are honoured.  This is
    what makes the random star networks of the CDF experiment exhibit
    realistic bottleneck diversity. *)

type t

val create : unit -> t
val add : t -> Relay_info.t -> unit
val relays : t -> Relay_info.t list
(** In insertion order. *)

val count : t -> int

val find_by_node : t -> Netsim.Node_id.t -> Relay_info.t option

val select_path : t -> Engine.Rng.t -> hops:int -> Relay_info.t list option
(** [select_path dir rng ~hops] draws a bandwidth-weighted path of
    [hops] distinct relays: position 0 needs [Guard], the last position
    needs [Exit], middles need no flag.  [None] if the directory cannot
    satisfy the constraints.  Raises [Invalid_argument] if [hops < 1]. *)

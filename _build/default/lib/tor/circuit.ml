type t = {
  id : Circuit_id.t;
  client : Netsim.Node_id.t;
  relays : Relay_info.t list;
  server : Netsim.Node_id.t;
}

let nodes t =
  (t.client :: List.map (fun (r : Relay_info.t) -> r.node) t.relays) @ [ t.server ]

let make ~id ~client ~relays ~server =
  if relays = [] then invalid_arg "Circuit.make: need at least one relay";
  let t = { id; client; relays; server } in
  let ns = nodes t in
  let distinct = Netsim.Node_id.Set.of_list ns in
  if Netsim.Node_id.Set.cardinal distinct <> List.length ns then
    invalid_arg "Circuit.make: duplicate node in path";
  t

let hop_count t = List.length (nodes t) - 1
let layer_count t = List.length t.relays

let position t node =
  let rec go i = function
    | [] -> None
    | n :: rest -> if Netsim.Node_id.equal n node then Some i else go (i + 1) rest
  in
  go 0 (nodes t)

let successor t node =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if Netsim.Node_id.equal a node then Some b else go rest
    | [ _ ] | [] -> None
  in
  go (nodes t)

let predecessor t node =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if Netsim.Node_id.equal b node then Some a else go rest
    | [ _ ] | [] -> None
  in
  go (nodes t)

let pp fmt t =
  Format.fprintf fmt "%a: %a" Circuit_id.pp t.id
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " -> ")
       Netsim.Node_id.pp)
    (nodes t)

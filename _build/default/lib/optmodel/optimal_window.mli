(** The optimal congestion window in a multi-hop circuit.

    Reimplementation of the paper's baseline model ("we developed a
    model to calculate the source's optimal congestion window in a
    multi-hop scenario"), defining optimal as the paper does: the
    minimal window that suffices to fully utilise the network.

    For hop [i] that is the bandwidth-delay product of the circuit's
    bottleneck rate [B] across hop [i]'s feedback loop at zero load:

    {v W*_i = B * R_i v}

    where [R_i] covers the data cell's serialization on node [i]'s
    uplink and node [i+1]'s downlink, the feedback message's
    serialization on the way back, and two traversals of both access
    propagation delays.  The dashed optimum of Figure 1 is the source's
    value [W*_0]; CircuitStart's backpropagation makes the source
    settle near [min_i W*_i], which {!propagated_estimate_cells}
    computes — equal to [W*_0] for homogeneous delays, an
    underestimate otherwise (paper §2, "Backpropagation"). *)

val bottleneck_rate : Path_model.t -> Engine.Units.Rate.t
(** Smallest access rate on the path. *)

val bottleneck_position : Path_model.t -> int
(** Node index of the bottleneck (first minimum). *)

val hop_feedback_rtt :
  ?cell_size:int -> ?feedback_size:int -> Path_model.t -> int -> Engine.Time.t
(** [hop_feedback_rtt path i] is [R_i], the zero-load cell→feedback
    loop time of hop [i].  [cell_size] defaults to 520 bytes (cell +
    hop envelope), [feedback_size] to 43.  Raises [Invalid_argument]
    for an out-of-range hop. *)

val hop_window_cells :
  ?cell_size:int -> ?feedback_size:int -> Path_model.t -> int -> int
(** [W*_i] in cells (ceiling, at least 1). *)

val source_window_cells : ?cell_size:int -> ?feedback_size:int -> Path_model.t -> int
(** [W*_0] — the dashed line of Figure 1. *)

val source_window_bytes : ?cell_size:int -> ?feedback_size:int -> Path_model.t -> int
(** [W*_0] in wire bytes ([cells * cell_size]). *)

val propagated_estimate_cells :
  ?cell_size:int -> ?feedback_size:int -> Path_model.t -> int
(** [min_i W*_i] — what backpropagation delivers to the source. *)

lib/optmodel/optimal_window.mli: Engine Path_model

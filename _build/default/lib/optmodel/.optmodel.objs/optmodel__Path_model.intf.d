lib/optmodel/path_model.mli: Engine

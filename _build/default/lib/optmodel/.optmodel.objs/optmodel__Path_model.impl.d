lib/optmodel/path_model.ml: Array Engine List

lib/optmodel/optimal_window.ml: Engine Float List Option Path_model Stdlib

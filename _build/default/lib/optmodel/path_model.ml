type node_spec = { rate : Engine.Units.Rate.t; access_delay : Engine.Time.t }
type t = node_spec array

let of_specs specs =
  if List.length specs < 2 then invalid_arg "Path_model.of_specs: need at least two nodes";
  Array.of_list specs

let node_count t = Array.length t
let hop_count t = Array.length t - 1

let spec t i =
  if i < 0 || i >= Array.length t then invalid_arg "Path_model.spec: out of range";
  t.(i)

let rates t = Array.to_list (Array.map (fun s -> s.rate) t)

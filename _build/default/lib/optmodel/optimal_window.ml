let default_cell_size = 520
let default_feedback_size = 43

let bottleneck_rate path =
  match Path_model.rates path with
  | [] -> assert false
  | r :: rest -> List.fold_left Engine.Units.Rate.min r rest

let bottleneck_position path =
  let n = Path_model.node_count path in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if
      Engine.Units.Rate.compare (Path_model.spec path i).rate
        (Path_model.spec path !best).rate
      < 0
    then best := i
  done;
  !best

let hop_feedback_rtt ?(cell_size = default_cell_size)
    ?(feedback_size = default_feedback_size) path i =
  if i < 0 || i >= Path_model.hop_count path then
    invalid_arg "Optimal_window.hop_feedback_rtt: hop out of range";
  let a = Path_model.spec path i and b = Path_model.spec path (i + 1) in
  let tx rate size = Engine.Units.Rate.transmission_time rate size in
  let open Engine.Time in
  (* Data out: a's uplink, b's downlink; feedback back: b's uplink, a's
     downlink.  Each direction crosses both access propagation delays. *)
  add
    (add (tx a.rate cell_size) (tx b.rate cell_size))
    (add
       (add (tx b.rate feedback_size) (tx a.rate feedback_size))
       (mul_int (add a.access_delay b.access_delay) 2))

let hop_window_cells ?cell_size ?feedback_size path i =
  let cell = Option.value cell_size ~default:default_cell_size in
  let rtt = hop_feedback_rtt ?cell_size ?feedback_size path i in
  let b = bottleneck_rate path in
  let bdp = Engine.Units.Rate.to_bytes_per_sec b *. Engine.Time.to_sec_f rtt in
  Stdlib.max 1 (int_of_float (Float.ceil (bdp /. float_of_int cell)))

let source_window_cells ?cell_size ?feedback_size path =
  hop_window_cells ?cell_size ?feedback_size path 0

let source_window_bytes ?cell_size ?feedback_size path =
  let cell = Option.value cell_size ~default:default_cell_size in
  source_window_cells ?cell_size ?feedback_size path * cell

let propagated_estimate_cells ?cell_size ?feedback_size path =
  let hops = Path_model.hop_count path in
  let rec go i best =
    if i >= hops then best
    else go (i + 1) (Stdlib.min best (hop_window_cells ?cell_size ?feedback_size path i))
  in
  go 1 (hop_window_cells ?cell_size ?feedback_size path 0)

(** Analytic description of a circuit's path through the star.

    A path is the ordered list of participants (client, relays, server),
    each with its access-link rate and one-way access propagation delay.
    In the star topology a hop [i -> i+1] traverses node [i]'s uplink
    and node [i+1]'s downlink, so everything the optimal-window model
    needs is this per-node list. *)

type node_spec = {
  rate : Engine.Units.Rate.t;  (** Access-link rate. *)
  access_delay : Engine.Time.t;  (** One-way leaf-to-hub propagation. *)
}

type t

val of_specs : node_spec list -> t
(** Raises [Invalid_argument] with fewer than two nodes. *)

val node_count : t -> int
val hop_count : t -> int
(** [node_count - 1]. *)

val spec : t -> int -> node_spec
(** Raises [Invalid_argument] out of range. *)

val rates : t -> Engine.Units.Rate.t list

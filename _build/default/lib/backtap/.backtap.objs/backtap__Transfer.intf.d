lib/backtap/transfer.mli: Circuitstart Engine Hop_sender Netsim Node Tor_model

lib/backtap/wire.mli: Netsim Tor_model

lib/backtap/wire.ml: Format Netsim Tor_model

lib/backtap/transfer.ml: Array Circuitstart Engine Hashtbl Hop_sender Int List Netsim Node Option Printf Tor_model Wire

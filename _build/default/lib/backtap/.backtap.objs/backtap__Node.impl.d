lib/backtap/node.ml: Format Hashtbl Netsim Tor_model Wire

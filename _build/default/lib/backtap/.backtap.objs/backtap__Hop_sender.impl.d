lib/backtap/hop_sender.ml: Circuitstart Engine Float Hashtbl Netsim Option Queue Stdlib Tor_model Wire

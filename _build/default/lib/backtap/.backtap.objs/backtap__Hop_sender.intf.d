lib/backtap/hop_sender.mli: Circuitstart Engine Netsim Tor_model

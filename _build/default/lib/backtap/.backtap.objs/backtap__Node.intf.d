lib/backtap/node.mli: Netsim Tor_model

type flow = {
  on_cell : from:Netsim.Node_id.t -> hop_seq:int -> Tor_model.Cell.t -> unit;
  on_feedback : hop_seq:int -> unit;
}

type t = {
  sb : Tor_model.Switchboard.t;
  flows : (int, flow) Hashtbl.t;
  mutable orphans : int;
}

let dispatch t (p : Netsim.Packet.t) =
  match p.payload with
  | Wire.Bt_cell { hop_seq; cell } -> (
      match Hashtbl.find_opt t.flows (Tor_model.Circuit_id.to_int cell.circuit) with
      | Some flow -> flow.on_cell ~from:p.src ~hop_seq cell
      | None -> t.orphans <- t.orphans + 1)
  | Wire.Bt_feedback { circuit; hop_seq } -> (
      match Hashtbl.find_opt t.flows (Tor_model.Circuit_id.to_int circuit) with
      | Some flow -> flow.on_feedback ~hop_seq
      | None -> t.orphans <- t.orphans + 1)
  | _ -> t.orphans <- t.orphans + 1

let install sb =
  let t = { sb; flows = Hashtbl.create 16; orphans = 0 } in
  Tor_model.Switchboard.set_aux_handler sb (dispatch t);
  t

let switchboard t = t.sb

let register_flow t circuit flow =
  let key = Tor_model.Circuit_id.to_int circuit in
  if Hashtbl.mem t.flows key then
    invalid_arg
      (Format.asprintf "Backtap.Node.register_flow: %a already registered"
         Tor_model.Circuit_id.pp circuit);
  Hashtbl.add t.flows key flow

let unregister_flow t circuit =
  Hashtbl.remove t.flows (Tor_model.Circuit_id.to_int circuit)

let orphan_messages t = t.orphans

(** BackTap wire format.

    Between neighbouring relays, cells travel inside a hop-local
    envelope carrying a per-hop sequence number (BackTap runs its own
    framing over UDP; the 8-byte header models that).  The feedback
    message — "your cell [hop_seq] has just been forwarded onwards" —
    is a small separate datagram, not a cell: it must not compete for
    cell-sized transmission slots. *)

type Netsim.Payload.t +=
  | Bt_cell of { hop_seq : int; cell : Tor_model.Cell.t }
        (** A cell in flight on one hop; [hop_seq] numbers the sending
            hop's transmissions from 0 (retransmissions reuse the
            number). *)
  | Bt_feedback of { circuit : Tor_model.Circuit_id.t; hop_seq : int }
        (** Sent to the predecessor when the cell it sent as [hop_seq]
            is forwarded to the next hop (or delivered, at the final
            hop). *)

val cell_size : int
(** Envelope wire size: {!Tor_model.Cell.size} + 8 header bytes. *)

val feedback_size : int
(** Feedback wire size: 43 bytes (circuit id, command, digest). *)

val register_printer : unit -> unit
(** Hook the constructors into {!Netsim.Payload.pp} (idempotent). *)

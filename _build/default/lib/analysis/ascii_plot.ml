type spec = { label : string; glyph : char; points : Series.t }

let bounds specs =
  let fold f init =
    List.fold_left
      (fun acc spec -> Array.fold_left (fun acc p -> f acc p) acc spec.points)
      init specs
  in
  let x_min = fold (fun acc (x, _) -> Float.min acc x) Float.infinity in
  let x_max = fold (fun acc (x, _) -> Float.max acc x) Float.neg_infinity in
  let y_min = fold (fun acc (_, y) -> Float.min acc y) Float.infinity in
  let y_max = fold (fun acc (_, y) -> Float.max acc y) Float.neg_infinity in
  (x_min, x_max, y_min, y_max)

let render ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y") specs =
  let total_points = List.fold_left (fun acc s -> acc + Array.length s.points) 0 specs in
  if total_points = 0 then "(no data to plot)\n"
  else begin
    let x_min, x_max, y_min, y_max = bounds specs in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > y_min then y_max -. y_min else 1. in
    let canvas = Array.make_matrix height width ' ' in
    let plot_point glyph (x, y) =
      let col =
        int_of_float (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
      in
      let row =
        height - 1
        - int_of_float
            (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
      in
      if col >= 0 && col < width && row >= 0 && row < height then
        canvas.(row).(col) <- glyph
    in
    List.iter (fun spec -> Array.iter (plot_point spec.glyph) spec.points) specs;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    Buffer.add_string buf (Printf.sprintf "%s (max %.2f)\n" y_label y_max);
    Array.iteri
      (fun row line ->
        let edge = if row = 0 || row = height - 1 then "+" else "|" in
        Buffer.add_string buf edge;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf
      (Printf.sprintf "%-10.2f%s%10.2f  [%s]\n" x_min
         (String.make (Stdlib.max 1 (width - 18)) ' ')
         x_max x_label);
    List.iter
      (fun spec ->
        Buffer.add_string buf (Printf.sprintf "  %c = %s\n" spec.glyph spec.label))
      specs;
    Buffer.contents buf
  end

let check xs name =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty");
  Array.iter
    (fun x ->
      if not (Float.is_finite x) || x < 0. then
        invalid_arg (name ^ ": allocations must be finite and non-negative"))
    xs

let jain_index xs =
  check xs "Fairness.jain_index";
  let sum = Array.fold_left ( +. ) 0. xs in
  let sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
  if sq = 0. then invalid_arg "Fairness.jain_index: all-zero allocation";
  sum *. sum /. (float_of_int (Array.length xs) *. sq)

let throughputs_bytes_per_sec ~bytes_each ttlb_seconds =
  if bytes_each <= 0 then
    invalid_arg "Fairness.throughputs_bytes_per_sec: bytes must be positive";
  Array.map
    (fun t ->
      if not (Float.is_finite t) || t <= 0. then
        invalid_arg "Fairness.throughputs_bytes_per_sec: times must be positive";
      float_of_int bytes_each /. t)
    ttlb_seconds

let min_max_ratio xs =
  check xs "Fairness.min_max_ratio";
  let mn = Array.fold_left Float.min xs.(0) xs in
  let mx = Array.fold_left Float.max xs.(0) xs in
  if mx = 0. then invalid_arg "Fairness.min_max_ratio: all-zero allocation";
  mn /. mx

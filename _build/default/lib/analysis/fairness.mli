(** Fairness metrics across concurrent circuits.

    The paper's motivation asks Tor traffic to "behave much like
    background traffic"; one quantifiable aspect is how evenly
    concurrent circuits share the relays.  Jain's index over
    per-circuit throughputs is the standard measure: 1.0 = perfectly
    even, 1/n = one circuit starves all others. *)

val jain_index : float array -> float
(** [jain_index xs] = (Σx)² / (n·Σx²) over non-negative allocations.
    Raises [Invalid_argument] on an empty array, negative or non-finite
    entries, or an all-zero allocation. *)

val throughputs_bytes_per_sec : bytes_each:int -> float array -> float array
(** [throughputs_bytes_per_sec ~bytes_each ttlb_seconds] converts
    equal-sized transfer completion times into per-circuit throughputs.
    Raises [Invalid_argument] if [bytes_each <= 0] or any time is not
    positive. *)

val min_max_ratio : float array -> float
(** [min_max_ratio xs] = min/max of the allocations (another common
    fairness summary).  Same preconditions as {!jain_index}. *)

(** Terminal rendering of figures.

    The bench harness prints each reproduced figure panel as an ASCII
    plot so shape comparisons against the paper need no plotting
    toolchain.  Multiple series share one canvas, each with its own
    glyph; axes are annotated with min/max. *)

type spec = { label : string; glyph : char; points : Series.t }

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  spec list ->
  string
(** [render specs] draws all series on a shared canvas ([width] x
    [height] characters, default 72 x 20), with a legend line per
    series.  Later series overdraw earlier ones where they collide.
    Empty input or all-empty series yield a note instead of a plot. *)

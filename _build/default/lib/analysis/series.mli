(** Figure series: (x, y) float pairs derived from simulation traces.

    The figure pipeline converts {!Engine.Timeseries.t} recordings
    (nanoseconds, cells) into plot units (milliseconds, kilobytes) and
    aligns several series onto one grid. *)

type point = float * float
type t = point array

val of_timeseries :
  Engine.Timeseries.t ->
  x_of:(Engine.Time.t -> float) ->
  y_of:(float -> float) ->
  t
(** Convert every recorded point. *)

val resampled :
  Engine.Timeseries.t ->
  step:Engine.Time.t ->
  stop:Engine.Time.t ->
  x_of:(Engine.Time.t -> float) ->
  y_of:(float -> float) ->
  t
(** Step-function resample then convert (for uniform plot grids). *)

val ms_of_time : Engine.Time.t -> float
(** x-axis helper: time in milliseconds. *)

val kb_of_cells : cell_size:int -> float -> float
(** y-axis helper: cells → kilobytes (decimal kB, as the paper's
    axis). *)

val constant : x_max:float -> step:float -> float -> t
(** [constant ~x_max ~step y] is the horizontal line [y] sampled on
    [0, step, ...] — the figure's dashed optimum.  Raises
    [Invalid_argument] if [step <= 0.] or [x_max < 0.]. *)

val y_max : t -> float
(** Largest y (0. for an empty series). *)

val last_y : t -> float option
val map_y : (float -> float) -> t -> t

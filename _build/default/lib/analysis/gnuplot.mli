(** Gnuplot script generation.

    For readers who want the paper's figures as actual plots: every
    figure the bench harness writes as CSV also gets a ready-to-run
    gnuplot script (expects the CSV next to it). *)

val series_script :
  csv_file:string ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series:string list ->
  string
(** A script plotting the named series from a long-format
    [series,x,y] CSV written by {!Csv_out.series_csv}. *)

val cdf_script :
  csv_file:string -> title:string -> x_label:string -> series:string list -> string
(** A script plotting CDF step curves from a [series,value,fraction]
    CSV written by {!Csv_out.cdf_csv}. *)

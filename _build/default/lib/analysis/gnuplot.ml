let header ~title ~x_label ~y_label =
  String.concat "\n"
    [
      "set datafile separator ','";
      Printf.sprintf "set title %S" title;
      Printf.sprintf "set xlabel %S" x_label;
      Printf.sprintf "set ylabel %S" y_label;
      "set key bottom right";
      "set grid";
    ]

let plot_lines ~csv_file ~series ~using ~style =
  let one i name =
    Printf.sprintf
      "%s '< grep \"^%s,\" %s' using %s with %s title %S"
      (if i = 0 then "plot" else "    ")
      name csv_file using style name
  in
  String.concat ", \\\n" (List.mapi one series)

let series_script ~csv_file ~title ~x_label ~y_label ~series =
  header ~title ~x_label ~y_label
  ^ "\n"
  ^ plot_lines ~csv_file ~series ~using:"2:3" ~style:"steps lw 2"
  ^ "\n"

let cdf_script ~csv_file ~title ~x_label ~series =
  header ~title ~x_label ~y_label:"cumulative distribution"
  ^ "\nset yrange [0:1]\n"
  ^ plot_lines ~csv_file ~series ~using:"2:3" ~style:"steps lw 2"
  ^ "\n"

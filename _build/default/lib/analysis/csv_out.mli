(** CSV export for external plotting (gnuplot, matplotlib).

    Everything the ASCII renderings show can also be written as CSV so
    the paper's figures can be redrawn exactly. *)

val series_csv : (string * Series.t) list -> string
(** Long-format CSV [series,x,y] for any number of labelled series. *)

val cdf_csv : (string * Cdf.t) list -> string
(** Long-format CSV [series,value,fraction] of CDF step points. *)

val write_file : path:string -> string -> unit
(** Write contents to [path], creating parent directories as needed.
    Raises [Sys_error] on failure. *)

lib/analysis/csv_out.ml: Array Buffer Cdf Filename Fun List Printf Sys

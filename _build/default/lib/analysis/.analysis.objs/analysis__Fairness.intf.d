lib/analysis/fairness.mli:

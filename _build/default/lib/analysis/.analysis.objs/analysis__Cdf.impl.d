lib/analysis/cdf.ml: Array Float Stdlib

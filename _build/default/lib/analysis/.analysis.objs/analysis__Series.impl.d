lib/analysis/series.ml: Array Engine Float

lib/analysis/csv_out.mli: Cdf Series

lib/analysis/gnuplot.mli:

lib/analysis/ascii_plot.mli: Series

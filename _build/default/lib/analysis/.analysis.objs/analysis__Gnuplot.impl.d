lib/analysis/gnuplot.ml: List Printf String

lib/analysis/cdf.mli:

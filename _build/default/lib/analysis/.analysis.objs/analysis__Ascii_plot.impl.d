lib/analysis/ascii_plot.ml: Array Buffer Float List Printf Series Stdlib String

lib/analysis/table.mli: Engine

lib/analysis/series.mli: Engine

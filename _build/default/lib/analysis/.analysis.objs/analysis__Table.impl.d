lib/analysis/table.ml: Engine List Printf Stdlib String

lib/analysis/fairness.ml: Array Float

let series_csv labelled =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "series,x,y\n";
  List.iter
    (fun (label, series) ->
      Array.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%s,%.6f,%.6f\n" label x y))
        series)
    labelled;
  Buffer.contents buf

let cdf_csv labelled =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "series,value,fraction\n";
  List.iter
    (fun (label, cdf) ->
      List.iter
        (fun (v, f) -> Buffer.add_string buf (Printf.sprintf "%s,%.6f,%.6f\n" label v f))
        (Cdf.points cdf))
    labelled;
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_file ~path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

type point = float * float
type t = point array

let of_timeseries ts ~x_of ~y_of =
  Array.map (fun (time, v) -> (x_of time, y_of v)) (Engine.Timeseries.points ts)

let resampled ts ~step ~stop ~x_of ~y_of =
  Array.map (fun (time, v) -> (x_of time, y_of v)) (Engine.Timeseries.resample ts ~step ~stop)

let ms_of_time = Engine.Time.to_ms_f
let kb_of_cells ~cell_size cells = cells *. float_of_int cell_size /. 1000.

let constant ~x_max ~step y =
  if not (Float.is_finite step) || step <= 0. then
    invalid_arg "Series.constant: step must be positive";
  if not (Float.is_finite x_max) || x_max < 0. then
    invalid_arg "Series.constant: x_max must be non-negative";
  let n = int_of_float (x_max /. step) + 1 in
  Array.init n (fun i -> (float_of_int i *. step, y))

let y_max t = Array.fold_left (fun acc (_, y) -> Float.max acc y) 0. t
let last_y t = if Array.length t = 0 then None else Some (snd t.(Array.length t - 1))
let map_y f t = Array.map (fun (x, y) -> (x, f y)) t

(** Plain-text result tables.

    The bench harness prints one table per experiment row set; columns
    are auto-sized, numbers right-aligned. *)

type t

val create : columns:string list -> t
(** Raises [Invalid_argument] on an empty column list. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the arity differs from [columns]. *)

val row_count : t -> int

val render : t -> string
(** The formatted table, including a header rule. *)

val cell_f : float -> string
(** Format a float cell with 3 significant decimals. *)

val cell_time : Engine.Time.t -> string
(** Format a time cell in seconds. *)

type t = { columns : string list; mutable rows : string list list }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- t.rows @ [ row ]

let row_count t = List.length t.rows

let render t =
  let all = t.columns :: t.rows in
  let arity = List.length t.columns in
  let widths =
    List.init arity (fun i ->
        List.fold_left (fun acc row -> Stdlib.max acc (String.length (List.nth row i))) 0 all)
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let w = List.nth widths i in
           let pad = String.make (w - String.length cell) ' ' in
           if i = 0 then cell ^ pad else pad ^ cell)
         row)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (render_row t.columns :: rule :: List.map render_row t.rows) ^ "\n"

let cell_f x = Printf.sprintf "%.3f" x
let cell_time t = Printf.sprintf "%.3fs" (Engine.Time.to_sec_f t)

(* How sensitive is CircuitStart to its gamma threshold?  The paper
   fixes gamma = 4 cells; this ablation sweeps it and watches the exit
   point, the settled window and the transfer time.

   Run with:  dune exec examples/gamma_ablation.exe *)

let () =
  let t =
    Analysis.Table.create
      ~columns:[ "gamma"; "peak"; "exit"; "settled"; "optimal"; "ttlb" ]
  in
  List.iter
    (fun gamma ->
      let r =
        Workload.Trace_experiment.run
          { Workload.Trace_experiment.default_config with
            Workload.Trace_experiment.bottleneck_distance = 2;
            params = Circuitstart.Params.with_gamma Circuitstart.Params.default gamma;
          }
      in
      Analysis.Table.add_row t
        [
          Printf.sprintf "%.1f" gamma;
          Printf.sprintf "%.0f" r.peak_cells;
          (match r.exit_cells with Some c -> string_of_int c | None -> "-");
          Printf.sprintf "%.0f" r.settled_cells;
          string_of_int r.optimal_source_cells;
          (match r.time_to_last_byte with
          | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
          | None -> "-");
        ])
    [ 0.5; 1.; 2.; 4.; 8.; 16.; 32. ];
  print_string (Analysis.Table.render t);
  print_endline
    "A small gamma exits on the first whiff of queueing (safe, may undershoot);\n\
     a large one tolerates deep queues before compensating.  The paper's 4 is\n\
     the knee for cell-sized quanta."

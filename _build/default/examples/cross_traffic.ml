(* Sharing a relay with unresponsive background traffic.

   The paper wants Tor traffic to "behave much like background
   traffic".  Here a CBR flow eats a configurable slice of the
   bottleneck relay's uplink, and a CircuitStart circuit has to live
   with the rest: a delay-based transport should settle onto the
   residual capacity rather than fight.

   Run with:  dune exec examples/cross_traffic.exe *)

let () =
  let t =
    Analysis.Table.create
      ~columns:[ "CBR load"; "fair target [cells]"; "settled [cells]"; "ttlb" ]
  in
  List.iter
    (fun load ->
      let r =
        Workload.Contention_experiment.run
          { Workload.Contention_experiment.default_config with
            Workload.Contention_experiment.cbr_load = load;
            transfer_bytes = Engine.Units.mib 2;
          }
      in
      Analysis.Table.add_row t
        [
          Printf.sprintf "%.0f%%" (load *. 100.);
          Printf.sprintf "%.0f" r.expected_cells;
          Printf.sprintf "%.0f" r.settled_cells;
          (match r.time_to_last_byte with
          | Some x -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f x)
          | None -> "incomplete");
        ])
    [ 0.; 0.2; 0.4; 0.6 ];
  print_string (Analysis.Table.render t);
  print_endline "settled ~ fair target: the circuit takes the leftover, not the link."

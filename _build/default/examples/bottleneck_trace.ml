(* Where is the bottleneck?  The paper's headline experiment: the same
   circuit, with the slow relay placed at different distances from the
   source, traced hop by hop.  CircuitStart's compensation lands near
   the optimum regardless of where the bottleneck hides.

   Run with:  dune exec examples/bottleneck_trace.exe *)

let kb = Analysis.Series.kb_of_cells ~cell_size:Backtap.Wire.cell_size

let run distance =
  Printf.printf "\n--- bottleneck %d hop%s from the source ---\n" distance
    (if distance = 1 then "" else "s");
  let r =
    Workload.Trace_experiment.run
      { Workload.Trace_experiment.default_config with
        Workload.Trace_experiment.bottleneck_distance = distance;
      }
  in
  (* Render the source's window as a step function over the first
     600 ms after the transfer started. *)
  let series =
    Array.init 121 (fun i ->
        let x = float_of_int i *. 5. in
        let v =
          Array.fold_left
            (fun acc (t, v) -> if Engine.Time.to_ms_f t <= x then v else acc)
            2. r.source_cwnd
        in
        (x, kb v))
  in
  let dashed =
    Analysis.Series.constant ~x_max:600. ~step:25. (kb (float_of_int r.optimal_source_cells))
  in
  print_string
    (Analysis.Ascii_plot.render ~height:14 ~x_label:"time [ms]" ~y_label:"source cwnd [KB]"
       [
         { Analysis.Ascii_plot.label = "source cwnd"; glyph = '*'; points = series };
         { Analysis.Ascii_plot.label = "optimal"; glyph = '-'; points = dashed };
       ]);
  Printf.printf "peak %.0f cells; settled %.0f; optimal %d; ttlb %s\n" r.peak_cells
    r.settled_cells r.optimal_source_cells
    (match r.time_to_last_byte with
    | Some t -> Printf.sprintf "%.3fs" (Engine.Time.to_sec_f t)
    | None -> "incomplete")

let () = List.iter run [ 1; 2; 3 ]

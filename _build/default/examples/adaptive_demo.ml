(* The paper's future work (section 3): reacting to changing network
   conditions after the initial ramp-up.  The bottleneck quadruples its
   rate mid-transfer; the base algorithm follows at one cell per RTT,
   the adaptive extension re-enters ramp-up and doubles.

   Run with:  dune exec examples/adaptive_demo.exe *)

let run adaptive =
  let r =
    Workload.Adaptive_experiment.run
      { Workload.Adaptive_experiment.default_config with adaptive }
  in
  Printf.printf "%-18s optimal %3d -> %3d cells | window at step %3.0f | %-12s | final %3.0f\n"
    (if adaptive then "adaptive:" else "base algorithm:")
    r.optimal_before_cells r.optimal_after_cells r.cwnd_at_step
    (match r.reaction_time with
    | Some t -> Printf.sprintf "reacts in %.0fms" (Engine.Time.to_ms_f t)
    | None -> "never reacts")
    r.final_cwnd;
  r

let () =
  Printf.printf "bottleneck steps 3 -> 12 Mbit/s two seconds into the transfer\n\n";
  let a = run true in
  let b = run false in
  match (a.reaction_time, b.reaction_time) with
  | Some fast, Some slow ->
      Printf.printf "\nthe adaptive extension reaches the new optimum %.1fx faster\n"
        (Engine.Time.to_sec_f slow /. Engine.Time.to_sec_f fast)
  | _ -> ()

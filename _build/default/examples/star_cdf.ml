(* The paper's aggregate experiment: 50 concurrent circuits over a
   randomly generated relay population in a star topology, paired runs
   with and without CircuitStart, compared as TTLB CDFs.

   Run with:  dune exec examples/star_cdf.exe *)

let run transport =
  Workload.Star_experiment.run
    { Workload.Star_experiment.default_config with Workload.Star_experiment.transport }

let () =
  let cs = run (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start) in
  let ss = run (Workload.Star_experiment.Backtap Circuitstart.Controller.Slow_start) in
  let cdf_cs = Analysis.Cdf.of_samples cs.ttlb_seconds in
  let cdf_ss = Analysis.Cdf.of_samples ss.ttlb_seconds in
  print_string
    (Analysis.Ascii_plot.render ~x_label:"time to last byte [s]"
       ~y_label:"cumulative distribution"
       [
         { Analysis.Ascii_plot.label = "with CircuitStart"; glyph = '*';
           points = Array.of_list (Analysis.Cdf.points cdf_cs) };
         { Analysis.Ascii_plot.label = "without (slow start)"; glyph = 'o';
           points = Array.of_list (Analysis.Cdf.points cdf_ss) };
       ]);
  Printf.printf "with:    %d/%d done, median %.2fs\n" cs.completed cs.total
    (Analysis.Cdf.quantile cdf_cs 0.5);
  Printf.printf "without: %d/%d done, median %.2fs\n" ss.completed ss.total
    (Analysis.Cdf.quantile cdf_ss 0.5);
  Printf.printf "CircuitStart reaches equal completion up to %.2fs earlier\n"
    (Analysis.Cdf.horizontal_gap ~better:cdf_cs ~worse:cdf_ss);
  (* The slowest tenth of circuits is where the startup scheme matters:
     print their bottlenecks. *)
  let slowest =
    List.filter
      (fun (o : Workload.Star_experiment.circuit_outcome) ->
        match o.ttlb with
        | Some t -> Engine.Time.to_sec_f t >= Analysis.Cdf.quantile cdf_cs 0.9
        | None -> true)
      cs.outcomes
  in
  Printf.printf "slowest circuits and their bottlenecks:\n";
  List.iter
    (fun (o : Workload.Star_experiment.circuit_outcome) ->
      Printf.printf "  circuit %2d: bottleneck %s, optimal window %d cells\n"
        o.circuit_index
        (Format.asprintf "%a" Engine.Units.Rate.pp o.bottleneck_rate)
        o.optimal_source_cells)
    slowest

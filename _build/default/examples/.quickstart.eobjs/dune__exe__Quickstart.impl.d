examples/quickstart.ml: Backtap Circuitstart Engine Format List Optmodel Printf Tor_model Workload

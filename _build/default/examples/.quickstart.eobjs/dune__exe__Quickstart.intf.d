examples/quickstart.mli:

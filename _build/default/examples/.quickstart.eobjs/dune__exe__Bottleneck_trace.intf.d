examples/bottleneck_trace.mli:

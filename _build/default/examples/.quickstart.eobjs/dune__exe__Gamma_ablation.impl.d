examples/gamma_ablation.ml: Analysis Circuitstart Engine List Printf Workload

examples/cross_traffic.ml: Analysis Engine List Printf Workload

examples/cross_traffic.mli:

examples/gamma_ablation.mli:

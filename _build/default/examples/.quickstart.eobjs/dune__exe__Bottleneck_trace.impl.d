examples/bottleneck_trace.ml: Analysis Array Backtap Engine List Printf Workload

examples/adaptive_demo.ml: Engine Printf Workload

examples/star_cdf.mli:

examples/multi_stream.ml: Backtap Circuitstart Engine Format List Option Printf Tor_model Workload

examples/star_cdf.ml: Analysis Array Circuitstart Engine Format List Printf Workload

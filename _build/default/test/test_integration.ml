(* End-to-end integration tests: whole simulations asserting the
   qualitative claims of the paper (§2 and Figure 1). *)

let time = Alcotest.testable Engine.Time.pp Engine.Time.equal

let run_trace ?(strategy = Circuitstart.Controller.Circuit_start) ?(distance = 1) () =
  Workload.Trace_experiment.run
    { Workload.Trace_experiment.default_config with
      strategy;
      bottleneck_distance = distance;
    }

(* A single CircuitStart transfer over a 3-relay circuit completes and
   delivers every byte exactly once. *)
let test_transfer_completes () =
  let r = run_trace () in
  Alcotest.(check bool) "completed" true (r.time_to_last_byte <> None);
  Alcotest.(check int) "no retransmissions" 0 r.retransmissions

(* The establishment phase takes several RTTs before data flows. *)
let test_establishment_cost () =
  let r = run_trace () in
  Alcotest.(check bool)
    "establishment takes at least one RTT"
    true
    Engine.Time.(r.circuit_established_in > Engine.Time.ms 40);
  Alcotest.(check bool)
    "but less than a second" true
    Engine.Time.(r.circuit_established_in < Engine.Time.s 1)

(* CircuitStart settles near the analytic optimum (within a factor). *)
let settles_near_optimum distance =
  let r = run_trace ~distance () in
  let settled = r.settled_cells in
  let optimal = float_of_int r.optimal_source_cells in
  Alcotest.(check bool)
    (Printf.sprintf "settled %.0f within [0.4, 2.0]x of optimal %.0f (distance %d)"
       settled optimal distance)
    true
    (settled >= 0.4 *. optimal && settled <= 2.0 *. optimal)

let test_settles_near_optimum_d1 () = settles_near_optimum 1
let test_settles_near_optimum_d3 () = settles_near_optimum 3

(* Overshoot grows with bottleneck distance but compensation still
   brings the window back (peak > settled for the distant case). *)
let test_overshoot_compensated () =
  let r1 = run_trace ~distance:1 () in
  let r3 = run_trace ~distance:3 () in
  Alcotest.(check bool)
    "distant bottleneck overshoots at least as much" true
    (r3.peak_cells >= r1.peak_cells);
  Alcotest.(check bool)
    "overshoot is compensated (peak > settled)" true
    (r3.peak_cells > r3.settled_cells)

(* CircuitStart's compensated exit window estimates the optimum more
   accurately than the traditional baseline's halving, and its transfer
   is no slower, when the bottleneck is distant. *)
let test_circuitstart_beats_slow_start () =
  let cs = run_trace ~strategy:Circuitstart.Controller.Circuit_start ~distance:3 () in
  let ss = run_trace ~strategy:Circuitstart.Controller.Slow_start ~distance:3 () in
  let opt = float_of_int cs.optimal_source_cells in
  let err r =
    match r.Workload.Trace_experiment.exit_cells with
    | Some e -> Float.abs (float_of_int e -. opt)
    | None -> Float.infinity
  in
  Alcotest.(check bool)
    (Printf.sprintf "exit error: circuitstart %.0f <= slowstart %.0f + 2" (err cs)
       (err ss))
    true
    (err cs <= err ss +. 2.);
  match (cs.time_to_last_byte, ss.time_to_last_byte) with
  | Some a, Some b ->
      Alcotest.(check bool)
        (Printf.sprintf "ttlb: circuitstart %.3fs <= slowstart %.3fs + 5%%"
           (Engine.Time.to_sec_f a) (Engine.Time.to_sec_f b))
        true
        (Engine.Time.to_sec_f a <= Engine.Time.to_sec_f b *. 1.05)
  | _ -> Alcotest.fail "a transfer did not complete"

(* Backpropagation: with the bottleneck at the far end, the source's
   settled window approaches the propagated minimum without any
   explicit signalling (paper section 2, "Backpropagation"). *)
let test_backpropagation () =
  let r = run_trace ~distance:3 () in
  let target = float_of_int r.propagated_cells in
  Alcotest.(check bool)
    (Printf.sprintf "source settled %.0f within 30%% of propagated min %.0f"
       r.settled_cells target)
    true
    (Float.abs (r.settled_cells -. target) <= 0.3 *. target);
  List.iteri
    (fun i series ->
      match Array.length series with
      | 0 -> Alcotest.fail (Printf.sprintf "hop %d has no trace" i)
      | n ->
          let final = snd series.(n - 1) in
          Alcotest.(check bool)
            (Printf.sprintf "hop %d final window %.0f bounded" i final)
            true
            (final <= 4. *. target))
    r.hop_cwnds

(* Bounded queues drop cells; the hop reliability recovers every byte
   and the qualitative behaviour survives. *)
let test_loss_recovery_integration () =
  let r =
    Workload.Trace_experiment.run
      { Workload.Trace_experiment.default_config with
        Workload.Trace_experiment.bottleneck_distance = 2;
        link_queue = Netsim.Nqueue.packets 8;
      }
  in
  Alcotest.(check bool) "completes under loss" true (r.time_to_last_byte <> None);
  Alcotest.(check bool) "settles within 2x optimal" true
    (r.settled_cells <= 2. *. float_of_int r.optimal_source_cells)

(* The star experiment: all transfers complete, and CircuitStart's TTLB
   CDF is no worse than plain slow start's. *)
let star_config transport =
  { Workload.Star_experiment.default_config with
    Workload.Star_experiment.transport;
    circuit_count = 10;
    relay_count = 12;
    horizon = Engine.Time.s 120;
  }

let test_star_completes () =
  let r =
    Workload.Star_experiment.run
      (star_config (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start))
  in
  Alcotest.(check int) "all complete" r.total r.completed

let test_star_paired_improvement () =
  let with_cs =
    Workload.Star_experiment.run
      (star_config (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start))
  in
  let without =
    Workload.Star_experiment.run
      (star_config (Workload.Star_experiment.Backtap Circuitstart.Controller.Slow_start))
  in
  Alcotest.(check int) "paired totals" with_cs.total without.total;
  let mean arr = Array.fold_left ( +. ) 0. arr /. float_of_int (Array.length arr) in
  let m_cs = mean with_cs.ttlb_seconds and m_ss = mean without.ttlb_seconds in
  Alcotest.(check bool)
    (Printf.sprintf "mean TTLB with CS %.3f <= without %.3f (+10%% slack)" m_cs m_ss)
    true
    (m_cs <= m_ss *. 1.1)

(* Fairness and latency metrics are populated and sane on a star run. *)
let test_star_fairness_latency () =
  let r =
    Workload.Star_experiment.run
      (star_config (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start))
  in
  let jain =
    Analysis.Fairness.jain_index
      (Analysis.Fairness.throughputs_bytes_per_sec
         ~bytes_each:(Engine.Units.kib 500) r.ttlb_seconds)
  in
  Alcotest.(check bool) (Printf.sprintf "jain %.3f in (0.5, 1]" jain) true
    (jain > 0.5 && jain <= 1.);
  Alcotest.(check bool) "latency samples collected" true
    (Engine.Stats.Online.count r.cell_latency > 0);
  Alcotest.(check bool) "mean latency below a second" true
    (Engine.Stats.Online.mean r.cell_latency < 1.)

(* Property: on random single-bottleneck circuits (random depth, rates,
   delays, transfer sizes), a CircuitStart transfer completes, delivers
   every byte exactly once, and respects the window invariant at every
   hop. *)
let prop_random_circuit_sound =
  QCheck2.Test.make ~count:25 ~name:"random circuits: complete, exact, window-sound"
    QCheck2.Gen.(
      tup5 (int_range 1 4) (int_range 1 4) (int_range 1 20) (int_range 2 15)
        (int_range 64 512))
    (fun (relay_count, raw_distance, bneck_mbit, delay_ms, kib) ->
      let distance = 1 + (raw_distance mod relay_count) in
      let config =
        { Workload.Trace_experiment.default_config with
          Workload.Trace_experiment.relay_count;
          bottleneck_distance = distance;
          bottleneck_rate = Engine.Units.Rate.mbit bneck_mbit;
          access_delay = Engine.Time.ms delay_ms;
          transfer_bytes = Engine.Units.kib kib;
          horizon = Engine.Time.s 60;
        }
      in
      let r = Workload.Trace_experiment.run config in
      r.time_to_last_byte <> None
      && r.settled_cells >= 2.
      && r.peak_cells >= r.settled_cells
      && List.for_all (fun series -> Array.length series > 0) r.hop_cwnds)

let () =
  Alcotest.run "integration"
    [
      ( "trace",
        [
          Alcotest.test_case "transfer completes" `Slow test_transfer_completes;
          Alcotest.test_case "establishment cost" `Slow test_establishment_cost;
          Alcotest.test_case "settles near optimum (d=1)" `Slow
            test_settles_near_optimum_d1;
          Alcotest.test_case "settles near optimum (d=3)" `Slow
            test_settles_near_optimum_d3;
          Alcotest.test_case "overshoot compensated" `Slow test_overshoot_compensated;
          Alcotest.test_case "circuitstart beats slow start" `Slow
            test_circuitstart_beats_slow_start;
        ] );
      ( "star",
        [
          Alcotest.test_case "all transfers complete" `Slow test_star_completes;
          Alcotest.test_case "paired improvement" `Slow test_star_paired_improvement;
          Alcotest.test_case "fairness and latency accounting" `Slow
            test_star_fairness_latency;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "backpropagation" `Slow test_backpropagation;
          Alcotest.test_case "loss recovery" `Slow test_loss_recovery_integration;
          QCheck_alcotest.to_alcotest prop_random_circuit_sound;
        ] );
    ]

(* Referenced to keep the testable alive for future cases. *)
let _ = time

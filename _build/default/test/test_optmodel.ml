(* Tests for the analytic optimal-window model. *)

let time = Alcotest.testable Engine.Time.pp Engine.Time.equal

let spec mbit delay_ms =
  { Optmodel.Path_model.rate = Engine.Units.Rate.mbit mbit;
    access_delay = Engine.Time.ms delay_ms }

let homogeneous = [ spec 100 10; spec 3 10; spec 50 10; spec 50 10; spec 100 10 ]

let test_path_model_basics () =
  let p = Optmodel.Path_model.of_specs homogeneous in
  Alcotest.(check int) "nodes" 5 (Optmodel.Path_model.node_count p);
  Alcotest.(check int) "hops" 4 (Optmodel.Path_model.hop_count p);
  Alcotest.(check int) "rates" 5 (List.length (Optmodel.Path_model.rates p));
  Alcotest.check_raises "too short" (Invalid_argument "Path_model.of_specs: need at least two nodes")
    (fun () -> ignore (Optmodel.Path_model.of_specs [ spec 1 1 ]));
  Alcotest.check_raises "spec out of range" (Invalid_argument "Path_model.spec: out of range")
    (fun () -> ignore (Optmodel.Path_model.spec p 5))

let test_bottleneck () =
  let p = Optmodel.Path_model.of_specs homogeneous in
  Alcotest.(check int) "bottleneck rate" 3_000_000
    (Engine.Units.Rate.to_bps (Optmodel.Optimal_window.bottleneck_rate p));
  Alcotest.(check int) "bottleneck position" 1
    (Optmodel.Optimal_window.bottleneck_position p)

let test_hop_rtt_formula () =
  (* Two nodes, 8 Mbit/s each, 10 ms delays; 520 B cell and 43 B
     feedback serialize in 520 us and 43 us on each link.  R_0 =
     2*(10+10) ms + 2*520us + 2*43us = 41.126 ms. *)
  let p = Optmodel.Path_model.of_specs [ spec 8 10; spec 8 10 ] in
  Alcotest.check time "hand-computed"
    (Engine.Time.us 41_126)
    (Optmodel.Optimal_window.hop_feedback_rtt p 0);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Optimal_window.hop_feedback_rtt: hop out of range") (fun () ->
      ignore (Optmodel.Optimal_window.hop_feedback_rtt p 1))

let test_window_cells () =
  (* Bottleneck 8 Mbit/s = 1e6 B/s; R_0 = 41.126 ms -> BDP = 41126 B =
     79.08 cells -> ceil 80. *)
  let p = Optmodel.Path_model.of_specs [ spec 8 10; spec 8 10 ] in
  Alcotest.(check int) "cells" 80 (Optmodel.Optimal_window.hop_window_cells p 0);
  Alcotest.(check int) "source = hop 0" 80 (Optmodel.Optimal_window.source_window_cells p);
  Alcotest.(check int) "bytes" (80 * 520) (Optmodel.Optimal_window.source_window_bytes p)

let test_custom_sizes () =
  let p = Optmodel.Path_model.of_specs [ spec 8 10; spec 8 10 ] in
  let small = Optmodel.Optimal_window.hop_window_cells ~cell_size:100 ~feedback_size:10 p 0 in
  let big = Optmodel.Optimal_window.hop_window_cells ~cell_size:1000 ~feedback_size:10 p 0 in
  Alcotest.(check bool) "smaller cells, more of them" true (small > big)

let test_propagated_estimate () =
  (* Homogeneous delays: the propagated minimum equals W*_0 up to hop
     asymmetry in rates. *)
  let p = Optmodel.Path_model.of_specs homogeneous in
  let w0 = Optmodel.Optimal_window.source_window_cells p in
  let prop = Optmodel.Optimal_window.propagated_estimate_cells p in
  Alcotest.(check bool) "propagated <= source" true (prop <= w0);
  Alcotest.(check bool) "same ballpark" true (prop >= (w0 * 3) / 4);
  (* Heterogeneous delays: backprop can underestimate (the paper's
     caveat): make a middle hop's loop much shorter. *)
  let hetero = [ spec 100 30; spec 10 30; spec 50 1; spec 50 1; spec 100 30 ] in
  let p2 = Optmodel.Path_model.of_specs hetero in
  Alcotest.(check bool) "underestimates with uneven delays" true
    (Optmodel.Optimal_window.propagated_estimate_cells p2
    < Optmodel.Optimal_window.source_window_cells p2)

let prop_window_monotone_in_rate =
  QCheck2.Test.make ~name:"optimal window grows with bottleneck rate"
    QCheck2.Gen.(pair (int_range 1 40) (int_range 41 100))
    (fun (slow, fast) ->
      let p r = Optmodel.Path_model.of_specs [ spec 100 10; spec r 10; spec 100 10 ] in
      Optmodel.Optimal_window.source_window_cells (p slow)
      <= Optmodel.Optimal_window.source_window_cells (p fast))

let prop_window_monotone_in_delay =
  QCheck2.Test.make ~name:"optimal window grows with access delay"
    QCheck2.Gen.(pair (int_range 1 50) (int_range 51 150))
    (fun (short, long) ->
      let p d = Optmodel.Path_model.of_specs [ spec 10 d; spec 10 d ] in
      Optmodel.Optimal_window.source_window_cells (p short)
      <= Optmodel.Optimal_window.source_window_cells (p long))

let prop_window_at_least_one =
  QCheck2.Test.make ~name:"optimal window is at least one cell"
    QCheck2.Gen.(pair (int_range 1 100) (int_range 0 50))
    (fun (mbit, d) ->
      let p = Optmodel.Path_model.of_specs [ spec mbit d; spec mbit d ] in
      Optmodel.Optimal_window.source_window_cells p >= 1)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_window_monotone_in_rate; prop_window_monotone_in_delay;
      prop_window_at_least_one ]

let () =
  Alcotest.run "optmodel"
    [
      ( "model",
        [
          Alcotest.test_case "path model basics" `Quick test_path_model_basics;
          Alcotest.test_case "bottleneck" `Quick test_bottleneck;
          Alcotest.test_case "hop rtt formula" `Quick test_hop_rtt_formula;
          Alcotest.test_case "window cells" `Quick test_window_cells;
          Alcotest.test_case "custom sizes" `Quick test_custom_sizes;
          Alcotest.test_case "propagated estimate" `Quick test_propagated_estimate;
        ] );
      ("properties", qtests);
    ]

(* Tests for the workload library: relay generation, network assembly,
   experiment configs and determinism. *)

(* ------------------------------------------------------------------ *)
(* Relay generation *)

let test_relay_gen_bounds () =
  let rng = Engine.Rng.create 1 in
  let specs = Workload.Relay_gen.generate rng Workload.Relay_gen.default_config ~n:200 in
  Alcotest.(check int) "count" 200 (List.length specs);
  List.iter
    (fun (s : Workload.Relay_gen.spec) ->
      let mbit = float_of_int (Engine.Units.Rate.to_bps s.bandwidth) /. 1e6 in
      Alcotest.(check bool) "bandwidth clamped" true (mbit >= 1. && mbit <= 100.);
      Alcotest.(check bool) "latency in range" true
        (Engine.Time.( >= ) s.latency (Engine.Time.ms 5)
        && Engine.Time.( <= ) s.latency (Engine.Time.ms 15)))
    specs

let test_relay_gen_exits () =
  let rng = Engine.Rng.create 2 in
  let specs = Workload.Relay_gen.generate rng Workload.Relay_gen.default_config ~n:90 in
  let exits =
    List.length
      (List.filter
         (fun (s : Workload.Relay_gen.spec) ->
           List.exists (Tor_model.Relay_info.flag_equal Tor_model.Relay_info.Exit) s.flags)
         specs)
  in
  (* exit_fraction 0.34 -> one in three. *)
  Alcotest.(check int) "exit count" 30 exits

let test_relay_gen_determinism () =
  let gen () =
    Workload.Relay_gen.generate (Engine.Rng.create 3) Workload.Relay_gen.default_config
      ~n:10
  in
  let a = gen () and b = gen () in
  List.iter2
    (fun (x : Workload.Relay_gen.spec) (y : Workload.Relay_gen.spec) ->
      Alcotest.(check int) "same bandwidth"
        (Engine.Units.Rate.to_bps x.bandwidth)
        (Engine.Units.Rate.to_bps y.bandwidth))
    a b

let test_relay_gen_validation () =
  let bad c = match Workload.Relay_gen.validate_config c with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "zero median" true
    (bad { Workload.Relay_gen.default_config with bandwidth_median_mbit = 0. });
  Alcotest.(check bool) "inverted clamp" true
    (bad
       { Workload.Relay_gen.default_config with
         bandwidth_min_mbit = 50.; bandwidth_max_mbit = 10. });
  Alcotest.(check bool) "bad exit fraction" true
    (bad { Workload.Relay_gen.default_config with exit_fraction = 0. });
  Alcotest.check_raises "n = 0" (Invalid_argument "Relay_gen.generate: n must be positive")
    (fun () ->
      ignore
        (Workload.Relay_gen.generate (Engine.Rng.create 0) Workload.Relay_gen.default_config
           ~n:0))

(* ------------------------------------------------------------------ *)
(* Tor_net assembly *)

let test_tor_net_assembly () =
  let sim = Engine.Sim.create () in
  let b = Workload.Tor_net.builder sim () in
  let rng = Engine.Rng.create 4 in
  List.iter (Workload.Tor_net.add_relay b)
    (Workload.Relay_gen.generate rng Workload.Relay_gen.default_config ~n:5);
  let client =
    Workload.Tor_net.add_endpoint b ~name:"c" ~rate:(Engine.Units.Rate.mbit 100)
      ~delay:(Engine.Time.ms 10)
  in
  let net = Workload.Tor_net.finalize b in
  Alcotest.(check int) "directory size" 5
    (Tor_model.Directory.count (Workload.Tor_net.directory net));
  (* Every leaf has a switchboard, a backtap node and a control
     automaton; the hub has none. *)
  ignore (Workload.Tor_net.switchboard net client);
  ignore (Workload.Tor_net.backtap_node net client);
  ignore (Workload.Tor_net.relay_ctl net client);
  Alcotest.check_raises "hub has no switchboard" Not_found (fun () ->
      ignore (Workload.Tor_net.switchboard net (Workload.Tor_net.hub net)));
  let spec = Workload.Tor_net.access_spec net client in
  Alcotest.(check int) "endpoint rate recorded" 100_000_000
    (Engine.Units.Rate.to_bps spec.Optmodel.Path_model.rate)

let test_tor_net_builder_single_use () =
  let sim = Engine.Sim.create () in
  let b = Workload.Tor_net.builder sim () in
  ignore
    (Workload.Tor_net.add_endpoint b ~name:"c" ~rate:(Engine.Units.Rate.mbit 1)
       ~delay:(Engine.Time.ms 1));
  ignore (Workload.Tor_net.finalize b);
  Alcotest.check_raises "refinalize"
    (Invalid_argument "Tor_net.finalize: builder already finalized") (fun () ->
      ignore (Workload.Tor_net.finalize b));
  Alcotest.check_raises "add after finalize"
    (Invalid_argument "Tor_net: builder already finalized") (fun () ->
      ignore
        (Workload.Tor_net.add_endpoint b ~name:"d" ~rate:(Engine.Units.Rate.mbit 1)
           ~delay:(Engine.Time.ms 1)))

let test_tor_net_path_model () =
  let sim = Engine.Sim.create () in
  let b = Workload.Tor_net.builder sim () in
  let rng = Engine.Rng.create 5 in
  List.iter (Workload.Tor_net.add_relay b)
    (Workload.Relay_gen.generate rng Workload.Relay_gen.default_config ~n:3);
  let client =
    Workload.Tor_net.add_endpoint b ~name:"c" ~rate:(Engine.Units.Rate.mbit 100)
      ~delay:(Engine.Time.ms 10)
  in
  let server =
    Workload.Tor_net.add_endpoint b ~name:"s" ~rate:(Engine.Units.Rate.mbit 100)
      ~delay:(Engine.Time.ms 10)
  in
  let net = Workload.Tor_net.finalize b in
  let relays = Tor_model.Directory.relays (Workload.Tor_net.directory net) in
  let circuit =
    Tor_model.Circuit.make
      ~id:(Tor_model.Circuit_id.next (Workload.Tor_net.circuit_ids net))
      ~client ~relays ~server
  in
  let pm = Workload.Tor_net.path_model net circuit in
  Alcotest.(check int) "5 nodes on the path" 5 (Optmodel.Path_model.node_count pm)

(* ------------------------------------------------------------------ *)
(* Experiment configs *)

let test_trace_config_validation () =
  let bad c =
    match Workload.Trace_experiment.validate_config c with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "distance 0" true
    (bad { Workload.Trace_experiment.default_config with bottleneck_distance = 0 });
  Alcotest.(check bool) "distance beyond relays" true
    (bad { Workload.Trace_experiment.default_config with bottleneck_distance = 4 });
  Alcotest.(check bool) "no bytes" true
    (bad { Workload.Trace_experiment.default_config with transfer_bytes = 0 });
  Alcotest.(check bool) "default ok" true
    (match Workload.Trace_experiment.validate_config Workload.Trace_experiment.default_config with
    | Ok _ -> true
    | Error _ -> false)

let test_star_config_validation () =
  let bad c =
    match Workload.Star_experiment.validate_config c with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "fewer relays than hops" true
    (bad { Workload.Star_experiment.default_config with relay_count = 2 });
  Alcotest.(check bool) "no circuits" true
    (bad { Workload.Star_experiment.default_config with circuit_count = 0 })

let test_adaptive_config_validation () =
  let bad c =
    match Workload.Adaptive_experiment.validate_config c with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "bad fraction" true
    (bad { Workload.Adaptive_experiment.default_config with target_fraction = 0. });
  Alcotest.(check bool) "horizon before step" true
    (bad
       { Workload.Adaptive_experiment.default_config with
         step_after = Engine.Time.s 10; horizon = Engine.Time.s 5 })

(* ------------------------------------------------------------------ *)
(* Determinism: identical seeds give identical experiment outcomes *)

let small_star transport =
  { Workload.Star_experiment.default_config with
    Workload.Star_experiment.transport;
    circuit_count = 4;
    relay_count = 8;
    transfer_bytes = Engine.Units.kib 100;
    horizon = Engine.Time.s 60;
  }

let test_star_determinism () =
  let run () =
    Workload.Star_experiment.run
      (small_star (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start))
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same completions" a.completed b.completed;
  Alcotest.(check (array (float 1e-12))) "identical ttlb samples" a.ttlb_seconds b.ttlb_seconds;
  Alcotest.(check int) "identical event counts" a.wall_events b.wall_events

let test_star_paired_same_network () =
  (* Different transports, same seed: path bottlenecks must coincide. *)
  let cs =
    Workload.Star_experiment.run
      (small_star (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start))
  in
  let ss =
    Workload.Star_experiment.run
      (small_star (Workload.Star_experiment.Backtap Circuitstart.Controller.Slow_start))
  in
  List.iter2
    (fun (a : Workload.Star_experiment.circuit_outcome)
         (b : Workload.Star_experiment.circuit_outcome) ->
      Alcotest.(check int) "same bottleneck"
        (Engine.Units.Rate.to_bps a.bottleneck_rate)
        (Engine.Units.Rate.to_bps b.bottleneck_rate);
      Alcotest.(check int) "same optimal" a.optimal_source_cells b.optimal_source_cells)
    cs.outcomes ss.outcomes

let test_trace_determinism () =
  let run () = Workload.Trace_experiment.run Workload.Trace_experiment.default_config in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-12)) "same peak" a.peak_cells b.peak_cells;
  Alcotest.(check bool) "same ttlb" true (a.time_to_last_byte = b.time_to_last_byte)

let test_star_queue_stats_present () =
  let r =
    Workload.Star_experiment.run
      (small_star (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start))
  in
  Alcotest.(check bool) "max queue observed" true (r.max_link_queue_bytes > 0);
  Alcotest.(check bool) "mean <= max" true
    (r.mean_link_queue_hwm_bytes <= float_of_int r.max_link_queue_bytes)

let test_sendme_transport_runs () =
  let r = Workload.Star_experiment.run (small_star Workload.Star_experiment.Legacy_sendme) in
  Alcotest.(check int) "all complete" r.total r.completed;
  List.iter
    (fun (o : Workload.Star_experiment.circuit_outcome) ->
      Alcotest.(check int) "no retransmissions recorded for sendme" 0 o.retransmissions)
    r.outcomes

let test_star_teardown_lifecycle () =
  let r =
    Workload.Star_experiment.run
      { (small_star (Workload.Star_experiment.Backtap Circuitstart.Controller.Circuit_start)) with
        Workload.Star_experiment.teardown_circuits = true;
      }
  in
  Alcotest.(check int) "all complete with teardown" r.total r.completed

(* ------------------------------------------------------------------ *)
(* Contention with background traffic *)

let test_contention_yields_residual () =
  let run load =
    Workload.Contention_experiment.run
      { Workload.Contention_experiment.default_config with
        Workload.Contention_experiment.cbr_load = load;
        transfer_bytes = Engine.Units.mib 2;
      }
  in
  let r = run 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "settled %.0f near fair target %.0f" r.settled_cells r.expected_cells)
    true
    (Float.abs (r.settled_cells -. r.expected_cells) <= 0.3 *. r.expected_cells +. 3.);
  Alcotest.(check bool) "background traffic flowed" true (r.cbr_packets > 0);
  let unloaded = run 0. in
  Alcotest.(check bool) "unloaded settles higher than loaded" true
    (unloaded.settled_cells > r.settled_cells)

let test_contention_config_validation () =
  Alcotest.(check bool) "load > 0.9 rejected" true
    (match
       Workload.Contention_experiment.validate_config
         { Workload.Contention_experiment.default_config with cbr_load = 0.95 }
     with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "workload"
    [
      ( "relay_gen",
        [
          Alcotest.test_case "bounds" `Quick test_relay_gen_bounds;
          Alcotest.test_case "exit flags" `Quick test_relay_gen_exits;
          Alcotest.test_case "determinism" `Quick test_relay_gen_determinism;
          Alcotest.test_case "validation" `Quick test_relay_gen_validation;
        ] );
      ( "tor_net",
        [
          Alcotest.test_case "assembly" `Quick test_tor_net_assembly;
          Alcotest.test_case "builder single use" `Quick test_tor_net_builder_single_use;
          Alcotest.test_case "path model" `Quick test_tor_net_path_model;
        ] );
      ( "configs",
        [
          Alcotest.test_case "trace" `Quick test_trace_config_validation;
          Alcotest.test_case "star" `Quick test_star_config_validation;
          Alcotest.test_case "adaptive" `Quick test_adaptive_config_validation;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "star determinism" `Slow test_star_determinism;
          Alcotest.test_case "paired runs share the network" `Slow
            test_star_paired_same_network;
          Alcotest.test_case "trace determinism" `Slow test_trace_determinism;
          Alcotest.test_case "queue stats" `Slow test_star_queue_stats_present;
          Alcotest.test_case "sendme transport" `Slow test_sendme_transport_runs;
          Alcotest.test_case "teardown lifecycle" `Slow test_star_teardown_lifecycle;
        ] );
      ( "contention",
        [
          Alcotest.test_case "yields residual capacity" `Slow
            test_contention_yields_residual;
          Alcotest.test_case "config validation" `Quick test_contention_config_validation;
        ] );
    ]

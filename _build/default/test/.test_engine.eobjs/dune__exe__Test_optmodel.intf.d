test/test_optmodel.mli:

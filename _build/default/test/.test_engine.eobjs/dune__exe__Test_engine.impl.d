test/test_engine.ml: Alcotest Array Buffer Engine Float Fun Int Int64 List Option Printf QCheck2 QCheck_alcotest Stdlib String

test/test_backtap.ml: Alcotest Array Backtap Circuitstart Engine Float Format Hashtbl List Netsim Option Printf Tor_model

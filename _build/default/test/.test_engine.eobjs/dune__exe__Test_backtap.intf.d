test/test_backtap.mli:

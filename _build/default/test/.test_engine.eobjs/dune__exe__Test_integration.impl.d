test/test_integration.ml: Alcotest Analysis Array Circuitstart Engine Float List Netsim Printf QCheck2 QCheck_alcotest Workload

test/test_tor.ml: Alcotest Array Engine Format List Netsim Option Printf QCheck2 QCheck_alcotest Stdlib Tor_model

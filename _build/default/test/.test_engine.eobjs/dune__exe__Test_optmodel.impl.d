test/test_optmodel.ml: Alcotest Engine List Optmodel QCheck2 QCheck_alcotest

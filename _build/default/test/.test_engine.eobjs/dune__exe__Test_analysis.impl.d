test/test_analysis.ml: Alcotest Analysis Array Engine Filename Float List QCheck2 QCheck_alcotest String Sys

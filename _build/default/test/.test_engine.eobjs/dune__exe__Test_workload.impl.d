test/test_workload.ml: Alcotest Circuitstart Engine Float List Optmodel Printf Tor_model Workload

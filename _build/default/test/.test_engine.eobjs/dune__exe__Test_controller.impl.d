test/test_controller.ml: Alcotest Circuitstart Engine Float List Option Printf QCheck2 QCheck_alcotest Stdlib

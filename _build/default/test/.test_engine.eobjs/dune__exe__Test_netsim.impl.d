test/test_netsim.ml: Alcotest Engine Format List Netsim Option Printf QCheck2 QCheck_alcotest

#!/bin/sh
# One-command health check: build everything, run the full test suite,
# then smoke the fault-injection path end to end (a lossy paired
# CircuitStart/slow-start run must complete, not hang).
set -eu

cd "$(dirname "$0")"

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== fault smoke: torsim faults --loss 0.01 =="
dune exec bin/torsim.exe -- faults --loss 0.01 --kib 128

echo "== recovery smoke: torsim recover --crash-at 0.2 =="
dune exec bin/torsim.exe -- recover --crash-at 0.2 --kib 128 --seed 7

echo "== overload smoke: torsim overload (flash crowd vs budgets) =="
dune exec bin/torsim.exe -- overload --sessions 8 --kib 32 --seed 7

echo "== network smoke: torsim network (consensus-scale, small) =="
dune exec bin/torsim.exe -- network --relays 100 --circuits 400 --lifetimes 2000 --seed 7

echo "== churn smoke: torsim churn-scale (moving consensus, small) =="
dune exec bin/torsim.exe -- churn-scale --relays 40 --circuits 200 --lifetimes 2000 --seed 7

echo "== predictive smoke: torsim network --strategy predictive =="
# The receding-horizon backend pinned end to end: a small
# consensus-scale run must complete under the planner alone.
dune exec bin/torsim.exe -- network --strategy predictive --relays 100 --circuits 400 --lifetimes 2000 --seed 7

echo "== shard smoke: --shards 2 --jobs 2 byte-identical to --shards 1 =="
# The sharded engine must compute the same result for every positive
# shard count, whatever the domain count underneath.
s1=$(mktemp) && s2=$(mktemp)
dune exec bin/torsim.exe -- network --relays 100 --circuits 400 --lifetimes 2000 --seed 7 --shards 1 > "$s1"
dune exec bin/torsim.exe -- network --relays 100 --circuits 400 --lifetimes 2000 --seed 7 --shards 2 --jobs 2 > "$s2"
diff "$s1" "$s2"
rm -f "$s1" "$s2"

echo "== scheduler smoke: ubench --smoke (wheel vs heap A/B) =="
dune exec bench/ubench.exe -- --smoke --json /dev/null | grep "ubench summary"

echo "== invariant smoke: torsim check --runs 25 --seed 42 (60s budget) =="
# Bounded fuzz: 25 random scenarios under full oracles plus the
# jobs-1-vs-4 differential.  A failure prints a replayable
# "torsim check --replay '<line>'" reproducer.
timeout 60 dune exec bin/torsim.exe -- check --runs 25 --seed 42

echo "OK"

(** The discrete-event scheduler.

    A [Sim.t] owns the simulated clock and the future event list.  All
    model components schedule closures against it; [run] drains the
    queue, advancing the clock to each event's timestamp.  There is no
    global state: several independent simulations can coexist, which the
    test suite uses extensively.

    Closures scheduled at the same instant run in scheduling order
    (see {!Event_queue}). *)

type t

type handle = Event_queue.handle
(** Names a pending event for cancellation. *)

val create : ?capacity:int -> unit -> t
(** A fresh simulation at time {!Time.zero} with an empty event list.
    [capacity] pre-sizes the future event list (see
    {!Event_queue.create}). *)

val now : t -> Time.t
(** The current simulated instant. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at sim time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is before {!now} — scheduling
    into the past is always a model bug. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_after sim delay f] is
    [schedule_at sim (Time.add (now sim) delay) f].  Raises
    [Invalid_argument] on a negative [delay]. *)

val schedule_now : t -> (unit -> unit) -> handle
(** [schedule_now sim f] runs [f] at the current instant, after all
    handlers already scheduled for this instant. *)

val cancel : t -> handle -> unit
(** Cancel a pending event (no-op if it already ran or was cancelled). *)

val every : t -> Time.t -> (unit -> unit) -> stop:(unit -> bool) -> unit
(** [every sim period f ~stop] runs [f] each [period], starting one
    [period] from now, until [stop ()] becomes true (checked before each
    firing).  Raises [Invalid_argument] if [period] is not positive. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** [run sim] executes events in timestamp order until the queue is
    empty, the clock passes [until], [max_events] events have run, or
    {!stop} is called.  Events with timestamp exactly [until] still
    run.  When stopping because of [until], the clock is left at
    [until]. *)

val stop : t -> unit
(** Makes the innermost running {!run} return after the current event
    handler finishes. *)

val events_executed : t -> int
(** Total number of events executed so far (cancelled events are not
    counted). *)

val pending_events : t -> int
(** Number of live events still scheduled. *)

(** The discrete-event scheduler.

    A [Sim.t] owns the simulated clock and the future event list (a
    timer-wheel {!Event_queue}).  All model components schedule closures
    against it; [run] drains the queue, advancing the clock to each
    event's timestamp.  There is no global state: several independent
    simulations can coexist, which the test suite uses extensively.

    Closures scheduled at the same instant run in scheduling order
    (see {!Event_queue}).

    Hot callers that fire the same logical clock over and over (link
    serialization, retransmission watchdogs, periodic ticks) should
    preallocate a {!Timer} once and rearm it in place instead of calling
    {!schedule_after} per occurrence: rearming allocates nothing. *)

type t

type handle = Event_queue.handle
(** Names a pending event for cancellation. *)

val create : ?capacity:int -> ?tick_bits:int -> ?wheel_slots:int -> unit -> t
(** A fresh simulation at time {!Time.zero} with an empty event list.
    [capacity] pre-sizes the future event list and
    [tick_bits]/[wheel_slots] set the timer-wheel geometry (see
    {!Event_queue.create}) — geometry only affects performance, never
    firing order.  Workloads whose steady-state timers are much longer
    than the default ~16.8 ms window (e.g. RTT-scale round clocks)
    should widen it to keep insertion O(1). *)

val now : t -> Time.t
(** The current simulated instant. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at sim time f] runs [f] when the clock reaches [time].
    Raises [Invalid_argument] if [time] is before {!now} — scheduling
    into the past is always a model bug. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_after sim delay f] is
    [schedule_at sim (Time.add (now sim) delay) f].  Raises
    [Invalid_argument] on a negative [delay]. *)

val schedule_now : t -> (unit -> unit) -> handle
(** [schedule_now sim f] runs [f] at the current instant, after all
    handlers already scheduled for this instant. *)

val cancel : t -> handle -> unit
(** Cancel a pending event (no-op if it already ran or was cancelled). *)

(** {1 Reusable timers}

    An intrusive, preallocated event bound to one callback.  Create it
    once, arm it as often as needed: arming an existing timer is
    allocation-free, where {!schedule_after} allocates a queue entry, a
    handle and (typically) a fresh closure per call.  A timer has at
    most one pending occurrence; arming a pending timer reschedules it,
    taking a fresh insertion sequence number exactly as cancelling and
    rescheduling would.  It is safe — and idiomatic — to rearm a timer
    from inside its own callback. *)

module Timer : sig
  type sim := t

  type t
  (** A reusable timer.  Bound to the simulation it was created on. *)

  val create : sim -> (unit -> unit) -> t
  (** [create sim f] is a fresh, unarmed timer running [f] when it
      fires.  Allocate once, at setup time. *)

  val arm_at : sim -> t -> Time.t -> unit
  (** Schedule (or reschedule) the timer for an absolute instant.
      Raises [Invalid_argument] if the instant is before {!now}. *)

  val arm_after : sim -> t -> Time.t -> unit
  (** [arm_after sim tm delay] is [arm_at sim tm (Time.add (now sim)
      delay)].  Raises [Invalid_argument] on a negative delay. *)

  val cancel : sim -> t -> unit
  (** Unschedule the timer.  No-op if it is not pending.  Unlike
      {!val:cancel} on a handle, this is eager: the entry really leaves
      the queue and the timer can be rearmed immediately. *)

  val is_armed : t -> bool
  (** Whether the timer is currently scheduled. *)
end

val every : t -> Time.t -> (unit -> unit) -> stop:(unit -> bool) -> unit
(** [every sim period f ~stop] runs [f] each [period], starting one
    [period] from now, until [stop ()] becomes true (checked before each
    firing; a firing whose [stop] check fails consumes the event but
    runs nothing and disarms the tick).  Implemented on one reusable
    {!Timer}, so steady-state periodic ticks allocate nothing.  Raises
    [Invalid_argument] if [period] is not positive. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** [run sim] executes events in timestamp order until the queue is
    empty, the clock passes [until], [max_events] events have run, or
    {!stop} is called.  Events with timestamp exactly [until] still
    run.  When stopping because of [until], the clock is left at
    [until] (also when the queue empties before the horizon). *)

val stop : t -> unit
(** Makes the innermost running {!run} return after the current event
    handler finishes. *)

val events_executed : t -> int
(** Total number of events executed so far (cancelled events are not
    counted). *)

val pending_events : t -> int
(** Number of live events still scheduled. *)

val set_fire_probe : t -> (Time.t -> unit) option -> unit
(** Install (or remove, with [None]) a passive observer called once
    per executed event, just before its handler runs, with the clock
    already advanced to the event's timestamp.  Intended for invariant
    oracles (e.g. checking that firings are never earlier than their
    deadline and that the clock is monotone).  The probe must be
    passive: it must not schedule, cancel, or otherwise perturb the
    simulation, so that an instrumented run remains schedule-identical
    to a plain one.  Costs one [match] per event when unset. *)

type kind =
  | Fault
  | Recovery
  | Abort
  | Rebuild
  | Resume
  | Exhausted
  | Refused
  | Oom_kill
  | Overload_enter
  | Overload_exit
  | Drain_begin
  | Drain_end
  | Churn

type event = { time : Time.t; kind : kind; subject : string; detail : string }

type t = {
  table : (string, Timeseries.t) Hashtbl.t;
  mutable events : event list;  (* newest first *)
  mutable event_count : int;
}

let create () = { table = Hashtbl.create 32; events = []; event_count = 0 }

let series t key =
  match Hashtbl.find_opt t.table key with
  | Some ts -> ts
  | None ->
      let ts = Timeseries.create ~name:key () in
      Hashtbl.add t.table key ts;
      ts

let find t key = Hashtbl.find_opt t.table key
let record t key time v = Timeseries.record (series t key) time v

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort String.compare

let kind_to_string = function
  | Fault -> "fault"
  | Recovery -> "recovery"
  | Abort -> "abort"
  | Rebuild -> "rebuild"
  | Resume -> "resume"
  | Exhausted -> "exhausted"
  | Refused -> "refused"
  | Oom_kill -> "oom-kill"
  | Overload_enter -> "overload-enter"
  | Overload_exit -> "overload-exit"
  | Drain_begin -> "drain-begin"
  | Drain_end -> "drain-end"
  | Churn -> "churn"

let kind_of_string = function
  | "fault" -> Some Fault
  | "recovery" -> Some Recovery
  | "abort" -> Some Abort
  | "rebuild" -> Some Rebuild
  | "resume" -> Some Resume
  | "exhausted" -> Some Exhausted
  | "refused" -> Some Refused
  | "oom-kill" -> Some Oom_kill
  | "overload-enter" -> Some Overload_enter
  | "overload-exit" -> Some Overload_exit
  | "drain-begin" -> Some Drain_begin
  | "drain-end" -> Some Drain_end
  | "churn" -> Some Churn
  | _ -> None

let record_event t kind ~subject ?(detail = "") time =
  t.events <- { time; kind; subject; detail } :: t.events;
  t.event_count <- t.event_count + 1

let events t = List.rev t.events
let event_count t = t.event_count

let events_with t kind = List.filter (fun e -> e.kind = kind) (events t)

let to_csv t buf =
  Buffer.add_string buf "series,time_s,value\n";
  List.iter
    (fun key ->
      let ts = series t key in
      Array.iter
        (fun (time, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%.9f,%.6f\n" key (Time.to_sec_f time) v))
        (Timeseries.points ts))
    (keys t)

let events_to_csv t buf =
  Buffer.add_string buf "time_s,kind,subject,detail\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%.9f,%s,%s,%s\n" (Time.to_sec_f e.time)
           (kind_to_string e.kind) e.subject e.detail))
    (events t)

(* Split [s] into the first [n - 1] comma-separated fields plus the
   remainder, so a detail field containing commas survives a round
   trip (neither kind nor subject may contain one). *)
let split_fields s n =
  let rec go start k acc =
    if k = 1 then List.rev (String.sub s start (String.length s - start) :: acc)
    else
      match String.index_from_opt s start ',' with
      | None -> List.rev (String.sub s start (String.length s - start) :: acc)
      | Some i -> go (i + 1) (k - 1) (String.sub s start (i - start) :: acc)
  in
  go 0 n []

let events_of_csv s =
  let lines = String.split_on_char '\n' s in
  List.filter_map
    (fun line ->
      if line = "" || line = "time_s,kind,subject,detail" then None
      else
        match split_fields line 4 with
        | [ time_s; kind_s; subject; detail ] -> (
            match (float_of_string_opt time_s, kind_of_string kind_s) with
            | Some sec, Some kind ->
                Some { time = Time.of_sec_f sec; kind; subject; detail }
            | _ -> None)
        | _ -> None)
    lines

let pp_event fmt e =
  Format.fprintf fmt "[%a] %s %s%s" Time.pp e.time (kind_to_string e.kind)
    e.subject
    (if e.detail = "" then "" else ": " ^ e.detail)

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  mutable stopped : bool;
  mutable executed : int;
}

type handle = Event_queue.handle

let create ?capacity () =
  { queue = Event_queue.create ?capacity (); clock = Time.zero; stopped = false;
    executed = 0 }

let now t = t.clock

let schedule_at t time f =
  if Time.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Sim.schedule_at: %a is before now (%a)" Time.pp time Time.pp
         t.clock);
  Event_queue.add t.queue ~time f

let schedule_after t delay f =
  if Time.is_negative delay then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (Time.add t.clock delay) f

let schedule_now t f = schedule_at t t.clock f
let cancel t h = Event_queue.cancel t.queue h

let every t period f ~stop =
  if Time.(period <= Time.zero) then invalid_arg "Sim.every: period must be positive";
  let rec arm () =
    ignore
      (schedule_after t period (fun () ->
           if not (stop ()) then begin
             f ();
             arm ()
           end))
  in
  arm ()

let stop t = t.stopped <- true

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (Option.value max_events ~default:max_int) in
  let rec loop () =
    if t.stopped || !budget <= 0 then ()
    else
      match Event_queue.peek_time t.queue with
      | None -> ()
      | Some time -> (
          match until with
          | Some limit when Time.(time > limit) -> t.clock <- limit
          | _ -> (
              match Event_queue.pop t.queue with
              | None -> ()
              | Some (time, f) ->
                  t.clock <- time;
                  t.executed <- t.executed + 1;
                  decr budget;
                  f ();
                  loop ()))
  in
  loop ();
  (* An empty queue with a horizon still advances the clock to it, so a
     caller sampling [now] after [run ~until] sees the horizon. *)
  match until with
  | Some limit when (not t.stopped) && Time.(t.clock < limit) && Event_queue.is_empty t.queue ->
      t.clock <- limit
  | _ -> ()

let events_executed t = t.executed
let pending_events t = Event_queue.size t.queue

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Time.t;
  mutable stopped : bool;
  mutable executed : int;
  (* Passive observer of every event firing, handed the (already
     updated) clock.  Costs one [match] per event when unset; must not
     schedule or mutate — see [set_fire_probe]. *)
  mutable fire_probe : (Time.t -> unit) option;
}

type handle = Event_queue.handle

(* The [pop_before] sentinel.  A module-level closure, so it is
   physically distinct from every closure a caller can schedule. *)
let no_event : unit -> unit = fun () -> ()

let create ?capacity ?tick_bits ?wheel_slots () =
  { queue = Event_queue.create ?capacity ?tick_bits ?wheel_slots ();
    clock = Time.zero; stopped = false; executed = 0; fire_probe = None }

let now t = t.clock

let schedule_at t time f =
  if Time.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Sim.schedule_at: %a is before now (%a)" Time.pp time Time.pp
         t.clock);
  Event_queue.add t.queue ~time f

let schedule_after t delay f =
  if Time.is_negative delay then invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (Time.add t.clock delay) f

let schedule_now t f = schedule_at t t.clock f
let cancel t h = Event_queue.cancel t.queue h

module Timer = struct
  type nonrec t = (unit -> unit) Event_queue.timer

  let create sim f = Event_queue.timer sim.queue f

  let arm_at sim tm time =
    if Time.(time < sim.clock) then
      invalid_arg
        (Format.asprintf "Sim.Timer.arm_at: %a is before now (%a)" Time.pp time
           Time.pp sim.clock);
    Event_queue.arm sim.queue tm ~time

  let arm_after sim tm delay =
    if Time.is_negative delay then invalid_arg "Sim.Timer.arm_after: negative delay";
    Event_queue.arm sim.queue tm ~time:(Time.add sim.clock delay)

  let cancel sim tm = Event_queue.disarm sim.queue tm
  let is_armed tm = Event_queue.timer_armed tm
end

let every t period f ~stop =
  if Time.(period <= Time.zero) then invalid_arg "Sim.every: period must be positive";
  (* One reusable timer, rearmed in place after each firing: the
     periodic tick allocates nothing per period.  The [ref] breaks the
     timer/callback creation cycle; it is written exactly once. *)
  let tm = ref None in
  let tick () =
    if not (stop ()) then begin
      f ();
      match !tm with
      | Some timer -> Event_queue.arm t.queue timer ~time:(Time.add t.clock period)
      | None -> assert false
    end
  in
  let timer = Event_queue.timer t.queue tick in
  tm := Some timer;
  Event_queue.arm t.queue timer ~time:(Time.add t.clock period)

let stop t = t.stopped <- true

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (Option.value max_events ~default:max_int) in
  let limit = match until with Some l -> l | None -> Time.max_value in
  (* Single traversal per event: [pop_before] both checks the horizon
     and dequeues, with no Option/tuple boxing — the loop allocates
     nothing per event beyond what handlers themselves allocate. *)
  let rec loop () =
    if t.stopped || !budget <= 0 then ()
    else
      let f = Event_queue.pop_before t.queue ~limit ~none:no_event in
      if f == no_event then begin
        (* Nothing due by the horizon: a caller sampling [now] after
           [run ~until] sees the horizon, whether or not later events
           remain queued. *)
        match until with
        | Some l when Time.(t.clock < l) -> t.clock <- l
        | _ -> ()
      end
      else begin
        t.clock <- Event_queue.popped_time t.queue;
        t.executed <- t.executed + 1;
        decr budget;
        (match t.fire_probe with None -> () | Some probe -> probe t.clock);
        f ();
        loop ()
      end
  in
  loop ()

let events_executed t = t.executed
let pending_events t = Event_queue.size t.queue
let set_fire_probe t probe = t.fire_probe <- probe

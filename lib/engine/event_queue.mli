(** The simulator's future event list.

    A hierarchical timer wheel in front of a binary min-heap: events
    within ~16.8ms of the scheduler's cursor sit in fixed wheel slots
    (O(1) insertion, no comparisons), and longer-horizon events spill
    into an overflow heap, migrating into the wheel as the cursor
    approaches their deadline.  Firing order is exactly (time, insertion
    sequence number), bit-identical to the heap-only scheduler this
    replaced: two events scheduled for the same instant fire in the
    order they were scheduled.  That stability matters — a relay that
    enqueues a cell and then arms a timer for the same instant relies on
    the cell handler running first — and it is what makes whole
    simulations deterministic.

    Cancellation of a {!handle} is lazy: a cancelled event stays where
    it is, marked, and is discarded when it surfaces.  This keeps
    [cancel] O(1) at the cost of occupied cells, which is the right
    trade-off for retransmission timers that are almost always
    cancelled.  The discard pass is the {e lazy-deletion sweep}: every
    read-or-pop operation ({!pop}, {!pop_before}, {!peek_time}) first
    settles the queue by discarding cancelled entries at the head until
    a live one surfaces.  The sweep mutates internal structure (and
    advances the internal cursor) but never changes the set of live
    events — so [peek_time], despite its read-only name, may reorganize
    the queue; observably it is pure. *)

type 'a t
(** A queue of events carrying payloads of type ['a]. *)

type handle
(** Names a scheduled event so it can be cancelled. *)

val create : ?capacity:int -> ?tick_bits:int -> ?wheel_slots:int -> unit -> 'a t
(** A fresh, empty queue.  [capacity] pre-sizes the overflow heap
    (default 256) so a simulation's steady-state event population never
    pays for growth doublings; it is a hint, not a bound.

    [tick_bits] (default 16: 65.536 µs ticks) and [wheel_slots]
    (default 256, must be a power of two) set the wheel geometry; the
    window covers [2^tick_bits * wheel_slots] ns.  Events inside the
    window are O(1) slot inserts; events beyond it take the overflow
    heap at O(log n).  Geometry is purely a performance knob — the
    firing order is exact (time, seq) for every setting, because each
    drained tick is sorted before it fires.  Widen the window when the
    steady-state timer population sits far beyond the default ~16.8 ms
    (RTT-scale round clocks at consensus scale), where overflow-heap
    churn would otherwise dominate the run.

    Raises [Invalid_argument] if [capacity < 1], [tick_bits] is outside
    [\[1, 40\]], or [wheel_slots] is not a power of two [>= 2]. *)

val add : 'a t -> time:Time.t -> 'a -> handle
(** [add q ~time x] schedules [x] at [time] and returns its handle.
    [time] may be in the queue's past; ordering is by time alone, the
    queue does not know the current instant.  Raises [Failure] if the
    insertion sequence counter would overflow (after [max_int]
    insertions without an intervening {!clear} — unreachable in
    practice, but guarded rather than silently wrapping, because a
    wrapped sequence would corrupt same-instant ordering). *)

val cancel : 'a t -> handle -> unit
(** [cancel q h] marks the event named by [h] as cancelled.  Cancelling
    twice, or cancelling an already-fired event, is a no-op. *)

val is_cancelled : 'a t -> handle -> bool
(** Whether the event was cancelled (fired events report [false]). *)

val pop : 'a t -> (Time.t * 'a) option
(** [pop q] removes and returns the earliest live event, skipping
    cancelled entries.  [None] iff no live events remain.  Allocates an
    option and a tuple per call; the simulator's hot loop uses
    {!pop_before} instead. *)

val pop_before : 'a t -> limit:Time.t -> none:'a -> 'a
(** [pop_before q ~limit ~none] removes and returns the payload of the
    earliest live event whose time is at or before [limit], or returns
    [none] — physically, the very value passed — when no live event is
    due by [limit] (the queue is untouched in that case, so this also
    subsumes the old peek-then-pop double traversal).  The fired event's
    timestamp is readable via {!popped_time}.  The caller must compare
    the result against [none] with [==] and pass a [none] that cannot be
    a scheduled payload (the simulator uses a private sentinel closure).
    Allocation-free. *)

val popped_time : 'a t -> Time.t
(** The timestamp of the most recent event returned by {!pop_before} or
    {!pop}.  Meaningless before the first pop. *)

val peek_time : 'a t -> Time.t option
(** The instant of the earliest live event, without removing it.  Runs
    the lazy-deletion sweep first (see the module preamble): cancelled
    entries at the head are discarded, so the call may mutate internal
    structure, but the live-event set is unchanged. *)

val size : 'a t -> int
(** Number of live (non-cancelled, non-popped) events. *)

val is_empty : 'a t -> bool
(** [is_empty q] iff {!size} is zero. *)

val clear : 'a t -> unit
(** Drop all events, release every held payload for collection, and
    reset the insertion sequence and wheel cursor — the queue behaves as
    freshly created (pending handles become dead, armed timers become
    unarmed). *)

(** {1 Reusable timers}

    An intrusive, preallocated event that hot callers create once and
    rearm in place: arming an existing timer allocates nothing, unlike
    {!add} which allocates an entry and a handle per call.  A timer is
    bound to one payload at creation and to at most one pending
    occurrence at a time; rearming a pending timer reschedules it
    (equivalent to cancel-then-add, including taking a fresh insertion
    sequence number).  Arm and disarm are eager — the entry really
    leaves the queue — so, unlike lazily-cancelled handles, a disarmed
    timer occupies nothing. *)

type 'a timer

val timer : 'a t -> 'a -> 'a timer
(** [timer q x] is a fresh, unarmed timer that will deliver [x] each
    time it fires.  The timer must only ever be armed on [q]. *)

val arm : 'a t -> 'a timer -> time:Time.t -> unit
(** [arm q tm ~time] schedules the timer at [time], rescheduling it if
    it was already pending.  Same [time] contract as {!add}.  Raises
    [Failure] on insertion-sequence overflow, as {!add} does. *)

val disarm : 'a t -> 'a timer -> unit
(** [disarm q tm] unschedules the timer.  No-op if it is not pending. *)

val timer_armed : 'a timer -> bool
(** Whether the timer is currently scheduled and will fire. *)

(**/**)

module Private : sig
  (** Test-only access; not part of the stable API. *)

  val next_seq : 'a t -> int
  val set_next_seq : 'a t -> int -> unit
end

(** The simulator's future event list.

    A binary min-heap ordered by (time, insertion sequence number): two
    events scheduled for the same instant fire in the order they were
    scheduled.  That stability matters — a relay that enqueues a cell and
    then arms a timer for the same instant relies on the cell handler
    running first — and it is what makes whole simulations
    deterministic.

    Cancellation is lazy: a cancelled event stays in the heap, marked,
    and is discarded when it surfaces.  This keeps [cancel] O(1) at the
    cost of heap slots, which is the right trade-off for retransmission
    timers that are almost always cancelled. *)

type 'a t
(** A queue of events carrying payloads of type ['a]. *)

type handle
(** Names a scheduled event so it can be cancelled. *)

val create : ?capacity:int -> unit -> 'a t
(** A fresh, empty queue.  [capacity] pre-sizes the backing heap
    (default 256) so a simulation's steady-state event population never
    pays for growth doublings; it is a hint, not a bound.  Raises
    [Invalid_argument] if [capacity < 1]. *)

val add : 'a t -> time:Time.t -> 'a -> handle
(** [add q ~time x] schedules [x] at [time] and returns its handle.
    [time] may be in the queue's past; ordering is by time alone, the
    queue does not know the current instant. *)

val cancel : 'a t -> handle -> unit
(** [cancel q h] marks the event named by [h] as cancelled.  Cancelling
    twice, or cancelling an already-fired event, is a no-op. *)

val is_cancelled : 'a t -> handle -> bool
(** Whether the event was cancelled (fired events report [false]). *)

val pop : 'a t -> (Time.t * 'a) option
(** [pop q] removes and returns the earliest live event, skipping
    cancelled entries.  [None] iff no live events remain. *)

val peek_time : 'a t -> Time.t option
(** The instant of the earliest live event, without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled, non-popped) events. *)

val is_empty : 'a t -> bool
(** [is_empty q] iff {!size} is zero. *)

val clear : 'a t -> unit
(** Drop all events, release every held payload for collection, and
    reset the insertion sequence — the queue behaves as freshly
    created (pending handles become dead). *)

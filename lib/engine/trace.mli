(** Named probe registry.

    Model components publish time series under string keys
    (["circuit0/cwnd"], ["relay3/queue"]); experiment drivers collect
    them afterwards without threading series through every constructor.
    A registry belongs to one simulation run.

    Alongside the numeric series, the registry keeps a log of discrete
    {e lifecycle events} — faults injected into the network, recoveries
    from them, and circuit aborts — so that an experiment's disturbance
    schedule and its consequences live in the same artefact as the
    series they explain. *)

type t

val create : unit -> t

val series : t -> string -> Timeseries.t
(** [series t key] returns the series registered under [key], creating
    an empty one on first use. *)

val find : t -> string -> Timeseries.t option
(** [find t key] is the series under [key], if any was created. *)

val record : t -> string -> Time.t -> float -> unit
(** [record t key time v] appends to the series under [key]
    (creating it if needed). *)

val keys : t -> string list
(** All registered keys, sorted. *)

val to_csv : t -> Buffer.t -> unit
(** Append all series as CSV rows [series,time_s,value] (times in
    seconds), grouped by key in sorted order. *)

(** {1 Lifecycle events} *)

type kind =
  | Fault  (** A disturbance began: loss burst, link outage, relay crash. *)
  | Recovery  (** A disturbance ended: link back up, relay restarted. *)
  | Abort  (** A circuit or transfer gave up (terminal failure). *)
  | Rebuild  (** A session is rebuilding its circuit after a failure. *)
  | Resume
      (** A transfer resumed on a rebuilt circuit; the detail carries
          the resume offset and the time-to-recover. *)
  | Exhausted  (** A session used up its rebuild budget (terminal). *)
  | Refused
      (** A relay refused a CREATE/EXTEND under admission control (it
          is over its circuit or byte budget). *)
  | Oom_kill
      (** An overloaded relay destroyed its heaviest circuit to get
          back under its byte budget. *)
  | Overload_enter  (** A relay crossed into its overloaded state. *)
  | Overload_exit  (** A relay dropped back below its budgets. *)
  | Drain_begin  (** A relay started its graceful drain. *)
  | Drain_end
      (** A relay's drain deadline passed: surviving circuits were
          destroyed and the relay departed. *)
  | Churn  (** A directory-population event: join, departure, restart. *)

type event = {
  time : Time.t;
  kind : kind;
  subject : string;  (** What the event concerns, e.g. ["link/hub->relay1"]. *)
  detail : string;  (** Free-form context; may be empty. *)
}

val record_event : t -> kind -> subject:string -> ?detail:string -> Time.t -> unit
(** Append an event to the log ([detail] defaults to empty). *)

val events : t -> event list
(** All recorded events, oldest first. *)

val events_with : t -> kind -> event list
(** The events of one kind, oldest first. *)

val event_count : t -> int

val kind_to_string : kind -> string
(** ["fault"], ["recovery"], ["abort"], ["rebuild"], ["resume"],
    ["exhausted"], ["refused"], ["oom-kill"], ["overload-enter"] or
    ["overload-exit"]. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}; [None] on anything else. *)

val events_to_csv : t -> Buffer.t -> unit
(** Append the event log as CSV rows [time_s,kind,subject,detail]. *)

val events_of_csv : string -> event list
(** Parse rows produced by {!events_to_csv} back into events (the
    header line and blank lines are skipped; unparseable rows are
    dropped).  Commas inside the detail field survive the round trip;
    kind and subject must not contain one.  Timestamps round-trip
    exactly at the nanosecond resolution [events_to_csv] prints. *)

val pp_event : Format.formatter -> event -> unit

let default_jobs () =
  match Option.bind (Sys.getenv_opt "TORSIM_JOBS") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> Domain.recommended_domain_count ()

(* A finished task is either a value or the exception it raised; the
   distinction is resolved only after every domain has joined, so a
   failure cannot leave orphaned domains behind. *)
type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

let run_task f x =
  match f x with
  | v -> Value v
  | exception e -> Raised (e, Printexc.get_raw_backtrace ())

let finish results =
  (* Scan in index order so the re-raised exception is the lowest
     failed task's, independent of which domain hit it first. *)
  Array.iter
    (function
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Value _) | None -> ())
    results;
  Array.map
    (function Some (Value v) -> v | Some (Raised _) | None -> assert false)
    results

let map ?jobs f tasks =
  let n = Array.length tasks in
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg "Pool.map: jobs must be positive"
    | None -> default_jobs ()
  in
  let jobs = Stdlib.min jobs n in
  (* Sequential evaluation already fails on the lowest-indexed raising
     task, matching the parallel contract. *)
  if jobs <= 1 then Array.map f tasks
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    (* Each slot is written by exactly one domain (the one that won the
       index at the cursor) and read only after the joins below — no
       data race under the OCaml memory model. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <- Some (run_task f tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    finish results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

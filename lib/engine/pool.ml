let jobs_env_var = "CIRCUITSTART_JOBS"
let max_jobs = 128

let env_jobs () =
  match Sys.getenv_opt jobs_env_var with
  | None | Some "" -> Ok None
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some n when n >= 1 -> Ok (Some (Stdlib.min n max_jobs))
      | Some n ->
          Error
            (Printf.sprintf "%s must be a positive integer (got %d)"
               jobs_env_var n)
      | None ->
          Error
            (Printf.sprintf "%s must be a positive integer (got %S)"
               jobs_env_var raw))

let default_jobs () =
  (* Precedence: TORSIM_JOBS (tied to --jobs via cmdliner) over
     CIRCUITSTART_JOBS over the detected core count.  [default_jobs]
     must stay total, so a malformed CIRCUITSTART_JOBS falls through to
     the detected count here; the CLIs call [env_jobs] at startup and
     turn the [Error] into a friendly exit instead. *)
  match Option.bind (Sys.getenv_opt "TORSIM_JOBS") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> (
      match env_jobs () with
      | Ok (Some n) -> n
      | Ok None | Error _ -> Domain.recommended_domain_count ())

(* A finished task is either a value or the exception it raised; the
   distinction is resolved only after every domain has joined, so a
   failure cannot leave orphaned domains behind. *)
type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

let run_task f x =
  match f x with
  | v -> Value v
  | exception e -> Raised (e, Printexc.get_raw_backtrace ())

let finish results =
  (* Scan in index order so the re-raised exception is the lowest
     failed task's, independent of which domain hit it first. *)
  Array.iter
    (function
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Value _) | None -> ())
    results;
  Array.map
    (function Some (Value v) -> v | Some (Raised _) | None -> assert false)
    results

let resolve_jobs ~who jobs n =
  let jobs =
    match jobs with
    | Some j when j >= 1 -> j
    | Some _ -> invalid_arg (who ^ ": jobs must be positive")
    | None -> default_jobs ()
  in
  Stdlib.min jobs n

let map_outcomes ~jobs f tasks =
  (* Shared driver for [map] and [map_counted]: every task runs, every
     domain joins, and the per-domain minor-allocation deltas land in
     [words] (slot 0 is the calling domain's own task work). *)
  let n = Array.length tasks in
  let results = Array.make n None in
  let words = Array.make (Stdlib.max 1 jobs) 0. in
  let cursor = Atomic.make 0 in
  (* Each slot is written by exactly one domain (the one that won the
     index at the cursor) and read only after the joins below — no
     data race under the OCaml memory model. *)
  let worker slot () =
    let w0 = Gc.minor_words () in
    let rec loop () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n then begin
        results.(i) <- Some (run_task f tasks.(i));
        loop ()
      end
    in
    loop ();
    words.(slot) <- Gc.minor_words () -. w0
  in
  if jobs <= 1 then worker 0 ()
  else begin
    let domains =
      Array.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join domains
  end;
  (results, Array.fold_left ( +. ) 0. words)

let map ?jobs f tasks =
  let jobs = resolve_jobs ~who:"Pool.map" jobs (Array.length tasks) in
  (* Sequential evaluation already fails on the lowest-indexed raising
     task, matching the parallel contract. *)
  if jobs <= 1 then Array.map f tasks
  else finish (fst (map_outcomes ~jobs f tasks))

let map_counted ?jobs f tasks =
  let jobs = resolve_jobs ~who:"Pool.map_counted" jobs (Array.length tasks) in
  let results, words = map_outcomes ~jobs f tasks in
  (finish results, words)

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

module Team = struct
  (* A reusable squad of [shards - 1] long-lived worker domains plus
     the calling domain.  Each [run] is one rendezvous: the caller
     publishes a job under the mutex, every member executes it for its
     own shard id, and the caller blocks until all workers check back
     in.  Workers park on a condition variable between jobs — no
     spinning — which matters when the host has fewer cores than
     shards (CI runners, laptops on battery): a spinning barrier would
     starve the very domains it is waiting for. *)
  type t = {
    shards : int;
    mutex : Mutex.t;
    work_ready : Condition.t;  (* workers wait here for a new epoch *)
    work_done : Condition.t;  (* the caller waits here for the joins *)
    mutable job : (int -> unit) option;
    mutable epoch : int;
    mutable pending : int;
    mutable stopped : bool;
    fails : (exn * Printexc.raw_backtrace) option array;
    (* Minor words allocated by each worker domain while running jobs;
       slot 0 (the calling domain) stays 0 — the caller observes its
       own allocation directly via [Gc.minor_words]. *)
    words : float array;
    mutable domains : unit Domain.t array;
  }

  let worker t shard () =
    let last = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.mutex;
      while t.epoch = !last && not t.stopped do
        Condition.wait t.work_ready t.mutex
      done;
      if t.stopped then begin
        Mutex.unlock t.mutex;
        running := false
      end
      else begin
        last := t.epoch;
        let job = Option.get t.job in
        Mutex.unlock t.mutex;
        let w0 = Gc.minor_words () in
        (match job shard with
        | () -> ()
        | exception e ->
            t.fails.(shard) <- Some (e, Printexc.get_raw_backtrace ()));
        t.words.(shard) <- t.words.(shard) +. (Gc.minor_words () -. w0);
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.signal t.work_done;
        Mutex.unlock t.mutex
      end
    done

  let create ?shards () =
    let shards =
      match shards with
      | Some k when k >= 1 -> k
      | Some _ -> invalid_arg "Pool.Team.create: shards must be positive"
      | None -> default_jobs ()
    in
    let t =
      {
        shards;
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        job = None;
        epoch = 0;
        pending = 0;
        stopped = false;
        fails = Array.make shards None;
        words = Array.make shards 0.;
        domains = [||];
      }
    in
    t.domains <-
      Array.init (shards - 1) (fun i -> Domain.spawn (worker t (i + 1)));
    t

  let shards t = t.shards

  let run t f =
    if t.stopped then invalid_arg "Pool.Team.run: team is shut down";
    if t.shards > 1 then begin
      Mutex.lock t.mutex;
      t.job <- Some f;
      t.epoch <- t.epoch + 1;
      t.pending <- t.shards - 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex
    end;
    (* The caller is shard 0's runner; its failure still waits for the
       workers so no job is abandoned mid-flight. *)
    (match f 0 with
    | () -> ()
    | exception e -> t.fails.(0) <- Some (e, Printexc.get_raw_backtrace ()));
    if t.shards > 1 then begin
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.work_done t.mutex
      done;
      Mutex.unlock t.mutex
    end;
    (* Lowest shard's exception wins, same protocol as [Pool.map]. *)
    Array.iter
      (function
        | Some (e, bt) ->
            Array.fill t.fails 0 (Array.length t.fails) None;
            Printexc.raise_with_backtrace e bt
        | None -> ())
      t.fails

  let minor_words t = Array.fold_left ( +. ) 0. t.words

  let shutdown t =
    if not t.stopped then begin
      Mutex.lock t.mutex;
      t.stopped <- true;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.domains
    end
end

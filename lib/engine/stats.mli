(** Online and offline statistics.

    {!Online} accumulates count/mean/variance/min/max in O(1) memory
    (Welford's algorithm) — used for per-flow and per-queue counters
    that live for a whole simulation.  {!Histogram} buckets samples at a
    fixed width.  The array helpers compute percentiles and empirical
    CDFs for the evaluation figures. *)

module Online : sig
  type t
  (** A mutable accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit

  val count : t -> int
  val mean : t -> float
  (** Mean of the samples; [nan] if empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** Smallest sample; [nan] if empty. *)

  val max : t -> float
  (** Largest sample; [nan] if empty. *)

  val sum : t -> float
  val merge : t -> t -> t
  (** [merge a b] is a fresh accumulator equivalent to having seen both
      sample streams (Chan's parallel update). *)

  val pp : Format.formatter -> t -> unit
end

module Histogram : sig
  type t

  val create : bin_width:float -> t
  (** Bins are [\[k*w, (k+1)*w)].  Raises [Invalid_argument] if
      [bin_width <= 0.]. *)

  val add : t -> float -> unit
  (** Add a sample.  Negative samples go to negative bins. *)

  val count : t -> int
  val bins : t -> (float * int) list
  (** Non-empty bins as [(lower_edge, count)], sorted by edge. *)

  val mode_bin : t -> (float * int) option
  (** The fullest bin, ties broken towards the lower edge. *)
end

(** {1 Streaming quantile sketch} *)

module Sketch : sig
  (** A fixed-bin mergeable histogram for streaming quantiles.

      Consensus-scale runs complete millions of circuits; retaining one
      float per circuit just to read a few percentiles at the end is
      the memory bottleneck.  A sketch holds [bins] integer counters
      over a fixed value range plus exact min/max/sum — O(bins) memory
      for any stream length — and answers quantiles by cumulative walk
      with linear interpolation inside the target bin, so the error is
      at most one bin width (exact at the observed extremes).

      The state is a function of the sample multiset alone: feeding the
      same samples in any order yields a structurally equal sketch, and
      {!merge} is plain counter addition — associative, commutative,
      and deterministic, which is what keeps [--jobs 1/2/4] runs
      byte-identical when per-shard sketches are combined. *)

  type t

  val create : ?bins:int -> lo:float -> hi:float -> unit -> t
  (** [bins] equal-width bins over [\[lo, hi)] (default 512).  Samples
      outside the range are counted in side bins and answered as the
      exact observed min/max.  Raises [Invalid_argument] unless
      [bins >= 1] and [lo < hi] (finite). *)

  val add : t -> float -> unit
  (** Raises [Invalid_argument] on non-finite samples. *)

  val count : t -> int
  val bins : t -> int
  val range : t -> float * float

  val min : t -> float
  (** Exact smallest sample; [nan] if empty. *)

  val max : t -> float
  (** Exact largest sample; [nan] if empty. *)

  val mean : t -> float
  (** Exact mean; [nan] if empty. *)

  val merge : t -> t -> t
  (** Fresh sketch equivalent to having seen both streams.  Raises
      [Invalid_argument] if the bin layouts differ. *)

  val set_sum : t -> float -> unit
  (** Overwrite the running sum (and hence {!mean}).  Float addition is
      not associative, so a sum reassembled by {!merge} from per-shard
      sketches can differ in the last ulp from the sequential
      accumulation; a sharded run that tallies the exact sum on the
      side (e.g. in integer nanoseconds) installs the
      order-independent value here so digests stay identical across
      shard counts.  Raises [Invalid_argument] on non-finite sums. *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [\[0, 1\]]: estimated smallest x with
      fraction-below [>= q] (the {!Cdf.quantile} convention), clamped
      to the exact observed [\[min, max\]].  Error is bounded by one
      bin width for in-range samples.  Raises [Invalid_argument] on an
      empty sketch or [q] outside the range. *)

  val quantile_opt : t -> float -> float option
  (** Total variant of {!quantile}: [None] on an empty sketch — the
      normal outcome of a run that completed nothing — instead of an
      exception.  Still raises on [q] outside [\[0, 1\]]. *)

  val cdf_points : t -> (float * float) list
  (** Ascending step points [(value, cumulative fraction)], one per
      non-empty bin at its (clamped) upper edge, closing at
      [(max, 1.)].  Empty sketch gives []. *)
end

(** {1 Sample buffers} *)

module Samples : sig
  (** A growable buffer of float samples with a cached sorted view.

      Experiments accumulate thousands of per-circuit samples and then
      query several percentiles of the same data; this keeps the
      samples in a flat, doubling float array (no list cells) and
      sorts at most once per burst of queries — the cache is
      invalidated by the next {!add}.

      At consensus scale, exact retention is the memory bottleneck:
      {!Bounded} mode feeds every sample to a {!Sketch} instead and
      answers percentiles from it in O(bins) memory.  The default
      {!Exact} mode is byte-identical to the historical behaviour. *)

  type mode =
    | Exact  (** Retain every sample; exact percentiles (default). *)
    | Bounded of { bins : int; lo : float; hi : float }
        (** Sketch-backed: O(bins) memory, percentile error bounded by
            one bin width; {!to_array}/{!sorted} become unavailable. *)

  type t

  val create : ?capacity:int -> ?mode:mode -> unit -> t
  (** An empty buffer; [capacity] pre-sizes the backing array (default
      64) and is ignored in [Bounded] mode.  Raises [Invalid_argument]
      if [capacity < 1] or the bounded layout is invalid. *)

  val add : t -> float -> unit
  val add_all : t -> float array -> unit
  val of_array : float array -> t

  val length : t -> int
  val is_empty : t -> bool

  val to_array : t -> float array
  (** The samples in insertion order (fresh array).  Raises
      [Invalid_argument] in [Bounded] mode — samples are not
      retained. *)

  val sorted : t -> float array
  (** The samples in ascending order.  The returned array is the cache
      itself — treat it as read-only.  Raises [Invalid_argument] in
      [Bounded] mode. *)

  val percentile : t -> float -> float
  (** Linear rank interpolation on the cached sorted view; same
      contract as the array {!val:percentile}.  In [Bounded] mode,
      answered by {!Sketch.quantile} (error at most one bin width). *)

  val median : t -> float
  val min : t -> float
  (** Smallest sample; [nan] if empty. *)

  val max : t -> float
  (** Largest sample; [nan] if empty. *)

  val mean : t -> float
  (** Mean of the samples; [nan] if empty. *)

  val cdf_points : t -> (float * float) list
  (** Empirical CDF of the samples; same contract as the array
      {!val:cdf_points}.  In [Bounded] mode, {!Sketch.cdf_points}. *)
end

(** {1 Array statistics} *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation
    between closest ranks ([xs] need not be sorted; a sorted copy is
    made).  Raises [Invalid_argument] on an empty array or [p] outside
    the range. *)

val median : float array -> float
(** [median xs = percentile xs 50.]. *)

val cdf_points : float array -> (float * float) list
(** [cdf_points xs] is the empirical CDF as [(value, fraction <= value)]
    steps, sorted by value, one point per distinct sample.  Empty input
    gives []. *)

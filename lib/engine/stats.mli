(** Online and offline statistics.

    {!Online} accumulates count/mean/variance/min/max in O(1) memory
    (Welford's algorithm) — used for per-flow and per-queue counters
    that live for a whole simulation.  {!Histogram} buckets samples at a
    fixed width.  The array helpers compute percentiles and empirical
    CDFs for the evaluation figures. *)

module Online : sig
  type t
  (** A mutable accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit

  val count : t -> int
  val mean : t -> float
  (** Mean of the samples; [nan] if empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** Smallest sample; [nan] if empty. *)

  val max : t -> float
  (** Largest sample; [nan] if empty. *)

  val sum : t -> float
  val merge : t -> t -> t
  (** [merge a b] is a fresh accumulator equivalent to having seen both
      sample streams (Chan's parallel update). *)

  val pp : Format.formatter -> t -> unit
end

module Histogram : sig
  type t

  val create : bin_width:float -> t
  (** Bins are [\[k*w, (k+1)*w)].  Raises [Invalid_argument] if
      [bin_width <= 0.]. *)

  val add : t -> float -> unit
  (** Add a sample.  Negative samples go to negative bins. *)

  val count : t -> int
  val bins : t -> (float * int) list
  (** Non-empty bins as [(lower_edge, count)], sorted by edge. *)

  val mode_bin : t -> (float * int) option
  (** The fullest bin, ties broken towards the lower edge. *)
end

(** {1 Sample buffers} *)

module Samples : sig
  (** A growable buffer of float samples with a cached sorted view.

      Experiments accumulate thousands of per-circuit samples and then
      query several percentiles of the same data; this keeps the
      samples in a flat, doubling float array (no list cells) and
      sorts at most once per burst of queries — the cache is
      invalidated by the next {!add}. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** An empty buffer; [capacity] pre-sizes the backing array (default
      64).  Raises [Invalid_argument] if [capacity < 1]. *)

  val add : t -> float -> unit
  val add_all : t -> float array -> unit
  val of_array : float array -> t

  val length : t -> int
  val is_empty : t -> bool

  val to_array : t -> float array
  (** The samples in insertion order (fresh array). *)

  val sorted : t -> float array
  (** The samples in ascending order.  The returned array is the cache
      itself — treat it as read-only. *)

  val percentile : t -> float -> float
  (** Linear rank interpolation on the cached sorted view; same
      contract as the array {!val:percentile}. *)

  val median : t -> float
  val min : t -> float
  (** Smallest sample; [nan] if empty. *)

  val max : t -> float
  (** Largest sample; [nan] if empty. *)

  val mean : t -> float
  (** Mean of the samples; [nan] if empty. *)

  val cdf_points : t -> (float * float) list
  (** Empirical CDF of the samples; same contract as the array
      {!val:cdf_points}. *)
end

(** {1 Array statistics} *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation
    between closest ranks ([xs] need not be sorted; a sorted copy is
    made).  Raises [Invalid_argument] on an empty array or [p] outside
    the range. *)

val median : float array -> float
(** [median xs = percentile xs 50.]. *)

val cdf_points : float array -> (float * float) list
(** [cdf_points xs] is the empirical CDF as [(value, fraction <= value)]
    steps, sorted by value, one point per distinct sample.  Empty input
    gives []. *)

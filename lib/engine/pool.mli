(** A fixed pool of OCaml 5 domains for embarrassingly parallel sweeps,
    plus a reusable shard team for within-run parallelism.

    Every figure and table of the reproduction is a grid of independent
    simulations (seeds x configs); each replicate builds its own
    {!Sim.t} and {!Rng.t} and shares no mutable state with its
    siblings, so they can run on separate domains.  [map] hands tasks
    to a fixed set of worker domains through a single atomic cursor
    (each worker claims the next unclaimed index) and stores every
    result in the slot of its task, so the output order is the input
    order no matter which domain ran what, and a parallel sweep is
    byte-identical to a sequential one.

    The pool is for coarse tasks — whole simulations, hundreds of
    milliseconds each — not for fine-grained data parallelism.  For
    splitting {e one} simulation across domains, {!Team} keeps a set of
    long-lived workers parked between barriers so a run can rendezvous
    thousands of times without respawning domains. *)

val env_jobs : unit -> (int option, string) result
(** The [CIRCUITSTART_JOBS] environment variable, parsed and validated:
    [Ok None] when unset or empty, [Ok (Some n)] for a positive integer
    (clamped to 128), and [Error msg] — a friendly one-line message in
    the CLI flag-validation style — when set to anything else.  CLIs
    call this at startup so a typo fails fast instead of silently
    falling back. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: [TORSIM_JOBS] from the
    environment if set to a positive integer (it backs the [--jobs]
    flag), else a valid [CIRCUITSTART_JOBS], else
    [Domain.recommended_domain_count ()].  A malformed
    [CIRCUITSTART_JOBS] is ignored here — [default_jobs] stays total —
    and reported by {!env_jobs}. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] is [Array.map f tasks], computed by [jobs]
    domains (clamped to the task count; [jobs <= 1] runs everything in
    the calling domain, spawning nothing).  Results are in task order.

    If one or more tasks raise, the remaining claimed tasks still run
    to completion, every domain is joined, and then the exception of
    the {e lowest-indexed} failed task is re-raised (with its
    backtrace) — deterministic regardless of scheduling.  Raises
    [Invalid_argument] if [jobs < 1]. *)

val map_counted : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array * float
(** [map] plus allocation accounting: the second component is the sum
    of the [Gc.minor_words] deltas of {e every} participating domain
    (the spawned workers and the calling domain's own task work).  A
    plain [Gc.minor_words] delta around a parallel [map] only sees the
    calling domain and silently understates allocation — this is the
    honest version behind the [minor_words_per_event] bench metric. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over lists, preserving order. *)

(** A reusable team of dedicated worker domains for sharded runs.

    [create ~shards:k] spawns [k - 1] long-lived domains; each
    {!Team.run} is one barrier-to-barrier step in which member [i]
    (the caller is member 0) executes the job for shard [i].  Workers
    park on a condition variable between runs — a blocking rendezvous,
    not a spin barrier, so oversubscribed hosts (fewer cores than
    shards) degrade gracefully instead of livelocking.  A sharded
    simulation calls [run] once per exchange window, thousands of
    times per run, against the same team. *)
module Team : sig
  type t

  val create : ?shards:int -> unit -> t
  (** [shards] defaults to {!default_jobs}; raises [Invalid_argument]
      if [shards < 1].  [shards = 1] spawns nothing and [run] executes
      entirely in the calling domain. *)

  val shards : t -> int

  val run : t -> (int -> unit) -> unit
  (** Execute [f shard] on every member concurrently (the caller runs
      shard 0) and return once all have finished.  If members raise,
      the {e lowest} shard's exception is re-raised with its backtrace
      after every member has checked in, and the team remains usable.
      Raises [Invalid_argument] after {!shutdown}. *)

  val minor_words : t -> float
  (** Total minor words allocated by the {e worker} domains across all
      [run]s so far.  The calling domain's share is deliberately
      excluded — the caller reads its own [Gc.minor_words] delta and
      adds this, so nothing is counted twice. *)

  val shutdown : t -> unit
  (** Stop and join the worker domains.  Idempotent. *)
end

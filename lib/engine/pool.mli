(** A fixed pool of OCaml 5 domains for embarrassingly parallel sweeps.

    Every figure and table of the reproduction is a grid of independent
    simulations (seeds x configs); each replicate builds its own
    {!Sim.t} and {!Rng.t} and shares no mutable state with its
    siblings, so they can run on separate domains.  [map] hands tasks
    to a fixed set of worker domains through a single atomic cursor
    (each worker claims the next unclaimed index) and stores every
    result in the slot of its task, so the output order is the input
    order no matter which domain ran what, and a parallel sweep is
    byte-identical to a sequential one.

    The pool is for coarse tasks — whole simulations, hundreds of
    milliseconds each — not for fine-grained data parallelism: one
    atomic increment per task is the only coordination. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: [TORSIM_JOBS] from the
    environment if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f tasks] is [Array.map f tasks], computed by [jobs]
    domains (clamped to the task count; [jobs <= 1] runs everything in
    the calling domain, spawning nothing).  Results are in task order.

    If one or more tasks raise, the remaining claimed tasks still run
    to completion, every domain is joined, and then the exception of
    the {e lowest-indexed} failed task is re-raised (with its
    backtrace) — deterministic regardless of scheduling.  Raises
    [Invalid_argument] if [jobs < 1]. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over lists, preserving order. *)

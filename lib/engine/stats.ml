module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; mn = nan; mx = nan; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = Float.sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
  let sum t = t.total

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
      let m2 =
        a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
      in
      {
        n;
        mean;
        m2;
        mn = Stdlib.min a.mn b.mn;
        mx = Stdlib.max a.mx b.mx;
        total = a.total +. b.total;
      }
    end

  let pp fmt t =
    if t.n = 0 then Format.fprintf fmt "(no samples)"
    else
      Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
        (stddev t) t.mn t.mx
end

module Histogram = struct
  (* Counts live in the table as plain ints — no [int ref] box per
     bin, no indirection per increment. *)
  type t = { width : float; counts : (int, int) Hashtbl.t; mutable total : int }

  let create ~bin_width =
    if not (Float.is_finite bin_width) || bin_width <= 0. then
      invalid_arg "Histogram.create: bin width must be positive";
    { width = bin_width; counts = Hashtbl.create 64; total = 0 }

  let bin_of t x = int_of_float (Float.floor (x /. t.width))

  let add t x =
    let b = bin_of t x in
    let c = match Hashtbl.find_opt t.counts b with Some c -> c | None -> 0 in
    Hashtbl.replace t.counts b (c + 1);
    t.total <- t.total + 1

  let count t = t.total

  let bins t =
    Hashtbl.fold (fun b c acc -> (float_of_int b *. t.width, c) :: acc) t.counts []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

  let mode_bin t =
    List.fold_left
      (fun best (edge, c) ->
        match best with
        | Some (_, bc) when bc >= c -> best
        | _ -> Some (edge, c))
      None (bins t)
end

module Sketch = struct
  (* A fixed-bin mergeable histogram over [\[lo, hi)], with side counts
     for samples outside the range and exact min/max/sum tracking.  The
     state is a function of the multiset of samples alone (bin counts
     are order-independent), so two sketches fed the same samples in
     any order are structurally equal, and [merge] — plain count
     addition — is associative and commutative.  O(bins) memory
     regardless of stream length. *)
  type t = {
    lo : float;
    width : float;
    counts : int array;
    mutable underflow : int;  (* samples below [lo] *)
    mutable overflow : int;  (* samples at or above [hi] *)
    mutable total : int;
    mutable mn : float;
    mutable mx : float;
    mutable sum : float;
  }

  let create ?(bins = 512) ~lo ~hi () =
    if bins < 1 then invalid_arg "Sketch.create: bins must be positive";
    if not (Float.is_finite lo && Float.is_finite hi) || hi <= lo then
      invalid_arg "Sketch.create: need finite lo < hi";
    {
      lo;
      width = (hi -. lo) /. float_of_int bins;
      counts = Array.make bins 0;
      underflow = 0;
      overflow = 0;
      total = 0;
      mn = nan;
      mx = nan;
      sum = 0.;
    }

  let bins t = Array.length t.counts
  let range t = (t.lo, t.lo +. (t.width *. float_of_int (bins t)))
  let count t = t.total
  let min t = t.mn
  let max t = t.mx
  let mean t = if t.total = 0 then nan else t.sum /. float_of_int t.total

  let add t x =
    if not (Float.is_finite x) then invalid_arg "Sketch.add: non-finite sample";
    t.total <- t.total + 1;
    t.sum <- t.sum +. x;
    if t.total = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end;
    let b = int_of_float (Float.floor ((x -. t.lo) /. t.width)) in
    if b < 0 then t.underflow <- t.underflow + 1
    else if b >= Array.length t.counts then t.overflow <- t.overflow + 1
    else t.counts.(b) <- t.counts.(b) + 1

  let compatible a b =
    Float.equal a.lo b.lo && Float.equal a.width b.width && bins a = bins b

  let merge a b =
    if not (compatible a b) then
      invalid_arg "Sketch.merge: sketches have different bin layouts";
    {
      lo = a.lo;
      width = a.width;
      counts = Array.init (bins a) (fun i -> a.counts.(i) + b.counts.(i));
      underflow = a.underflow + b.underflow;
      overflow = a.overflow + b.overflow;
      total = a.total + b.total;
      mn =
        (if a.total = 0 then b.mn
         else if b.total = 0 then a.mn
         else Stdlib.min a.mn b.mn);
      mx =
        (if a.total = 0 then b.mx
         else if b.total = 0 then a.mx
         else Stdlib.max a.mx b.mx);
      sum = a.sum +. b.sum;
    }

  (* Float addition is not associative, so a sum accumulated shard by
     shard and re-added by [merge] can differ in the last ulp from the
     same samples summed in one stream — enough to break byte-identical
     digests across shard counts.  Sharded runs therefore accumulate
     exact integer tallies on the side and install the derived float
     sum here after merging. *)
  let set_sum t sum =
    if not (Float.is_finite sum) then
      invalid_arg "Sketch.set_sum: non-finite sum";
    t.sum <- sum

  (* Smallest x with (estimated) fraction-below >= q — the same
     convention as {!Cdf.quantile}, with linear interpolation inside
     the bin holding the target rank.  Results are clamped to the exact
     observed [min, max]. *)
  let quantile t q =
    if t.total = 0 then invalid_arg "Sketch.quantile: empty sketch";
    if not (Float.is_finite q) || q < 0. || q > 1. then
      invalid_arg "Sketch.quantile: q must be in [0, 1]";
    let k =
      Stdlib.max 1
        (int_of_float (Float.ceil (q *. float_of_int t.total)))
    in
    if k <= t.underflow then t.mn
    else begin
      let clamp x = Float.min t.mx (Float.max t.mn x) in
      let cum = ref t.underflow in
      let result = ref nan in
      let i = ref 0 in
      let n = Array.length t.counts in
      while Float.is_nan !result && !i < n do
        let c = t.counts.(!i) in
        if c > 0 && k <= !cum + c then
          result :=
            clamp
              (t.lo
              +. (t.width *. float_of_int !i)
              +. (t.width *. float_of_int (k - !cum) /. float_of_int c))
        else begin
          cum := !cum + c;
          incr i
        end
      done;
      if Float.is_nan !result then t.mx else !result
    end

  (* The total-function face of [quantile]: an empty sketch is a
     normal state for a run that completed nothing (an all-refused
     admission sweep, a churn storm), not a programming error. *)
  let quantile_opt t q = if t.total = 0 then None else Some (quantile t q)

  (* Step points for plotting: one per non-empty bin at its upper edge
     (clamped to the observed extremes), preceded by the minimum when
     samples fell below [lo] and closed at [(max, 1.)]. *)
  let cdf_points t =
    if t.total = 0 then []
    else begin
      let nf = float_of_int t.total in
      let acc = ref [] in
      (* Build right to left so the list comes out ascending; [above]
         counts the samples in bins strictly after [i], so the fraction
         at bin [i]'s upper edge is (total - overflow - above) / n. *)
      let above = ref 0 in
      for i = Array.length t.counts - 1 downto 0 do
        let c = t.counts.(i) in
        if c > 0 then begin
          let edge =
            Float.min t.mx
              (Float.max t.mn (t.lo +. (t.width *. float_of_int (i + 1))))
          in
          acc :=
            (edge, float_of_int (t.total - t.overflow - !above) /. nf) :: !acc
        end;
        above := !above + c
      done;
      let points =
        if t.underflow > 0 then
          (t.mn, float_of_int t.underflow /. nf) :: !acc
        else !acc
      in
      match List.rev points with
      | (_, f) :: _ when f < 1. -> points @ [ (t.mx, 1.) ]
      | [] -> [ (t.mx, 1.) ]
      | _ -> points
    end
end

(* Rank interpolation over an already-sorted array — the one
   implementation behind both the array helpers and {!Samples}. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if not (Float.is_finite p) || p < 0. || p > 100. then
    invalid_arg "Stats.percentile: p must be in [0, 100]";
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let cdf_points_sorted sorted =
  let n = Array.length sorted in
  if n = 0 then []
  else begin
    let nf = float_of_int n in
    (* One step per distinct value, at the fraction of samples <= it. *)
    let rec go i acc =
      if i < 0 then acc
      else if i < n - 1 && Float.equal sorted.(i) sorted.(i + 1) then go (i - 1) acc
      else go (i - 1) ((sorted.(i), float_of_int (i + 1) /. nf) :: acc)
    in
    go (n - 1) []
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let median xs = percentile xs 50.

let cdf_points xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  cdf_points_sorted sorted

module Samples = struct
  type mode = Exact | Bounded of { bins : int; lo : float; hi : float }

  type t = {
    mutable data : float array;
    mutable len : int;
    (* Cached ascending copy of [data.(0..len-1)]; rebuilt at most once
       per burst of queries and dropped by the next [add], so repeated
       percentile reads stop re-sorting the whole sample set. *)
    mutable sorted : float array option;
    (* [Some sk] in bounded mode: samples feed the sketch and are NOT
       retained; [data]/[len]/[sorted] stay untouched at their initial
       values, so the default exact mode is byte-identical to the
       sketch-free implementation. *)
    sketch : Sketch.t option;
  }

  let create ?(capacity = 64) ?(mode = Exact) () =
    if capacity < 1 then invalid_arg "Samples.create: capacity must be positive";
    let sketch =
      match mode with
      | Exact -> None
      | Bounded { bins; lo; hi } -> Some (Sketch.create ~bins ~lo ~hi ())
    in
    { data = Array.make capacity 0.; len = 0; sorted = None; sketch }

  let length t =
    match t.sketch with Some sk -> Sketch.count sk | None -> t.len

  let is_empty t = length t = 0

  let add t x =
    match t.sketch with
    | Some sk -> Sketch.add sk x
    | None ->
        if t.len = Array.length t.data then begin
          let ndata = Array.make (2 * t.len) 0. in
          Array.blit t.data 0 ndata 0 t.len;
          t.data <- ndata
        end;
        t.data.(t.len) <- x;
        t.len <- t.len + 1;
        t.sorted <- None

  let add_all t xs = Array.iter (add t) xs

  let of_array xs =
    let t = create ~capacity:(Stdlib.max 1 (Array.length xs)) () in
    add_all t xs;
    t

  let retained name t =
    match t.sketch with
    | Some _ ->
        invalid_arg
          (Printf.sprintf "Samples.%s: samples are not retained in bounded mode"
             name)
    | None -> ()

  let to_array t =
    retained "to_array" t;
    Array.sub t.data 0 t.len

  let sorted_exn t =
    match t.sorted with
    | Some s -> s
    | None ->
        let s = Array.sub t.data 0 t.len in
        Array.sort Float.compare s;
        t.sorted <- Some s;
        s

  let sorted t =
    retained "sorted" t;
    sorted_exn t

  let percentile t p =
    match t.sketch with
    | Some sk ->
        if not (Float.is_finite p) || p < 0. || p > 100. then
          invalid_arg "Stats.percentile: p must be in [0, 100]";
        Sketch.quantile sk (p /. 100.)
    | None -> percentile_sorted (sorted_exn t) p

  let median t = percentile t 50.

  let min t =
    match t.sketch with
    | Some sk -> Sketch.min sk
    | None -> if t.len = 0 then nan else (sorted_exn t).(0)

  let max t =
    match t.sketch with
    | Some sk -> Sketch.max sk
    | None -> if t.len = 0 then nan else (sorted_exn t).(t.len - 1)

  let mean t =
    match t.sketch with
    | Some sk -> Sketch.mean sk
    | None ->
        if t.len = 0 then nan
        else begin
          let acc = ref 0. in
          for i = 0 to t.len - 1 do
            acc := !acc +. t.data.(i)
          done;
          !acc /. float_of_int t.len
        end

  let cdf_points t =
    match t.sketch with
    | Some sk -> Sketch.cdf_points sk
    | None -> cdf_points_sorted (sorted_exn t)
end

module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; mn = nan; mx = nan; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.n = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = Float.sqrt (variance t)
  let min t = t.mn
  let max t = t.mx
  let sum t = t.total

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
      let m2 =
        a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
      in
      {
        n;
        mean;
        m2;
        mn = Stdlib.min a.mn b.mn;
        mx = Stdlib.max a.mx b.mx;
        total = a.total +. b.total;
      }
    end

  let pp fmt t =
    if t.n = 0 then Format.fprintf fmt "(no samples)"
    else
      Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
        (stddev t) t.mn t.mx
end

module Histogram = struct
  (* Counts live in the table as plain ints — no [int ref] box per
     bin, no indirection per increment. *)
  type t = { width : float; counts : (int, int) Hashtbl.t; mutable total : int }

  let create ~bin_width =
    if not (Float.is_finite bin_width) || bin_width <= 0. then
      invalid_arg "Histogram.create: bin width must be positive";
    { width = bin_width; counts = Hashtbl.create 64; total = 0 }

  let bin_of t x = int_of_float (Float.floor (x /. t.width))

  let add t x =
    let b = bin_of t x in
    let c = match Hashtbl.find_opt t.counts b with Some c -> c | None -> 0 in
    Hashtbl.replace t.counts b (c + 1);
    t.total <- t.total + 1

  let count t = t.total

  let bins t =
    Hashtbl.fold (fun b c acc -> (float_of_int b *. t.width, c) :: acc) t.counts []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

  let mode_bin t =
    List.fold_left
      (fun best (edge, c) ->
        match best with
        | Some (_, bc) when bc >= c -> best
        | _ -> Some (edge, c))
      None (bins t)
end

(* Rank interpolation over an already-sorted array — the one
   implementation behind both the array helpers and {!Samples}. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if not (Float.is_finite p) || p < 0. || p > 100. then
    invalid_arg "Stats.percentile: p must be in [0, 100]";
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let cdf_points_sorted sorted =
  let n = Array.length sorted in
  if n = 0 then []
  else begin
    let nf = float_of_int n in
    (* One step per distinct value, at the fraction of samples <= it. *)
    let rec go i acc =
      if i < 0 then acc
      else if i < n - 1 && Float.equal sorted.(i) sorted.(i + 1) then go (i - 1) acc
      else go (i - 1) ((sorted.(i), float_of_int (i + 1) /. nf) :: acc)
    in
    go (n - 1) []
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let median xs = percentile xs 50.

let cdf_points xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  cdf_points_sorted sorted

module Samples = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    (* Cached ascending copy of [data.(0..len-1)]; rebuilt at most once
       per burst of queries and dropped by the next [add], so repeated
       percentile reads stop re-sorting the whole sample set. *)
    mutable sorted : float array option;
  }

  let create ?(capacity = 64) () =
    if capacity < 1 then invalid_arg "Samples.create: capacity must be positive";
    { data = Array.make capacity 0.; len = 0; sorted = None }

  let length t = t.len
  let is_empty t = t.len = 0

  let add t x =
    if t.len = Array.length t.data then begin
      let ndata = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 ndata 0 t.len;
      t.data <- ndata
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- None

  let add_all t xs = Array.iter (add t) xs

  let of_array xs =
    let t = create ~capacity:(Stdlib.max 1 (Array.length xs)) () in
    add_all t xs;
    t

  let to_array t = Array.sub t.data 0 t.len

  let sorted t =
    match t.sorted with
    | Some s -> s
    | None ->
        let s = Array.sub t.data 0 t.len in
        Array.sort Float.compare s;
        t.sorted <- Some s;
        s

  let percentile t p = percentile_sorted (sorted t) p
  let median t = percentile t 50.
  let min t = if t.len = 0 then nan else (sorted t).(0)
  let max t = if t.len = 0 then nan else (sorted t).(t.len - 1)

  let mean t =
    if t.len = 0 then nan
    else begin
      let acc = ref 0. in
      for i = 0 to t.len - 1 do
        acc := !acc +. t.data.(i)
      done;
      !acc /. float_of_int t.len
    end

  let cdf_points t = cdf_points_sorted (sorted t)
end

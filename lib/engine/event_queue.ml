(* A hierarchical timer wheel fronting the old binary heap.

   Layout: events within [wheel_slots] ticks of the cursor live in fixed
   wheel slots (one unsorted bag per tick); events beyond that horizon
   spill into the overflow heap, ordered exactly as the old scheduler
   ordered everything.  As the cursor advances, overflow entries whose
   tick enters the window migrate into slots, and the slot under the
   cursor is drained into a small per-tick min-heap that fires entries
   in strict (time, seq) order — so the observable firing order is
   bit-identical to the heap-only implementation.

   The payoff is the hot path: inserting a short-horizon event is O(1)
   array writes (no sift, no comparisons), and [pop_before] returns the
   payload directly with no Option or tuple boxing.  Reusable [timer]
   entries are preallocated once by callers and rearmed in place, so a
   steady-state simulation schedules and fires events without allocating
   at all. *)

type 'a entry = {
  mutable time : Time.t;
  (* Unboxed nanosecond mirror of [time], clamped at the [huge_ns]
     horizon (see [ns_mirror]).  Heap sifts compare entries ~20 times
     per event at scale; comparing plain ints keeps that in registers
     where boxed [Int64.compare] costs an external call per probe. *)
  mutable time_ns : int;
  mutable seq : int;
  mutable payload : 'a;
  mutable cancelled : bool;
  mutable fired : bool;
  (* Intrusive location tracking, so reusable timers can be pulled out
     of whichever container holds them in O(1)/O(log n):
     [where] is [loc_free] (not queued), [loc_heap], [loc_buffer], or a
     wheel slot index; [pos] is the index within that container. *)
  mutable where : int;
  mutable pos : int;
}

type handle = H : 'a entry -> handle
type 'a timer = 'a entry

let loc_free = -1
let loc_heap = -2
let loc_buffer = -3

(* Default wheel geometry: 2^16 ns = 65.536us per tick, 256 slots, so
   the window covers ~16.8ms — cell serialization, propagation delays
   and feedback clocks land in slots; RTO-scale timers take the heap.
   Both knobs are per-queue ([create ?tick_bits ?wheel_slots]): the
   consensus-scale round-level workload widens the window to RTT scale
   so its 10^5 pending round timers stay O(1) wheel inserts instead of
   overflow-heap churn.  Geometry is perf-only — firing order is exact
   (time, seq) for any setting, because every drained tick is sorted. *)
let default_tick_bits = 16
let default_wheel_slots = 256

(* Ticks are plain ints.  Times at or beyond 2^62 ns (~146 simulated
   years, e.g. [Time.max_value] used as "never") all clamp to one huge
   tick, and negative times clamp to tick -1: entries sharing a clamped
   tick still fire in exact (time, seq) order because every drained
   tick is sorted.  The clamps also keep tick arithmetic far from int
   overflow. *)
let huge_ns = 0x4000_0000_0000_0000L
let huge_tick = max_int - 1

type 'a t = {
  (* Wheel geometry (fixed at creation). *)
  tick_bits : int;
  wheel_slots : int;
  wheel_mask : int;
  (* Overflow heap (beyond the wheel window), ordered by (time, seq).
     Slots >= [heap_len] hold [dummy], never a popped entry: a fired
     event's payload must become collectable the moment the caller
     drops it. *)
  mutable heap : 'a entry array;
  mutable heap_len : int;
  (* The wheel: one unsorted bag of entries per tick in the window
     (cursor, cursor + wheel_slots).  [slot_len] is the bag fill;
     [wheel_count] the total across all bags (cancelled included). *)
  slots : 'a entry array array;
  slot_len : int array;
  mutable wheel_count : int;
  mutable cursor : int;
  (* The drain buffer: all entries due at ticks <= cursor, kept as a
     small (time, seq) min-heap of its own so same-tick inserts while
     the tick drains stay O(log k) — a sorted array here would re-sort
     per insert and go quadratic under same-instant bursts.  Inserts
     at or before the cursor tick push here. *)
  mutable buffer : 'a entry array;
  mutable buf_len : int;
  mutable next_seq : int;
  mutable live : int;
  mutable popped_time : Time.t;
  dummy : 'a entry;
}

(* The filler for unused array slots.  Its payload is never read, never
   compared and never returned — the length fields guard every access —
   so an immediate stands in for the uninhabitable ['a].  This is the
   same trick the stdlib's [Dynarray] uses for its empty slots. *)
(* The int mirror of a timestamp.  Exact for every time whose
   magnitude is below [huge_ns] (all simulatable instants); beyond
   that it clamps, and [entry_before] falls back to the exact boxed
   compare when two mirrors collide, so ordering stays exact
   everywhere. *)
let ns_mirror time =
  let ns = Time.to_ns time in
  if Int64.compare ns huge_ns >= 0 then max_int
  else if Int64.compare ns (Int64.neg huge_ns) <= 0 then min_int
  else Int64.to_int ns

let make_dummy () : 'a entry =
  { time = Time.zero; time_ns = 0; seq = min_int; payload = Obj.magic ();
    cancelled = true; fired = true; where = loc_free; pos = -1 }

let default_capacity = 256

let create ?(capacity = default_capacity) ?(tick_bits = default_tick_bits)
    ?(wheel_slots = default_wheel_slots) () =
  if capacity < 1 then invalid_arg "Event_queue.create: capacity must be positive";
  if tick_bits < 1 || tick_bits > 40 then
    invalid_arg "Event_queue.create: tick_bits must be in [1, 40]";
  if wheel_slots < 2 || wheel_slots land (wheel_slots - 1) <> 0 then
    invalid_arg "Event_queue.create: wheel_slots must be a power of two >= 2";
  let dummy = make_dummy () in
  {
    tick_bits;
    wheel_slots;
    wheel_mask = wheel_slots - 1;
    heap = Array.make capacity dummy;
    heap_len = 0;
    slots = Array.init wheel_slots (fun _ -> [||]);
    slot_len = Array.make wheel_slots 0;
    wheel_count = 0;
    cursor = 0;
    buffer = Array.make 64 dummy;
    buf_len = 0;
    next_seq = 0;
    live = 0;
    popped_time = Time.zero;
    dummy;
  }

(* Strict order, monomorphised: timestamps compare as raw [int64]
   nanoseconds so the hot path never goes through a closure or a
   polymorphic comparison. *)
let entry_before a b =
  if a.time_ns <> b.time_ns then a.time_ns < b.time_ns
  else
    (* Equal mirrors: either genuinely simultaneous (decide by seq) or
       both clamped past the horizon (decide by the exact time). *)
    let c = Int64.compare (Time.to_ns a.time) (Time.to_ns b.time) in
    if c <> 0 then c < 0 else a.seq < b.seq

let fresh_seq q =
  let s = q.next_seq in
  if s = max_int then
    failwith "Event_queue.add: insertion sequence exhausted (clear to reset)";
  q.next_seq <- s + 1;
  s

(* ------------------------------------------------------------------ *)
(* Heap machinery, shared by the overflow heap and the drain buffer.
   Both are binary min-heaps over (time, seq) with intrusive [pos]
   maintenance, differing only in which array/length pair they live
   in. *)

let rec sift_up arr i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before arr.(i) arr.(parent) then begin
      let tmp = arr.(i) in
      arr.(i) <- arr.(parent);
      arr.(parent) <- tmp;
      arr.(i).pos <- i;
      tmp.pos <- parent;
      sift_up arr parent
    end
  end

let rec sift_down arr ~len i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < len && entry_before arr.(l) arr.(!smallest) then smallest := l;
  if r < len && entry_before arr.(r) arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = arr.(i) in
    arr.(i) <- arr.(!smallest);
    arr.(!smallest) <- tmp;
    arr.(i).pos <- i;
    tmp.pos <- !smallest;
    sift_down arr ~len !smallest
  end

(* ------------------------------------------------------------------ *)
(* Overflow heap *)

let heap_grow q =
  let cap = Array.length q.heap in
  if q.heap_len = cap then begin
    let nheap = Array.make (cap * 2) q.dummy in
    Array.blit q.heap 0 nheap 0 q.heap_len;
    q.heap <- nheap
  end

let heap_push q e =
  heap_grow q;
  q.heap.(q.heap_len) <- e;
  e.where <- loc_heap;
  e.pos <- q.heap_len;
  q.heap_len <- q.heap_len + 1;
  sift_up q.heap (q.heap_len - 1)

(* Remove the entry at heap index [i], restoring heap order. *)
let heap_remove_at q i =
  let e = q.heap.(i) in
  q.heap_len <- q.heap_len - 1;
  if i < q.heap_len then begin
    let last = q.heap.(q.heap_len) in
    q.heap.(i) <- last;
    last.pos <- i;
    q.heap.(q.heap_len) <- q.dummy;
    if entry_before last e then sift_up q.heap i
    else sift_down q.heap ~len:q.heap_len i
  end
  else q.heap.(i) <- q.dummy;
  e.where <- loc_free;
  e

(* The heap half of the lazy-deletion sweep: discard cancelled entries
   sitting at the heap top.  True iff a live top remains. *)
let rec heap_settle q =
  q.heap_len > 0
  &&
  if q.heap.(0).cancelled then begin
    ignore (heap_remove_at q 0);
    heap_settle q
  end
  else true

(* ------------------------------------------------------------------ *)
(* Wheel slots and drain buffer *)

(* Tick of an entry, from its unboxed mirror: negative times clamp to
   tick -1, times at or past the [huge_ns] horizon to [huge_tick], and
   everything simulatable shifts exactly — same routing as computing
   from the boxed time, without the [Int64] compares. *)
let tick_of_entry q e =
  if e.time_ns < 0 then -1
  else if e.time_ns = max_int then huge_tick
  else e.time_ns asr q.tick_bits

let slot_insert q e tk =
  let s = tk land q.wheel_mask in
  let len = q.slot_len.(s) in
  let arr = q.slots.(s) in
  let arr =
    if Array.length arr = len then begin
      let narr = Array.make (Stdlib.max 8 (2 * len)) q.dummy in
      Array.blit arr 0 narr 0 len;
      q.slots.(s) <- narr;
      narr
    end
    else arr
  in
  arr.(len) <- e;
  e.where <- s;
  e.pos <- len;
  q.slot_len.(s) <- len + 1;
  q.wheel_count <- q.wheel_count + 1

let slot_remove q e =
  let s = e.where in
  let len = q.slot_len.(s) - 1 in
  let arr = q.slots.(s) in
  let last = arr.(len) in
  arr.(e.pos) <- last;
  last.pos <- e.pos;
  arr.(len) <- q.dummy;
  q.slot_len.(s) <- len;
  q.wheel_count <- q.wheel_count - 1;
  e.where <- loc_free

let ensure_buffer q extra =
  let need = q.buf_len + extra in
  let cap = Array.length q.buffer in
  if need > cap then begin
    let ncap = ref cap in
    while !ncap < need do
      ncap := !ncap * 2
    done;
    let nbuf = Array.make !ncap q.dummy in
    Array.blit q.buffer 0 nbuf 0 q.buf_len;
    q.buffer <- nbuf
  end

let buffer_push q e =
  ensure_buffer q 1;
  q.buffer.(q.buf_len) <- e;
  e.where <- loc_buffer;
  e.pos <- q.buf_len;
  q.buf_len <- q.buf_len + 1;
  sift_up q.buffer (q.buf_len - 1)

(* Remove the entry at buffer index [i], restoring heap order. *)
let buffer_remove_at q i =
  let e = q.buffer.(i) in
  q.buf_len <- q.buf_len - 1;
  if i < q.buf_len then begin
    let last = q.buffer.(q.buf_len) in
    q.buffer.(i) <- last;
    last.pos <- i;
    q.buffer.(q.buf_len) <- q.dummy;
    if entry_before last e then sift_up q.buffer i
    else sift_down q.buffer ~len:q.buf_len i
  end
  else q.buffer.(i) <- q.dummy;
  e.where <- loc_free;
  e

(* Drain the bag for slot [s] into the buffer: bulk-append, then one
   bottom-up heapify over the whole buffer — O(k), where per-entry
   pushes would be O(k log k).  Vacated bag cells are dummy-filled so
   drained payloads never stay pinned by the wheel. *)
let load_slot q s =
  let len = q.slot_len.(s) in
  if len > 0 then begin
    ensure_buffer q len;
    let arr = q.slots.(s) in
    for i = 0 to len - 1 do
      let e = arr.(i) in
      arr.(i) <- q.dummy;
      q.buffer.(q.buf_len) <- e;
      e.where <- loc_buffer;
      e.pos <- q.buf_len;
      q.buf_len <- q.buf_len + 1
    done;
    q.slot_len.(s) <- 0;
    q.wheel_count <- q.wheel_count - len;
    for i = (q.buf_len / 2) - 1 downto 0 do
      sift_down q.buffer ~len:q.buf_len i
    done
  end

(* Earliest occupied tick in the wheel window.  Precondition:
   [wheel_count > 0], which guarantees the scan terminates inside the
   window (every wheel entry's tick is in (cursor, cursor+wheel_slots)). *)
let next_wheel_tick q =
  let rec go i =
    let s = (q.cursor + i) land q.wheel_mask in
    if q.slot_len.(s) > 0 then q.cursor + i else go (i + 1)
  in
  go 1

(* Pull overflow entries whose tick has entered the wheel window (or
   passed the cursor) out of the heap.  Each entry migrates at most
   once, because the cursor never moves backwards. *)
let migrate_overflow q =
  let continue = ref true in
  while !continue && heap_settle q do
    let tk = tick_of_entry q q.heap.(0) in
    if tk <= q.cursor then buffer_push q (heap_remove_at q 0)
    else if tk - q.cursor < q.wheel_slots then begin
      let e = heap_remove_at q 0 in
      slot_insert q e tk
    end
    else continue := false
  done

(* Advance the cursor to the next occupied tick (from the wheel or the
   overflow heap) and stage that tick's entries in the drain buffer.
   False iff nothing is pending at all.  Precondition: the buffer is
   empty. *)
let advance q =
  let w = if q.wheel_count > 0 then next_wheel_tick q else max_int in
  let h = if heap_settle q then tick_of_entry q q.heap.(0) else max_int in
  let target = if w < h then w else h in
  if target = max_int then false
  else begin
    q.cursor <- target;
    migrate_overflow q;
    load_slot q (target land q.wheel_mask);
    assert (q.buf_len > 0);
    true
  end

(* The lazy-deletion sweep, shared by every read-or-pop operation:
   discard cancelled entries from the buffer root (and, via [advance],
   from the heap top), advancing the cursor as ticks drain.  After
   [settle q] returns true, [q.buffer.(0)] is the earliest live entry
   in the whole queue. *)
let rec settle q =
  if q.buf_len > 0 then
    if q.buffer.(0).cancelled then begin
      ignore (buffer_remove_at q 0);
      settle q
    end
    else true
  else advance q && settle q

(* ------------------------------------------------------------------ *)
(* Insertion and the public API *)

let insert q e =
  let tk = tick_of_entry q e in
  if tk <= q.cursor then buffer_push q e
  else if tk - q.cursor < q.wheel_slots then slot_insert q e tk
  else heap_push q e

let add q ~time payload =
  let entry =
    { time; time_ns = ns_mirror time; seq = fresh_seq q; payload;
      cancelled = false; fired = false; where = loc_free; pos = -1 }
  in
  insert q entry;
  q.live <- q.live + 1;
  H entry

let cancel q (H entry) =
  (* Cancelling an event that already fired must be a no-op, and must
     not touch [live]: the pop already accounted for it. *)
  if not entry.cancelled && not entry.fired then begin
    entry.cancelled <- true;
    q.live <- q.live - 1
  end

let is_cancelled _q (H entry) = entry.cancelled

let fire q e =
  ignore (buffer_remove_at q 0);
  e.fired <- true;
  q.live <- q.live - 1;
  q.popped_time <- e.time

let pop q =
  if settle q then begin
    let e = q.buffer.(0) in
    fire q e;
    Some (e.time, e.payload)
  end
  else None

let pop_before q ~limit ~none =
  if settle q then begin
    let e = q.buffer.(0) in
    if Int64.compare (Time.to_ns e.time) (Time.to_ns limit) <= 0 then begin
      fire q e;
      e.payload
    end
    else none
  end
  else none

let popped_time q = q.popped_time

let peek_time q = if settle q then Some q.buffer.(0).time else None
let size q = q.live
let is_empty q = q.live = 0

let clear q =
  (* Null out every populated cell: a cleared queue must not pin the
     payloads it used to hold.  The entries themselves are marked
     cancelled so a handle kept across the clear cannot corrupt [live].
     [next_seq] and the cursor restart too, so a reused queue is
     indistinguishable from a fresh one. *)
  for i = 0 to q.heap_len - 1 do
    q.heap.(i).cancelled <- true;
    q.heap.(i).where <- loc_free;
    q.heap.(i) <- q.dummy
  done;
  q.heap_len <- 0;
  for s = 0 to q.wheel_slots - 1 do
    let arr = q.slots.(s) in
    for i = 0 to q.slot_len.(s) - 1 do
      arr.(i).cancelled <- true;
      arr.(i).where <- loc_free;
      arr.(i) <- q.dummy
    done;
    q.slot_len.(s) <- 0
  done;
  q.wheel_count <- 0;
  for i = 0 to q.buf_len - 1 do
    q.buffer.(i).cancelled <- true;
    q.buffer.(i).where <- loc_free;
    q.buffer.(i) <- q.dummy
  done;
  q.buf_len <- 0;
  q.cursor <- 0;
  q.live <- 0;
  q.next_seq <- 0

(* ------------------------------------------------------------------ *)
(* Reusable timers *)

let timer _q payload =
  { time = Time.zero; time_ns = 0; seq = 0; payload; cancelled = true;
    fired = false; where = loc_free; pos = -1 }

let timer_armed e = e.where <> loc_free

(* Pull an armed timer out of whichever container holds it: O(1) from
   a slot bag, O(log n) from either heap. *)
let remove q e =
  if e.where >= 0 then slot_remove q e
  else if e.where = loc_heap then ignore (heap_remove_at q e.pos)
  else if e.where = loc_buffer then ignore (buffer_remove_at q e.pos)

let arm q e ~time =
  if e.where <> loc_free then begin
    remove q e;
    q.live <- q.live - 1
  end;
  e.time <- time;
  e.time_ns <- ns_mirror time;
  e.seq <- fresh_seq q;
  e.cancelled <- false;
  e.fired <- false;
  insert q e;
  q.live <- q.live + 1

let disarm q e =
  if e.where <> loc_free then begin
    remove q e;
    q.live <- q.live - 1
  end;
  e.cancelled <- true

(* ------------------------------------------------------------------ *)

module Private = struct
  let next_seq q = q.next_seq
  let set_next_seq q n = q.next_seq <- n
end

type 'a entry = {
  time : Time.t;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
  mutable fired : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  mutable heap : 'a entry array;
  (* Slots >= [len] hold [dummy], never a popped entry: a fired event's
     payload must become collectable the moment the caller drops it. *)
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
  dummy : 'a entry;
}

(* The filler for unused heap slots.  Its payload is never read, never
   compared and never returned — [len] guards every access — so an
   immediate stands in for the uninhabitable ['a].  This is the same
   trick the stdlib's [Dynarray] uses for its empty slots. *)
let make_dummy () : 'a entry =
  { time = Time.zero; seq = min_int; payload = Obj.magic (); cancelled = true;
    fired = true }

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Event_queue.create: capacity must be positive";
  let dummy = make_dummy () in
  { heap = Array.make capacity dummy; len = 0; next_seq = 0; live = 0; dummy }

(* Strict heap order, monomorphised: timestamps compare as raw [int64]
   nanoseconds so the hot path never goes through a closure or a
   polymorphic comparison. *)
let entry_before a b =
  let c = Int64.compare (Time.to_ns a.time) (Time.to_ns b.time) in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow q =
  let cap = Array.length q.heap in
  if q.len = cap then begin
    let nheap = Array.make (cap * 2) q.dummy in
    Array.blit q.heap 0 nheap 0 q.len;
    q.heap <- nheap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && entry_before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.len && entry_before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let add q ~time payload =
  let entry = { time; seq = q.next_seq; payload; cancelled = false; fired = false } in
  q.next_seq <- q.next_seq + 1;
  grow q;
  q.heap.(q.len) <- entry;
  q.len <- q.len + 1;
  q.live <- q.live + 1;
  sift_up q (q.len - 1);
  H entry

let cancel q (H entry) =
  (* Cancelling an event that already fired must be a no-op, and must
     not touch [live]: the pop already accounted for it. *)
  if not entry.cancelled && not entry.fired then begin
    entry.cancelled <- true;
    q.live <- q.live - 1
  end

let is_cancelled _q (H entry) = entry.cancelled

let remove_top q =
  let top = q.heap.(0) in
  q.len <- q.len - 1;
  if q.len > 0 then begin
    q.heap.(0) <- q.heap.(q.len);
    q.heap.(q.len) <- q.dummy;
    sift_down q 0
  end
  else q.heap.(0) <- q.dummy;
  top

let rec pop q =
  if q.len = 0 then None
  else
    let top = remove_top q in
    if top.cancelled then pop q
    else begin
      q.live <- q.live - 1;
      top.fired <- true;
      Some (top.time, top.payload)
    end

let rec peek_time q =
  if q.len = 0 then None
  else
    let top = q.heap.(0) in
    if top.cancelled then begin
      ignore (remove_top q);
      peek_time q
    end
    else Some top.time

let size q = q.live
let is_empty q = q.live = 0

let clear q =
  (* Null out every populated slot: a cleared queue must not pin the
     payloads it used to hold.  The entries themselves are marked
     cancelled so a handle kept across the clear cannot corrupt [live].
     [next_seq] restarts too, so a reused queue is indistinguishable
     from a fresh one. *)
  for i = 0 to q.len - 1 do
    q.heap.(i).cancelled <- true;
    q.heap.(i) <- q.dummy
  done;
  q.len <- 0;
  q.live <- 0;
  q.next_seq <- 0

(** Per-node BackTap dispatch.

    One [Node.t] per network node running BackTap.  It claims the
    switchboard's auxiliary handler and routes incoming hop envelopes
    and feedback messages to the per-circuit flow registered by a
    deployment.  Several circuits (deployments) share one node. *)

type t

type flow = {
  on_cell : from:Netsim.Node_id.t -> hop_seq:int -> Tor_model.Cell.t -> unit;
      (** A cell arrived from a neighbouring hop. *)
  on_feedback : hop_seq:int -> unit;
      (** Feedback from this node's successor on that circuit. *)
}

val install : Tor_model.Switchboard.t -> t
(** Claims the switchboard's aux-handler slot, and the data-kill slot:
    when the control plane's OOM responder sheds a circuit
    ([Tor_model.Switchboard.kill_data]), the kill switch registered
    here with {!set_kill} fires (a no-op if none is registered). *)

val switchboard : t -> Tor_model.Switchboard.t

val register_flow : t -> Tor_model.Circuit_id.t -> flow -> unit
(** Raises [Invalid_argument] if the circuit already has a flow
    here. *)

val set_kill : t -> Tor_model.Circuit_id.t -> (unit -> unit) -> unit
(** Register (or replace) the circuit's data-plane kill switch: called
    when the local relay OOM-kills the circuit, it must drop the
    circuit's queued bytes immediately (typically [Hop_sender.abort]).
    Removed together with the flow by {!unregister_flow}. *)

val unregister_flow : t -> Tor_model.Circuit_id.t -> unit
(** Removes the circuit's flow and its kill switch, if any. *)

val orphan_messages : t -> int
(** Envelopes or feedback for circuits with no registered flow. *)

type Netsim.Payload.t +=
  | Bt_cell of { hop_seq : int; cell : Tor_model.Cell.t }
  | Bt_feedback of { circuit : Tor_model.Circuit_id.t; hop_seq : int }

let cell_size = Tor_model.Cell.size + 8
let feedback_size = 43

(* Compare-and-set so concurrent domains finalizing networks register
   the printer exactly once. *)
let registered = Atomic.make false

let register_printer () =
  if Atomic.compare_and_set registered false true then begin
    Netsim.Payload.describe (function
      | Bt_cell { hop_seq; cell } ->
          Some (Format.asprintf "bt#%d %a" hop_seq Tor_model.Cell.pp cell)
      | Bt_feedback { circuit; hop_seq } ->
          Some (Format.asprintf "fb %a #%d" Tor_model.Circuit_id.pp circuit hop_seq)
      | _ -> None)
  end

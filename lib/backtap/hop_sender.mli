(** The windowed sender of one hop.

    One instance lives at each node that forwards a circuit's cells to
    a successor (the client and every relay; the server has none).  It
    owns the hop's {!Circuitstart.Controller.t}, keeps at most [cwnd]
    cells in flight, measures the cell→feedback RTT per transmission,
    and retransmits cells whose feedback does not arrive (Jacobson RTO,
    Karn's rule for samples).

    The caller attaches an [ack] to each submitted cell; it fires at
    the instant the cell is put on the wire towards the successor —
    "when forwarding a cell to its successor, each relay issues a
    feedback message to its predecessor" (paper §2) is implemented by
    passing the feedback emission as that [ack]. *)

type t

val create :
  sb:Tor_model.Switchboard.t ->
  circuit:Tor_model.Circuit_id.t ->
  succ:Netsim.Node_id.t ->
  controller:Circuitstart.Controller.t ->
  ?rto_min:Engine.Time.t ->
  ?rto_initial:Engine.Time.t ->
  ?max_retries:int ->
  unit ->
  t
(** [rto_min] defaults to 400 ms, [rto_initial] to 1 s.  Consecutive
    retransmissions of the same cell back off exponentially (doubling,
    capped at 64x) — under Karn's rule the estimator is frozen while
    retransmissions are in progress, so backoff is what re-opens the
    window for a fresh sample.

    [max_retries] (default 8, must be positive) bounds the
    retransmission budget per cell: when any one cell has been
    retransmitted that many times without feedback, the sender {e
    trips} — it discards all state, goes terminal (see {!aborted}) and
    fires the {!set_on_abort} callback.  This is the failure-detection
    bound: a dead successor is declared unreachable after at most
    [sum of the backed-off RTOs] rather than retransmitting forever. *)

val submit : t -> ?ack:(unit -> unit) -> Tor_model.Cell.t -> unit
(** Queue a cell; it is transmitted as soon as the window allows.
    [ack] (default none) fires when the cell first goes on the wire. *)

val on_feedback : t -> hop_seq:int -> unit
(** Process a feedback message from the successor: frees the window
    slot, samples the RTT (unless the cell was retransmitted) and
    drives the controller.  Unknown or duplicate sequence numbers are
    counted and otherwise ignored. *)

val controller : t -> Circuitstart.Controller.t
val cwnd : t -> int
val inflight : t -> int
val queue_length : t -> int
(** Cells submitted but not yet transmitted (local backlog, not the
    link queue). *)

val cells_sent : t -> int
(** First transmissions (excludes retransmissions). *)

val retransmissions : t -> int
val spurious_feedback : t -> int

val feedback_received : t -> int
(** Feedbacks that matched an in-flight cell (excludes spurious).  For
    a sender that was never aborted,
    [cells_sent = feedback_received + inflight + queue-drop losses
    still awaiting retransmission] — the per-hop conservation law the
    invariant oracles check at feedback instants and at end of run. *)

val next_hop_seq : t -> int
(** The sequence number the next submitted cell will take; every
    feedback must name a sequence strictly below it. *)

val idle : t -> bool
(** No backlog and nothing in flight. *)

val srtt : t -> Engine.Time.t option
(** Smoothed RTT estimate, once at least one sample exists. *)

val charged_bytes : t -> int
(** Bytes this sender currently holds against its node's resource
    budget ([Tor_model.Switchboard] occupancy): [Wire.cell_size] per
    backlogged or in-flight cell.  Charged at {!submit}, credited
    per-cell on matching feedback and wholesale on {!abort} — so it is
    0 for an idle or aborted sender. *)

(** {1 Failure} *)

val aborted : t -> bool
(** Whether the sender is in its terminal state.  An aborted sender
    ignores {!submit}, {!on_feedback} and all pending timers. *)

val abort : t -> unit
(** Kill the sender silently (no callback): cancel every pending
    retransmission timer and drop backlog and in-flight state.  Used
    by the owner to tear down the remaining hops of a failed circuit.
    Idempotent. *)

val set_on_abort : t -> (unit -> unit) -> unit
(** [f] fires once, at the instant the sender trips its own
    retransmission budget (not on an external {!abort}). *)

(** {1 Invariant probes}

    Passive observation points for the [Check] oracles.  A probe must
    not call back into the sender or the simulation: it only records. *)

type probe_event =
  | Wire_departure of {
      pkt_id : int;  (** id of the departing packet *)
      in_use : bool;  (** was the pending record live when it fired? *)
      wire_floor : int;  (** the record's incarnation watermark *)
      applied : bool;  (** did the sender act on the callback? *)
    }
      (** A wire-departure callback reached the sender.  The checked
          incarnation law: [applied] implies
          [in_use && pkt_id >= wire_floor] — acting on a stale or
          pooled-record callback is the PR-4 recycling bug. *)
  | Feedback of {
      hop_seq : int;
      next_hop_seq : int;  (** sender's next unassigned sequence *)
      known : bool;  (** did it match an in-flight cell? *)
    }
      (** A feedback message arrived (before it is processed).  The
          checked law: [hop_seq < next_hop_seq] — feedback must never
          name a cell that was never sent. *)

val set_probe : t -> (probe_event -> unit) option -> unit
(** Install (or remove) the probe.  Costs one [match] per wire
    departure / feedback when unset. *)

(**/**)

val unsafe_disable_wire_floor : bool ref
(** Test-only fault injection: while [true], wire-departure callbacks
    are applied to any live pending record regardless of its
    incarnation watermark, re-creating the stale-[on_transmit] bug the
    watermark exists to stop.  The harness flips it to prove the
    incarnation oracle catches the bug.  Never set in real runs. *)

type pending = {
  cell : Tor_model.Cell.t;
  mutable transmitted : bool;  (* has left this node's access link *)
  mutable sent_at : Engine.Time.t;  (* wire-departure instant *)
  mutable retransmitted : bool;
  mutable backoff : int;  (* doublings applied to the next RTO *)
  mutable attempts : int;  (* retransmissions of this cell so far *)
  mutable timer : Engine.Sim.handle option;
}

type t = {
  sb : Tor_model.Switchboard.t;
  circuit : Tor_model.Circuit_id.t;
  succ : Netsim.Node_id.t;
  controller : Circuitstart.Controller.t;
  sim : Engine.Sim.t;
  rto_min : Engine.Time.t;
  rto_initial : Engine.Time.t;
  max_retries : int;
  backlog : (Tor_model.Cell.t * (unit -> unit) option) Queue.t;
  inflight : (int, pending) Hashtbl.t;
  mutable next_seq : int;
  mutable sent : int;
  mutable retx : int;
  mutable spurious : int;
  mutable aborted : bool;
  mutable on_abort : (unit -> unit) option;
  (* Jacobson/Karels estimator state, in seconds. *)
  mutable srtt : float option;
  mutable rttvar : float;
}

let create ~sb ~circuit ~succ ~controller ?(rto_min = Engine.Time.ms 400)
    ?(rto_initial = Engine.Time.s 1) ?(max_retries = 8) () =
  if max_retries < 1 then invalid_arg "Hop_sender.create: max_retries must be positive";
  {
    sb;
    circuit;
    succ;
    controller;
    sim = Netsim.Network.sim (Tor_model.Switchboard.network sb);
    rto_min;
    rto_initial;
    max_retries;
    backlog = Queue.create ();
    inflight = Hashtbl.create 64;
    next_seq = 0;
    sent = 0;
    retx = 0;
    spurious = 0;
    aborted = false;
    on_abort = None;
    srtt = None;
    rttvar = 0.;
  }

let controller t = t.controller
let cwnd t = Circuitstart.Controller.cwnd t.controller
let inflight t = Hashtbl.length t.inflight
let queue_length t = Queue.length t.backlog
let cells_sent t = t.sent
let retransmissions t = t.retx
let spurious_feedback t = t.spurious
let idle t = Queue.is_empty t.backlog && Hashtbl.length t.inflight = 0
let aborted t = t.aborted
let set_on_abort t f = t.on_abort <- Some f

let srtt t = Option.map Engine.Time.of_sec_f t.srtt

let rto t =
  match t.srtt with
  | None -> t.rto_initial
  | Some srtt ->
      let rto = Engine.Time.of_sec_f (srtt +. (4. *. t.rttvar)) in
      Engine.Time.max rto t.rto_min

let max_backoff = 6

(* Kill the sender: cancel every pending timer, drop all state.  Once
   aborted a sender accepts no submissions, transmits nothing and
   ignores feedback. *)
let abort t =
  if not t.aborted then begin
    t.aborted <- true;
    Hashtbl.iter
      (fun _ p -> match p.timer with Some h -> Engine.Sim.cancel t.sim h | None -> ())
      t.inflight;
    Hashtbl.reset t.inflight;
    Queue.clear t.backlog
  end

(* Budget exhausted: the successor is unreachable (dead relay, cut
   link, or loss beyond what retransmission can mask).  Give up and
   tell the owner — retransmitting forever would spin the simulation
   without ever completing. *)
let trip t =
  if not t.aborted then begin
    abort t;
    match t.on_abort with Some f -> f () | None -> ()
  end

(* Put the cell on the wire.  All timing is anchored at the actual wire
   departure (the access link's serialization start): the RTT clock and
   the retransmission timer start there, and — on the first
   transmission only — [ack] fires there, because that instant is this
   node's act of forwarding (the predecessor's feedback is due then,
   not when the cell was merely queued).  The retransmission timer
   backs off exponentially: Karn's rule freezes the estimator during
   retransmissions, so without backoff an RTO below the loaded RTT
   would retransmit every cell forever (congestion collapse).  Each
   cell's retransmissions are bounded by [max_retries]; exhausting the
   budget trips the whole sender into its terminal aborted state. *)
let rec wire_send t ~hop_seq ?ack (p : pending) =
  let first = not p.transmitted in
  let attempt_on_wire = ref false in
  let retransmit () =
    if (not t.aborted) && Hashtbl.mem t.inflight hop_seq then begin
      if p.attempts >= t.max_retries then trip t
      else begin
        p.retransmitted <- true;
        p.backoff <- Stdlib.min max_backoff (p.backoff + 1);
        p.attempts <- p.attempts + 1;
        t.retx <- t.retx + 1;
        wire_send t ~hop_seq p
      end
    end
  in
  Tor_model.Switchboard.send_payload t.sb ~dst:t.succ ~size:Wire.cell_size
    ~on_transmit:(fun () ->
      attempt_on_wire := true;
      (* Disarm the queued-drop watchdog, if one was set. *)
      (match p.timer with Some h -> Engine.Sim.cancel t.sim h | None -> ());
      p.transmitted <- true;
      p.sent_at <- Engine.Sim.now t.sim;
      (if first then match ack with Some f -> f () | None -> ());
      let delay = Engine.Time.mul_int (rto t) (1 lsl p.backoff) in
      p.timer <- Some (Engine.Sim.schedule_after t.sim delay retransmit))
    (Wire.Bt_cell { hop_seq; cell = p.cell });
  (* Still sitting in our own access link's queue: a tail drop there
     would never fire on_transmit, so arm a watchdog that retries
     unless the cell made it onto the wire in the meantime. *)
  if not !attempt_on_wire then begin
    let delay = Engine.Time.mul_int (rto t) (1 lsl p.backoff) in
    p.timer <-
      Some
        (Engine.Sim.schedule_after t.sim delay (fun () ->
             if not !attempt_on_wire then retransmit ()))
  end

(* Move backlog cells onto the wire while the window allows. *)
let rec pump t =
  if
    (not t.aborted)
    && Hashtbl.length t.inflight < Circuitstart.Controller.send_allowance t.controller
    && not (Queue.is_empty t.backlog)
  then begin
    let cell, ack = Queue.pop t.backlog in
    let hop_seq = t.next_seq in
    t.next_seq <- hop_seq + 1;
    t.sent <- t.sent + 1;
    let p =
      { cell; transmitted = false; sent_at = Engine.Sim.now t.sim;
        retransmitted = false; backoff = 0; attempts = 0; timer = None }
    in
    Hashtbl.add t.inflight hop_seq p;
    wire_send t ~hop_seq ?ack p;
    pump t
  end

let submit t ?ack cell =
  if not t.aborted then begin
    Queue.push (cell, ack) t.backlog;
    pump t
  end

let sample_rtt t rtt_s =
  match t.srtt with
  | None ->
      t.srtt <- Some rtt_s;
      t.rttvar <- rtt_s /. 2.
  | Some srtt ->
      let err = rtt_s -. srtt in
      t.srtt <- Some (srtt +. (0.125 *. err));
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs err)

let on_feedback t ~hop_seq =
  if not t.aborted then
    match Hashtbl.find_opt t.inflight hop_seq with
    | None -> t.spurious <- t.spurious + 1
    | Some p ->
        Hashtbl.remove t.inflight hop_seq;
        (match p.timer with Some h -> Engine.Sim.cancel t.sim h | None -> ());
        let now = Engine.Sim.now t.sim in
        if not p.retransmitted then begin
          let rtt = Engine.Time.diff now p.sent_at in
          if Engine.Time.(rtt > Engine.Time.zero) then begin
            sample_rtt t (Engine.Time.to_sec_f rtt);
            (* If nothing is waiting locally, the window is not what
               limits this hop; rounds without pressure must not grow. *)
            let window_limited = not (Queue.is_empty t.backlog) in
            Circuitstart.Controller.on_feedback t.controller ~now ~rtt ~window_limited ()
          end
        end;
        pump t

(* In-flight cell state.  Pendings are pooled: a sender allocates one
   per concurrently-inflight cell and recycles it on feedback, so the
   steady-state forwarding path allocates no pending records, no timer
   entries and no callback closures — the two closures below ([timer]'s
   callback and [send_action]) are created once per pooled record and
   reused for every cell that passes through it. *)
type pending = {
  mutable cell : Tor_model.Cell.t;
  mutable hop_seq : int;
  mutable transmitted : bool;  (* has left this node's access link *)
  mutable sent_at : Engine.Time.t;  (* wire-departure instant *)
  mutable retransmitted : bool;
  mutable backoff : int;  (* doublings applied to the next RTO *)
  mutable attempts : int;  (* retransmissions of this cell so far *)
  mutable on_wire : bool;  (* did the current attempt reach the wire? *)
  mutable ack : (unit -> unit) option;
  mutable in_use : bool;  (* false once recycled into the pool *)
  (* Packet-id watermark of the current incarnation: the network's
     next packet id, stamped in [pump] before the first attempt is
     sent.  Every attempt of this incarnation gets an id >= the
     watermark; every packet of an earlier incarnation has a smaller
     one.  [transmit_done] uses it to reject stale wire-departure
     callbacks: a queued attempt's registration survives in the link's
     on_transmit table after feedback recycles this record (the link
     only discards it on tail drop or outage), so a leftover packet of
     a previous incarnation can still serialize later and fire
     [send_action] against the reused record. *)
  mutable wire_floor : int;
  (* One reusable clock per pending, serving as both the queued-drop
     watchdog and the retransmission timer — the two are never armed at
     once, so a single intrusive timer rearmed in place replaces the
     cancel-and-reschedule pair of the old design. *)
  mutable timer : Engine.Sim.Timer.t;
  (* Preallocated wire-departure callback handed to the switchboard on
     every attempt; receives the departing packet's id. *)
  mutable send_action : int -> unit;
}

type probe_event =
  | Wire_departure of {
      pkt_id : int;
      in_use : bool;
      wire_floor : int;
      applied : bool;
    }
  | Feedback of { hop_seq : int; next_hop_seq : int; known : bool }

(* Test-only escape hatch: checked law experiments flip this to
   re-create the pre-watermark behaviour (every wire-departure callback
   applied, stale or not) and watch the incarnation oracle catch it.
   Never set outside the harness. *)
let unsafe_disable_wire_floor = ref false

type t = {
  sb : Tor_model.Switchboard.t;
  net : Netsim.Network.t;
  circuit : Tor_model.Circuit_id.t;
  succ : Netsim.Node_id.t;
  controller : Circuitstart.Controller.t;
  sim : Engine.Sim.t;
  rto_min : Engine.Time.t;
  rto_initial : Engine.Time.t;
  max_retries : int;
  backlog : (Tor_model.Cell.t * (unit -> unit) option) Queue.t;
  inflight : (int, pending) Hashtbl.t;
  mutable free : pending list;  (* recycled pendings *)
  mutable next_seq : int;
  mutable sent : int;
  mutable retx : int;
  mutable spurious : int;
  mutable feedbacks : int;  (* feedbacks accepted (matched an inflight cell) *)
  (* Passive observer of wire departures and feedbacks, for invariant
     oracles.  Must not call back into the sender. *)
  mutable probe : (probe_event -> unit) option;
  mutable aborted : bool;
  mutable on_abort : (unit -> unit) option;
  (* Bytes currently charged against the switchboard's per-circuit
     occupancy (backlog + in flight, at Wire.cell_size per cell).
     Credited cell-by-cell on feedback and wholesale on abort, so the
     relay's resource accounting always matches this sender's held
     state. *)
  mutable charged : int;
  (* Jacobson/Karels estimator state, in seconds. *)
  mutable srtt : float option;
  mutable rttvar : float;
}

let create ~sb ~circuit ~succ ~controller ?(rto_min = Engine.Time.ms 400)
    ?(rto_initial = Engine.Time.s 1) ?(max_retries = 8) () =
  if max_retries < 1 then invalid_arg "Hop_sender.create: max_retries must be positive";
  let net = Tor_model.Switchboard.network sb in
  {
    sb;
    net;
    circuit;
    succ;
    controller;
    sim = Netsim.Network.sim net;
    rto_min;
    rto_initial;
    max_retries;
    backlog = Queue.create ();
    inflight = Hashtbl.create 64;
    free = [];
    next_seq = 0;
    sent = 0;
    retx = 0;
    spurious = 0;
    feedbacks = 0;
    probe = None;
    aborted = false;
    on_abort = None;
    charged = 0;
    srtt = None;
    rttvar = 0.;
  }

let controller t = t.controller
let cwnd t = Circuitstart.Controller.cwnd t.controller
let inflight t = Hashtbl.length t.inflight
let queue_length t = Queue.length t.backlog
let cells_sent t = t.sent
let retransmissions t = t.retx
let spurious_feedback t = t.spurious
let feedback_received t = t.feedbacks
let next_hop_seq t = t.next_seq
let set_probe t f = t.probe <- f
let idle t = Queue.is_empty t.backlog && Hashtbl.length t.inflight = 0
let aborted t = t.aborted
let set_on_abort t f = t.on_abort <- Some f
let charged_bytes t = t.charged

let srtt t = Option.map Engine.Time.of_sec_f t.srtt

let rto t =
  match t.srtt with
  | None -> t.rto_initial
  | Some srtt ->
      let rto = Engine.Time.of_sec_f (srtt +. (4. *. t.rttvar)) in
      Engine.Time.max rto t.rto_min

let max_backoff = 6

(* Kill the sender: disarm every pending timer, drop all state.  Once
   aborted a sender accepts no submissions, transmits nothing and
   ignores feedback. *)
let abort t =
  if not t.aborted then begin
    t.aborted <- true;
    Hashtbl.iter
      (fun _ p ->
        Engine.Sim.Timer.cancel t.sim p.timer;
        p.in_use <- false;
        p.ack <- None)
      t.inflight;
    Hashtbl.reset t.inflight;
    Queue.clear t.backlog;
    (* Release every byte still charged against the node's occupancy
       accounting in one move. *)
    if t.charged > 0 then begin
      let held = t.charged in
      t.charged <- 0;
      Tor_model.Switchboard.credit t.sb t.circuit held
    end
  end

(* Budget exhausted: the successor is unreachable (dead relay, cut
   link, or loss beyond what retransmission can mask).  Give up and
   tell the owner — retransmitting forever would spin the simulation
   without ever completing. *)
let trip t =
  if not t.aborted then begin
    abort t;
    match t.on_abort with Some f -> f () | None -> ()
  end

(* Put the cell on the wire.  All timing is anchored at the actual wire
   departure (the access link's serialization start): the RTT clock and
   the retransmission timer start there, and — on the first
   transmission only — [ack] fires there, because that instant is this
   node's act of forwarding (the predecessor's feedback is due then,
   not when the cell was merely queued).  The retransmission timer
   backs off exponentially: Karn's rule freezes the estimator during
   retransmissions, so without backoff an RTO below the loaded RTT
   would retransmit every cell forever (congestion collapse).  Each
   cell's retransmissions are bounded by [max_retries]; exhausting the
   budget trips the whole sender into its terminal aborted state. *)
let rec wire_send t (p : pending) =
  p.on_wire <- false;
  Tor_model.Switchboard.send_payload t.sb ~dst:t.succ ~size:Wire.cell_size
    ~on_transmit:p.send_action
    (Wire.Bt_cell { hop_seq = p.hop_seq; cell = p.cell });
  (* Still sitting in our own access link's queue: a tail drop there
     would never fire [send_action], so arm the watchdog so the cell is
     retried unless it makes it onto the wire in the meantime. *)
  if not p.on_wire then begin
    let delay = Engine.Time.mul_int (rto t) (1 lsl p.backoff) in
    Engine.Sim.Timer.arm_after t.sim p.timer delay
  end

(* The pending's timer fired: either the queued-drop watchdog (the
   attempt never reached the wire) or the retransmission timer (it did,
   but no feedback arrived in time).  Both mean the same thing —
   retransmit, or trip the sender once the budget is spent. *)
and on_timer t (p : pending) =
  if (not t.aborted) && p.in_use && Hashtbl.mem t.inflight p.hop_seq then begin
    if p.attempts >= t.max_retries then trip t
    else begin
      p.retransmitted <- true;
      p.backoff <- Stdlib.min max_backoff (p.backoff + 1);
      p.attempts <- p.attempts + 1;
      t.retx <- t.retx + 1;
      wire_send t p
    end
  end

(* Wire departure of an attempt: stop the watchdog, stamp the RTT
   clock, deliver the one-shot [ack], and rearm the same timer as the
   retransmission clock.  Guarded against stale firings (see
   [wire_floor]): a leftover registration from before this record was
   recycled — or one firing while the record sits idle in the pool —
   must be a no-op, or it would ack the wrong cell, consume its
   first-transmit flag, corrupt the RTT clock and rearm its timer.
   Any attempt of the current incarnation passes the watermark test,
   including a firing that happens synchronously inside [wire_send]'s
   send call (its id is the watermark itself or above). *)
and transmit_done t (p : pending) pkt_id =
  let lawful = p.in_use && pkt_id >= p.wire_floor in
  (* With the watermark disabled (harness fault injection) stale
     firings are applied anyway, re-creating the pre-fix bug the
     incarnation oracle exists to catch. *)
  let applied = lawful || (!unsafe_disable_wire_floor && p.in_use) in
  (match t.probe with
  | Some probe ->
      probe
        (Wire_departure { pkt_id; in_use = p.in_use; wire_floor = p.wire_floor; applied })
  | None -> ());
  if applied then begin
    p.on_wire <- true;
    Engine.Sim.Timer.cancel t.sim p.timer;
    let first = not p.transmitted in
    p.transmitted <- true;
    p.sent_at <- Engine.Sim.now t.sim;
    (if first then match p.ack with Some f -> f () | None -> ());
    let delay = Engine.Time.mul_int (rto t) (1 lsl p.backoff) in
    Engine.Sim.Timer.arm_after t.sim p.timer delay
  end

(* Take a pending from the pool, or build a fresh one (cold path: only
   when the inflight population reaches a new high).  The placeholder
   cell is never sent — [pump] overwrites it before use. *)
let alloc_pending t =
  match t.free with
  | p :: rest ->
      t.free <- rest;
      p
  | [] ->
      let p =
        {
          cell = Tor_model.Cell.make t.circuit Tor_model.Cell.Destroy;
          hop_seq = -1;
          transmitted = false;
          sent_at = Engine.Time.zero;
          retransmitted = false;
          backoff = 0;
          attempts = 0;
          on_wire = false;
          ack = None;
          in_use = false;
          wire_floor = max_int;
          timer = Engine.Sim.Timer.create t.sim (fun () -> ());
          send_action = (fun _ -> ());
        }
      in
      p.timer <- Engine.Sim.Timer.create t.sim (fun () -> on_timer t p);
      p.send_action <- (fun pkt_id -> transmit_done t p pkt_id);
      p

(* Return a pending to the pool.  The timer is disarmed eagerly, so a
   recycled record can never be fired by a stale clock.  [send_action]
   registrations for still-queued attempts cannot be withdrawn here —
   the link owns them — but [wire_floor] makes any such late firing a
   no-op, both while the record sits in the pool ([in_use] is false)
   and after it is reused (the stale packet's id is below the new
   incarnation's watermark). *)
let release t p =
  Engine.Sim.Timer.cancel t.sim p.timer;
  p.in_use <- false;
  p.ack <- None;
  t.free <- p :: t.free

(* Move backlog cells onto the wire while the window allows. *)
let rec pump t =
  if
    (not t.aborted)
    && Hashtbl.length t.inflight < Circuitstart.Controller.send_allowance t.controller
    && not (Queue.is_empty t.backlog)
  then begin
    let cell, ack = Queue.pop t.backlog in
    let hop_seq = t.next_seq in
    t.next_seq <- hop_seq + 1;
    t.sent <- t.sent + 1;
    let p = alloc_pending t in
    p.cell <- cell;
    p.hop_seq <- hop_seq;
    p.transmitted <- false;
    p.sent_at <- Engine.Sim.now t.sim;
    p.retransmitted <- false;
    p.backoff <- 0;
    p.attempts <- 0;
    p.ack <- ack;
    p.in_use <- true;
    (* Stamp the incarnation watermark before the first attempt: every
       packet this incarnation sends gets an id at or above it, every
       stale registration from a previous incarnation sits below. *)
    p.wire_floor <- Netsim.Network.next_packet_id t.net;
    Hashtbl.add t.inflight hop_seq p;
    wire_send t p;
    pump t
  end

let submit t ?ack cell =
  if not t.aborted then begin
    Queue.push (cell, ack) t.backlog;
    t.charged <- t.charged + Wire.cell_size;
    (* The charge can trip the node's OOM responder, which may abort
       this very sender re-entrantly (crediting the bytes back and
       clearing the backlog) — hence the second [aborted] check before
       pumping. *)
    Tor_model.Switchboard.charge t.sb t.circuit Wire.cell_size;
    if not t.aborted then pump t
  end

let sample_rtt t rtt_s =
  match t.srtt with
  | None ->
      t.srtt <- Some rtt_s;
      t.rttvar <- rtt_s /. 2.
  | Some srtt ->
      let err = rtt_s -. srtt in
      t.srtt <- Some (srtt +. (0.125 *. err));
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs err)

let on_feedback t ~hop_seq =
  if not t.aborted then
    let entry = Hashtbl.find_opt t.inflight hop_seq in
    (match t.probe with
    | Some probe ->
        probe
          (Feedback
             { hop_seq; next_hop_seq = t.next_seq; known = Option.is_some entry })
    | None -> ());
    match entry with
    | None -> t.spurious <- t.spurious + 1
    | Some p ->
        t.feedbacks <- t.feedbacks + 1;
        Hashtbl.remove t.inflight hop_seq;
        let retransmitted = p.retransmitted and sent_at = p.sent_at in
        release t p;
        t.charged <- t.charged - Wire.cell_size;
        Tor_model.Switchboard.credit t.sb t.circuit Wire.cell_size;
        let now = Engine.Sim.now t.sim in
        if not retransmitted then begin
          let rtt = Engine.Time.diff now sent_at in
          if Engine.Time.(rtt > Engine.Time.zero) then begin
            sample_rtt t (Engine.Time.to_sec_f rtt);
            (* If nothing is waiting locally, the window is not what
               limits this hop; rounds without pressure must not grow. *)
            let window_limited = not (Queue.is_empty t.backlog) in
            Circuitstart.Controller.on_feedback t.controller ~now ~rtt ~window_limited ()
          end
        end;
        pump t

(** A fixed-size transfer over one circuit, relayed hop-by-hop with
    BackTap and a pluggable startup strategy.

    Deployment wires every node on the path:

    - the {b client} owns a {!Hop_sender} towards the guard and feeds
      it the whole transfer (the window, not the application, paces the
      wire);
    - each {b relay} owns a sender towards its successor; an incoming
      cell is peeled one onion layer and submitted with an [ack] that
      emits the BackTap feedback to the predecessor at the forwarding
      instant;
    - the {b server} delivers exposed cells to the sink and emits
      feedback immediately (delivery is its act of forwarding).

    Every hop runs its own controller instance with the same strategy
    and parameters — the paper's backpropagation is an emergent
    property of this arrangement, which {!sender_at} lets tests
    observe hop by hop. *)

type t

type state =
  | Running
  | Completed  (** Every stream's sink has every byte. *)
  | Failed
      (** A hop sender exhausted its retransmission budget: the circuit
          is dead, all hop state has been torn down.  Terminal. *)

val deploy :
  node_of:(Netsim.Node_id.t -> Node.t) ->
  circuit:Tor_model.Circuit.t ->
  bytes:int ->
  strategy:Circuitstart.Controller.strategy ->
  ?params:Circuitstart.Params.t ->
  ?trace:Engine.Trace.t * string ->
  ?rto_min:Engine.Time.t ->
  ?rto_initial:Engine.Time.t ->
  ?max_retries:int ->
  ?stream_id:int ->
  ?offset:int ->
  ?on_complete:(Engine.Time.t -> unit) ->
  ?on_fail:(Engine.Time.t -> unit) ->
  unit ->
  t
(** Prepare (but do not start) a [bytes]-byte transfer.  [offset]
    (default 0) resumes from that byte: the first [offset] bytes are
    treated as already delivered by a previous circuit generation, so
    only the remainder crosses the wire (see {!Tor_model.Stream} for
    the cell-alignment requirement).  [node_of] must
    return the BackTap node state of every node on the path.  With
    [trace = (registry, prefix)], each hop's window is recorded as
    series ["<prefix>/cwnd/<position>"] in cells (position 0 = client),
    with an initial point at deployment time, and a circuit failure is
    recorded as an {!Engine.Trace.Abort} event under [prefix].
    [rto_min], [rto_initial] and [max_retries] are handed to every
    {!Hop_sender} (see {!Hop_sender.create} for defaults); together
    they bound how long a dead successor can stall the circuit before
    it fails.  [on_complete] fires once when the sink has every byte;
    [on_fail] fires once if the circuit fails instead.  The two are
    mutually exclusive. *)

val deploy_streams :
  node_of:(Netsim.Node_id.t -> Node.t) ->
  circuit:Tor_model.Circuit.t ->
  streams:(int * int) list ->
  strategy:Circuitstart.Controller.strategy ->
  ?params:Circuitstart.Params.t ->
  ?trace:Engine.Trace.t * string ->
  ?rto_min:Engine.Time.t ->
  ?rto_initial:Engine.Time.t ->
  ?max_retries:int ->
  ?offsets:(int * int) list ->
  ?on_complete:(Engine.Time.t -> unit) ->
  ?on_fail:(Engine.Time.t -> unit) ->
  unit ->
  t
(** Multiplex several application streams over one circuit, as Tor
    does: [streams] is a list of [(stream_id, bytes)] with distinct
    ids; their cells interleave round-robin at the client (Tor's cell
    scheduler), share every hop window, and are demultiplexed to
    per-stream sinks at the server.  [offsets] maps stream ids to
    resume offsets (missing streams start at byte 0).  [on_complete]
    fires when the last stream finishes.  Raises [Invalid_argument] on
    an empty list, duplicate ids, or an offset for an unknown
    stream. *)

val start : t -> unit
(** Inject the transfer at the client.  Raises [Invalid_argument] if
    called twice. *)

val circuit : t -> Tor_model.Circuit.t
val complete : t -> bool
val first_sent_at : t -> Engine.Time.t option

val state : t -> state

val failed : t -> bool
(** The circuit died before completing. *)

val failed_at : t -> Engine.Time.t option
(** When the circuit failed ([None] unless {!failed}). *)

val failed_hop : t -> int option
(** The path position (0 = client) whose sender tripped the failure. *)

val completed_at : t -> Engine.Time.t option
(** When the last byte of the *last* stream arrived ([None] until every
    stream is complete). *)

val time_to_last_byte : t -> Engine.Time.t option
(** [completed_at - first_sent_at]; [None] until complete. *)

val delivered_bytes : t -> int
(** Sum over streams of the contiguous delivered prefix at the sink
    (each counting its resume offset).  Unlike raw received bytes it
    never counts cells beyond a hole, so after a failure it is the safe
    offset set for the next circuit generation.  Stays readable after
    {!teardown}. *)

val sink : t -> Tor_model.Stream.Sink.t
(** The first stream's sink (the only one for {!deploy}). *)

val stream_sink : t -> int -> Tor_model.Stream.Sink.t option
(** A specific stream's sink, by id. *)

val stream_completed_at : t -> int -> Engine.Time.t option
(** When that stream's last byte arrived. *)

val stream_ids : t -> int list

val sender_at : t -> int -> Hop_sender.t option
(** The hop sender at path position [i] (0 = client); [None] for the
    server position or out of range. *)

val senders : t -> Hop_sender.t list
(** All hop senders, client first. *)

val cell_latency_stats : t -> Engine.Stats.Online.t
(** End-to-end per-cell latency samples: client wire departure to
    server delivery (duplicates from retransmission sample once, at
    first delivery).  This is the interactivity metric — it exposes
    queueing along the whole circuit. *)

val total_retransmissions : t -> int

val teardown : t -> unit
(** Unregister the circuit's flows at every node. *)

type stream_state = {
  stream_id : int;
  source : Tor_model.Stream.Source.t;
  str_sink : Tor_model.Stream.Sink.t;
  mutable str_completed_at : Engine.Time.t option;
}

type state = Running | Completed | Failed

type t = {
  circuit : Tor_model.Circuit.t;
  node_of : Netsim.Node_id.t -> Node.t;
  streams : stream_state list;  (* at least one; cells interleave round-robin *)
  sim : Engine.Sim.t;
  senders : Hop_sender.t array;  (* position 0 = client, one per hop *)
  trace : (Engine.Trace.t * string) option;
  (* (stream, seq) -> client wire-departure instant, for end-to-end cell
     latency; entries are consumed at first delivery so duplicates do
     not sample twice. *)
  cell_departures : (int * int, Engine.Time.t) Hashtbl.t;
  cell_latency : Engine.Stats.Online.t;
  mutable started : bool;
  mutable first_sent_at : Engine.Time.t option;
  mutable failed_at : Engine.Time.t option;
  mutable failed_hop : int option;
  mutable on_complete : (Engine.Time.t -> unit) option;
  mutable on_fail : (Engine.Time.t -> unit) option;
}

let stream_of t id = List.find_opt (fun s -> s.stream_id = id) t.streams
let all_complete t = List.for_all (fun s -> Tor_model.Stream.Sink.complete s.str_sink) t.streams

let sb_of t node = Node.switchboard (t.node_of node)

let teardown t =
  List.iter
    (fun node ->
      Node.unregister_flow (t.node_of node) t.circuit.Tor_model.Circuit.id)
    (Tor_model.Circuit.nodes t.circuit)

(* Hop [pos] exhausted its retransmission budget: its successor is
   unreachable, so the circuit is dead.  Fail exactly once — kill the
   remaining hop senders, detach every flow, and tell the owner — so
   the simulation winds down instead of spinning on retransmissions. *)
let fail t ~pos =
  if t.failed_at = None && not (all_complete t) then begin
    let now = Engine.Sim.now t.sim in
    t.failed_at <- Some now;
    t.failed_hop <- Some pos;
    Array.iter Hop_sender.abort t.senders;
    teardown t;
    (match t.trace with
    | Some (registry, prefix) ->
        Engine.Trace.record_event registry Engine.Trace.Abort ~subject:prefix
          ~detail:(Printf.sprintf "hop %d retransmission budget exhausted" pos)
          now
    | None -> ());
    match t.on_fail with Some f -> f now | None -> ()
  end

let feedback_to t node ~pred ~hop_seq =
  Tor_model.Switchboard.send_payload (sb_of t node) ~dst:pred ~size:Wire.feedback_size
    (Wire.Bt_feedback { circuit = t.circuit.Tor_model.Circuit.id; hop_seq })

(* Flow at a forwarding relay (has both a predecessor and a successor). *)
let relay_flow t ~node ~pred ~sender =
  {
    Node.on_cell =
      (fun ~from ~hop_seq cell ->
        if Netsim.Node_id.equal from pred then
          let peeled = Tor_model.Crypto_sim.peel cell in
          Hop_sender.submit sender
            ~ack:(fun () -> feedback_to t node ~pred ~hop_seq)
            peeled
        else ());
    on_feedback = (fun ~hop_seq -> Hop_sender.on_feedback sender ~hop_seq);
  }

(* Flow at the server endpoint: deliver and acknowledge immediately. *)
let server_flow t ~pred =
  let server = t.circuit.Tor_model.Circuit.server in
  {
    Node.on_cell =
      (fun ~from ~hop_seq cell ->
        if Netsim.Node_id.equal from pred then begin
          (match Tor_model.Crypto_sim.exposed cell with
          | Some cmd ->
              let now = Engine.Sim.now t.sim in
              (match cmd with
              | Tor_model.Cell.Relay_data { stream_id; seq; _ } -> (
                  (match Hashtbl.find_opt t.cell_departures (stream_id, seq) with
                  | Some dep ->
                      Hashtbl.remove t.cell_departures (stream_id, seq);
                      Engine.Stats.Online.add t.cell_latency
                        (Engine.Time.to_sec_f (Engine.Time.diff now dep))
                  | None -> ());
                  match stream_of t stream_id with
                  | Some st ->
                      let was_complete = Tor_model.Stream.Sink.complete st.str_sink in
                      Tor_model.Stream.Sink.deliver st.str_sink ~now cmd;
                      if (not was_complete) && Tor_model.Stream.Sink.complete st.str_sink
                      then begin
                        st.str_completed_at <- Some now;
                        if all_complete t then begin
                          match t.on_complete with Some f -> f now | None -> ()
                        end
                      end
                  | None -> () (* data for an unknown stream: drop *))
              | Tor_model.Cell.Relay_sendme _ | Tor_model.Cell.Relay_end _ -> ())
          | None ->
              (* A still-wrapped cell at the server is a layering bug. *)
              failwith "Backtap.Transfer: cell reached server with layers left");
          feedback_to t server ~pred ~hop_seq
        end);
    on_feedback = (fun ~hop_seq:_ -> ());
  }

let client_flow ~sender =
  {
    Node.on_cell = (fun ~from:_ ~hop_seq:_ _cell -> ());
    on_feedback = (fun ~hop_seq -> Hop_sender.on_feedback sender ~hop_seq);
  }

let deploy_streams ~node_of ~circuit ~streams ~strategy
    ?(params = Circuitstart.Params.default) ?trace ?rto_min ?rto_initial
    ?max_retries ?(offsets = []) ?on_complete ?on_fail () =
  if streams = [] then invalid_arg "Backtap.Transfer.deploy_streams: no streams";
  let ids = List.map fst streams in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Backtap.Transfer.deploy_streams: duplicate stream id";
  List.iter
    (fun (id, _) ->
      if not (List.mem_assoc id streams) then
        invalid_arg "Backtap.Transfer.deploy_streams: offset for unknown stream")
    offsets;
  let offset_of id = Option.value ~default:0 (List.assoc_opt id offsets) in
  let nodes = Tor_model.Circuit.nodes circuit in
  let node_arr = Array.of_list nodes in
  let hops = Array.length node_arr - 1 in
  let client_sb = Node.switchboard (node_of circuit.Tor_model.Circuit.client) in
  let sim = Netsim.Network.sim (Tor_model.Switchboard.network client_sb) in
  let make_sender pos =
    let controller = Circuitstart.Controller.create ~params strategy in
    Circuitstart.Controller.set_debug_label controller
      (Printf.sprintf "%s/hop%d"
         (Tor_model.Circuit_id.to_int circuit.Tor_model.Circuit.id |> string_of_int)
         pos);
    (match trace with
    | Some (registry, prefix) ->
        let key = Printf.sprintf "%s/cwnd/%d" prefix pos in
        Engine.Trace.record registry key (Engine.Sim.now sim)
          (float_of_int (Circuitstart.Controller.cwnd controller));
        Circuitstart.Controller.set_on_change controller (fun ~now v ->
            Engine.Trace.record registry key now (float_of_int v))
    | None -> ());
    Hop_sender.create
      ~sb:(Node.switchboard (node_of node_arr.(pos)))
      ~circuit:circuit.Tor_model.Circuit.id ~succ:node_arr.(pos + 1) ~controller
      ?rto_min ?rto_initial ?max_retries ()
  in
  let senders = Array.init hops make_sender in
  let t =
    {
      circuit;
      node_of;
      streams =
        List.map
          (fun (stream_id, bytes) ->
            let start_byte = offset_of stream_id in
            { stream_id;
              source =
                Tor_model.Stream.Source.create ~start_byte ~stream_id ~bytes ();
              str_sink =
                Tor_model.Stream.Sink.create ~start_byte ~expected_bytes:bytes ();
              str_completed_at = None })
          streams;
      sim;
      senders;
      trace;
      cell_departures = Hashtbl.create 256;
      cell_latency = Engine.Stats.Online.create ();
      started = false;
      first_sent_at = None;
      failed_at = None;
      failed_hop = None;
      on_complete;
      on_fail;
    }
  in
  Array.iteri (fun pos s -> Hop_sender.set_on_abort s (fun () -> fail t ~pos)) senders;
  (* Client flow at position 0. *)
  Node.register_flow
    (node_of circuit.Tor_model.Circuit.client)
    circuit.Tor_model.Circuit.id
    (client_flow ~sender:senders.(0));
  (* Relay flows at positions 1 .. hops-1.  Each relay also gets a kill
     switch: when its control plane OOM-kills this circuit, the local
     sender aborts silently, dropping the queued bytes at once (the
     client learns of the kill from the relay's DESTROY, not from
     here). *)
  for pos = 1 to hops - 1 do
    Node.register_flow (node_of node_arr.(pos)) circuit.Tor_model.Circuit.id
      (relay_flow t ~node:node_arr.(pos) ~pred:node_arr.(pos - 1) ~sender:senders.(pos));
    Node.set_kill (node_of node_arr.(pos)) circuit.Tor_model.Circuit.id
      (fun () -> Hop_sender.abort senders.(pos))
  done;
  (* Server flow at the last position. *)
  Node.register_flow
    (node_of circuit.Tor_model.Circuit.server)
    circuit.Tor_model.Circuit.id
    (server_flow t ~pred:node_arr.(hops - 1));
  t

let deploy ~node_of ~circuit ~bytes ~strategy ?params ?trace ?rto_min ?rto_initial
    ?max_retries ?(stream_id = 0) ?(offset = 0) ?on_complete ?on_fail () =
  deploy_streams ~node_of ~circuit ~streams:[ (stream_id, bytes) ] ~strategy ?params
    ?trace ?rto_min ?rto_initial ?max_retries ~offsets:[ (stream_id, offset) ]
    ?on_complete ?on_fail ()

let start t =
  if t.started then invalid_arg "Backtap.Transfer.start: already started";
  t.started <- true;
  t.first_sent_at <- Some (Engine.Sim.now t.sim);
  let layers = Tor_model.Circuit.layer_count t.circuit in
  let submit cell =
    (* Stamp the client's wire departure (not the submit — the whole
       file is queued up-front) for end-to-end latency. *)
    let ack =
      match Tor_model.Cell.relay_cmd cell with
      | Some (Tor_model.Cell.Relay_data { stream_id; seq; _ }) ->
          Some
            (fun () ->
              Hashtbl.replace t.cell_departures (stream_id, seq) (Engine.Sim.now t.sim))
      | _ -> None
    in
    Hop_sender.submit t.senders.(0) ?ack cell
  in
  (* Round-robin across streams so concurrent streams share the circuit
     fairly (as Tor's cell scheduler interleaves streams). *)
  let rec feed pending =
    let progressed, still =
      List.fold_left
        (fun (progressed, still) st ->
          match
            Tor_model.Stream.Source.next_cell st.source t.circuit.Tor_model.Circuit.id
              ~layers
          with
          | Some cell ->
              submit cell;
              (true, st :: still)
          | None -> (progressed, still))
        (false, []) pending
    in
    if progressed then feed (List.rev still)
  in
  feed t.streams

let circuit t = t.circuit
let complete t = all_complete t
let first_sent_at t = t.first_sent_at
let failed t = t.failed_at <> None
let failed_at t = t.failed_at
let failed_hop t = t.failed_hop

let state t =
  if failed t then Failed else if all_complete t then Completed else Running

let completed_at t =
  (* The instant the *last* stream finished, once every stream has. *)
  List.fold_left
    (fun acc st ->
      match (acc, st.str_completed_at) with
      | Some a, Some b -> Some (Engine.Time.max a b)
      | _, None | None, _ -> None)
    (match t.streams with
    | st :: _ -> st.str_completed_at
    | [] -> None)
    (match t.streams with [] -> [] | _ :: rest -> rest)

let time_to_last_byte t =
  match (t.first_sent_at, completed_at t) with
  | Some a, Some b -> Some (Engine.Time.diff b a)
  | _ -> None

let delivered_bytes t =
  List.fold_left
    (fun acc st -> acc + Tor_model.Stream.Sink.delivered_bytes st.str_sink)
    0 t.streams

let sink t =
  match t.streams with st :: _ -> st.str_sink | [] -> assert false

let stream_sink t stream_id = Option.map (fun st -> st.str_sink) (stream_of t stream_id)

let stream_completed_at t stream_id =
  Option.bind (stream_of t stream_id) (fun st -> st.str_completed_at)

let stream_ids t = List.map (fun st -> st.stream_id) t.streams

let sender_at t pos =
  if pos >= 0 && pos < Array.length t.senders then Some t.senders.(pos) else None

let senders t = Array.to_list t.senders

let cell_latency_stats t = t.cell_latency

let total_retransmissions t =
  Array.fold_left (fun acc s -> acc + Hop_sender.retransmissions s) 0 t.senders

type flow = {
  on_cell : from:Netsim.Node_id.t -> hop_seq:int -> Tor_model.Cell.t -> unit;
  on_feedback : hop_seq:int -> unit;
}

type t = {
  sb : Tor_model.Switchboard.t;
  flows : (int, flow) Hashtbl.t;
  (* Per-circuit kill switches, pulled by the control plane's OOM
     responder (via [Switchboard.kill_data]).  Kept separate from
     [flows] so deployments that never face overload pay nothing. *)
  kills : (int, unit -> unit) Hashtbl.t;
  mutable orphans : int;
}

let dispatch t (p : Netsim.Packet.t) =
  match p.payload with
  | Wire.Bt_cell { hop_seq; cell } -> (
      match Hashtbl.find_opt t.flows (Tor_model.Circuit_id.to_int cell.circuit) with
      | Some flow -> flow.on_cell ~from:p.src ~hop_seq cell
      | None -> t.orphans <- t.orphans + 1)
  | Wire.Bt_feedback { circuit; hop_seq } -> (
      match Hashtbl.find_opt t.flows (Tor_model.Circuit_id.to_int circuit) with
      | Some flow -> flow.on_feedback ~hop_seq
      | None -> t.orphans <- t.orphans + 1)
  | _ -> t.orphans <- t.orphans + 1

let install sb =
  let t =
    { sb; flows = Hashtbl.create 16; kills = Hashtbl.create 16; orphans = 0 }
  in
  Tor_model.Switchboard.set_aux_handler sb (dispatch t);
  Tor_model.Switchboard.set_data_kill sb (fun circuit ->
      match Hashtbl.find_opt t.kills (Tor_model.Circuit_id.to_int circuit) with
      | Some kill -> kill ()
      | None -> ());
  t

let switchboard t = t.sb

let register_flow t circuit flow =
  let key = Tor_model.Circuit_id.to_int circuit in
  if Hashtbl.mem t.flows key then
    invalid_arg
      (Format.asprintf "Backtap.Node.register_flow: %a already registered"
         Tor_model.Circuit_id.pp circuit);
  Hashtbl.add t.flows key flow

let set_kill t circuit kill =
  Hashtbl.replace t.kills (Tor_model.Circuit_id.to_int circuit) kill

let unregister_flow t circuit =
  let key = Tor_model.Circuit_id.to_int circuit in
  Hashtbl.remove t.flows key;
  Hashtbl.remove t.kills key

let orphan_messages t = t.orphans

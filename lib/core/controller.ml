type strategy = Circuit_start | Slow_start | Fixed of int | Predictive
type phase = Ramp_up | Avoidance

(* Test hook: when set, a predictive commit takes the *last* step of
   the planned trajectory instead of the first — the receding-horizon
   discipline (plan H rounds, commit one) deliberately broken so the
   plan-bounds oracle can prove it notices. *)
let unsafe_disable_plan_bounds = ref false

type t = {
  params : Params.t;
  strategy : strategy;
  mutable cwnd : int;
  mutable phase : phase;
  mutable base_rtt : Engine.Time.t option;
  mutable latest_diff : float option;
  (* Round bookkeeping: a round ends after [round_target] feedbacks.
     [round_base] is the window at the start of the round; during a
     Circuit_start ramp-up round the send allowance interpolates from
     it to the doubled [cwnd]. *)
  mutable round_target : int;
  mutable round_base : int;
  mutable acked_in_round : int;
  mutable round_rtt_sum : float;  (* seconds, for the round mean *)
  mutable round_rtt_min : float;  (* seconds, for the ramp-up exit test *)
  mutable round_rtt_max : float;
      (* seconds; [round_rtt_max = round_rtt_min] over a whole round is
         the zero-variance signal that makes the predictive link model
         unidentifiable. *)
  mutable round_started_at : Engine.Time.t option;
  (* Delivery rate of the previous ramp-up round plus consecutive-round
     counters for the exit decision — the ramp ends when the feedback
     rate stops accelerating persistently, not merely when RTTs inflate
     (a successor that is itself still ramping inflates RTTs and stalls
     the rate for a round at a time). *)
  mutable prev_rate : float option;
  mutable stall_rounds : int;
  mutable queue_rounds : int;
  mutable limited_in_round : bool;
  mutable rounds : int;
  mutable exits : int;
  mutable exit_cwnd : int option;
  mutable exit_acked : int option;
  (* Countdown: re-apply rate-based compensation over the first few
     avoidance rounds.  Right after a ramp-up exit the bottleneck is
     still draining the overshoot at exactly its service rate, so the
     sliding feedback count measured then is the cleanest estimate of
     the bandwidth-delay product; taking the running maximum over a few
     rounds rides out a cascade of neighbouring hops that are still
     compensating themselves. *)
  mutable recalibrate : int;
  mutable calm_rounds : int;
  (* Timestamps of feedbacks within the last baseRtt, for rate-based
     overshooting compensation. *)
  recent_feedbacks : Engine.Time.t Queue.t;
  (* Sliding-rate readings of the last few rounds.  A hop whose
     feedback stream is momentarily starved (a successor applying its
     own compensation) must not mistake the trough for the path rate:
     compensation uses the recent peak. *)
  rate_history : int array;
  mutable rate_history_idx : int;
  mutable round_count1_max : int;  (* best 1-RTT feedback count this round *)
  mutable samples_total : int;
  (* Predictive strategy: the receding-horizon plan.  Preallocated at
     [horizon] length and refilled in place once per round — planning
     never touches the per-feedback hot path, and committing the first
     step allocates nothing. *)
  plan : int array;
  mutable plan_generation : int;
  mutable fallen_back : bool;
      (* Permanent: the model was unidentifiable at a planning instant
         (or [horizon = 1] left nothing to plan) and the controller
         degenerated to plain Vegas avoidance. *)
  (* Change hooks, fired in registration order: the transfer's cwnd
     tracer and the invariant oracles can observe independently. *)
  mutable on_change : (now:Engine.Time.t -> int -> unit) list;
  mutable debug_label : string;
}

let debug =
  match Sys.getenv_opt "CIRCUITSTART_DEBUG" with Some _ -> true | None -> false

let create ?(params = Params.default) strategy =
  let params =
    match Params.validate params with
    | Ok p -> p
    | Error msg -> invalid_arg ("Controller.create: " ^ msg)
  in
  let cwnd, phase =
    match strategy with
    | Fixed n ->
        if n < 1 then invalid_arg "Controller.create: Fixed window must be positive";
        (n, Avoidance)
    | Circuit_start | Slow_start -> (params.initial_cwnd, Ramp_up)
    | Predictive ->
        (* A one-step horizon cannot plan a trajectory: the strategy
           degenerates to reactive Vegas avoidance from the start. *)
        if params.horizon <= 1 then (params.initial_cwnd, Avoidance)
        else (params.initial_cwnd, Ramp_up)
  in
  {
    params;
    strategy;
    cwnd;
    phase;
    base_rtt = None;
    latest_diff = None;
    round_target = cwnd;
    round_base = cwnd;
    acked_in_round = 0;
    round_rtt_sum = 0.;
    round_rtt_min = Float.infinity;
    round_rtt_max = 0.;
    round_started_at = None;
    prev_rate = None;
    stall_rounds = 0;
    queue_rounds = 0;
    limited_in_round = false;
    rounds = 0;
    exits = 0;
    exit_cwnd = None;
    exit_acked = None;
    recalibrate = 0;
    calm_rounds = 0;
    recent_feedbacks = Queue.create ();
    rate_history = Array.make 8 0;
    rate_history_idx = 0;
    round_count1_max = 0;
    samples_total = 0;
    plan =
      (match strategy with
      | Predictive -> Array.make params.horizon cwnd
      | Circuit_start | Slow_start | Fixed _ -> [||]);
    plan_generation = 0;
    fallen_back = (strategy = Predictive && params.horizon <= 1);
    on_change = [];
    debug_label = "?";
  }

let strategy t = t.strategy
let params t = t.params
let cwnd t = t.cwnd
let phase t = t.phase
let base_rtt t = t.base_rtt
let latest_diff t = t.latest_diff
let rounds_completed t = t.rounds
let ramp_up_exits t = t.exits
let exit_cwnd t = t.exit_cwnd
let exit_acked t = t.exit_acked
let acked_in_round t = t.acked_in_round
let round_target t = t.round_target
let planned_trajectory t = Array.copy t.plan
let plan_generation t = t.plan_generation
let fallen_back t = t.fallen_back
let set_on_change t f = t.on_change <- t.on_change @ [ f ]
let set_debug_label t label = t.debug_label <- label

let send_allowance t =
  match (t.phase, t.strategy) with
  | Ramp_up, (Circuit_start | Predictive) ->
      (* Feedback-clocked growth: each feedback admits the cell it
         freed plus one growth cell, so the round's train leaves at 2x
         the feedback pace rather than as a line-rate burst.  The
         predictive plan never commits more than a doubling per round
         (the candidate set tops out at 2w), so the same interpolation
         paces its ramp. *)
      Stdlib.min t.cwnd (t.round_base + (2 * t.acked_in_round))
  | Ramp_up, (Slow_start | Fixed _) | Avoidance, _ -> t.cwnd

(* --- Predictive strategy: receding-horizon planning ------------------

   Once per window-limited round the controller fits a two-parameter
   link model from its own observations — baseRtt (the propagation
   floor already tracked for Vegas) and the bottleneck rate estimate
   W* = recent_peak_rate_cells (the sustained 1-RTT feedback peak, the
   same estimator Rate_based compensation uses) — and plans the next
   [horizon] rounds' windows by greedily minimizing, step by step, a
   quadratic queue-delay / underutilization cost against a target
   window derived from the model.  Only the plan's first step is
   committed; the next round refits and replans from scratch.  While
   probing (ramp-up) the target is 2·W*: the rate estimate only lower-
   bounds capacity until a queue is seen, so the planner aims past it,
   which reproduces doubling while the path keeps opening.  Once
   capacity is identified the target is W* itself — the planner walks
   the window down to the modelled BDP, faster than Vegas's -1/round
   when the overshoot is deep. *)

(* One greedy planning step: pick, from the discrete candidate moves
   {halve, -1, hold, +1, double}, the window minimizing the step cost
     cost_queue·max(0, w - target)² + cost_under·max(0, target - w)².
   Candidates are considered in ascending order with a strict
   comparison, so ties break toward the smaller (safer) window. *)
let plan_step ~min_cwnd ~max_cwnd ~cost_queue ~cost_under ~target w =
  let clamp v = Stdlib.min max_cwnd (Stdlib.max min_cwnd v) in
  let cost c =
    let over = float_of_int (Stdlib.max 0 (c - target)) in
    let under = float_of_int (Stdlib.max 0 (target - c)) in
    (cost_queue *. over *. over) +. (cost_under *. under *. under)
  in
  let best = ref (clamp (w / 2)) in
  let best_cost = ref (cost !best) in
  let consider v =
    let c = clamp v in
    let k = cost c in
    if k < !best_cost then begin
      best := c;
      best_cost := k
    end
  in
  consider (w - 1);
  consider w;
  consider (w + 1);
  consider (2 * w);
  !best

let fill_plan ~params ~target ~cwnd plan =
  let w = ref cwnd in
  for i = 0 to Array.length plan - 1 do
    w :=
      plan_step ~min_cwnd:params.Params.min_cwnd ~max_cwnd:params.Params.max_cwnd
        ~cost_queue:params.Params.cost_queue ~cost_under:params.Params.cost_under
        ~target !w;
    plan.(i) <- !w
  done

let predictive_plan ~params ~cwnd ~target =
  let plan = Array.make (Stdlib.max 1 params.Params.horizon) cwnd in
  fill_plan ~params ~target ~cwnd plan;
  plan

let set_cwnd t ~now v =
  let v = Stdlib.min t.params.max_cwnd (Stdlib.max t.params.min_cwnd v) in
  if v <> t.cwnd then begin
    t.cwnd <- v;
    List.iter (fun f -> f ~now v) t.on_change
  end

let start_round ?now t =
  t.round_target <- t.cwnd;
  t.round_base <- t.cwnd;
  t.acked_in_round <- 0;
  t.round_rtt_sum <- 0.;
  t.round_rtt_min <- Float.infinity;
  t.round_rtt_max <- 0.;
  t.round_started_at <- now;
  t.round_count1_max <- 0;
  t.limited_in_round <- false

(* diff = cwnd * currentRtt / baseRtt - cwnd, in cells. *)
let vegas_diff t ~rtt_s =
  match t.base_rtt with
  | None -> 0.
  | Some base ->
      let base_s = Engine.Time.to_sec_f base in
      float_of_int t.cwnd *. ((rtt_s /. base_s) -. 1.)

(* The delivery rate this hop currently sustains: feedbacks that
   arrived within the last baseRtt.  Counting over a fixed window keeps
   the signal robust against round-duration jitter (pipeline fill,
   allowance pacing), which a cells-per-round-duration measure is
   not. *)
let rate_window_rtts = 3

(* Feedbacks within the last [rtts] baseRtts (the deque retains
   [rate_window_rtts] worth). *)
let count_within t ~now ~rtts =
  match t.base_rtt with
  | None -> Queue.length t.recent_feedbacks
  | Some base ->
      let cutoff = Engine.Time.sub now (Engine.Time.mul_int base rtts) in
      Queue.fold
        (fun acc ts -> if Engine.Time.(ts > cutoff) then acc + 1 else acc)
        0 t.recent_feedbacks

(* Burst-proof rate: average over the full window.  A queue release can
   dump a whole flight of feedbacks into one RTT; averaging across a
   few RTTs bounds that inflation. *)
let sliding_rate_cells t =
  int_of_float
    (Float.round
       (float_of_int (Queue.length t.recent_feedbacks) /. float_of_int rate_window_rtts))

let record_round_rate t ~now =
  (* The ring keeps the best *instantaneous* (one-RTT) reading of each
     round: compensation wants the recent sustained peak, which neither
     a starved trough (round ending mid-stall) nor the exact round
     boundary must erase. *)
  ignore now;
  t.rate_history.(t.rate_history_idx mod Array.length t.rate_history) <-
    t.round_count1_max;
  t.rate_history_idx <- t.rate_history_idx + 1

let recent_peak_rate_cells t ~now =
  let current = Stdlib.max (count_within t ~now ~rtts:1) t.round_count1_max in
  Array.fold_left Stdlib.max current t.rate_history

let leave_ramp_up t ~now ~new_cwnd ~recalibrate =
  if debug then
    Printf.eprintf "[%8.1fms] %s EXIT ramp-up: cwnd %d -> %d (sliding=%d)\n"
      (Engine.Time.to_ms_f now) t.debug_label t.cwnd new_cwnd (sliding_rate_cells t);
  t.exits <- t.exits + 1;
  (* Record the feedback count of the exiting round before [set_cwnd]
     runs the change hooks, so an oracle in the hook can compare the
     compensated window against it. *)
  if t.exit_acked = None then t.exit_acked <- Some t.acked_in_round;
  set_cwnd t ~now new_cwnd;
  if t.exit_cwnd = None then t.exit_cwnd <- Some t.cwnd;
  t.phase <- Avoidance;
  t.recalibrate <- (if recalibrate then 50 else 0);
  t.calm_rounds <- 0;
  t.prev_rate <- None;
  t.stall_rounds <- 0;
  t.queue_rounds <- 0;
  start_round ~now t

let enter_ramp_up t ~now =
  t.phase <- Ramp_up;
  t.calm_rounds <- 0;
  t.prev_rate <- None;
  t.stall_rounds <- 0;
  t.queue_rounds <- 0;
  start_round ~now t

let double_round t ~now =
  t.rounds <- t.rounds + 1;
  let base = t.cwnd in
  set_cwnd t ~now (t.cwnd * 2);
  start_round ~now t;
  (* One round = one RTT = the flight at the round's start; the
     allowance interpolates from that flight up to the doubled
     window. *)
  t.round_base <- base;
  t.round_target <- base

(* Overshooting compensation: the amount of data acknowledged within
   the current round (= the last baseRtt) — the train prefix the
   successor forwarded without additional delay, which is the minimal
   window that keeps the bottleneck busy. *)
let compensated_cwnd t ~now =
  match t.params.compensation with
  | Params.Acked_count -> t.acked_in_round
  | Params.Rate_based -> recent_peak_rate_cells t ~now

(* The predictive link model is identifiable only when the round that
   feeds it carried enough signal: at least two RTT samples whose
   values actually differ (a zero-variance round cannot separate
   propagation delay from queueing) and a nonzero rate estimate.
   Anything less triggers the hard fallback to Vegas avoidance. *)
let model_identifiable t ~now =
  t.acked_in_round >= 2
  && t.round_rtt_max > t.round_rtt_min
  && recent_peak_rate_cells t ~now >= 1

(* Refit, replan in place, and commit the plan's first step.  The
   generation bumps *before* the commit so a change hook (the cwnd-law
   oracle) always observes a fresh plan whose head equals the committed
   window. *)
let plan_and_commit t ~now ~target =
  let target =
    Stdlib.min t.params.max_cwnd (Stdlib.max t.params.min_cwnd target)
  in
  fill_plan ~params:t.params ~target ~cwnd:t.cwnd t.plan;
  t.plan_generation <- t.plan_generation + 1;
  let committed =
    if !unsafe_disable_plan_bounds then t.plan.(Array.length t.plan - 1)
    else t.plan.(0)
  in
  if debug then
    Printf.eprintf "[%8.1fms] %s plan#%d target=%d commit %d -> %d\n"
      (Engine.Time.to_ms_f now) t.debug_label t.plan_generation target t.cwnd
      committed;
  set_cwnd t ~now committed

(* Ramp-up exit decision, evaluated at round boundaries.

   Two signals combine.  (1) The Vegas queue estimate of the paper,
   with currentRtt taken as the round's *minimum* sample so that
   transient waits (the previous round's doubling burst, a successor's
   window step) do not masquerade as congestion — only a queue that
   never drained within the round inflates the minimum.  (2) The
   feedback *rate*: while the path is still opening up, the round-over-
   round delivery rate doubles; at the bottleneck it stops growing.  A
   stalled rate together with an inflated minimum RTT is a bottleneck;
   a rate stalled for two consecutive rounds means the path has
   converged even if the queue sits upstream of this hop.  Testing at
   round boundaries keeps the decision on whole packet trains, which is
   what the discrete rounds are for (paper, end of §2 "Algorithm
   Description"). *)
(* A round in which the window never constrained sending (upstream
   starvation, application-limited) says nothing about the path: do not
   grow on it, do not let its rate into the stall detector, and never
   exit ramp-up because of it. *)

let rate_stall_ratio = 1.5

(* Exit when the signals are persistent: two consecutive rounds of
   stalled rate with a standing queue (the bottleneck is saturated), or
   three consecutive stalled rounds even without a local queue (the
   path has converged; the queue sits at another hop).  One bad round
   is forgiven — in a cascade of ramping hops, a successor's doubling
   lands up to a round boundary later than ours and stalls us
   transiently. *)
let should_exit_ramp_up t ~now =
  let diff_mean =
    vegas_diff t ~rtt_s:(t.round_rtt_sum /. float_of_int (Stdlib.max 1 t.acked_in_round))
  in
  let rate = float_of_int (sliding_rate_cells t) in
  let growth =
    match t.prev_rate with
    | None -> 2.
    | Some p when p > 0. -> rate /. p
    | Some _ -> 2.
  in
  let stalled = growth < rate_stall_ratio in
  record_round_rate t ~now;
  t.prev_rate <- Some rate;
  t.stall_rounds <- (if stalled then t.stall_rounds + 1 else 0);
  t.queue_rounds <- (if diff_mean > t.params.gamma then t.queue_rounds + 1 else 0);
  if debug then
    Printf.eprintf
      "[%8.1fms] %s round end: cwnd=%d target=%d rate=%.0f growth=%.2f diff_mean=%.2f stall=%d queue=%d\n"
      (Engine.Time.to_ms_f now) t.debug_label t.cwnd t.round_target rate growth
      diff_mean t.stall_rounds t.queue_rounds;
  t.queue_rounds >= 2 || t.stall_rounds >= 3

(* Predictive ramp-up round end.  The exit decision reuses the
   CircuitStart persistence test (two queueing rounds or three stalled
   rounds) — what differs is how the window moves: the planner commits
   the first step of a receding-horizon trajectory toward 2·W* while
   probing, and toward W* itself on exit, instead of doubling and then
   compensating. *)
let predictive_ramp_round_end t ~now =
  if not (model_identifiable t ~now) then begin
    if debug then
      Printf.eprintf "[%8.1fms] %s FALLBACK: model unidentifiable\n"
        (Engine.Time.to_ms_f now) t.debug_label;
    t.fallen_back <- true;
    leave_ramp_up t ~now ~new_cwnd:t.cwnd ~recalibrate:false
  end
  else begin
    let w_star = recent_peak_rate_cells t ~now in
    if should_exit_ramp_up t ~now then begin
      (* Capacity identified: plan down to the modelled BDP.  Mirrors
         [leave_ramp_up]'s bookkeeping, with the committed window taken
         from the plan instead of the compensation estimate. *)
      t.exits <- t.exits + 1;
      if t.exit_acked = None then t.exit_acked <- Some t.acked_in_round;
      plan_and_commit t ~now ~target:w_star;
      if t.exit_cwnd = None then t.exit_cwnd <- Some t.cwnd;
      t.phase <- Avoidance;
      t.recalibrate <- 0;
      t.calm_rounds <- 0;
      t.prev_rate <- None;
      t.stall_rounds <- 0;
      t.queue_rounds <- 0;
      start_round ~now t
    end
    else begin
      t.rounds <- t.rounds + 1;
      let base = t.cwnd in
      plan_and_commit t ~now ~target:(2 * w_star);
      start_round ~now t;
      (* Same pacing convention as [double_round]: one round = the
         flight at the round's start; the allowance interpolates from
         it up to the committed window. *)
      t.round_base <- base;
      t.round_target <- base
    end
  end

let ramp_up_round_end t ~now =
  if not t.limited_in_round then begin
    t.rounds <- t.rounds + 1;
    start_round ~now t
  end
  else
    match t.strategy with
    | Fixed _ -> ()
    | Circuit_start ->
        if should_exit_ramp_up t ~now then
          leave_ramp_up t ~now
            ~new_cwnd:(compensated_cwnd t ~now)
            ~recalibrate:(t.params.compensation = Params.Rate_based)
        else double_round t ~now
    | Predictive -> predictive_ramp_round_end t ~now
    | Slow_start ->
        (* The conventional baseline's exit happens per sample (see
           [ramp_up_feedback]); reaching the round boundary just rolls
           the round over. *)
        t.rounds <- t.rounds + 1;
        start_round ~now t

let ramp_up_feedback t ~now ~diff_sample =
  (match t.strategy with
  | Slow_start ->
      (* The traditional transplant: continuous growth (one cell per
         feedback = doubling per RTT), and the plain Vegas slow-start
         exit — the first sample whose diff exceeds gamma ends the
         ramp, halving the window.  No packet-train analysis: in a
         multi-hop cascade this mistakes a successor's own ramp-up for
         congestion, which is precisely the deficiency CircuitStart's
         round-based timing analysis removes (paper §2). *)
      if diff_sample > t.params.gamma && t.samples_total >= 4 then
        leave_ramp_up t ~now ~new_cwnd:(t.cwnd / 2) ~recalibrate:false
      else begin
        if t.limited_in_round then set_cwnd t ~now (t.cwnd + 1);
        if t.acked_in_round >= t.round_target then ramp_up_round_end t ~now
      end
  | Circuit_start | Fixed _ | Predictive ->
      if t.acked_in_round >= t.round_target then ramp_up_round_end t ~now)

let avoidance_round_end t ~now =
  let mean_rtt_s = t.round_rtt_sum /. float_of_int t.acked_in_round in
  let diff = vegas_diff t ~rtt_s:mean_rtt_s in
  t.rounds <- t.rounds + 1;
  record_round_rate t ~now;
  if t.recalibrate > 0 then begin
    (* Overshooting compensation, second application: while the
       bottleneck drains the ramp-up overshoot it forwards at exactly
       its service rate, so the feedback count of the last baseRtt
       reveals the optimal window; track its maximum and suppress the
       Vegas shrink until the drain completes (round-mean diff back
       under beta) — the standing queue is the overshoot's legacy, not
       the current window's doing.  A round cap bounds the phase. *)
    set_cwnd t ~now (Stdlib.max t.cwnd (sliding_rate_cells t));
    t.recalibrate <- (if diff <= t.params.beta then 0 else t.recalibrate - 1);
    start_round ~now t
  end
  else begin
  (match t.strategy with
  | Fixed _ -> ()
  | Predictive when not t.fallen_back ->
      (* Avoidance keeps replanning: refit every round and commit the
         plan's first step.  A queue signal retargets to the modelled
         BDP (never less than a one-cell shrink), calm window-limited
         rounds probe one cell like Vegas, and an unidentifiable round
         triggers the permanent fallback. *)
      t.calm_rounds <- 0;
      if not (model_identifiable t ~now) then begin
        if debug then
          Printf.eprintf "[%8.1fms] %s FALLBACK: model unidentifiable\n"
            (Engine.Time.to_ms_f now) t.debug_label;
        t.fallen_back <- true
      end
      else begin
        let w_star = recent_peak_rate_cells t ~now in
        let target =
          if diff > t.params.beta then Stdlib.min w_star (t.cwnd - 1)
          else if diff < t.params.alpha && t.limited_in_round then t.cwnd + 1
          else t.cwnd
        in
        plan_and_commit t ~now ~target
      end
  | Circuit_start | Slow_start | Predictive ->
      if diff > t.params.beta then begin
        set_cwnd t ~now (t.cwnd - 1);
        t.calm_rounds <- 0
      end
      else if diff < t.params.alpha && t.limited_in_round then begin
        set_cwnd t ~now (t.cwnd + 1);
        t.calm_rounds <- t.calm_rounds + 1
      end
      else t.calm_rounds <- 0);
  if
    t.params.adaptive
    && t.calm_rounds >= t.params.re_probe_after
    && (match t.strategy with
       | Circuit_start | Slow_start -> true
       | Fixed _ | Predictive -> false)
  then enter_ramp_up t ~now
  else start_round ~now t
  end

let on_feedback t ~now ~rtt ?(window_limited = true) () =
  if Engine.Time.(rtt <= Engine.Time.zero) then
    invalid_arg "Controller.on_feedback: rtt must be positive";
  (match t.base_rtt with
  | None -> t.base_rtt <- Some rtt
  | Some b -> if Engine.Time.(rtt < b) then t.base_rtt <- Some rtt);
  t.acked_in_round <- t.acked_in_round + 1;
  t.samples_total <- t.samples_total + 1;
  if window_limited then t.limited_in_round <- true;
  (* Maintain the sliding feedback window (several baseRtts: averaging
     across a few RTTs keeps the rate estimate burst-proof — a queue
     release can dump a whole flight of feedbacks into one RTT). *)
  Queue.push now t.recent_feedbacks;
  (match t.base_rtt with
  | Some base ->
      let cutoff = Engine.Time.sub now (Engine.Time.mul_int base rate_window_rtts) in
      let rec drop () =
        match Queue.peek_opt t.recent_feedbacks with
        | Some ts when Engine.Time.(ts <= cutoff) ->
            ignore (Queue.pop t.recent_feedbacks : Engine.Time.t);
            drop ()
        | Some _ | None -> ()
      in
      drop ()
  | None -> ());
  let c1 = count_within t ~now ~rtts:1 in
  if c1 > t.round_count1_max then t.round_count1_max <- c1;
  if t.round_started_at = None then
    (* The round effectively began when its first cell left. *)
    t.round_started_at <- Some (Engine.Time.sub now rtt);
  let rtt_s = Engine.Time.to_sec_f rtt in
  t.round_rtt_sum <- t.round_rtt_sum +. rtt_s;
  if rtt_s < t.round_rtt_min then t.round_rtt_min <- rtt_s;
  if rtt_s > t.round_rtt_max then t.round_rtt_max <- rtt_s;
  match t.phase with
  | Ramp_up ->
      let diff_sample = vegas_diff t ~rtt_s in
      t.latest_diff <- Some diff_sample;
      ramp_up_feedback t ~now ~diff_sample
  | Avoidance ->
      t.latest_diff <- Some (vegas_diff t ~rtt_s);
      if t.acked_in_round >= t.round_target then avoidance_round_end t ~now

let pp_phase fmt = function
  | Ramp_up -> Format.pp_print_string fmt "ramp-up"
  | Avoidance -> Format.pp_print_string fmt "avoidance"

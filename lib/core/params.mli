(** CircuitStart / congestion-avoidance parameters.

    All window quantities are counted in cells (the transport's unit of
    transmission); the Vegas-style thresholds [alpha], [beta] and
    [gamma] are likewise in cells, because
    [diff = cwnd * currentRtt / baseRtt - cwnd] estimates a queue length
    in cells.  Defaults are the paper's values where it gives one
    (initial cwnd 2, gamma 4) and the classic Vegas values elsewhere
    (alpha 2, beta 4). *)

type compensation =
  | Rate_based
      (** Overshooting compensation counts the feedback messages that
          arrived within the last baseRtt — "the amount of data
          acknowledged within the current round", reading a round as
          one RTT.  This measures the successor's sustained forwarding
          rate x baseRtt, i.e. the train prefix it forwarded without
          additional delay, which is the paper's estimate of the
          optimal window.  Default. *)
  | Acked_count
      (** Literal per-round counter: the number of feedbacks since the
          last window doubling.  Systematically undershoots when the
          Vegas test fires early in a round (the growth transient of
          the previous round leaks into the new round's samples);
          kept as an ablation. *)

type t = {
  initial_cwnd : int;  (** Starting window, cells.  Paper: 2. *)
  min_cwnd : int;  (** Lower clamp for every adjustment.  Default 2. *)
  max_cwnd : int;  (** Upper clamp.  Default 65536. *)
  gamma : float;
      (** Ramp-up exit threshold: leave slow start when
          [diff > gamma].  Paper: 4. *)
  alpha : float;  (** Avoidance: grow while [diff < alpha].  Default 2. *)
  beta : float;  (** Avoidance: shrink when [diff > beta].  Default 4. *)
  compensation : compensation;
      (** How the window is recomputed when leaving ramp-up. *)
  adaptive : bool;
      (** The paper's §3 future-work extension: re-enter ramp-up
          (doubling from the current window) after [re_probe_after]
          consecutive calm, window-limited avoidance rounds
          (diff < alpha while growth is possible).  Off by default —
          it reacts quickly to capacity changes on a single hop (see
          the adaptive bench), but in a deep cascade of hops it can
          re-synchronise probes into a sawtooth; the experiments
          record both behaviours. *)
  re_probe_after : int;
      (** Calm-round threshold for the adaptive re-probe.  Default 8. *)
  horizon : int;
      (** Predictive strategy: receding-horizon length H — the planner
          evaluates H future rounds and commits only the first step.
          [horizon = 1] cannot plan a trajectory and degenerates to
          plain Vegas avoidance (see {!Controller}).  Default 8. *)
  cost_queue : float;
      (** Predictive strategy: per-round quadratic penalty weight on
          planned cells *above* the modelled target window (standing
          queue delay).  Default 1. *)
  cost_under : float;
      (** Predictive strategy: per-round quadratic penalty weight on
          planned cells *below* the target (underutilized capacity).
          The default 4:1 ratio against [cost_queue] makes the planner
          prefer a transient queue over an idle bottleneck during
          startup, mirroring the paper's aggressive-ramp intent. *)
}

val default : t

val validate : t -> (t, string) result
(** Check internal consistency (positive windows,
    [min_cwnd <= initial_cwnd <= max_cwnd], [0 <= alpha <= beta],
    [gamma > 0], [re_probe_after > 0], [horizon > 0], positive finite
    cost weights). *)

val with_gamma : t -> float -> t
(** [with_gamma p g] is [p] with [gamma = g]. *)

val pp : Format.formatter -> t -> unit

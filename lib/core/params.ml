type compensation = Rate_based | Acked_count

type t = {
  initial_cwnd : int;
  min_cwnd : int;
  max_cwnd : int;
  gamma : float;
  alpha : float;
  beta : float;
  compensation : compensation;
  adaptive : bool;
  re_probe_after : int;
  horizon : int;
  cost_queue : float;
  cost_under : float;
}

let default =
  {
    initial_cwnd = 2;
    min_cwnd = 2;
    max_cwnd = 65536;
    gamma = 4.;
    alpha = 2.;
    beta = 4.;
    compensation = Rate_based;
    adaptive = false;
    re_probe_after = 8;
    horizon = 8;
    cost_queue = 1.;
    cost_under = 4.;
  }

let validate t =
  if t.min_cwnd < 1 then Error "min_cwnd must be at least 1"
  else if t.initial_cwnd < t.min_cwnd then Error "initial_cwnd below min_cwnd"
  else if t.max_cwnd < t.initial_cwnd then Error "max_cwnd below initial_cwnd"
  else if not (Float.is_finite t.gamma) || t.gamma <= 0. then
    Error "gamma must be positive"
  else if not (Float.is_finite t.alpha) || t.alpha < 0. then
    Error "alpha must be non-negative"
  else if not (Float.is_finite t.beta) || t.beta < t.alpha then
    Error "beta must be at least alpha"
  else if t.re_probe_after < 1 then Error "re_probe_after must be positive"
  else if t.horizon < 1 then Error "horizon must be positive"
  else if not (Float.is_finite t.cost_queue) || t.cost_queue <= 0. then
    Error "cost_queue must be positive"
  else if not (Float.is_finite t.cost_under) || t.cost_under <= 0. then
    Error "cost_under must be positive"
  else Ok t

let with_gamma t gamma = { t with gamma }

let pp fmt t =
  Format.fprintf fmt
    "initial=%d min=%d max=%d gamma=%.1f alpha=%.1f beta=%.1f adaptive=%b \
     horizon=%d cq=%.1f cu=%.1f"
    t.initial_cwnd t.min_cwnd t.max_cwnd t.gamma t.alpha t.beta t.adaptive
    t.horizon t.cost_queue t.cost_under

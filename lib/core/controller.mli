(** The per-hop congestion window controller.

    This is the paper's contribution, §2.  One controller instance
    governs one hop sender (a relay's window toward its successor).
    The transport calls {!on_feedback} once per feedback message — each
    feedback means "the successor forwarded one cell" and carries the
    measured cell→feedback round-trip time.  The controller maintains
    the congestion window in cells.

    Three startup strategies are provided:

    - {!strategy.Circuit_start} — the paper's algorithm.  The window
      doubles in discrete rounds: one round = one full window of
      feedback, so the window doubles once per RTT.  Transmission stays
      feedback-clocked within the round (see {!send_allowance}): the
      round's packet train leaves at twice the pace of the incoming
      feedback instead of as a line-rate burst, which is what makes the
      train's timing analysable.  On every feedback the Vegas estimate
      [diff = cwnd * currentRtt / baseRtt - cwnd] is evaluated against
      [gamma]; exceeding it ends ramp-up with *overshooting
      compensation*: the cwnd is set to the number of cells
      acknowledged within the current round so far — the train prefix
      the successor forwarded without queueing, an estimate of the
      optimal window.
    - {!strategy.Slow_start} — the conventional baseline ("without
      CircuitStart"): cwnd += 1 per feedback (continuous doubling per
      RTT), same [gamma] exit test, and the cwnd is *halved* on exit.
    - {!strategy.Fixed} — a constant window (oracle/ablation baseline).
    - {!strategy.Predictive} — a simplified receding-horizon planner
      after the authors' follow-up work (Döpmann et al. 2022).  Once
      per window-limited round it fits a link model from its own
      observations (baseRtt and W*, the sustained 1-RTT feedback-rate
      peak) and plans the next {!Params.t.horizon} rounds' windows by
      greedily minimizing a quadratic queue-delay vs. underutilization
      cost ({!Params.t.cost_queue} / {!Params.t.cost_under}) over the
      discrete moves [{halve, -1, hold, +1, double}], committing only
      the plan's first step and replanning every round.  Ramp-up
      targets 2·W* (capacity is only lower-bounded until a queue is
      seen, so doubling re-emerges while the path opens); the
      CircuitStart persistence test then identifies capacity and the
      planner walks the window to W*.  Avoidance keeps replanning,
      which can shrink a deep overshoot faster than Vegas's one cell
      per round.  If the model is ever unidentifiable at a planning
      instant (fewer than two samples in the round, zero RTT variance,
      no rate estimate) — or if [horizon = 1] leaves nothing to plan —
      the controller *permanently* falls back to plain Vegas
      avoidance ({!fallen_back}).

    After ramp-up every strategy performs Vegas-like congestion
    avoidance, adjusting once per round using the round's mean RTT:
    [diff < alpha] grows by one cell, [diff > beta] shrinks by one.
    Rounds in which the sender never filled its window (application- or
    upstream-limited) do not grow the window — growing an unused window
    would only store up a future burst.  With {!Params.t.adaptive}
    set, [re_probe_after] consecutive calm window-limited rounds
    re-enter ramp-up (the paper's future-work extension). *)

type strategy =
  | Circuit_start
  | Slow_start
  | Fixed of int  (** Constant window of this many cells. *)
  | Predictive  (** Receding-horizon planner; see above. *)

type phase = Ramp_up | Avoidance

type t

val create : ?params:Params.t -> strategy -> t
(** Raises [Invalid_argument] if the parameters fail
    {!Params.validate}, or if [Fixed n] has [n < 1]. *)

val strategy : t -> strategy
val params : t -> Params.t

val cwnd : t -> int
(** Current congestion window, cells. *)

val send_allowance : t -> int
(** How many cells may be in flight right now, [<= cwnd].  During a
    [Circuit_start] or [Predictive] ramp-up round this grows from the
    previous window's worth by two cells per feedback until it reaches
    the committed [cwnd]; in every other phase/strategy it equals
    [cwnd].  Senders must gate on this, not on [cwnd]. *)

val phase : t -> phase

val on_feedback :
  t -> now:Engine.Time.t -> rtt:Engine.Time.t -> ?window_limited:bool -> unit -> unit
(** Account one feedback message whose cell experienced [rtt].
    [window_limited] (default [true]) says whether the sender was
    actually constrained by the window around this feedback; rounds
    that were never window-limited do not grow.  Raises
    [Invalid_argument] if [rtt] is not positive. *)

val base_rtt : t -> Engine.Time.t option
(** Minimum RTT observed so far. *)

val latest_diff : t -> float option
(** The Vegas [diff] (cells) computed at the most recent feedback. *)

val rounds_completed : t -> int
(** Number of completed rounds (ramp-up and avoidance). *)

val ramp_up_exits : t -> int
(** How many times ramp-up was left (> 1 only with [adaptive]). *)

val exit_cwnd : t -> int option
(** The window chosen at the first ramp-up exit (the compensated value
    for [Circuit_start], the halved value for [Slow_start]). *)

val exit_acked : t -> int option
(** The number of feedbacks accounted in the round during which
    ramp-up was first left — the acked-in-round train length that
    [Acked_count] compensation clamps the exit window to. *)

val acked_in_round : t -> int
(** Feedbacks accounted in the current round so far. *)

val round_target : t -> int
(** Feedback count that ends the current round. *)

val planned_trajectory : t -> int array
(** Snapshot of the current receding-horizon plan ([horizon] windows,
    the head being the committed step).  Empty unless the strategy is
    [Predictive].  Before the first planning instant it holds the
    initial window. *)

val plan_generation : t -> int
(** Bumped once per replan, *before* the commit fires the change
    hooks: a hook observing a [Predictive] window change must see a
    generation strictly greater than at the previous change, and the
    new window must equal [planned_trajectory.(0)] — the plan-bounds
    law the {!Check} oracles pin. *)

val fallen_back : t -> bool
(** Whether the [Predictive] controller has permanently degenerated to
    plain Vegas avoidance (unidentifiable model, or [horizon = 1]).
    Always [false] for other strategies. *)

val predictive_plan : params:Params.t -> cwnd:int -> target:int -> int array
(** The pure planner behind [Predictive], exposed for the reference-
    model property tests: the greedy minimum-cost [horizon]-step
    trajectory from [cwnd] toward [target] over the discrete moves
    [{halve, -1, hold, +1, double}], each step clamped to
    [min_cwnd..max_cwnd], ties broken toward the smaller window. *)

val unsafe_disable_plan_bounds : bool ref
(** Test hook: commit the *last* planned step instead of the first,
    breaking the receding-horizon discipline so the plan-bounds oracle
    can prove it notices.  Never set this outside the test suite. *)

val set_on_change : t -> (now:Engine.Time.t -> int -> unit) -> unit
(** Register a hook invoked with the new window on every subsequent
    change (for cwnd traces and invariant oracles).  Hooks accumulate
    and fire in registration order; the caller records the starting
    point itself. *)

val set_debug_label : t -> string -> unit
(** Label used by the [CIRCUITSTART_DEBUG] diagnostic output. *)

val pp_phase : Format.formatter -> phase -> unit

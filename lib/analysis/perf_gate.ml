(* The performance-trajectory ratchet behind [bench/trajectory.exe].

   Every benchmark run leaves a BENCH_*.json report; this module reads
   the throughput and allocation metrics back out of those reports and
   checks the newest ones against blessed floors, so a perf regression
   fails CI instead of silently eroding the events/sec the earlier PRs
   bought.  The repo deliberately has no JSON library — the reports are
   written by hand with known key names, so a scanner that finds
   ["key": <number>] pairs is the whole parser we need (and it never
   allocates an AST for megabyte reports).

   The floors file is the ratchet: one line per gated metric, blessed
   by a human on the reference machine and moved only forward.  The
   tolerance absorbs machine-to-machine variance; see
   bench/perf_floors.txt for the blessing procedure. *)

type direction = Min | Max

type floor = {
  file : string;  (* report the metric lives in, e.g. BENCH_pr7.json *)
  key : string;  (* JSON key of a numeric scalar in that report *)
  direction : direction;  (* Min: higher is better; Max: lower is better *)
  bound : float;  (* the blessed value *)
}

type outcome = {
  floor : floor;
  value : float option;  (* None: file unreadable or key absent *)
  limit : float;  (* bound with the tolerance applied *)
  ok : bool;
}

(* --- the scalar scanner ------------------------------------------- *)

let is_number_char c =
  match c with
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

(* All numeric values of ["key":] in [text], in document order.
   Quoted-key matching cannot false-positive on a value, and the
   reports never put a key inside a string value, so no escape
   handling is needed. *)
let find_numbers ~key text =
  let needle = "\"" ^ key ^ "\"" in
  let nlen = String.length needle and tlen = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i + nlen <= tlen do
    if String.sub text !i nlen = needle then begin
      let j = ref (!i + nlen) in
      while !j < tlen && (text.[!j] = ' ' || text.[!j] = '\t') do incr j done;
      if !j < tlen && text.[!j] = ':' then begin
        incr j;
        while
          !j < tlen && (text.[!j] = ' ' || text.[!j] = '\t' || text.[!j] = '\n')
        do
          incr j
        done;
        let start = !j in
        while !j < tlen && is_number_char text.[!j] do incr j done;
        if !j > start then
          match float_of_string_opt (String.sub text start (!j - start)) with
          | Some v -> out := v :: !out
          | None -> ()
      end;
      i := !i + nlen
    end
    else incr i
  done;
  List.rev !out

let find_number ~key text =
  match find_numbers ~key text with v :: _ -> Some v | [] -> None

(* --- the floors file ---------------------------------------------- *)

(* One floor per line: [file key min|max bound].  '#' starts a
   comment; blank lines are ignored. *)
let parse_floors text =
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    with
    | [] -> Ok None
    | [ file; key; dir; bound ] -> (
        let direction =
          match dir with
          | "min" -> Ok Min
          | "max" -> Ok Max
          | other ->
              Error
                (Printf.sprintf "floors line %d: direction %S is not min/max"
                   lineno other)
        in
        match (direction, float_of_string_opt bound) with
        | Error e, _ -> Error e
        | Ok _, None ->
            Error
              (Printf.sprintf "floors line %d: bound %S is not a number" lineno
                 bound)
        | Ok direction, Some bound -> Ok (Some { file; key; direction; bound }))
    | _ ->
        Error
          (Printf.sprintf
             "floors line %d: expected 'file key min|max bound'" lineno)
  in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error e -> Error e
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some f) -> go (lineno + 1) (f :: acc) rest)
  in
  go 1 [] (String.split_on_char '\n' text)

(* --- the gate ------------------------------------------------------ *)

(* [Min] floors pass at [bound * (1 - tolerance)] and [Max] floors at
   [bound * (1 + tolerance)]: the tolerance always loosens the gate,
   so it absorbs machine variance without ever tightening a blessing.
   A missing file or key fails — a gate that silently skips a metric
   is not a gate. *)
let check ~tolerance ~read floors =
  if not (Float.is_finite tolerance) || tolerance < 0. then
    invalid_arg "Perf_gate.check: tolerance must be >= 0";
  List.map
    (fun f ->
      let value =
        match read f.file with
        | None -> None
        | Some text -> find_number ~key:f.key text
      in
      let limit =
        match f.direction with
        | Min -> f.bound *. (1. -. tolerance)
        | Max -> f.bound *. (1. +. tolerance)
      in
      let ok =
        match value with
        | None -> false
        | Some v -> ( match f.direction with Min -> v >= limit | Max -> v <= limit)
      in
      { floor = f; value; limit; ok })
    floors

let pp_outcome fmt o =
  let dir = match o.floor.direction with Min -> ">=" | Max -> "<=" in
  match o.value with
  | None ->
      Format.fprintf fmt "FAIL %s %s: metric missing (floor %s %g)" o.floor.file
        o.floor.key dir o.floor.bound
  | Some v ->
      Format.fprintf fmt "%s %s %s: %g %s %g (blessed %g)"
        (if o.ok then "ok  " else "FAIL")
        o.floor.file o.floor.key v dir o.limit o.floor.bound

(* --- the trajectory ------------------------------------------------ *)

type row = {
  report : string;
  events_per_sec : float option;
  minor_words_per_event : float option;
  sim_events : float;  (* all "sim_events" occurrences + totals *)
  cumulative_events : float;  (* running sum across the PR sequence *)
}

(* One row per report, in the given order (the callers sort BENCH_*
   filenames, which orders them by PR).  [events_per_sec] and
   [minor_words_per_event] are the report's headline values where
   present; [sim_events] sums every per-target count so heterogeneous
   report shapes still contribute to the cumulative column. *)
let trajectory reports =
  let total = ref 0. in
  List.map
    (fun (report, text) ->
      let sum key = List.fold_left ( +. ) 0. (find_numbers ~key text) in
      let sim_events =
        (* Prefer the report's own total; fall back to per-target
           "sim_events" counts, then to the bare "events" key older
           microbench reports use. *)
        let totaled = sum "total_sim_events" in
        if totaled > 0. then totaled
        else
          let per_target = sum "sim_events" in
          if per_target > 0. then per_target else sum "events"
      in
      total := !total +. sim_events;
      {
        report;
        events_per_sec = find_number ~key:"events_per_sec" text;
        minor_words_per_event = find_number ~key:"minor_words_per_event" text;
        sim_events;
        cumulative_events = !total;
      })
    reports

(* The performance-trajectory ratchet behind [bench/trajectory.exe].

   Every benchmark run leaves a BENCH_*.json report; this module reads
   the throughput and allocation metrics back out of those reports and
   checks the newest ones against blessed floors, so a perf regression
   fails CI instead of silently eroding the events/sec the earlier PRs
   bought.  The repo deliberately has no JSON library — the reports are
   written by hand with known key names, so a scanner that finds
   ["key": <number>] pairs is the whole parser we need (and it never
   allocates an AST for megabyte reports).

   The floors file is the ratchet: one line per gated metric, blessed
   by a human on the reference machine and moved only forward.  The
   tolerance absorbs machine-to-machine variance; see
   bench/perf_floors.txt for the blessing procedure. *)

type direction = Min | Max

type floor = {
  file : string;  (* report the metric lives in, e.g. BENCH_pr7.json *)
  key : string;  (* JSON key of a numeric scalar in that report *)
  direction : direction;  (* Min: higher is better; Max: lower is better *)
  bound : float;  (* the blessed value *)
  min_cores : int option;
      (* speedup floors are meaningless on hosts with fewer cores than
         shards: [Some n] skips the floor (ok, flagged) when the
         report's own "host_cores" records fewer than [n] cores *)
}

type outcome = {
  floor : floor;
  value : float option;  (* None: file unreadable or key absent *)
  limit : float;  (* bound with the tolerance applied *)
  ok : bool;
  skipped : bool;  (* min_cores unmet: passes without proving anything *)
}

(* --- the scalar scanner ------------------------------------------- *)

let is_number_char c =
  match c with
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

(* All numeric values of ["key":] in [text], in document order.
   Quoted-key matching cannot false-positive on a value, and the
   reports never put a key inside a string value, so no escape
   handling is needed. *)
let find_numbers ~key text =
  let needle = "\"" ^ key ^ "\"" in
  let nlen = String.length needle and tlen = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i + nlen <= tlen do
    if String.sub text !i nlen = needle then begin
      let j = ref (!i + nlen) in
      while !j < tlen && (text.[!j] = ' ' || text.[!j] = '\t') do incr j done;
      if !j < tlen && text.[!j] = ':' then begin
        incr j;
        while
          !j < tlen && (text.[!j] = ' ' || text.[!j] = '\t' || text.[!j] = '\n')
        do
          incr j
        done;
        let start = !j in
        while !j < tlen && is_number_char text.[!j] do incr j done;
        if !j > start then
          match float_of_string_opt (String.sub text start (!j - start)) with
          | Some v -> out := v :: !out
          | None -> ()
      end;
      i := !i + nlen
    end
    else incr i
  done;
  List.rev !out

let find_number ~key text =
  match find_numbers ~key text with v :: _ -> Some v | [] -> None

(* --- the floors file ---------------------------------------------- *)

(* One floor per line: [file key min|max bound [min-cores=N]].  '#'
   starts a comment; blank lines are ignored. *)
let parse_floors text =
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let parse4 file key dir bound ~min_cores =
      let direction =
        match dir with
        | "min" -> Ok Min
        | "max" -> Ok Max
        | other ->
            Error
              (Printf.sprintf "floors line %d: direction %S is not min/max"
                 lineno other)
      in
      match (direction, float_of_string_opt bound) with
      | Error e, _ -> Error e
      | Ok _, None ->
          Error
            (Printf.sprintf "floors line %d: bound %S is not a number" lineno
               bound)
      | Ok direction, Some bound ->
          Ok (Some { file; key; direction; bound; min_cores })
    in
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    with
    | [] -> Ok None
    | [ file; key; dir; bound ] -> parse4 file key dir bound ~min_cores:None
    | [ file; key; dir; bound; extra ] -> (
        match String.index_opt extra '=' with
        | Some i
          when String.sub extra 0 i = "min-cores" -> (
            let v = String.sub extra (i + 1) (String.length extra - i - 1) in
            match int_of_string_opt v with
            | Some n when n >= 1 ->
                parse4 file key dir bound ~min_cores:(Some n)
            | _ ->
                Error
                  (Printf.sprintf
                     "floors line %d: min-cores %S is not a positive integer"
                     lineno v))
        | _ ->
            Error
              (Printf.sprintf
                 "floors line %d: fifth token %S is not 'min-cores=N'" lineno
                 extra))
    | _ ->
        Error
          (Printf.sprintf
             "floors line %d: expected 'file key min|max bound [min-cores=N]'"
             lineno)
  in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error e -> Error e
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some f) -> go (lineno + 1) (f :: acc) rest)
  in
  go 1 [] (String.split_on_char '\n' text)

(* --- the gate ------------------------------------------------------ *)

(* [Min] floors pass at [bound * (1 - tolerance)] and [Max] floors at
   [bound * (1 + tolerance)]: the tolerance always loosens the gate,
   so it absorbs machine variance without ever tightening a blessing.
   A missing file or key fails — a gate that silently skips a metric
   is not a gate.  The one sanctioned skip is [min-cores=N]: a
   parallel-speedup floor measured on a host with fewer cores than
   shards proves nothing, so when the report's own "host_cores" falls
   short the floor passes flagged as [skipped] (the reference runner
   with enough cores still enforces it). *)
let check ~tolerance ~read floors =
  if not (Float.is_finite tolerance) || tolerance < 0. then
    invalid_arg "Perf_gate.check: tolerance must be >= 0";
  List.map
    (fun f ->
      let text = read f.file in
      let value =
        match text with
        | None -> None
        | Some text -> find_number ~key:f.key text
      in
      let limit =
        match f.direction with
        | Min -> f.bound *. (1. -. tolerance)
        | Max -> f.bound *. (1. +. tolerance)
      in
      let skipped =
        match (f.min_cores, text) with
        | Some need, Some text -> (
            match find_number ~key:"host_cores" text with
            | Some cores -> cores < float_of_int need
            | None -> true)
        | Some _, None -> false (* unreadable report still fails *)
        | None, _ -> false
      in
      let ok =
        skipped
        ||
        match value with
        | None -> false
        | Some v -> ( match f.direction with Min -> v >= limit | Max -> v <= limit)
      in
      { floor = f; value; limit; ok; skipped })
    floors

let pp_outcome fmt o =
  let dir = match o.floor.direction with Min -> ">=" | Max -> "<=" in
  if o.skipped then
    Format.fprintf fmt "skip %s %s: host has fewer than %d cores (floor %s %g)"
      o.floor.file o.floor.key
      (Option.value o.floor.min_cores ~default:0)
      dir o.floor.bound
  else
    match o.value with
    | None ->
        Format.fprintf fmt "FAIL %s %s: metric missing (floor %s %g)"
          o.floor.file o.floor.key dir o.floor.bound
    | Some v ->
        Format.fprintf fmt "%s %s %s: %g %s %g (blessed %g)"
          (if o.ok then "ok  " else "FAIL")
          o.floor.file o.floor.key v dir o.limit o.floor.bound

(* --- the trajectory ------------------------------------------------ *)

type row = {
  report : string;
  events_per_sec : float option;
  minor_words_per_event : float option;
  speedup_2 : float option;  (* sharded events/sec over sequential, 2 shards *)
  speedup_4 : float option;
  sim_events : float;  (* all "sim_events" occurrences + totals *)
  cumulative_events : float;  (* running sum across the PR sequence *)
}

(* One row per report, in the given order (the callers sort BENCH_*
   filenames, which orders them by PR).  [events_per_sec] and
   [minor_words_per_event] are the report's headline values where
   present; [sim_events] sums every per-target count so heterogeneous
   report shapes still contribute to the cumulative column. *)
let trajectory reports =
  let total = ref 0. in
  List.map
    (fun (report, text) ->
      let sum key = List.fold_left ( +. ) 0. (find_numbers ~key text) in
      let sim_events =
        (* Prefer the report's own total; fall back to per-target
           "sim_events" counts, then to the bare "events" key older
           microbench reports use. *)
        let totaled = sum "total_sim_events" in
        if totaled > 0. then totaled
        else
          let per_target = sum "sim_events" in
          if per_target > 0. then per_target else sum "events"
      in
      total := !total +. sim_events;
      {
        report;
        events_per_sec = find_number ~key:"events_per_sec" text;
        minor_words_per_event = find_number ~key:"minor_words_per_event" text;
        speedup_2 = find_number ~key:"speedup_2" text;
        speedup_4 = find_number ~key:"speedup_4" text;
        sim_events;
        cumulative_events = !total;
      })
    reports

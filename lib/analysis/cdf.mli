(** Empirical cumulative distribution functions.

    Figure 1's bottom panel plots the CDF of time-to-last-byte for two
    systems; the paper's claim "improve ... by up to 0.5 seconds" is
    the largest horizontal gap between the curves.  This module builds
    CDFs from samples and computes exactly those comparisons. *)

type t

val of_samples : float array -> t
(** Raises [Invalid_argument] on an empty array or non-finite
    samples. *)

val of_sketch : ?resolution:int -> Engine.Stats.Sketch.t -> t
(** Approximate CDF from a streaming {!Engine.Stats.Sketch}: the curve
    through [resolution] (default 199) evenly spaced sketch quantiles
    plus the exact observed extremes.  Quantile error is bounded by the
    sketch's bin width plus the grid spacing.  Raises
    [Invalid_argument] on an empty sketch or [resolution < 1]. *)

val of_sketch_opt : ?resolution:int -> Engine.Stats.Sketch.t -> t option
(** Total variant of {!of_sketch}: [None] on an empty sketch (a run
    that completed nothing has no curve) instead of an exception.
    Still raises on [resolution < 1]. *)

val count : t -> int

val fraction_below : t -> float -> float
(** [fraction_below cdf x] is P(sample <= x), in [\[0, 1\]]. *)

val quantile : t -> float -> float
(** [quantile cdf q] for [q] in [\[0, 1\]]: the smallest sample [x]
    with [fraction_below cdf x >= q].  Raises [Invalid_argument]
    outside the range. *)

val points : t -> (float * float) list
(** Step points [(value, cumulative fraction)], ascending, one per
    distinct value. *)

val min_value : t -> float
val max_value : t -> float
val mean : t -> float

val horizontal_gap : better:t -> worse:t -> float
(** The largest [quantile worse q - quantile better q] over a fine grid
    of [q] — "how many seconds earlier does the better system reach the
    same completion fraction", the paper's improvement metric.  Can be
    negative if [better] never leads. *)

val dominates : better:t -> worse:t -> bool
(** Whether [better]'s curve is nowhere to the right of [worse]'s
    (checked on the quantile grid). *)

(** The performance-trajectory ratchet behind [bench/trajectory.exe].

    Reads throughput/allocation metrics back out of the BENCH_*.json
    reports the benchmark targets write, prints the cumulative
    trajectory across the PR sequence, and checks blessed floors so a
    perf regression fails CI.  The reports are hand-written JSON with
    known scalar keys, so the "parser" is a quoted-key number scanner —
    no JSON library (the container has none), no AST.

    The floors file (bench/perf_floors.txt) is the ratchet: one
    [file key min|max bound] line per gated metric, blessed on the
    reference machine and only ever moved forward. *)

type direction =
  | Min  (** higher is better; pass at [bound * (1 - tolerance)] *)
  | Max  (** lower is better; pass at [bound * (1 + tolerance)] *)

type floor = {
  file : string;  (** report the metric lives in, e.g. ["BENCH_pr7.json"] *)
  key : string;  (** JSON key of a numeric scalar in that report *)
  direction : direction;
  bound : float;  (** the blessed value *)
  min_cores : int option;
      (** [Some n]: skip (pass, flagged) when the report's own
          ["host_cores"] value is absent or below [n] — a parallel
          speedup measured on a smaller host proves nothing either
          way.  Written as a fifth [min-cores=N] token in the floors
          file. *)
}

type outcome = {
  floor : floor;
  value : float option;  (** [None]: file unreadable or key absent *)
  limit : float;  (** bound with the tolerance applied *)
  ok : bool;
  skipped : bool;
      (** The floor's [min_cores] requirement was unmet: [ok] is true
          but the metric was not actually enforced on this host. *)
}

val find_number : key:string -> string -> float option
(** First numeric value bound to the quoted [key] in the text, if
    any. *)

val find_numbers : key:string -> string -> float list
(** All numeric values bound to the quoted [key], in document
    order. *)

val parse_floors : string -> (floor list, string) result
(** Parse a floors file: one [file key min|max bound [min-cores=N]]
    per line, ['#'] comments, blank lines ignored.  Errors carry the
    line number. *)

val check :
  tolerance:float -> read:(string -> string option) -> floor list -> outcome list
(** Evaluate every floor.  [read] maps a report filename to its
    contents ([None] if unreadable).  The tolerance only ever loosens
    the gate; a missing file or key fails its floor — a gate that
    silently skips a metric is not a gate.  Raises [Invalid_argument]
    on a negative or non-finite tolerance. *)

val pp_outcome : Format.formatter -> outcome -> unit

type row = {
  report : string;
  events_per_sec : float option;
  minor_words_per_event : float option;
  speedup_2 : float option;
      (** Sharded-over-sequential events/sec ratio at 2 shards, where
          the report records one. *)
  speedup_4 : float option;
  sim_events : float;
      (** Sum of the report's per-target counts (prefers
          ["total_sim_events"] where present). *)
  cumulative_events : float;  (** Running sum across the sequence. *)
}

val trajectory : (string * string) list -> row list
(** One row per [(report_name, contents)], in the given order — the
    callers sort BENCH_* filenames, which orders them by PR. *)

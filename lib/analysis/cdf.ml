type t = { sorted : float array }

let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Cdf.of_samples: empty";
  Array.iter
    (fun x -> if not (Float.is_finite x) then invalid_arg "Cdf.of_samples: non-finite")
    samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  { sorted }

(* A sketch answers quantiles directly, so a CDF over it is the curve
   through [resolution] evenly spaced quantiles plus the exact observed
   extremes — enough structure for [quantile]/[horizontal_gap]/
   [dominates] (which only ever probe the 99-point grid) while keeping
   the streamed run's O(1)-per-circuit memory. *)
let of_sketch ?(resolution = 199) sk =
  if resolution < 1 then invalid_arg "Cdf.of_sketch: resolution must be positive";
  if Engine.Stats.Sketch.count sk = 0 then invalid_arg "Cdf.of_sketch: empty sketch";
  let qs =
    Array.init resolution (fun i ->
        Engine.Stats.Sketch.quantile sk
          (float_of_int (i + 1) /. float_of_int (resolution + 1)))
  in
  let sorted =
    Array.concat
      [ [| Engine.Stats.Sketch.min sk |]; qs; [| Engine.Stats.Sketch.max sk |] ]
  in
  Array.sort Float.compare sorted;
  { sorted }

let of_sketch_opt ?resolution sk =
  if Engine.Stats.Sketch.count sk = 0 then None
  else Some (of_sketch ?resolution sk)

let count t = Array.length t.sorted

(* Number of samples <= x, by binary search for the upper bound. *)
let rank t x =
  let n = Array.length t.sorted in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.sorted.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let fraction_below t x = float_of_int (rank t x) /. float_of_int (count t)

let quantile t q =
  if not (Float.is_finite q) || q < 0. || q > 1. then
    invalid_arg "Cdf.quantile: q must be in [0, 1]";
  let n = count t in
  let k = int_of_float (Float.ceil (q *. float_of_int n)) in
  t.sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (k - 1)))

let points t =
  let n = count t in
  let nf = float_of_int n in
  let rec go i acc =
    if i < 0 then acc
    else if i < n - 1 && Float.equal t.sorted.(i) t.sorted.(i + 1) then go (i - 1) acc
    else go (i - 1) ((t.sorted.(i), float_of_int (i + 1) /. nf) :: acc)
  in
  go (n - 1) []

let min_value t = t.sorted.(0)
let max_value t = t.sorted.(count t - 1)
let mean t = Array.fold_left ( +. ) 0. t.sorted /. float_of_int (count t)

let grid = Array.init 99 (fun i -> float_of_int (i + 1) /. 100.)

let horizontal_gap ~better ~worse =
  Array.fold_left
    (fun acc q -> Float.max acc (quantile worse q -. quantile better q))
    Float.neg_infinity grid

let dominates ~better ~worse =
  Array.for_all (fun q -> quantile better q <= quantile worse q) grid

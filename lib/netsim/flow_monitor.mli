(** Per-flow accounting.

    Experiment drivers register transmit and receive events against an
    integer flow id (one per circuit/transfer) and read back byte
    counts and the time-to-last-byte, the headline metric of the
    paper's CDF. *)

type t

type flow = {
  tx_packets : int;
  tx_bytes : int;
  rx_packets : int;
  rx_bytes : int;
  first_tx : Engine.Time.t option;  (** Instant of the first transmit. *)
  last_rx : Engine.Time.t option;  (** Instant of the latest receive. *)
}

val create : unit -> t

val on_tx : t -> flow:int -> bytes:int -> now:Engine.Time.t -> unit
val on_rx : t -> flow:int -> bytes:int -> now:Engine.Time.t -> unit

val stats : t -> flow:int -> flow option
(** [None] if the flow was never seen. *)

val time_to_last_byte : t -> flow:int -> Engine.Time.t option
(** [last_rx - first_tx]; [None] unless both ends were observed. *)

val flows : t -> int list
(** All observed flow ids, sorted. *)

val total_rx_bytes : t -> int

val link_drops : Link.t list -> Link.drop_counts
(** Aggregate drop counters over a set of links, split by reason
    (queue-full vs fault-injected vs outage) — the loss ledger an
    experiment reads next to its per-flow byte counts.  Pass
    [Topology.links] for the whole network. *)

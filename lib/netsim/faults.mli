(** Per-link fault injection.

    Real anonymity-network paths are not clean pipes: they see random
    wire loss, bursty loss (a congested or flapping segment), whole
    link outages and capacity degradation.  This module packages those
    disturbance models and attaches them to any {!Link.t} through the
    link's fault hooks — callers of {!Link.send} are oblivious; only
    the drop counters and the transport's retransmission machinery can
    tell a faulty run from a clean one.

    Every model draws from a caller-supplied {!Engine.Rng.t}, so fault
    schedules are deterministic per seed and paired experiment runs
    ("with CircuitStart" / "without") see identical disturbances. *)

(** {1 Loss models} *)

type loss_model =
  | Bernoulli of float  (** i.i.d. loss with the given probability. *)
  | Gilbert_elliott of {
      p_good_to_bad : float;  (** Per-packet transition probability. *)
      p_bad_to_good : float;
      loss_good : float;  (** Loss probability while in the good state. *)
      loss_bad : float;  (** Loss probability while in the bad state. *)
    }
      (** The classic two-state bursty-loss channel: loss clusters in
          bad-state episodes whose mean length is [1 / p_bad_to_good]
          packets. *)

val validate_loss : loss_model -> (loss_model, string) result
(** All probabilities must lie in [\[0, 1\]]. *)

val expected_loss_rate : loss_model -> float
(** The model's long-run loss rate: the Bernoulli probability, or the
    Gilbert–Elliott loss under the chain's stationary distribution. *)

type loss_state
(** The mutable channel state of one attached model. *)

val loss_state : loss_model -> loss_state
(** A fresh state (Gilbert–Elliott starts in the good state).  Raises
    [Invalid_argument] if the model does not validate. *)

val decide : loss_state -> Engine.Rng.t -> bool
(** [decide st rng] advances the channel by one packet and returns
    [true] if that packet is lost.  Exposed so tests can exercise the
    models statistically without building a network. *)

val attach_loss : rng:Engine.Rng.t -> Link.t -> loss_model -> unit
(** Install the model as the link's fault filter (replacing any
    previous one).  Raises [Invalid_argument] if the model does not
    validate. *)

val detach_loss : Link.t -> unit

(** {1 Outages and degradation} *)

val schedule_outage :
  ?trace:Engine.Trace.t ->
  Engine.Sim.t ->
  Link.t ->
  down_at:Engine.Time.t ->
  up_at:Engine.Time.t ->
  unit
(** Take the link down at [down_at] and bring it back at [up_at] (see
    {!Link.set_up} for the down semantics).  With [trace], the
    transitions are recorded as {!Engine.Trace.Fault} and
    {!Engine.Trace.Recovery} events.  Raises [Invalid_argument] if
    [up_at <= down_at]. *)

val schedule_outages :
  ?trace:Engine.Trace.t ->
  Engine.Sim.t ->
  Link.t ->
  (Engine.Time.t * Engine.Time.t) list ->
  unit
(** A list of [(down_at, up_at)] windows (link flapping). *)

val schedule_rates :
  Engine.Sim.t -> Link.t -> (Engine.Time.t * Engine.Units.Rate.t) list -> unit
(** Rate-degradation schedule: at each instant, the link's rate is
    changed to the given value (packets already serializing are
    unaffected, as with {!Link.set_rate}). *)

type Payload.t += Cbr of int  (** Sequence number, for diagnostics. *)

type t = {
  net : Network.t;
  src : Node_id.t;
  dst : Node_id.t;
  packet_size : int;
  mutable rate : Engine.Units.Rate.t;
  mutable stopped : bool;
  mutable sent : int;
  (* One reusable timer rearmed per packet: the steady-state source
     allocates nothing per packet beyond the packet itself. *)
  mutable tick : Engine.Sim.Timer.t;
}

let interval t =
  (* One packet per serialization time at the nominal rate = exactly
     [rate] on the wire. *)
  Engine.Units.Rate.transmission_time t.rate t.packet_size

let arm t =
  if not t.stopped then
    Engine.Sim.Timer.arm_after (Network.sim t.net) t.tick (interval t)

(* A tick after [stop] still fires (the pending occurrence is consumed
   lazily, matching the old closure-based source event for event) but
   sends nothing and does not rearm. *)
let emit t =
  if not t.stopped then begin
    let p =
      Network.make_packet t.net ~src:t.src ~dst:t.dst ~size:t.packet_size (Cbr t.sent)
    in
    t.sent <- t.sent + 1;
    Network.send t.net p;
    arm t
  end

let start net ~src ~dst ~rate ?(packet_size = 512) () =
  if packet_size <= 0 then invalid_arg "Cbr_source.start: packet size must be positive";
  let t =
    { net; src; dst; packet_size; rate; stopped = false; sent = 0;
      tick = Engine.Sim.Timer.create (Network.sim net) (fun () -> ()) }
  in
  t.tick <- Engine.Sim.Timer.create (Network.sim net) (fun () -> emit t);
  arm t;
  t

let set_rate t rate = t.rate <- rate
let stop t = t.stopped <- true
let packets_sent t = t.sent
let bytes_sent t = t.sent * t.packet_size

(** Routed packet delivery over a topology.

    [Network] computes static shortest-path routes (Dijkstra over link
    propagation delay, hop count as tie-breaker), installs forwarding
    handlers on every link, and exposes node-to-node [send].  A packet
    travels link by link through intermediate nodes (e.g. the star hub)
    and is handed to the destination's local handler on arrival.

    Routes are computed when the network is built; the topology must be
    fully wired first.  This matches the experiments, whose graphs are
    static. *)

type t

val create : Topology.t -> t
(** Build routing tables and claim every link's receiver slot. *)

val topology : t -> Topology.t
val sim : t -> Engine.Sim.t

val set_local_handler : t -> Node_id.t -> (Packet.t -> unit) -> unit
(** [set_local_handler net n f] makes [f] receive every packet whose
    final destination is [n].  Without a handler such packets count as
    {!undeliverable}. *)

val make_packet :
  t -> src:Node_id.t -> dst:Node_id.t -> size:int -> Payload.t -> Packet.t
(** Fresh packet stamped with the current simulation time. *)

val next_packet_id : t -> int
(** The id the next {!make_packet} will assign (see
    {!Packet.next_id}): a monotone watermark separating packets
    already created from packets not yet created. *)

val send : t -> ?on_transmit:(int -> unit) -> Packet.t -> unit
(** Inject a packet at its source node.  [on_transmit] fires, with the
    packet's id, when the packet's serialization on the source's own
    access link starts — the node's true "on the wire" instant (later
    forwarding hops do not re-fire it); see {!Link.send} for the
    staleness caveat on queued packets.  Raises [Failure] if the
    destination is unreachable from the source. *)

val path : t -> Node_id.t -> Node_id.t -> Node_id.t list option
(** [path net a b] is the node sequence [a; ...; b] a packet follows,
    or [None] if unreachable.  [path net a a = Some [a]]. *)

val hop_count : t -> Node_id.t -> Node_id.t -> int option
(** Number of links on the route. *)

val path_delay : t -> Node_id.t -> Node_id.t -> Engine.Time.t option
(** Sum of one-way propagation delays along the route (no
    serialization or queueing). *)

val undeliverable : t -> int
(** Packets that reached a node with no local handler. *)

type loss_model =
  | Bernoulli of float
  | Gilbert_elliott of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

let is_prob p = Float.is_finite p && p >= 0. && p <= 1.

let validate_loss = function
  | Bernoulli p when not (is_prob p) ->
      Error "Bernoulli loss probability must be in [0, 1]"
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad }
    when not
           (is_prob p_good_to_bad && is_prob p_bad_to_good && is_prob loss_good
          && is_prob loss_bad) ->
      Error "Gilbert-Elliott parameters must all be in [0, 1]"
  | m -> Ok m

let expected_loss_rate = function
  | Bernoulli p -> p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
      (* Stationary distribution of the two-state chain; a chain that
         never transitions stays in its initial (good) state. *)
      let denom = p_good_to_bad +. p_bad_to_good in
      if denom = 0. then loss_good
      else
        let pi_bad = p_good_to_bad /. denom in
        ((1. -. pi_bad) *. loss_good) +. (pi_bad *. loss_bad)

type loss_state = { model : loss_model; mutable in_bad : bool }

let loss_state model =
  match validate_loss model with
  | Error msg -> invalid_arg ("Faults.loss_state: " ^ msg)
  | Ok model -> { model; in_bad = false }

(* One per-packet step: advance the channel state, then draw the loss
   from the state the packet sees. *)
let decide st rng =
  match st.model with
  | Bernoulli p -> Engine.Rng.float rng 1.0 < p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
      let flip = Engine.Rng.float rng 1.0 in
      (if st.in_bad then begin
         if flip < p_bad_to_good then st.in_bad <- false
       end
       else if flip < p_good_to_bad then st.in_bad <- true);
      let loss = if st.in_bad then loss_bad else loss_good in
      Engine.Rng.float rng 1.0 < loss

let attach_loss ~rng link model =
  let st = loss_state model in
  Link.set_fault_filter link (Some (fun _p -> decide st rng))

let detach_loss link = Link.set_fault_filter link None

let link_subject link =
  Format.asprintf "link/%a->%a" Node_id.pp (Link.src link) Node_id.pp
    (Link.dst link)

let schedule_outage ?trace sim link ~down_at ~up_at =
  if Engine.Time.(up_at <= down_at) then
    invalid_arg "Faults.schedule_outage: up_at must be after down_at";
  ignore
    (Engine.Sim.schedule_at sim down_at (fun () ->
         Link.set_up link false;
         match trace with
         | Some registry ->
             Engine.Trace.record_event registry Engine.Trace.Fault
               ~subject:(link_subject link) ~detail:"outage begins"
               (Engine.Sim.now sim)
         | None -> ()));
  ignore
    (Engine.Sim.schedule_at sim up_at (fun () ->
         Link.set_up link true;
         match trace with
         | Some registry ->
             Engine.Trace.record_event registry Engine.Trace.Recovery
               ~subject:(link_subject link) ~detail:"outage ends"
               (Engine.Sim.now sim)
         | None -> ()))

let schedule_outages ?trace sim link windows =
  List.iter
    (fun (down_at, up_at) -> schedule_outage ?trace sim link ~down_at ~up_at)
    windows

let schedule_rates sim link steps =
  List.iter
    (fun (at, rate) ->
      ignore (Engine.Sim.schedule_at sim at (fun () -> Link.set_rate link rate)))
    steps

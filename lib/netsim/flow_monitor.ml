type flow = {
  tx_packets : int;
  tx_bytes : int;
  rx_packets : int;
  rx_bytes : int;
  first_tx : Engine.Time.t option;
  last_rx : Engine.Time.t option;
}

let empty_flow =
  { tx_packets = 0; tx_bytes = 0; rx_packets = 0; rx_bytes = 0; first_tx = None;
    last_rx = None }

type t = (int, flow) Hashtbl.t

let create () : t = Hashtbl.create 32

let update t flow f =
  let cur = Option.value (Hashtbl.find_opt t flow) ~default:empty_flow in
  Hashtbl.replace t flow (f cur)

let on_tx t ~flow ~bytes ~now =
  update t flow (fun s ->
      { s with
        tx_packets = s.tx_packets + 1;
        tx_bytes = s.tx_bytes + bytes;
        first_tx = (match s.first_tx with Some _ as x -> x | None -> Some now) })

let on_rx t ~flow ~bytes ~now =
  update t flow (fun s ->
      { s with
        rx_packets = s.rx_packets + 1;
        rx_bytes = s.rx_bytes + bytes;
        last_rx = Some now })

let stats t ~flow = Hashtbl.find_opt t flow

let time_to_last_byte t ~flow =
  match Hashtbl.find_opt t flow with
  | Some { first_tx = Some a; last_rx = Some b; _ } -> Some (Engine.Time.diff b a)
  | _ -> None

let flows t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort Int.compare
let total_rx_bytes t = Hashtbl.fold (fun _ s acc -> acc + s.rx_bytes) t 0

let link_drops links =
  List.fold_left
    (fun acc l -> Link.add_drop_counts acc (Link.drop_counts l))
    Link.no_drops links

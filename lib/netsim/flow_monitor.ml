type flow = {
  tx_packets : int;
  tx_bytes : int;
  rx_packets : int;
  rx_bytes : int;
  first_tx : Engine.Time.t option;
  last_rx : Engine.Time.t option;
}

(* Internal accumulator: one allocation per flow, mutated in place on
   every packet — [on_tx]/[on_rx] sit on the forwarding hot path and
   used to allocate a fresh record (plus an update closure) per cell. *)
type acc = {
  mutable a_tx_packets : int;
  mutable a_tx_bytes : int;
  mutable a_rx_packets : int;
  mutable a_rx_bytes : int;
  mutable a_first_tx : Engine.Time.t option;
  mutable a_last_rx : Engine.Time.t option;
}

type t = (int, acc) Hashtbl.t

let create () : t = Hashtbl.create 32

let acc_of t flow =
  match Hashtbl.find_opt t flow with
  | Some a -> a
  | None ->
      let a =
        { a_tx_packets = 0; a_tx_bytes = 0; a_rx_packets = 0; a_rx_bytes = 0;
          a_first_tx = None; a_last_rx = None }
      in
      Hashtbl.add t flow a;
      a

let on_tx t ~flow ~bytes ~now =
  let a = acc_of t flow in
  a.a_tx_packets <- a.a_tx_packets + 1;
  a.a_tx_bytes <- a.a_tx_bytes + bytes;
  if a.a_first_tx = None then a.a_first_tx <- Some now

let on_rx t ~flow ~bytes ~now =
  let a = acc_of t flow in
  a.a_rx_packets <- a.a_rx_packets + 1;
  a.a_rx_bytes <- a.a_rx_bytes + bytes;
  a.a_last_rx <- Some now

let snapshot a =
  { tx_packets = a.a_tx_packets; tx_bytes = a.a_tx_bytes;
    rx_packets = a.a_rx_packets; rx_bytes = a.a_rx_bytes;
    first_tx = a.a_first_tx; last_rx = a.a_last_rx }

let stats t ~flow = Option.map snapshot (Hashtbl.find_opt t flow)

let time_to_last_byte t ~flow =
  match Hashtbl.find_opt t flow with
  | Some { a_first_tx = Some a; a_last_rx = Some b; _ } -> Some (Engine.Time.diff b a)
  | _ -> None

let flows t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort Int.compare
let total_rx_bytes t = Hashtbl.fold (fun _ a acc -> acc + a.a_rx_bytes) t 0

let link_drops links =
  List.fold_left
    (fun acc l -> Link.add_drop_counts acc (Link.drop_counts l))
    Link.no_drops links

type t = {
  id : int;
  src : Node_id.t;
  dst : Node_id.t;
  size : int;
  payload : Payload.t;
  sent_at : Engine.Time.t;
}

type id_state = int ref

let fresh_id_state () = ref 0
let next_id ids = !ids

let make ids ~src ~dst ~size ~now payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  let id = !ids in
  incr ids;
  { id; src; dst; size; payload; sent_at = now }

let pp fmt t =
  Format.fprintf fmt "#%d %a->%a %dB %a" t.id Node_id.pp t.src Node_id.pp t.dst t.size
    Payload.pp t.payload

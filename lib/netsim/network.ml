type t = {
  topo : Topology.t;
  (* next_hop.(src).(dst) is the neighbour to forward to, -1 if
     unreachable, src itself if dst = src. *)
  next_hop : int array array;
  local : (Packet.t -> unit) option array;
  mutable undeliverable : int;
}

(* Dijkstra from every source.  Cost = propagation delay in ns, with one
   extra ns per hop so equal-delay routes prefer fewer hops (and ties
   are broken deterministically by node id via the priority queue's
   ordering). *)
let compute_routes topo =
  let n = Topology.node_count topo in
  let next_hop = Array.make_matrix n n (-1) in
  let nodes = Array.of_list (Topology.nodes topo) in
  let dijkstra src =
    let dist = Array.make n Int64.max_int in
    let prev = Array.make n (-1) in
    let visited = Array.make n false in
    let src_i = Node_id.to_int src in
    dist.(src_i) <- 0L;
    let module Pq = Set.Make (struct
      type t = int64 * int

      let compare (d1, n1) (d2, n2) =
        match Int64.compare d1 d2 with 0 -> Int.compare n1 n2 | c -> c
    end) in
    let pq = ref (Pq.singleton (0L, src_i)) in
    while not (Pq.is_empty !pq) do
      let ((_, u) as min_elt) = Pq.min_elt !pq in
      pq := Pq.remove min_elt !pq;
      if not visited.(u) then begin
        visited.(u) <- true;
        List.iter
          (fun v_id ->
            let v = Node_id.to_int v_id in
            match Topology.link topo nodes.(u) v_id with
            | None -> ()
            | Some l ->
                let w = Int64.add (Engine.Time.to_ns (Link.delay l)) 1L in
                let alt = Int64.add dist.(u) w in
                if Int64.compare alt dist.(v) < 0 then begin
                  dist.(v) <- alt;
                  prev.(v) <- u;
                  pq := Pq.add (alt, v) !pq
                end)
          (Topology.neighbors topo nodes.(u))
      end
    done;
    (* First hop toward each destination: walk prev back to src. *)
    for dst = 0 to n - 1 do
      if dst = src_i then next_hop.(src_i).(dst) <- src_i
      else if prev.(dst) >= 0 then begin
        let hop = ref dst in
        while prev.(!hop) <> src_i && prev.(!hop) >= 0 do
          hop := prev.(!hop)
        done;
        if prev.(!hop) = src_i then next_hop.(src_i).(dst) <- !hop
      end
    done
  in
  Array.iter dijkstra nodes;
  next_hop

let create topo =
  let n = Topology.node_count topo in
  let t =
    { topo; next_hop = compute_routes topo; local = Array.make n None;
      undeliverable = 0 }
  in
  (* Claim every link: arriving packets are either delivered locally or
     forwarded along the precomputed route. *)
  let rec arrive node (p : Packet.t) =
    let node_i = Node_id.to_int node in
    if Node_id.equal node p.dst then
      match t.local.(node_i) with
      | Some f -> f p
      | None -> t.undeliverable <- t.undeliverable + 1
    else forward node p
  and forward node (p : Packet.t) =
    let hop = t.next_hop.(Node_id.to_int node).(Node_id.to_int p.dst) in
    if hop < 0 then
      failwith
        (Format.asprintf "Network: no route from %a to %a" Node_id.pp node Node_id.pp
           p.dst)
    else
      match Topology.link topo node (Node_id.of_int hop) with
      | None -> assert false (* next_hop only points at neighbours *)
      | Some l -> Link.send l p
  in
  List.iter
    (fun l -> Link.set_receiver l (fun p -> arrive (Link.dst l) p))
    (Topology.links topo);
  t

let topology t = t.topo
let sim t = Topology.sim t.topo

let set_local_handler t n f = t.local.(Node_id.to_int n) <- Some f

let make_packet t ~src ~dst ~size payload =
  Packet.make (Topology.packet_ids t.topo) ~src ~dst ~size
    ~now:(Engine.Sim.now (sim t)) payload

let next_packet_id t = Packet.next_id (Topology.packet_ids t.topo)

let send t ?on_transmit (p : Packet.t) =
  let src_i = Node_id.to_int p.src and dst_i = Node_id.to_int p.dst in
  if src_i <> dst_i && t.next_hop.(src_i).(dst_i) < 0 then
    failwith
      (Format.asprintf "Network.send: no route from %a to %a" Node_id.pp p.src
         Node_id.pp p.dst);
  if Node_id.equal p.src p.dst then
    (* Loopback: deliver after the current event finishes, preserving
       event-driven semantics. *)
    ignore
      (Engine.Sim.schedule_now (sim t) (fun () ->
           (match on_transmit with Some f -> f p.id | None -> ());
           match t.local.(dst_i) with
           | Some f -> f p
           | None -> t.undeliverable <- t.undeliverable + 1))
  else
    match Topology.link t.topo p.src (Node_id.of_int t.next_hop.(src_i).(dst_i)) with
    | None -> assert false
    | Some l -> Link.send l ?on_transmit p

let path t a b =
  let a_i = Node_id.to_int a and b_i = Node_id.to_int b in
  if a_i = b_i then Some [ a ]
  else if t.next_hop.(a_i).(b_i) < 0 then None
  else begin
    let rec walk node acc =
      if node = b_i then List.rev (b_i :: acc)
      else walk t.next_hop.(node).(b_i) (node :: acc)
    in
    Some (List.map Node_id.of_int (walk a_i []))
  end

let hop_count t a b = Option.map (fun p -> List.length p - 1) (path t a b)

let path_delay t a b =
  match path t a b with
  | None -> None
  | Some nodes ->
      let rec total acc = function
        | x :: (y :: _ as rest) -> (
            match Topology.link t.topo x y with
            | None -> assert false
            | Some l -> total (Engine.Time.add acc (Link.delay l)) rest)
        | [ _ ] | [] -> acc
      in
      Some (total Engine.Time.zero nodes)

let undeliverable t = t.undeliverable

type t = ..
type t += Raw of string

(* The printer registry is process-global and experiments register into
   it while sweeps run on several domains, so it is a lock-free atomic:
   a CAS loop makes concurrent [describe]s linearisable instead of
   losing one side's printer to a read-modify-write race. *)
let printers : (t -> string option) list Atomic.t = Atomic.make []

let rec describe f =
  let cur = Atomic.get printers in
  if not (Atomic.compare_and_set printers cur (cur @ [ f ])) then describe f

let pp fmt p =
  let builtin = function Raw s -> Some (Printf.sprintf "raw[%d]" (String.length s)) | _ -> None in
  let rec try_printers = function
    | [] -> "<payload>"
    | f :: rest -> ( match f p with Some s -> s | None -> try_printers rest)
  in
  Format.pp_print_string fmt (try_printers (builtin :: Atomic.get printers))

(** Unidirectional point-to-point link.

    Models the three delays of a real wire: queueing (in a drop-tail
    {!Nqueue}), serialization (packet size / link rate) and propagation
    (fixed).  The transmitter serializes one packet at a time;
    back-to-back packets leave the wire exactly one serialization time
    apart, which is what turns a window burst into the "packet train"
    CircuitStart analyses.

    Delivery invokes the receiver callback installed with
    {!set_receiver}; a link with no receiver black-holes (counted).

    Links are the substrate for fault injection: a {e fault filter}
    ({!set_fault_filter}) can lose any packet at the end of its
    serialization — the wire's capacity is consumed, the bits are not
    delivered — and the link can be taken down outright ({!set_up}),
    which rejects new packets at the transmitter and kills packets
    caught in flight.  Every lost packet is attributed to exactly one
    {!drop_counts} bucket so experiments can tell congestion from
    injected faults. *)

type t

type drop_counts = {
  queue_full : int;  (** Tail drops on the egress queue. *)
  fault_injected : int;  (** Lost by the fault filter (in-flight loss). *)
  outage : int;  (** Rejected or killed while the link was down. *)
}

val create :
  Engine.Sim.t ->
  src:Node_id.t ->
  dst:Node_id.t ->
  rate:Engine.Units.Rate.t ->
  delay:Engine.Time.t ->
  ?queue:Nqueue.capacity ->
  unit ->
  t
(** [create sim ~src ~dst ~rate ~delay ()] is an idle link.  [queue]
    defaults to {!Nqueue.unbounded}.  Raises [Invalid_argument] on a
    negative [delay]. *)

val src : t -> Node_id.t
val dst : t -> Node_id.t
val rate : t -> Engine.Units.Rate.t
val delay : t -> Engine.Time.t

val set_rate : t -> Engine.Units.Rate.t -> unit
(** Change the link rate at runtime (takes effect from the next
    serialization; the packet currently on the wire is unaffected).
    Models capacity changes for the adaptive experiments. *)

val set_receiver : t -> (Packet.t -> unit) -> unit
(** Install the handler run (at the destination) when a packet arrives. *)

val set_fault_filter : t -> (Packet.t -> bool) option -> unit
(** [set_fault_filter t (Some drop)] makes the link consult [drop]
    once per packet, at the end of its serialization; [true] loses the
    packet (counted in {!fault_drops}).  [None] removes the filter.
    {!Faults} builds the standard loss models on top of this hook. *)

val set_up : t -> bool -> unit
(** Take the link down or bring it back up.  While down, {!send}
    rejects packets at the transmitter (no [on_transmit], counted as
    outage drops) and any packet whose serialization completes is
    killed instead of delivered.  Links start up. *)

val is_up : t -> bool

val send : t -> ?on_transmit:(int -> unit) -> Packet.t -> unit
(** Hand a packet to the transmitter.  If the link is down the packet
    is dropped (counted in {!outage_drops}).  If the transmitter is
    busy the packet queues; if the queue is full it is dropped (the
    drop is visible in {!queue_drops}).  [on_transmit] fires at the
    instant the packet's serialization starts — when it is truly on
    the wire — and receives the packet's id, so a caller reusing one
    closure across many sends can tell which packet fired it (packet
    ids are monotone, which makes the id usable as a staleness
    watermark).  It never fires for a dropped packet, but a
    registration for a queued packet is only discarded on tail drop or
    outage — a caller that loses interest in a queued packet must be
    prepared to receive (and ignore) a late firing. *)

val busy : t -> bool
(** Whether a packet is currently being serialized. *)

val queue_length : t -> int
val queue_bytes : t -> int
val queue_drops : t -> int

val queue_high_watermark_bytes : t -> int
(** Largest queue occupancy ever observed on this link. *)

val packets_delivered : t -> int
val bytes_delivered : t -> int
val packets_blackholed : t -> int
(** Packets that arrived with no receiver installed. *)

val packets_accepted : t -> int
(** Every packet ever handed to {!send}, whatever its fate.  At any
    instant the conservation law
    [packets_accepted = packets_delivered + packets_blackholed
     + queue_drops + fault_drops + outage_drops + queue_length
     + (if busy then 1 else 0) + packets_in_flight]
    holds; the invariant oracles check it. *)

val packets_in_flight : t -> int
(** Packets past serialization, currently propagating towards the
    receiver (neither dropped nor delivered yet). *)

val fault_drops : t -> int
(** Packets lost by the fault filter. *)

val outage_drops : t -> int
(** Packets rejected or killed while the link was down. *)

val drop_counts : t -> drop_counts
(** All three drop counters in one read. *)

val total_drops : drop_counts -> int
val add_drop_counts : drop_counts -> drop_counts -> drop_counts
val no_drops : drop_counts
val pp_drop_counts : Format.formatter -> drop_counts -> unit

val utilization : t -> Engine.Time.t -> float
(** [utilization t horizon] is the fraction of [\[0, horizon\]] the
    transmitter spent serializing, in [\[0, 1\]].  Raises
    [Invalid_argument] if [horizon] is not positive. *)

val pp : Format.formatter -> t -> unit

type drop_counts = { queue_full : int; fault_injected : int; outage : int }

type t = {
  sim : Engine.Sim.t;
  src : Node_id.t;
  dst : Node_id.t;
  mutable rate : Engine.Units.Rate.t;
  delay : Engine.Time.t;
  queue : Nqueue.t;
  mutable receiver : (Packet.t -> unit) option;
  mutable busy : bool;
  mutable up : bool;
  (* Fault-injection hook: [true] means "lose this packet in flight".
     Consulted once per packet, at the end of its serialization. *)
  mutable fault_filter : (Packet.t -> bool) option;
  mutable delivered : int;
  mutable delivered_bytes : int;
  mutable blackholed : int;
  mutable fault_drops : int;
  mutable outage_drops : int;
  (* Conservation bookkeeping: [accepted] counts every packet handed to
     [send] (whether it is then queued, transmitted or dropped);
     [in_flight] counts packets past serialization, propagating towards
     the receiver.  At any instant
       accepted = delivered + blackholed + queue_full + fault + outage
                  + queue_length + (serializing ? 1 : 0) + in_flight
     which the invariant oracles check. *)
  mutable accepted : int;
  mutable in_flight : int;
  mutable busy_time : Engine.Time.t;
  (* Packet id -> callback fired, with that id, when serialization of
     that packet starts (the moment it is truly "on the wire").  The id
     is passed back so callers that reuse one closure across many
     packets can tell which registration fired. *)
  on_transmit : (int, int -> unit) Hashtbl.t;
  (* The packet currently serializing, and the one preallocated,
     reusable tx-done timer that finishes it: links move one cell at a
     time, so the hot path rearms a single intrusive timer per link —
     no closure, no queue entry, no handle allocated per cell. *)
  mutable serializing : Packet.t option;
  mutable tx_timer : Engine.Sim.Timer.t;
}

let deliver t (p : Packet.t) =
  t.in_flight <- t.in_flight - 1;
  match t.receiver with
  | None -> t.blackholed <- t.blackholed + 1
  | Some f ->
      t.delivered <- t.delivered + 1;
      t.delivered_bytes <- t.delivered_bytes + p.size;
      f p

(* Serialize [p]; when its last bit is on the wire ([finish_tx]),
   schedule the propagation-delayed delivery and start on the next
   queued packet.  At that instant the faults act: a link that went
   down mid-flight kills the packet (outage), and the fault filter may
   lose it — the capacity was consumed either way, which is what
   distinguishes wire loss from a tail drop. *)
let rec finish_tx t =
  let p = match t.serializing with Some p -> p | None -> assert false in
  (if not t.up then t.outage_drops <- t.outage_drops + 1
   else
     match t.fault_filter with
     | Some drop when drop p -> t.fault_drops <- t.fault_drops + 1
     | _ ->
         t.in_flight <- t.in_flight + 1;
         ignore (Engine.Sim.schedule_after t.sim t.delay (fun () -> deliver t p)));
  match Nqueue.dequeue t.queue with
  | Some next -> transmit t next
  | None ->
      t.serializing <- None;
      t.busy <- false

and transmit t (p : Packet.t) =
  t.busy <- true;
  t.serializing <- Some p;
  if Hashtbl.length t.on_transmit > 0 then begin
    match Hashtbl.find_opt t.on_transmit p.id with
    | Some f ->
        Hashtbl.remove t.on_transmit p.id;
        f p.id
    | None -> ()
  end;
  let tx_time = Engine.Units.Rate.transmission_time t.rate p.size in
  t.busy_time <- Engine.Time.add t.busy_time tx_time;
  (* At most one cell serializes at a time ([t.busy]), so the single
     tx-done timer is never armed here while still pending. *)
  Engine.Sim.Timer.arm_after t.sim t.tx_timer tx_time

let create sim ~src ~dst ~rate ~delay ?(queue = Nqueue.unbounded) () =
  if Engine.Time.is_negative delay then invalid_arg "Link.create: negative delay";
  let t =
    {
      sim;
      src;
      dst;
      rate;
      delay;
      queue = Nqueue.create queue;
      receiver = None;
      busy = false;
      up = true;
      fault_filter = None;
      delivered = 0;
      delivered_bytes = 0;
      blackholed = 0;
      fault_drops = 0;
      outage_drops = 0;
      busy_time = Engine.Time.zero;
      accepted = 0;
      in_flight = 0;
      on_transmit = Hashtbl.create 16;
      serializing = None;
      tx_timer = Engine.Sim.Timer.create sim (fun () -> ());
    }
  in
  t.tx_timer <- Engine.Sim.Timer.create sim (fun () -> finish_tx t);
  t

let src t = t.src
let dst t = t.dst
let rate t = t.rate
let delay t = t.delay
let set_receiver t f = t.receiver <- Some f
let set_fault_filter t f = t.fault_filter <- f
let set_up t up = t.up <- up
let is_up t = t.up

let send t ?on_transmit p =
  t.accepted <- t.accepted + 1;
  if not t.up then
    (* The link is cut: the packet never reaches the transmitter, so
       [on_transmit] must not fire (same contract as a tail drop). *)
    t.outage_drops <- t.outage_drops + 1
  else begin
    (match on_transmit with
    | Some f -> Hashtbl.replace t.on_transmit p.Packet.id f
    | None -> ());
    if t.busy then begin
      if not (Nqueue.enqueue t.queue p) then
        (* Dropped at the tail: the packet will never serialize. *)
        Hashtbl.remove t.on_transmit p.Packet.id
    end
    else transmit t p
  end

let busy t = t.busy
let queue_length t = Nqueue.length t.queue
let queue_bytes t = Nqueue.byte_length t.queue
let queue_drops t = Nqueue.drops t.queue
let queue_high_watermark_bytes t = Nqueue.high_watermark_bytes t.queue
let packets_delivered t = t.delivered
let bytes_delivered t = t.delivered_bytes
let packets_blackholed t = t.blackholed
let packets_accepted t = t.accepted
let packets_in_flight t = t.in_flight
let fault_drops t = t.fault_drops
let outage_drops t = t.outage_drops

let drop_counts t =
  { queue_full = Nqueue.drops t.queue;
    fault_injected = t.fault_drops;
    outage = t.outage_drops }

let total_drops c = c.queue_full + c.fault_injected + c.outage

let add_drop_counts a b =
  { queue_full = a.queue_full + b.queue_full;
    fault_injected = a.fault_injected + b.fault_injected;
    outage = a.outage + b.outage }

let no_drops = { queue_full = 0; fault_injected = 0; outage = 0 }

let pp_drop_counts fmt d =
  Format.fprintf fmt "{queue-full %d; fault %d; outage %d}" d.queue_full
    d.fault_injected d.outage

let set_rate t rate = t.rate <- rate

let utilization t horizon =
  if Engine.Time.(horizon <= Engine.Time.zero) then
    invalid_arg "Link.utilization: horizon must be positive";
  Float.min 1. (Engine.Time.ratio t.busy_time horizon)

let pp fmt t =
  Format.fprintf fmt "%a->%a %a %a q=%d%s" Node_id.pp t.src Node_id.pp t.dst
    Engine.Units.Rate.pp t.rate Engine.Time.pp t.delay (queue_length t)
    (if t.up then "" else " DOWN")

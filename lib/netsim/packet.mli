(** Packets on the wire.

    A packet is addressed node-to-node (source and final destination);
    intermediate hops forward it unchanged.  [size] is the wire size
    used for serialization-time and queue-occupancy accounting and is
    fixed at creation — the substrate never inspects the payload. *)

type t = private {
  id : int;  (** Unique per {!fresh_id_state}; for tracing and tests. *)
  src : Node_id.t;
  dst : Node_id.t;
  size : int;  (** Wire size in bytes, > 0. *)
  payload : Payload.t;
  sent_at : Engine.Time.t;  (** Creation instant (source timestamp). *)
}

type id_state
(** Generator of unique packet ids (one per network, so ids are dense
    and runs are reproducible). *)

val fresh_id_state : unit -> id_state

val next_id : id_state -> int
(** The id the next {!make} on this state will assign.  Ids are
    allocated in increasing order, so this is a monotone watermark:
    every already-created packet has a smaller id, every future one an
    id at least this large. *)

val make :
  id_state -> src:Node_id.t -> dst:Node_id.t -> size:int -> now:Engine.Time.t ->
  Payload.t -> t
(** [make ids ~src ~dst ~size ~now payload] is a fresh packet.  Raises
    [Invalid_argument] if [size <= 0]. *)

val pp : Format.formatter -> t -> unit

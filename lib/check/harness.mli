(** The randomized differential scenario harness ([torsim check]).

    Samples {!Scenario} values deterministically from a master seed and
    subjects each to four runs: an oracle-instrumented run (all
    {!Oracle} laws on), a repeat of it (same-seed determinism), a plain
    [--jobs 1] pool run (oracle passivity — probes must not change the
    result), and, batched over every surviving scenario, a [--jobs 4]
    pool run that must agree with [--jobs 1] result-for-result.
    Results are compared by digest of their marshalled bytes.

    A failing scenario is shrunk greedily to a structurally simpler one
    that still fails, and reported as a one-line reproducer replayable
    with [torsim check --replay '<line>']. *)

type failure = {
  index : int;  (** Scenario index within the sampled sweep. *)
  scenario : Scenario.t;  (** As originally sampled. *)
  shrunk : Scenario.t;  (** Smallest variant still failing. *)
  reason : string;
}

type report = { runs : int; seed : int; failures : failure list }

val run :
  ?selection:Oracle.selection ->
  ?only:Scenario.kind ->
  ?strat:Scenario.strategy ->
  ?out:string ->
  runs:int ->
  seed:int ->
  Format.formatter ->
  report
(** [run ~runs ~seed ppf] checks [runs] scenarios sampled from [seed],
    printing progress and failures to [ppf].  [selection] (default
    {!Oracle.all}) restricts the invariant oracles; [only] pins every
    sampled scenario to one kind ([torsim check --kind], e.g. a
    churn-only nightly sweep); [strat] pins every sampled scenario's
    startup strategy ([torsim check --strategy], e.g. a
    predictive-only nightly sweep); [out] names a file that receives
    one shrunk reproducer line per failure (written only when there
    are failures). *)

val replay :
  ?selection:Oracle.selection ->
  string ->
  Format.formatter ->
  (bool, string) result
(** [replay line ppf] parses a reproducer line and re-checks that one
    scenario.  [Ok true] if it passes, [Ok false] if it (still) fails,
    [Error] if the line does not parse. *)

val check_scenario :
  selection:Oracle.selection -> Scenario.t -> (string, string) result
(** One scenario through the per-scenario checks (oracle run, repeat,
    plain [--jobs 1]); [Ok digest] on success.  Exposed for the test
    suite. *)

val shrink : selection:Oracle.selection -> Scenario.t -> Scenario.t
(** Greedy structural shrink while the failure persists (bounded).
    Exposed for the test suite. *)

val pp_failure : Format.formatter -> failure -> unit

type kind = Faults | Recovery | Overload | Network | Churn
type strategy = Cs | Ss | Pr

type t = {
  kind : kind;
  seed : int;
  relays : int;
  position : int;
  bytes : int;
  loss_ppm : int;
  burst : bool;
  outage_ms : (int * int) option;
  crash_ms : int option;
  queue_cells : int;
  strategy : strategy;
  bottleneck_kbps : int;
  fast_kbps : int;
  endpoint_kbps : int;
  max_rebuilds : int;
  (* Overload-only knobs; inert defaults (1/0/0/0) for other kinds. *)
  sessions : int;
  oload_circuits : int;  (* per-relay circuit budget; 0 = unlimited *)
  oload_kib : int;  (* per-relay byte budget in KiB; 0 = unlimited *)
  arrival_ms : int;  (* mean inter-arrival gap of the crowd *)
  (* Network-only knob; inert default 0 for other kinds.  Network
     scenarios reuse [sessions] as the slot count, [bytes] as the mouse
     transfer size, [arrival_ms] as the mean think time and the
     overload budgets as the per-relay admission budget. *)
  lifet : int;  (* circuit lifetimes to complete; 0 = experiment default *)
  (* Churn-only knobs; inert 0 defaults for other kinds.  Hazards are
     stored in parts-per-million per second so the record stays all-int
     and the replay line stays exact. *)
  leave_pm : int;  (* per-relay per-second leave hazard, ppm *)
  join_pm : int;  (* per-relay per-second rejoin hazard, ppm *)
  crashpct : int;  (* percent of departures that crash (vs drain) *)
  grace_ms : int;  (* drain grace before survivors are killed *)
  epoch_ms : int;  (* directory snapshot refresh period *)
  spares : int;  (* relays that start down and join under join_pm *)
  (* Network/churn-only: the sharded-engine dimension.  0 = classic
     single-domain engine; k >= 1 runs the same scenario on the
     windowed sharded engine, whose results must be identical for
     every positive k — audited by the harness's shards=1-vs-4
     differential. *)
  shards : int;
}

let recovery_hops = 3

(* --- replay-line serialization ----------------------------------- *)

let kind_code = function
  | Faults -> "f"
  | Recovery -> "r"
  | Overload -> "o"
  | Network -> "n"
  | Churn -> "c"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "f" | "faults" -> Some Faults
  | "r" | "recovery" -> Some Recovery
  | "o" | "overload" -> Some Overload
  | "n" | "network" -> Some Network
  | "c" | "churn" -> Some Churn
  | _ -> None

let strategy_code = function Cs -> "cs" | Ss -> "ss" | Pr -> "pr"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "cs" | "circuitstart" -> Some Cs
  | "ss" | "slowstart" -> Some Ss
  | "pr" | "predictive" -> Some Pr
  | _ -> None

let to_string t =
  let outage_down, outage_up =
    match t.outage_ms with Some (d, u) -> (d, u) | None -> (-1, -1)
  in
  Printf.sprintf
    "k=%s seed=%d relays=%d pos=%d bytes=%d loss=%d burst=%d odown=%d oup=%d \
     crash=%d queue=%d strat=%s bn=%d fast=%d ep=%d rebuilds=%d sess=%d \
     ocirc=%d okib=%d arr=%d lifet=%d lpm=%d jpm=%d crashpct=%d grace=%d \
     epochms=%d spares=%d shards=%d"
    (kind_code t.kind) t.seed t.relays t.position t.bytes t.loss_ppm
    (if t.burst then 1 else 0)
    outage_down outage_up
    (match t.crash_ms with Some c -> c | None -> -1)
    t.queue_cells (strategy_code t.strategy) t.bottleneck_kbps t.fast_kbps
    t.endpoint_kbps t.max_rebuilds t.sessions t.oload_circuits t.oload_kib
    t.arrival_ms t.lifet t.leave_pm t.join_pm t.crashpct t.grace_ms t.epoch_ms
    t.spares t.shards

let of_string line =
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
               Some
                 ( String.sub kv 0 i,
                   String.sub kv (i + 1) (String.length kv - i - 1) )
           | None -> None)
  in
  let str key =
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "scenario line: missing field %S" key)
  in
  let int key =
    let* v = str key in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "scenario line: field %S is not an int" key)
  in
  (* Fields added after the first release: absent in old reproducer
     lines, which keep replaying with the inert default. *)
  let int_default key default =
    match List.assoc_opt key fields with
    | None -> Ok default
    | Some _ -> int key
  in
  let* k = str "k" in
  let* kind =
    match k with
    | "f" -> Ok Faults
    | "r" -> Ok Recovery
    | "o" -> Ok Overload
    | "n" -> Ok Network
    | "c" -> Ok Churn
    | other -> Error (Printf.sprintf "scenario line: unknown kind %S" other)
  in
  let* seed = int "seed" in
  let* relays = int "relays" in
  let* position = int "pos" in
  let* bytes = int "bytes" in
  let* loss_ppm = int "loss" in
  let* burst = int "burst" in
  let* odown = int "odown" in
  let* oup = int "oup" in
  let* crash = int "crash" in
  let* queue_cells = int "queue" in
  let* strat = str "strat" in
  let* strategy =
    match strat with
    | "cs" -> Ok Cs
    | "ss" -> Ok Ss
    | "pr" -> Ok Pr
    | other -> Error (Printf.sprintf "scenario line: unknown strategy %S" other)
  in
  let* bottleneck_kbps = int "bn" in
  let* fast_kbps = int "fast" in
  let* endpoint_kbps = int "ep" in
  let* max_rebuilds = int "rebuilds" in
  let* sessions = int_default "sess" 1 in
  let* oload_circuits = int_default "ocirc" 0 in
  let* oload_kib = int_default "okib" 0 in
  let* arrival_ms = int_default "arr" 0 in
  let* lifet = int_default "lifet" 0 in
  let* leave_pm = int_default "lpm" 0 in
  let* join_pm = int_default "jpm" 0 in
  let* crashpct = int_default "crashpct" 0 in
  let* grace_ms = int_default "grace" 0 in
  let* epoch_ms = int_default "epochms" 0 in
  let* spares = int_default "spares" 0 in
  let* shards = int_default "shards" 0 in
  Ok
    {
      kind;
      seed;
      relays;
      position;
      bytes;
      loss_ppm;
      burst = burst <> 0;
      outage_ms = (if odown < 0 then None else Some (odown, oup));
      crash_ms = (if crash < 0 then None else Some crash);
      queue_cells;
      strategy;
      bottleneck_kbps;
      fast_kbps;
      endpoint_kbps;
      max_rebuilds;
      sessions;
      oload_circuits;
      oload_kib;
      arrival_ms;
      lifet;
      leave_pm;
      join_pm;
      crashpct;
      grace_ms;
      epoch_ms;
      spares;
      shards;
    }

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b

(* --- generation --------------------------------------------------- *)

(* Relay bandwidths come from the same log-normal population the
   experiments use ({!Workload.Relay_gen}), keyed by the scenario seed:
   the slowest draw becomes the bottleneck rate, the fastest the rest
   of the star.  Storing the derived rates in the record keeps a replay
   line self-contained. *)
let rates_of_seed ~seed ~relays =
  let specs =
    Workload.Relay_gen.generate
      (Engine.Rng.create (seed lxor 0x5ca1ab1e))
      Workload.Relay_gen.default_config ~n:(Stdlib.max 2 relays)
  in
  let kbps spec =
    Engine.Units.Rate.to_bps spec.Workload.Relay_gen.bandwidth / 1000
  in
  let rates = List.map kbps specs in
  let bn = List.fold_left Stdlib.min (List.hd rates) rates in
  let fast = List.fold_left Stdlib.max (List.hd rates) rates in
  (bn, Stdlib.max fast (2 * bn))

let gen_kind (only : kind option) : t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* kind =
    match only with
    | Some k -> pure k
    | None ->
        frequencyl
          [ (3, Faults); (1, Recovery); (1, Overload); (2, Network); (2, Churn) ]
  in
  let* seed = int_range 1 0x3FFFFFFF in
  let* relays =
    match kind with
    | Faults -> int_range 2 5
    | Recovery -> int_range (recovery_hops + 1) 7
    | Overload -> int_range (recovery_hops + 1) 6
    | Network -> int_range 6 14
    (* Churn worlds need headroom over the experiment's min-up floors
       (4 relays / 2 exits) or every departure draw is suppressed. *)
    | Churn -> int_range 7 14
  in
  let* position =
    match kind with
    | Faults -> int_range 1 relays
    | Recovery -> int_range 1 recovery_hops
    | Overload | Network | Churn -> pure 1
  in
  let* bytes =
    map (fun k -> k * 1024)
      (match kind with
      | Overload -> int_range 8 32
      | Network | Churn -> int_range 4 16
      | Faults | Recovery -> int_range 8 64)
  in
  (* Overload scenarios stress the budgets, not the links: no loss, no
     outage, no crash — every failure they see is admission control or
     the OOM responder.  Network and churn scenarios are round-level:
     links, queues and crashes do not exist at that granularity, only
     the admission budgets, the pooled circuit state and (for churn)
     the departure schedule do. *)
  let* loss_ppm =
    match kind with
    | Overload | Network | Churn -> pure 0
    | Faults | Recovery -> frequency [ (2, pure 0); (3, int_range 1_000 30_000) ]
  in
  let* burst = bool in
  let* outage_ms =
    match kind with
    | Overload | Network | Churn -> pure None
    | Faults | Recovery ->
        frequency
          [
            (7, pure None);
            (3, map (fun (d, len) -> Some (d, d + len))
                  (pair (int_range 50 400) (int_range 50 400)));
          ]
  in
  let* crash_ms =
    match kind with
    | Faults -> frequency [ (8, pure None); (2, map Option.some (int_range 100 800)) ]
    | Recovery -> map Option.some (int_range 50 500)
    | Overload | Network | Churn -> pure None
  in
  let* sessions =
    match kind with
    | Overload -> int_range 3 6
    | Network | Churn -> int_range 4 12
    | _ -> pure 1
  in
  let* oload_circuits =
    match kind with
    | Overload -> frequency [ (1, pure 0); (2, int_range 2 5) ]
    | Network | Churn -> frequency [ (2, pure 0); (1, int_range 3 6) ]
    | Faults | Recovery -> pure 0
  in
  let* oload_kib =
    match kind with
    | Overload -> frequency [ (1, pure 0); (3, int_range 8 32) ]
    | Network | Churn -> frequency [ (2, pure 0); (1, int_range 32 128) ]
    | Faults | Recovery -> pure 0
  in
  let* arrival_ms =
    match kind with
    | Overload -> int_range 10 200
    | Network | Churn -> int_range 5 50
    | Faults | Recovery -> pure 0
  in
  let* lifet =
    match kind with
    | Network -> int_range 20 80
    | Churn -> int_range 20 60
    | _ -> pure 0
  in
  let* queue_cells =
    match kind with
    | Network | Churn -> pure 0
    | _ -> frequency [ (1, pure 0); (2, int_range 8 64) ]
  in
  (* Churn hazards, stored as ppm/s.  Leave rates are deliberately
     brutal compared to real consensus churn — a scenario lasts seconds,
     so the hazard has to land several departures inside the window for
     the oracles to have anything to audit. *)
  let* leave_pm =
    match kind with Churn -> int_range 50_000 300_000 | _ -> pure 0
  in
  let* join_pm =
    match kind with Churn -> int_range 100_000 500_000 | _ -> pure 0
  in
  let* crashpct = match kind with Churn -> int_range 0 100 | _ -> pure 0 in
  let* grace_ms = match kind with Churn -> int_range 200 2_000 | _ -> pure 0 in
  let* epoch_ms = match kind with Churn -> int_range 500 5_000 | _ -> pure 0 in
  let* spares = match kind with Churn -> int_range 0 3 | _ -> pure 0 in
  (* Half the round-level scenarios run on the classic engine, the
     rest exercise the sharded one — whose shards=1-vs-4 differential
     is what catches exchange-ordering bugs. *)
  let* shards =
    match kind with
    | Network | Churn -> frequencyl [ (2, 0); (1, 1); (1, 2); (1, 4) ]
    | _ -> pure 0
  in
  (* A third of the population gets a crawling client access link.
     Slow clients are the norm in deployed anonymity networks, and they
     are the only place the sender's own access queue can congest — the
     regime that exercises the pooled-pending recycling laws. *)
  let* endpoint_kbps =
    frequency [ (2, pure 100_000); (1, int_range 8 48) ]
  in
  let+ strategy = frequencyl [ (3, Cs); (1, Ss); (2, Pr) ] in
  let bottleneck_kbps, fast_kbps = rates_of_seed ~seed ~relays in
  let max_rebuilds = 3 in
  {
    kind;
    seed;
    relays;
    position;
    bytes;
    loss_ppm;
    burst;
    outage_ms;
    crash_ms;
    queue_cells;
    strategy;
    bottleneck_kbps;
    fast_kbps;
    endpoint_kbps;
    max_rebuilds;
    sessions;
    oload_circuits;
    oload_kib;
    arrival_ms;
    lifet;
    leave_pm;
    join_pm;
    crashpct;
    grace_ms;
    epoch_ms;
    spares;
    shards;
  }

let gen = gen_kind None

let generate ?only ?strat ~seed ~index () =
  let rand = Random.State.make [| 0x5eed; seed; index |] in
  let sc = QCheck2.Gen.generate1 ~rand (gen_kind only) in
  (* Pinning the strategy overrides the sampled one after the fact, so
     a pinned sweep visits the same worlds as the unpinned one — only
     the controller under test changes. *)
  match strat with None -> sc | Some s -> { sc with strategy = s }

(* --- shrinking ---------------------------------------------------- *)

(* Greedy structural shrinks, simplest first: each candidate removes
   one source of complexity while keeping the record valid.  The
   harness re-runs candidates and walks down while the failure
   persists. *)
let shrink_candidates t =
  let cands = ref [] in
  let add c = if c <> t then cands := c :: !cands in
  if t.bytes > 8 * 1024 then add { t with bytes = Stdlib.max (8 * 1024) (t.bytes / 2) };
  if t.loss_ppm > 0 then add { t with loss_ppm = 0; burst = false };
  if t.burst then add { t with burst = false };
  if t.outage_ms <> None then add { t with outage_ms = None };
  (match (t.kind, t.crash_ms) with
  | Faults, Some _ -> add { t with crash_ms = None }
  | _ -> ());
  if t.queue_cells <> 0 then add { t with queue_cells = 0 };
  (match t.kind with
  | Faults ->
      if t.relays > 2 then
        add
          {
            t with
            relays = t.relays - 1;
            position = Stdlib.min t.position (t.relays - 1);
          }
  | Recovery | Overload ->
      if t.relays > recovery_hops + 1 then add { t with relays = t.relays - 1 }
  | Network -> if t.relays > 4 then add { t with relays = t.relays - 1 }
  | Churn ->
      (* Keep headroom over the min-up floors, or the shrunk scenario
         stops churning and the failure evaporates for the wrong
         reason. *)
      if t.relays > 7 then add { t with relays = t.relays - 1 });
  if t.sessions > 1 then add { t with sessions = t.sessions - 1 };
  if t.kind = Overload && t.arrival_ms > 10 then
    add { t with arrival_ms = Stdlib.max 10 (t.arrival_ms / 2) };
  if (t.kind = Network || t.kind = Churn) && t.arrival_ms > 5 then
    add { t with arrival_ms = Stdlib.max 5 (t.arrival_ms / 2) };
  if t.lifet > 8 then add { t with lifet = Stdlib.max 8 (t.lifet / 2) };
  if t.oload_circuits > 0 then add { t with oload_circuits = 0 };
  if t.oload_kib > 0 then add { t with oload_kib = 0 };
  if t.spares > 0 then add { t with spares = 0 };
  if t.leave_pm > 50_000 then
    add { t with leave_pm = Stdlib.max 50_000 (t.leave_pm / 2) };
  if t.join_pm > 100_000 then
    add { t with join_pm = Stdlib.max 100_000 (t.join_pm / 2) };
  (* Collapse a mixed crash/drain schedule to a pure one — either pure
     drains or pure crashes is simpler to reason about than a blend. *)
  if t.crashpct > 0 && t.crashpct < 100 then begin
    add { t with crashpct = 100 };
    add { t with crashpct = 0 }
  end;
  if t.grace_ms > 200 then
    add { t with grace_ms = Stdlib.max 200 (t.grace_ms / 2) };
  if t.epoch_ms > 500 then
    add { t with epoch_ms = Stdlib.max 500 (t.epoch_ms / 2) };
  if t.position > 1 then add { t with position = 1 };
  if t.strategy = Ss then add { t with strategy = Cs };
  if t.strategy = Pr then add { t with strategy = Cs };
  (* Dropping to the classic engine is the biggest simplification, but
     a shard-differential failure needs shards > 0 to reproduce, so
     also offer the minimal sharded form. *)
  if t.shards > 0 then add { t with shards = 0 };
  if t.shards > 1 then add { t with shards = 1 };
  List.rev !cands

(* --- experiment configs ------------------------------------------ *)

let loss_model t =
  if t.loss_ppm <= 0 then None
  else if t.burst then
    Some
      (Netsim.Faults.Gilbert_elliott
         {
           p_good_to_bad = float_of_int t.loss_ppm /. 100_000.;
           p_bad_to_good = 0.3;
           loss_good = 0.;
           loss_bad = 0.5;
         })
  else Some (Netsim.Faults.Bernoulli (float_of_int t.loss_ppm /. 1_000_000.))

let queue t =
  if t.queue_cells <= 0 then Netsim.Nqueue.unbounded
  else Netsim.Nqueue.packets t.queue_cells

let controller_strategy t =
  match t.strategy with
  | Cs -> Circuitstart.Controller.Circuit_start
  | Ss -> Circuitstart.Controller.Slow_start
  | Pr -> Circuitstart.Controller.Predictive

let fault_config t =
  if t.kind <> Faults then invalid_arg "Scenario.fault_config: not a fault scenario";
  {
    Workload.Fault_experiment.default_config with
    relay_count = t.relays;
    bottleneck_distance = t.position;
    bottleneck_rate = Engine.Units.Rate.bps (t.bottleneck_kbps * 1000);
    fast_rate = Engine.Units.Rate.bps (t.fast_kbps * 1000);
    endpoint_rate = Engine.Units.Rate.bps (t.endpoint_kbps * 1000);
    transfer_bytes = t.bytes;
    strategy = controller_strategy t;
    link_queue = queue t;
    loss = loss_model t;
    outage =
      Option.map
        (fun (d, u) -> (Engine.Time.ms d, Engine.Time.ms u))
        t.outage_ms;
    crash_at = Option.map Engine.Time.ms t.crash_ms;
  }

let recovery_config t =
  if t.kind <> Recovery then
    invalid_arg "Scenario.recovery_config: not a recovery scenario";
  {
    Workload.Recovery_experiment.default_config with
    relay_count = t.relays;
    hops = recovery_hops;
    endpoint_rate = Engine.Units.Rate.bps (t.endpoint_kbps * 1000);
    transfer_bytes = t.bytes;
    strategy = controller_strategy t;
    link_queue = queue t;
    crash_at = Option.map Engine.Time.ms t.crash_ms;
    crash_position = t.position;
    max_rebuilds = t.max_rebuilds;
  }

let overload_config t =
  if t.kind <> Overload then
    invalid_arg "Scenario.overload_config: not an overload scenario";
  {
    Workload.Overload_experiment.default_config with
    relay_count = t.relays;
    hops = recovery_hops;
    endpoint_rate = Engine.Units.Rate.bps (t.endpoint_kbps * 1000);
    sessions = t.sessions;
    mean_interarrival = Engine.Time.ms (Stdlib.max 1 t.arrival_ms);
    transfer_bytes = t.bytes;
    strategy = controller_strategy t;
    link_queue = queue t;
    max_circuits = (if t.oload_circuits <= 0 then None else Some t.oload_circuits);
    max_queued_bytes =
      (if t.oload_kib <= 0 then None else Some (t.oload_kib * 1024));
    max_rebuilds = t.max_rebuilds;
  }

(* Shared by network and churn scenarios: the same round-level
   experiment, the latter with the churn schedule switched on. *)
let base_network_config t =
  {
    Workload.Network_experiment.default_config with
    relays = t.relays;
    slots = t.sessions;
    target_lifetimes = t.lifet;
    (* Safety horizon: a pathological budget cannot stall the run
       forever, it just ends early with abandoned circuits (which is a
       valid, still-audited outcome). *)
    duration = Engine.Time.s 3_600;
    budget =
      {
        Tor_model.Switchboard.max_circuits =
          (if t.oload_circuits <= 0 then None else Some t.oload_circuits);
        max_queued_bytes =
          (if t.oload_kib <= 0 then None else Some (t.oload_kib * 1024));
      };
    mean_think = Engine.Time.ms (Stdlib.max 1 t.arrival_ms);
    elephant_fraction = 0.1;
    elephant_cells = 256;
    mice_cells = Stdlib.max 4 (t.bytes / 512);
    strategy = controller_strategy t;
    sketch_bins = 256;
    sketch_max = Engine.Time.s 120;
    shards = t.shards;
  }

let network_config t =
  if t.kind <> Network then
    invalid_arg "Scenario.network_config: not a network scenario";
  base_network_config t

let churn_config t =
  if t.kind <> Churn then
    invalid_arg "Scenario.churn_config: not a churn scenario";
  {
    (base_network_config t) with
    Workload.Network_experiment.leave_hazard =
      float_of_int t.leave_pm /. 1_000_000.;
    join_hazard = float_of_int t.join_pm /. 1_000_000.;
    crash_fraction = float_of_int t.crashpct /. 100.;
    drain_grace = Engine.Time.ms (Stdlib.max 1 t.grace_ms);
    epoch_period = Engine.Time.ms (Stdlib.max 100 t.epoch_ms);
    (* Ticks finer than the scenario's few-second horizon, so the
       hazard gets enough trials to actually land departures. *)
    churn_tick = Engine.Time.ms 100;
    spare_relays = t.spares;
  }

(** Runtime invariant oracles for the simulator.

    An oracle is a set of passive probes attached to a running
    experiment — the scheduler's fire probe, the links' conservation
    counters, each hop sender's wire-departure/feedback probe and its
    controller's change hooks — that assert conservation and protocol
    laws while the simulation runs:

    - {b clock}: the event clock never goes backwards (a timer-wheel
      entry firing before its deadline surfaces as a regression,
      because the queue stamps every event with its own scheduled
      time);
    - {b link}: per-link packet conservation — every packet handed to
      {!Netsim.Link.send} is accounted delivered, dropped (by reason),
      queued, serializing or in flight;
    - {b hop}: per-hop cell conservation ([sent = feedback + in-flight]
      at every feedback instant and at end of run) and no feedback for
      a never-sent sequence number;
    - {b incarnation}: pooled-pending safety — a wire-departure
      callback is acted on only by the live incarnation whose packet-id
      watermark it passes (the PR-4 [wire_floor] fix as a checked law);
    - {b cwnd}: window trajectory laws — cwnd stays within
      [[min_cwnd, max_cwnd]], ramp-up changes are exact doublings (or
      +1 for slow start), an [Acked_count] overshoot exit equals the
      acked-in-round count, avoidance never shrinks by more than one,
      the Vegas diff is never NaN;
    - {b delivery}: the transfer's contiguous [delivered_bytes] is
      monotone;
    - {b budget}: a budgeted relay's queued-byte occupancy never
      exceeds its [max_queued_bytes] (and never goes negative) at any
      sweep instant — enforcement is synchronous, so between events the
      OOM responder has always restored the bound;
    - {b teardown}: every circuit a relay refused or OOM-killed leaves
      zero routing state and zero byte occupancy at that relay by end
      of run.

    Probes are passive: they observe and record, never schedule — an
    oracle-instrumented run is schedule-identical (and therefore
    result-identical) to a plain run, which the differential harness
    verifies.  Violations are collected, not raised, so a broken run
    still terminates and can be digested and shrunk. *)

type violation = { oracle : string; at : Engine.Time.t; detail : string }

val pp_violation : Format.formatter -> violation -> unit

(** {1 Selecting oracles} *)

type selection = {
  clock : bool;
  link : bool;
  hop : bool;
  incarnation : bool;
  cwnd : bool;
  delivery : bool;
  budget : bool;
  teardown : bool;
}

val all : selection
val none : selection

val oracle_names : string list
(** The names accepted by {!selection_of_string}. *)

val selection_of_string : string -> (selection, string) result
(** ["all"], or a comma-separated subset of {!oracle_names}. *)

val selection_to_string : selection -> string

(** {1 Attaching and reading} *)

type t

val create : ?selection:selection -> unit -> t
(** A fresh oracle with no attachments ([selection] defaults to
    {!all}). *)

val attach : t -> Engine.Sim.t -> Netsim.Link.t list -> Backtap.Transfer.t -> unit
(** Attach the selected probes to one deployed (not yet started)
    transfer and its substrate.  The signature matches the [?probe]
    hook of {!Workload.Fault_experiment.run} and
    {!Workload.Recovery_experiment.run}, so
    [~probe:(Oracle.attach oracle)] wires it in; the recovery
    experiment calls it once per circuit generation, which is
    supported (attachments accumulate; the fire probe installs once
    per simulator). *)

val attach_relays : t -> Engine.Sim.t -> Tor_model.Relay_ctl.t list -> unit
(** Put budgeted relays under watch: their occupancy is checked at
    every sweep (budget oracle) and every circuit they refuse or
    OOM-kill is checked for complete teardown at {!finish} (teardown
    oracle).  Matches the [?relay_probe] hook of
    {!Workload.Overload_experiment.run}. *)

val finish : t -> unit
(** Run the end-of-run laws (final conservation sweep, per-hop
    accounting for non-aborted senders) and detach every probe. *)

val violations : t -> violation list
(** Violations recorded so far, oldest first.  At most 32 are kept. *)

val violation_count : t -> int
(** Total violations observed, including any beyond the recording
    cap. *)

(** Randomized check scenarios and their replay lines.

    A scenario is a small, fully serializable description of one
    oracle-checked run: which experiment family to drive (a fault-
    injected star via {!Workload.Fault_experiment}, a crash-and-
    rebuild session via {!Workload.Recovery_experiment}, a flash
    crowd against budgeted relays via
    {!Workload.Overload_experiment}, a small consensus-scale
    round-level population via {!Workload.Network_experiment}, whose
    pooled circuit recycling the harness audits, or the same
    round-level population under a seeded churn schedule — joins,
    drains, crashes, restarts and directory epochs — whose departure
    hygiene the churn oracles audit), the topology size,
    the transfer
    size, the fault schedule and the startup strategy.  Everything that feeds the run — including the relay
    rates drawn from the {!Workload.Relay_gen} log-normal population —
    is a deterministic function of the record, so a scenario printed
    with {!to_string} replays byte-identically with
    [torsim check --replay].  *)

type kind = Faults | Recovery | Overload | Network | Churn
type strategy = Cs | Ss | Pr

val kind_of_string : string -> kind option
(** Accepts the one-letter replay codes ([f]/[r]/[o]/[n]/[c]) and the
    full lowercase names; [None] otherwise.  Backs [torsim check
    --kind]. *)

val strategy_of_string : string -> strategy option
(** Accepts the replay codes ([cs]/[ss]/[pr]) and the full lowercase
    names ([circuitstart]/[slowstart]/[predictive]); [None] otherwise.
    Backs [torsim check --strategy]. *)

type t = {
  kind : kind;
  seed : int;  (** Drives the experiment RNG (faults, path draws). *)
  relays : int;
  position : int;
      (** Bottleneck distance (faults) or crash position (recovery),
          1-based. *)
  bytes : int;  (** Transfer size. *)
  loss_ppm : int;  (** Wire loss in parts per million; 0 = none. *)
  burst : bool;  (** Gilbert–Elliott instead of Bernoulli loss. *)
  outage_ms : (int * int) option;  (** [(down, up)] offsets, ms. *)
  crash_ms : int option;  (** Relay crash offset, ms. *)
  queue_cells : int;  (** Link queue capacity in packets; 0 = unbounded. *)
  strategy : strategy;
  bottleneck_kbps : int;  (** Derived from the seed; stored for replay. *)
  fast_kbps : int;
  endpoint_kbps : int;
      (** Client/server access rate.  A third of the sampled population
          gets a crawling client link — the only regime where the
          sender's own access queue congests, which is what exercises
          the pooled-pending recycling laws. *)
  max_rebuilds : int;  (** Recovery/overload only. *)
  sessions : int;  (** Overload crowd size; 1 for other kinds. *)
  oload_circuits : int;
      (** Overload: per-relay circuit budget; 0 = unlimited. *)
  oload_kib : int;
      (** Overload: per-relay queued-byte budget in KiB; 0 =
          unlimited. *)
  arrival_ms : int;
      (** Overload: mean inter-arrival gap of the crowd in ms.
          Network scenarios reuse it as the mean think time. *)
  lifet : int;
      (** Network/churn: circuit lifetimes to complete; 0 = experiment
          default.  Network and churn scenarios also reuse [sessions]
          as the slot count, [bytes] as the mouse transfer size and the
          overload budgets as the per-relay admission budget. *)
  leave_pm : int;
      (** Churn: per-relay per-second leave hazard in parts per million
          (all-int so the replay line is exact); 0 for other kinds. *)
  join_pm : int;  (** Churn: rejoin hazard, ppm per second. *)
  crashpct : int;
      (** Churn: percent of departures that crash instead of draining. *)
  grace_ms : int;  (** Churn: drain grace period. *)
  epoch_ms : int;  (** Churn: directory snapshot refresh period. *)
  spares : int;
      (** Churn: relays that start down and join under [join_pm]. *)
  shards : int;
      (** Network/churn: the engine dimension — 0 runs the classic
          single-domain engine, [k >= 1] the windowed sharded engine,
          whose results must be identical for every positive [k].  The
          harness audits this with a shards=1-vs-4 result-digest
          differential. *)
}

val recovery_hops : int
(** Path length used by recovery scenarios (3). *)

val to_string : t -> string
(** One-line [key=value] form, the replayable "(seed, scenario)"
    reproducer. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}.  The overload fields ([sess]/[ocirc]/
    [okib]/[arr]) are optional with inert defaults, so reproducer lines
    from before they existed still parse. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val gen : t QCheck2.Gen.t
(** The QCheck generator behind {!generate}. *)

val gen_kind : kind option -> t QCheck2.Gen.t
(** Like {!gen}, but [Some k] pins every scenario to kind [k] —
    the engine behind [torsim check --kind]. *)

val generate :
  ?only:kind -> ?strat:strategy -> seed:int -> index:int -> unit -> t
(** The [index]-th scenario of master seed [seed] — deterministic, so
    [torsim check --runs N --seed S] samples the same scenarios on
    every machine.  [only] restricts generation to one kind (the
    per-kind stream is still deterministic, but distinct from the
    unfiltered stream's subsequence of that kind).  [strat] pins the
    startup strategy by overriding the sampled one, so a pinned sweep
    visits the same worlds as the unpinned sweep with only the
    controller changed (e.g. a predictive-only nightly pass). *)

val shrink_candidates : t -> t list
(** Structurally simpler variants, simplest-first: fewer bytes, no
    loss, no outage, no crash, fewer relays, unbounded queue.  The
    harness greedily re-runs candidates to shrink a failure. *)

val fault_config : t -> Workload.Fault_experiment.config
(** Raises [Invalid_argument] unless [kind = Faults]. *)

val recovery_config : t -> Workload.Recovery_experiment.config
(** Raises [Invalid_argument] unless [kind = Recovery]. *)

val overload_config : t -> Workload.Overload_experiment.config
(** Raises [Invalid_argument] unless [kind = Overload]. *)

val network_config : t -> Workload.Network_experiment.config
(** Raises [Invalid_argument] unless [kind = Network].  Capped by a
    sim-time safety horizon so a pathological admission budget ends
    the run early (audited, with abandoned circuits) instead of
    stalling it. *)

val churn_config : t -> Workload.Network_experiment.config
(** Raises [Invalid_argument] unless [kind = Churn].  The same
    round-level experiment as {!network_config} with the churn
    schedule switched on: hazards from [leave_pm]/[join_pm], the
    crash/drain split from [crashpct], and a 100 ms hazard tick so a
    few-second scenario still lands departures. *)

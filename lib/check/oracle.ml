type violation = { oracle : string; at : Engine.Time.t; detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "[%a] %s: %s" Engine.Time.pp v.at v.oracle v.detail

type selection = {
  clock : bool;
  link : bool;
  hop : bool;
  incarnation : bool;
  cwnd : bool;
  delivery : bool;
  budget : bool;
  teardown : bool;
}

let all = {
  clock = true;
  link = true;
  hop = true;
  incarnation = true;
  cwnd = true;
  delivery = true;
  budget = true;
  teardown = true;
}

let none = {
  clock = false;
  link = false;
  hop = false;
  incarnation = false;
  cwnd = false;
  delivery = false;
  budget = false;
  teardown = false;
}

let oracle_names =
  [ "clock"; "link"; "hop"; "incarnation"; "cwnd"; "delivery"; "budget";
    "teardown" ]

let enable sel = function
  | "clock" -> Ok { sel with clock = true }
  | "link" -> Ok { sel with link = true }
  | "hop" -> Ok { sel with hop = true }
  | "incarnation" -> Ok { sel with incarnation = true }
  | "cwnd" -> Ok { sel with cwnd = true }
  | "delivery" -> Ok { sel with delivery = true }
  | "budget" -> Ok { sel with budget = true }
  | "teardown" -> Ok { sel with teardown = true }
  | name ->
      Error
        (Printf.sprintf "unknown oracle %S (expected all or one of: %s)" name
           (String.concat ", " oracle_names))

let selection_of_string s =
  match String.trim s with
  | "all" -> Ok all
  | s ->
      String.split_on_char ',' s
      |> List.fold_left
           (fun acc name ->
             match acc with
             | Error _ as e -> e
             | Ok sel -> enable sel (String.trim name))
           (Ok none)

let selection_to_string sel =
  if sel = all then "all"
  else
    [ ("clock", sel.clock); ("link", sel.link); ("hop", sel.hop);
      ("incarnation", sel.incarnation); ("cwnd", sel.cwnd);
      ("delivery", sel.delivery); ("budget", sel.budget);
      ("teardown", sel.teardown) ]
    |> List.filter_map (fun (n, on) -> if on then Some n else None)
    |> String.concat ","

(* One attachment = one (sim, links, transfer) triple under watch.  The
   recovery experiments attach once per circuit generation, all sharing
   one simulator. *)
type attachment = {
  links : Netsim.Link.t list;
  transfer : Backtap.Transfer.t;
  mutable last_delivered : int;
}

(* One budgeted relay under watch: its occupancy is bounded at every
   sweep, and every circuit its automaton refused or OOM-killed must
   leave no routing entry behind by end of run. *)
type relay_watch = {
  ctl : Tor_model.Relay_ctl.t;
  mutable dead : Tor_model.Circuit_id.t list;  (* refused or killed here *)
}

type t = {
  sel : selection;
  mutable violations : violation list;  (* newest first, capped *)
  mutable dropped : int;  (* violations beyond the cap *)
  mutable attachments : attachment list;
  mutable relays : relay_watch list;
  mutable sims : Engine.Sim.t list;  (* sims with an installed fire probe *)
}

let max_recorded = 32

let create ?(selection = all) () =
  { sel = selection; violations = []; dropped = 0; attachments = [];
    relays = []; sims = [] }

let violations t = List.rev t.violations
let violation_count t = List.length t.violations + t.dropped

let violate t ~oracle ~at detail =
  if List.length t.violations >= max_recorded then t.dropped <- t.dropped + 1
  else t.violations <- { oracle; at; detail } :: t.violations

(* --- per-link conservation -------------------------------------- *)

let check_link t ~at link =
  let open Netsim.Link in
  let accepted = packets_accepted link in
  let accounted =
    packets_delivered link + packets_blackholed link + queue_drops link
    + fault_drops link + outage_drops link + queue_length link
    + (if busy link then 1 else 0)
    + packets_in_flight link
  in
  if accepted <> accounted then
    violate t ~oracle:"link" ~at
      (Format.asprintf
         "link %a: accepted %d <> accounted %d (delivered %d blackholed %d \
          queue-drop %d fault %d outage %d queued %d busy %b in-flight %d)"
         pp link accepted accounted (packets_delivered link)
         (packets_blackholed link) (queue_drops link) (fault_drops link)
         (outage_drops link) (queue_length link) (busy link)
         (packets_in_flight link))

(* --- transfer-level delivery ------------------------------------ *)

let check_delivery t ~at a =
  let d = Backtap.Transfer.delivered_bytes a.transfer in
  if d < a.last_delivered then
    violate t ~oracle:"delivery" ~at
      (Printf.sprintf "delivered_bytes went backwards: %d -> %d"
         a.last_delivered d)
  else a.last_delivered <- d

(* --- relay resource budgets -------------------------------------- *)

(* The byte budget is enforced synchronously inside the charge (the OOM
   responder runs before the charge returns), so between events — which
   is when sweeps run — a budgeted relay's occupancy never exceeds its
   cap.  Disabling enforcement ([Switchboard.unsafe_disable_budget])
   breaks exactly this law. *)
let check_budget t ~at w =
  let sb = Tor_model.Relay_ctl.switchboard w.ctl in
  let q = Tor_model.Switchboard.queued_bytes sb in
  if q < 0 then
    violate t ~oracle:"budget" ~at
      (Printf.sprintf "relay occupancy went negative: %d bytes" q);
  match (Tor_model.Switchboard.budget sb).Tor_model.Switchboard.max_queued_bytes
  with
  | Some cap when q > cap ->
      violate t ~oracle:"budget" ~at
        (Printf.sprintf "relay occupancy %d bytes exceeds budget %d" q cap)
  | Some _ | None -> ()

let sweep t ~at =
  if t.sel.link then
    List.iter (fun a -> List.iter (check_link t ~at) a.links) t.attachments;
  if t.sel.delivery then List.iter (check_delivery t ~at) t.attachments;
  if t.sel.budget then List.iter (check_budget t ~at) t.relays

(* --- per-sender laws -------------------------------------------- *)

let attach_sender t sim ~pos sender =
  let open Backtap.Hop_sender in
  if t.sel.hop || t.sel.incarnation then
    set_probe sender
      (Some
         (fun ev ->
           let at = Engine.Sim.now sim in
           match ev with
           | Wire_departure { pkt_id; in_use; wire_floor; applied } ->
               if t.sel.incarnation && applied
                  && not (in_use && pkt_id >= wire_floor)
               then
                 violate t ~oracle:"incarnation" ~at
                   (Printf.sprintf
                      "hop %d applied a stale wire departure: pkt %d \
                       (in_use %b, wire_floor %d)"
                      pos pkt_id in_use wire_floor)
           | Feedback { hop_seq; next_hop_seq; known = _ } ->
               if t.sel.hop then begin
                 if hop_seq < 0 || hop_seq >= next_hop_seq then
                   violate t ~oracle:"hop" ~at
                     (Printf.sprintf
                        "hop %d: feedback for never-sent cell %d (next %d)"
                        pos hop_seq next_hop_seq);
                 (* Per-hop cell conservation, checked just before the
                    feedback is processed: every first-sent cell is
                    either still in flight or already fed back. *)
                 let sent = cells_sent sender
                 and fb = feedback_received sender
                 and infl = inflight sender in
                 if sent <> fb + infl then
                   violate t ~oracle:"hop" ~at
                     (Printf.sprintf
                        "hop %d: cell conservation broken: sent %d <> \
                         feedback %d + in-flight %d"
                        pos sent fb infl)
               end));
  if t.sel.cwnd then begin
    let c = controller sender in
    let params = Circuitstart.Controller.params c in
    let clamp v =
      Stdlib.min params.Circuitstart.Params.max_cwnd
        (Stdlib.max params.Circuitstart.Params.min_cwnd v)
    in
    let prev = ref (Circuitstart.Controller.cwnd c) in
    let seen_exits = ref (Circuitstart.Controller.ramp_up_exits c) in
    let seen_gen = ref (Circuitstart.Controller.plan_generation c) in
    Circuitstart.Controller.set_on_change c (fun ~now v ->
        let p = !prev in
        prev := v;
        let fail detail = violate t ~oracle:"cwnd" ~at:now detail in
        if v < params.Circuitstart.Params.min_cwnd
           || v > params.Circuitstart.Params.max_cwnd
        then
          fail
            (Printf.sprintf "hop %d: cwnd %d outside [%d, %d]" pos v
               params.Circuitstart.Params.min_cwnd
               params.Circuitstart.Params.max_cwnd);
        (match Circuitstart.Controller.latest_diff c with
        | Some d when Float.is_nan d ->
            fail (Printf.sprintf "hop %d: Vegas diff is NaN" pos)
        | Some _ | None -> ());
        let exits = Circuitstart.Controller.ramp_up_exits c in
        let is_exit = exits > !seen_exits in
        seen_exits := exits;
        (* [leave_ramp_up] runs the change hooks before flipping the
           phase and before [start_round] resets the round counters, so
           at an exit we still read Ramp_up and the exiting round's
           acked count. *)
        match
          (Circuitstart.Controller.phase c, Circuitstart.Controller.strategy c)
        with
        | Circuitstart.Controller.Ramp_up, Circuitstart.Controller.Circuit_start
          ->
            if is_exit then begin
              match params.Circuitstart.Params.compensation with
              | Circuitstart.Params.Acked_count ->
                  let acked = Circuitstart.Controller.acked_in_round c in
                  if v <> clamp acked then
                    fail
                      (Printf.sprintf
                         "hop %d: overshoot exit cwnd %d <> acked-in-round %d"
                         pos v acked)
              | Circuitstart.Params.Rate_based -> ()
            end
            else if v <> clamp (2 * p) then
              fail
                (Printf.sprintf
                   "hop %d: ramp-up change %d -> %d is not a doubling" pos p v)
        | Circuitstart.Controller.Ramp_up, Circuitstart.Controller.Slow_start ->
            if is_exit then begin
              if v <> clamp (p / 2) then
                fail
                  (Printf.sprintf "hop %d: slow-start exit %d -> %d not halved"
                     pos p v)
            end
            else if v <> clamp (p + 1) then
              fail
                (Printf.sprintf
                   "hop %d: slow-start ramp change %d -> %d is not +1" pos p v)
        | Circuitstart.Controller.Ramp_up, Circuitstart.Controller.Fixed _ ->
            fail (Printf.sprintf "hop %d: Fixed-window cwnd changed to %d" pos v)
        | _, Circuitstart.Controller.Predictive ->
            if Circuitstart.Controller.fallen_back c then begin
              (* Fallback safety: once the model was unidentifiable the
                 controller must behave as plain Vegas avoidance — never
                 ramping again, never shrinking faster than one cell. *)
              (match Circuitstart.Controller.phase c with
              | Circuitstart.Controller.Ramp_up ->
                  fail
                    (Printf.sprintf
                       "hop %d: predictive fell back but cwnd changed in \
                        ramp-up (%d -> %d)"
                       pos p v)
              | Circuitstart.Controller.Avoidance -> ());
              if v < p - 1 then
                fail
                  (Printf.sprintf
                     "hop %d: fallback avoidance shrank by more than one: %d \
                      -> %d"
                     pos p v)
            end
            else begin
              (* Plan-bounds law: every predictive window change is the
                 head of the current plan, and plan-commit monotonicity:
                 each commit carries a plan generation strictly newer
                 than the last observed one (replan-before-commit, once
                 per round). *)
              let plan = Circuitstart.Controller.planned_trajectory c in
              let g = Circuitstart.Controller.plan_generation c in
              if Array.length plan = 0 then
                fail (Printf.sprintf "hop %d: predictive change with no plan" pos)
              else if v <> plan.(0) then
                fail
                  (Printf.sprintf
                     "hop %d: predictive commit %d -> %d is not the plan's \
                      first step (%d)"
                     pos p v plan.(0));
              if g <= !seen_gen then
                fail
                  (Printf.sprintf
                     "hop %d: predictive commit without a fresh plan \
                      (generation %d, last seen %d)"
                     pos g !seen_gen);
              seen_gen := g
            end
        | Circuitstart.Controller.Avoidance, _ ->
            if v < p - 1 then
              fail
                (Printf.sprintf
                   "hop %d: avoidance shrank by more than one: %d -> %d" pos p v))
  end

(* --- attachment -------------------------------------------------- *)

let ensure_fire_probe t sim =
  if not (List.memq sim t.sims) then begin
    t.sims <- sim :: t.sims;
    let last = ref (Engine.Sim.now sim) in
    let events = ref 0 in
    (* The fire probe observes every event with the clock already
       advanced.  A timer-wheel bug that fires an entry before its
       deadline shows up here as a clock regression: the queue reports
       each event's own scheduled time, so a premature pop is followed
       by an earlier-stamped event. *)
    Engine.Sim.set_fire_probe sim
      (Some
         (fun now ->
           if t.sel.clock && Engine.Time.(now < !last) then
             violate t ~oracle:"clock" ~at:now
               (Format.asprintf "clock went backwards: %a -> %a" Engine.Time.pp
                  !last Engine.Time.pp now);
           last := now;
           incr events;
           (* Amortized sweep of the instantaneous conservation laws. *)
           if !events land 255 = 0 then sweep t ~at:now))
  end

let attach t sim links transfer =
  let a = { links; transfer;
            last_delivered = Backtap.Transfer.delivered_bytes transfer } in
  t.attachments <- a :: t.attachments;
  List.iteri (fun pos s -> attach_sender t sim ~pos s)
    (Backtap.Transfer.senders transfer);
  ensure_fire_probe t sim

let attach_relays t sim ctls =
  let watches =
    List.map
      (fun ctl ->
        let w = { ctl; dead = [] } in
        if t.sel.teardown then
          Tor_model.Relay_ctl.set_probe ctl
            (Some
               (function
                 | Tor_model.Relay_ctl.Refused_build c
                 | Tor_model.Relay_ctl.Oom_killed c ->
                     w.dead <- c :: w.dead));
        w)
      ctls
  in
  t.relays <- t.relays @ watches;
  ensure_fire_probe t sim

let finish t =
  let at =
    match t.sims with [] -> Engine.Time.zero | sim :: _ -> Engine.Sim.now sim
  in
  sweep t ~at;
  (* End-of-run hop conservation, skipping aborted senders (abort drops
     in-flight state by design). *)
  if t.sel.hop then
    List.iter
      (fun a ->
        List.iteri
          (fun pos sender ->
            let open Backtap.Hop_sender in
            if not (aborted sender) then begin
              let sent = cells_sent sender
              and fb = feedback_received sender
              and infl = inflight sender in
              if sent <> fb + infl then
                violate t ~oracle:"hop" ~at
                  (Printf.sprintf
                     "hop %d at end of run: sent %d <> feedback %d + \
                      in-flight %d"
                     pos sent fb infl)
            end)
          (Backtap.Transfer.senders a.transfer))
      t.attachments;
  (* Every refusal and every OOM kill must have left zero routing state
     and zero occupancy behind at the relay that performed it. *)
  if t.sel.teardown then
    List.iter
      (fun w ->
        let sb = Tor_model.Relay_ctl.switchboard w.ctl in
        List.iter
          (fun c ->
            (match Tor_model.Relay_ctl.route w.ctl c with
            | Some _ ->
                violate t ~oracle:"teardown" ~at
                  (Format.asprintf
                     "refused/oom-killed circuit %a still has a routing entry"
                     Tor_model.Circuit_id.pp c)
            | None -> ());
            let q = Tor_model.Switchboard.circuit_queued_bytes sb c in
            if q <> 0 then
              violate t ~oracle:"teardown" ~at
                (Format.asprintf
                   "refused/oom-killed circuit %a still holds %d queued bytes"
                   Tor_model.Circuit_id.pp c q))
          (List.sort_uniq compare w.dead))
      t.relays;
  if t.sel.budget then List.iter (check_budget t ~at) t.relays;
  (* Detach the probes so the sim/transfer can outlive the oracle. *)
  List.iter (fun sim -> Engine.Sim.set_fire_probe sim None) t.sims;
  List.iter
    (fun a ->
      List.iter
        (fun s -> Backtap.Hop_sender.set_probe s None)
        (Backtap.Transfer.senders a.transfer))
    t.attachments;
  List.iter (fun w -> Tor_model.Relay_ctl.set_probe w.ctl None) t.relays

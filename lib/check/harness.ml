(* The differential scenario harness behind [torsim check].

   Per scenario, four runs:

   1. oracle run        — all selected invariant oracles attached;
   2. repeat oracle run — must produce a byte-identical result
                          (same-seed determinism);
   3. plain pool run    — [run_many ~jobs:1], no probes: must equal the
                          oracle run byte-for-byte (oracle passivity);
   4. batch pool run    — after the sweep, every scenario's task again
                          through [run_many ~jobs:4] in one batch: each
                          result must equal its [~jobs:1] twin
                          (scheduling-independence of the domain pool).

   Results are compared by digest of their marshalled bytes: the
   experiment result records are plain data, so equal digests mean
   byte-identical observable outcomes.  A failing scenario is shrunk
   greedily over {!Scenario.shrink_candidates} and reported as a
   replayable one-line reproducer. *)

type failure = {
  index : int;
  scenario : Scenario.t;
  shrunk : Scenario.t;
  reason : string;
}

type report = {
  runs : int;
  seed : int;
  failures : failure list;
}

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v []))

(* The network experiment's end-of-run pool audit, expressed as oracle
   violations.  The experiment is round-level — there are no cells or
   link events for the fire-probe oracles to watch — so its invariant
   is checked from the result record instead: after every circuit is
   torn down, no relay may retain occupancy from a recycled pool
   entry. *)
let pool_violations (r : Workload.Network_experiment.result) =
  if r.orphaned_circuits = 0 && r.orphaned_cells = 0 then []
  else
    [
      {
        Oracle.oracle = "pool";
        at = r.end_time;
        detail =
          Printf.sprintf
            "pool recycling leaked relay occupancy: %d orphaned circuit \
             registrations, %d orphaned queued cells after full teardown"
            r.orphaned_circuits r.orphaned_cells;
      };
    ]

(* The churn oracles, also result-record checks: (1) no circuit may
   take a round through a relay whose departure completed — the kill
   sweep must have torn it down first; (2) a completed departure leaves
   the relay with zero routing entries and zero queued bytes — drain
   and crash teardown alike release everything they charged. *)
let churn_violations (r : Workload.Network_experiment.result) =
  let violation oracle detail = { Oracle.oracle; at = r.end_time; detail } in
  List.concat
    [
      (if r.rounds_through_down = 0 then []
       else
         [
           violation "churn"
             (Printf.sprintf
                "circuits extended through departed relays: %d rounds taken \
                 through a down hop (%d departures, %d kills)"
                r.rounds_through_down r.churn_departs r.churn_kills);
         ]);
      (if r.depart_residue = 0 then []
       else
         [
           violation "drain"
             (Printf.sprintf
                "completed departures left occupancy behind: %d relays with \
                 live routing entries or queued cells after departure"
                r.depart_residue);
         ]);
    ]

(* One oracle-instrumented run of a scenario.  Returns the result
   digest and the violations the oracles recorded. *)
let instrumented_run ~selection sc =
  match sc.Scenario.kind with
  | Scenario.Network ->
      let r =
        Workload.Network_experiment.run ~seed:sc.Scenario.seed
          (Scenario.network_config sc)
      in
      (digest r, pool_violations r)
  | Scenario.Churn ->
      let r =
        Workload.Network_experiment.run ~seed:sc.Scenario.seed
          (Scenario.churn_config sc)
      in
      (digest r, pool_violations r @ churn_violations r)
  | Scenario.Faults | Scenario.Recovery | Scenario.Overload ->
      let oracle = Oracle.create ~selection () in
      let d =
        match sc.Scenario.kind with
        | Scenario.Faults ->
            digest
              (Workload.Fault_experiment.run ~seed:sc.Scenario.seed
                 ~probe:(Oracle.attach oracle) (Scenario.fault_config sc))
        | Scenario.Recovery ->
            digest
              (Workload.Recovery_experiment.run ~seed:sc.Scenario.seed
                 ~probe:(Oracle.attach oracle) (Scenario.recovery_config sc))
        | Scenario.Overload ->
            digest
              (Workload.Overload_experiment.run ~seed:sc.Scenario.seed
                 ~probe:(Oracle.attach oracle)
                 ~relay_probe:(Oracle.attach_relays oracle)
                 (Scenario.overload_config sc))
        | Scenario.Network | Scenario.Churn -> assert false
      in
      Oracle.finish oracle;
      (d, Oracle.violations oracle)

let plain_run_jobs1 sc =
  match sc.Scenario.kind with
  | Scenario.Faults ->
      digest
        (List.hd
           (Workload.Fault_experiment.run_many ~jobs:1
              [ (sc.Scenario.seed, Scenario.fault_config sc) ]))
  | Scenario.Recovery ->
      digest
        (List.hd
           (Workload.Recovery_experiment.run_many ~jobs:1
              [ (sc.Scenario.seed, Scenario.recovery_config sc) ]))
  | Scenario.Overload ->
      digest
        (List.hd
           (Workload.Overload_experiment.run_many ~jobs:1
              [ (sc.Scenario.seed, Scenario.overload_config sc) ]))
  | Scenario.Network ->
      digest
        (List.hd
           (Workload.Network_experiment.run_many ~jobs:1
              [ (sc.Scenario.seed, Scenario.network_config sc) ]))
  | Scenario.Churn ->
      digest
        (List.hd
           (Workload.Network_experiment.run_many ~jobs:1
              [ (sc.Scenario.seed, Scenario.churn_config sc) ]))

(* The sharded engine promises identical results for every positive
   shard count; audit it by running the round-level scenario at
   shards=1 and shards=4 and comparing result digests.  This is the
   differential that catches exchange-ordering bugs — see
   [Network_experiment.unsafe_unordered_exchange]. *)
let shard_differential sc =
  match sc.Scenario.kind with
  | (Scenario.Network | Scenario.Churn) when sc.Scenario.shards > 0 ->
      let config =
        match sc.Scenario.kind with
        | Scenario.Network -> Scenario.network_config sc
        | _ -> Scenario.churn_config sc
      in
      let digest_at shards =
        digest
          (Workload.Network_experiment.run ~seed:sc.Scenario.seed
             { config with Workload.Network_experiment.shards })
      in
      if digest_at 1 <> digest_at 4 then
        Some "shard differential: shards=4 result differs from shards=1"
      else None
  | _ -> None

(* The per-scenario checks (runs 1-3, plus the shard differential for
   sharded round-level scenarios).  [Ok digest] if all pass. *)
let check_scenario ~selection sc =
  let d1, v1 = instrumented_run ~selection sc in
  if v1 <> [] then
    Error
      (Format.asprintf "oracle violation%s:@;<1 2>%a"
         (match v1 with [ _ ] -> "" | _ -> "s")
         (Format.pp_print_list ~pp_sep:Format.pp_print_space Oracle.pp_violation)
         v1)
  else
    let d2, _ = instrumented_run ~selection sc in
    if d1 <> d2 then
      Error "nondeterminism: two runs of the same seed produced different results"
    else
      let d_plain = plain_run_jobs1 sc in
      if d_plain <> d1 then
        Error
          "oracle probes perturbed the run: instrumented result differs from \
           the plain run"
      else
        match shard_differential sc with
        | Some reason -> Error reason
        | None -> Ok d1

(* Run 4: the whole batch of surviving scenarios through the domain
   pool with 4 workers; each result must match its jobs=1 digest. *)
let jobs_differential passed =
  let of_kind k = List.filter (fun (_, sc, _) -> sc.Scenario.kind = k) passed in
  let mismatches = ref [] in
  let compare_batch scenarios run_many config_of =
    match scenarios with
    | [] -> ()
    | _ ->
        let results =
          run_many
            (List.map (fun (_, sc, _) -> (sc.Scenario.seed, config_of sc))
               scenarios)
        in
        List.iter2
          (fun (i, sc, d1) d -> if d <> d1 then mismatches := (i, sc) :: !mismatches)
          scenarios results
  in
  compare_batch (of_kind Scenario.Faults)
    (fun tasks -> List.map digest (Workload.Fault_experiment.run_many ~jobs:4 tasks))
    Scenario.fault_config;
  compare_batch (of_kind Scenario.Recovery)
    (fun tasks ->
      List.map digest (Workload.Recovery_experiment.run_many ~jobs:4 tasks))
    Scenario.recovery_config;
  compare_batch (of_kind Scenario.Overload)
    (fun tasks ->
      List.map digest (Workload.Overload_experiment.run_many ~jobs:4 tasks))
    Scenario.overload_config;
  compare_batch (of_kind Scenario.Network)
    (fun tasks ->
      List.map digest (Workload.Network_experiment.run_many ~jobs:4 tasks))
    Scenario.network_config;
  compare_batch (of_kind Scenario.Churn)
    (fun tasks ->
      List.map digest (Workload.Network_experiment.run_many ~jobs:4 tasks))
    Scenario.churn_config;
  List.rev !mismatches

(* Greedy shrink: walk to structurally simpler scenarios while the
   failure (any failure) persists.  Bounded, so a flaky non-failure
   cannot loop. *)
let shrink ~selection sc0 =
  let still_fails sc = Result.is_error (check_scenario ~selection sc) in
  let rec go sc budget =
    if budget = 0 then sc
    else
      match List.find_opt still_fails (Scenario.shrink_candidates sc) with
      | Some smaller -> go smaller (budget - 1)
      | None -> sc
  in
  go sc0 24

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v 2>FAIL scenario #%d: %s@,seed line:   %s@,shrunk to:   %s@,replay:      torsim check --replay '%s'@]"
    f.index f.reason
    (Scenario.to_string f.scenario)
    (Scenario.to_string f.shrunk)
    (Scenario.to_string f.shrunk)

let write_reproducers path failures =
  let oc = open_out path in
  List.iter
    (fun f -> output_string oc (Scenario.to_string f.shrunk ^ "\n"))
    failures;
  close_out oc

let run ?(selection = Oracle.all) ?only ?strat ?out ~runs ~seed ppf =
  let failures = ref [] in
  let passed = ref [] in
  for index = 0 to runs - 1 do
    let sc = Scenario.generate ?only ?strat ~seed ~index () in
    match check_scenario ~selection sc with
    | Ok d -> passed := (index, sc, d) :: !passed
    | Error reason ->
        let shrunk = shrink ~selection sc in
        failures := { index; scenario = sc; shrunk; reason } :: !failures
  done;
  let passed = List.rev !passed in
  (* jobs 1 vs 4 must agree for every scenario that passed alone. *)
  List.iter
    (fun (index, sc) ->
      let shrunk = shrink ~selection sc in
      failures :=
        {
          index;
          scenario = sc;
          shrunk;
          reason = "jobs differential: --jobs 4 result differs from --jobs 1";
        }
        :: !failures)
    (jobs_differential passed);
  let failures = List.sort (fun a b -> compare a.index b.index) !failures in
  let report = { runs; seed; failures } in
  (match failures with
  | [] ->
      Format.fprintf ppf
        "check: %d/%d scenarios passed (seed %d, oracles %s, jobs 1=4)@." runs
        runs seed
        (Oracle.selection_to_string selection)
  | _ ->
      List.iter (fun f -> Format.fprintf ppf "%a@." pp_failure f) failures;
      Format.fprintf ppf "check: %d/%d scenarios FAILED (seed %d, oracles %s)@."
        (List.length failures) runs seed
        (Oracle.selection_to_string selection);
      match out with
      | Some path ->
          write_reproducers path failures;
          Format.fprintf ppf "reproducers written to %s@." path
      | None -> ());
  report

let replay ?(selection = Oracle.all) line ppf =
  match Scenario.of_string line with
  | Error msg -> Error msg
  | Ok sc -> (
      Format.fprintf ppf "replaying: %s@." (Scenario.to_string sc);
      (* A line can parse and still be nonsense (relays <= hops, zero
         bytes, ...): the experiment's config validation rejects it with
         [Invalid_argument], which we surface as a friendly one-line
         error instead of a crash. *)
      match check_scenario ~selection sc with
      | exception Invalid_argument msg ->
          Error (Printf.sprintf "invalid scenario: %s" msg)
      | Ok _ ->
          Format.fprintf ppf "replay: scenario passes (oracles %s)@."
            (Oracle.selection_to_string selection);
          Ok true
      | Error reason ->
          Format.fprintf ppf "replay: scenario FAILS: %s@." reason;
          Ok false)

let wrap ~hops cmd circuit =
  if hops < 1 then invalid_arg "Crypto_sim.wrap: need at least one hop";
  Cell.make circuit (Cell.Relay { layers = hops; cmd })

let peel (cell : Cell.t) =
  match cell.command with
  | Cell.Relay { layers; cmd } ->
      if layers < 1 then invalid_arg "Crypto_sim.peel: no layers left";
      Cell.make cell.circuit (Cell.Relay { layers = layers - 1; cmd })
  | Cell.Create | Cell.Created | Cell.Extend _ | Cell.Extended | Cell.Destroy
  | Cell.Refused _ | Cell.Gone ->
      invalid_arg "Crypto_sim.peel: not a RELAY cell"

let exposed (cell : Cell.t) =
  match cell.command with
  | Cell.Relay { layers = 0; cmd } -> Some cmd
  | Cell.Relay _ | Cell.Create | Cell.Created | Cell.Extend _ | Cell.Extended
  | Cell.Destroy | Cell.Refused _ | Cell.Gone ->
      None

let layers (cell : Cell.t) =
  match cell.command with
  | Cell.Relay { layers; _ } -> Some layers
  | Cell.Create | Cell.Created | Cell.Extend _ | Cell.Extended | Cell.Destroy
  | Cell.Refused _ | Cell.Gone ->
      None

(** Application streams: byte sources and sinks.

    A {!Source} slices a fixed transfer into RELAY_DATA cells (the
    paper's workload: "transferring a fixed amount of data"); a
    {!Sink} absorbs them at the far end and knows when the last byte
    arrived — the time-to-last-byte metric of Figure 1. *)

module Source : sig
  type t

  val create : ?start_byte:int -> stream_id:int -> bytes:int -> unit -> t
  (** A source with [bytes] to send.  [start_byte] (default 0) skips
      the already-delivered prefix of a resumed transfer: emission
      starts at the cell containing that byte, with sequence numbers
      continuing where the previous attempt's contiguous prefix ended.
      Raises [Invalid_argument] if [bytes <= 0], if [start_byte] is
      outside [\[0, bytes)], or if it is not a multiple of
      {!Cell.payload_capacity} (resume offsets come from
      {!Sink.delivered_bytes}, which is always cell-aligned while the
      transfer is incomplete). *)

  val stream_id : t -> int
  val total_bytes : t -> int
  val remaining : t -> int

  val cell_count : t -> int
  (** Total RELAY_DATA cells this transfer needs. *)

  val next_cell : t -> Circuit_id.t -> layers:int -> Cell.t option
  (** Produce the next data cell (consuming up to
      {!Cell.payload_capacity} bytes), wrapped in [layers] onion
      layers; [None] when the source is drained.  The final cell
      carries [last = true]. *)
end

module Sink : sig
  type t

  val create : ?start_byte:int -> expected_bytes:int -> unit -> t
  (** A sink expecting [expected_bytes] in total, of which
      [start_byte] (default 0) were already delivered by a previous
      circuit generation and will not arrive again.  Raises
      [Invalid_argument] under the same conditions as
      {!Source.create}. *)

  val deliver : t -> now:Engine.Time.t -> Cell.relay_command -> unit
  (** Account an exposed relay command.  Duplicate data cells (same
      seq) are counted once — retransmissions must not complete a
      transfer early.  Non-data commands are ignored. *)

  val received_bytes : t -> int
  val cells_received : t -> int
  val duplicates : t -> int

  val delivered_bytes : t -> int
  (** The contiguous delivered prefix in bytes: every cell of the
      stream up to this offset has arrived (counting the [start_byte]
      handed to {!create}).  Unlike {!received_bytes} it ignores cells
      beyond a hole, so it is the safe resume offset for a transfer
      that dies mid-flight.  Cell-aligned until the final cell
      arrives. *)

  val complete : t -> bool
  (** All expected bytes arrived. *)

  val completed_at : t -> Engine.Time.t option
  (** Instant the last missing byte arrived. *)
end

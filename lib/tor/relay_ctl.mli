(** The relay-side control-plane automaton.

    Handles circuit lifecycle cells (CREATE/EXTEND/DESTROY) arriving at
    a relay or at the server endpoint, maintaining the per-circuit
    routing entry (predecessor, successor) that the data-plane
    transports consult:

    - CREATE from a predecessor: admit or refuse under the node's
      resource budget; if admitted, record the circuit and answer
      CREATED, else answer a typed REFUSED (busy) and keep no state.
    - EXTEND from the predecessor: if this relay already has a
      successor for the circuit, forward the EXTEND onwards (it is
      addressed to the current end of the circuit); otherwise adopt the
      target as successor and send it CREATE.
    - CREATED from the successor: answer EXTENDED to the predecessor.
    - EXTENDED from the successor: forward it to the predecessor.
    - REFUSED from the successor: the target never joined the circuit —
      roll the entry back to end-of-circuit and pass the refusal
      towards the client, so a refused extension leaves zero orphaned
      routing state anywhere.
    - DESTROY: drop the entry and propagate away from the sender.

    This gives circuit establishment its real cost: extending to hop
    [k] takes a round trip through [k] hops.

    {2 Overload protection}

    When the owning {!Switchboard} carries a {!Switchboard.budget},
    this automaton enforces it: CREATEs beyond [max_circuits] or while
    byte-overloaded are refused (admission control), and a byte-budget
    overflow mid-flight triggers the OOM responder — Tor's
    [circuits_handle_oom] analog — which destroys the heaviest
    circuits until the node is back under budget, aborting the local
    data-plane sender through the switchboard's kill switch and
    DESTROYing towards both neighbours.  Transitions in and out of the
    overloaded state, refusals and OOM kills are recorded in the
    attached {!Engine.Trace.t} (kinds [Overload_enter]/[Overload_exit],
    [Refused], [Oom_kill]). *)

type t

type entry = {
  prev : Netsim.Node_id.t;
  next : Netsim.Node_id.t option;  (** [None] while this is the end. *)
}

val create : Switchboard.t -> t
(** Installs itself as the switchboard's control handler and wires the
    budget-enforcement hooks (inert until a budget is set). *)

val route : t -> Circuit_id.t -> entry option
(** The routing entry, if the circuit is known here. *)

val circuits : t -> Circuit_id.t list
(** Known circuits, sorted. *)

val destroyed : t -> int
(** DESTROY cells processed. *)

(** {1 Resource budgets} *)

val set_budget : t -> Switchboard.budget -> unit
(** Convenience for [Switchboard.set_budget] on the owning
    switchboard. *)

val switchboard : t -> Switchboard.t

val admitted : t -> int
(** CREATEs accepted. *)

val refusals : t -> int
(** CREATEs refused under admission control. *)

val oom_kills : t -> int
(** Circuits destroyed by the OOM responder. *)

val overload_enters : t -> int
(** Transitions into the overloaded state. *)

val overloaded : t -> bool
(** Currently over either budget (bytes or circuit count). *)

val set_trace : t -> Engine.Trace.t * string -> unit
(** Record refusals, OOM kills and overload transitions under the
    given subject. *)

(** {1 Invariant probes} *)

type probe_event =
  | Refused_build of Circuit_id.t
      (** A CREATE for this circuit was refused here. *)
  | Oom_killed of Circuit_id.t
      (** This circuit was destroyed by the OOM responder here. *)

val set_probe : t -> (probe_event -> unit) option -> unit
(** Passive observer for the [Check] oracles; must not call back into
    the simulation. *)

(** {1 Crash injection} *)

val crash : t -> unit
(** Kill the relay: every circuit routing entry is lost and the
    switchboard is taken down (incoming cells black-holed, outgoing
    sends refused).  No DESTROY cells are emitted — a crashed relay
    disappears silently; its neighbours discover the failure through
    their own retransmission timeouts. *)

val restart : t -> unit
(** Bring the node back up (after a crash {e or} a completed drain —
    the departed flag is cleared too).  The routing table stays empty:
    circuits that ran through the relay are gone and must be rebuilt,
    exactly like a real relay restart. *)

val crashes : t -> int
(** Crashes injected so far. *)

(** {1 Graceful drain}

    A cleanly departing relay drains instead of crashing: from
    {!begin_drain} it refuses new CREATEs with a typed
    [Refused (Draining)] (reusing the admission-control REFUSED path)
    but keeps forwarding for circuits already routed through it.  At
    the drain deadline the churn driver calls {!finish_drain}: every
    surviving circuit is killed locally and DESTROYed towards both
    neighbours (a departing relay, unlike a crashed one, says goodbye),
    all routing entries and byte occupancy are released, and the
    switchboard flips to the {e departed} state where later setup
    attempts bounce back as {!Cell.Gone}. *)

val begin_drain : t -> unit
(** Start refusing new circuits (idempotent).  Traced as
    [Drain_begin]. *)

val finish_drain : t -> unit
(** The drain deadline: destroy surviving circuits (sorted circuit-id
    order, so the cell order is deterministic), release every routing
    entry and all occupancy, and mark the node departed.  Traced as
    [Drain_end]. *)

val draining : t -> bool

val drain_refusals : t -> int
(** CREATEs refused with reason [Draining]. *)

val drain_kills : t -> int
(** Circuits destroyed at drain deadlines. *)

(** The relay-side control-plane automaton.

    Handles circuit lifecycle cells (CREATE/EXTEND/DESTROY) arriving at
    a relay or at the server endpoint, maintaining the per-circuit
    routing entry (predecessor, successor) that the data-plane
    transports consult:

    - CREATE from a predecessor: record the circuit, answer CREATED.
    - EXTEND from the predecessor: if this relay already has a
      successor for the circuit, forward the EXTEND onwards (it is
      addressed to the current end of the circuit); otherwise adopt the
      target as successor and send it CREATE.
    - CREATED from the successor: answer EXTENDED to the predecessor.
    - EXTENDED from the successor: forward it to the predecessor.
    - DESTROY: drop the entry and propagate away from the sender.

    This gives circuit establishment its real cost: extending to hop
    [k] takes a round trip through [k] hops. *)

type t

type entry = {
  prev : Netsim.Node_id.t;
  next : Netsim.Node_id.t option;  (** [None] while this is the end. *)
}

val create : Switchboard.t -> t
(** Installs itself as the switchboard's control handler. *)

val route : t -> Circuit_id.t -> entry option
(** The routing entry, if the circuit is known here. *)

val circuits : t -> Circuit_id.t list
(** Known circuits, sorted. *)

val destroyed : t -> int
(** DESTROY cells processed. *)

(** {1 Crash injection} *)

val crash : t -> unit
(** Kill the relay: every circuit routing entry is lost and the
    switchboard is taken down (incoming cells black-holed, outgoing
    sends refused).  No DESTROY cells are emitted — a crashed relay
    disappears silently; its neighbours discover the failure through
    their own retransmission timeouts. *)

val restart : t -> unit
(** Bring the node back up.  The routing table stays empty: circuits
    that ran through the relay are gone and must be rebuilt, exactly
    like a real relay restart. *)

val crashes : t -> int
(** Crashes injected so far. *)

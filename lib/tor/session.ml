type reason = Rebuild_budget | No_path

let reason_to_string = function
  | Rebuild_budget -> "rebuild-budget"
  | No_path -> "no-path"

type outcome =
  | Completed of { at : Engine.Time.t; rebuilds : int }
  | Exhausted of { at : Engine.Time.t; reason : reason; rebuilds : int }

type transfer_handle = {
  start : unit -> unit;
  delivered : unit -> int;
  teardown : unit -> unit;
}

type deploy =
  circuit:Circuit.t ->
  offset:int ->
  on_complete:(Engine.Time.t -> unit) ->
  on_fail:(failed_hop:int option -> Engine.Time.t -> unit) ->
  transfer_handle

type phase = Idle | Building | Transferring | Backing_off | Finished of outcome

type t = {
  sb : Switchboard.t;
  dir : Directory.t;
  ids : Circuit_id.gen;
  server : Netsim.Node_id.t;
  rng : Engine.Rng.t;
  hops : int;
  deploy : deploy;
  selection : Directory.selection;
  max_rebuilds : int;
  build_timeout : Engine.Time.t;
  backoff_base : Engine.Time.t;
  backoff_cap : Engine.Time.t;
  backoff_jitter : float;
  trace : (Engine.Trace.t * string) option;
  on_outcome : (outcome -> unit) option;
  mutable phase : phase;
  (* node -> the relay's Directory incarnation when we excluded it.  An
     exclusion is forgiven once the directory shows a later incarnation
     (the relay restarted): crashed or departed relays stay excluded
     exactly until they come back. *)
  mutable exclusions : int Netsim.Node_id.Map.t;
  mutable current : Circuit.t option;
  mutable handle : transfer_handle option;
  mutable rebuild_count : int;
  mutable gen_count : int;
  mutable refused_builds : int;
  mutable gone_builds : int;
  mutable drain_refused_builds : int;
  (* The failure that the in-progress recovery is recovering from;
     cleared when the resumed transfer starts. *)
  mutable failure_at : Engine.Time.t option;
  mutable recoveries : Engine.Time.t list;  (* newest first *)
}

let sim t = Netsim.Network.sim (Switchboard.network t.sb)
let now t = Engine.Sim.now (sim t)

let record t kind detail =
  match t.trace with
  | Some (registry, prefix) ->
      Engine.Trace.record_event registry kind ~subject:prefix ~detail (now t)
  | None -> ()

let create ~sb ~directory ~ids ~server ~rng ~hops ~deploy
    ?(selection = Directory.Bandwidth_weighted) ?(max_rebuilds = 3)
    ?(build_timeout = Engine.Time.s 10) ?(backoff_base = Engine.Time.ms 250)
    ?(backoff_cap = Engine.Time.s 4) ?(backoff_jitter = 0.25) ?trace ?on_outcome
    () =
  if hops < 1 then invalid_arg "Session.create: hops must be positive";
  if max_rebuilds < 0 then invalid_arg "Session.create: max_rebuilds must be >= 0";
  if backoff_jitter < 0. then invalid_arg "Session.create: backoff_jitter must be >= 0";
  if Engine.Time.(backoff_base <= Engine.Time.zero) then
    invalid_arg "Session.create: backoff_base must be positive";
  if Engine.Time.(backoff_cap < backoff_base) then
    invalid_arg "Session.create: backoff_cap must be >= backoff_base";
  {
    sb; dir = directory; ids; server; rng; hops; deploy; selection; max_rebuilds;
    build_timeout; backoff_base; backoff_cap; backoff_jitter; trace; on_outcome;
    phase = Idle;
    exclusions = Netsim.Node_id.Map.empty;
    current = None;
    handle = None;
    rebuild_count = 0;
    gen_count = 0;
    refused_builds = 0;
    gone_builds = 0;
    drain_refused_builds = 0;
    failure_at = None;
    recoveries = [];
  }

let offset t = match t.handle with Some h -> h.delivered () | None -> 0

let finish t outcome =
  t.phase <- Finished outcome;
  (match outcome with
  | Exhausted { reason; rebuilds; _ } ->
      record t Engine.Trace.Exhausted
        (Printf.sprintf "%s after %d rebuild%s, %d bytes delivered"
           (reason_to_string reason) rebuilds
           (if rebuilds = 1 then "" else "s")
           (offset t))
  | Completed _ -> ());
  match t.on_outcome with Some f -> f outcome | None -> ()

let exclude t node =
  t.exclusions <-
    Netsim.Node_id.Map.add node (Directory.incarnation t.dir node) t.exclusions

(* Forgive exclusions whose relay has restarted since: the directory's
   incarnation counter moved past the one we recorded. *)
let prune_exclusions t =
  t.exclusions <-
    Netsim.Node_id.Map.filter
      (fun node inc -> Directory.incarnation t.dir node <= inc)
      t.exclusions

(* Tear the failed generation down: the data plane unregisters its
   per-node state, and a DESTROY from the client walks the control
   plane's routing entries along the still-live prefix (it stops at a
   crashed relay, whose table died with it). *)
let teardown_generation t (circuit : Circuit.t) =
  (match t.handle with Some h -> h.teardown () | None -> ());
  match circuit.relays with
  | guard :: _ ->
      Switchboard.send_cell t.sb ~dst:guard.Relay_info.node
        (Cell.make circuit.id Cell.Destroy)
  | [] -> ()

let rec attempt t =
  prune_exclusions t;
  let exclude_list =
    List.map fst (Netsim.Node_id.Map.bindings t.exclusions)
  in
  match
    Directory.select_path t.dir t.rng ~selection:t.selection ~exclude:exclude_list
      ~hops:t.hops ()
  with
  | None ->
      finish t
        (Exhausted { at = now t; reason = No_path; rebuilds = t.rebuild_count })
  | Some relays ->
      let circuit =
        Circuit.make ~id:(Circuit_id.next t.ids)
          ~client:(Switchboard.node t.sb) ~relays ~server:t.server
      in
      t.current <- Some circuit;
      t.phase <- Building;
      Circuit_builder.build t.sb circuit ~timeout:t.build_timeout
        ~on_done:(function
          | Circuit_builder.Failed msg ->
              (* No way to tell which relay stalled the ladder: suspect
                 the whole path. *)
              List.iter (fun (r : Relay_info.t) -> exclude t r.node) relays;
              if t.failure_at = None then t.failure_at <- Some (now t);
              handle_failure t (Printf.sprintf "build failed: %s" msg)
          | Circuit_builder.Refused { reason; _ } ->
              (* Busy (or draining) is not crashed: a refusing relay is
                 healthy — busy ones may be the best choice once load
                 drains, draining ones come back as a fresh incarnation
                 after restart — so nobody joins the exclusion list;
                 the backoff plus a fresh path draw is the whole
                 response. *)
              (match reason with
              | Cell.Busy -> t.refused_builds <- t.refused_builds + 1
              | Cell.Draining ->
                  t.drain_refused_builds <- t.drain_refused_builds + 1);
              let reason_s = Cell.refusal_reason_to_string reason in
              record t Engine.Trace.Refused
                (Printf.sprintf "build refused (%s); refusals %d+%d" reason_s
                   t.refused_builds t.drain_refused_builds);
              if t.failure_at = None then t.failure_at <- Some (now t);
              handle_failure t
                (Printf.sprintf "build refused: relay %s" reason_s)
          | Circuit_builder.Gone { node; _ } ->
              (* The target cleanly departed under a stale snapshot:
                 exclude exactly that relay (the rest of the path is
                 fine) until the directory shows it restarted. *)
              t.gone_builds <- t.gone_builds + 1;
              exclude t node;
              if t.failure_at = None then t.failure_at <- Some (now t);
              handle_failure t
                (Format.asprintf "build hit departed relay %a"
                   Netsim.Node_id.pp node)
          | Circuit_builder.Established _ ->
              let off = offset t in
              let handle =
                t.deploy ~circuit ~offset:off
                  ~on_complete:(fun at -> on_complete t at)
                  ~on_fail:(fun ~failed_hop at ->
                    on_transfer_fail t circuit ~failed_hop at)
              in
              t.handle <- Some handle;
              t.gen_count <- t.gen_count + 1;
              t.phase <- Transferring;
              (* Watch the circuit for a remote DESTROY while the
                 transfer runs: an overloaded relay shedding load (OOM
                 kill) tells the client this way.  The builder
                 unregistered its handler before [on_done], so the id
                 is free. *)
              Switchboard.register_circuit t.sb circuit.id
                (fun ~from:_ (cell : Cell.t) ->
                  match cell.command with
                  | Cell.Destroy -> on_remote_destroy t circuit
                  | _ -> ());
              (match t.failure_at with
              | Some failed ->
                  let recovered_in = Engine.Time.diff (now t) failed in
                  t.recoveries <- recovered_in :: t.recoveries;
                  t.failure_at <- None;
                  record t Engine.Trace.Resume
                    (Printf.sprintf "offset=%d recovered_in=%.6fs" off
                       (Engine.Time.to_sec_f recovered_in))
              | None -> ());
              handle.start ())
        ()

and on_complete t at =
  match t.phase with
  | Transferring ->
      (match t.current with
      | Some c ->
          Switchboard.unregister_circuit t.sb c.id;
          (* Close the finished circuit cleanly, as a real client
             would: without the DESTROY every relay on the path keeps
             its routing entry — and, under admission control, the
             circuit-budget slot it occupies — forever, starving later
             arrivals. *)
          teardown_generation t c
      | None -> ());
      finish t (Completed { at; rebuilds = t.rebuild_count })
  | Idle | Building | Backing_off | Finished _ -> ()

(* A relay destroyed the circuit under us (OOM shedding).  The client
   cannot tell which relay was overloaded, and busy is not crashed —
   so, as with refusals, nobody is excluded: tear down, back off,
   rebuild on a fresh path draw. *)
and on_remote_destroy t (circuit : Circuit.t) =
  match t.phase with
  | Transferring
    when (match t.current with
         | Some c -> Circuit_id.to_int c.id = Circuit_id.to_int circuit.id
         | None -> false) ->
      Switchboard.unregister_circuit t.sb circuit.id;
      t.failure_at <- Some (now t);
      teardown_generation t circuit;
      handle_failure t "circuit destroyed remotely (overloaded relay)"
  | Idle | Building | Transferring | Backing_off | Finished _ -> ()

and on_transfer_fail t circuit ~failed_hop at =
  match t.phase with
  | Transferring ->
      Switchboard.unregister_circuit t.sb circuit.id;
      t.failure_at <- Some at;
      (* The sender at [failed_hop] declared its successor — path
         position [failed_hop + 1] — unreachable.  Exclude it if it is
         a relay (a dead server cannot be routed around). *)
      (match failed_hop with
      | Some pos -> (
          match List.nth_opt (Circuit.nodes circuit) (pos + 1) with
          | Some node when not (Netsim.Node_id.equal node t.server) ->
              exclude t node
          | Some _ | None -> ())
      | None -> ());
      teardown_generation t circuit;
      handle_failure t
        (Printf.sprintf "transfer failed at hop %s"
           (match failed_hop with Some h -> string_of_int h | None -> "?"))
  | Idle | Building | Backing_off | Finished _ -> ()

and handle_failure t detail =
  if t.rebuild_count >= t.max_rebuilds then
    finish t
      (Exhausted { at = now t; reason = Rebuild_budget; rebuilds = t.rebuild_count })
  else begin
    t.rebuild_count <- t.rebuild_count + 1;
    (* Exponential backoff with a cap, stretched by uniform jitter so a
       thundering herd of sessions does not rebuild in lockstep. *)
    let doublings = Stdlib.min (t.rebuild_count - 1) 16 in
    let base = Engine.Time.to_sec_f t.backoff_base *. (2. ** float_of_int doublings) in
    let capped = Float.min base (Engine.Time.to_sec_f t.backoff_cap) in
    let jitter =
      if t.backoff_jitter > 0. then 1. +. Engine.Rng.float t.rng t.backoff_jitter
      else 1.
    in
    let delay = Engine.Time.of_sec_f (capped *. jitter) in
    t.phase <- Backing_off;
    record t Engine.Trace.Rebuild
      (Printf.sprintf "%s; rebuild %d/%d in %.3fs" detail t.rebuild_count
         t.max_rebuilds (Engine.Time.to_sec_f delay));
    ignore (Engine.Sim.schedule_after (sim t) delay (fun () -> attempt t)
            : Engine.Sim.handle)
  end

let start t =
  match t.phase with
  | Idle -> attempt t
  | Building | Transferring | Backing_off | Finished _ ->
      invalid_arg "Session.start: already started"

let outcome t = match t.phase with Finished o -> Some o | _ -> None
let rebuilds t = t.rebuild_count
let refused_builds t = t.refused_builds
let gone_builds t = t.gone_builds
let drain_refused_builds t = t.drain_refused_builds
let generation t = t.gen_count
let circuit t = t.current
let delivered_bytes t = offset t
let excluded t =
  prune_exclusions t;
  List.map fst (Netsim.Node_id.Map.bindings t.exclusions)
let recovery_times t = List.rev t.recoveries

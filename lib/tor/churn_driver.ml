type config = {
  leave_rate : float;
  join_rate : float;
  crash_fraction : float;
  drain_grace : Engine.Time.t;
  epoch_period : Engine.Time.t;
  tick : Engine.Time.t;
  min_up : int;
  horizon : Engine.Time.t;
}

let default_config =
  {
    leave_rate = 0.01;
    join_rate = 0.05;
    crash_fraction = 0.5;
    drain_grace = Engine.Time.s 5;
    epoch_period = Engine.Time.s 10;
    tick = Engine.Time.s 1;
    min_up = 3;
    horizon = Engine.Time.s 120;
  }

let validate c =
  if c.leave_rate < 0. || c.join_rate < 0. then
    invalid_arg "Churn_driver: rates must be >= 0";
  if c.crash_fraction < 0. || c.crash_fraction > 1. then
    invalid_arg "Churn_driver: crash_fraction must be in [0, 1]";
  if Engine.Time.(c.tick <= Engine.Time.zero) then
    invalid_arg "Churn_driver: tick must be positive";
  if Engine.Time.(c.epoch_period <= Engine.Time.zero) then
    invalid_arg "Churn_driver: epoch_period must be positive";
  if c.min_up < 0 then invalid_arg "Churn_driver: min_up must be >= 0"

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  dir : Directory.t;
  (* Relays under churn control, in a fixed order: every per-tick draw
     walks this list, so the schedule is a pure function of the seed. *)
  controlled : (Relay_info.t * Relay_ctl.t) list;
  config : config;
  deadlines : (int, Engine.Time.t) Hashtbl.t;  (* node -> drain deadline *)
  trace : (Engine.Trace.t * string) option;
  mutable stopped : bool;
  mutable departs : int;
  mutable crashes : int;
  mutable drains_completed : int;
  mutable restarts : int;
}

let record t detail =
  match t.trace with
  | Some (registry, subject) ->
      Engine.Trace.record_event registry Engine.Trace.Churn ~subject ~detail
        (Engine.Sim.now t.sim)
  | None -> ()

let create ~sim ~rng ~directory ~relays ~config ?trace () =
  validate config;
  {
    sim; rng; dir = directory; controlled = relays; config;
    deadlines = Hashtbl.create 16; trace; stopped = false;
    departs = 0; crashes = 0; drains_completed = 0; restarts = 0;
  }

let up_count t =
  List.length
    (List.filter
       (fun ((r : Relay_info.t), _) -> Directory.status t.dir r.node = Directory.Up)
       t.controlled)

(* One Bernoulli trial per controlled relay per tick, in list order.
   Every branch draws exactly when its hazard is positive, so a
   zero-hazard driver consumes no randomness at all. *)
let step t =
  let c = t.config in
  let dt = Engine.Time.to_sec_f c.tick in
  let p_leave = Float.min 1. (c.leave_rate *. dt) in
  let p_join = Float.min 1. (c.join_rate *. dt) in
  List.iter
    (fun ((r : Relay_info.t), ctl) ->
      let node = r.node in
      match Directory.status t.dir node with
      | Directory.Up ->
          if
            p_leave > 0.
            && Engine.Rng.float t.rng 1.0 < p_leave
            && up_count t > c.min_up
          then begin
            t.departs <- t.departs + 1;
            if c.crash_fraction > 0.
               && Engine.Rng.float t.rng 1.0 < c.crash_fraction
            then begin
              (* Crash: no goodbye, neighbours discover by timeout. *)
              t.crashes <- t.crashes + 1;
              Relay_ctl.crash ctl;
              Hashtbl.remove t.deadlines (Netsim.Node_id.to_int node);
              Directory.mark_down t.dir node;
              record t (Format.asprintf "crash %a" Netsim.Node_id.pp node)
            end
            else begin
              (* Clean departure: drain until the grace period ends. *)
              Relay_ctl.begin_drain ctl;
              Directory.mark_draining t.dir node;
              Hashtbl.replace t.deadlines (Netsim.Node_id.to_int node)
                Engine.Time.(add (Engine.Sim.now t.sim) c.drain_grace);
              record t (Format.asprintf "drain %a" Netsim.Node_id.pp node)
            end
          end
      | Directory.Draining -> (
          match Hashtbl.find_opt t.deadlines (Netsim.Node_id.to_int node) with
          | Some deadline
            when Engine.Time.(Engine.Sim.now t.sim >= deadline) ->
              t.drains_completed <- t.drains_completed + 1;
              Hashtbl.remove t.deadlines (Netsim.Node_id.to_int node);
              Relay_ctl.finish_drain ctl;
              Directory.mark_down t.dir node;
              record t (Format.asprintf "departed %a" Netsim.Node_id.pp node)
          | Some _ | None -> ())
      | Directory.Down ->
          if p_join > 0. && Engine.Rng.float t.rng 1.0 < p_join then begin
            t.restarts <- t.restarts + 1;
            Relay_ctl.restart ctl;
            Directory.mark_up t.dir node;
            record t (Format.asprintf "restart %a" Netsim.Node_id.pp node)
          end)
    t.controlled

let start t =
  let past_horizon () =
    t.stopped || Engine.Time.(Engine.Sim.now t.sim >= t.config.horizon)
  in
  Engine.Sim.every t.sim t.config.tick (fun () -> step t) ~stop:past_horizon;
  Engine.Sim.every t.sim t.config.epoch_period
    (fun () -> Directory.advance_epoch t.dir)
    ~stop:past_horizon

let stop t = t.stopped <- true
let departs t = t.departs
let crashes t = t.crashes
let drains_completed t = t.drains_completed
let restarts t = t.restarts

let size = 512
let payload_capacity = 498

type relay_command =
  | Relay_data of { stream_id : int; seq : int; length : int; last : bool }
  | Relay_sendme of { stream_id : int option }
  | Relay_end of { stream_id : int }

type refusal_reason = Busy | Draining

let refusal_reason_to_string = function Busy -> "busy" | Draining -> "draining"

type command =
  | Create
  | Created
  | Extend of { next : Netsim.Node_id.t }
  | Extended
  | Refused of { reason : refusal_reason }
  | Gone
  | Destroy
  | Relay of { layers : int; cmd : relay_command }

type t = { circuit : Circuit_id.t; command : command }
type Netsim.Payload.t += Wire of t

let make circuit command = { circuit; command }

let data circuit ~layers ~stream_id ~seq ~length ~last =
  if length < 1 || length > payload_capacity then
    invalid_arg "Cell.data: length out of range";
  if seq < 0 then invalid_arg "Cell.data: negative seq";
  if layers < 0 then invalid_arg "Cell.data: negative layer count";
  make circuit (Relay { layers; cmd = Relay_data { stream_id; seq; length; last } })

let is_relay t = match t.command with Relay _ -> true | _ -> false

let relay_cmd t = match t.command with Relay { cmd; _ } -> Some cmd | _ -> None

let pp_relay_command fmt = function
  | Relay_data { stream_id; seq; length; last } ->
      Format.fprintf fmt "DATA s%d #%d %dB%s" stream_id seq length
        (if last then " last" else "")
  | Relay_sendme { stream_id = None } -> Format.fprintf fmt "SENDME circ"
  | Relay_sendme { stream_id = Some s } -> Format.fprintf fmt "SENDME s%d" s
  | Relay_end { stream_id } -> Format.fprintf fmt "END s%d" stream_id

let pp fmt t =
  match t.command with
  | Create -> Format.fprintf fmt "%a CREATE" Circuit_id.pp t.circuit
  | Created -> Format.fprintf fmt "%a CREATED" Circuit_id.pp t.circuit
  | Extend { next } ->
      Format.fprintf fmt "%a EXTEND->%a" Circuit_id.pp t.circuit Netsim.Node_id.pp next
  | Extended -> Format.fprintf fmt "%a EXTENDED" Circuit_id.pp t.circuit
  | Refused { reason } ->
      Format.fprintf fmt "%a REFUSED %s" Circuit_id.pp t.circuit
        (refusal_reason_to_string reason)
  | Gone -> Format.fprintf fmt "%a GONE" Circuit_id.pp t.circuit
  | Destroy -> Format.fprintf fmt "%a DESTROY" Circuit_id.pp t.circuit
  | Relay { layers; cmd } ->
      Format.fprintf fmt "%a RELAY[%d] %a" Circuit_id.pp t.circuit layers
        pp_relay_command cmd

(* Compare-and-set so concurrent domains finalizing networks register
   the printer exactly once. *)
let registered = Atomic.make false

let register_printer () =
  if Atomic.compare_and_set registered false true then begin
    Netsim.Payload.describe (function
      | Wire c -> Some (Format.asprintf "%a" pp c)
      | _ -> None)
  end

(** Client-side circuit lifecycle management: one logical transfer
    across circuit generations.

    A session owns the control-plane loop that real Tor clients run
    and the simulator previously lacked: build a circuit
    ({!Circuit_builder}), hand it to the data plane, and when either
    establishment or the transfer fails, {e recover} — exclude the
    relays suspected of causing the failure, draw an alternate path
    from the {!Directory} (pluggable {!Directory.selection} policy,
    seeded through the session's {!Engine.Rng.t}), wait an
    exponentially backed-off delay with a cap and jitter, tear the old
    generation down (DESTROY along the live prefix plus data-plane
    unregistration, so no stale switchboard state leaks), rebuild, and
    resume the transfer from the last contiguously delivered byte.

    The data plane is abstract: the session drives any transport that
    can be deployed at a byte offset and report delivered-prefix
    progress (see {!type:deploy}).  [Backtap.Transfer] satisfies this
    via its [offset] / [delivered_bytes] support; the wiring lives in
    [Workload.Recovery_experiment] so this module stays free of a
    dependency cycle.

    Recovery is bounded: at most [max_rebuilds] rebuild attempts are
    made before the session gives up with a terminal
    {!constructor:Exhausted} outcome carrying a typed {!reason}.  Every
    rebuild, resume and exhaustion is recorded in the session's
    {!Engine.Trace.t} (kinds [Rebuild], [Resume], [Exhausted]), with
    the time-to-recover in the resume detail.

    Two failure shapes deliberately skip the exclusion step, because
    the relay involved is {e busy}, not suspected-crashed: an
    admission-control refusal during establishment
    ({!Circuit_builder.Refused}, reason [Busy] or [Draining]), and a
    remote DESTROY arriving mid-transfer (an overloaded relay's OOM
    responder shedding the circuit).  Both back off and redraw a path;
    permanently blacklisting a hot relay would starve the network's
    best capacity.

    A typed {!Circuit_builder.Gone} (the build raced a clean departure
    under a stale directory snapshot) {e does} exclude — but only the
    departed relay, and only until it restarts: exclusions are tagged
    with the relay's {!Directory.incarnation} at exclusion time and
    forgiven once the directory shows a later incarnation.  The same
    forgiveness applies to relays excluded on build timeouts and
    transfer failures (crashes), so "crashed relays stay excluded until
    restart" holds without any relay being blacklisted forever. *)

type reason =
  | Rebuild_budget  (** Every allowed rebuild attempt failed. *)
  | No_path
      (** The directory could not produce a path avoiding the excluded
          relays. *)

val reason_to_string : reason -> string
(** ["rebuild-budget"] or ["no-path"]. *)

type outcome =
  | Completed of { at : Engine.Time.t; rebuilds : int }
      (** The transfer delivered every byte, after [rebuilds] circuit
          rebuilds (0 = the first circuit survived). *)
  | Exhausted of { at : Engine.Time.t; reason : reason; rebuilds : int }
      (** The session gave up.  Terminal, reached in bounded simulated
          time even with [max_rebuilds = 0]. *)

type transfer_handle = {
  start : unit -> unit;  (** Inject the transfer (called once). *)
  delivered : unit -> int;
      (** Contiguously delivered bytes so far; must stay readable after
          [teardown] — the session reads it to compute the next
          generation's resume offset. *)
  teardown : unit -> unit;
      (** Unregister this generation's data-plane state everywhere.
          Must be idempotent. *)
}

type deploy =
  circuit:Circuit.t ->
  offset:int ->
  on_complete:(Engine.Time.t -> unit) ->
  on_fail:(failed_hop:int option -> Engine.Time.t -> unit) ->
  transfer_handle
(** Deploy (but do not start) the data plane on [circuit], resuming
    from byte [offset].  Exactly one of [on_complete] / [on_fail] must
    eventually fire, at most once.  [failed_hop] is the path position
    (0 = client) of the sender that declared its successor dead, if
    known — the session excludes that successor from future paths. *)

type t

val create :
  sb:Switchboard.t ->
  directory:Directory.t ->
  ids:Circuit_id.gen ->
  server:Netsim.Node_id.t ->
  rng:Engine.Rng.t ->
  hops:int ->
  deploy:deploy ->
  ?selection:Directory.selection ->
  ?max_rebuilds:int ->
  ?build_timeout:Engine.Time.t ->
  ?backoff_base:Engine.Time.t ->
  ?backoff_cap:Engine.Time.t ->
  ?backoff_jitter:float ->
  ?trace:Engine.Trace.t * string ->
  ?on_outcome:(outcome -> unit) ->
  unit ->
  t
(** A session for the client owning [sb], transferring to [server]
    over [hops]-relay circuits drawn from [directory] (ids from
    [ids]).  [selection] defaults to [Bandwidth_weighted];
    [max_rebuilds] (default 3, must be >= 0) bounds recovery attempts;
    [build_timeout] (default 10 s) is handed to {!Circuit_builder}.
    The [k]-th rebuild waits [backoff_base * 2^(k-1)] (default base
    250 ms), capped at [backoff_cap] (default 4 s), stretched by a
    uniform jitter in [1, 1 + backoff_jitter) (default 0.25, may be 0)
    drawn from [rng].  [on_outcome] fires exactly once, at the terminal
    instant.  Raises [Invalid_argument] on nonsensical parameters. *)

val start : t -> unit
(** Select the first path and begin establishment.  Raises
    [Invalid_argument] if called twice. *)

val outcome : t -> outcome option
(** The terminal outcome, once reached. *)

val rebuilds : t -> int
(** Rebuild attempts begun so far. *)

val refused_builds : t -> int
(** Build attempts that ended in an admission-control refusal
    ({!Circuit_builder.Refused} with reason [Busy]).  Refusals back off
    and redraw like any failure but {e never} add the busy relay to
    the exclusion list — busy is not suspected-crashed, and a hot
    relay must remain selectable once its load drains. *)

val drain_refused_builds : t -> int
(** Build attempts refused with reason [Draining].  Like busy
    refusals, these exclude nobody: the draining relay departs and
    returns as a fresh incarnation, at which point it is selectable
    again. *)

val gone_builds : t -> int
(** Build attempts that hit a departed relay
    ({!Circuit_builder.Gone}).  The departed relay joins the exclusion
    list until the directory shows it restarted. *)

val generation : t -> int
(** Circuit generations deployed so far (0 until the first circuit is
    established). *)

val circuit : t -> Circuit.t option
(** The current generation's circuit, once one has been selected. *)

val delivered_bytes : t -> int
(** Contiguously delivered bytes of the logical transfer (survives
    across generations; readable after exhaustion). *)

val excluded : t -> Netsim.Node_id.t list
(** Relays currently excluded from path selection.  Prunes first:
    relays whose {!Directory.incarnation} advanced since their
    exclusion (they restarted) are forgiven and do not appear. *)

val recovery_times : t -> Engine.Time.t list
(** Time-to-recover of each successful rebuild, oldest first: the span
    from the failure that triggered the rebuild to the resumed
    transfer's start. *)

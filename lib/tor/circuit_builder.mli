(** Client-side circuit establishment.

    Drives the CREATE / EXTEND ladder against the {!Relay_ctl}
    automata: CREATE to the guard, then one EXTEND per additional node
    (each travelling through the partially built circuit), finishing
    when the final EXTENDED returns.  The server endpoint participates
    like a relay (it runs a {!Relay_ctl} too), mirroring the
    exit-connects-to-destination step.

    Establishment latency therefore scales quadratically with path
    length in propagation delay — exactly the ramp-up head start a
    freshly built circuit has burnt when data starts flowing, which is
    why the paper cares about the subsequent slow start. *)

type outcome =
  | Established of { at : Engine.Time.t }
  | Refused of { at : Engine.Time.t; reason : Cell.refusal_reason }
      (** A relay along the ladder answered REFUSED — [Busy] under
          admission control, [Draining] while gracefully departing:
          the path is alive but unavailable.  Retryable — the caller
          should back off and draw another path {e without} suspecting
          any relay of having crashed.  The built prefix is torn down
          before this fires. *)
  | Gone of { at : Engine.Time.t; node : Netsim.Node_id.t }
      (** The extension target [node] has cleanly departed the network
          (our directory snapshot was stale).  The built prefix is
          torn down like a refusal, but [node] should be excluded from
          future draws until it is observed to restart. *)
  | Failed of string

val build :
  Switchboard.t ->
  Circuit.t ->
  ?timeout:Engine.Time.t ->
  on_done:(outcome -> unit) ->
  unit ->
  unit
(** [build client_sb circuit ~on_done ()] starts establishment now;
    [on_done] fires exactly once.  [timeout] (default 30 s of simulated
    time) fails the attempt if the ladder stalls; a timed-out attempt
    sends DESTROY along the built prefix so no half-built routing
    entries are orphaned at the relays.  The client switchboard must
    belong to [circuit.client].  Registers the circuit's handler on the
    client switchboard for the duration and unregisters it before
    [on_done]. *)

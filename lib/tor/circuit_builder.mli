(** Client-side circuit establishment.

    Drives the CREATE / EXTEND ladder against the {!Relay_ctl}
    automata: CREATE to the guard, then one EXTEND per additional node
    (each travelling through the partially built circuit), finishing
    when the final EXTENDED returns.  The server endpoint participates
    like a relay (it runs a {!Relay_ctl} too), mirroring the
    exit-connects-to-destination step.

    Establishment latency therefore scales quadratically with path
    length in propagation delay — exactly the ramp-up head start a
    freshly built circuit has burnt when data starts flowing, which is
    why the paper cares about the subsequent slow start. *)

type outcome =
  | Established of { at : Engine.Time.t }
  | Refused of { at : Engine.Time.t }
      (** A relay along the ladder answered REFUSED (admission
          control): the path is alive but busy.  Retryable — the
          caller should back off and draw another path {e without}
          suspecting any relay of having crashed.  The built prefix is
          torn down before this fires. *)
  | Failed of string

val build :
  Switchboard.t ->
  Circuit.t ->
  ?timeout:Engine.Time.t ->
  on_done:(outcome -> unit) ->
  unit ->
  unit
(** [build client_sb circuit ~on_done ()] starts establishment now;
    [on_done] fires exactly once.  [timeout] (default 30 s of simulated
    time) fails the attempt if the ladder stalls; a timed-out attempt
    sends DESTROY along the built prefix so no half-built routing
    entries are orphaned at the relays.  The client switchboard must
    belong to [circuit.client].  Registers the circuit's handler on the
    client switchboard for the duration and unregisters it before
    [on_done]. *)

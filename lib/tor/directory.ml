type status = Up | Draining | Down

let status_to_string = function
  | Up -> "up"
  | Draining -> "draining"
  | Down -> "down"

type t = {
  mutable relays : Relay_info.t list;  (* live population, insertion order *)
  mutable snapshot : Relay_info.t list option;
      (* What clients see: the population as of the last epoch boundary.
         [None] until the first [advance_epoch] — before any epoch, the
         live view doubles as the snapshot (bootstrap). *)
  mutable epoch : int;
  status : (int, status) Hashtbl.t;  (* node id -> live status *)
  incarnation : (int, int) Hashtbl.t;  (* node id -> restart count *)
}

type selection = Bandwidth_weighted | Uniform

let selection_to_string = function
  | Bandwidth_weighted -> "bandwidth"
  | Uniform -> "uniform"

let selection_of_string s =
  match String.lowercase_ascii s with
  | "bandwidth" | "bw" | "weighted" -> Some Bandwidth_weighted
  | "uniform" | "random" -> Some Uniform
  | _ -> None

let create () =
  { relays = []; snapshot = None; epoch = 0;
    status = Hashtbl.create 32; incarnation = Hashtbl.create 32 }

let key node = Netsim.Node_id.to_int node

let add t r =
  t.relays <- t.relays @ [ r ];
  Hashtbl.replace t.status (key r.Relay_info.node) Up;
  if not (Hashtbl.mem t.incarnation (key r.Relay_info.node)) then
    Hashtbl.replace t.incarnation (key r.Relay_info.node) 0;
  (* Bootstrap relays are immediately visible: extend the standing
     snapshot too, so [add] keeps its pre-epoch "clients can use this
     relay now" meaning even after epochs have started advancing. *)
  match t.snapshot with
  | None -> ()
  | Some snap -> t.snapshot <- Some (snap @ [ r ])

let join t r =
  t.relays <- t.relays @ [ r ];
  Hashtbl.replace t.status (key r.Relay_info.node) Up;
  if not (Hashtbl.mem t.incarnation (key r.Relay_info.node)) then
    Hashtbl.replace t.incarnation (key r.Relay_info.node) 0

let relays t = t.relays
let count t = List.length t.relays

let find_by_node t node =
  List.find_opt (fun (r : Relay_info.t) -> Netsim.Node_id.equal r.node node) t.relays

(* --- epochs and churn status --------------------------------------- *)

let epoch t = t.epoch

let status t node =
  match Hashtbl.find_opt t.status (key node) with
  | Some s -> s
  | None -> Down

let incarnation t node =
  match Hashtbl.find_opt t.incarnation (key node) with Some i -> i | None -> 0

let mark_draining t node = Hashtbl.replace t.status (key node) Draining
let mark_down t node = Hashtbl.replace t.status (key node) Down

let mark_up t node =
  (match Hashtbl.find_opt t.status (key node) with
  | Some Down | None ->
      (* Coming back from the dead (crash restart or post-drain
         rejoin): a new incarnation, so clients holding a grudge
         against the old one can tell the difference. *)
      Hashtbl.replace t.incarnation (key node) (incarnation t node + 1)
  | Some Up | Some Draining -> ());
  Hashtbl.replace t.status (key node) Up

let advance_epoch t =
  t.epoch <- t.epoch + 1;
  t.snapshot <-
    Some
      (List.filter
         (fun (r : Relay_info.t) -> status t r.node <> Down)
         t.relays)

let snapshot_relays t =
  match t.snapshot with Some snap -> snap | None -> t.relays

(* --- path selection ------------------------------------------------ *)

let weighted_choice rng candidates =
  match candidates with
  | [] -> None
  | _ ->
      let arr =
        Array.of_list
          (List.map
             (fun (r : Relay_info.t) ->
               (r, float_of_int (Engine.Units.Rate.to_bps r.bandwidth)))
             candidates)
      in
      Some (Engine.Rng.pick_weighted rng arr)

let uniform_choice rng candidates =
  match candidates with
  | [] -> None
  | _ -> Some (Engine.Rng.pick rng (Array.of_list candidates))

let select_path t rng ?(selection = Bandwidth_weighted) ?(exclude = []) ~hops () =
  if hops < 1 then invalid_arg "Directory.select_path: need at least one hop";
  let choose =
    match selection with
    | Bandwidth_weighted -> weighted_choice
    | Uniform -> uniform_choice
  in
  (* Clients draw from the epoch snapshot, deliberately ignoring live
     status: a relay that departed since the boundary is still drawn,
     and the resulting build races the departure — that staleness is
     the consensus model, not a bug.  Freshness comes only from
     [advance_epoch] and from the caller's own [exclude] list. *)
  let view = snapshot_relays t in
  let banned (r : Relay_info.t) =
    List.exists (Netsim.Node_id.equal r.node) exclude
  in
  let excluded chosen (r : Relay_info.t) =
    banned r
    || List.exists (fun (c : Relay_info.t) -> Netsim.Node_id.equal c.node r.node) chosen
  in
  let pick ~flag chosen =
    let ok (r : Relay_info.t) =
      (not (excluded chosen r))
      && match flag with None -> true | Some f -> Relay_info.has_flag r f
    in
    choose rng (List.filter ok view)
  in
  (* Tor fills guard, then exit, then middles; we follow suit so flag
     scarcity (few exits) constrains the right position. *)
  let ( let* ) = Option.bind in
  if hops = 1 then
    let* only = pick ~flag:(Some Relay_info.Exit) [] in
    Some [ only ]
  else
    let* guard = pick ~flag:(Some Relay_info.Guard) [] in
    let* exit = pick ~flag:(Some Relay_info.Exit) [ guard ] in
    let rec middles n chosen acc =
      if n = 0 then Some (List.rev acc)
      else
        let* m = pick ~flag:None chosen in
        middles (n - 1) (m :: chosen) (m :: acc)
    in
    let* mids = middles (hops - 2) [ guard; exit ] [] in
    Some ((guard :: mids) @ [ exit ])

type t = { mutable relays : Relay_info.t list }

type selection = Bandwidth_weighted | Uniform

let selection_to_string = function
  | Bandwidth_weighted -> "bandwidth"
  | Uniform -> "uniform"

let selection_of_string s =
  match String.lowercase_ascii s with
  | "bandwidth" | "bw" | "weighted" -> Some Bandwidth_weighted
  | "uniform" | "random" -> Some Uniform
  | _ -> None

let create () = { relays = [] }
let add t r = t.relays <- t.relays @ [ r ]
let relays t = t.relays
let count t = List.length t.relays

let find_by_node t node =
  List.find_opt (fun (r : Relay_info.t) -> Netsim.Node_id.equal r.node node) t.relays

let weighted_choice rng candidates =
  match candidates with
  | [] -> None
  | _ ->
      let arr =
        Array.of_list
          (List.map
             (fun (r : Relay_info.t) ->
               (r, float_of_int (Engine.Units.Rate.to_bps r.bandwidth)))
             candidates)
      in
      Some (Engine.Rng.pick_weighted rng arr)

let uniform_choice rng candidates =
  match candidates with
  | [] -> None
  | _ -> Some (Engine.Rng.pick rng (Array.of_list candidates))

let select_path t rng ?(selection = Bandwidth_weighted) ?(exclude = []) ~hops () =
  if hops < 1 then invalid_arg "Directory.select_path: need at least one hop";
  let choose =
    match selection with
    | Bandwidth_weighted -> weighted_choice
    | Uniform -> uniform_choice
  in
  let banned (r : Relay_info.t) =
    List.exists (Netsim.Node_id.equal r.node) exclude
  in
  let excluded chosen (r : Relay_info.t) =
    banned r
    || List.exists (fun (c : Relay_info.t) -> Netsim.Node_id.equal c.node r.node) chosen
  in
  let pick ~flag chosen =
    let ok (r : Relay_info.t) =
      (not (excluded chosen r))
      && match flag with None -> true | Some f -> Relay_info.has_flag r f
    in
    choose rng (List.filter ok t.relays)
  in
  (* Tor fills guard, then exit, then middles; we follow suit so flag
     scarcity (few exits) constrains the right position. *)
  let ( let* ) = Option.bind in
  if hops = 1 then
    let* only = pick ~flag:(Some Relay_info.Exit) [] in
    Some [ only ]
  else
    let* guard = pick ~flag:(Some Relay_info.Guard) [] in
    let* exit = pick ~flag:(Some Relay_info.Exit) [ guard ] in
    let rec middles n chosen acc =
      if n = 0 then Some (List.rev acc)
      else
        let* m = pick ~flag:None chosen in
        middles (n - 1) (m :: chosen) (m :: acc)
    in
    let* mids = middles (hops - 2) [ guard; exit ] [] in
    Some ((guard :: mids) @ [ exit ])
